// Command bcpsim regenerates the paper's tables and figures.
//
// Usage:
//
//	bcpsim -exp table1a            # Table 1(a): torus, single backup
//	bcpsim -exp table1b            # Table 1(b): torus, double backups
//	bcpsim -exp table1c            # Table 1(c): mesh, single backup
//	bcpsim -exp table2a|table2b|table2c
//	bcpsim -exp table3a|table3b    # brute-force multiplexing
//	bcpsim -exp fig9a|fig9b|fig9c  # spare bandwidth vs network load
//	bcpsim -exp fig3               # Markov vs combinatorial reliability
//	bcpsim -exp sec5               # recovery-delay bound validation
//	bcpsim -exp schemes            # failure-reporting scheme comparison
//	bcpsim -exp hotspot            # inhomogeneous-traffic comparison
//	bcpsim -exp ablation           # design-choice ablations (routing, Π rule)
//	bcpsim -exp severity           # R_fast vs number of simultaneous failures
//	bcpsim -exp scalability        # §6: establishment cost vs network size
//	bcpsim -exp baselines          # BCP vs recover-by-reestablishment (§8)
//	bcpsim -exp all                # everything (slow)
//
// Options:
//
//	-sample N   sample N double-node failures instead of all pairs
//	-lambda F   per-component failure probability (default 1e-4)
//	-seed N     seed for randomized orders/workloads
//	-workers N  worker pool for sweeps and pipelined establishment
//	            (0/1 serial, -1 = GOMAXPROCS); results are identical
//	-json       emit results as JSON instead of paper-style tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/experiment"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -help)")
		sample  = flag.Int("sample", 0, "double-node failure sample size (0 = exhaustive)")
		lambda  = flag.Float64("lambda", 1e-4, "per-component failure probability per time unit")
		seed    = flag.Int64("seed", 1, "random seed")
		order   = flag.String("order", "conn", "activation order: conn|priority|random")
		workers = flag.Int("workers", 0, "worker pool for failure sweeps and pipelined establishment (0/1 = serial, -1 = GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit results as JSON")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiment.DefaultOptions()
	opts.Lambda = *lambda
	opts.DoubleNodeSample = *sample
	opts.Seed = *seed
	opts.Workers = *workers
	switch *order {
	case "conn":
		opts.Order = core.OrderByConn
	case "priority":
		opts.Order = core.OrderByPriority
	case "random":
		opts.Order = core.OrderRandom
	default:
		fmt.Fprintf(os.Stderr, "unknown order %q\n", *order)
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1a", "table1b", "table1c", "table2a", "table2b", "table2c",
			"table3a", "table3b", "fig9a", "fig9b", "fig9c", "fig3", "sec5", "schemes", "hotspot", "ablation", "severity", "scalability", "baselines"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), opts, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "bcpsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// renderable pairs an experiment result with its paper-style presentation.
type renderable interface{ Render() string }

// emit prints one experiment result, as a table or as a JSON document
// tagged with the experiment id.
func emit(id string, res renderable, asJSON bool) error {
	if !asJSON {
		fmt.Println(res.Render())
		return nil
	}
	doc := struct {
		Experiment string      `json:"experiment"`
		Result     interface{} `json:"result"`
	}{id, res}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

var alphas = []int{1, 3, 5, 6}

func run(id string, opts experiment.Options, asJSON bool) error {
	var res renderable
	switch id {
	case "table1a":
		res = experiment.RunTable1(experiment.Torus8x8, 1, alphas, opts)
	case "table1b":
		res = experiment.RunTable1(experiment.Torus8x8, 2, alphas, opts)
	case "table1c":
		res = experiment.RunTable1(experiment.Mesh8x8, 1, alphas, opts)
	case "table2a":
		res = experiment.RunTable2(experiment.Torus8x8, 1, alphas, opts)
	case "table2b":
		res = experiment.RunTable2(experiment.Torus8x8, 2, alphas, opts)
	case "table2c":
		res = experiment.RunTable2(experiment.Mesh8x8, 1, alphas, opts)
	case "table3a":
		res = table3Result{experiment.RunTable3(experiment.Torus8x8, alphas, opts)}
	case "table3b":
		res = table3Result{experiment.RunTable3(experiment.Mesh8x8, alphas, opts)}
	case "fig9a":
		res = experiment.RunFigure9(experiment.Torus8x8, 1, []int{0, 1, 3, 5, 6}, 256, opts)
	case "fig9b":
		res = experiment.RunFigure9(experiment.Torus8x8, 2, []int{0, 1, 3, 5, 6}, 256, opts)
	case "fig9c":
		res = experiment.RunFigure9(experiment.Mesh8x8, 1, []int{0, 1, 3, 5, 6}, 256, opts)
	case "fig3":
		res = experiment.RunFigure3(4, 6, 1e-5, 100,
			[]float64{1, 10, 100, 1000, 10000, 100000})
	case "sec5":
		res = experiment.RunSection5(opts)
	case "schemes":
		res = experiment.RunSchemeComparison(opts)
	case "hotspot":
		res = experiment.RunHotspot(opts)
	case "ablation":
		res = experiment.RunAblation(opts)
	case "severity":
		res = experiment.RunSeverity(5, 200, opts)
	case "scalability":
		res = experiment.RunScalability(3, opts)
	case "baselines":
		res = experiment.RunBaselineComparison(opts)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return emit(id, res, asJSON)
}

// table3Result wraps Table 3 runs with their brute-force presentation.
type table3Result struct {
	experiment.Table1Result
}

func (r table3Result) Render() string { return experiment.RenderTable3(r.Table1Result) }
