package bcpd

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/realtime"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// liveTestbed is the wall-clock twin of testbed: the same 3x3 mesh and
// D-connection (primary 0-1-2, backup 0-3-4-5-2), but every one of the nine
// daemons runs as a realtime actor and traffic crosses a PipeTransport.
type liveTestbed struct {
	g    *topology.Graph
	rt   *realtime.Runtime
	mgr  *core.Manager
	net  *Network
	conn *core.DConnection
	tr   *PipeTransport
}

// liveConformanceParams widens the in-flight tolerance far past the sim
// value: under wall clock (and -race) a delivery can trail a failure by
// scheduler jitter, not just propagation delay.
func liveConformanceParams(cfg Config) conformance.Params {
	return conformance.Params{
		PropSlack: cfg.PropDelay + sim.Duration(500*time.Millisecond),
	}
}

// newLiveTestbed boots the testbed scenario on a wall-clock runtime. The
// conformance checker is attached first so its cleanup (which inspects the
// final trace) runs after the shutdown cleanup stops the world.
func newLiveTestbed(t *testing.T, cfg Config, seed int64) *liveTestbed {
	t.Helper()
	g := topology.NewMesh(3, 3, 10)
	rt := realtime.New(seed)
	rt.StartActors(g.NumNodes(), 1024)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	conn, err := mgr.EstablishOnPaths(spec,
		path(t, g, 0, 1, 2),
		[]topology.Path{path(t, g, 0, 3, 4, 5, 2)},
		[]int{1})
	if err != nil {
		rt.Stop()
		t.Fatal(err)
	}
	attachConformance(t, &cfg, liveConformanceParams(cfg))
	tr := NewPipeTransport(rt.Post, 1024)
	lt := &liveTestbed{g: g, rt: rt, mgr: mgr, conn: conn, tr: tr}
	t.Cleanup(lt.shutdown)
	// Construction arms timers and emits install events; run it serialized
	// so nothing fires against a half-built network.
	rt.Exec(func() { lt.net = NewOn(rt, tr, mgr, cfg) })
	return lt
}

// shutdown stops the transport before the runtime (pipes post into
// mailboxes) and is idempotent, so tests can call it explicitly and rely on
// the cleanup as a backstop.
func (lt *liveTestbed) shutdown() {
	lt.tr.Close()
	lt.rt.Stop()
}

// exec runs fn serialized with the protocol.
func (lt *liveTestbed) exec(fn func()) { lt.rt.Exec(fn) }

// waitFor polls cond (serialized) until it holds or the deadline passes.
func (lt *liveTestbed) waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for {
		var ok bool
		lt.rt.Exec(func() { ok = cond() })
		if ok {
			return
		}
		if time.Now().After(limit) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLiveRecoveryAndCleanShutdown drives nine live daemons through a full
// fail -> recover -> rejoin cycle over the pipe transport, then shuts the
// world down and checks that every goroutine the runtime and transport
// started has exited. Run under -race this also vouches that all protocol
// state is reached only through the execution lock and that late posts after
// Stop are refused rather than panicking on a closed channel.
func TestLiveRecoveryAndCleanShutdown(t *testing.T) {
	before := goruntime.NumGoroutine()

	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(60 * time.Second)
	cfg.RejoinProbeDelay = sim.Duration(25 * time.Millisecond)
	lt := newLiveTestbed(t, cfg, 1)

	var startErr error
	lt.exec(func() { startErr = lt.net.StartTraffic(lt.conn.ID, 500) })
	if startErr != nil {
		t.Fatal(startErr)
	}
	lt.waitFor(t, "pre-failure data", 10*time.Second, func() bool {
		return lt.net.Stats().DataDelivered >= 20
	})

	// Fail the primary's last hop; the source must switch to the backup.
	l := lt.g.LinkBetween(1, 2)
	lt.exec(func() { lt.net.FailLink(l) })
	lt.waitFor(t, "source switch", 10*time.Second, func() bool {
		return len(lt.net.SourceSwitches(lt.conn.ID)) == 1
	})
	var switched sim.Time
	lt.exec(func() { switched = lt.net.SourceSwitches(lt.conn.ID)[0] })
	lt.waitFor(t, "post-switch data", 10*time.Second, func() bool {
		_, ok := lt.net.FirstArrivalAfter(lt.conn.ID, switched)
		return ok
	})

	// Repair; the probed rejoin request is held across the outage and the
	// old primary rejoins as a healthy channel.
	lt.exec(func() { lt.net.RepairLink(l) })
	lt.waitFor(t, "rejoin", 10*time.Second, func() bool {
		return lt.net.Stats().Rejoins >= 1
	})

	lt.shutdown()

	// A post after Stop must be refused, never panic.
	if lt.rt.Post(0, func() {}) {
		t.Fatal("Post accepted work after Stop")
	}
	// shutdown() double-stops via the cleanup; make one explicit too.
	lt.shutdown()

	// Every runtime, actor, and pipe goroutine has joined. Poll briefly:
	// a goroutine is still counted for an instant after its WaitGroup.Done.
	limit := time.Now().Add(5 * time.Second)
	for {
		if n := goruntime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(limit) {
			t.Fatalf("goroutine leak: %d before, %d after shutdown", before, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chanOn identifies one channel's state machine at one node.
type chanOn struct {
	node topology.NodeID
	ch   rtchan.ChannelID
}

// hop is one Figure-4 transition.
type hop struct {
	from, to trace.State
}

// stateSequences reduces a trace to each (node, channel)'s ordered Figure-4
// transition sequence — the timestamp-free skeleton of a run.
func stateSequences(evs []trace.Event) map[chanOn][]hop {
	out := make(map[chanOn][]hop)
	for _, ev := range evs {
		if ev.Kind != trace.KindState {
			continue
		}
		k := chanOn{node: ev.Node, ch: ev.Channel}
		out[k] = append(out[k], hop{from: ev.From, to: ev.To})
	}
	return out
}

func formatSequences(m map[chanOn][]hop) string {
	keys := make([]chanOn, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].ch < keys[j].ch
	})
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("  node %d channel %d:", k.node, k.ch)
		for _, h := range m[k] {
			s += fmt.Sprintf(" %v->%v", h.from, h.to)
		}
		s += "\n"
	}
	return s
}

// TestSimLiveEquivalence runs the same scripted link failure under the
// deterministic engine and under the wall-clock runtime with live pipes,
// checks both traces with the conformance checker (via attachConformance),
// and requires every (node, channel) to walk the identical ordered Figure-4
// transition sequence. Timestamps differ between the worlds; the protocol's
// state skeleton must not.
func TestSimLiveEquivalence(t *testing.T) {
	// Sim leg: testbed scenario, fail link 1-2 at 50ms, run to quiescence.
	simRec := &trace.Recorder{}
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(60 * time.Second)
	cfg.Sink = simRec
	tb := newTestbed(t, cfg)
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.At(sim.Time(50*time.Millisecond), func() {
		tb.net.FailLink(tb.g.LinkBetween(1, 2))
	})
	tb.eng.RunFor(400 * time.Millisecond)
	simSeq := stateSequences(simRec.Events)

	// Live leg: same topology, connection, and failure script.
	liveRec := &trace.Recorder{}
	liveCfg := DefaultConfig()
	liveCfg.RejoinTimeout = sim.Duration(60 * time.Second)
	liveCfg.Sink = liveRec
	lt := newLiveTestbed(t, liveCfg, 1)
	var startErr error
	lt.exec(func() { startErr = lt.net.StartTraffic(lt.conn.ID, 1000) })
	if startErr != nil {
		t.Fatal(startErr)
	}
	lt.waitFor(t, "pre-failure data", 10*time.Second, func() bool {
		return lt.net.Stats().DataDelivered >= 20
	})
	lt.exec(func() { lt.net.FailLink(lt.g.LinkBetween(1, 2)) })
	lt.waitFor(t, "source switch", 10*time.Second, func() bool {
		return len(lt.net.SourceSwitches(lt.conn.ID)) == 1
	})
	// Quiescence: no new state transitions for a spell.
	count := func() (n int) {
		for _, ev := range liveRec.Events {
			if ev.Kind == trace.KindState {
				n++
			}
		}
		return n
	}
	var last int
	lt.exec(func() { last = count() })
	limit := time.Now().Add(10 * time.Second)
	for streak := 0; streak < 10; {
		time.Sleep(20 * time.Millisecond)
		var now int
		lt.exec(func() { now = count() })
		if now == last {
			streak++
		} else {
			streak, last = 0, now
		}
		if time.Now().After(limit) {
			t.Fatal("live run did not quiesce")
		}
	}
	lt.shutdown()
	liveSeq := stateSequences(liveRec.Events)

	if len(simSeq) != len(liveSeq) {
		t.Fatalf("state machines touched: sim %d, live %d\nsim:\n%slive:\n%s",
			len(simSeq), len(liveSeq), formatSequences(simSeq), formatSequences(liveSeq))
	}
	for k, want := range simSeq {
		got := liveSeq[k]
		if len(got) != len(want) {
			t.Fatalf("node %d channel %d: sim %v, live %v", k.node, k.ch, want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d channel %d transition %d: sim %v->%v, live %v->%v",
					k.node, k.ch, i, want[i].from, want[i].to, got[i].from, got[i].to)
			}
		}
	}
}

// TestLiveUDPRecovery reruns the failure scenario with traffic crossing real
// loopback datagrams: frames are copied to the wire, parsed on receive, and
// still drive the Figure-4 recovery. This is the socket transport's
// integration test; the equivalence test keeps the stronger trace claim on
// the loss-free pipes.
func TestLiveUDPRecovery(t *testing.T) {
	g := topology.NewMesh(3, 3, 10)
	rt := realtime.New(1)
	rt.StartActors(g.NumNodes(), 1024)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	conn, err := mgr.EstablishOnPaths(spec,
		path(t, g, 0, 1, 2),
		[]topology.Path{path(t, g, 0, 3, 4, 5, 2)},
		[]int{1})
	if err != nil {
		rt.Stop()
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(60 * time.Second)
	attachConformance(t, &cfg, liveConformanceParams(cfg))
	tr := NewUDPTransport(rt.Post)
	t.Cleanup(func() { tr.Close(); rt.Stop() })
	var net *Network
	rt.Exec(func() { net = NewOn(rt, tr, mgr, cfg) })

	var startErr error
	rt.Exec(func() { startErr = net.StartTraffic(conn.ID, 500) })
	if startErr != nil {
		t.Fatal(startErr)
	}
	wait := func(what string, cond func() bool) {
		t.Helper()
		limit := time.Now().Add(10 * time.Second)
		for {
			var ok bool
			rt.Exec(func() { ok = cond() })
			if ok {
				return
			}
			if time.Now().After(limit) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wait("pre-failure data", func() bool { return net.Stats().DataDelivered >= 20 })
	rt.Exec(func() { net.FailLink(g.LinkBetween(1, 2)) })
	wait("source switch", func() bool { return len(net.SourceSwitches(conn.ID)) == 1 })
	var switched sim.Time
	rt.Exec(func() { switched = net.SourceSwitches(conn.ID)[0] })
	wait("post-switch data", func() bool {
		_, ok := net.FirstArrivalAfter(conn.ID, switched)
		return ok
	})
	tr.Close()
	rt.Stop()
}
