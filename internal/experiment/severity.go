package experiment

import (
	"fmt"
	"math/rand"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/topology"
)

// SeverityResult extends the paper's three failure models into a severity
// sweep: R_fast as a function of the number of simultaneously failed
// components (links and nodes mixed), for different backup configurations.
// The paper's per-connection fault-tolerance claim — more backups at
// tighter degrees tolerate "harsher failures" — becomes a measurable curve.
type SeverityResult struct {
	Kind     Kind
	MaxFail  int
	Trials   int
	Configs  []string
	RFast    [][]float64 // [config][k-1]
	BackupOK [][]float64 // fraction of failed primaries with any live backup
}

// RunSeverity sweeps k = 1..maxFail simultaneous random component failures
// (each failed component is a node with probability 1/3, else a simplex
// link) over the given number of trials per k, for three configurations:
// one backup at mux=3, one backup at mux=1, and two backups at mux=3.
func RunSeverity(maxFail, trials int, opts Options) SeverityResult {
	if maxFail <= 0 {
		maxFail = 5
	}
	if trials <= 0 {
		trials = 100
	}
	res := SeverityResult{
		Kind:    Torus8x8,
		MaxFail: maxFail,
		Trials:  trials,
		Configs: []string{"1 backup mux=3", "1 backup mux=1", "2 backups mux=3"},
	}
	configs := []struct {
		backups, alpha int
	}{{1, 3}, {1, 1}, {2, 3}}

	for _, cfg := range configs {
		g := NewGraph(Torus8x8)
		m := core.NewManager(g, opts.config())
		EstablishAllPairs(m, UniformDegrees(cfg.backups, cfg.alpha))
		rFast := make([]float64, maxFail)
		bOK := make([]float64, maxFail)
		for k := 1; k <= maxFail; k++ {
			rng := rand.New(rand.NewSource(opts.Seed + int64(k)))
			var r, alive metrics.Ratio
			for trial := 0; trial < trials; trial++ {
				f := randomFailure(g, k, rng)
				stats := m.Trial(f, core.OrderByConn, nil)
				r.Add(float64(stats.FastRecovered), float64(stats.FailedPrimaries))
				alive.Add(float64(stats.FailedPrimaries-stats.BackupDead), float64(stats.FailedPrimaries))
			}
			rFast[k-1] = r.Value()
			bOK[k-1] = alive.Value()
		}
		res.RFast = append(res.RFast, rFast)
		res.BackupOK = append(res.BackupOK, bOK)
	}
	return res
}

// randomFailure draws k distinct components: nodes with probability 1/3,
// simplex links otherwise.
func randomFailure(g *topology.Graph, k int, rng *rand.Rand) core.Failure {
	links := map[topology.LinkID]struct{}{}
	nodes := map[topology.NodeID]struct{}{}
	for len(links)+len(nodes) < k {
		if rng.Intn(3) == 0 {
			nodes[topology.NodeID(rng.Intn(g.NumNodes()))] = struct{}{}
		} else {
			links[topology.LinkID(rng.Intn(g.NumLinks()))] = struct{}{}
		}
	}
	ls := make([]topology.LinkID, 0, len(links))
	for l := range links {
		ls = append(ls, l)
	}
	ns := make([]topology.NodeID, 0, len(nodes))
	for n := range nodes {
		ns = append(ns, n)
	}
	return core.NewFailure(ls, ns)
}

// Render prints the severity sweep.
func (r SeverityResult) Render() string {
	t := &metrics.Table{
		Title: fmt.Sprintf("Failure severity sweep — %s, %d trials per point (R_fast / backup-survival)",
			r.Kind, r.Trials),
		Columns: append([]string{"Configuration"}, severityHeaders(r.MaxFail)...),
	}
	for i, name := range r.Configs {
		cells := make([]string, r.MaxFail)
		for k := 0; k < r.MaxFail; k++ {
			cells[k] = fmt.Sprintf("%.1f%%/%.1f%%", r.RFast[i][k]*100, r.BackupOK[i][k]*100)
		}
		t.AddRow(name, cells...)
	}
	return t.String()
}

func severityHeaders(maxFail int) []string {
	out := make([]string, maxFail)
	for k := 1; k <= maxFail; k++ {
		out[k-1] = fmt.Sprintf("k=%d", k)
	}
	return out
}
