package bcpd

import (
	"math/rand"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// TestProtocolStorm drives the full protocol stack through randomized
// failure storms on a loaded torus: many connections with traffic, a mix of
// link and node crashes (some repaired), across all three schemes and both
// priority mechanisms. The test asserts global soundness rather than exact
// outcomes: no panics, resource-plane invariants hold at every checkpoint,
// and connections whose channels survived are still carrying data.
func TestProtocolStorm(t *testing.T) {
	for _, tc := range []struct {
		name string
		tune func(*Config)
	}{
		{"scheme3", func(c *Config) {}},
		{"scheme1", func(c *Config) { c.Scheme = Scheme1 }},
		{"scheme2", func(c *Config) { c.Scheme = Scheme2 }},
		{"delayed", func(c *Config) { c.PriorityDelayUnit = sim.Duration(2 * time.Millisecond) }},
		{"preempt", func(c *Config) { c.AllowPreemption = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := topology.NewTorus(6, 6, 100)
			eng := sim.New(1)
			mgr := core.NewManager(g, core.DefaultConfig())
			rng := rand.New(rand.NewSource(7))
			var conns []*core.DConnection
			for i := 0; i < 80; i++ {
				s := topology.NodeID(rng.Intn(36))
				d := topology.NodeID(rng.Intn(36))
				if s == d {
					continue
				}
				c, err := mgr.Establish(s, d, rtchan.DefaultSpec(), []int{1 + rng.Intn(6)})
				if err == nil {
					conns = append(conns, c)
				}
			}
			cfg := DefaultConfig()
			cfg.RejoinTimeout = sim.Duration(700 * time.Millisecond)
			cfg.RejoinProbeDelay = sim.Duration(80 * time.Millisecond)
			tc.tune(&cfg)
			// A storm run is cut off at an arbitrary instant, so claims of
			// activations still in flight are legitimately outstanding.
			p := conformanceParams(cfg)
			p.AllowOutstandingClaims = true
			attachConformance(t, &cfg, p)
			net := New(eng, mgr, cfg)
			for _, c := range conns[:10] {
				if err := net.StartTraffic(c.ID, 200); err != nil {
					t.Fatal(err)
				}
			}
			// The storm: 12 failures over 3 seconds; a third get repaired.
			for i := 0; i < 12; i++ {
				at := sim.Duration(100+250*i) * sim.Duration(time.Millisecond)
				i := i
				eng.Schedule(at, func() {
					if i%3 == 0 {
						v := topology.NodeID(rng.Intn(36))
						net.FailNode(v)
						if i%6 == 0 {
							eng.Schedule(150*time.Millisecond, func() { net.RepairNode(v) })
						}
					} else {
						l := topology.LinkID(rng.Intn(g.NumLinks()))
						net.FailLink(l)
						if i%2 == 0 {
							eng.Schedule(150*time.Millisecond, func() { net.RepairLink(l) })
						}
					}
				})
			}
			checkpoints := 0
			for tick := 1; tick <= 8; tick++ {
				eng.Schedule(sim.Duration(tick)*sim.Duration(500*time.Millisecond), func() {
					if err := mgr.Network().CheckInvariants(); err != nil {
						t.Errorf("checkpoint: %v", err)
					}
					checkpoints++
				})
			}
			eng.RunFor(6 * time.Second)
			if checkpoints != 8 {
				t.Fatalf("checkpoints = %d", checkpoints)
			}
			if err := mgr.Network().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := mgr.CheckMuxInvariants(); err != nil {
				t.Fatal(err)
			}
			st := net.Stats()
			if st.DataSent == 0 || st.DataDelivered == 0 {
				t.Fatalf("no data flowed: %+v", st)
			}
			if st.ReportsGenerated == 0 || st.ActivationsStarted == 0 {
				t.Fatalf("storm produced no protocol activity: %+v", st)
			}
			// Pool balance: every pooled payload checked out of the frame
			// pool or data-box free list is accounted for inside the
			// transport (queued, serializing, or propagating) — packets the
			// scheduler dropped on down links and overflowing queues must
			// have returned their buffers and boxes rather than leaked.
			tr := net.Transport().(*SimTransport)
			framesIn, dataIn := tr.InTransit()
			framesOut, dataOut := net.PoolOutstanding()
			if framesOut != framesIn {
				t.Fatalf("frame-buffer leak: %d checked out of pool, %d in transit", framesOut, framesIn)
			}
			if dataOut != dataIn {
				t.Fatalf("data-box leak: %d checked out, %d in transit", dataOut, dataIn)
			}
			// Every surviving connection is structurally sound: its
			// channels exist in the registry with consistent roles.
			for _, c := range mgr.Connections() {
				if c.Primary != nil && c.Primary.Role != rtchan.RolePrimary {
					t.Fatalf("connection %d primary role %v", c.ID, c.Primary.Role)
				}
				for _, b := range c.Backups {
					if b.Role != rtchan.RoleBackup {
						t.Fatalf("connection %d backup role %v", c.ID, b.Role)
					}
				}
			}
		})
	}
}
