// Package conformance checks a protocol event stream (internal/trace)
// against the paper's invariants, turning any protocol-mode run into a
// self-verifying fixture:
//
//   - State machine: every per-node channel transition is a legal edge of
//     Figure 4, starting from N, and each event's From matches the state the
//     stream itself established.
//   - Claim balance: spare-bandwidth claims are never doubled, only released
//     or converted while held, and none survive the run (unless the scenario
//     legitimately ends mid-recovery).
//   - Recovery delay: every recovery that completes (a source switch
//     following a failure report for the connection's primary) does so
//     within the §5 bound Γ ≤ (K−1)·D_max + 2(b−1)(K−1)·D_max, plus the
//     configured detection allowance.
//   - Healthy traversal: failure reports and activation messages are only
//     delivered across links that are up (modulo in-flight propagation) and
//     to nodes that are alive.
//
// The Checker is itself a trace.Sink, so it can run streaming during a
// simulation (e.g. behind a trace.Tee) or replay a recorded stream via
// Check.
package conformance

import (
	"fmt"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// Params tunes the checker to a run's timing model.
type Params struct {
	// DMax is the per-hop worst-case control delay D^RCC_max. Zero disables
	// the Γ-bound rule (scenarios with congestion, preemption, or heartbeat
	// detection have no closed-form bound).
	DMax sim.Duration
	// DetectionSlack is added to the Γ bound to cover the gap between a
	// component crash and its neighbors' failure reports (DetectionLatency,
	// or the heartbeat window when heartbeats detect).
	DetectionSlack sim.Duration
	// PropSlack tolerates control deliveries this long after a component
	// went down: packets already in flight still arrive (one propagation
	// delay plus any residual transmission).
	PropSlack sim.Duration
	// AllowOutstandingClaims skips the end-of-stream claim-balance rule for
	// scenarios that legitimately end mid-recovery.
	AllowOutstandingClaims bool
}

// Violation is one invariant breach.
type Violation struct {
	// Seq is the index of the offending event in the stream, or -1 for
	// end-of-stream violations.
	Seq int
	// At is the simulated time of the offending event.
	At sim.Time
	// Rule names the invariant: "order", "state-machine", "batch-order",
	// "claim", "gamma", or "traversal".
	Rule string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("event %d at %v: %s: %s", v.Seq, v.At, v.Rule, v.Detail)
}

// legalEdges are the transitions of Figure 4 (with N as both the unborn and
// the torn-down state): establishment (N→P, N→B), activation (B→P), failure
// (P→U, B→U), rejoin (U→B), and teardown/closure from any live state.
var legalEdges = [4][4]bool{
	trace.StateN: {trace.StateP: true, trace.StateB: true},
	trace.StateP: {trace.StateU: true, trace.StateN: true},
	trace.StateB: {trace.StateP: true, trace.StateU: true, trace.StateN: true},
	trace.StateU: {trace.StateB: true, trace.StateN: true},
}

// intraBatchLegal is legalEdges restricted at batch boundaries: within one
// timestamp at one (node, channel) — a delivered control frame or a dispatch
// round, which execute instantaneously in simulated time — N is absorbing.
// Re-installation (N→P, N→B) is always a separately-timed event (an
// establishment, a replenish timer), so a same-timestamp departure from N
// means the dispatcher processed a stale control against a channel a
// same-batch closure had already killed.
var intraBatchLegal = func() [4][4]bool {
	e := legalEdges
	e[trace.StateN][trace.StateP] = false
	e[trace.StateN][trace.StateB] = false
	return e
}()

type nodeChan struct {
	node topology.NodeID
	ch   rtchan.ChannelID
}

type linkChan struct {
	link topology.LinkID
	ch   rtchan.ChannelID
}

// connState tracks what the stream has established about one connection.
type connState struct {
	primary  rtchan.ChannelID
	hops     map[rtchan.ChannelID]int // per channel, from install/replenish
	backups  map[rtchan.ChannelID]bool
	failed   map[rtchan.ChannelID]bool // backups lost since the last recovery
	pending  bool
	failAt   sim.Time
	pendingB int // backups configured when the recovery began
}

// Checker consumes an event stream and accumulates violations. It is a
// trace.Sink; call Finish after the run for the end-of-stream rules and the
// collected violations.
type Checker struct {
	p          Params
	seq        int
	lastAt     sim.Time
	nodeStates map[nodeChan]trace.State
	// nReachedAt records when each (node, channel) last transitioned to N,
	// for the batch-order rule (N absorbing within one timestamp).
	nReachedAt map[nodeChan]sim.Time
	claims     map[linkChan]bool
	linkDown   map[topology.LinkID]sim.Time
	nodeDown   map[topology.NodeID]sim.Time
	conns      map[rtchan.ConnID]*connState
	lastCrash  sim.Time
	anyCrash   bool
	violations []Violation
}

// New creates a checker for one event stream.
func New(p Params) *Checker {
	return &Checker{
		p:          p,
		nodeStates: make(map[nodeChan]trace.State),
		nReachedAt: make(map[nodeChan]sim.Time),
		claims:     make(map[linkChan]bool),
		linkDown:   make(map[topology.LinkID]sim.Time),
		nodeDown:   make(map[topology.NodeID]sim.Time),
		conns:      make(map[rtchan.ConnID]*connState),
	}
}

// Check replays a recorded stream through a fresh checker.
func Check(events []trace.Event, p Params) []Violation {
	c := New(p)
	for _, ev := range events {
		c.Emit(ev)
	}
	return c.Finish()
}

func (c *Checker) violate(ev trace.Event, rule, format string, args ...interface{}) {
	c.violations = append(c.violations, Violation{
		Seq:    c.seq,
		At:     ev.At,
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (c *Checker) conn(id rtchan.ConnID) *connState {
	cs := c.conns[id]
	if cs == nil {
		cs = &connState{
			hops:    make(map[rtchan.ChannelID]int),
			backups: make(map[rtchan.ChannelID]bool),
			failed:  make(map[rtchan.ChannelID]bool),
		}
		c.conns[id] = cs
	}
	return cs
}

// Emit implements trace.Sink.
func (c *Checker) Emit(ev trace.Event) {
	if ev.At < c.lastAt {
		c.violate(ev, "order", "timestamp %v before predecessor %v", ev.At, c.lastAt)
	}
	c.lastAt = ev.At

	switch ev.Kind {
	case trace.KindLinkDown:
		c.linkDown[ev.Link] = ev.At
		c.lastCrash, c.anyCrash = ev.At, true
	case trace.KindLinkUp:
		delete(c.linkDown, ev.Link)
	case trace.KindNodeDown:
		c.nodeDown[ev.Node] = ev.At
		c.lastCrash, c.anyCrash = ev.At, true
	case trace.KindNodeUp:
		delete(c.nodeDown, ev.Node)

	case trace.KindState:
		key := nodeChan{ev.Node, ev.Channel}
		cur := c.nodeStates[key] // StateN when absent
		if ev.From != cur {
			c.violate(ev, "state-machine",
				"node %d channel %d: transition claims from %v but stream says %v",
				ev.Node, ev.Channel, ev.From, cur)
		}
		if !legalEdges[ev.From][ev.To] {
			c.violate(ev, "state-machine",
				"node %d channel %d: illegal Figure-4 edge %v->%v",
				ev.Node, ev.Channel, ev.From, ev.To)
		}
		if ev.From == trace.StateN {
			if nAt, sawN := c.nReachedAt[key]; sawN && nAt == ev.At && !intraBatchLegal[ev.From][ev.To] {
				c.violate(ev, "batch-order",
					"node %d channel %d: left N at the same instant it was torn down (%v->%v inside one batch)",
					ev.Node, ev.Channel, ev.From, ev.To)
			}
		}
		if ev.To == trace.StateN {
			delete(c.nodeStates, key)
			c.nReachedAt[key] = ev.At
		} else {
			c.nodeStates[key] = ev.To
		}

	case trace.KindClaim:
		key := linkChan{ev.Link, ev.Channel}
		if c.claims[key] {
			c.violate(ev, "claim", "channel %d double-claims link %d", ev.Channel, ev.Link)
		}
		c.claims[key] = true
	case trace.KindClaimRelease, trace.KindClaimConvert:
		key := linkChan{ev.Link, ev.Channel}
		if !c.claims[key] {
			c.violate(ev, "claim", "%s on link %d for channel %d without a claim",
				ev.Kind, ev.Link, ev.Channel)
		}
		delete(c.claims, key)

	case trace.KindReportHop, trace.KindActivationHop:
		if downAt, down := c.linkDown[ev.Link]; down && ev.At.Sub(downAt) > c.p.PropSlack {
			c.violate(ev, "traversal", "%s across link %d, down since %v",
				ev.Kind, ev.Link, downAt)
		}
		if _, down := c.nodeDown[ev.Node]; down {
			c.violate(ev, "traversal", "%s delivered to dead node %d", ev.Kind, ev.Node)
		}

	case trace.KindInstall, trace.KindReplenish:
		cs := c.conn(ev.Conn)
		cs.hops[ev.Channel] = int(ev.Aux)
		if ev.Kind == trace.KindInstall && ev.To == trace.StateP {
			cs.primary = ev.Channel
		} else {
			cs.backups[ev.Channel] = true
			delete(cs.failed, ev.Channel)
		}

	case trace.KindReportOriginate:
		cs := c.conn(ev.Conn)
		if ev.Channel == cs.primary {
			if !cs.pending && c.anyCrash {
				cs.pending = true
				cs.failAt = c.lastCrash
				cs.pendingB = len(cs.backups) + len(cs.failed)
			}
		} else if cs.backups[ev.Channel] {
			delete(cs.backups, ev.Channel)
			cs.failed[ev.Channel] = true
		}

	case trace.KindSourceSwitch:
		cs := c.conn(ev.Conn)
		if cs.pending && c.p.DMax > 0 {
			gamma := ev.At.Sub(cs.failAt)
			if bound, ok := c.gammaBound(cs); ok && gamma > bound {
				c.violate(ev, "gamma",
					"connection %d recovered in %v, bound %v (K-1=%d hops, b=%d backups)",
					ev.Conn, gamma, bound, c.maxHops(cs)-1, cs.pendingB)
			}
		}
		cs.pending = false
		cs.primary = ev.Channel
		delete(cs.backups, ev.Channel)
		cs.failed = make(map[rtchan.ChannelID]bool)

	case trace.KindTeardown:
		delete(c.conns, ev.Conn)
	}
	c.seq++
}

// maxHops is the longest configured path among the connection's channels —
// the conservative K−1 of the Γ bound.
func (c *Checker) maxHops(cs *connState) int {
	max := 0
	for _, h := range cs.hops {
		if h > max {
			max = h
		}
	}
	return max
}

// gammaBound computes the §5 bound for a pending recovery. The second
// result is false when the stream never told us a hop count.
func (c *Checker) gammaBound(cs *connState) (sim.Duration, bool) {
	hops := c.maxHops(cs)
	if hops < 1 {
		return 0, false
	}
	k := sim.Duration(hops - 1)
	b := sim.Duration(cs.pendingB - 1)
	if b < 0 {
		b = 0
	}
	return c.p.DetectionSlack + k*c.p.DMax + 2*b*k*c.p.DMax, true
}

// Finish applies the end-of-stream rules and returns all violations (nil
// when the stream conforms).
func (c *Checker) Finish() []Violation {
	if !c.p.AllowOutstandingClaims {
		for key := range c.claims {
			c.violations = append(c.violations, Violation{
				Seq:  -1,
				At:   c.lastAt,
				Rule: "claim",
				Detail: fmt.Sprintf("channel %d still holds a claim on link %d at end of run",
					key.ch, key.link),
			})
		}
	}
	return c.violations
}
