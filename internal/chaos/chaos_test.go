package chaos

import (
	"flag"
	"testing"

	"github.com/rtcl/bcp/internal/bcpd"
)

// The chaos model check is budget-driven: -chaos.episodes sets how many
// seeded episodes TestModelCheck runs (smoke default 40; nightly runs pass
// -chaos.episodes=1000), -chaos.seed pins the run seed for reproduction.
var (
	chaosSeed     = flag.Int64("chaos.seed", 1, "model-check run seed")
	chaosEpisodes = flag.Int("chaos.episodes", 40, "model-check episode budget")
)

// TestModelCheck is the main entrypoint: N seeded episodes across all fault
// classes, each checked by the conformance oracle, the quiescence audit, and
// the benign-liveness rule. Any failure is shrunk and reported with its
// minimal reproducer.
func TestModelCheck(t *testing.T) {
	rep, err := Run(Options{
		Seed:     *chaosSeed,
		Episodes: *chaosEpisodes,
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("episodes=%d skipped=%d conns=%d reestablished=%d events=%d digest=%s",
		rep.Episodes, rep.Skipped, rep.Conns, rep.Reestablished, rep.Events, rep.Digest)
	for _, f := range rep.Failures {
		t.Errorf("episode %d failed; shrunk to %d events (%d probe runs): %v\nreproducer spec: %+v",
			f.Episode, len(f.Shrunk.Events), f.ShrinkRuns, f.Violations, f.Shrunk)
	}
	if rep.Episodes == 0 {
		t.Fatal("no episodes ran (all schedules skipped)")
	}
}

// TestDeterminism runs the same seed twice and demands byte-identical run
// digests: the digest covers every trace event of every episode, so any
// map-order or wall-clock leak in the stack shows up here.
func TestDeterminism(t *testing.T) {
	opts := Options{Seed: *chaosSeed, Episodes: 8}
	a, err := Run(opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if a.Events != b.Events {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Events, b.Events)
	}
}

// TestSabotageCaught is the harness self-test demanded by the issue: with
// the promote-once rearm deliberately disabled (the bug fixed in the
// soft-state rejoin PR), the model check must catch the failure within the
// smoke budget and shrink it to a minimal reproducer of at most 5 fault
// events — failure, repair, second failure, second repair, re-failure; the
// final repair is subsumed by the episode's heal step.
func TestSabotageCaught(t *testing.T) {
	rep, err := Run(Options{
		Seed:     *chaosSeed,
		Episodes: *chaosEpisodes,
		Classes:  []string{ClassPingPong, ClassFlapping},
		Sabotage: &bcpd.Sabotage{SkipPromoteRearm: true},
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Failed() {
		t.Fatalf("sabotaged network passed %d episodes — the harness is blind", rep.Episodes)
	}
	f := rep.Failures[0]
	t.Logf("caught at episode %d; shrunk %d -> %d events in %d probe runs: %v",
		f.Episode, len(f.Original.Events), len(f.Shrunk.Events), f.ShrinkRuns, f.Violations)
	if len(f.Shrunk.Events) > 5 {
		t.Errorf("reproducer not minimal: %d events, want <= 5\n%+v",
			len(f.Shrunk.Events), f.Shrunk.Events)
	}
	if len(f.Violations) == 0 {
		t.Error("shrunk reproducer no longer fails")
	}
	// The reproducer must replay: same spec, same violations class.
	res, err := RunEpisode(f.Shrunk, RunOptions{Sabotage: &bcpd.Sabotage{SkipPromoteRearm: true}})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Error("reproducer replay came back clean")
	}
	// And without the sabotage the same schedule must pass — the failure is
	// the bug's, not the schedule's.
	clean, err := RunEpisode(f.Shrunk, RunOptions{})
	if err != nil {
		t.Fatalf("clean replay: %v", err)
	}
	if len(clean.Violations) != 0 {
		t.Errorf("reproducer fails even without sabotage: %v", clean.Violations)
	}
}

// TestArtifactRoundTrip checks that a written reproducer replays to the
// same digest after a JSON round trip.
func TestArtifactRoundTrip(t *testing.T) {
	spec, err := Generate(*chaosSeed, ClassDouble)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := RunEpisode(spec, RunOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	path := t.TempDir() + "/repro.json"
	a := Artifact{Spec: spec, Violations: res.Violations, Digest: res.Digest}
	if err := WriteArtifact(path, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	res2, err := ReplayArtifact(back, RunOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res2.Digest != res.Digest {
		t.Fatalf("round-tripped spec replays to a different digest:\n  %s\n  %s",
			res.Digest, res2.Digest)
	}
}

// TestGenerateClasses pins basic well-formedness of every schedule class:
// events sorted-by-construction within the horizon, targets valid, and the
// benign flag set as documented.
func TestGenerateClasses(t *testing.T) {
	for _, class := range Classes {
		class := class
		t.Run(class, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				spec, err := Generate(mix(*chaosSeed, uint64(seed)), class)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(spec.Conns) == 0 {
					continue // deterministic skip
				}
				if len(spec.Events) == 0 {
					t.Fatalf("seed %d: no fault events", seed)
				}
				if !specValidOn(spec) {
					t.Fatalf("seed %d: spec has out-of-range targets: %+v", seed, spec)
				}
				for _, ev := range spec.Events {
					if ev.AtNS >= spec.HorizonNS {
						t.Fatalf("seed %d: event %v beyond horizon %d", seed, ev, spec.HorizonNS)
					}
				}
				if class == ClassDouble && spec.Benign {
					t.Fatalf("seed %d: double-failure schedule marked benign", seed)
				}
			}
		})
	}
}
