package routing

import (
	"sort"

	"github.com/rtcl/bcp/internal/topology"
)

// flowEdge is a residual-network edge for the disjoint-path max-flow.
type flowEdge struct {
	to      int
	cap     int
	rev     int             // index of the reverse edge in edges[to]
	link    topology.LinkID // the topology link this arc represents, or NoLink
	forward bool            // true for original arcs, false for residuals
}

type flowNet struct {
	edges [][]flowEdge
}

func (f *flowNet) add(from, to, cap int, link topology.LinkID) {
	f.edges[from] = append(f.edges[from], flowEdge{
		to: to, cap: cap, rev: len(f.edges[to]), link: link, forward: true,
	})
	f.edges[to] = append(f.edges[to], flowEdge{
		to: from, cap: 0, rev: len(f.edges[from]) - 1, link: topology.NoLink, forward: false,
	})
}

// MaxDisjointPaths finds up to count mutually component-disjoint paths from
// src to dst via unit-capacity max-flow, the approach of the disjoint-path
// algorithms the paper cites ([WHA90, SID91]). Unlike the greedy
// SequentialDisjointPaths it is not trapped by an unlucky first shortest
// path: if k component-disjoint paths exist it finds min(k, count).
//
// Disjointness follows the paper's component model: the returned paths share
// no simplex links and no interior nodes. Constraint c restricts usable
// links and interior nodes; c.MaxHops is ignored (flow augmentation does not
// bound individual path lengths).
func MaxDisjointPaths(g *topology.Graph, src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	if src == dst || count <= 0 {
		return nil
	}
	// Split each node v into v_in (2v) -> v_out (2v+1) with capacity 1
	// (count for the shared end nodes) to enforce node-disjointness.
	n := g.NumNodes()
	inID := func(v topology.NodeID) int { return int(2 * v) }
	outID := func(v topology.NodeID) int { return int(2*v + 1) }
	net := &flowNet{edges: make([][]flowEdge, 2*n)}
	for v := topology.NodeID(0); int(v) < n; v++ {
		capV := 1
		switch {
		case v == src || v == dst:
			capV = count
		case !c.nodeOK(v):
			capV = 0
		}
		net.add(inID(v), outID(v), capV, topology.NoLink)
	}
	for _, l := range g.Links() {
		if !c.linkOK(l.ID) {
			continue
		}
		net.add(outID(l.From), inID(l.To), 1, l.ID)
	}

	source, sink := outID(src), inID(dst)
	flows := 0
	for flows < count && augment(net, source, sink) {
		flows++
	}
	if flows == 0 {
		return nil
	}

	// Extract paths: follow saturated forward link arcs from the source.
	// usedOut[u] lists the indices of u's forward arcs carrying flow.
	usedOut := make([][]int, len(net.edges))
	for u := range net.edges {
		for i, e := range net.edges[u] {
			if e.forward && net.edges[e.to][e.rev].cap > 0 {
				for k := 0; k < net.edges[e.to][e.rev].cap; k++ {
					usedOut[u] = append(usedOut[u], i)
				}
			}
		}
	}
	paths := make([]topology.Path, 0, flows)
	for f := 0; f < flows; f++ {
		var links []topology.LinkID
		u := source
		for u != sink {
			if len(usedOut[u]) == 0 {
				break
			}
			i := usedOut[u][0]
			usedOut[u] = usedOut[u][1:]
			e := net.edges[u][i]
			if e.link != topology.NoLink {
				links = append(links, e.link)
			}
			u = e.to
		}
		if u != sink || len(links) == 0 {
			continue
		}
		if p, err := topology.NewPath(g, links); err == nil {
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].Hops() < paths[j].Hops() })
	return paths
}

// augment finds one augmenting path by BFS (Edmonds-Karp) and pushes one
// unit of flow, reporting success.
func augment(net *flowNet, source, sink int) bool {
	type pred struct {
		node, idx int
	}
	preds := make([]pred, len(net.edges))
	for i := range preds {
		preds[i].node = -1
	}
	preds[source].node = source
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == sink {
			break
		}
		for i, e := range net.edges[u] {
			if e.cap <= 0 || preds[e.to].node != -1 {
				continue
			}
			preds[e.to] = pred{node: u, idx: i}
			queue = append(queue, e.to)
		}
	}
	if preds[sink].node == -1 {
		return false
	}
	for v := sink; v != source; {
		p := preds[v]
		e := &net.edges[p.node][p.idx]
		e.cap--
		net.edges[v][e.rev].cap++
		v = p.node
	}
	return true
}
