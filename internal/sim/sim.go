// Package sim is a deterministic discrete-event simulation engine. It drives
// the protocol-level BCP experiments: control-message transmission over the
// RCC network, failure detection, rejoin timers, and data transfer.
//
// Events scheduled at equal times fire in scheduling order (FIFO), so runs
// are reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for callers' convenience; simulated
// durations use the same unit (nanoseconds).
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return Duration(t).String() }

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping a fired or already-stopped timer is a no-op.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.fn = nil
	return true
}

// Fired reports whether the timer's event has run.
func (t *Timer) Fired() bool { return t != nil && t.fired }

// Active reports whether the timer is still pending: scheduled, not fired,
// and not stopped. A nil timer is inactive.
func (t *Timer) Active() bool { return t != nil && !t.fired && !t.stopped }

// When returns the scheduled firing time.
func (t *Timer) When() Time { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is the simulation executive. It is not safe for concurrent use:
// the simulated world is single-threaded by design, which keeps protocol
// traces reproducible.
type Engine struct {
	now       Time
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	processed uint64
}

// New creates an engine whose random source is seeded deterministically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// stopped timers not yet reaped).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d. A negative delay panics: the simulated
// world cannot rewrite its past.
func (e *Engine) Schedule(d Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, tm)
	return tm
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed (false when the queue is empty).
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		tm := heap.Pop(&e.events).(*Timer)
		if tm.stopped {
			continue
		}
		e.now = tm.at
		tm.fired = true
		fn := tm.fn
		tm.fn = nil
		e.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with firing times <= t, then advances the clock
// to exactly t.
func (e *Engine) RunUntil(t Time) {
	for {
		tm := e.peek()
		if tm == nil || tm.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for the next d of simulated time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) peek() *Timer {
	for len(e.events) > 0 {
		if e.events[0].stopped {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}
