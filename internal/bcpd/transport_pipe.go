package bcpd

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/rtcl/bcp/internal/topology"
)

// PostFunc enqueues fn on a node's actor mailbox, reporting success. Live
// transports deliver through it so every protocol callback runs
// runtime-serialized; realtime.Runtime.Post has exactly this shape.
type PostFunc func(node int, fn func()) bool

// PipeTransport carries protocol traffic between live daemons through
// in-memory pipes: one goroutine per simplex link holding messages for the
// propagation delay, then posting delivery to the receiving node's actor
// mailbox. It is the loss-free-wire live transport for tests and
// cmd/bcplive — losses still happen at the edges (down links, full pipes,
// full mailboxes), which is what the protocol is built to survive.
//
// Ownership: the pipe carries the pooled frame buffer itself (every Send and
// delivery runs runtime-serialized, so the network's pools never see
// concurrent access); a message dropped at send time is reclaimed on the
// spot. A message dropped after leaving the sender (transport closing,
// mailbox full) is abandoned to the GC and counted — its buffer cannot be
// returned to the pool from an unserialized goroutine.
type PipeTransport struct {
	post  PostFunc
	depth int // per-link pipe capacity

	n     *Network
	prop  time.Duration
	pipes []chan pipeItem
	down  []atomic.Bool

	stop    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup
	dropped atomic.Uint64 // messages lost in transport (not link-down drops)
}

type pipeItem struct {
	kind  uint8
	frame []byte
	data  *dataPayload
	at    time.Time // delivery deadline (send time + propagation delay)
}

const (
	pipeFrame     uint8 = 1
	pipeData      uint8 = 2
	pipeHeartbeat uint8 = 3
)

// NewPipeTransport creates a pipe transport delivering through post (a
// realtime.Runtime's Post method). depth bounds each link's pipe (<=0 means
// a generous default).
func NewPipeTransport(post PostFunc, depth int) *PipeTransport {
	if post == nil {
		panic("bcpd: nil post")
	}
	if depth <= 0 {
		depth = 256
	}
	return &PipeTransport{post: post, depth: depth, stop: make(chan struct{})}
}

// Attach builds one pipe per simplex link and starts its goroutine.
func (t *PipeTransport) Attach(n *Network) {
	t.n = n
	t.prop = time.Duration(n.cfg.PropDelay)
	g := n.mgr.Graph()
	t.pipes = make([]chan pipeItem, g.NumLinks())
	t.down = make([]atomic.Bool, g.NumLinks())
	for _, l := range g.Links() {
		ch := make(chan pipeItem, t.depth)
		t.pipes[l.ID] = ch
		t.wg.Add(1)
		go t.run(l.ID, int(l.To), ch)
	}
}

// run is one link's pipe: receive, hold until the propagation deadline,
// post delivery to the destination node's mailbox.
func (t *PipeTransport) run(l topology.LinkID, dest int, ch chan pipeItem) {
	defer t.wg.Done()
	hold := time.NewTimer(time.Hour)
	defer hold.Stop()
	for {
		var it pipeItem
		select {
		case <-t.stop:
			return
		case it = <-ch:
		}
		if d := time.Until(it.at); d > 0 {
			hold.Reset(d)
			select {
			case <-t.stop:
				return
			case <-hold.C:
			}
		}
		n := t.n
		var ok bool
		switch it.kind {
		case pipeFrame:
			frame := it.frame
			ok = t.post(dest, func() { n.deliverFrame(l, frame) })
		case pipeData:
			data := it.data
			ok = t.post(dest, func() { n.deliverData(l, data) })
		case pipeHeartbeat:
			ok = t.post(dest, func() { n.deliverHeartbeat(l) })
		}
		if !ok {
			t.dropped.Add(1)
		}
	}
}

// offer submits an item to link l's pipe from runtime-serialized context,
// reporting acceptance. A down link or full pipe refuses; the caller
// reclaims the payload.
func (t *PipeTransport) offer(l topology.LinkID, it pipeItem) bool {
	if t.down[l].Load() || t.closed.Load() {
		return false
	}
	it.at = time.Now().Add(t.prop)
	select {
	case t.pipes[l] <- it:
		return true
	default:
		t.dropped.Add(1)
		return false
	}
}

// SendFrame submits a control frame; refused frames return their buffer to
// the pool immediately (the send side runs runtime-serialized).
func (t *PipeTransport) SendFrame(l topology.LinkID, frame []byte) {
	if !t.offer(l, pipeItem{kind: pipeFrame, frame: frame}) {
		t.n.reclaimFrame(frame)
	}
}

// SendData submits a data message; refused boxes are reclaimed immediately.
func (t *PipeTransport) SendData(l topology.LinkID, p *dataPayload) {
	if !t.offer(l, pipeItem{kind: pipeData, data: p}) {
		t.n.reclaimData(p)
	}
}

// SendHeartbeat submits a heartbeat; heartbeats carry nothing pooled.
func (t *PipeTransport) SendHeartbeat(l topology.LinkID) {
	t.offer(l, pipeItem{kind: pipeHeartbeat})
}

// SetLinkDown fails or repairs link l. Unlike the sim transmitter there is
// no queue to clear: messages already in the pipe left the sender before the
// crash and still arrive, like the sim's in-propagation flight queue.
func (t *PipeTransport) SetLinkDown(l topology.LinkID, down bool) { t.down[l].Store(down) }

// Dropped returns messages lost inside the transport (full pipes, delivery
// refused by a full or stopping mailbox). Link-down drops are not counted
// here — they are the crash model, accounted at the send sites.
func (t *PipeTransport) Dropped() uint64 { return t.dropped.Load() }

// Close stops every pipe goroutine. Call before stopping the runtime; items
// still in pipes are abandoned to the GC.
func (t *PipeTransport) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	close(t.stop)
	t.wg.Wait()
}
