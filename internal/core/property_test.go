package core

import (
	"math/rand"
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Property tests on the multiplexing engine's structural invariants,
// exercised over randomized workloads and topologies:
//
//  1. per link, spare <= Σ bw of the backups crossing it (multiplexing can
//     only save versus dedicated reservation — the paper's base claim)
//  2. per link with any backups, spare >= max backup bw (a lone activation
//     must always fit)
//  3. mux=0 makes the bound in (1) an equality (no sharing at all)
//  4. establishment followed by teardown leaves zero reservations
//  5. R_fast at mux=1 is 1 under any single-component failure
//     (the paper's headline guarantee)

func randomManager(t *testing.T, seed int64, alphaPick func(*rand.Rand) int) (*Manager, *topology.Graph, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var g *topology.Graph
	switch rng.Intn(3) {
	case 0:
		g = topology.NewTorus(4+rng.Intn(3), 4+rng.Intn(3), 50)
	case 1:
		g = topology.NewMesh(4+rng.Intn(3), 4+rng.Intn(3), 80)
	default:
		g = topology.NewRandom(24+rng.Intn(16), 3.5, 60, seed)
	}
	cfg := DefaultConfig()
	if rng.Intn(2) == 0 {
		cfg.TieBreak = rand.New(rand.NewSource(seed + 1))
	}
	m := NewManager(g, cfg)
	n := g.NumNodes()
	for i := 0; i < 120; i++ {
		s := topology.NodeID(rng.Intn(n))
		d := topology.NodeID(rng.Intn(n))
		if s == d {
			continue
		}
		nb := rng.Intn(3)
		degrees := make([]int, nb)
		for j := range degrees {
			degrees[j] = alphaPick(rng)
		}
		spec := rtchan.DefaultSpec()
		if rng.Intn(4) == 0 {
			spec.Bandwidth = 1 + float64(rng.Intn(3))
		}
		_, _ = m.Establish(s, d, spec, degrees)
	}
	return m, g, rng
}

func backupBWOnLink(m *Manager, l topology.LinkID) (sum, max float64, n int) {
	for _, id := range m.plan.net.ChannelsOnLink(l) {
		ch := m.plan.net.Channel(id)
		if ch != nil && ch.Role == rtchan.RoleBackup {
			sum += ch.Bandwidth()
			if ch.Bandwidth() > max {
				max = ch.Bandwidth()
			}
			n++
		}
	}
	return sum, max, n
}

func TestPropertySpareBounds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		m, g, _ := randomManager(t, seed, func(r *rand.Rand) int { return 1 + r.Intn(6) })
		for _, l := range g.Links() {
			sum, max, n := backupBWOnLink(m, l.ID)
			spare := m.plan.net.Spare(l.ID)
			if n == 0 {
				if spare != 0 {
					t.Fatalf("seed %d: link %d spare %g without backups", seed, l.ID, spare)
				}
				continue
			}
			if spare > sum+1e-6 {
				t.Fatalf("seed %d: link %d spare %g exceeds no-mux bound %g", seed, l.ID, spare, sum)
			}
			if spare < max-1e-6 {
				t.Fatalf("seed %d: link %d spare %g below largest backup %g", seed, l.ID, spare, max)
			}
		}
		if err := m.CheckMuxInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestPropertyMuxZeroIsDedicated(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		m, g, _ := randomManager(t, seed, func(*rand.Rand) int { return 0 })
		for _, l := range g.Links() {
			sum, _, n := backupBWOnLink(m, l.ID)
			if n == 0 {
				continue
			}
			if spare := m.plan.net.Spare(l.ID); spare < sum-1e-6 || spare > sum+1e-6 {
				t.Fatalf("seed %d: link %d spare %g, want exactly %g at mux=0", seed, l.ID, spare, sum)
			}
		}
	}
}

func TestPropertyTeardownLeavesNothing(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		m, g, _ := randomManager(t, seed, func(r *rand.Rand) int { return r.Intn(7) })
		for _, c := range m.Connections() {
			if err := m.Teardown(c.ID); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for _, l := range g.Links() {
			if m.plan.net.Dedicated(l.ID) != 0 || m.plan.net.Spare(l.ID) != 0 {
				t.Fatalf("seed %d: link %d dirty (dedicated=%g spare=%g)",
					seed, l.ID, m.plan.net.Dedicated(l.ID), m.plan.net.Spare(l.ID))
			}
		}
		if m.NumConnections() != 0 {
			t.Fatalf("seed %d: %d connections remain", seed, m.NumConnections())
		}
	}
}

func TestPropertyMuxOneSingleFailureGuarantee(t *testing.T) {
	// The headline guarantee: at mux=1, every connection whose primary is
	// killed by a single component failure recovers fast, for any workload
	// and any single failed component.
	for seed := int64(40); seed < 46; seed++ {
		m, g, rng := randomManager(t, seed, func(*rand.Rand) int { return 1 })
		for trial := 0; trial < 40; trial++ {
			var f Failure
			if rng.Intn(2) == 0 {
				f = SingleLink(topology.LinkID(rng.Intn(g.NumLinks())))
			} else {
				f = SingleNode(topology.NodeID(rng.Intn(g.NumNodes())))
			}
			stats := m.Trial(f, OrderByConn, nil)
			if stats.MuxFailed != 0 {
				t.Fatalf("seed %d trial %d: %d multiplexing failures at mux=1",
					seed, trial, stats.MuxFailed)
			}
			// The workload mixes in zero-backup connections, which cannot
			// recover; every *backed-up* (degree 1) connection must.
			if d, ok := stats.ByDegree[1]; ok && d.FastRecovered != d.FailedPrimaries {
				t.Fatalf("seed %d trial %d: mux=1 class recovered %d of %d",
					seed, trial, d.FastRecovered, d.FailedPrimaries)
			}
		}
	}
}

func TestPropertyApplyKeepsCapacityInvariant(t *testing.T) {
	for seed := int64(50); seed < 54; seed++ {
		m, g, rng := randomManager(t, seed, func(r *rand.Rand) int { return 1 + r.Intn(6) })
		for trial := 0; trial < 6; trial++ {
			var f Failure
			if rng.Intn(2) == 0 {
				f = SingleLink(topology.LinkID(rng.Intn(g.NumLinks())))
			} else {
				f = SingleNode(topology.NodeID(rng.Intn(g.NumNodes())))
			}
			if _, err := m.Apply(f, OrderByPriority, rng); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := m.plan.net.CheckInvariants(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := m.CheckMuxInvariants(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestPropertyPiRestrictionSavesSpare(t *testing.T) {
	// The §3.2 refinement can only reduce (or keep) each link's spare.
	build := func(disable bool, seed int64) float64 {
		cfg := DefaultConfig()
		cfg.DisablePiDegreeRestriction = disable
		g := topology.NewTorus(6, 6, 100)
		m := NewManager(g, cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			s := topology.NodeID(rng.Intn(36))
			d := topology.NodeID(rng.Intn(36))
			if s == d {
				continue
			}
			_, _ = m.Establish(s, d, rtchan.DefaultSpec(), []int{1 + rng.Intn(6)})
		}
		return m.plan.net.SpareFraction()
	}
	for seed := int64(60); seed < 64; seed++ {
		with := build(false, seed)
		without := build(true, seed)
		if with > without+1e-9 {
			t.Fatalf("seed %d: restricted spare %g exceeds unrestricted %g", seed, with, without)
		}
	}
}
