package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// Episode timing: short rejoin timers keep episodes fast; the drain budget
// covers one full rejoin timeout after the heal-everything step plus the
// longest rejoin round trip.
const (
	episodeRejoinTimeout = sim.Duration(1 * time.Second)
	episodeProbeDelay    = sim.Duration(100 * time.Millisecond)
	episodeDrainBudget   = sim.Duration(3 * time.Second)
	episodeTrafficRate   = 200 // data messages/second per connection
)

// RunOptions are the per-run knobs that are not part of the spec: the spec
// says what happens to the network, the options say what we do with it.
type RunOptions struct {
	// Sabotage re-introduces a known-fixed bug (harness self-test).
	Sabotage *bcpd.Sabotage
	// FrameTap observes every RCC frame image that crossed the wire —
	// clean ones at send time and corrupted ones after mangling — for
	// fuzz-corpus harvesting. The buffer is pooled; the tap must copy.
	FrameTap func(frame []byte)
	// Sink, when non-nil, additionally receives the episode's full event
	// stream (debugging, golden capture).
	Sink trace.Sink
}

// Result is the outcome of one episode.
type Result struct {
	// Violations from the conformance oracle, the quiescence audit, and
	// the liveness rule, in that order. Empty means the episode passed.
	Violations []string
	// Digest is the SHA-256 of the episode's JSONL event stream — the
	// determinism witness (same spec ⇒ same digest).
	Digest string
	// Events counts trace events in the stream.
	Events int
	// Conns counts established connections; Reestablished counts those
	// that ended with a healthy primary.
	Conns, Reestablished int
	// Net and Chaos are the protocol and transport counters.
	Net   bcpd.Stats
	Chaos bcpd.ChaosStats
}

// digestSink hashes the event stream in JSONL encoding as it is emitted, so
// thousand-episode runs never hold an episode's events in memory.
type digestSink struct {
	hash   hash.Hash
	events int
}

func newDigestSink() *digestSink { return &digestSink{hash: sha256.New()} }

func (d *digestSink) Emit(ev trace.Event) {
	b, err := ev.MarshalJSON()
	if err != nil {
		panic("chaos: event marshal: " + err.Error())
	}
	d.hash.Write(b)
	d.hash.Write([]byte{'\n'})
	d.events++
}

func (d *digestSink) Sum() string { return hex.EncodeToString(d.hash.Sum(nil)) }

// RunEpisode executes one spec: establish, inject the fault schedule under
// the hostile transport, heal everything, drain to quiescence, audit.
func RunEpisode(spec Spec, opts RunOptions) (Result, error) {
	var res Result
	mgr, conns, err := spec.establish()
	if err != nil {
		return res, err
	}
	res.Conns = len(conns)
	g := mgr.Graph()
	eng := sim.New(spec.Seed)

	digest := newDigestSink()
	checker := conformance.New(conformance.Params{
		// No Γ bound: chaos jitter, loss, and partitions have no
		// closed-form recovery bound. Safety rules stay on.
		DMax: 0,
		// Packets already in flight (propagation plus residual
		// transmission) may deliver shortly after a crash.
		PropSlack: sim.Duration(6 * time.Millisecond),
	})
	sinks := trace.Tee{digest, checker}
	if opts.Sink != nil {
		sinks = append(sinks, opts.Sink)
	}

	cfg := bcpd.DefaultConfig()
	cfg.RejoinTimeout = episodeRejoinTimeout
	cfg.RejoinProbeDelay = episodeProbeDelay
	cfg.MaxQueue = 128
	cfg.Sink = sinks
	cfg.Sabotage = opts.Sabotage
	if tap := opts.FrameTap; tap != nil {
		cfg.FrameTap = func(_ topology.LinkID, frame []byte) { tap(frame) }
	}

	params := bcpd.ChaosParams{
		Seed: mix(spec.Seed, 0x9e3779b97f4a7c15),
		Default: bcpd.LinkChaos{
			Drop:     spec.Chaos.Drop,
			Dup:      spec.Chaos.Dup,
			Corrupt:  spec.Chaos.Corrupt,
			Delay:    spec.Chaos.Delay,
			DelayMax: sim.Duration(spec.Chaos.DelayMaxNS),
		},
	}
	if tap := opts.FrameTap; tap != nil {
		params.CorruptTap = func(_ topology.LinkID, frame []byte) { tap(frame) }
	}
	ct := bcpd.NewChaosTransport(bcpd.NewSimTransport(), params)
	net := bcpd.NewOn(eng, ct, mgr, cfg)

	for _, c := range conns {
		if err := net.StartTraffic(c.ID, episodeTrafficRate); err != nil {
			return res, fmt.Errorf("chaos: start traffic: %w", err)
		}
	}

	// Inject the schedule. Events are scheduled up front; the engine
	// interleaves them with protocol activity deterministically.
	for _, ev := range spec.Events {
		ev := ev
		eng.At(sim.Time(ev.AtNS), func() {
			switch ev.Kind {
			case EvFailLink:
				net.FailLink(topology.LinkID(ev.Target))
			case EvRepairLink:
				net.RepairLink(topology.LinkID(ev.Target))
			case EvFailNode:
				net.FailNode(topology.NodeID(ev.Target))
			case EvRepairNode:
				net.RepairNode(topology.NodeID(ev.Target))
			case EvCutLink:
				ct.SetPartition(topology.LinkID(ev.Target), true)
			case EvHealLink:
				ct.SetPartition(topology.LinkID(ev.Target), false)
			}
		})
	}
	eng.RunFor(sim.Duration(spec.HorizonNS))

	// Heal everything: repair every component, lift every partition, turn
	// the packet chaos off, stop the data sources — then drain. From here
	// the network must converge to a quiet, consistent state on its own
	// (rejoins completing or rejoin timers reclaiming).
	for v := 0; v < g.NumNodes(); v++ {
		if net.NodeDown(topology.NodeID(v)) {
			net.RepairNode(topology.NodeID(v))
		}
	}
	for l := 0; l < g.NumLinks(); l++ {
		if net.LinkDown(topology.LinkID(l)) {
			net.RepairLink(topology.LinkID(l))
		}
	}
	ct.HealAllPartitions()
	for l := 0; l < g.NumLinks(); l++ {
		ct.SetLinkChaos(topology.LinkID(l), bcpd.LinkChaos{})
	}
	for _, c := range conns {
		net.StopTraffic(c.ID)
	}

	deadline := eng.Now().Add(episodeDrainBudget)
	for eng.Pending() > 0 && eng.Now() < deadline {
		eng.Step()
	}

	var violations []string
	if eng.Pending() > 0 {
		violations = append(violations,
			fmt.Sprintf("failed to quiesce: %d events still pending after %v drain", eng.Pending(), episodeDrainBudget))
	}
	for _, v := range checker.Finish() {
		violations = append(violations, "conformance: "+v.String())
	}
	violations = append(violations, net.CheckQuiescence()...)
	for _, c := range conns {
		if net.ConnectionEstablished(c.ID) {
			res.Reestablished++
		} else if spec.Benign {
			violations = append(violations,
				fmt.Sprintf("liveness: connection %d not re-established after benign schedule", c.ID))
		}
	}

	res.Violations = violations
	res.Digest = digest.Sum()
	res.Events = digest.events
	res.Net = net.Stats()
	res.Chaos = ct.Stats()
	return res, nil
}

// mix is a splitmix64 step: decorrelates derived seeds (per-episode, per
// subsystem) from the run seed.
func mix(seed int64, salt uint64) int64 {
	z := uint64(seed) + salt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
