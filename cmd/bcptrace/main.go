// Command bcptrace runs one failure-recovery scenario through the
// message-level BCP protocol engine and prints every protocol event with
// its simulated timestamp: detection, failure reports, activations,
// spare-bandwidth claims, multiplexing failures, rejoins, and teardowns.
//
// Usage:
//
//	bcptrace                       # default: 8-hop torus connection, link crash
//	bcptrace -scheme 1             # destination-initiated switching
//	bcptrace -fail 5               # crash the primary's 6th link
//	bcptrace -backups 2 -hit-first # also crash backup 1: activation retrial
//	bcptrace -repair 200ms         # repair the link, watch the rejoin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

func main() {
	var (
		scheme   = flag.Int("scheme", 3, "channel-switching scheme (1|2|3)")
		failPos  = flag.Int("fail", 2, "primary link index to crash")
		backups  = flag.Int("backups", 1, "number of backup channels")
		hitFirst = flag.Bool("hit-first", false, "also crash the first backup's last link")
		repair   = flag.Duration("repair", 0, "repair the failed link after this delay (0 = never)")
		rate     = flag.Float64("rate", 500, "data message rate (msgs/s)")
	)
	flag.Parse()

	g := topology.NewTorus(8, 8, 200)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())

	src, dst := topology.NodeID(0), topology.NodeID(36)
	paths := mgr.Router().SequentialDisjointPaths(src, dst, *backups+1, routing.Constraint{})
	if len(paths) < *backups+1 {
		fmt.Fprintln(os.Stderr, "bcptrace: not enough disjoint paths")
		os.Exit(1)
	}
	degrees := make([]int, *backups)
	for i := range degrees {
		degrees[i] = 1
	}
	conn, err := mgr.EstablishOnPaths(rtchan.DefaultSpec(), paths[0], paths[1:*backups+1], degrees)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcptrace:", err)
		os.Exit(1)
	}
	fmt.Printf("connection %d: primary %v\n", conn.ID, conn.Primary.Path)
	for i, b := range conn.Backups {
		fmt.Printf("backup %d: %v\n", i+1, b.Path)
	}

	cfg := bcpd.DefaultConfig()
	cfg.Scheme = bcpd.Scheme(*scheme)
	cfg.RejoinTimeout = 2 * time.Second
	cfg.RejoinProbeDelay = 100 * time.Millisecond
	cfg.Trace = func(at sim.Time, node topology.NodeID, event string) {
		fmt.Printf("%12v  node %-2d  %s\n", time.Duration(at), node, event)
	}
	net := bcpd.New(eng, mgr, cfg)
	if err := net.StartTraffic(conn.ID, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "bcptrace:", err)
		os.Exit(1)
	}

	if *failPos < 0 || *failPos >= len(conn.Primary.Path.Links()) {
		fmt.Fprintln(os.Stderr, "bcptrace: fail index out of range")
		os.Exit(1)
	}
	failLink := conn.Primary.Path.Links()[*failPos]
	failAt := sim.Time(50 * time.Millisecond)
	eng.At(failAt, func() {
		lk := g.Link(failLink)
		fmt.Printf("%12v  ---     link %d->%d crashes\n", time.Duration(failAt), lk.From, lk.To)
		net.FailLink(failLink)
		if *hitFirst && len(conn.Backups) > 0 {
			bl := conn.Backups[0].Path.Links()
			last := bl[len(bl)-1]
			lk := g.Link(last)
			fmt.Printf("%12v  ---     link %d->%d crashes\n", time.Duration(failAt), lk.From, lk.To)
			net.FailLink(last)
		}
	})
	if *repair > 0 {
		eng.At(failAt.Add(sim.Duration(*repair)), func() {
			fmt.Printf("%12v  ---     failed link repaired\n", time.Duration(eng.Now()))
			net.RepairLink(failLink)
		})
	}
	eng.RunFor(3 * time.Second)

	st := net.Stats()
	fmt.Printf("\nsummary: reports=%d activations=%d muxfail=%d rejoins=%d expiries=%d\n",
		st.ReportsGenerated, st.ActivationsStarted, st.MuxFailures, st.Rejoins, st.RejoinExpiries)
	fmt.Printf("data: sent=%d delivered=%d lost=%d  disruption=%v\n",
		st.DataSent, st.DataDelivered, st.DataSent-st.DataDelivered,
		time.Duration(net.MaxArrivalGap(conn.ID)))
}
