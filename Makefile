GO ?= go

.PHONY: build test race vet verify bench bench-ab chaos chaos-nightly

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: vet + build + the full suite under the race
# detector (the parallel sweep worker pool runs even in short mode).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench records the kernel micro-benchmarks to BENCH_<LABEL>.json; set
# COMPARE to a previous file to embed deltas. SEED fixes the workload rng
# (DisjointPair's sampled node pairs) so runs are comparable across trees.
LABEL ?= dev
COMPARE ?=
SEED ?= 1
bench:
	$(GO) run ./cmd/bcpbench -label $(LABEL) -seed $(SEED) $(if $(COMPARE),-compare $(COMPARE))

# bench-ab is the same-box batched-vs-per-message restoration A/B: both
# engines in one process, ratio floors enforced (CI runs it in bench-smoke).
bench-ab:
	$(GO) run ./cmd/bcpbench -ab -seed $(SEED)

# chaos is the CI smoke budget: a fixed seed, a small episode count, and
# the seeded-bug catch run under the race detector. CHAOS_SEED/CHAOS_EPISODES
# override the defaults. chaos-nightly is the documented nightly budget —
# 1000 episodes (~10s wall, zero violations, deterministic digest).
CHAOS_SEED ?= 1
CHAOS_EPISODES ?= 40
chaos:
	$(GO) test -race -count=1 -run 'TestModelCheck|TestSabotageCaught|TestGolden' \
		./internal/chaos -chaos.seed=$(CHAOS_SEED) -chaos.episodes=$(CHAOS_EPISODES)

chaos-nightly:
	$(GO) run ./cmd/bcpchaos -seed $(CHAOS_SEED) -episodes 1000 -v
