package experiment

// The paper's motivating example (Figures 1 and 2): a 10-node network where
// three channels compete for a bottleneck link. Blind rerouting after the
// failure of N2 cannot restore both affected channels within their QoS
// bounds, while BCP's a-priori backups (with backup multiplexing on the
// bottleneck) restore everything instantly.
//
// Topology (nodes N1..N10 -> ids 0..9), each adjacent pair joined by two
// simplex links that fit two 1-unit channels each:
//
//	N1 --- N2 --- N3        N1=0  N2=1  N3=2
//	 |      |      |
//	N4 --- N5 --- N6        N4=3  N5=4  N6=5
//	 |      |      |
//	N7 --- N8 --- N9        N7=6  N8=7  N9=8
//	        |
//	       N10               N10=9
//
// The figure's exact channel endpoints are not fully legible from the
// text, so these tests keep the *structure* of the argument rather than the
// drawing: two channels traverse a node N2 whose failure forces both onto a
// detour corridor with capacity for only one of them, while a third channel
// already occupies half that corridor. Blind rerouting then loses one
// channel; BCP with multiplexed backups — and the third channel's primary
// kept off the corridor at planning time (Figure 2) — saves both.

import (
	"testing"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

func figure1Graph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph("figure1", 10)
	duplex := func(a, b topology.NodeID) {
		if _, err := g.AddLink(a, b, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddLink(b, a, 2); err != nil {
			t.Fatal(err)
		}
	}
	// 3x3 grid N1..N9 plus N10 hanging off N8.
	duplex(0, 1)
	duplex(1, 2)
	duplex(0, 3)
	duplex(1, 4)
	duplex(2, 5)
	duplex(3, 4)
	duplex(4, 5)
	duplex(3, 6)
	duplex(4, 7)
	duplex(5, 8)
	duplex(6, 7)
	duplex(7, 8)
	duplex(7, 9)
	return g
}

func fig1Path(t *testing.T, g *topology.Graph, nodes ...topology.NodeID) topology.Path {
	t.Helper()
	p, err := topology.PathBetween(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFigure1BlindReroutingLosesAChannel reproduces Figure 1: channels 1
// and 2 run through N2 (node 1); channel 3 occupies half of the N4->N5->N6
// detour corridor. After N2 fails, the corridor (links 3->4, 4->5) has one
// unit left: only one of the two affected channels fits a shortest detour,
// and the other's QoS (shortest+2) cannot be met elsewhere.
func TestFigure1BlindReroutingLosesAChannel(t *testing.T) {
	g := figure1Graph(t)
	m := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	// No backups: the blind-rerouting world.
	ch1, err := m.EstablishOnPaths(spec, fig1Path(t, g, 0, 1, 2, 5), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 2 has the tight QoS of the paper's narrative: "if channel 2's
	// QoS requirement is too tight to fit the longer path, channel 2 cannot
	// be recovered from N2's failure".
	tight := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 1}
	ch2, err := m.EstablishOnPaths(tight, fig1Path(t, g, 0, 1, 4, 5), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 3 takes the corridor (Figure 1(a) routes it over N5-N6).
	ch3, err := m.EstablishOnPaths(spec, fig1Path(t, g, 3, 4, 5, 8), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = ch3

	// The corridor links 3->4 and 4->5 now hold one unit each (channel 3),
	// leaving room for exactly one rerouted channel. After N2 dies, both
	// channel 1 and channel 2 need new paths through it.
	re := mustReestablish(m)
	stats := re.Trial(core.SingleNode(1))
	if stats.FailedPrimaries != 2 {
		t.Fatalf("N2 failure should hit channels 1 and 2, got %d", stats.FailedPrimaries)
	}
	if stats.FastRecovered >= 2 {
		t.Fatalf("blind rerouting restored both channels (%d) — the bottleneck did not bind", stats.FastRecovered)
	}
	_ = ch1
	_ = ch2
}

func mustReestablish(m *core.Manager) *reestablishShim { return &reestablishShim{m} }

// reestablishShim avoids an import cycle on internal/baseline in this test
// by reimplementing the minimal blind-rerouting trial inline.
type reestablishShim struct{ m *core.Manager }

func (r *reestablishShim) Trial(f core.Failure) core.RecoveryStats {
	var stats core.RecoveryStats
	g := r.m.Graph()
	net := r.m.Network()
	freed := make(map[topology.LinkID]float64)
	var needs []*core.DConnection
	for _, conn := range r.m.Connections() {
		if conn.Primary == nil || f.NodeFailed(conn.Src) || f.NodeFailed(conn.Dst) {
			continue
		}
		if f.HitsPath(conn.Primary.Path) {
			stats.FailedPrimaries++
			needs = append(needs, conn)
			for _, l := range conn.Primary.Path.Links() {
				freed[l] += conn.Spec.Bandwidth
			}
		}
	}
	taken := make(map[topology.LinkID]float64)
	for _, conn := range needs {
		bw := conn.Spec.Bandwidth
		base := distanceIgnoring(g, conn.Src, conn.Dst, f)
		p, ok := shortestIgnoring(g, conn.Src, conn.Dst, f, func(l topology.LinkID) bool {
			return net.Free(l)+freed[l]-taken[l] >= bw-1e-9
		}, base+conn.Spec.SlackHops)
		if ok {
			for _, l := range p.Links() {
				taken[l] += bw
			}
			stats.FastRecovered++
		}
	}
	return stats
}

// TestFigure2BCPRestoresEverything reproduces Figure 2: same demands, but
// planned with BCP. Channel 3's primary keeps off the corridor (routed over
// N8/N9 — the paper moves it over N9), the three backups share the corridor
// via multiplexing, and the N2 failure is absorbed instantly.
func TestFigure2BCPRestoresEverything(t *testing.T) {
	g := figure1Graph(t)
	m := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	// Figure 2(a): primaries 1 and 2 via N2; their backups and channel 3's
	// backup multiplex on the corridor links around N5.
	// Degrees of 4: primaries 1 and 2 share link N1->N2 plus nodes N1, N5
	// (sc = 4), so their backups do NOT share spare bandwidth — while
	// channel 3's disjoint primary lets its backup multiplex with both.
	// This is exactly Figure 2's sharing pattern.
	ch1, err := m.EstablishOnPaths(spec,
		fig1Path(t, g, 0, 1, 2, 5),                  // primary-1 via N2, N3
		[]topology.Path{fig1Path(t, g, 0, 3, 4, 5)}, // backup-1 via the corridor
		[]int{4})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := m.EstablishOnPaths(spec,
		fig1Path(t, g, 0, 1, 4, 5),                        // primary-2 via N2, N5
		[]topology.Path{fig1Path(t, g, 0, 3, 6, 7, 8, 5)}, // backup-2 south loop
		[]int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Channel 3: primary routed *around* the corridor (Figure 2's point),
	// backup multiplexed onto it.
	ch3, err := m.EstablishOnPaths(spec,
		fig1Path(t, g, 3, 6, 7, 8),                  // primary-3 kept off the corridor
		[]topology.Path{fig1Path(t, g, 3, 4, 7, 8)}, // backup-3 multiplexes on 3->4
		[]int{4})
	if err != nil {
		t.Fatal(err)
	}

	// N2 (node 1) fails: channels 1 and 2 lose their primaries; both
	// backups activate; channel 3 is untouched.
	stats := m.Trial(core.SingleNode(1), core.OrderByConn, nil)
	if stats.FailedPrimaries != 2 || stats.FastRecovered != 2 {
		t.Fatalf("BCP should restore both channels: %+v", stats)
	}
	// The corridor's spare was shared: backup-1 and backup-3 coexist on
	// link 3->4 with a single unit of spare (disjoint primaries).
	shared := g.LinkBetween(3, 4)
	if m.BackupsOnLink(shared) != 2 {
		t.Fatalf("corridor sharing did not materialize on 3->4 (backups=%d)", m.BackupsOnLink(shared))
	}
	if spare := m.Network().Spare(shared); spare >= 2 {
		t.Fatalf("corridor spare %g: no multiplexing", spare)
	}
	_, _, _ = ch1, ch2, ch3
}

// Helpers for the blind-rerouting shim.

func distanceIgnoring(g *topology.Graph, src, dst topology.NodeID, f core.Failure) int {
	p, ok := shortestIgnoring(g, src, dst, f, nil, 0)
	if !ok {
		return 1 << 20
	}
	return p.Hops()
}

func shortestIgnoring(g *topology.Graph, src, dst topology.NodeID, f core.Failure, linkOK func(topology.LinkID) bool, maxHops int) (topology.Path, bool) {
	c := routing.Constraint{
		MaxHops: maxHops,
		LinkAllowed: func(l topology.LinkID) bool {
			if f.LinkFailed(l) {
				return false
			}
			lk := g.Link(l)
			if f.NodeFailed(lk.From) || f.NodeFailed(lk.To) {
				return false
			}
			return linkOK == nil || linkOK(l)
		},
		NodeAllowed: func(n topology.NodeID) bool { return !f.NodeFailed(n) },
	}
	return routing.ShortestPath(g, src, dst, c)
}
