package reliability

import (
	"math"
	"testing"
)

func TestCTMCPureDecay(t *testing.T) {
	// Two states, rate λ from 0 to 1: P0(t) = e^{-λt}.
	c := NewCTMC(2)
	c.SetRate(0, 1, 0.5)
	for _, tt := range []float64{0, 0.1, 1, 5, 20} {
		p := c.TransientSolve([]float64{1, 0}, tt, 0)
		want := math.Exp(-0.5 * tt)
		if !almost(p[0], want, 1e-9) {
			t.Fatalf("t=%g: P0=%g, want %g", tt, p[0], want)
		}
		if !almost(p[0]+p[1], 1, 1e-9) {
			t.Fatalf("t=%g: probabilities sum to %g", tt, p[0]+p[1])
		}
	}
}

func TestCTMCBirthDeathSteadyState(t *testing.T) {
	// M/M/1/1: rates 0->1 = a, 1->0 = b; steady state P1 = a/(a+b).
	c := NewCTMC(2)
	a, b := 2.0, 3.0
	c.SetRate(0, 1, a)
	c.SetRate(1, 0, b)
	p := c.TransientSolve([]float64{1, 0}, 100, 0)
	if !almost(p[1], a/(a+b), 1e-6) {
		t.Fatalf("steady P1 = %g, want %g", p[1], a/(a+b))
	}
}

func TestCTMCZeroTime(t *testing.T) {
	c := NewCTMC(3)
	c.SetRate(0, 1, 1)
	p := c.TransientSolve([]float64{0.25, 0.25, 0.5}, 0, 0)
	if p[0] != 0.25 || p[1] != 0.25 || p[2] != 0.5 {
		t.Fatalf("t=0 should return the initial vector, got %v", p)
	}
}

func TestCTMCNoTransitions(t *testing.T) {
	c := NewCTMC(2)
	p := c.TransientSolve([]float64{0.3, 0.7}, 10, 0)
	if p[0] != 0.3 || p[1] != 0.7 {
		t.Fatalf("static chain changed: %v", p)
	}
}

func TestDConnModelReliability(t *testing.T) {
	// Channel re-establishment is much faster than failure (paper: seconds
	// vs 1000-hour MTBF), so R(t) should stay extremely close to 1 for
	// moderate horizons.
	m := DConnModel{Lambda1: 1e-3, Lambda2: 1e-3, Lambda3: 0, Mu: 100}
	r := m.Reliability(10)
	if r < 0.9999 || r > 1 {
		t.Fatalf("R(10) = %g", r)
	}
	// Monotone non-increasing in t.
	prev := 1.0
	for _, tt := range []float64{0, 1, 10, 100, 1000, 10000} {
		r := m.Reliability(tt)
		if r > prev+1e-9 {
			t.Fatalf("R increased at t=%g: %g > %g", tt, r, prev)
		}
		prev = r
	}
}

func TestDConnModelSharedPartDominates(t *testing.T) {
	// With a large shared-part failure rate λ3, the backup barely helps.
	shared := DConnModel{Lambda1: 1e-3, Lambda2: 1e-3, Lambda3: 1e-2, Mu: 10}
	disjoint := DConnModel{Lambda1: 1e-3, Lambda2: 1e-3, Lambda3: 0, Mu: 10}
	if shared.Reliability(100) >= disjoint.Reliability(100) {
		t.Fatal("shared components should reduce reliability")
	}
}

func TestDConnModelRepairRateHelps(t *testing.T) {
	slow := DConnModel{Lambda1: 1e-2, Lambda2: 1e-2, Lambda3: 0, Mu: 0.1}
	fast := DConnModel{Lambda1: 1e-2, Lambda2: 1e-2, Lambda3: 0, Mu: 100}
	if fast.Reliability(100) <= slow.Reliability(100) {
		t.Fatal("faster repair should improve reliability")
	}
}

func TestSymmetricModelMatchesGeneral(t *testing.T) {
	// Figure 3(b) must agree with Figure 3(a) when λ1=λ2=λ, λ3=0.
	lam, mu := 2e-3, 5.0
	gen := DConnModel{Lambda1: lam, Lambda2: lam, Lambda3: 0, Mu: mu}
	sym := SymmetricDConnModel{Lambda: lam, Mu: mu}
	for _, tt := range []float64{1, 10, 100, 1000} {
		rg, rs := gen.Reliability(tt), sym.Reliability(tt)
		if !almost(rg, rs, 1e-6) {
			t.Fatalf("t=%g: general %g vs symmetric %g", tt, rg, rs)
		}
	}
}

func TestCTMCvsCombinatorialModel(t *testing.T) {
	// The paper replaces the Markov model with the combinatorial Pr because
	// μ >> λ resets the system each time unit. Check the two agree at first
	// order over one time unit for small λ.
	lambda := 1e-5
	cPrim, cBack := 7, 9
	pr := PrSingleBackup(lambda, cPrim, cBack, 0)
	m := DConnModel{
		Lambda1: float64(cPrim) * lambda,
		Lambda2: float64(cBack) * lambda,
		Lambda3: 0,
		Mu:      1000, // repair far faster than the unit horizon
	}
	rt := m.Reliability(1)
	if math.Abs(pr-rt) > 1e-6 {
		t.Fatalf("combinatorial %v vs Markov %v", pr, rt)
	}
}

func TestCTMCPanics(t *testing.T) {
	c := NewCTMC(2)
	for _, fn := range []func(){
		func() { c.SetRate(0, 0, 1) },
		func() { c.SetRate(0, 1, -1) },
		func() { c.TransientSolve([]float64{1}, 1, 0) },
		func() { c.TransientSolve([]float64{1, 0}, -1, 0) },
		func() { NewCTMC(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCTMCSolve(b *testing.B) {
	m := DConnModel{Lambda1: 1e-3, Lambda2: 1e-3, Lambda3: 1e-4, Mu: 10}
	c := m.Chain()
	p0 := []float64{1, 0, 0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.TransientSolve(p0, 100, 0)
	}
}
