// Package reliability implements the paper's fault-tolerance mathematics:
// the pairwise simultaneous-activation probability S(Bi,Bj) that drives
// backup multiplexing (§3.2), the combinatorial per-connection reliability
// Pr with its multiplexing-failure bound (§3.3), and the continuous-time
// Markov models of Figure 3 solved by uniformization.
package reliability

import (
	"fmt"
	"math"
)

// SimultaneousActivation returns S(Bi, Bj): the probability that backups Bi
// and Bj must be activated simultaneously, bounded by the probability that
// their primary channels Mi and Mj fail in the same time unit.
//
//	S = 1 - { (1-λ)^c(Mi) + (1-λ)^c(Mj) - (1-λ)^(c(Mi)+c(Mj)-sc(Mi,Mj)) }
//
// where ci, cj are the component counts of the two primary paths, sc the
// number of components they share, and lambda the per-component failure
// probability during one time unit.
func SimultaneousActivation(lambda float64, ci, cj, sc int) float64 {
	if lambda < 0 || lambda > 1 {
		panic(fmt.Sprintf("reliability: lambda %g out of [0,1]", lambda))
	}
	if sc > ci || sc > cj || sc < 0 || ci < 0 || cj < 0 {
		panic(fmt.Sprintf("reliability: inconsistent component counts ci=%d cj=%d sc=%d", ci, cj, sc))
	}
	q := 1 - lambda
	s := 1 - (math.Pow(q, float64(ci)) + math.Pow(q, float64(cj)) - math.Pow(q, float64(ci+cj-sc)))
	// Clamp tiny negative round-off.
	if s < 0 {
		return 0
	}
	return s
}

// NuForDegree converts the paper's integer multiplexing degree ("mux=α":
// multiplex two backups iff their primaries share fewer than α components)
// into a threshold ν on S. Since S ≈ sc·λ for small λ, thresholding S at
// (α−0.5)·λ reproduces the integer rule without ambiguity at exactly α
// shared components. mux=0 (multiplexing disabled) maps to ν = 0: no S is
// below it, so nothing multiplexes.
func NuForDegree(lambda float64, alpha int) float64 {
	if alpha <= 0 {
		return 0
	}
	return (float64(alpha) - 0.5) * lambda
}

// ChannelSurvival returns the probability that a channel whose path has c
// components survives one time unit: (1-λ)^c.
func ChannelSurvival(lambda float64, c int) float64 {
	return math.Pow(1-lambda, float64(c))
}

// MuxFailureBound returns the paper's upper bound on P_muxf(Bi), the
// probability that Bi is unavailable due to a multiplexing failure:
//
//	P_muxf(Bi) <= Σ_ℓ 1 - (1-ν)^{|Ψ(Bi,ℓ)|}
//
// psiSizes holds |Ψ(Bi,ℓ)| — the number of backups multiplexed with Bi — for
// each link ℓ of Bi's path. The result is clamped to 1.
func MuxFailureBound(nu float64, psiSizes []int) float64 {
	var sum float64
	for _, n := range psiSizes {
		if n < 0 {
			panic("reliability: negative Ψ size")
		}
		sum += 1 - math.Pow(1-nu, float64(n))
	}
	return math.Min(sum, 1)
}

// BackupInfo describes one backup channel for the Pr computation.
type BackupInfo struct {
	Components int     // c(Bi): component count of the backup's path
	PMuxFail   float64 // P_muxf(Bi), e.g. from MuxFailureBound
}

// Pr returns the reliability of a D-connection under the paper's
// combinatorial model: the probability that, within one time unit, either
// the primary survives, or some backup both survives and avoids a
// multiplexing failure. Backups are tried in order, matching serial-number
// activation:
//
//	Pr = P(M ok) + P(M fails) · Σ_i P(B_i usable) · Π_{j<i} P(B_j unusable)
//
// where P(B usable) = (1-λ)^c(B) · (1 − P_muxf(B)).
func Pr(lambda float64, primaryComponents int, backups []BackupInfo) float64 {
	pmOK := ChannelSurvival(lambda, primaryComponents)
	recover := 0.0
	allPrevFail := 1.0
	for _, b := range backups {
		usable := ChannelSurvival(lambda, b.Components) * (1 - b.PMuxFail)
		recover += allPrevFail * usable
		allPrevFail *= 1 - usable
	}
	return pmOK + (1-pmOK)*recover
}

// PrSingleBackup is the paper's explicit single-backup formula:
//
//	Pr = P(M ok) + P(M fails)·P(B ok)·(1 − P_muxf(B)).
func PrSingleBackup(lambda float64, primaryComponents, backupComponents int, pMuxFail float64) float64 {
	return Pr(lambda, primaryComponents, []BackupInfo{{Components: backupComponents, PMuxFail: pMuxFail}})
}
