package topology

import (
	"fmt"
	"math/rand"
)

// NewTorus builds a rows x cols wrapped mesh (torus). Every node is connected
// to its four grid neighbors by a pair of simplex links of the given
// capacity. The paper's evaluation network is an 8x8 torus with 200 Mbps
// links.
//
// Node (r,c) has id r*cols+c.
func NewTorus(rows, cols int, capacity float64) *Graph {
	if rows < 2 || cols < 2 {
		panic("topology: torus requires at least 2x2")
	}
	g := NewGraph(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Add the "east" and "south" duplex pairs once per node;
			// wrap-around included. For a 2-wide dimension the wrap link
			// would duplicate the direct link, so skip it there.
			if cols > 2 || c+1 < cols {
				g.addDuplex(id(r, c), id(r, (c+1)%cols), capacity)
			}
			if rows > 2 || r+1 < rows {
				g.addDuplex(id(r, c), id((r+1)%rows, c), capacity)
			}
		}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewMesh builds a rows x cols mesh (grid without wrap-around links).
// The paper's second evaluation network is an 8x8 mesh with 300 Mbps links.
func NewMesh(rows, cols int, capacity float64) *Graph {
	if rows < 1 || cols < 1 {
		panic("topology: empty mesh")
	}
	g := NewGraph(fmt.Sprintf("mesh-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.addDuplex(id(r, c), id(r, c+1), capacity)
			}
			if r+1 < rows {
				g.addDuplex(id(r, c), id(r+1, c), capacity)
			}
		}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewRing builds an n-node bidirectional ring.
func NewRing(n int, capacity float64) *Graph {
	if n < 3 {
		panic("topology: ring requires at least 3 nodes")
	}
	g := NewGraph(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		g.addDuplex(NodeID(i), NodeID((i+1)%n), capacity)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewLine builds an n-node line (path graph). Sparsest connected topology;
// useful for exercising the "no disjoint backup exists" edge cases.
func NewLine(n int, capacity float64) *Graph {
	if n < 2 {
		panic("topology: line requires at least 2 nodes")
	}
	g := NewGraph(fmt.Sprintf("line-%d", n), n)
	for i := 0; i+1 < n; i++ {
		g.addDuplex(NodeID(i), NodeID(i+1), capacity)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewStar builds a star with one hub (node 0) and n-1 leaves.
func NewStar(n int, capacity float64) *Graph {
	if n < 2 {
		panic("topology: star requires at least 2 nodes")
	}
	g := NewGraph(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		g.addDuplex(0, NodeID(i), capacity)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewFullMesh builds a complete graph on n nodes.
func NewFullMesh(n int, capacity float64) *Graph {
	if n < 2 {
		panic("topology: full mesh requires at least 2 nodes")
	}
	g := NewGraph(fmt.Sprintf("full-%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.addDuplex(NodeID(i), NodeID(j), capacity)
		}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewHypercube builds a d-dimensional hypercube (2^d nodes).
func NewHypercube(d int, capacity float64) *Graph {
	if d < 1 || d > 20 {
		panic("topology: hypercube dimension out of range")
	}
	n := 1 << d
	g := NewGraph(fmt.Sprintf("hypercube-%d", d), n)
	for i := 0; i < n; i++ {
		for b := 0; b < d; b++ {
			j := i ^ (1 << b)
			if j > i {
				g.addDuplex(NodeID(i), NodeID(j), capacity)
			}
		}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewRandom builds a connected random graph: a random spanning tree plus
// extra duplex edges until the average node degree reaches avgDegree.
// Deterministic for a given seed.
func NewRandom(n int, avgDegree float64, capacity float64, seed int64) *Graph {
	if n < 2 {
		panic("topology: random graph requires at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(fmt.Sprintf("random-%d", n), n)
	// Random spanning tree: connect each node i>0 to a random earlier node,
	// over a random permutation so the tree shape varies.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := perm[rng.Intn(i)]
		g.addDuplex(NodeID(perm[i]), NodeID(j), capacity)
	}
	wantEdges := int(avgDegree * float64(n) / 2)
	for tries := 0; g.NumLinks()/2 < wantEdges && tries < 50*n*n; tries++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b || g.LinkBetween(a, b) != NoLink {
			continue
		}
		g.addDuplex(a, b, capacity)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
