package core

import (
	"math/rand"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// NetworkPlan is the shared half of the control plane: the state the paper's
// tables are computed from, frozen between write transactions. It holds the
// topology and reservation substrate, the established D-connections, the
// per-link multiplexing structure (Π sets, spare sizing, activation claims),
// and the memoized S(Bi,Bj) pair cache.
//
// A plan is mutated only by its owning Manager, under the Manager's writer
// lock; between writes it is immutable and may be read by any number of
// goroutines concurrently (each through its own TrialView, which carries the
// per-goroutine scratch a trial needs). The epoch field counts write
// transactions — the control-plane analogue of topology.Graph.Version —
// so derived read-side state can detect that the plan changed underneath it.
type NetworkPlan struct {
	cfg     Config
	net     *rtchan.Network
	conns   map[rtchan.ConnID]*DConnection
	order   []rtchan.ConnID // establishment order, for deterministic iteration
	mux     []linkMux       // one per link
	scache  *sCache         // memoized S(Bi,Bj) per connection pair
	qpowTab []float64       // (1-λ)^k by k, backing the fast S evaluation
	epoch   uint64          // write-transaction counter (see Manager.PlanEpoch)
}

// trial evaluates a failure event against the plan without changing any
// reservation or connection state, returning the R_fast statistics the
// paper's Tables 1-3 report. Activations contend for each link's spare pool
// in the given order; a backup activates iff it is itself unaffected by the
// failure and every link of its path has enough unclaimed spare bandwidth.
//
// trial is a pure read over the plan: every mutation lands in the caller's
// scratch, so any number of trials may run concurrently over one plan as
// long as each carries its own scratch and no writer is active (TrialView
// arranges both).
func (p *NetworkPlan) trial(f Failure, order ActivationOrder, rng *rand.Rand, t *trialScratch) RecoveryStats {
	var stats RecoveryStats
	t.begin(p.net.Graph().NumLinks())

	// Discover the affected channels via the per-link/per-node indexes,
	// deduped and grouped by connection in the stamped scratch slices.
	add := func(id rtchan.ChannelID) {
		if !t.markChan(id) {
			return
		}
		ch := p.net.Channel(id)
		if ch == nil {
			return
		}
		slot := t.connSlot(ch.Conn)
		if ch.Role == rtchan.RolePrimary {
			t.connPrim[slot] = true
		} else {
			t.connBkup[slot]++
		}
	}
	f.eachLink(func(l topology.LinkID) {
		for _, id := range p.net.ChannelsOnLink(l) {
			add(id)
		}
	})
	f.eachNode(func(n topology.NodeID) {
		for _, id := range p.net.ChannelsAtNode(n) {
			add(id)
		}
	})

	needsRecovery := t.needs[:0]
	for _, connID := range t.conns {
		conn := p.conns[connID]
		if conn == nil {
			continue
		}
		if f.nodeFailed(conn.Src) || f.nodeFailed(conn.Dst) {
			stats.ExcludedConns++
			continue
		}
		stats.FailedBackups += int(t.connBkup[connID])
		if t.connPrim[connID] {
			stats.FailedPrimaries++
			t.addDegree(firstDegree(conn), 1, 0)
			needsRecovery = append(needsRecovery, conn)
		}
	}

	needsRecovery = orderedConns(needsRecovery, order, rng)
	for _, conn := range needsRecovery {
		outcome := p.tryActivate(conn, &f, t)
		switch outcome {
		case activated:
			stats.FastRecovered++
			t.addDegree(firstDegree(conn), 0, 1)
		case allBackupsDead:
			stats.BackupDead++
		case spareExhausted:
			stats.MuxFailed++
		}
	}
	t.needs = needsRecovery[:0]
	stats.ByDegree = t.degreeMap()
	return stats
}

// tryActivate walks the connection's backups in serial order, claiming
// spare bandwidth from the shared per-link pools recorded in the trial
// scratch. It reads the plan's mux state but never writes it.
func (p *NetworkPlan) tryActivate(conn *DConnection, f *Failure, t *trialScratch) activationOutcome {
	bw := conn.Spec.Bandwidth
	sawHealthy := false
	for _, b := range conn.Backups {
		if f.hitsPath(b.Path) {
			continue
		}
		sawHealthy = true
		links := b.Path.Links()
		ok := true
		for _, l := range links {
			lm := &p.mux[l]
			if lm.available()-t.claimed(l) < bw-1e-9 {
				ok = false
				break
			}
		}
		if ok {
			for _, l := range links {
				t.claim(l, bw)
			}
			return activated
		}
		// Multiplexing failure on this backup; reported like a component
		// failure, so the end nodes go on to try the next serial (§4.1).
	}
	if sawHealthy {
		return spareExhausted
	}
	return allBackupsDead
}

// TrialView is a cheap per-goroutine read view over a Manager's shared
// NetworkPlan. It bundles the scratch buffers one failure trial needs with
// the reader side of the Manager's writer boundary, making Trial safe to
// call concurrently from many goroutines over a single loaded network —
// the read-mostly workload of the paper's failure sweeps (§7).
//
// Views are not safe for concurrent use with themselves: create one view
// per goroutine (they are a few hundred bytes until their scratch grows).
// Trials observe a consistent plan: a concurrent writer (Establish,
// Teardown, Apply, ...) is serialized against them by the Manager's lock.
type TrialView struct {
	m       *Manager
	scratch trialScratch
}

// NewTrialView returns a fresh per-goroutine view over the manager's plan.
func (m *Manager) NewTrialView() *TrialView {
	return &TrialView{m: m}
}

// Trial evaluates a failure event read-only over the shared plan. See
// Manager.Trial for the statistics' meaning; results are identical.
func (v *TrialView) Trial(f Failure, order ActivationOrder, rng *rand.Rand) RecoveryStats {
	v.m.mu.RLock()
	defer v.m.mu.RUnlock()
	return v.m.plan.trial(f, order, rng, &v.scratch)
}

// PlanEpoch returns the plan's write-transaction counter at this instant.
// Two equal epochs bracket a span with no intervening writes, so readers
// holding derived state can cheaply validate it — the same discipline
// topology.Graph.Version provides for routing caches.
func (v *TrialView) PlanEpoch() uint64 { return v.m.PlanEpoch() }
