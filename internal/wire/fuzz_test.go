package wire_test

import (
	"bytes"
	"testing"

	"github.com/rtcl/bcp/internal/experiment"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/wire"
)

// recordedFrames runs the canonical failure-recovery scenario with a frame
// tap and returns every RCC frame that crossed a link: real failure
// reports, activations, rejoin probes, acks, and batches, exactly as
// marshaled by the protocol engine. These seed the fuzz corpus so mutation
// starts from the interesting region of the input space instead of from
// random garbage.
func recordedFrames(tb testing.TB) [][]byte {
	var frames [][]byte
	s := experiment.DefaultTraceScenario()
	s.FrameTap = func(_ topology.LinkID, frame []byte) {
		frames = append(frames, append([]byte(nil), frame...))
	}
	if _, err := experiment.RunTraceScenario(s); err != nil {
		tb.Fatal(err)
	}
	if len(frames) == 0 {
		tb.Fatal("scenario produced no RCC frames")
	}
	return frames
}

// FuzzWireRoundTrip checks the decoder/encoder pair on arbitrary inputs:
// anything Unmarshal accepts must re-marshal to the identical bytes (the
// encoding is canonical and rejects trailing garbage), and Unmarshal must
// never panic or accept a frame that re-encodes differently.
func FuzzWireRoundTrip(f *testing.F) {
	for _, frame := range recordedFrames(f) {
		f.Add(frame)
	}
	// A few adversarial shapes: truncated header, bogus count, bad type.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 5})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 99, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := wire.Unmarshal(data)
		if err != nil {
			return
		}
		out, err := frame.Marshal()
		if err != nil {
			t.Fatalf("decoded frame does not re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not identity:\n in: %x\nout: %x", data, out)
		}
		again, err := wire.Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if again.Seq != frame.Seq || again.Ack != frame.Ack || len(again.Controls) != len(frame.Controls) {
			t.Fatalf("decode(encode(decode(x))) diverged: %+v vs %+v", again, frame)
		}
	})
}

// TestRecordedCorpusDecodes pins that every frame the protocol engine emits
// is decodable — the corpus seeder is itself a conformance check on the
// send path.
func TestRecordedCorpusDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol run")
	}
	for i, frame := range recordedFrames(t) {
		if _, err := wire.Unmarshal(frame); err != nil {
			t.Fatalf("frame %d off the wire does not decode: %v", i, err)
		}
	}
}
