package core

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// EstablishRequest is one establishment in a batch: the arguments of a
// Manager.Establish call.
type EstablishRequest struct {
	Src, Dst topology.NodeID
	Spec     rtchan.TrafficSpec
	Degrees  []int
}

// BatchOptions configures EstablishBatch.
type BatchOptions struct {
	// Workers is the number of speculative planner goroutines. Values <= 1
	// run the batch as a plain sequential loop.
	Workers int
}

// BatchResult reports a batch's outcomes, indexed like the request slice.
type BatchResult struct {
	Conns []*DConnection // per request; nil where rejected
	Errs  []error        // per request; nil where established

	Established, Rejected int
	// Planned counts speculative plans committed as-is; Replanned counts
	// plans invalidated by earlier commits and recomputed sequentially.
	// Planned + Replanned = len(reqs) on the pipelined path.
	Planned, Replanned int
}

// EstablishBatch establishes many D-connections with speculative parallel
// planning and strictly ordered commits. Results are bit-identical to
// calling Establish once per request in slice order — same connection and
// channel ids, same paths, same spare pools, same rejections — because a
// single committer validates each speculative plan against what actually
// committed before it, and re-plans the (rare) invalidated ones inline.
//
// Planners run the read-only plan phase (establish.go) under the reader
// lock, each with its own leased routing engine. Three monotonicity facts
// make cheap validation possible while the batch runs: free bandwidth only
// shrinks (no teardowns), spare pools only grow, and per-link Π structures
// only gain entries. So (1) a plan that was *rejected* stays rejected — a
// routing failure cannot unhappen, a spare overflow only worsens; (2) a
// routing predicate's "no" stays "no", so only approved links (the plan's
// consulted set) need rechecking; and (3) an admission probe stays exact
// unless its link's account or Π structure moved, which the committer tracks
// with per-link version stamps. Plans with decisions outside these rules
// (explicit delay contracts, load-aware backup weights) are marked strict
// and replanned whenever anything committed after their snapshot.
//
// Randomized tie-breaking (Config.TieBreak) makes routing depend on the
// shared RNG's call sequence, which speculation would reorder: such managers
// fall back to the sequential loop.
func (m *Manager) EstablishBatch(reqs []EstablishRequest, opts BatchOptions) BatchResult {
	res := BatchResult{Conns: make([]*DConnection, len(reqs)), Errs: make([]error, len(reqs))}
	workers := opts.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 || len(reqs) < 2 || m.Config().TieBreak != nil {
		for i := range reqs {
			r := &reqs[i]
			conn, err := m.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
			res.record(i, conn, err)
		}
		return res
	}

	m.routersOnce.Do(func() { m.routers = routing.NewRouterPool(m.Graph()) })
	numLinks := m.Graph().NumLinks()
	b := &batchRun{
		m:         m,
		reqs:      reqs,
		plans:     make([]*connPlan, len(reqs)),
		window:    4 * workers,
		stateVer:  1,
		freeEpoch: make([]uint64, numLinks),
		muxEpoch:  make([]uint64, numLinks),
	}
	b.cond = sync.NewCond(&b.mu)
	m.mu.RLock()
	b.expectEpoch = m.plan.epoch
	m.mu.RUnlock()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			b.planner()
		}()
	}
	b.commitAll(&res)
	wg.Wait()
	return res
}

func (r *BatchResult) record(i int, conn *DConnection, err error) {
	r.Conns[i], r.Errs[i] = conn, err
	if err != nil {
		r.Rejected++
	} else {
		r.Established++
	}
}

// batchRun is the shared state of one EstablishBatch pipeline.
type batchRun struct {
	m    *Manager
	reqs []EstablishRequest

	// mu/cond guard the pipeline bookkeeping (not the network plan): the
	// next unclaimed request, completed plans, and the commit frontier.
	mu        sync.Mutex
	cond      *sync.Cond
	next      int
	committed int
	plans     []*connPlan
	window    int // lookahead bound: plan at most this far past the frontier

	// Commit-side staleness tracking. stateVer counts mutating commits; it
	// is written under the manager's write lock and read by planners under
	// the read lock (each plan snapshots it as p.seq). freeEpoch/muxEpoch
	// record, per link, the stateVer of the last change to its bandwidth
	// account / its Π structure; foreignAt invalidates every plan older than
	// the last write that bypassed the batch (a concurrent non-batch caller).
	stateVer    uint64
	freeEpoch   []uint64
	muxEpoch    []uint64
	foreignAt   uint64
	expectEpoch uint64
}

// planner speculatively plans requests in claim order until none remain.
func (b *batchRun) planner() {
	pc := b.m.getPlanCtx()
	defer b.m.putPlanCtx(pc)
	for {
		b.mu.Lock()
		for b.next < len(b.reqs) && b.next >= b.committed+b.window {
			b.cond.Wait()
		}
		i := b.next
		if i >= len(b.reqs) {
			b.mu.Unlock()
			return
		}
		b.next++
		b.mu.Unlock()

		p := b.m.getPlanBuf()
		r := &b.reqs[i]
		b.m.mu.RLock()
		p.seq = b.stateVer
		pc.plan(p, r.Src, r.Dst, r.Spec, r.Degrees, true)
		b.m.mu.RUnlock()

		b.mu.Lock()
		b.plans[i] = p
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// commitAll is the single committer: it consumes plans in request order,
// validates each against everything committed since its snapshot, re-plans
// the invalidated ones, and commits. Every request is one write transaction
// (the epoch advances on rejections too), matching the sequential loop.
func (b *batchRun) commitAll(res *BatchResult) {
	m := b.m
	for i := range b.reqs {
		b.mu.Lock()
		for b.plans[i] == nil {
			b.cond.Wait()
		}
		p := b.plans[i]
		b.plans[i] = nil
		b.mu.Unlock()

		end := m.beginWrite()
		if m.plan.epoch != b.expectEpoch+1 {
			// A non-batch writer slipped in between commits: its effects are
			// invisible to the version stamps, so distrust every plan
			// snapshotted before now.
			b.stateVer++
			b.foreignAt = b.stateVer
		}
		b.expectEpoch = m.plan.epoch
		if b.validate(p) {
			res.Planned++
		} else {
			r := &b.reqs[i]
			m.estCtx.plan(p, r.Src, r.Dst, r.Spec, r.Degrees, false)
			res.Replanned++
		}
		conn, err := m.commitPlan(p)
		if conn != nil {
			b.stateVer++
			for _, l := range p.prim.links {
				b.freeEpoch[l] = b.stateVer
			}
			for bi := 0; bi < p.nBackups; bi++ {
				for _, w := range p.backups[bi].wires {
					b.freeEpoch[w.link] = b.stateVer
					b.muxEpoch[w.link] = b.stateVer
				}
			}
		}
		end()

		res.record(i, conn, err)
		m.putPlanBuf(p)
		b.mu.Lock()
		b.committed++
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// validate decides, under the write lock, whether a speculative plan is
// still exactly the plan sequential establishment would produce now. It may
// repair the plan in place: a stale admission probe is re-run against the
// current Π structure (appending fresh wiring to the plan's arenas), and a
// probe that now fails turns the plan into the rejection the sequential
// loop would issue. Returns false only when the plan must be recomputed
// from scratch (routing no longer reproducible, strictness, foreign write).
func (b *batchRun) validate(p *connPlan) bool {
	if p.err != nil {
		// The *outcome* of a rejection is stable — a routing failure cannot
		// unhappen under shrinking free bandwidth, and admission failures
		// only worsen — but its *reason* is not: a plan that got as far as
		// backup 2 against older state may now fail at the primary, with a
		// different error. Bit-identity covers rejection errors, so a stale
		// rejection is replanned unless it depends on nothing mutable.
		return p.stable || p.seq == b.stateVer
	}
	if p.strict {
		return p.seq == b.stateVer
	}
	if p.seq < b.foreignAt {
		return false
	}
	m := b.m
	// Re-check every link the routing predicate approved whose bandwidth
	// account moved since the snapshot: if one fell below the request's
	// bandwidth, some search would have taken a different turn.
	bw := p.spec.Bandwidth
	for wi, word := range p.consulted.w {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			l := topology.LinkID(wi<<6 + bit)
			if b.freeEpoch[l] > p.seq && m.plan.net.Free(l) < bw-1e-9 {
				return false
			}
		}
	}
	// Re-probe admission on every backup link whose account or Π structure
	// moved. Paths are unchanged (checked above), Π decisions for old
	// entries are stable (they depend only on immutable primaries), but new
	// entries and grown requirements change the spare arithmetic, so the
	// probe is re-run and the wire record replaced. The first failure, in
	// backup-then-link order, is exactly where the sequential loop would
	// reject.
	pc := m.estCtx
	stamped := false
	for bi := 0; bi < p.nBackups; bi++ {
		bp := &p.backups[bi]
		begun := false
		for wi := range bp.wires {
			l := bp.wires[wi].link
			if b.freeEpoch[l] <= p.seq && b.muxEpoch[l] <= p.seq {
				continue
			}
			if !stamped {
				pc.cur = p
				pc.bw = bw
				pc.track = false
				pc.marks.SetComponents(m.plan.net.Graph(), p.prim.links, p.prim.nodes)
				stamped = true
			}
			if !begun {
				pc.dec.begin(0)
				begun = true
			}
			w, err := pc.probeLink(p, bp, l)
			if err != nil {
				p.err = fmt.Errorf("core: backup %d multiplexing: %w", bi+1, err)
				return true
			}
			bp.wires[wi] = w
		}
	}
	return true
}

// getPlanCtx leases a pooled planner context with a pooled routing engine.
func (m *Manager) getPlanCtx() *planContext {
	if v := m.pcPool.Get(); v != nil {
		pc := v.(*planContext)
		pc.router = m.routers.Get()
		return pc
	}
	return newPlanContext(m, m.routers.Get(), routing.NewExclusion(),
		&topology.PathMarks{}, &muxDecisionScratch{})
}

func (m *Manager) putPlanCtx(pc *planContext) {
	m.routers.Put(pc.router)
	pc.router = nil
	m.pcPool.Put(pc)
}

// getPlanBuf leases a reusable plan buffer.
func (m *Manager) getPlanBuf() *connPlan {
	if v := m.planPool.Get(); v != nil {
		return v.(*connPlan)
	}
	return &connPlan{}
}

func (m *Manager) putPlanBuf(p *connPlan) { m.planPool.Put(p) }
