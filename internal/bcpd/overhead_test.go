package bcpd

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// recoveryAllocs runs the testbed's link-failure recovery end to end with
// the given sink and returns the average allocations of the whole run
// (setup + 200ms of simulated protocol and data traffic). The pre-trace
// seed measures exactly 5098 allocations for this scenario; the nil-sink
// run must match it.
func recoveryAllocs(t *testing.T, mkSink func() trace.Sink) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		sink := mkSink()
		g := topology.NewMesh(3, 3, 10)
		eng := sim.New(1)
		mgr := core.NewManager(g, core.DefaultConfig())
		spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
		conn, err := mgr.EstablishOnPaths(spec,
			path(t, g, 0, 1, 2),
			[]topology.Path{path(t, g, 0, 3, 4, 5, 2)},
			[]int{1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Sink = sink
		net := New(eng, mgr, cfg)
		if err := net.StartTraffic(conn.ID, 1000); err != nil {
			t.Fatal(err)
		}
		eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
		eng.RunFor(200 * time.Millisecond)
	})
}

// TestNilSinkAddsNoAllocations guards the tentpole's zero-overhead promise:
// with no sink configured, the observability layer must cost nothing — every
// emission site is behind an Enabled() branch and must not construct events.
// The ceiling is the measured allocation count of this scenario before the
// trace layer existed, plus headroom for run-to-run jitter; a regression
// that builds trace.Events (or anything else) on the nil-sink path adds
// hundreds of allocations and trips it.
func TestNilSinkAddsNoAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	nilAllocs := recoveryAllocs(t, func() trace.Sink { return nil })
	const ceiling = 5150 // measured seed: 5098, plus jitter headroom
	if nilAllocs > ceiling {
		t.Fatalf("nil-sink recovery run allocates %.0f objects, ceiling %d — "+
			"the disabled trace path is no longer free", nilAllocs, ceiling)
	}
	// Sanity: with a recorder attached the same run must allocate more
	// (events are actually built), proving the measurement sees tracing.
	recAllocs := recoveryAllocs(t, func() trace.Sink { return &trace.Recorder{} })
	if recAllocs <= nilAllocs {
		t.Fatalf("recorder run allocates %.0f <= nil-sink %.0f: tracing not observed",
			recAllocs, nilAllocs)
	}
}

// TestDisabledEmitterAllocatesNothing pins the per-callsite contract: a
// disabled emitter is a single branch, zero allocations.
func TestDisabledEmitterAllocatesNothing(t *testing.T) {
	var em trace.Emitter
	if got := testing.AllocsPerRun(100, func() {
		if em.Enabled() {
			em.Emit(trace.Event{Kind: trace.KindClaim})
		}
	}); got != 0 {
		t.Fatalf("disabled emitter path allocates %.1f per call", got)
	}
}
