// Package chaos is a deterministic, seed-driven adversarial harness for the
// BCP protocol stack: it generates fault schedules (component fail–repair
// timelines and chaos-layer partitions) over random topologies, runs each as
// a simulated episode behind a hostile transport (loss, duplication,
// reordering delay, corruption), checks every episode against the
// conformance oracle plus quiescence/liveness invariants, and shrinks any
// failing schedule to a minimal replayable reproducer.
//
// Everything is a pure function of a seed: the same seed produces the same
// topology, connections, fault schedule, packet-level chaos decisions, and —
// because the simulation itself is deterministic — the same event stream,
// byte for byte. That makes every failure an artifact, not an anecdote.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// Schedule classes: each episode draws one pattern of component faults.
const (
	// ClassSingle: one component (link or intermediate node) fails and is
	// repaired — the paper's headline scenario.
	ClassSingle = "single"
	// ClassDouble: two components fail with overlapping down-windows
	// (correlated double failure), the regime where recovery degrades
	// gracefully rather than within the Γ bound.
	ClassDouble = "double"
	// ClassRolling: a sequence of disjoint fail–repair windows rolling
	// across different components.
	ClassRolling = "rolling"
	// ClassFlapping: one link fails and recovers several times in quick
	// succession, racing repair against in-flight recovery.
	ClassFlapping = "flapping"
	// ClassPartition: chaos-layer cuts (links look healthy but deliver
	// nothing) around a real failure — failure reports and rejoins must
	// survive on RCC retransmission across the heal.
	ClassPartition = "partition"
	// ClassPingPong: alternating failures between a connection's two
	// paths, so the primary role ping-pongs and every promoted channel
	// must later re-promote — the schedule shape that catches stale
	// promote-once state.
	ClassPingPong = "pingpong"
)

// Classes lists every schedule class in generation order.
var Classes = []string{ClassSingle, ClassDouble, ClassRolling, ClassFlapping, ClassPartition, ClassPingPong}

// Fault-event kinds. Fail/repair act on real components (oracle-detected by
// the protocol); cut/heal act on the chaos layer only (the component looks
// healthy, nothing is delivered, nothing is detected).
const (
	EvFailLink   = "fail-link"
	EvRepairLink = "repair-link"
	EvFailNode   = "fail-node"
	EvRepairNode = "repair-node"
	EvCutLink    = "cut-link"
	EvHealLink   = "heal-link"
)

// FaultEvent is one scheduled fault action. Times are nanoseconds from
// episode start so specs serialize exactly.
type FaultEvent struct {
	AtNS   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Target int    `json:"target"` // link or node ID, per kind
}

// At returns the event's offset as a duration.
func (e FaultEvent) At() sim.Duration { return sim.Duration(e.AtNS) }

func (e FaultEvent) String() string {
	return fmt.Sprintf("%s(%d)@%v", e.Kind, e.Target, time.Duration(e.AtNS))
}

// TopoSpec names a topology generator and its dimensions — enough to rebuild
// the identical graph (and therefore identical link IDs) on replay.
type TopoSpec struct {
	Kind string `json:"kind"` // torus, mesh, ring, hypercube, random
	A    int    `json:"a"`    // rows / n / dimension
	B    int    `json:"b"`    // cols (torus, mesh); tenths of avg degree (random)
	Seed int64  `json:"seed,omitempty"`
}

// Build constructs the graph. Capacity is fixed: episodes stress the control
// plane, not admission.
func (t TopoSpec) Build() (*topology.Graph, error) {
	const capacity = 200
	switch t.Kind {
	case "torus":
		return topology.NewTorus(t.A, t.B, capacity), nil
	case "mesh":
		return topology.NewMesh(t.A, t.B, capacity), nil
	case "ring":
		return topology.NewRing(t.A, capacity), nil
	case "hypercube":
		return topology.NewHypercube(t.A, capacity), nil
	case "random":
		return topology.NewRandom(t.A, float64(t.B)/10, capacity, t.Seed), nil
	default:
		return nil, fmt.Errorf("chaos: unknown topology kind %q", t.Kind)
	}
}

func (t TopoSpec) String() string {
	return fmt.Sprintf("%s(%d,%d)", t.Kind, t.A, t.B)
}

// ConnSpec is one connection to establish before the faults start.
type ConnSpec struct {
	Src     int `json:"src"`
	Dst     int `json:"dst"`
	Backups int `json:"backups"`
}

// ChaosSpec is the transport-level hostility applied uniformly to every
// link for the whole episode (the fault schedule is on top of this).
type ChaosSpec struct {
	Drop       float64 `json:"drop,omitempty"`
	Dup        float64 `json:"dup,omitempty"`
	Corrupt    float64 `json:"corrupt,omitempty"`
	Delay      float64 `json:"delay,omitempty"`
	DelayMaxNS int64   `json:"delay_max_ns,omitempty"`
}

// Spec fully determines one episode: rebuildable topology and connections,
// the transport chaos plan, and the fault schedule. Marshals to JSON as the
// replay artifact format.
type Spec struct {
	Seed      int64        `json:"seed"`
	Class     string       `json:"class"`
	Topo      TopoSpec     `json:"topo"`
	Conns     []ConnSpec   `json:"conns"`
	Chaos     ChaosSpec    `json:"chaos"`
	Events    []FaultEvent `json:"events"`
	HorizonNS int64        `json:"horizon_ns"`
	// Benign marks schedules under which full re-establishment is
	// guaranteed: at most one component down at any instant, no connection
	// end node ever fails, all multiplexing degrees are 1. Episodes assert
	// the strong liveness rule (every connection ends with a healthy
	// primary) only when set.
	Benign bool `json:"benign"`
}

// establish rebuilds the spec's control plane: graph, manager, and the
// connections, established in spec order with the paper's sequential
// disjoint routing. Conns that can no longer be routed are skipped (the
// skip is as deterministic as a success); the returned slice holds what
// stands, aligned with nothing — callers iterate it, not spec.Conns.
func (s *Spec) establish() (*core.Manager, []*core.DConnection, error) {
	g, err := s.Topo.Build()
	if err != nil {
		return nil, nil, err
	}
	mgr := core.NewManager(g, core.DefaultConfig())
	var conns []*core.DConnection
	for _, cs := range s.Conns {
		paths := mgr.Router().SequentialDisjointPaths(
			topology.NodeID(cs.Src), topology.NodeID(cs.Dst), cs.Backups+1, routing.Constraint{})
		if len(paths) < 2 {
			continue // no disjoint backup: not survivable, not interesting
		}
		degrees := make([]int, len(paths)-1)
		for i := range degrees {
			degrees[i] = 1
		}
		conn, err := mgr.EstablishOnPaths(rtchan.DefaultSpec(), paths[0], paths[1:], degrees)
		if err != nil {
			continue
		}
		conns = append(conns, conn)
	}
	return mgr, conns, nil
}

// ms is a readability helper for generated timelines.
func ms(n int64) int64 { return n * int64(time.Millisecond) }

// Generate derives a complete episode spec from a seed and a class. The
// schedule is biased toward links and nodes on established channel paths
// (faults far from any channel exercise nothing), with windows sized so
// repairs land before rejoin timers expire in the benign classes.
func Generate(seed int64, class string) (Spec, error) {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{Seed: seed, Class: class}

	// Topology: small enough to run thousands of episodes, varied enough to
	// cover degree-2 rings through degree-4 tori.
	topos := []TopoSpec{
		{Kind: "torus", A: 4, B: 4},
		{Kind: "mesh", A: 3, B: 4},
		{Kind: "ring", A: 10},
		{Kind: "hypercube", A: 3},
		{Kind: "random", A: 12, B: 32, Seed: seed},
	}
	s.Topo = topos[rng.Intn(len(topos))]

	// Connections: a few random pairs; rejected pairs are filtered here so
	// the spec's Conns are exactly what establishes on replay.
	g, err := s.Topo.Build()
	if err != nil {
		return s, err
	}
	nn := g.NumNodes()
	want := 2 + rng.Intn(2)
	for len(s.Conns) < want {
		src := rng.Intn(nn)
		dst := rng.Intn(nn)
		if src == dst {
			continue
		}
		backups := 1
		if rng.Float64() < 0.25 {
			backups = 2
		}
		s.Conns = append(s.Conns, ConnSpec{Src: src, Dst: dst, Backups: backups})
	}
	mgr, conns, err := s.establish()
	if err != nil {
		return s, err
	}
	if len(conns) == 0 {
		// Nothing established (e.g. every pair collided): fall back to a
		// torus with a known-good pair so every seed yields a real episode.
		s.Topo = TopoSpec{Kind: "torus", A: 4, B: 4}
		s.Conns = []ConnSpec{{Src: 0, Dst: 10, Backups: 1}}
		mgr, conns, err = s.establish()
		if err != nil || len(conns) == 0 {
			return s, fmt.Errorf("chaos: fallback establishment failed: %v", err)
		}
	}
	_ = mgr

	// Transport hostility: every class gets some; partition-free classes
	// lean on loss/dup/corrupt, the partition class keeps packet chaos
	// lighter so the cut itself is the story.
	s.Chaos = ChaosSpec{
		Drop:       0.02 + 0.10*rng.Float64(),
		Dup:        0.05 * rng.Float64(),
		Corrupt:    0.04 * rng.Float64(),
		Delay:      0.30 * rng.Float64(),
		DelayMaxNS: ms(2),
	}
	if class == ClassPartition {
		s.Chaos.Drop /= 4
	}

	s.Events, s.Benign = generateEvents(rng, class, g, conns)
	s.Benign = s.Benign && benignEvents(s.Events)
	last := int64(0)
	for _, ev := range s.Events {
		if ev.AtNS > last {
			last = ev.AtNS
		}
	}
	s.HorizonNS = last + ms(500)
	return s, nil
}

// pathLink picks a random link on a channel path.
func pathLink(rng *rand.Rand, p topology.Path) topology.LinkID {
	links := p.Links()
	return links[rng.Intn(len(links))]
}

// pickConn picks a random established connection that still has a backup.
func pickConn(rng *rand.Rand, conns []*core.DConnection) *core.DConnection {
	withBackup := make([]*core.DConnection, 0, len(conns))
	for _, c := range conns {
		if c.Primary != nil && len(c.Backups) > 0 {
			withBackup = append(withBackup, c)
		}
	}
	if len(withBackup) == 0 {
		return conns[rng.Intn(len(conns))]
	}
	return withBackup[rng.Intn(len(withBackup))]
}

// endpointNodes collects every connection end node — the nodes a benign
// schedule must never crash.
func endpointNodes(conns []*core.DConnection) map[topology.NodeID]bool {
	eps := make(map[topology.NodeID]bool, 2*len(conns))
	for _, c := range conns {
		eps[c.Src] = true
		eps[c.Dst] = true
	}
	return eps
}

// intermediateNode picks an intermediate node of the connection's primary
// path that is no connection's end node, or NoNode.
func intermediateNode(rng *rand.Rand, conn *core.DConnection, eps map[topology.NodeID]bool) topology.NodeID {
	if conn.Primary == nil {
		return topology.NoNode
	}
	nodes := conn.Primary.Path.Nodes()
	var cands []topology.NodeID
	for _, v := range nodes[1 : len(nodes)-1] {
		if !eps[v] {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return topology.NoNode
	}
	return cands[rng.Intn(len(cands))]
}

// benignGapNS is the minimum separation between one component's repair and
// the next component's failure for a schedule to count as benign: the
// repaired channel must finish its rejoin (probe delay, then an RCC round
// trip with 20 ms retransmission tails under loss) before the next failure
// may need it as the promotion target. Generator gaps respect this by
// construction; the shrinker's time-tightening is what runs into it.
const benignGapNS = int64(120 * time.Millisecond)

// benignEvents re-derives the benign property from a fault timeline: every
// failure matched with its repair (an unmatched failure stays down until the
// episode's heal step), intervals pairwise disjoint with at least
// benignGapNS between them. Chaos-layer cuts are loss, not failure — RCC
// retransmission rides them out — so they are ignored. Targets are not
// re-validated: generation vets them and shrinking never alters them.
func benignEvents(evs []FaultEvent) bool {
	repairOf := map[string]string{EvFailLink: EvRepairLink, EvFailNode: EvRepairNode}
	type iv struct{ start, end int64 }
	var ivs []iv
	for _, ev := range evs {
		rk, isFail := repairOf[ev.Kind]
		if !isFail {
			continue
		}
		// Earliest matching repair at or after the failure. Exact for
		// generated schedules (fail/repair alternate per target); a shrunk
		// schedule where two failures share one repair yields overlapping
		// intervals, which the check below rejects — the right answer.
		end := int64(1) << 62
		for _, r := range evs {
			if r.Kind == rk && r.Target == ev.Target && r.AtNS >= ev.AtNS && r.AtNS < end {
				end = r.AtNS
			}
		}
		ivs = append(ivs, iv{ev.AtNS, end})
	}
	for i := range ivs {
		for j := range ivs {
			if i == j {
				continue
			}
			a, b := ivs[i], ivs[j]
			if a.start > b.start {
				a, b = b, a
			}
			if b.start < a.end+benignGapNS {
				return false
			}
		}
	}
	return true
}

// generateEvents builds the fault timeline for one class. All windows close
// well before rejoin timers (1 s in episodes) expire, so benign classes
// guarantee re-establishment.
func generateEvents(rng *rand.Rand, class string, g *topology.Graph, conns []*core.DConnection) ([]FaultEvent, bool) {
	var evs []FaultEvent
	eps := endpointNodes(conns)
	at := ms(int64(50 + rng.Intn(100)))
	window := func() int64 { return ms(int64(100 + rng.Intn(250))) }
	gap := func() int64 { return ms(int64(150 + rng.Intn(250))) }

	failRepair := func(kindF, kindR string, target int, t0, w int64) {
		evs = append(evs,
			FaultEvent{AtNS: t0, Kind: kindF, Target: target},
			FaultEvent{AtNS: t0 + w, Kind: kindR, Target: target},
		)
	}

	switch class {
	case ClassSingle:
		conn := pickConn(rng, conns)
		if rng.Float64() < 0.3 {
			if v := intermediateNode(rng, conn, eps); v != topology.NoNode {
				failRepair(EvFailNode, EvRepairNode, int(v), at, window())
				return evs, true
			}
		}
		failRepair(EvFailLink, EvRepairLink, int(pathLink(rng, conn.Primary.Path)), at, window())
		return evs, true

	case ClassDouble:
		conn := pickConn(rng, conns)
		l1 := pathLink(rng, conn.Primary.Path)
		var l2 topology.LinkID
		if len(conn.Backups) > 0 {
			l2 = pathLink(rng, conn.Backups[0].Path)
		} else {
			l2 = topology.LinkID(rng.Intn(g.NumLinks()))
		}
		w := window()
		failRepair(EvFailLink, EvRepairLink, int(l1), at, w)
		failRepair(EvFailLink, EvRepairLink, int(l2), at+ms(int64(rng.Intn(40))), w)
		return evs, false

	case ClassRolling:
		k := 3 + rng.Intn(3)
		for i := 0; i < k; i++ {
			conn := pickConn(rng, conns)
			var target topology.LinkID
			if conn.Primary != nil && rng.Float64() < 0.7 {
				target = pathLink(rng, conn.Primary.Path)
			} else {
				target = topology.LinkID(rng.Intn(g.NumLinks()))
			}
			w := window()
			failRepair(EvFailLink, EvRepairLink, int(target), at, w)
			at += w + gap()
		}
		return evs, true

	case ClassFlapping:
		conn := pickConn(rng, conns)
		l := pathLink(rng, conn.Primary.Path)
		k := 3 + rng.Intn(2)
		for i := 0; i < k; i++ {
			w := ms(int64(40 + rng.Intn(60)))
			failRepair(EvFailLink, EvRepairLink, int(l), at, w)
			at += w + ms(int64(120+rng.Intn(200)))
		}
		return evs, true

	case ClassPartition:
		conn := pickConn(rng, conns)
		fail := pathLink(rng, conn.Primary.Path)
		// Cut 1–3 links at the chaos layer (asymmetric: the reverse side
		// stays open unless independently cut), then crash a primary link
		// inside the blackout so its failure reports must outlive the cut.
		nCuts := 1 + rng.Intn(3)
		cutW := ms(int64(250 + rng.Intn(250)))
		for i := 0; i < nCuts; i++ {
			cut := topology.LinkID(rng.Intn(g.NumLinks()))
			evs = append(evs,
				FaultEvent{AtNS: at, Kind: EvCutLink, Target: int(cut)},
				FaultEvent{AtNS: at + cutW, Kind: EvHealLink, Target: int(cut)},
			)
		}
		failRepair(EvFailLink, EvRepairLink, int(fail), at+ms(50), window())
		return evs, true

	case ClassPingPong:
		conn := pickConn(rng, conns)
		if conn.Primary == nil || len(conn.Backups) == 0 {
			return evs, true
		}
		la := pathLink(rng, conn.Primary.Path)
		lb := pathLink(rng, conn.Backups[0].Path)
		// Alternate crashing whichever path currently carries the primary:
		// A, B, A, ... — each round forces a promotion of the channel that
		// rejoined the round before.
		rounds := 3 + rng.Intn(2)
		for i := 0; i < rounds; i++ {
			l := la
			if i%2 == 1 {
				l = lb
			}
			w := ms(int64(150 + rng.Intn(100)))
			failRepair(EvFailLink, EvRepairLink, int(l), at, w)
			at += w + ms(int64(200+rng.Intn(150)))
		}
		return evs, true
	}
	return nil, false
}
