// Package routing provides the path-selection algorithms used to establish
// primary and backup channels: constrained breadth-first shortest paths,
// weighted shortest paths, and disjoint path search.
//
// The paper routes channels with a "sequential shortest-path search": the
// primary is routed on a shortest feasible path, then each backup on a
// shortest feasible path that avoids all components of the connection's
// earlier channels. Feasibility (admission) is expressed here as caller
// supplied predicates over links and nodes, so the same search serves both
// the unconstrained distance computation and the bandwidth-constrained one.
//
// All searches run on a Router, a reusable engine that owns every piece of
// scratch state (label arrays, queues, the Dijkstra heap, the flow network),
// so steady-state searches allocate nothing. The package-level functions
// below build a throwaway Router per call for convenience; hot paths (the
// core Manager, the experiment drivers) hold one Router per worker.
package routing

import (
	"math/rand"

	"github.com/rtcl/bcp/internal/topology"
)

// Constraint restricts a path search.
//
// LinkAllowed and NodeAllowed may be nil, meaning unrestricted. NodeAllowed
// is consulted for interior nodes only: the search always allows the source
// and destination themselves (the channels of one D-connection necessarily
// share their end nodes).
//
// MaxHops of 0 means unbounded.
type Constraint struct {
	MaxHops     int
	LinkAllowed func(topology.LinkID) bool
	NodeAllowed func(topology.NodeID) bool

	// Exclude, if non-nil, bans its components before the predicates are
	// consulted. Exclusion sets are bitsets, so sequential disjoint routing
	// pays two word lookups per candidate component instead of two map
	// probes and two closure frames (the former Constrain chaining).
	Exclude *Exclusion

	// TieBreak, if non-nil, randomizes the choice among equally short
	// predecessors during path reconstruction. A nil TieBreak selects the
	// lowest link id, which is deterministic but concentrates traffic on a
	// torus; experiments pass a seeded RNG to spread load like the paper's
	// (unspecified) tie-breaking evidently does.
	TieBreak *rand.Rand
}

func (c Constraint) linkOK(l topology.LinkID) bool {
	if c.Exclude != nil && c.Exclude.LinkExcluded(l) {
		return false
	}
	return c.LinkAllowed == nil || c.LinkAllowed(l)
}

func (c Constraint) nodeOK(n topology.NodeID) bool {
	if c.Exclude != nil && c.Exclude.NodeExcluded(n) {
		return false
	}
	return c.NodeAllowed == nil || c.NodeAllowed(n)
}

// Distance returns the unconstrained hop distance from src to dst, or -1 if
// unreachable. Used to evaluate the paper's QoS rule: a channel meets its
// end-to-end delay requirement iff its path is at most 2 hops longer than
// the shortest possible path.
func Distance(g *topology.Graph, src, dst topology.NodeID) int {
	return NewRouter(g).Distance(src, dst)
}

// ShortestPath returns a shortest path from src to dst satisfying c, and
// whether one exists.
func ShortestPath(g *topology.Graph, src, dst topology.NodeID, c Constraint) (topology.Path, bool) {
	return NewRouter(g).ShortestPath(src, dst, c)
}

// bitset is a fixed-universe membership set over dense int ids, grown on
// demand so the zero value works for any graph size.
type bitset []uint64

func (b *bitset) set(i int) {
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b bitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// Exclusion accumulates components to avoid, for sequential disjoint
// routing. It is a pair of link/node bitsets sized to the graph's id spaces:
// membership tests are branch-free word lookups, and Reset keeps the storage
// so one Exclusion can serve every establishment a Manager performs.
type Exclusion struct {
	links bitset
	nodes bitset
}

// NewExclusion returns an empty exclusion set.
func NewExclusion() *Exclusion {
	return &Exclusion{}
}

// Reset empties the exclusion, keeping its storage, and returns it.
func (e *Exclusion) Reset() *Exclusion {
	e.links.clear()
	e.nodes.clear()
	return e
}

// AddPath excludes every component of p: all its simplex links and all its
// interior nodes. Reverse-direction links are distinct components in the
// paper's failure model (a simplex link crashes independently), so they are
// not excluded — though a backup can rarely use them anyway, since their
// endpoints are excluded interior nodes.
func (e *Exclusion) AddPath(p topology.Path) {
	for _, l := range p.Links() {
		e.links.set(int(l))
	}
	for _, n := range p.InteriorNodes() {
		e.nodes.set(int(n))
	}
}

// AddLink excludes a single link (not its reverse).
func (e *Exclusion) AddLink(l topology.LinkID) { e.links.set(int(l)) }

// AddNode excludes a single node.
func (e *Exclusion) AddNode(n topology.NodeID) { e.nodes.set(int(n)) }

// LinkExcluded reports whether l is excluded.
func (e *Exclusion) LinkExcluded(l topology.LinkID) bool { return e.links.has(int(l)) }

// NodeExcluded reports whether n is excluded.
func (e *Exclusion) NodeExcluded(n topology.NodeID) bool { return e.nodes.has(int(n)) }

// Constrain merges the exclusion into an existing constraint, returning a
// new constraint that also avoids the excluded components. The common case
// attaches the exclusion to the constraint's Exclude slot without allocating;
// only a constraint already carrying a different exclusion falls back to
// predicate chaining.
func (e *Exclusion) Constrain(c Constraint) Constraint {
	if c.Exclude == nil || c.Exclude == e {
		c.Exclude = e
		return c
	}
	prev := c.Exclude
	prevLink, prevNode := c.LinkAllowed, c.NodeAllowed
	c.Exclude = e
	c.LinkAllowed = func(l topology.LinkID) bool {
		if prev.LinkExcluded(l) {
			return false
		}
		return prevLink == nil || prevLink(l)
	}
	c.NodeAllowed = func(n topology.NodeID) bool {
		if prev.NodeExcluded(n) {
			return false
		}
		return prevNode == nil || prevNode(n)
	}
	return c
}

// SequentialDisjointPaths implements the paper's routing discipline: it
// returns up to count paths from src to dst, each a shortest path under c
// avoiding all components (links, their reverses, and interior nodes) of the
// previously found ones. Fewer than count paths are returned when the
// residual graph disconnects. This greedy method can miss disjoint path sets
// that a flow-based method would find; see MaxDisjointPaths for the
// flow-based alternative.
func SequentialDisjointPaths(g *topology.Graph, src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	return NewRouter(g).SequentialDisjointPaths(src, dst, count, c)
}
