package trace

import (
	"testing"

	"github.com/rtcl/bcp/internal/sim"
)

func ev(i int) Event {
	return Event{At: sim.Time(i), Kind: KindClaim, Aux: int64(i)}
}

func TestArenaSinkFlushMode(t *testing.T) {
	var got []Event
	var flushSizes []int
	a := NewArenaSink(4, func(evs []Event) {
		flushSizes = append(flushSizes, len(evs))
		got = append(got, evs...) // consumer copies out
	})
	for i := 0; i < 10; i++ {
		a.Emit(ev(i))
	}
	if a.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", a.Flushes())
	}
	if a.Len() != 2 {
		t.Fatalf("buffered = %d, want 2", a.Len())
	}
	a.Flush()
	if a.Len() != 0 {
		t.Fatalf("buffered after Flush = %d", a.Len())
	}
	a.Flush() // empty: no-op
	if a.Flushes() != 3 {
		t.Fatalf("flushes = %d, want 3", a.Flushes())
	}
	if len(flushSizes) != 3 || flushSizes[0] != 4 || flushSizes[1] != 4 || flushSizes[2] != 2 {
		t.Fatalf("flush sizes = %v", flushSizes)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d events", len(got))
	}
	for i, e := range got {
		if e.Aux != int64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if a.Total() != 10 || a.Dropped() != 0 {
		t.Fatalf("total=%d dropped=%d", a.Total(), a.Dropped())
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	a := NewFlightRecorder(4)
	for i := 0; i < 3; i++ {
		a.Emit(ev(i))
	}
	if got := a.Events(nil); len(got) != 3 || got[0].Aux != 0 || got[2].Aux != 2 {
		t.Fatalf("pre-wrap events = %+v", got)
	}
	for i := 3; i < 11; i++ {
		a.Emit(ev(i))
	}
	if a.Len() != 4 {
		t.Fatalf("len = %d, want 4", a.Len())
	}
	got := a.Events(nil)
	if len(got) != 4 {
		t.Fatalf("events = %d, want 4", len(got))
	}
	for i, e := range got {
		if e.Aux != int64(7+i) {
			t.Fatalf("window wrong at %d: %+v (want aux %d)", i, e, 7+i)
		}
	}
	if a.Total() != 11 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", a.Dropped())
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("len after reset = %d", a.Len())
	}
	a.Emit(ev(99))
	if got := a.Events(nil); len(got) != 1 || got[0].Aux != 99 {
		t.Fatalf("post-reset events = %+v", got)
	}
}

// TestArenaSinkEmitAllocFree is the tentpole alloc guard: steady-state
// emission into either arena mode must not allocate.
func TestArenaSinkEmitAllocFree(t *testing.T) {
	ring := NewFlightRecorder(256)
	if n := testing.AllocsPerRun(1000, func() { ring.Emit(ev(1)) }); n != 0 {
		t.Fatalf("ring Emit allocates %v/op", n)
	}
	flush := NewArenaSink(256, func([]Event) {})
	if n := testing.AllocsPerRun(1000, func() { flush.Emit(ev(1)) }); n != 0 {
		t.Fatalf("flush-mode Emit allocates %v/op (including flush boundary)", n)
	}
}

func TestArenaSinkPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-cap-flush": func() { NewArenaSink(0, func([]Event) {}) },
		"nil-flush":      func() { NewArenaSink(8, nil) },
		"zero-cap-ring":  func() { NewFlightRecorder(0) },
		"negative-ring":  func() { NewFlightRecorder(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
