package experiment

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// Storm is a long-lived recovery-storm harness: one connection on the
// paper's 8x8 torus whose primary channel is crashed, recovered onto the
// backup, repaired, and rejoined — over and over, against the same protocol
// network. After the first cycle every structure involved (timers, RCC
// frames, report fan-out scratch, payload boxes) should be recycled, so a
// cycle measures the steady-state cost of one full recovery, not the cost
// of warming up allocators.
//
// Each cycle: crash one link of the current primary (rotating the position
// so every hop gets exercised), run long enough for the failure reports to
// activate and promote the backup, repair the link, then run until the
// rejoin restores the old primary as the new backup. The roles ping-pong
// between the two disjoint paths from cycle to cycle.
type Storm struct {
	Eng  *sim.Engine
	Mgr  *core.Manager
	Net  *bcpd.Network
	Conn *core.DConnection

	cycles int
}

// StormConfig parameterizes NewStorm. The zero value is usable.
type StormConfig struct {
	Scheme bcpd.Scheme // defaults to Scheme 3
	Rate   float64     // data messages/second; 0 runs the control plane only
	Seed   int64       // engine seed; same seed, same run
	Sink   trace.Sink  // optional event sink
}

// Cycle phase lengths: the crash phase covers detection, reports, and
// activation (all well under 200 ms on the torus); the repair phase covers
// the rejoin probe retransmitting through the healed link and the rejoin
// confirmation walking back (well under 800 ms).
const (
	stormCrashPhase  = sim.Duration(200 * time.Millisecond)
	stormRepairPhase = sim.Duration(800 * time.Millisecond)
)

// NewStorm builds the network and establishes the connection: two disjoint
// 0→36 paths on the torus, one primary and one degree-1 backup, matching
// the trace scenario's layout.
func NewStorm(cfg StormConfig) (*Storm, error) {
	g := topology.NewTorus(8, 8, 200)
	eng := sim.New(cfg.Seed)
	mgr := core.NewManager(g, core.DefaultConfig())

	src, dst := topology.NodeID(0), topology.NodeID(36)
	paths := mgr.Router().SequentialDisjointPaths(src, dst, 2, routing.Constraint{})
	if len(paths) < 2 {
		return nil, fmt.Errorf("experiment: only %d disjoint paths for storm", len(paths))
	}
	conn, err := mgr.EstablishOnPaths(rtchan.DefaultSpec(), paths[0], paths[1:2], []int{1})
	if err != nil {
		return nil, err
	}

	bcfg := bcpd.DefaultConfig()
	if cfg.Scheme != 0 {
		bcfg.Scheme = cfg.Scheme
	}
	bcfg.RejoinTimeout = sim.Duration(2 * time.Second)
	bcfg.RejoinProbeDelay = sim.Duration(100 * time.Millisecond)
	bcfg.Sink = cfg.Sink
	net := bcpd.New(eng, mgr, bcfg)
	if cfg.Rate > 0 {
		if err := net.StartTraffic(conn.ID, cfg.Rate); err != nil {
			return nil, err
		}
	}
	return &Storm{Eng: eng, Mgr: mgr, Net: net, Conn: conn}, nil
}

// Cycle runs one crash→switch→repair→rejoin round and verifies it restored
// full redundancy: the backup was promoted to primary and the crashed
// channel rejoined as the new backup.
func (s *Storm) Cycle() error {
	prim := s.Conn.Primary
	if prim == nil {
		return fmt.Errorf("experiment: storm cycle %d: connection has no primary", s.cycles)
	}
	if len(s.Conn.Backups) == 0 {
		return fmt.Errorf("experiment: storm cycle %d: connection has no backup", s.cycles)
	}
	links := prim.Path.Links()
	fail := links[s.cycles%len(links)]

	s.Net.FailLink(fail)
	s.Eng.RunFor(stormCrashPhase)
	if s.Conn.Primary == prim {
		return fmt.Errorf("experiment: storm cycle %d: backup was not promoted", s.cycles)
	}
	s.Net.RepairLink(fail)
	s.Eng.RunFor(stormRepairPhase)
	if len(s.Conn.Backups) == 0 {
		return fmt.Errorf("experiment: storm cycle %d: rejoin did not restore the backup", s.cycles)
	}
	s.cycles++
	return nil
}

// Run executes n cycles, stopping at the first failure.
func (s *Storm) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Cycle(); err != nil {
			return err
		}
	}
	return nil
}

// Cycles returns the number of completed cycles.
func (s *Storm) Cycles() int { return s.cycles }

// Stats returns the protocol counters accumulated so far.
func (s *Storm) Stats() bcpd.Stats { return s.Net.Stats() }
