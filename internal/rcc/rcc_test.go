package rcc

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/wire"
)

// pipe wires two endpoints over lossy in-order unidirectional channels with
// a fixed delay.
type pipe struct {
	eng      *sim.Engine
	delay    sim.Duration
	lossAtoB func() bool // nil = lossless
	lossBtoA func() bool
	a, b     *Endpoint
	recvA    []wire.Control
	recvB    []wire.Control
}

func newPipe(t *testing.T, p Params, delay sim.Duration) *pipe {
	t.Helper()
	pp := &pipe{eng: sim.New(1), delay: delay}
	pp.a = NewEndpoint(pp.eng, p, func(data []byte) {
		if pp.lossAtoB != nil && pp.lossAtoB() {
			return
		}
		d := append([]byte(nil), data...)
		pp.eng.Schedule(pp.delay, func() { pp.b.HandleFrame(d) })
	}, func(c wire.Control) { pp.recvA = append(pp.recvA, c) })
	pp.b = NewEndpoint(pp.eng, p, func(data []byte) {
		if pp.lossBtoA != nil && pp.lossBtoA() {
			return
		}
		d := append([]byte(nil), data...)
		pp.eng.Schedule(pp.delay, func() { pp.a.HandleFrame(d) })
	}, func(c wire.Control) { pp.recvB = append(pp.recvB, c) })
	return pp
}

func ctrl(id int64) wire.Control {
	return wire.Control{Type: wire.MsgFailureReport, Channel: id, Origin: 1, Toward: 1}
}

func TestDeliversInOrder(t *testing.T) {
	p := newPipe(t, DefaultParams(), sim.Duration(time.Millisecond))
	for i := int64(1); i <= 10; i++ {
		p.a.Submit(ctrl(i))
	}
	p.eng.RunFor(time.Second)
	if len(p.recvB) != 10 {
		t.Fatalf("delivered %d, want 10", len(p.recvB))
	}
	for i, c := range p.recvB {
		if c.Channel != int64(i+1) {
			t.Fatalf("out of order: %v", p.recvB)
		}
	}
	if p.a.Backlog() != 0 {
		t.Fatalf("backlog = %d after full delivery + ack", p.a.Backlog())
	}
}

func TestBatchingRespectsSMax(t *testing.T) {
	params := DefaultParams()
	params.SMax = 10 + 2*14 // header + 2 controls
	p := newPipe(t, params, sim.Duration(time.Millisecond))
	for i := int64(1); i <= 5; i++ {
		p.a.Submit(ctrl(i))
	}
	p.eng.RunFor(time.Second)
	if len(p.recvB) != 5 {
		t.Fatalf("delivered %d", len(p.recvB))
	}
	st := p.a.Stats()
	// 5 controls at <=2 per frame: at least 3 payload frames.
	if st.FramesSent < 3 {
		t.Fatalf("frames = %d, batching too aggressive for SMax", st.FramesSent)
	}
}

func TestRateLimitEnforced(t *testing.T) {
	params := DefaultParams()
	params.RMax = 100     // 10 ms between frames
	params.SMax = 10 + 14 // one control per frame
	eng := sim.New(1)
	var txTimes []sim.Time
	a := NewEndpoint(eng, params, func(data []byte) { txTimes = append(txTimes, eng.Now()) }, func(wire.Control) {})
	for i := int64(1); i <= 4; i++ {
		a.Submit(ctrl(i))
	}
	eng.RunFor(time.Second)
	// With no ACK path the endpoint keeps retransmitting; every
	// transmission (payload or retransmission) must respect the rate limit.
	if len(txTimes) < 4 {
		t.Fatalf("tx count = %d, want at least the 4 payload frames", len(txTimes))
	}
	for i := 1; i < len(txTimes); i++ {
		if gap := txTimes[i].Sub(txTimes[i-1]); gap < 10*time.Millisecond {
			t.Fatalf("frame gap %v violates RMax", gap)
		}
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	params := DefaultParams()
	p := newPipe(t, params, sim.Duration(time.Millisecond))
	dropped := 0
	p.lossAtoB = func() bool {
		// Drop the first payload transmission only.
		if dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	p.a.Submit(ctrl(7))
	p.eng.RunFor(time.Second)
	if len(p.recvB) != 1 || p.recvB[0].Channel != 7 {
		t.Fatalf("delivered %v", p.recvB)
	}
	if p.a.Stats().Retransmissions == 0 {
		t.Fatal("no retransmission recorded")
	}
	if p.a.Backlog() != 0 {
		t.Fatal("backlog not cleared after recovery")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	params := DefaultParams()
	p := newPipe(t, params, sim.Duration(time.Millisecond))
	// Drop all ACKs so the sender keeps retransmitting.
	p.lossBtoA = func() bool { return true }
	p.a.Submit(ctrl(3))
	p.eng.RunFor(200 * time.Millisecond)
	if len(p.recvB) != 1 {
		t.Fatalf("delivered %d copies, want exactly 1", len(p.recvB))
	}
	if p.b.Stats().Duplicates == 0 {
		t.Fatal("receiver saw no duplicates despite lost ACKs")
	}
}

func TestLossStorm(t *testing.T) {
	// 30% loss in both directions: everything must still arrive, in order,
	// exactly once.
	params := DefaultParams()
	p := newPipe(t, params, sim.Duration(time.Millisecond))
	rng := p.eng.RNG()
	p.lossAtoB = func() bool { return rng.Intn(10) < 3 }
	p.lossBtoA = func() bool { return rng.Intn(10) < 3 }
	const n = 50
	for i := int64(1); i <= n; i++ {
		i := i
		p.eng.Schedule(sim.Duration(i)*sim.Duration(time.Millisecond), func() {
			p.a.Submit(ctrl(i))
		})
	}
	p.eng.RunFor(30 * time.Second)
	if len(p.recvB) != n {
		t.Fatalf("delivered %d, want %d", len(p.recvB), n)
	}
	for i, c := range p.recvB {
		if c.Channel != int64(i+1) {
			t.Fatalf("delivery %d = channel %d, want %d", i, c.Channel, i+1)
		}
	}
}

func TestBidirectionalPiggyback(t *testing.T) {
	params := DefaultParams()
	p := newPipe(t, params, sim.Duration(time.Millisecond))
	for i := int64(1); i <= 5; i++ {
		p.a.Submit(ctrl(i))
		p.b.Submit(ctrl(100 + i))
	}
	p.eng.RunFor(time.Second)
	if len(p.recvA) != 5 || len(p.recvB) != 5 {
		t.Fatalf("recvA=%d recvB=%d", len(p.recvA), len(p.recvB))
	}
	// With traffic in both directions most ACKs should piggyback: pure-ACK
	// count stays low.
	if st := p.a.Stats(); st.PureAcksSent > st.FramesSent {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

func TestStopSilencesEndpoint(t *testing.T) {
	params := DefaultParams()
	p := newPipe(t, params, sim.Duration(time.Millisecond))
	p.a.Submit(ctrl(1))
	p.a.Stop()
	p.eng.RunFor(100 * time.Millisecond)
	sentAfter := p.a.Stats().FramesSent
	p.a.Submit(ctrl(2))
	p.eng.RunFor(100 * time.Millisecond)
	if p.a.Stats().FramesSent != sentAfter {
		t.Fatal("stopped endpoint kept transmitting")
	}
}

func TestCorruptFrameIgnored(t *testing.T) {
	params := DefaultParams()
	p := newPipe(t, params, 0)
	p.b.HandleFrame([]byte{1, 2, 3})
	if p.b.Stats().FramesReceived != 0 {
		t.Fatal("corrupt frame counted as received")
	}
}

func TestNewEndpointPanics(t *testing.T) {
	eng := sim.New(1)
	ok := Params{SMax: 256, RMax: 100, RetxTimeout: time.Millisecond}
	for name, p := range map[string]Params{
		"tiny smax": {SMax: 4, RMax: 100, RetxTimeout: time.Millisecond},
		"zero rmax": {SMax: 256, RMax: 0, RetxTimeout: time.Millisecond},
		"zero retx": {SMax: 256, RMax: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewEndpoint(eng, p, func([]byte) {}, func(wire.Control) {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil callbacks: no panic")
			}
		}()
		NewEndpoint(eng, ok, nil, nil)
	}()
}
