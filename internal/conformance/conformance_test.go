package conformance

import (
	"strings"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

func ms(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

func wantRule(t *testing.T, viols []Violation, rule, fragment string) {
	t.Helper()
	for _, v := range viols {
		if v.Rule == rule && strings.Contains(v.Detail, fragment) {
			return
		}
	}
	t.Fatalf("no %q violation containing %q in %v", rule, fragment, viols)
}

func TestLegalRecoverySequencePasses(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 1, To: trace.StateP, Aux: 3},
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 2, To: trace.StateB, Aux: 3},
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 1, From: trace.StateN, To: trace.StateP},
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 2, From: trace.StateN, To: trace.StateB},
		{At: ms(50), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 4},
		{At: ms(51), Kind: trace.KindReportOriginate, Node: 1, Link: topology.NoLink, Conn: 1, Channel: 1, Aux: -1},
		{At: ms(51), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 1, From: trace.StateP, To: trace.StateU},
		{At: ms(52), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 2, From: trace.StateB, To: trace.StateP},
		{At: ms(52), Kind: trace.KindClaim, Node: topology.NoNode, Link: 7, Conn: 1, Channel: 2},
		{At: ms(53), Kind: trace.KindSourceSwitch, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 2},
		{At: ms(54), Kind: trace.KindClaimConvert, Node: topology.NoNode, Link: 7, Conn: 1, Channel: 2},
	}
	if viols := Check(events, Params{DMax: sim.Duration(5 * time.Millisecond), DetectionSlack: sim.Duration(2 * time.Millisecond)}); len(viols) != 0 {
		t.Fatalf("legal sequence flagged: %v", viols)
	}
}

func TestIllegalEdgeFlagged(t *testing.T) {
	events := []trace.Event{
		// N -> U is not a Figure-4 edge.
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateU},
	}
	wantRule(t, Check(events, Params{}), "state-machine", "illegal")
}

func TestMismatchedFromFlagged(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
		// The stream says node 0 holds B, but this event claims P -> U.
		{At: 1, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateP, To: trace.StateU},
	}
	wantRule(t, Check(events, Params{}), "state-machine", "stream says B")
}

func TestDoubleClaimFlagged(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Channel: 9},
		{At: 1, Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Channel: 9},
	}
	wantRule(t, Check(events, Params{AllowOutstandingClaims: true}), "claim", "double-claims")
}

func TestReleaseWithoutClaimFlagged(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.KindClaimRelease, Node: topology.NoNode, Link: 3, Channel: 9},
	}
	wantRule(t, Check(events, Params{}), "claim", "without a claim")
}

func TestOutstandingClaimFlaggedAtFinish(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Channel: 9},
	}
	wantRule(t, Check(events, Params{}), "claim", "still holds")
	if viols := Check(events, Params{AllowOutstandingClaims: true}); len(viols) != 0 {
		t.Fatalf("outstanding claim flagged despite allowance: %v", viols)
	}
}

func TestHopAcrossDownLinkFlagged(t *testing.T) {
	events := []trace.Event{
		{At: ms(10), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 5},
		{At: ms(20), Kind: trace.KindReportHop, Node: 2, Link: 5, Channel: 1},
	}
	wantRule(t, Check(events, Params{PropSlack: sim.Duration(time.Millisecond)}), "traversal", "down since")
	// Within the propagation allowance the same delivery is fine.
	if viols := Check(events, Params{PropSlack: sim.Duration(20 * time.Millisecond)}); len(viols) != 0 {
		t.Fatalf("in-flight delivery flagged: %v", viols)
	}
	// After repair the link is usable again.
	repaired := []trace.Event{
		{At: ms(10), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 5},
		{At: ms(15), Kind: trace.KindLinkUp, Node: topology.NoNode, Link: 5},
		{At: ms(20), Kind: trace.KindReportHop, Node: 2, Link: 5, Channel: 1},
	}
	if viols := Check(repaired, Params{}); len(viols) != 0 {
		t.Fatalf("post-repair delivery flagged: %v", viols)
	}
}

func TestHopToDeadNodeFlagged(t *testing.T) {
	events := []trace.Event{
		{At: ms(10), Kind: trace.KindNodeDown, Node: 2, Link: topology.NoLink},
		{At: ms(20), Kind: trace.KindActivationHop, Node: 2, Link: 5, Channel: 1},
	}
	wantRule(t, Check(events, Params{}), "traversal", "dead node")
}

func TestGammaBoundViolationFlagged(t *testing.T) {
	dmax := sim.Duration(time.Millisecond)
	base := []trace.Event{
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 1, To: trace.StateP, Aux: 4},
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 2, To: trace.StateB, Aux: 4},
		{At: ms(100), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 4},
		{At: ms(100), Kind: trace.KindReportOriginate, Node: 1, Link: topology.NoLink, Conn: 1, Channel: 1, Aux: -1},
	}
	// Bound: (K-1)·DMax = 3ms with b=1 and no slack. A 10ms recovery breaks it.
	late := append(append([]trace.Event(nil), base...),
		trace.Event{At: ms(110), Kind: trace.KindSourceSwitch, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 2})
	wantRule(t, Check(late, Params{DMax: dmax}), "gamma", "bound")
	// A 2ms recovery is within the bound.
	fast := append(append([]trace.Event(nil), base...),
		trace.Event{At: ms(102), Kind: trace.KindSourceSwitch, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 2})
	if viols := Check(fast, Params{DMax: dmax}); len(viols) != 0 {
		t.Fatalf("fast recovery flagged: %v", viols)
	}
	// DMax = 0 disables the rule entirely.
	if viols := Check(late, Params{}); len(viols) != 0 {
		t.Fatalf("gamma checked with DMax=0: %v", viols)
	}
}

func TestGammaCountsFailedBackupsInRetrialTerm(t *testing.T) {
	// Two backups; the first fails before the primary's report, so the
	// retrial term 2(b-1)(K-1)·DMax must use b=2, not the one live backup
	// left at the time the recovery starts.
	dmax := sim.Duration(time.Millisecond)
	events := []trace.Event{
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 1, To: trace.StateP, Aux: 4},
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 2, To: trace.StateB, Aux: 4},
		{At: 0, Kind: trace.KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 3, To: trace.StateB, Aux: 4},
		{At: ms(100), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 4},
		{At: ms(100), Kind: trace.KindReportOriginate, Node: 1, Link: topology.NoLink, Conn: 1, Channel: 2, Aux: -1},
		{At: ms(101), Kind: trace.KindReportOriginate, Node: 1, Link: topology.NoLink, Conn: 1, Channel: 1, Aux: -1},
		// Bound with b=2: 3ms + 2·3ms = 9ms. 8ms after the crash is inside.
		{At: ms(108), Kind: trace.KindSourceSwitch, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 3},
	}
	if viols := Check(events, Params{DMax: dmax}); len(viols) != 0 {
		t.Fatalf("retrial recovery flagged: %v", viols)
	}
}

func TestBatchOrderNAbsorbingWithinTimestamp(t *testing.T) {
	// A channel torn down and re-installed at the same node within one
	// timestamp means a batched dispatcher ran a stale control after a
	// same-frame closure: N must be absorbing inside a batch.
	events := []trace.Event{
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
		{At: ms(10), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateB, To: trace.StateN},
		{At: ms(10), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
	}
	wantRule(t, Check(events, Params{}), "batch-order", "same instant")

	// The same re-installation one tick later is an ordinary Figure-4 cycle.
	legal := []trace.Event{
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
		{At: ms(10), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateB, To: trace.StateN},
		{At: ms(11), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
	}
	if viols := Check(legal, Params{}); len(viols) != 0 {
		t.Fatalf("later re-installation flagged: %v", viols)
	}

	// Distinct nodes tearing down and installing at one timestamp are
	// independent machines — no batch shares them.
	other := []trace.Event{
		{At: 0, Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
		{At: ms(10), Kind: trace.KindState, Node: 0, Link: topology.NoLink, Channel: 1, From: trace.StateB, To: trace.StateN},
		{At: ms(10), Kind: trace.KindState, Node: 1, Link: topology.NoLink, Channel: 1, From: trace.StateN, To: trace.StateB},
	}
	if viols := Check(other, Params{}); len(viols) != 0 {
		t.Fatalf("independent node flagged: %v", viols)
	}
}

func TestOutOfOrderTimestampsFlagged(t *testing.T) {
	events := []trace.Event{
		{At: ms(10), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 1},
		{At: ms(5), Kind: trace.KindLinkUp, Node: topology.NoNode, Link: 1},
	}
	wantRule(t, Check(events, Params{}), "order", "before predecessor")
}

func TestCheckerIsStreamingSink(t *testing.T) {
	c := New(Params{})
	var _ interface{ Emit(trace.Event) } = c
	c.Emit(trace.Event{At: 0, Kind: trace.KindClaim, Node: topology.NoNode, Link: 1, Channel: 1})
	c.Emit(trace.Event{At: 1, Kind: trace.KindClaimConvert, Node: topology.NoNode, Link: 1, Channel: 1})
	if viols := c.Finish(); len(viols) != 0 {
		t.Fatalf("streaming use flagged: %v", viols)
	}
}
