package experiment

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Figure9Result reproduces one panel of Figure 9: average spare-bandwidth
// reservation (fraction of total capacity) as a function of network load,
// one series per multiplexing degree.
type Figure9Result struct {
	Kind    Kind
	Backups int
	Series  []metrics.Series
}

// RunFigure9 establishes the all-pairs workload incrementally for each
// degree in alphas, sampling (network load, spare fraction) every
// sampleEvery connections. alpha = 0 is the "multiplexing disabled" curve.
// The per-degree runs are independent (each has its own network), so with
// opts.Workers > 1 they execute concurrently; series stay in alphas order.
func RunFigure9(kind Kind, backups int, alphas []int, sampleEvery int, opts Options) Figure9Result {
	if sampleEvery <= 0 {
		sampleEvery = 100
	}
	res := Figure9Result{Kind: kind, Backups: backups, Series: make([]metrics.Series, len(alphas))}
	workers := opts.workerCount()
	if workers > len(alphas) {
		workers = len(alphas)
	}
	if workers <= 1 {
		for i, alpha := range alphas {
			res.Series[i] = figure9Series(kind, backups, alpha, sampleEvery, opts)
		}
		return res
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(alphas) {
					return
				}
				res.Series[i] = figure9Series(kind, backups, alphas[i], sampleEvery, opts)
			}
		}()
	}
	wg.Wait()
	return res
}

// figure9Series runs one degree's incremental establishment curve.
func figure9Series(kind Kind, backups, alpha, sampleEvery int, opts Options) metrics.Series {
	g := NewGraph(kind)
	m := core.NewManager(g, opts.config())
	s := metrics.Series{
		Name:   fmt.Sprintf("mux=%d", alpha),
		XLabel: "network-load",
		YLabel: "spare-bandwidth",
	}
	degrees := UniformDegrees(backups, alpha)
	n := g.NumNodes()
	idx := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			_, _ = m.Establish(topology.NodeID(src), topology.NodeID(dst), rtchan.DefaultSpec(), degrees(idx))
			idx++
			if idx%sampleEvery == 0 {
				s.Append(m.Network().NetworkLoad(), m.Network().SpareFraction())
			}
		}
	}
	s.Append(m.Network().NetworkLoad(), m.Network().SpareFraction())
	return s
}

// Render prints the figure as aligned data columns.
func (r Figure9Result) Render() string {
	return metrics.RenderSeries(
		fmt.Sprintf("Figure 9: average spare-bandwidth reservation — %d backup(s) in %s", r.Backups, r.Kind),
		r.Series...)
}

// Render prints both reliability curves as aligned columns.
func (r Figure3Result) Render() string {
	return metrics.RenderSeries(
		"Figure 3: D-connection reliability — Markov model vs combinatorial approximation",
		r.Markov, r.Combinatorial)
}

// Figure3Result compares the Markov-model reliability R(t) of §3.1 with the
// combinatorial Pr approximation the paper adopts, across a horizon sweep.
type Figure3Result struct {
	Markov        metrics.Series
	Combinatorial metrics.Series
}

// RunFigure3 evaluates a single-backup D-connection with primary/backup
// paths of the given hop counts, per-component failure rate lambda (per time
// unit), and repair rate mu.
func RunFigure3(primaryHops, backupHops int, lambda, mu float64, horizons []float64) Figure3Result {
	cPrim := 2*primaryHops + 1
	cBack := 2*backupHops + 1
	model := reliability.DConnModel{
		Lambda1: float64(cPrim) * lambda,
		Lambda2: float64(cBack) * lambda,
		Lambda3: 0,
		Mu:      mu,
	}
	res := Figure3Result{
		Markov:        metrics.Series{Name: "markov-R(t)", XLabel: "t", YLabel: "reliability"},
		Combinatorial: metrics.Series{Name: "combinatorial", XLabel: "t", YLabel: "reliability"},
	}
	prUnit := reliability.PrSingleBackup(lambda, cPrim, cBack, 0)
	for _, t := range horizons {
		res.Markov.Append(t, model.Reliability(t))
		// The combinatorial model resets each time unit: survival over t
		// units is Pr^t.
		res.Combinatorial.Append(t, math.Pow(prUnit, t))
	}
	return res
}
