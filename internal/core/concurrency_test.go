package core

import (
	"sync"
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// loadedTorus builds a torus manager with the all-pairs workload of a small
// evaluation network (one backup at degree alpha per connection).
func loadedTorus(t *testing.T, alpha int) *Manager {
	t.Helper()
	g := topology.NewTorus(4, 4, 200)
	m := NewManager(g, DefaultConfig())
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s != d {
				if _, err := m.Establish(topology.NodeID(s), topology.NodeID(d), rtchan.DefaultSpec(), []int{alpha}); err != nil {
					t.Fatalf("establish %d->%d: %v", s, d, err)
				}
			}
		}
	}
	return m
}

// TestTrialViewMatchesManagerTrial pins the plan/view split's core contract:
// a TrialView trial is the same computation as Manager.Trial, bit for bit.
func TestTrialViewMatchesManagerTrial(t *testing.T) {
	m := loadedTorus(t, 3)
	v := m.NewTrialView()
	for _, l := range m.Graph().Links() {
		f := SingleLink(l.ID)
		want := m.Trial(f, OrderByConn, nil)
		got := v.Trial(f, OrderByConn, nil)
		if want.FastRecovered != got.FastRecovered ||
			want.FailedPrimaries != got.FailedPrimaries ||
			want.FailedBackups != got.FailedBackups ||
			want.MuxFailed != got.MuxFailed ||
			want.BackupDead != got.BackupDead ||
			want.ExcludedConns != got.ExcludedConns {
			t.Fatalf("link %d: view trial %+v != manager trial %+v", l.ID, got, want)
		}
	}
}

// TestConcurrentTrialsDuringWrites is the race property test for the
// single-writer boundary: many goroutines run read-only trials through
// per-goroutine TrialViews while a writer goroutine churns the plan with
// Establish/Teardown (and the protocol-plane claim calls). Run under
// `go test -race`; the test then asserts the mux engine's invariants and
// that the plan epoch advanced once per write transaction.
func TestConcurrentTrialsDuringWrites(t *testing.T) {
	m := loadedTorus(t, 3)
	g := m.Graph()

	failures := make([]Failure, 0, g.NumLinks()+g.NumNodes())
	for _, l := range g.Links() {
		failures = append(failures, SingleLink(l.ID))
	}
	for n := 0; n < g.NumNodes(); n++ {
		failures = append(failures, SingleNode(topology.NodeID(n)))
	}

	const (
		readers   = 8
		writerOps = 40
	)
	startEpoch := m.PlanEpoch()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := m.NewTrialView()
			for pass := 0; pass < 6; pass++ {
				for i := r; i < len(failures); i += 2 {
					s := v.Trial(failures[i], OrderByConn, nil)
					// Sanity under churn: counters stay consistent even
					// though the observed plan differs between trials.
					if s.FastRecovered+s.MuxFailed+s.BackupDead > s.FailedPrimaries {
						t.Errorf("trial outcome counts exceed failed primaries: %+v", s)
						return
					}
				}
			}
		}(r)
	}

	writes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerOps; i++ {
			src := topology.NodeID(i % g.NumNodes())
			dst := topology.NodeID((i + 5) % g.NumNodes())
			conn, err := m.Establish(src, dst, rtchan.DefaultSpec(), []int{2})
			writes++
			if err != nil {
				continue // transient capacity exhaustion is fine here
			}
			if len(conn.Backups) > 0 {
				b := conn.Backups[0]
				l := b.Path.Links()[0]
				if m.ClaimSpareFor(l, b.ID, b.Bandwidth()) {
					m.ReleaseClaimFor(l, b.ID)
					writes += 2
				} else {
					writes++
				}
			}
			if err := m.Teardown(conn.ID); err != nil {
				t.Errorf("teardown %d: %v", conn.ID, err)
				return
			}
			writes++
		}
	}()
	wg.Wait()

	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatalf("invariants after concurrent churn: %v", err)
	}
	if got := m.PlanEpoch(); got != startEpoch+uint64(writes) {
		t.Fatalf("plan epoch advanced by %d, want %d (one per write transaction)", got-startEpoch, writes)
	}
}
