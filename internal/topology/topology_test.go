package topology

import (
	"testing"
)

func TestTorusCounts(t *testing.T) {
	g := NewTorus(8, 8, 200)
	if g.NumNodes() != 64 {
		t.Fatalf("nodes = %d, want 64", g.NumNodes())
	}
	// 8x8 torus: 2 duplex edges per node => 128 edges => 256 simplex links.
	if g.NumLinks() != 256 {
		t.Fatalf("links = %d, want 256", g.NumLinks())
	}
	for n := NodeID(0); int(n) < g.NumNodes(); n++ {
		if d := g.OutDegree(n); d != 4 {
			t.Fatalf("node %d out-degree = %d, want 4", n, d)
		}
		if d := len(g.In(n)); d != 4 {
			t.Fatalf("node %d in-degree = %d, want 4", n, d)
		}
	}
	if got, want := g.TotalCapacity(), 256*200.0; got != want {
		t.Fatalf("total capacity = %g, want %g", got, want)
	}
}

func TestMeshCounts(t *testing.T) {
	g := NewMesh(8, 8, 300)
	if g.NumNodes() != 64 {
		t.Fatalf("nodes = %d, want 64", g.NumNodes())
	}
	// 8x8 mesh: 2*8*7 = 112 edges => 224 simplex links.
	if g.NumLinks() != 224 {
		t.Fatalf("links = %d, want 224", g.NumLinks())
	}
	// Corner (0,0) has degree 2, edge (0,1) degree 3, interior (1,1) degree 4.
	if d := g.OutDegree(0); d != 2 {
		t.Fatalf("corner out-degree = %d, want 2", d)
	}
	if d := g.OutDegree(1); d != 3 {
		t.Fatalf("edge out-degree = %d, want 3", d)
	}
	if d := g.OutDegree(9); d != 4 {
		t.Fatalf("interior out-degree = %d, want 4", d)
	}
	if got, want := g.TotalCapacity(), 224*300.0; got != want {
		t.Fatalf("total capacity = %g, want %g", got, want)
	}
}

func TestEveryLinkHasReverse(t *testing.T) {
	for _, g := range []*Graph{
		NewTorus(8, 8, 200), NewMesh(4, 5, 300), NewRing(7, 10),
		NewLine(5, 10), NewStar(6, 10), NewFullMesh(5, 10),
		NewHypercube(4, 10), NewRandom(30, 3.5, 10, 42),
	} {
		for _, l := range g.Links() {
			r := g.Reverse(l.ID)
			if r == NoLink {
				t.Fatalf("%s: link %d (%d->%d) has no reverse", g.Name(), l.ID, l.From, l.To)
			}
			rl := g.Link(r)
			if rl.From != l.To || rl.To != l.From {
				t.Fatalf("%s: reverse of %d->%d is %d->%d", g.Name(), l.From, l.To, rl.From, rl.To)
			}
		}
	}
}

func TestLinkBetween(t *testing.T) {
	g := NewMesh(2, 2, 10)
	if l := g.LinkBetween(0, 1); l == NoLink {
		t.Fatal("expected link 0->1")
	}
	if l := g.LinkBetween(0, 3); l != NoLink {
		t.Fatal("unexpected diagonal link 0->3")
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := NewGraph("test", 3)
	if _, err := g.AddLink(0, 0, 10); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddLink(0, 5, 10); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddLink(0, 1, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := g.AddLink(0, 1, 10); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	if _, err := g.AddLink(0, 1, 10); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestTwoWideTorusHasNoDuplicateLinks(t *testing.T) {
	g := NewTorus(2, 2, 10)
	// 2x2 torus degenerates to a 4-cycle: each node connects to 2 neighbors.
	if g.NumLinks() != 8 {
		t.Fatalf("2x2 torus links = %d, want 8", g.NumLinks())
	}
	g = NewTorus(2, 4, 10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGraphConnectedAndDeterministic(t *testing.T) {
	g1 := NewRandom(40, 4, 10, 7)
	g2 := NewRandom(40, 4, 10, 7)
	if g1.NumLinks() != g2.NumLinks() {
		t.Fatalf("same seed produced different graphs: %d vs %d links", g1.NumLinks(), g2.NumLinks())
	}
	// BFS connectivity check.
	seen := make([]bool, g1.NumNodes())
	queue := []NodeID{0}
	seen[0] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range g1.Neighbors(n) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("random graph not connected: node %d unreachable", i)
		}
	}
}

func TestPathConstruction(t *testing.T) {
	g := NewLine(5, 10)
	p, err := PathBetween(g, []NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 3 {
		t.Fatalf("hops = %d, want 3", p.Hops())
	}
	if p.Source() != 0 || p.Destination() != 3 {
		t.Fatalf("endpoints = %d,%d", p.Source(), p.Destination())
	}
	if got := p.NumComponents(); got != 7 { // 3 links + 4 nodes
		t.Fatalf("components = %d, want 7", got)
	}
	if !p.ContainsInteriorNode(1) || p.ContainsInteriorNode(0) || p.ContainsInteriorNode(3) {
		t.Fatal("interior node classification wrong")
	}
	if p.String() != "0->1->2->3" {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestPathErrors(t *testing.T) {
	g := NewLine(5, 10)
	if _, err := PathBetween(g, []NodeID{0}); err == nil {
		t.Error("single-node path accepted")
	}
	if _, err := PathBetween(g, []NodeID{0, 2}); err == nil {
		t.Error("non-adjacent hop accepted")
	}
	if _, err := PathBetween(g, []NodeID{0, 1, 0, 1}); err == nil {
		t.Error("node-revisiting path accepted")
	}
	// Discontiguous link sequence.
	l01 := g.LinkBetween(0, 1)
	l23 := g.LinkBetween(2, 3)
	if _, err := NewPath(g, []LinkID{l01, l23}); err == nil {
		t.Error("discontiguous link path accepted")
	}
}

func TestSharedComponents(t *testing.T) {
	g := NewMesh(3, 3, 10)
	// Nodes: 0 1 2 / 3 4 5 / 6 7 8
	p1, _ := PathBetween(g, []NodeID{0, 1, 2, 5}) // links 0-1,1-2,2-5
	p2, _ := PathBetween(g, []NodeID{3, 4, 1, 2}) // links 3-4,4-1,1-2
	// Shared: link 1->2 plus nodes 1 and 2 (all visited nodes count).
	if sc := p1.SharedComponents(p2); sc != 3 {
		t.Fatalf("sc = %d, want 3 (link 1->2 + nodes 1,2)", sc)
	}
	// Symmetry.
	if sc := p2.SharedComponents(p1); sc != 3 {
		t.Fatalf("sc not symmetric")
	}
	// Self-share: all components.
	if sc := p1.SharedComponents(p1); sc != p1.NumComponents() {
		t.Fatalf("self sc = %d, want %d", sc, p1.NumComponents())
	}
	// Opposite-direction links are distinct components; nodes are shared.
	q1, _ := PathBetween(g, []NodeID{0, 1, 2})
	q2, _ := PathBetween(g, []NodeID{2, 1, 0})
	if sc := q1.SharedComponents(q2); sc != 3 {
		t.Fatalf("antiparallel paths share sc=%d, want 3 (nodes 0,1,2)", sc)
	}
	// Sharing a single link always implies >= 3 shared components — the
	// property underlying the paper's mux=3 single-link-failure guarantee.
	r1, _ := PathBetween(g, []NodeID{0, 1, 2})
	r2, _ := PathBetween(g, []NodeID{0, 1, 4})
	if sc := r1.SharedComponents(r2); sc != 3 {
		t.Fatalf("paths sharing their first link: sc=%d, want 3", sc)
	}
}

func TestComponentDisjoint(t *testing.T) {
	g := NewMesh(3, 3, 10)
	p1, _ := PathBetween(g, []NodeID{0, 1, 2})
	p2, _ := PathBetween(g, []NodeID{0, 3, 4, 5, 2}) // same endpoints, disjoint interior
	if !p1.ComponentDisjoint(p2) {
		t.Fatal("channels sharing only their end nodes should qualify as disjoint")
	}
	if !p2.ComponentDisjoint(p1) {
		t.Fatal("ComponentDisjoint not symmetric")
	}
	p3, err := PathBetween(g, []NodeID{4, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p1.ComponentDisjoint(p3) {
		t.Fatal("paths sharing interior node 1 should not be disjoint")
	}
	// Sharing a node that is an end of one path but interior of the other
	// disqualifies: its failure kills both channels.
	p4, _ := PathBetween(g, []NodeID{1, 4, 7})
	if p1.ComponentDisjoint(p4) {
		t.Fatal("node 1 is interior to p1 and an end of p4: not disjoint")
	}
	// Sharing a link disqualifies.
	p5, _ := PathBetween(g, []NodeID{0, 1, 4})
	if p1.ComponentDisjoint(p5) {
		t.Fatal("paths sharing link 0->1 should not be disjoint")
	}
}

func TestHypercube(t *testing.T) {
	g := NewHypercube(3, 10)
	if g.NumNodes() != 8 || g.NumLinks() != 8*3 {
		t.Fatalf("hypercube-3: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
}

func BenchmarkSharedComponents(b *testing.B) {
	g := NewTorus(8, 8, 200)
	p1, err := PathBetween(g, []NodeID{0, 1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	p2, err := PathBetween(g, []NodeID{10, 2, 3, 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p1.SharedComponents(p2) != 3 {
			b.Fatal("wrong sc")
		}
	}
}
