package rcc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/wire"
)

// TestHandleFrameNeverPanicsOnGarbage feeds arbitrary byte blobs to the
// receive path: a corrupted or hostile frame must be dropped, never crash
// the daemon.
func TestHandleFrameNeverPanicsOnGarbage(t *testing.T) {
	eng := sim.New(1)
	e := NewEndpoint(eng, DefaultParams(), func([]byte) {}, func(wire.Control) {})
	fn := func(data []byte) bool {
		e.HandleFrame(data)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(time.Second)
}

// TestRandomizedDuplex exercises two endpoints under randomized loss,
// delay jitter, and bidirectional traffic, checking exactly-once in-order
// delivery in both directions.
func TestRandomizedDuplex(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		eng := sim.New(seed)
		rng := rand.New(rand.NewSource(seed))
		var a, b *Endpoint
		var recvA, recvB []int64
		send := func(peer **Endpoint) func([]byte) {
			return func(data []byte) {
				if rng.Intn(5) == 0 {
					return // 20% loss
				}
				d := append([]byte(nil), data...)
				delay := sim.Duration(1+rng.Intn(3)) * sim.Duration(time.Millisecond)
				eng.Schedule(delay, func() { (*peer).HandleFrame(d) })
			}
		}
		a = NewEndpoint(eng, DefaultParams(), send(&b), func(c wire.Control) {
			recvA = append(recvA, c.Channel)
		})
		b = NewEndpoint(eng, DefaultParams(), send(&a), func(c wire.Control) {
			recvB = append(recvB, c.Channel)
		})
		const n = 30
		for i := int64(1); i <= n; i++ {
			i := i
			eng.Schedule(sim.Duration(rng.Intn(50))*sim.Duration(time.Millisecond), func() {
				a.Submit(wire.Control{Type: wire.MsgActivation, Channel: i, Toward: 1})
			})
			eng.Schedule(sim.Duration(rng.Intn(50))*sim.Duration(time.Millisecond), func() {
				b.Submit(wire.Control{Type: wire.MsgActivation, Channel: 1000 + i, Toward: 1})
			})
		}
		eng.RunFor(time.Minute)
		if len(recvB) != n || len(recvA) != n {
			t.Fatalf("seed %d: delivered A=%d B=%d, want %d each", seed, len(recvA), len(recvB), n)
		}
		// In-order within each direction (submission order may interleave
		// across timers, but per-endpoint the RCC preserves submit order;
		// verify no duplicates at least).
		seen := map[int64]bool{}
		for _, v := range append(append([]int64{}, recvA...), recvB...) {
			if seen[v] {
				t.Fatalf("seed %d: duplicate delivery %d", seed, v)
			}
			seen[v] = true
		}
	}
}

// FuzzHandleFrame is the native-fuzzing upgrade of the quick.Check garbage
// test above: arbitrary bytes into the receive path must never panic, and a
// well-formed frame must never be delivered twice. Seeds cover a valid
// single-control frame, a pure ack, and truncations of both.
func FuzzHandleFrame(f *testing.F) {
	valid, err := (wire.Frame{Seq: 1, Ack: 0, Controls: []wire.Control{
		{Type: wire.MsgFailureReport, Channel: 7, Origin: 3, Toward: -1},
	}}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	pureAck, err := (wire.Frame{Seq: 0, Ack: 5}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(pureAck)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.New(1)
		delivered := 0
		e := NewEndpoint(eng, DefaultParams(), func([]byte) {}, func(wire.Control) {
			delivered++
		})
		e.HandleFrame(data)
		e.HandleFrame(data) // exact duplicate: must be dropped by seq check
		eng.RunFor(time.Second)
		if frame, err := wire.Unmarshal(data); err == nil && frame.Seq == 1 {
			if want := len(frame.Controls); delivered != want {
				t.Fatalf("frame with %d controls delivered %d (duplicate not suppressed?)",
					want, delivered)
			}
		}
	})
}
