package core

import (
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// trialScratch holds Trial's reusable per-Manager buffers. The R_fast
// sweeps run one Trial per candidate failure over the same loaded network,
// and the per-trial map allocations (affected-channel dedup, per-connection
// grouping, spare claims) dominated the trial's cost. The buffers are
// generation-stamped: advancing gen invalidates every slot at once, so a
// trial pays only for the components it actually touches.
//
// Slices are indexed by the dense ChannelID / ConnID / LinkID spaces.
// Channel and connection IDs are monotonic, so under heavy churn the
// buffers grow to the peak ID (4-9 bytes per ID ever issued).
type trialScratch struct {
	gen      uint32
	chanSeen []uint32 // by ChannelID: dedup of affected channels
	connGen  []uint32 // by ConnID: connection touched this trial
	connPrim []bool   // by ConnID: primary disabled (valid when connGen matches)
	connBkup []int32  // by ConnID: disabled backup count (valid when connGen matches)
	conns    []rtchan.ConnID
	needs    []*DConnection
	claimGen []uint32  // by LinkID
	claimVal []float64 // by LinkID: bandwidth claimed this trial

	// Per-degree accumulation for RecoveryStats.ByDegree. A trial sees a
	// handful of distinct degrees, so a linear-scan pair of slices beats a
	// map in the per-connection hot path; the map is materialized once at
	// the end of the trial.
	degAlpha []int
	degStat  []DegreeStats
}

// addDegree accumulates into the alpha class's per-trial breakdown.
func (t *trialScratch) addDegree(alpha, failed, recovered int) {
	for i, a := range t.degAlpha {
		if a == alpha {
			t.degStat[i].FailedPrimaries += failed
			t.degStat[i].FastRecovered += recovered
			return
		}
	}
	t.degAlpha = append(t.degAlpha, alpha)
	t.degStat = append(t.degStat, DegreeStats{FailedPrimaries: failed, FastRecovered: recovered})
}

// degreeMap builds the trial's ByDegree map (nil when no class was touched)
// and resets the accumulator for the next trial.
func (t *trialScratch) degreeMap() map[int]DegreeStats {
	if len(t.degAlpha) == 0 {
		return nil
	}
	m := make(map[int]DegreeStats, len(t.degAlpha))
	for i, a := range t.degAlpha {
		m[a] = t.degStat[i]
	}
	t.degAlpha = t.degAlpha[:0]
	t.degStat = t.degStat[:0]
	return m
}

// begin starts a new trial, invalidating all slots.
func (t *trialScratch) begin(numLinks int) {
	t.gen++
	if t.gen == 0 { // wrapped: stamps from 2^32 trials ago are ambiguous
		for i := range t.chanSeen {
			t.chanSeen[i] = 0
		}
		for i := range t.connGen {
			t.connGen[i] = 0
		}
		for i := range t.claimGen {
			t.claimGen[i] = 0
		}
		t.gen = 1
	}
	if len(t.claimGen) < numLinks {
		t.claimGen = make([]uint32, numLinks)
		t.claimVal = make([]float64, numLinks)
	}
	t.conns = t.conns[:0]
	t.degAlpha = t.degAlpha[:0]
	t.degStat = t.degStat[:0]
}

// markChan records channel id as affected, reporting whether it was new.
func (t *trialScratch) markChan(id rtchan.ChannelID) bool {
	if int(id) >= len(t.chanSeen) {
		grown := make([]uint32, int(id)+1+len(t.chanSeen)/2)
		copy(grown, t.chanSeen)
		t.chanSeen = grown
	}
	if t.chanSeen[id] == t.gen {
		return false
	}
	t.chanSeen[id] = t.gen
	return true
}

// connSlot returns the index of conn id's per-trial state, initializing it
// (and recording the connection) on first touch.
func (t *trialScratch) connSlot(id rtchan.ConnID) int {
	if int(id) >= len(t.connGen) {
		n := int(id) + 1 + len(t.connGen)/2
		grownGen := make([]uint32, n)
		copy(grownGen, t.connGen)
		t.connGen = grownGen
		grownPrim := make([]bool, n)
		copy(grownPrim, t.connPrim)
		t.connPrim = grownPrim
		grownBkup := make([]int32, n)
		copy(grownBkup, t.connBkup)
		t.connBkup = grownBkup
	}
	if t.connGen[id] != t.gen {
		t.connGen[id] = t.gen
		t.connPrim[id] = false
		t.connBkup[id] = 0
		t.conns = append(t.conns, id)
	}
	return int(id)
}

// claimed returns the bandwidth claimed on link l this trial.
func (t *trialScratch) claimed(l topology.LinkID) float64 {
	if t.claimGen[l] != t.gen {
		return 0
	}
	return t.claimVal[l]
}

// claim draws bw from link l's pool for this trial.
func (t *trialScratch) claim(l topology.LinkID, bw float64) {
	if t.claimGen[l] != t.gen {
		t.claimGen[l] = t.gen
		t.claimVal[l] = 0
	}
	t.claimVal[l] += bw
}
