package realtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimerFiresInOrder checks that timers armed out of order fire in
// deadline order, serialized on the execution lock.
func TestTimerFiresInOrder(t *testing.T) {
	r := New(1)
	defer r.Stop()

	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	add := func(v int) func() {
		return func() {
			mu.Lock()
			got = append(got, v)
			n := len(got)
			mu.Unlock()
			if n == 3 {
				close(done)
			}
		}
	}
	r.Schedule(30*time.Millisecond, add(3))
	r.Schedule(10*time.Millisecond, add(1))
	r.Schedule(20*time.Millisecond, add(2))

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timers did not fire")
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", got)
	}
}

// TestStopPreventsFire checks the sim contract: a Stop that returns true
// means the callback never runs, and the handle reads dead afterwards.
func TestStopPreventsFire(t *testing.T) {
	r := New(1)
	defer r.Stop()

	var fired atomic.Bool
	tm := r.Schedule(50*time.Millisecond, func() { fired.Store(true) })
	if !tm.Active() {
		t.Fatal("pending timer should be active")
	}
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer should return true")
	}
	if tm.Active() {
		t.Fatal("stopped timer should be inactive")
	}
	if tm.Stop() {
		t.Fatal("second Stop should be a no-op")
	}
	time.Sleep(120 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired anyway")
	}
	if tm.Fired() {
		t.Fatal("stopped timer reports Fired")
	}
}

// TestScheduleBatch checks the bulk-insert path on the wall clock: a batch
// fires in FIFO order among itself, interleaves with standing timers by
// deadline, honors Stop on individual handles, and wakes the timer
// goroutine when the batch introduces a new earliest deadline.
func TestScheduleBatch(t *testing.T) {
	r := New(1)
	defer r.Stop()

	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	const total = 14 // 12 surviving batch timers + 1 late + 1 standing
	add := func(v int) func() {
		return func() {
			mu.Lock()
			got = append(got, v)
			n := len(got)
			mu.Unlock()
			if n == total {
				close(done)
			}
		}
	}
	// A standing timer far out, so the batch at 20ms becomes the new
	// earliest deadline and must wake the sleeping timer goroutine.
	r.Schedule(60*time.Millisecond, add(999))
	fns := make([]func(), 13)
	for i := range fns {
		fns[i] = add(i)
	}
	handles := r.ScheduleBatch(20*time.Millisecond, fns, nil)
	if len(handles) != 13 {
		t.Fatalf("got %d handles, want 13", len(handles))
	}
	if !handles[7].Stop() {
		t.Fatal("Stop on a pending batch handle should return true")
	}
	r.Schedule(40*time.Millisecond, add(1000))

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch timers did not fire")
	}
	mu.Lock()
	defer mu.Unlock()
	want := make([]int, 0, total)
	for i := 0; i < 13; i++ {
		if i == 7 {
			continue
		}
		want = append(want, i)
	}
	want = append(want, 1000, 999)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestRearmFromCallback checks release-before-fire: a callback can re-arm a
// periodic timer, recycling its own arena slot, and the old handle is dead.
func TestRearmFromCallback(t *testing.T) {
	r := New(1)
	defer r.Stop()

	var n atomic.Int32
	done := make(chan struct{})
	var tick func()
	tick = func() {
		if n.Add(1) < 5 {
			r.Schedule(5*time.Millisecond, tick)
		} else {
			close(done)
		}
	}
	tm := r.Schedule(5*time.Millisecond, tick)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("re-armed timer stalled at %d ticks", n.Load())
	}
	if !tm.Fired() {
		t.Fatal("first generation should report Fired")
	}
	if tm.Stop() {
		t.Fatal("Stop on a fired handle must not cancel a later generation")
	}
}

// TestActorsSerializeAndDrop checks that posts execute under the execution
// lock (no data race on the shared counter without it) and that a full
// mailbox drops rather than blocks.
func TestActorsSerializeAndDrop(t *testing.T) {
	r := New(1)
	defer r.Stop()
	r.StartActors(4, 64)

	var wg sync.WaitGroup
	counter := 0 // protected only by the runtime's execution lock
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if r.Post(node, func() { counter++ }) {
					accepted.Add(1)
				}
			}
		}(g % 4)
	}
	wg.Wait()

	// Drain: executed count must eventually equal accepted count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var c int
		r.Exec(func() { c = counter })
		if int64(c) == accepted.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("executed %d of %d accepted posts", c, accepted.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if accepted.Load()+int64(r.Dropped()) != 8*200 {
		t.Fatalf("accepted %d + dropped %d != 1600", accepted.Load(), r.Dropped())
	}
}

// TestStopIsCleanAndIdempotent checks that Stop returns with all runtime
// goroutines finished and that posting after Stop is a counted drop, not a
// panic.
func TestStopIsCleanAndIdempotent(t *testing.T) {
	r := New(1)
	r.StartActors(8, 16)
	for i := 0; i < 8; i++ {
		r.Post(i, func() {})
	}
	r.Schedule(time.Hour, func() { t.Error("distant timer fired during stop") })
	r.Stop()
	r.Stop() // idempotent
	if r.Post(0, func() { t.Error("post after Stop executed") }) {
		t.Fatal("Post after Stop should report failure")
	}
	time.Sleep(20 * time.Millisecond)
}
