GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: vet + build + the full suite under the race
# detector (the parallel sweep worker pool runs even in short mode).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench records the kernel micro-benchmarks to BENCH_<LABEL>.json; set
# COMPARE to a previous file to embed deltas. SEED fixes the workload rng
# (DisjointPair's sampled node pairs) so runs are comparable across trees.
LABEL ?= dev
COMPARE ?=
SEED ?= 1
bench:
	$(GO) run ./cmd/bcpbench -label $(LABEL) -seed $(SEED) $(if $(COMPARE),-compare $(COMPARE))
