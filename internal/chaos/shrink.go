package chaos

import (
	"time"
)

// Shrinker reduces a failing spec to a minimal reproducer. Minimality is
// greedy, not global: each accepted step keeps the spec failing, and the
// process stops when no single step helps or the episode budget runs out.
// Three reductions run in rounds until a fixpoint:
//
//  1. drop fault events (ddmin-style: halves, then quarters, ... then
//     single events);
//  2. tighten the timeline (scale every event time down, pull the horizon
//     in to just past the last event);
//  3. shrink the configuration (drop connections, then swap the topology
//     for smaller instances of the same generator).
//
// "Failing" means RunEpisode reports at least one violation — any
// violation: a reproducer that morphs one symptom into another as it
// shrinks is still a reproducer of the underlying bug.
type Shrinker struct {
	// Opts are applied to every probe run (sabotage must stay on while
	// shrinking a sabotage-caught failure).
	Opts RunOptions
	// Budget caps probe episodes (default 400).
	Budget int

	runs int
}

// fails probes a candidate spec, consuming budget.
func (sh *Shrinker) fails(s Spec) bool {
	if sh.runs >= sh.Budget {
		return false // out of budget: treat as "does not fail", keep current
	}
	sh.runs++
	res, err := RunEpisode(s, sh.Opts)
	return err == nil && len(res.Violations) > 0
}

// Runs reports how many probe episodes the last Shrink consumed.
func (sh *Shrinker) Runs() int { return sh.runs }

// Shrink minimizes spec. The input must fail (the caller just watched it
// fail); the result is the smallest failing spec found.
func (sh *Shrinker) Shrink(spec Spec) Spec {
	if sh.Budget <= 0 {
		sh.Budget = 400
	}
	sh.runs = 0
	cur := spec
	for changed := true; changed; {
		changed = false
		if next, ok := sh.dropEvents(cur); ok {
			cur, changed = next, true
		}
		if next, ok := sh.tightenTimes(cur); ok {
			cur, changed = next, true
		}
		if next, ok := sh.shrinkConfig(cur); ok {
			cur, changed = next, true
		}
	}
	return cur
}

// withEvents returns spec with a new event list, a re-fitted horizon, and a
// re-derived benign flag: deleting a repair event can turn a benign schedule
// into overlapping failures, and demanding liveness of those would let the
// shrinker latch onto a false positive instead of the original bug. The
// flag only ever weakens (benign -> non-benign), never strengthens.
func withEvents(spec Spec, evs []FaultEvent) Spec {
	spec.Events = evs
	last := int64(0)
	for _, ev := range evs {
		if ev.AtNS > last {
			last = ev.AtNS
		}
	}
	spec.HorizonNS = last + int64(500*time.Millisecond)
	spec.Benign = spec.Benign && benignEvents(evs)
	return spec
}

// dropEvents removes fault events ddmin-style: try deleting chunks of
// decreasing size, restarting from big chunks after any success.
func (sh *Shrinker) dropEvents(spec Spec) (Spec, bool) {
	improved := false
	for {
		n := len(spec.Events)
		if n <= 1 {
			return spec, improved
		}
		droppedAny := false
		for size := n / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(spec.Events); start += size {
				evs := make([]FaultEvent, 0, len(spec.Events)-size)
				evs = append(evs, spec.Events[:start]...)
				evs = append(evs, spec.Events[start+size:]...)
				cand := withEvents(spec, evs)
				if sh.fails(cand) {
					spec = cand
					droppedAny, improved = true, true
					break
				}
			}
			if droppedAny {
				break // restart with large chunks on the smaller list
			}
		}
		if !droppedAny {
			return spec, improved
		}
	}
}

// tightenTimes compresses the timeline toward zero while preserving event
// order: smaller windows mean faster replays and tighter reproducers.
func (sh *Shrinker) tightenTimes(spec Spec) (Spec, bool) {
	improved := false
	for _, div := range []int64{4, 2} {
		evs := make([]FaultEvent, len(spec.Events))
		shrunk := false
		for i, ev := range spec.Events {
			evs[i] = ev
			evs[i].AtNS = ev.AtNS / div
			if evs[i].AtNS != ev.AtNS {
				shrunk = true
			}
		}
		if !shrunk {
			continue
		}
		cand := withEvents(spec, evs)
		if sh.fails(cand) {
			spec = cand
			improved = true
		}
	}
	return spec, improved
}

// smallerTopos proposes smaller instances of the spec's topology family.
func smallerTopos(t TopoSpec) []TopoSpec {
	switch t.Kind {
	case "torus", "mesh":
		var out []TopoSpec
		if t.A > 3 {
			out = append(out, TopoSpec{Kind: t.Kind, A: t.A - 1, B: t.B, Seed: t.Seed})
		}
		if t.B > 3 {
			out = append(out, TopoSpec{Kind: t.Kind, A: t.A, B: t.B - 1, Seed: t.Seed})
		}
		return out
	case "ring":
		if t.A > 4 {
			return []TopoSpec{{Kind: "ring", A: t.A - 2}}
		}
	case "hypercube":
		if t.A > 2 {
			return []TopoSpec{{Kind: "hypercube", A: t.A - 1}}
		}
	case "random":
		if t.A > 6 {
			return []TopoSpec{{Kind: "random", A: t.A - 2, B: t.B, Seed: t.Seed}}
		}
	}
	return nil
}

// specValidOn reports whether every event target exists on the topology.
func specValidOn(spec Spec) bool {
	g, err := spec.Topo.Build()
	if err != nil {
		return false
	}
	for _, cs := range spec.Conns {
		if cs.Src >= g.NumNodes() || cs.Dst >= g.NumNodes() {
			return false
		}
	}
	for _, ev := range spec.Events {
		switch ev.Kind {
		case EvFailNode, EvRepairNode:
			if ev.Target >= g.NumNodes() {
				return false
			}
		default:
			if ev.Target >= g.NumLinks() {
				return false
			}
		}
	}
	return true
}

// shrinkConfig drops connections and tries smaller topologies. Topology
// substitution re-maps nothing — the same link IDs land on different
// physical links — so it only stands when the failure reproduces anyway.
func (sh *Shrinker) shrinkConfig(spec Spec) (Spec, bool) {
	improved := false
	for i := 0; i < len(spec.Conns) && len(spec.Conns) > 1; {
		cand := spec
		cand.Conns = append(append([]ConnSpec{}, spec.Conns[:i]...), spec.Conns[i+1:]...)
		if sh.fails(cand) {
			spec = cand
			improved = true
			continue // same index now names the next conn
		}
		i++
	}
	for {
		shrunk := false
		for _, t := range smallerTopos(spec.Topo) {
			cand := spec
			cand.Topo = t
			if !specValidOn(cand) {
				continue
			}
			if sh.fails(cand) {
				spec = cand
				improved, shrunk = true, true
				break
			}
		}
		if !shrunk {
			return spec, improved
		}
	}
}
