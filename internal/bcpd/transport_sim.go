package bcpd

import (
	"fmt"

	"github.com/rtcl/bcp/internal/sched"
	"github.com/rtcl/bcp/internal/topology"
)

// SimTransport is the deterministic in-process transport: one sched.Link
// transmitter per simplex link, serializing packets at link capacity and
// delivering them after the propagation delay, with control frames carried
// zero-copy — the marshaled buffer rides the scheduler inside a recycled
// pointer box and returns to the network's pool after delivery or drop.
// Under sim.Engine this is bit-identical to the pre-seam engine; it works
// under the wall-clock runtime too (every entry point is runtime-serialized),
// though live runs normally use PipeTransport or UDPTransport.
type SimTransport struct {
	n     *Network
	links []*sched.Link
	hb    []any // heartbeat payloads, boxed once per link

	// boxFree recycles the frame boxes.
	boxFree []*rccFrame
}

// NewSimTransport creates an unattached sim transport; NewOn attaches it.
func NewSimTransport() *SimTransport { return &SimTransport{} }

// Attach builds the per-link transmitters against the network's runtime and
// graph. One drop handler is shared by every link: the payload type alone
// says what to reclaim.
func (t *SimTransport) Attach(n *Network) {
	t.n = n
	g := n.mgr.Graph()
	t.links = make([]*sched.Link, g.NumLinks())
	drop := t.reclaim
	for _, l := range g.Links() {
		lID := l.ID
		sl := sched.NewLink(n.rt, l.Capacity, n.cfg.PropDelay, n.cfg.MaxQueue, func(p sched.Packet) {
			t.deliver(lID, p)
		})
		sl.SetDropHandler(drop)
		t.links[lID] = sl
	}
	if n.cfg.HeartbeatInterval > 0 {
		t.hb = make([]any, g.NumLinks())
		for i := range t.hb {
			t.hb[i] = heartbeatPayload{link: topology.LinkID(i)}
		}
	}
}

// getBox returns a recycled frame box.
func (t *SimTransport) getBox() *rccFrame {
	if k := len(t.boxFree); k > 0 {
		b := t.boxFree[k-1]
		t.boxFree[k-1] = nil
		t.boxFree = t.boxFree[:k-1]
		return b
	}
	return &rccFrame{}
}

// SendFrame boxes the frame buffer and hands it to link l's transmitter.
func (t *SimTransport) SendFrame(l topology.LinkID, frame []byte) {
	box := t.getBox()
	box.data = frame
	t.links[l].Enqueue(sched.Packet{Class: sched.ClassControl, Size: len(frame), Payload: box})
}

// SendData hands a data box to link l's transmitter.
func (t *SimTransport) SendData(l topology.LinkID, p *dataPayload) {
	t.links[l].Enqueue(sched.Packet{Class: sched.ClassRealTime, Size: t.n.cfg.DataMsgSize, Payload: p})
}

// SendHeartbeat enqueues link l's prebuilt heartbeat payload.
func (t *SimTransport) SendHeartbeat(l topology.LinkID) {
	t.links[l].Enqueue(sched.Packet{Class: sched.ClassControl, Size: heartbeatSize, Payload: t.hb[l]})
}

// SetLinkDown fails or repairs the transmitter; going down clears its queues
// (reclaiming every pooled payload through the drop handler).
func (t *SimTransport) SetLinkDown(l topology.LinkID, down bool) { t.links[l].SetDown(down) }

// Close is a no-op: the sim transport owns no goroutines or sockets.
func (t *SimTransport) Close() {}

// deliver dispatches a packet arriving at the far end of link l.
func (t *SimTransport) deliver(l topology.LinkID, p sched.Packet) {
	switch pl := p.Payload.(type) {
	case *rccFrame:
		data := pl.data
		pl.data = nil
		t.boxFree = append(t.boxFree, pl)
		t.n.deliverFrame(l, data)
	case *dataPayload:
		t.n.deliverData(l, pl)
	case heartbeatPayload:
		t.n.deliverHeartbeat(pl.link)
	default:
		panic(fmt.Sprintf("bcpd: unknown payload %T", p.Payload))
	}
}

// reclaim observes every packet a link drops and returns its pooled payload:
// frame buffers and boxes to their free lists, data boxes to the network.
// Heartbeats carry nothing pooled.
func (t *SimTransport) reclaim(p sched.Packet) {
	switch pl := p.Payload.(type) {
	case *rccFrame:
		data := pl.data
		pl.data = nil
		t.boxFree = append(t.boxFree, pl)
		t.n.reclaimFrame(data)
	case *dataPayload:
		t.n.reclaimData(pl)
	}
}

// InTransit counts the pooled payloads physically inside the transport —
// queued, serializing, or propagating — by walking the transmitters. It is
// deliberately a census rather than a counter kept alongside the reclaim
// path: together with Network.PoolOutstanding it forms the pool-balance
// invariant (at any event boundary, outstanding == in-transit), and a
// payload whose drop failed to reclaim it shows up as outstanding without
// being anywhere in the transport.
func (t *SimTransport) InTransit() (frames, data int) {
	for _, sl := range t.links {
		sl.Each(func(p sched.Packet) {
			switch p.Payload.(type) {
			case *rccFrame:
				frames++
			case *dataPayload:
				data++
			}
		})
	}
	return frames, data
}

// LinkStats returns link l's scheduler counters.
func (t *SimTransport) LinkStats(l topology.LinkID) sched.LinkStats { return t.links[l].Stats() }
