package metrics

// Protocol-observability aggregation: counters and histograms computed from
// the typed event stream of internal/trace. A ProtocolAggregator is a
// trace.Sink, so it can tee with a recorder or the conformance checker
// during a run, or replay a recorded stream afterwards.

import (
	"fmt"
	"strings"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/trace"
)

// Histogram counts observations into fixed buckets: Counts[i] holds
// observations v <= Bounds[i] (and above all smaller bounds); the last
// bucket is unbounded.
type Histogram struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	N      uint64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Sum += v
	h.N++
}

// Reset zeroes all counts, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Sum, h.N = 0, 0
}

// Mean returns the average observation (0 for none).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (q in [0,1]); the last bucket reports the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := q * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// ProtocolAggregator folds an event stream into per-kind counters, an RCC
// batching histogram (controls per payload frame), and a recovery-delay
// histogram (component crash to source switch).
type ProtocolAggregator struct {
	counts [trace.NumKinds]uint64
	// Batch is the distribution of controls batched per RCC payload frame.
	Batch *Histogram
	// Recovery is the distribution of recovery delays in seconds.
	Recovery *Histogram

	lastCrash sim.Time
	anyCrash  bool
}

// NewProtocolAggregator creates an aggregator with default buckets: batch
// sizes up to the practical per-frame maximum, recovery delays from 100µs
// to 10s.
func NewProtocolAggregator() *ProtocolAggregator {
	return &ProtocolAggregator{
		Batch: NewHistogram(1, 2, 4, 8, 16, 32),
		Recovery: NewHistogram(100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3,
			100e-3, 300e-3, 1, 3, 10),
	}
}

// Emit implements trace.Sink.
func (a *ProtocolAggregator) Emit(ev trace.Event) {
	if int(ev.Kind) < len(a.counts) {
		a.counts[ev.Kind]++
	}
	switch ev.Kind {
	case trace.KindLinkDown, trace.KindNodeDown:
		a.lastCrash, a.anyCrash = ev.At, true
	case trace.KindRCCFrame:
		a.Batch.Observe(float64(ev.Aux))
	case trace.KindSourceSwitch:
		if a.anyCrash {
			a.Recovery.Observe(time.Duration(ev.At.Sub(a.lastCrash)).Seconds())
		}
	}
}

// EmitBatch folds a batch of events, e.g. from a trace.ArenaSink flush
// callback: NewArenaSink(cap, agg.EmitBatch) aggregates full-fidelity
// traces through a fixed-size arena with no per-event allocation.
func (a *ProtocolAggregator) EmitBatch(evs []trace.Event) {
	for _, ev := range evs {
		a.Emit(ev)
	}
}

// Reset zeroes every counter and histogram so the aggregator can fold a
// fresh run, keeping all allocations.
func (a *ProtocolAggregator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.Batch.Reset()
	a.Recovery.Reset()
	a.lastCrash, a.anyCrash = 0, false
}

// Count returns the number of events of kind k.
func (a *ProtocolAggregator) Count(k trace.Kind) uint64 {
	if int(k) >= len(a.counts) {
		return 0
	}
	return a.counts[k]
}

// Retransmissions returns the RCC retransmission count.
func (a *ProtocolAggregator) Retransmissions() uint64 { return a.Count(trace.KindRCCRetransmit) }

// Claims returns the spare-bandwidth claim count.
func (a *ProtocolAggregator) Claims() uint64 { return a.Count(trace.KindClaim) }

// MuxFailures returns the multiplexing-failure count.
func (a *ProtocolAggregator) MuxFailures() uint64 { return a.Count(trace.KindMuxFailure) }

// Render prints the non-zero counters and histogram summaries.
func (a *ProtocolAggregator) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol events:\n")
	for k := trace.Kind(1); int(k) < trace.NumKinds; k++ {
		if a.counts[k] > 0 {
			fmt.Fprintf(&b, "  %-18s %d\n", k.String(), a.counts[k])
		}
	}
	if a.Batch.N > 0 {
		fmt.Fprintf(&b, "rcc batching: %d frames, mean %.2f controls/frame, p99 <= %.0f\n",
			a.Batch.N, a.Batch.Mean(), a.Batch.Quantile(0.99))
	}
	if a.Recovery.N > 0 {
		fmt.Fprintf(&b, "recovery delay: %d recoveries, mean %.3gs, p99 <= %.3gs\n",
			a.Recovery.N, a.Recovery.Mean(), a.Recovery.Quantile(0.99))
	}
	return b.String()
}
