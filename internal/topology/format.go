package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A plain-text topology format for loading custom networks (e.g. measured
// WANs) into the tools:
//
//	# comment
//	topology my-wan
//	nodes 10
//	link 0 1 155        # duplex: a pair of simplex links, 155 Mbps each
//	simplex 3 4 45      # one direction only
//
// Directives may appear in any order except that "nodes" must precede any
// link. Blank lines and #-comments are ignored.

// Parse reads a topology from r.
func Parse(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	name := "custom"
	var g *Graph
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...interface{}) (*Graph, error) {
			return nil, fmt.Errorf("topology: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "topology":
			if len(fields) != 2 {
				return fail("topology takes one name")
			}
			name = fields[1]
			if g != nil {
				return fail("topology must precede nodes")
			}
		case "nodes":
			if g != nil {
				return fail("duplicate nodes directive")
			}
			if len(fields) != 2 {
				return fail("nodes takes one count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return fail("bad node count %q", fields[1])
			}
			g = NewGraph(name, n)
		case "link", "simplex":
			if g == nil {
				return fail("%s before nodes", fields[0])
			}
			if len(fields) != 4 {
				return fail("%s takes: from to capacity", fields[0])
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			cap, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return fail("bad %s arguments", fields[0])
			}
			if _, err := g.AddLink(NodeID(a), NodeID(b), cap); err != nil {
				return fail("%v", err)
			}
			if fields[0] == "link" {
				if _, err := g.AddLink(NodeID(b), NodeID(a), cap); err != nil {
					return fail("%v", err)
				}
			}
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("topology: no nodes directive")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Format writes g in the Parse format: duplex pairs with equal capacity
// collapse into "link" lines, the rest become "simplex".
func Format(w io.Writer, g *Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "topology %s\n", g.Name())
	fmt.Fprintf(&b, "nodes %d\n", g.NumNodes())
	emitted := make(map[LinkID]bool)
	links := append([]Link(nil), g.Links()...)
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	for _, l := range links {
		if emitted[l.ID] {
			continue
		}
		emitted[l.ID] = true
		if rev := g.Reverse(l.ID); rev != NoLink && !emitted[rev] && g.Link(rev).Capacity == l.Capacity {
			emitted[rev] = true
			fmt.Fprintf(&b, "link %d %d %g\n", l.From, l.To, l.Capacity)
			continue
		}
		fmt.Fprintf(&b, "simplex %d %d %g\n", l.From, l.To, l.Capacity)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
