// Survivability: a miniature of the paper's Table 1 on a 6x6 torus — the
// fast-recovery ratio R_fast and spare-bandwidth cost across multiplexing
// degrees, under single-link, single-node, and double-node failures.
package main

import (
	"fmt"
	"log"

	"github.com/rtcl/bcp"
)

func main() {
	fmt.Println("R_fast on a 6x6 torus (one backup per connection, all node pairs):")
	fmt.Println()
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "", "mux=1", "mux=3", "mux=5", "mux=6")

	type row struct {
		name   string
		values []float64
	}
	rows := []row{{name: "spare bandwidth"}, {name: "1 link failure"},
		{name: "1 node failure"}, {name: "2 node failures"}}

	for _, alpha := range []int{1, 3, 5, 6} {
		g := bcp.NewTorus(6, 6, 200)
		mgr := bcp.NewManager(g, bcp.DefaultConfig())
		for s := 0; s < g.NumNodes(); s++ {
			for d := 0; d < g.NumNodes(); d++ {
				if s == d {
					continue
				}
				if _, err := mgr.Establish(bcp.NodeID(s), bcp.NodeID(d), bcp.DefaultSpec(), []int{alpha}); err != nil {
					log.Fatalf("mux=%d %d->%d: %v", alpha, s, d, err)
				}
			}
		}
		rows[0].values = append(rows[0].values, mgr.Network().SpareFraction())

		sweep := func(failures []bcp.Failure) float64 {
			fast, failed := 0, 0
			for _, f := range failures {
				stats := mgr.Trial(f, bcp.OrderByConn, nil)
				fast += stats.FastRecovered
				failed += stats.FailedPrimaries
			}
			if failed == 0 {
				return 1
			}
			return float64(fast) / float64(failed)
		}

		var links, nodes, pairs []bcp.Failure
		for _, l := range g.Links() {
			links = append(links, bcp.SingleLink(l.ID))
		}
		for v := 0; v < g.NumNodes(); v++ {
			nodes = append(nodes, bcp.SingleNode(bcp.NodeID(v)))
			for w := v + 1; w < g.NumNodes(); w++ {
				pairs = append(pairs, bcp.DoubleNode(bcp.NodeID(v), bcp.NodeID(w)))
			}
		}
		rows[1].values = append(rows[1].values, sweep(links))
		rows[2].values = append(rows[2].values, sweep(nodes))
		rows[3].values = append(rows[3].values, sweep(pairs))
	}

	for _, r := range rows {
		fmt.Printf("%-18s", r.name)
		for _, v := range r.values {
			fmt.Printf(" %7.2f%%", v*100)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("mux=1 guarantees recovery from every single failure; mux=3 from every")
	fmt.Println("single link failure — at a fraction of the dedicated-backup cost.")
}
