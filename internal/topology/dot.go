package topology

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotOptions customizes WriteDot output.
type DotOptions struct {
	// HighlightPaths draws each path in a distinct color (cycled from a
	// small palette) with penwidth 2.
	HighlightPaths []Path
	// FailedLinks and FailedNodes render dashed/red.
	FailedLinks []LinkID
	FailedNodes []NodeID
	// LinkLabels, when non-nil, supplies an edge label per link (e.g.
	// "dedicated/spare/capacity" from the resource plane).
	LinkLabels func(LinkID) string
}

var dotPalette = []string{"blue", "forestgreen", "darkorange", "purple", "crimson", "teal"}

// WriteDot renders the graph in Graphviz DOT format. Duplex link pairs
// collapse into one undirected edge unless their attributes differ; simplex
// links without a reverse render as directed edges.
func (g *Graph) WriteDot(w io.Writer, opts DotOptions) error {
	failedLink := make(map[LinkID]bool, len(opts.FailedLinks))
	for _, l := range opts.FailedLinks {
		failedLink[l] = true
	}
	failedNode := make(map[NodeID]bool, len(opts.FailedNodes))
	for _, n := range opts.FailedNodes {
		failedNode[n] = true
	}
	linkColor := make(map[LinkID]string)
	nodeOnPath := make(map[NodeID]bool)
	for i, p := range opts.HighlightPaths {
		color := dotPalette[i%len(dotPalette)]
		for _, l := range p.Links() {
			linkColor[l] = color
		}
		for _, n := range p.Nodes() {
			nodeOnPath[n] = true
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.Name())
	b.WriteString("  layout=neato;\n  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.NumNodes(); v++ {
		attrs := []string{}
		if failedNode[NodeID(v)] {
			attrs = append(attrs, `color=red`, `style=dashed`)
		} else if nodeOnPath[NodeID(v)] {
			attrs = append(attrs, `style=bold`)
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  %d [%s];\n", v, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  %d;\n", v)
		}
	}
	// Collapse duplex pairs: emit each undirected edge once (lower id side).
	emitted := make(map[LinkID]bool)
	links := append([]Link(nil), g.Links()...)
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	for _, l := range links {
		if emitted[l.ID] {
			continue
		}
		rev := g.Reverse(l.ID)
		directed := rev == NoLink
		if !directed {
			emitted[rev] = true
		}
		emitted[l.ID] = true
		var attrs []string
		if failedLink[l.ID] || (rev != NoLink && failedLink[rev]) {
			attrs = append(attrs, "color=red", "style=dashed")
		} else if c, ok := linkColor[l.ID]; ok {
			attrs = append(attrs, fmt.Sprintf("color=%s", c), "penwidth=2")
		} else if rev != NoLink {
			if c, ok := linkColor[rev]; ok {
				attrs = append(attrs, fmt.Sprintf("color=%s", c), "penwidth=2")
			}
		}
		if opts.LinkLabels != nil {
			if lbl := opts.LinkLabels(l.ID); lbl != "" {
				attrs = append(attrs, fmt.Sprintf("label=%q", lbl))
			}
		}
		arrow := " -- "
		if directed {
			arrow = " -> "
			attrs = append(attrs, "dir=forward")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  %d%s%d [%s];\n", l.From, arrow, l.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  %d%s%d;\n", l.From, arrow, l.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
