package routing

import (
	"github.com/rtcl/bcp/internal/topology"
)

// Router is a reusable path-finding engine bound to one graph. It owns every
// piece of scratch state the searches need — generation-stamped label
// arrays, the BFS queue, the Dijkstra heap, the unit-capacity flow network —
// so repeated searches allocate nothing once the arenas are warm. It also
// caches one unconstrained shortest-path tree per source node, so batch
// workloads that query Distance for every pair (all-pairs establishment) pay
// N tree builds instead of N² breadth-first searches.
//
// Arenas and the SPT cache are stamped with the graph's Version (its
// mutation epoch): the first search after an AddLink resizes the arenas and
// drops every cached tree. Graphs are immutable once their generator
// returns, so in steady state the version check is a single compare.
//
// A Router is not safe for concurrent use. Parallel drivers build one
// Router per worker (each worker's Manager owns one), mirroring the
// one-Manager-per-worker rule of the sweep pool.
type Router struct {
	g    *topology.Graph
	gver uint64 // graph version the arenas are sized for
	init bool

	// BFS arena. dist[n] is valid iff nodeGen[n] == gen.
	gen     uint32
	nodeGen []uint32
	dist    []int32
	queue   []topology.NodeID

	// mark is a second stamp space for simple-path validity checks, so they
	// cannot disturb live search labels.
	mark     uint32
	nodeMark []uint32

	cand    []topology.LinkID // backtrack tie candidates
	links   []topology.LinkID // result buffer for the *Links searches
	nodeSeq []topology.NodeID // node-sequence buffer for path materialization

	// Dijkstra arena. Labels are valid iff dGen[n] == dgen.
	dgen  uint32
	dGen  []uint32
	dDist []float64
	dHops []int32
	dVia  []topology.LinkID
	heap  []pqItem

	// spt[src] is the unconstrained hop distance from src to every node
	// (-1 unreachable), built lazily, dropped on a version change.
	spt [][]int32

	// Pooled flow network for the disjoint-path max-flow.
	fnEdges  [][]flowEdge
	fnPreds  []flowPred
	fnQueue  []int32
	usedOut  [][]int32
	usedHead []int32
	djBuf    [][]topology.LinkID
	djOut    [][]topology.LinkID

	seqExcl *Exclusion // SequentialDisjointPaths' reusable exclusion
}

// pqItem is a priority-queue entry for Dijkstra's algorithm.
type pqItem struct {
	node topology.NodeID
	dist float64
}

// flowPred records the BFS predecessor arc during flow augmentation.
type flowPred struct {
	node, idx int32
}

// NewRouter creates a Router for g. The arenas are sized on first use.
func NewRouter(g *topology.Graph) *Router {
	return &Router{g: g}
}

// Graph returns the graph this router searches.
func (r *Router) Graph() *topology.Graph { return r.g }

// sync sizes the arenas for the graph's current version. Steady state is a
// single uint64 compare; after a mutation it regrows what changed and drops
// the per-source SPT cache (the epoch invalidation rule).
func (r *Router) sync() {
	v := r.g.Version()
	if r.init && v == r.gver {
		return
	}
	n := r.g.NumNodes()
	if len(r.nodeGen) < n {
		r.nodeGen = make([]uint32, n)
		r.dist = make([]int32, n)
		r.nodeMark = make([]uint32, n)
		r.dGen = make([]uint32, n)
		r.dDist = make([]float64, n)
		r.dHops = make([]int32, n)
		r.dVia = make([]topology.LinkID, n)
		r.gen, r.mark, r.dgen = 0, 0, 0
	}
	if len(r.fnEdges) < 2*n {
		r.fnEdges = make([][]flowEdge, 2*n)
		r.fnPreds = make([]flowPred, 2*n)
		r.usedOut = make([][]int32, 2*n)
		r.usedHead = make([]int32, 2*n)
	}
	// Drop the SPT cache: the link set changed under it.
	if len(r.spt) != n {
		r.spt = make([][]int32, n)
	} else {
		for i := range r.spt {
			r.spt[i] = nil
		}
	}
	r.gver = v
	r.init = true
}

// nextGen advances the BFS label stamp, clearing the arena on wrap.
func (r *Router) nextGen() uint32 {
	r.gen++
	if r.gen == 0 {
		for i := range r.nodeGen {
			r.nodeGen[i] = 0
		}
		r.gen = 1
	}
	return r.gen
}

// nextDGen advances the Dijkstra label stamp, clearing the arena on wrap.
func (r *Router) nextDGen() uint32 {
	r.dgen++
	if r.dgen == 0 {
		for i := range r.dGen {
			r.dGen[i] = 0
		}
		r.dgen = 1
	}
	return r.dgen
}

// nextMark advances the validity-check stamp, clearing the arena on wrap.
func (r *Router) nextMark() uint32 {
	r.mark++
	if r.mark == 0 {
		for i := range r.nodeMark {
			r.nodeMark[i] = 0
		}
		r.mark = 1
	}
	return r.mark
}

// Distance returns the unconstrained hop distance from src to dst, or -1 if
// unreachable, answered from the per-source shortest-path tree (built on
// first query for src, O(1) afterwards).
func (r *Router) Distance(src, dst topology.NodeID) int {
	r.sync()
	t := r.spt[src]
	if t == nil {
		t = r.buildSPT(src)
	}
	return int(t[dst])
}

// buildSPT runs one full unconstrained BFS from src and caches the distance
// vector. The vector allocation is the cache entry itself (amortized across
// every later Distance query), not per-call scratch.
func (r *Router) buildSPT(src topology.NodeID) []int32 {
	g := r.g
	t := make([]int32, g.NumNodes())
	for i := range t {
		t[i] = -1
	}
	t[src] = 0
	q := r.queue[:0]
	q = append(q, src)
	for head := 0; head < len(q); head++ {
		n := q[head]
		for _, l := range g.Out(n) {
			to := g.Link(l).To
			if t[to] >= 0 {
				continue
			}
			t[to] = t[n] + 1
			q = append(q, to)
		}
	}
	r.queue = q
	r.spt[src] = t
	return t
}

// bfsForward labels reachable nodes with their constrained hop distance
// from src, stopping once target is dequeued (every node at a strictly
// smaller distance is fully labeled by then). Returns the stamp identifying
// this search's labels.
func (r *Router) bfsForward(src topology.NodeID, c Constraint, target topology.NodeID) uint32 {
	g := r.g
	gen := r.nextGen()
	r.dist[src] = 0
	r.nodeGen[src] = gen
	q := r.queue[:0]
	q = append(q, src)
	for head := 0; head < len(q); head++ {
		n := q[head]
		if n == target {
			break
		}
		if c.MaxHops > 0 && int(r.dist[n]) >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(n) {
			if !c.linkOK(l) {
				continue
			}
			to := g.Link(l).To
			if r.nodeGen[to] == gen {
				continue
			}
			if to != target && !c.nodeOK(to) {
				continue
			}
			r.dist[to] = r.dist[n] + 1
			r.nodeGen[to] = gen
			q = append(q, to)
		}
	}
	r.queue = q
	return gen
}

// ShortestDistance returns the hop count of a shortest src→dst path under c,
// or -1 if none exists. It is ShortestPath without the backtrack and path
// materialization — the right call when only the length matters (the
// backup-slack QoS bound).
func (r *Router) ShortestDistance(src, dst topology.NodeID, c Constraint) int {
	if src == dst {
		return -1
	}
	r.sync()
	gen := r.bfsForward(src, c, dst)
	if r.nodeGen[dst] != gen {
		return -1
	}
	return int(r.dist[dst])
}

// ShortestLinks returns the link sequence of a shortest src→dst path under
// c, and whether one exists. The slice is the router's scratch buffer: it is
// valid until the next search on r, and must be copied to outlive it.
// Tie-breaking is identical to ShortestPath (lowest link id, or c.TieBreak).
func (r *Router) ShortestLinks(src, dst topology.NodeID, c Constraint) ([]topology.LinkID, bool) {
	if src == dst {
		return nil, false
	}
	r.sync()
	gen := r.bfsForward(src, c, dst)
	if r.nodeGen[dst] != gen {
		return nil, false
	}
	g := r.g
	n := int(r.dist[dst])
	if cap(r.links) < n {
		r.links = make([]topology.LinkID, n)
	}
	links := r.links[:n]
	// Backtrack from dst, at each step choosing an in-link whose tail is one
	// hop closer to src. Randomized tie-breaking when c.TieBreak is set.
	cur := dst
	for d := n; d > 0; d-- {
		var choice topology.LinkID
		if c.TieBreak == nil {
			// Deterministic: lowest link id wins.
			choice = topology.NoLink
			for _, l := range g.In(cur) {
				if !c.linkOK(l) {
					continue
				}
				from := g.Link(l).From
				if r.nodeGen[from] != gen || int(r.dist[from]) != d-1 {
					continue
				}
				if from != src && !c.nodeOK(from) {
					continue
				}
				if choice == topology.NoLink || l < choice {
					choice = l
				}
			}
		} else {
			cands := r.cand[:0]
			for _, l := range g.In(cur) {
				if !c.linkOK(l) {
					continue
				}
				from := g.Link(l).From
				if r.nodeGen[from] != gen || int(r.dist[from]) != d-1 {
					continue
				}
				if from != src && !c.nodeOK(from) {
					continue
				}
				cands = append(cands, l)
			}
			r.cand = cands
			choice = cands[0]
			if len(cands) > 1 {
				choice = cands[c.TieBreak.Intn(len(cands))]
			}
		}
		links[d-1] = choice
		cur = g.Link(choice).From
	}
	r.links = links
	return links, true
}

// ShortestPath returns a shortest path from src to dst satisfying c, and
// whether one exists.
func (r *Router) ShortestPath(src, dst topology.NodeID, c Constraint) (topology.Path, bool) {
	links, ok := r.ShortestLinks(src, dst, c)
	if !ok {
		return topology.Path{}, false
	}
	// BFS trees cannot produce discontiguous or cyclic paths, so the
	// validating constructor would only re-derive what the backtrack already
	// guarantees.
	return topology.NewPathUnchecked(r.g, links, r.nodesFor(links)), true
}

// nodesFor expands a contiguous link sequence into its node sequence, in the
// router's reusable buffer (valid until the next nodesFor call).
func (r *Router) nodesFor(links []topology.LinkID) []topology.NodeID {
	if cap(r.nodeSeq) < len(links)+1 {
		r.nodeSeq = make([]topology.NodeID, len(links)+1)
	}
	nodes := r.nodeSeq[:len(links)+1]
	nodes[0] = r.g.Link(links[0]).From
	for i, l := range links {
		nodes[i+1] = r.g.Link(l).To
	}
	r.nodeSeq = nodes
	return nodes
}

// heapPush and heapPop mirror container/heap's sift rules exactly (binary
// arity, identical comparison and swap sequence), so the pop order among
// equal-distance entries — and therefore tie-breaking among equal-cost
// paths — is byte-identical to the boxed implementation they replace. The
// win is structural: no interface boxing, no per-push allocation, labels in
// flat arrays instead of per-call slices.
func (r *Router) heapPush(it pqItem) {
	r.heap = append(r.heap, it)
	j := len(r.heap) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(r.heap[j].dist < r.heap[i].dist) {
			break
		}
		r.heap[i], r.heap[j] = r.heap[j], r.heap[i]
		j = i
	}
}

func (r *Router) heapPop() pqItem {
	h := r.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	r.heap = h[:n]
	return it
}

// MinCostLinks returns the link sequence of a minimum-cost src→dst path
// under c with link costs given by w, and whether one exists. Hop limits in
// c are honored as a hard constraint on the number of links. The slice is
// the router's scratch buffer, valid until the next search on r.
func (r *Router) MinCostLinks(src, dst topology.NodeID, c Constraint, w WeightFunc) ([]topology.LinkID, bool) {
	if src == dst || w == nil {
		return nil, false
	}
	r.sync()
	g := r.g
	gen := r.nextDGen()
	r.dGen[src] = gen
	r.dDist[src] = 0
	r.dHops[src] = 0
	r.dVia[src] = topology.NoLink
	r.heap = r.heap[:0]
	r.heapPush(pqItem{node: src, dist: 0})
	for len(r.heap) > 0 {
		it := r.heapPop()
		if it.dist > r.dDist[it.node] {
			continue // stale entry
		}
		if it.node == dst {
			break
		}
		if c.MaxHops > 0 && int(r.dHops[it.node]) >= c.MaxHops {
			continue
		}
		base, hops := r.dDist[it.node], r.dHops[it.node]
		for _, l := range g.Out(it.node) {
			if !c.linkOK(l) {
				continue
			}
			lk := g.Link(l)
			if lk.To != dst && !c.nodeOK(lk.To) {
				continue
			}
			cost := w(l)
			if cost <= 0 {
				cost = 1e-9 // guard against zero/negative weights
			}
			nd := base + cost
			if r.dGen[lk.To] != gen || nd < r.dDist[lk.To] {
				r.dGen[lk.To] = gen
				r.dDist[lk.To] = nd
				r.dHops[lk.To] = hops + 1
				r.dVia[lk.To] = l
				r.heapPush(pqItem{node: lk.To, dist: nd})
			}
		}
	}
	if r.dGen[dst] != gen {
		return nil, false
	}
	// Walk the via chain to count hops (a label overwrite can leave dHops
	// inconsistent with the final chain), then fill the buffer backwards.
	// The mark stamps reject any node revisit — the arena equivalent of the
	// NewPath validation the boxed implementation leaned on.
	mark := r.nextMark()
	n := 0
	for cur := dst; cur != src; {
		if r.nodeMark[cur] == mark {
			return nil, false // braided under MaxHops; treat as no path
		}
		r.nodeMark[cur] = mark
		cur = g.Link(r.dVia[cur]).From
		n++
		if n > g.NumNodes() {
			return nil, false
		}
	}
	if c.MaxHops > 0 && n > c.MaxHops {
		return nil, false
	}
	if cap(r.links) < n {
		r.links = make([]topology.LinkID, n)
	}
	links := r.links[:n]
	for cur := dst; cur != src; {
		l := r.dVia[cur]
		n--
		links[n] = l
		cur = g.Link(l).From
	}
	r.links = links
	return links, true
}

// MinCostPath returns a minimum-cost path from src to dst under c with link
// costs given by w, and whether one exists.
func (r *Router) MinCostPath(src, dst topology.NodeID, c Constraint, w WeightFunc) (topology.Path, bool) {
	links, ok := r.MinCostLinks(src, dst, c, w)
	if !ok {
		return topology.Path{}, false
	}
	// MinCostLinks' mark-stamp walk already rejected revisits, and the via
	// chain is contiguous by construction.
	return topology.NewPathUnchecked(r.g, links, r.nodesFor(links)), true
}

// SequentialDisjointPaths implements the paper's routing discipline on the
// router's arenas; see the package-level function for semantics.
func (r *Router) SequentialDisjointPaths(src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	var paths []topology.Path
	if r.seqExcl == nil {
		r.seqExcl = NewExclusion()
	}
	excl := r.seqExcl.Reset()
	for i := 0; i < count; i++ {
		cc := excl.Constrain(c)
		p, ok := r.ShortestPath(src, dst, cc)
		if !ok {
			break
		}
		paths = append(paths, p)
		excl.AddPath(p)
	}
	return paths
}
