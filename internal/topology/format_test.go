package topology

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	src := `
# a small WAN
topology test-wan
nodes 4
link 0 1 155
link 1 2 155
simplex 2 3 45   # one-way trunk
`
	g, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "test-wan" || g.NumNodes() != 4 {
		t.Fatalf("name=%q nodes=%d", g.Name(), g.NumNodes())
	}
	if g.NumLinks() != 5 { // 2 duplex pairs + 1 simplex
		t.Fatalf("links = %d, want 5", g.NumLinks())
	}
	if g.LinkBetween(1, 0) == NoLink {
		t.Fatal("duplex pair missing reverse")
	}
	if g.LinkBetween(3, 2) != NoLink {
		t.Fatal("simplex got a reverse")
	}
	if got := g.Link(g.LinkBetween(2, 3)).Capacity; got != 45 {
		t.Fatalf("capacity = %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no nodes":          "link 0 1 10\n",
		"empty":             "",
		"bad count":         "nodes zero\n",
		"negative count":    "nodes -3\n",
		"dup nodes":         "nodes 2\nnodes 3\n",
		"late topology":     "nodes 2\ntopology x\n",
		"bad link args":     "nodes 2\nlink 0 1\n",
		"bad capacity":      "nodes 2\nlink 0 1 fast\n",
		"out of range":      "nodes 2\nlink 0 5 10\n",
		"self loop":         "nodes 2\nlink 1 1 10\n",
		"unknown directive": "nodes 2\nedge 0 1 10\n",
		"duplicate link":    "nodes 2\nlink 0 1 10\nsimplex 0 1 10\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		NewTorus(4, 4, 200),
		NewMesh(3, 5, 300),
		NewRandom(20, 3, 55, 9),
	} {
		var b strings.Builder
		if err := Format(&b, g); err != nil {
			t.Fatal(err)
		}
		g2, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: %v\n%s", g.Name(), err, b.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
			t.Fatalf("%s: %d/%d nodes, %d/%d links",
				g.Name(), g2.NumNodes(), g.NumNodes(), g2.NumLinks(), g.NumLinks())
		}
		for _, l := range g.Links() {
			l2 := g2.LinkBetween(l.From, l.To)
			if l2 == NoLink || g2.Link(l2).Capacity != l.Capacity {
				t.Fatalf("%s: link %d->%d lost or changed", g.Name(), l.From, l.To)
			}
		}
	}
}

func TestFormatMixedCapacityPairs(t *testing.T) {
	g := NewGraph("asym", 2)
	if _, err := g.AddLink(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(1, 0, 50); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Format(&b, g); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "simplex 0 1 100") || !strings.Contains(out, "simplex 1 0 50") {
		t.Fatalf("asymmetric pair not preserved:\n%s", out)
	}
}
