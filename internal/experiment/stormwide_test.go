package experiment

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/sim"
)

// TestStormWideTorus runs mass-failure cycles on the loaded torus with a
// streaming conformance checker attached, then drains and audits quiescence:
// after every victim has been crashed and repaired once, the network must be
// back to a clean steady state with no leaked claims, timers, or soft state.
func TestStormWideTorus(t *testing.T) {
	chk := conformance.New(conformance.Params{
		// No Γ bound: a node failure floods shared links with hundreds of
		// contending reports and activations, so the closed-form
		// uncontended bound does not apply. In-flight deliveries get one
		// propagation delay plus residual transmission.
		PropSlack: sim.Duration(5 * time.Millisecond),
	})
	s, err := NewStormWide(StormWideConfig{Seed: 1, Sink: chk})
	if err != nil {
		t.Fatal(err)
	}
	if s.Conns() < 1000 {
		t.Fatalf("torus loaded only %d connections; the storm would be thin", s.Conns())
	}
	if err := s.Run(len(s.Victims)); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Latencies()); got == 0 {
		t.Fatal("no source-switch latencies sampled across a full victim rotation")
	}
	s.Drain()
	for _, v := range chk.Finish() {
		t.Errorf("conformance: %v", v)
	}
	if q := s.Net.CheckQuiescence(); len(q) != 0 {
		t.Errorf("quiescence after drain: %v", q)
	}
}

// TestStormWideMesh runs one cycle on the 256-node sampled mesh — the
// scale variant; the torus test covers the full rotation and audit.
func TestStormWideMesh(t *testing.T) {
	s, err := NewStormWide(StormWideConfig{Mesh: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if q := s.Net.CheckQuiescence(); len(q) != 0 {
		t.Errorf("quiescence after drain: %v", q)
	}
}

// TestStormWidePerMessageParity pins the A/B claim behind the benchmark: the
// per-message baseline and the batched engine run the same storm to the same
// protocol counters, so a ns/op or allocs/op gap between the two kernels is
// pure dispatch mechanics, not divergent protocol behaviour.
func TestStormWidePerMessageParity(t *testing.T) {
	run := func(perMsg bool) *StormWide {
		s, err := NewStormWide(StormWideConfig{Seed: 7, PerMessageDispatch: perMsg})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(2); err != nil {
			t.Fatal(err)
		}
		return s
	}
	bat, seq := run(false), run(true)
	if bat.Stats() != seq.Stats() {
		t.Fatalf("storm counters diverged:\n  batched:     %+v\n  per-message: %+v", bat.Stats(), seq.Stats())
	}
	bl, sl := bat.Latencies(), seq.Latencies()
	if len(bl) != len(sl) {
		t.Fatalf("latency sample counts diverged: %d vs %d", len(bl), len(sl))
	}
	for i := range bl {
		if bl[i] != sl[i] {
			t.Fatalf("latency sample %d diverged: %v vs %v", i, bl[i], sl[i])
		}
	}
}
