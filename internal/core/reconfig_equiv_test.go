package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Coalesced reconfiguration (reconfig.go) claims exact equivalence with the
// eager always-rebuild path: skipping recomputeLinkMux on links whose pair
// inputs are unchanged must never alter an admission decision, a spare
// reservation, or a requirement. This test drives twin managers — one eager,
// one coalesced — through randomized protocol histories (establishment with
// mixed degrees, spare claims with preemption, activations/promotions,
// teardowns, rejoin demotions, replenishment) and demands equal state after
// every operation.
//
// One representational freedom is allowed: Π sets are compared as sets, not
// sequences. A full rebuild re-derives each entry's Π members in canonical
// pair order, while the incremental path preserves the order that swap-
// deletes left behind; no decision reads Π order (requirements are scalars
// maintained alongside), so content equality is the contract. Everything
// else — spare, claimed, claims, requirements, entry order, connection
// structure, error outcomes — must match exactly, which the integer-valued
// bandwidths of defaultBatchSpec make a bit-identity check, not a tolerance
// check.

// requireEquivalentMux is requireSameManagers' mux leg with the Π order
// freedom above (me eager, mc coalesced).
func requireEquivalentMux(t *testing.T, ctx string, me, mc *Manager) {
	t.Helper()
	g := me.Graph()
	for l := 0; l < g.NumLinks(); l++ {
		ll := topology.LinkID(l)
		if se, sc := me.plan.net.Spare(ll), mc.plan.net.Spare(ll); se != sc {
			t.Fatalf("%s: link %d spare %g vs %g", ctx, l, se, sc)
		}
		if de, dc := me.plan.net.Dedicated(ll), mc.plan.net.Dedicated(ll); de != dc {
			t.Fatalf("%s: link %d dedicated %g vs %g", ctx, l, de, dc)
		}
		lme, lmc := &me.plan.mux[l], &mc.plan.mux[l]
		if lme.spare != lmc.spare || lme.claimed != lmc.claimed {
			t.Fatalf("%s: link %d spare/claimed (%g,%g) vs (%g,%g)",
				ctx, l, lme.spare, lme.claimed, lmc.spare, lmc.claimed)
		}
		if re, rc := lme.requiredSpareRO(), lmc.requiredSpareRO(); re != rc {
			t.Fatalf("%s: link %d required spare %g vs %g", ctx, l, re, rc)
		}
		if len(lme.claims) != len(lmc.claims) {
			t.Fatalf("%s: link %d claim count %d vs %d", ctx, l, len(lme.claims), len(lmc.claims))
		}
		for ch, bwE := range lme.claims {
			if bwC, ok := lmc.claims[ch]; !ok || bwE != bwC {
				t.Fatalf("%s: link %d claim %d: %g vs %g (present=%v)", ctx, l, ch, bwE, bwC, ok)
			}
		}
		if len(lme.entries) != len(lmc.entries) {
			t.Fatalf("%s: link %d entry count %d vs %d", ctx, l, len(lme.entries), len(lmc.entries))
		}
		for i := range lme.entries {
			ee, ec := &lme.entries[i], &lmc.entries[i]
			if ee.ch.ID != ec.ch.ID || ee.alpha != ec.alpha {
				t.Fatalf("%s: link %d entry %d: chan %d/α%d vs chan %d/α%d",
					ctx, l, i, ee.ch.ID, ee.alpha, ec.ch.ID, ec.alpha)
			}
			if ee.req != ec.req {
				t.Fatalf("%s: link %d entry %d (chan %d) req %g vs %g", ctx, l, i, ee.ch.ID, ee.req, ec.req)
			}
			pe := append([]rtchan.ChannelID(nil), ee.pi...)
			pc := append([]rtchan.ChannelID(nil), ec.pi...)
			sort.Slice(pe, func(a, b int) bool { return pe[a] < pe[b] })
			sort.Slice(pc, func(a, b int) bool { return pc[a] < pc[b] })
			if len(pe) != len(pc) {
				t.Fatalf("%s: link %d entry %d (chan %d) Π size %d vs %d", ctx, l, i, ee.ch.ID, len(pe), len(pc))
			}
			for j := range pe {
				if pe[j] != pc[j] {
					t.Fatalf("%s: link %d entry %d (chan %d) Π member %d vs %d",
						ctx, l, i, ee.ch.ID, pe[j], pc[j])
				}
			}
		}
	}
}

func requireEquivalentConns(t *testing.T, ctx string, ids []rtchan.ConnID, me, mc *Manager) {
	t.Helper()
	for _, id := range ids {
		ce, cc := me.Connection(id), mc.Connection(id)
		if (ce == nil) != (cc == nil) {
			t.Fatalf("%s: conn %d presence %v vs %v", ctx, id, ce != nil, cc != nil)
		}
		if ce == nil {
			continue
		}
		requireSameChannel(t, ctx, ce.Primary, cc.Primary)
		if len(ce.Backups) != len(cc.Backups) {
			t.Fatalf("%s: conn %d backups %d vs %d", ctx, id, len(ce.Backups), len(cc.Backups))
		}
		for i := range ce.Backups {
			requireSameChannel(t, ctx, ce.Backups[i], cc.Backups[i])
			if ce.Degrees[i] != cc.Degrees[i] {
				t.Fatalf("%s: conn %d degree[%d] %d vs %d", ctx, id, i, ce.Degrees[i], cc.Degrees[i])
			}
		}
	}
}

func sameErr(t *testing.T, ctx string, errE, errC error) {
	t.Helper()
	if (errE == nil) != (errC == nil) {
		t.Fatalf("%s: outcome diverged: %v vs %v", ctx, errE, errC)
	}
	if errE != nil && errE.Error() != errC.Error() {
		t.Fatalf("%s: error text diverged: %q vs %q", ctx, errE, errC)
	}
}

func TestCoalescedReconfigEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := batchTopology(rng, seed)
			reqs := batchRequests(rng, g, 40, defaultBatchSpec)

			me := NewManager(g, DefaultConfig()) // eager reference
			mc := NewManager(g, DefaultConfig())
			mc.SetCoalescedReconfig(true)

			var ids []rtchan.ConnID
			for i := range reqs {
				r := &reqs[i]
				ce, errE := me.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
				cc, errC := mc.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
				sameErr(t, fmt.Sprintf("establish %d", i), errE, errC)
				if errE != nil {
					continue
				}
				if ce.ID != cc.ID {
					t.Fatalf("establish %d: conn id %d vs %d", i, ce.ID, cc.ID)
				}
				ids = append(ids, ce.ID)
			}
			if len(ids) == 0 {
				t.Skip("tight topology rejected every request")
			}

			// check compares the two managers' full state. The invariant
			// audit is itself part of the equivalence contract: both engines
			// must return the SAME audit result. It is not required to be
			// nil mid-history — batchTopology is deliberately tight, and
			// reconfigureLinks caps a pool at link headroom rather than
			// failing recovery, so a successful activation can leave spare
			// below requirement on a capacity-exhausted link. That state is
			// reachable by design; what coalescing must preserve is that
			// both engines reach bit-identically the same one.
			check := func(ctx string) {
				t.Helper()
				requireEquivalentConns(t, ctx, ids, me, mc)
				requireEquivalentMux(t, ctx, me, mc)
				sameErr(t, ctx+" invariants", me.CheckMuxInvariants(), mc.CheckMuxInvariants())
			}
			check("after establishment")
			if err := me.CheckMuxInvariants(); err != nil {
				t.Fatalf("invariants after establishment: %v", err)
			}

			noAvoid := func(topology.LinkID) bool { return false }
			for op := 0; op < 250; op++ {
				id := ids[rng.Intn(len(ids))]
				ce, cc := me.Connection(id), mc.Connection(id)
				if (ce == nil) != (cc == nil) {
					t.Fatalf("op %d: conn %d presence diverged", op, id)
				}
				if ce == nil {
					continue
				}
				ctx := fmt.Sprintf("op %d conn %d", op, id)
				switch rng.Intn(5) {
				case 0, 1: // fail over: lose the primary, claim a backup's links, activate or abandon
					if len(ce.Backups) == 0 {
						continue
					}
					// Activation is only a legal history after the primary is
					// gone (its dedicated bandwidth funds the promotion's pool
					// shrink; with a live primary the link can run out of
					// capacity and the spare invariant fails on both engines).
					if ce.Primary != nil {
						sameErr(t, ctx+" drop primary",
							me.TeardownChannel(id, ce.Primary.ID),
							mc.TeardownChannel(id, cc.Primary.ID))
					}
					bi := rng.Intn(len(ce.Backups))
					be, bc := ce.Backups[bi], cc.Backups[bi]
					bw := be.Bandwidth()
					claimed := true
					links := be.Path.Links()
					var got []topology.LinkID
					for _, l := range links {
						okE := me.ClaimSpareFor(l, be.ID, bw)
						okC := mc.ClaimSpareFor(l, bc.ID, bw)
						if okE != okC {
							t.Fatalf("%s: claim on link %d diverged: %v vs %v", ctx, l, okE, okC)
						}
						if !okE {
							alpha := me.DegreeOf(be.ID)
							ve, okPE := me.PreemptClaim(l, be.ID, alpha, bw)
							vc, okPC := mc.PreemptClaim(l, bc.ID, alpha, bw)
							if okPE != okPC || ve != vc {
								t.Fatalf("%s: preempt on link %d diverged: (%d,%v) vs (%d,%v)",
									ctx, l, ve, okPE, vc, okPC)
							}
							if !okPE {
								claimed = false
								break
							}
						}
						got = append(got, l)
					}
					if claimed && rng.Intn(4) != 0 {
						sameErr(t, ctx+" activate", me.ActivateClaimed(id, be), mc.ActivateClaimed(id, bc))
					} else {
						for _, l := range got {
							me.ReleaseClaimFor(l, be.ID)
							mc.ReleaseClaimFor(l, bc.ID)
						}
					}
				case 2: // tear down a channel (primary half the time)
					var ch rtchan.ChannelID
					if ce.Primary != nil && (len(ce.Backups) == 0 || rng.Intn(2) == 0) {
						ch = ce.Primary.ID
					} else if len(ce.Backups) > 0 {
						ch = ce.Backups[rng.Intn(len(ce.Backups))].ID
					} else {
						continue
					}
					sameErr(t, ctx+" teardown", me.TeardownChannel(id, ch), mc.TeardownChannel(id, ch))
				case 3: // demote the primary back to a backup (rejoin, Figure 6)
					if ce.Primary == nil {
						continue
					}
					alpha := 1 + rng.Intn(3)
					sameErr(t, ctx+" restore",
						me.RestoreAsBackup(id, ce.Primary.ID, alpha),
						mc.RestoreAsBackup(id, cc.Primary.ID, alpha))
				default: // replenish the backup population
					target := 1 + rng.Intn(2)
					alpha := 1 + rng.Intn(3)
					ae, errE := me.ReplenishBackups(id, target, alpha, noAvoid)
					ac, errC := mc.ReplenishBackups(id, target, alpha, noAvoid)
					sameErr(t, ctx+" replenish", errE, errC)
					if ae != ac {
						t.Fatalf("%s: replenish added %d vs %d", ctx, ae, ac)
					}
				}
				check(ctx)
			}
		})
	}
}
