package bcpd

import (
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
	"github.com/rtcl/bcp/internal/wire"
)

// wireControl aliases the control-message type for brevity.
type wireControl = wire.Control

// chanState is the per-node channel state of Figure 4.
type chanState uint8

const (
	stateN chanState = iota // non-existent
	stateP                  // healthy primary
	stateB                  // healthy backup
	stateU                  // unhealthy
)

func (s chanState) String() string {
	switch s {
	case stateN:
		return "N"
	case stateP:
		return "P"
	case stateB:
		return "B"
	default:
		return "U"
	}
}

// daemon is the BCP daemon at one node.
type daemon struct {
	net  *Network
	id   topology.NodeID
	dead bool

	states map[rtchan.ChannelID]chanState
	// rejoinTimers holds each armed channel's live rejoin timer: a private
	// sim.Timer in the per-message engine, or a slot in a shared pooled
	// rejoinBatch under batched dispatch (round.go) — one heap entry and one
	// closure for every channel armed in a round, instead of one each per
	// channel.
	rejoinTimers map[rtchan.ChannelID]rejoinRef
	// rejoinStaged maps a channel to its staged arm's index in the current
	// dispatch round (round.go), so a re-arm in the same round dedups and a
	// stop cancels the staged arm before it ever becomes a timer.
	rejoinStaged map[rtchan.ChannelID]int
	// probeFns caches the rejoin-probe callbacks per channel: the closures
	// capture only stable identity (id, conn, path copy), so one build
	// amortizes across fail/repair cycles. Dropped with the rest of the soft
	// state when the channel returns to N. Unused (fresh closures per arm)
	// under PerMessageDispatch.
	probeFns map[rtchan.ChannelID]func()
	// paths is the daemon's own copy of each installed channel's route —
	// the forwarding soft state a real daemon keeps. It outlives the
	// resource plane's registry entry so teardown closures can still be
	// forwarded hop-by-hop after the channel has been reclaimed, and is
	// deleted when the channel returns to state N here.
	paths map[rtchan.ChannelID]topology.Path
	// knownFailedBackups lets an end node skip backups it has received
	// failure reports for when selecting a serial to activate.
	knownFailedBackups map[rtchan.ChannelID]bool
}

func newDaemon(n *Network, id topology.NodeID) *daemon {
	return &daemon{
		net:                n,
		id:                 id,
		states:             make(map[rtchan.ChannelID]chanState),
		rejoinTimers:       make(map[rtchan.ChannelID]rejoinRef),
		rejoinStaged:       make(map[rtchan.ChannelID]int),
		probeFns:           make(map[rtchan.ChannelID]func()),
		paths:              make(map[rtchan.ChannelID]topology.Path),
		knownFailedBackups: make(map[rtchan.ChannelID]bool),
	}
}

// State returns the daemon's state for a channel (stateN when unknown).
func (d *daemon) State(ch rtchan.ChannelID) chanState { return d.states[ch] }

func (d *daemon) setState(ch rtchan.ChannelID, s chanState) {
	old := d.states[ch]
	if s == stateN {
		delete(d.states, ch)
		delete(d.paths, ch)
		delete(d.knownFailedBackups, ch)
		delete(d.probeFns, ch)
	} else {
		d.states[ch] = s
	}
	if old != s && d.net.em.Enabled() {
		d.net.emitState(d.id, ch, old, s)
	}
}

// install seeds the daemon's soft state for a channel routed through this
// node: the Figure-4 state plus the daemon's own copy of the route.
func (d *daemon) install(ch *rtchan.Channel, s chanState) {
	d.paths[ch.ID] = ch.Path
	d.setState(ch.ID, s)
}

// pathOf resolves a channel's route from the daemon's forwarding soft state,
// falling back to the resource plane for channels installed out-of-band.
func (d *daemon) pathOf(chID rtchan.ChannelID) (topology.Path, bool) {
	if p, ok := d.paths[chID]; ok {
		return p, true
	}
	if ch := d.channel(chID); ch != nil {
		return ch.Path, true
	}
	return topology.Path{}, false
}

func (d *daemon) channel(id rtchan.ChannelID) *rtchan.Channel {
	if ch := d.net.mgr.Network().Channel(id); ch != nil {
		return ch
	}
	return d.net.retired[id]
}

// handleControl dispatches a control message delivered by an RCC.
func (d *daemon) handleControl(c wireControl) {
	if d.dead {
		return
	}
	switch c.Type {
	case wire.MsgFailureReport:
		d.handleFailureReport(c)
	case wire.MsgActivation:
		d.handleActivation(c)
	case wire.MsgRejoinRequest:
		d.handleRejoinRequest(c)
	case wire.MsgRejoin:
		d.handleRejoin(c)
	case wire.MsgChannelClosure:
		d.handleClosure(c)
	case wire.MsgLinkFailure:
		d.handleLinkFailureNotify(c)
	}
}

// forwardAlong sends control c to the neighbor in c.Toward direction along
// channel ch's path, over the corresponding RCC. Reports traveling into a
// failed link are lost, exactly as in the paper — the failure itself (or the
// other direction's report) covers the remaining segment.
func (d *daemon) forwardAlong(ch *rtchan.Channel, c wireControl) {
	d.forwardAlongPath(ch.Path, c)
}

// forwardAlongPath is forwardAlong against an explicit route — the daemon's
// own forwarding soft state — so teardown closures still propagate after the
// resource plane has released the channel.
func (d *daemon) forwardAlongPath(p topology.Path, c wireControl) {
	idx := p.IndexOfNode(d.id)
	if idx < 0 {
		return
	}
	nodes := p.Nodes()
	links := p.Links()
	g := d.net.mgr.Graph()
	var l topology.LinkID
	switch {
	case c.Toward > 0 && idx < len(nodes)-1:
		// Control flow toward the destination uses the channel link when
		// healthy; the RCC rides the same physical link.
		l = links[idx]
	case c.Toward < 0 && idx > 0:
		// Toward the source: the reverse-direction link's RCC.
		l = g.Reverse(links[idx-1])
		if l == topology.NoLink {
			return
		}
	default:
		return // already at the end node
	}
	d.net.submitControl(l, c)
}

// --- Failure reporting (§4.1, §4.2) -----------------------------------

// originateFailureReport is called on the neighbor node that detected a
// component failure affecting channel ch (or on a node detecting a
// multiplexing failure). It processes the report locally and propagates it.
func (d *daemon) originateFailureReport(ch rtchan.ChannelID, toward int8) {
	if d.dead {
		return
	}
	d.net.stats.ReportsGenerated++
	if d.net.em.Enabled() {
		d.net.emitChan(trace.KindReportOriginate, d.id, ch, int64(toward))
	}
	d.handleFailureReport(wireControl{
		Type:    wire.MsgFailureReport,
		Channel: int64(ch),
		Origin:  int32(d.id),
		Toward:  toward,
	})
}

func (d *daemon) handleFailureReport(c wireControl) {
	chID := rtchan.ChannelID(c.Channel)
	ch := d.channel(chID)
	if ch == nil {
		return
	}
	switch d.states[chID] {
	case stateU:
		return // duplicates ignored in state U (Figure 4)
	case stateN:
		return
	}
	d.setState(chID, stateU)
	d.armRejoinTimer(ch)

	idx := ch.Path.IndexOfNode(d.id)
	nodes := ch.Path.Nodes()
	atSource := idx == 0
	atDest := idx == len(nodes)-1
	if (c.Toward < 0 && atSource) || (c.Toward > 0 && atDest) {
		d.endNodeFailureAction(ch)
		return
	}
	d.forwardAlong(ch, c)
}

// endNodeFailureAction runs at a channel end node that has just learned of
// the channel's failure: record backup health, switch primaries, schedule
// the rejoin probe.
func (d *daemon) endNodeFailureAction(ch *rtchan.Channel) {
	conn := d.net.mgr.Connection(ch.Conn)
	if conn == nil {
		return
	}
	if ch.Role == rtchan.RoleBackup {
		d.knownFailedBackups[ch.ID] = true
		// Abandon any claims the dead activation holds.
		d.releaseClaims(ch)
	}
	isPrimary := conn.Primary != nil && conn.Primary.ID == ch.ID
	// A failed backup matters when the primary is already down: the end
	// node moves on to the next serial.
	if isPrimary || d.primaryDown(conn) {
		d.initiateSwitch(conn)
	}
	if ch.Path.Source() == d.id {
		d.scheduleRejoinProbe(ch)
	}
}

// primaryDown reports whether this end node believes the connection's
// current primary is unhealthy.
func (d *daemon) primaryDown(conn *core.DConnection) bool {
	if conn.Primary == nil {
		return true
	}
	return d.states[conn.Primary.ID] == stateU
}

// initiateSwitch selects the lowest-serial backup not known to have failed
// and starts activation from this end, per the configured scheme.
func (d *daemon) initiateSwitch(conn *core.DConnection) {
	scheme := d.net.cfg.Scheme
	atSource := d.id == conn.Src
	atDest := d.id == conn.Dst
	switch {
	case atSource && scheme == Scheme1:
		return // scheme 1 activates from the destination only
	case atDest && scheme == Scheme2:
		return // scheme 2 activates from the source only
	case !atSource && !atDest:
		return
	}
	// An activation already in progress from this end: wait for it to
	// complete or to be reported failed before trying another serial.
	for _, b := range conn.Backups {
		if d.states[b.ID] == stateP && !d.knownFailedBackups[b.ID] {
			return
		}
	}
	for _, b := range conn.Backups {
		if d.knownFailedBackups[b.ID] || d.states[b.ID] != stateB {
			continue
		}
		if unit := d.net.cfg.PriorityDelayUnit; unit > 0 {
			// Delayed activation (§4.3): lower-priority backups wait in
			// proportion to their multiplexing degree so that critical
			// connections claim spare bandwidth first.
			b := b
			wait := sim.Duration(d.net.mgr.DegreeOf(b.ID)) * unit
			d.net.rt.Schedule(wait, func() {
				if d.dead || d.states[b.ID] != stateB || d.knownFailedBackups[b.ID] {
					d.initiateSwitch(conn) // this serial died while waiting
					return
				}
				d.startActivation(conn, b, atSource)
			})
			return
		}
		d.startActivation(conn, b, atSource)
		return
	}
	// No usable backup: the connection needs re-establishment from scratch
	// (out of protocol scope; the rejoin timers will reclaim resources).
}

// startActivation activates backup b from this end node: local switch,
// claim on the adjacent link, and an activation message down the path.
func (d *daemon) startActivation(conn *core.DConnection, b *rtchan.Channel, fromSource bool) {
	d.net.stats.ActivationsStarted++
	if d.net.em.Enabled() {
		var aux int64
		if fromSource {
			aux = 1
		}
		d.net.emitChan(trace.KindActivationStart, d.id, b.ID, aux)
	}
	d.setState(b.ID, stateP)
	links := b.Path.Links()
	var claimLink topology.LinkID
	var toward int8
	if fromSource {
		claimLink = links[0]
		toward = 1
	} else {
		claimLink = links[len(links)-1]
		toward = -1
	}
	if !d.claimOrPreempt(b, claimLink) {
		d.muxFailure(b)
		return
	}
	if fromSource {
		// Data transfer resumes immediately after sending the activation
		// message (schemes 2 and 3).
		d.net.noteSourceSwitch(conn.ID, b.ID)
	}
	d.forwardAlong(b, wireControl{
		Type:    wire.MsgActivation,
		Channel: int64(b.ID),
		Origin:  int32(d.id),
		Toward:  toward,
	})
}

// handleActivation advances an activation message through an intermediate
// node (or completes it at the far end).
func (d *daemon) handleActivation(c wireControl) {
	chID := rtchan.ChannelID(c.Channel)
	b := d.channel(chID)
	if b == nil {
		return
	}
	switch d.states[chID] {
	case stateU:
		return // a newer failure owns this channel; its report is en route
	case stateP:
		// Already activated from the other end (Scheme 3 meeting point).
		d.net.stats.ActivationsMet++
		if d.net.em.Enabled() {
			d.net.emitChan(trace.KindActivationMeet, d.id, chID, 0)
		}
		d.finalizeActivation(b)
		return
	case stateN:
		return
	case stateB:
	}
	d.setState(chID, stateP)
	idx := b.Path.IndexOfNode(d.id)
	nodes := b.Path.Nodes()
	links := b.Path.Links()
	if c.Toward > 0 {
		if idx == len(nodes)-1 {
			d.finalizeActivation(b)
			if d.id == b.Path.Source() {
				// Degenerate single-hop case.
				d.net.noteSourceSwitch(b.Conn, b.ID)
			}
			return
		}
		if !d.claimOrPreempt(b, links[idx]) {
			d.muxFailure(b)
			return
		}
		d.forwardAlong(b, c)
		return
	}
	// Traveling toward the source.
	if idx == 0 {
		// The source switches on receiving the activation (Scheme 1: this
		// is when data transfer resumes).
		d.finalizeActivation(b)
		d.net.noteSourceSwitch(b.Conn, b.ID)
		return
	}
	if !d.claimOrPreempt(b, links[idx-1]) {
		d.muxFailure(b)
		return
	}
	d.forwardAlong(b, c)
}

// finalizeActivation promotes the backup in the resource plane exactly once.
func (d *daemon) finalizeActivation(b *rtchan.Channel) {
	if d.net.activated[b.ID] {
		return
	}
	conn := d.net.mgr.Connection(b.Conn)
	if conn == nil {
		return
	}
	if err := d.net.mgr.ActivateClaimed(b.Conn, b); err != nil {
		// Spare raced away between claim and promotion; treat as a
		// multiplexing failure.
		d.muxFailure(b)
		return
	}
	if d.net.em.Enabled() {
		d.net.emitChan(trace.KindActivationDone, d.id, b.ID, 0)
	}
	d.net.activated[b.ID] = true
	d.net.scheduleReplenish(b.Conn)
}

// claimOrPreempt claims spare bandwidth on link l for backup b, preempting
// a lower-priority claim if the configuration allows it (§4.3).
func (d *daemon) claimOrPreempt(b *rtchan.Channel, l topology.LinkID) bool {
	bw := b.Bandwidth()
	if d.net.mgr.ClaimSpareFor(l, b.ID, bw) {
		return true
	}
	if !d.net.cfg.AllowPreemption {
		return false
	}
	alpha := d.net.mgr.DegreeOf(b.ID)
	victim, ok := d.net.mgr.PreemptClaim(l, b.ID, alpha, bw)
	if !ok {
		return false
	}
	d.net.stats.Preemptions++
	// The preempted channel is handled as if disabled by a component
	// failure: report from here toward both of its end nodes.
	if vch := d.channel(victim); vch != nil {
		d.reportBothWays(vch)
	}
	return true
}

// reportBothWays marks ch unhealthy at this node and sends failure reports
// toward both end nodes (used for multiplexing failures and preemptions,
// which a single node detects).
func (d *daemon) reportBothWays(ch *rtchan.Channel) {
	d.setState(ch.ID, stateU)
	d.armRejoinTimer(ch)
	idx := ch.Path.IndexOfNode(d.id)
	if idx < 0 {
		return
	}
	if idx > 0 {
		d.forwardAlong(ch, wireControl{
			Type: wire.MsgFailureReport, Channel: int64(ch.ID), Origin: int32(d.id), Toward: -1,
		})
	} else {
		d.endNodeFailureAction(ch)
	}
	if idx < len(ch.Path.Nodes())-1 {
		d.forwardAlong(ch, wireControl{
			Type: wire.MsgFailureReport, Channel: int64(ch.ID), Origin: int32(d.id), Toward: 1,
		})
	} else {
		d.endNodeFailureAction(ch)
	}
}

// muxFailure handles exhaustion of spare bandwidth during activation:
// the backup is unusable and the failure is reported to both end nodes so
// they can try the next serial (§4.1).
func (d *daemon) muxFailure(b *rtchan.Channel) {
	d.net.stats.MuxFailures++
	if d.net.em.Enabled() {
		d.net.emitChan(trace.KindMuxFailure, d.id, b.ID, 0)
	}
	d.releaseClaims(b)
	d.reportBothWays(b)
}

// releaseClaims abandons every claim ch holds along its path: one manager
// lock under batched dispatch, one per link in the per-message baseline.
func (d *daemon) releaseClaims(ch *rtchan.Channel) {
	if d.net.perMsg {
		for _, l := range ch.Path.Links() {
			d.net.mgr.ReleaseClaimFor(l, ch.ID)
		}
		return
	}
	d.net.mgr.ReleaseClaimBatch(ch.Path.Links(), ch.ID)
}

// --- Soft-state rejoin (§4.4, Figure 6) --------------------------------

func (d *daemon) armRejoinTimer(ch *rtchan.Channel) {
	if r := d.rejoinTimers[ch.ID]; r.active() {
		return
	}
	if r := &d.net.round; r.active {
		// Stage the arm; endRound funds every staged arm with one shared
		// batch timer (they all share RejoinTimeout, so staging order is
		// firing order) — no per-channel closure, no per-channel heap entry.
		if _, staged := d.rejoinStaged[ch.ID]; staged {
			return
		}
		d.rejoinStaged[ch.ID] = len(r.arms)
		r.arms = append(r.arms, rejoinArm{d: d, chID: ch.ID, connID: ch.Conn, path: ch.Path})
		return
	}
	chID, connID, path := ch.ID, ch.Conn, ch.Path
	d.rejoinTimers[ch.ID] = rejoinRef{t: d.net.rt.Schedule(d.net.cfg.RejoinTimeout, func() {
		if r := d.rejoinTimers[chID]; r.batch == nil {
			delete(d.rejoinTimers, chID)
		}
		d.rejoinExpire(chID, connID, path)
	})}
}

// rejoinExpire is the rejoin-timer expiry action: the channel's soft state
// never rejoined, so it is gone for good and its resources are reclaimed
// network-wide. Called from a batch entry under batched dispatch, or from a
// per-channel closure in the per-message baseline.
func (d *daemon) rejoinExpire(chID rtchan.ChannelID, connID rtchan.ConnID, path topology.Path) {
	if d.dead || d.states[chID] != stateU {
		return
	}
	d.net.stats.RejoinExpiries++
	if d.net.em.Enabled() {
		d.net.emitChan(trace.KindRejoinExpire, d.id, chID, 0)
	}
	d.setState(chID, stateN)
	// First expiry reclaims the channel's resources network-wide; the
	// call is idempotent across nodes.
	_ = d.net.mgr.TeardownChannel(connID, chID)
	// Announce the teardown both ways. Nodes still in U reclaim on
	// their own timers, but a node that a straggling rejoin confirm
	// converted to B — stopping its timer — learns of the death only
	// from this closure.
	for _, toward := range [2]int8{1, -1} {
		d.forwardAlongPath(path, wireControl{
			Type: wire.MsgChannelClosure, Channel: int64(chID), Origin: int32(d.id), Toward: toward,
		})
	}
	// The channel is gone for good; if replenishment is on, the source
	// restores the connection's backup count (§4.4). The activation-time
	// trigger cannot cover this case: a backup lost to an unrepaired
	// failure never activates anything, and until this teardown the dead
	// channel still counted toward the target.
	if d.id == path.Source() {
		d.net.scheduleReplenish(connID)
	}
}

// scheduleRejoinProbe sends a rejoin-request along the failed channel after
// the probe delay, if the channel is still unhealthy. Inside a dispatch
// round the probe is staged — endRound funds the round's probes with one
// shared batch timer (batchtimer.go, they all share RejoinProbeDelay);
// otherwise a private timer with a per-channel closure is scheduled.
func (d *daemon) scheduleRejoinProbe(ch *rtchan.Channel) {
	if r := &d.net.round; r.active {
		r.probes = append(r.probes, probeEntry{d: d, chID: ch.ID})
		return
	}
	d.net.rt.Schedule(d.net.cfg.RejoinProbeDelay, d.probeFireFn(ch))
}

// probeFire is the probe-timer expiry action: if the channel is still
// unhealthy here, send a rejoin-request toward the destination.
func (d *daemon) probeFire(chID rtchan.ChannelID) {
	if d.dead || d.states[chID] != stateU {
		return
	}
	c := d.channel(chID)
	if c == nil {
		return
	}
	d.net.stats.RejoinRequests++
	if d.net.em.Enabled() {
		d.net.emitChan(trace.KindRejoinRequest, d.id, chID, 0)
	}
	d.forwardAlong(c, wireControl{
		Type: wire.MsgRejoinRequest, Channel: int64(chID), Origin: int32(d.id), Toward: 1,
	})
}

// probeFireFn returns the rejoin-probe callback for ch, cached per channel
// outside per-message mode. Only non-round arms build closures at all —
// round-staged probes ride a batch timer.
func (d *daemon) probeFireFn(ch *rtchan.Channel) func() {
	if fn, ok := d.probeFns[ch.ID]; ok {
		return fn
	}
	chID := ch.ID
	fn := func() { d.probeFire(chID) }
	if !d.net.perMsg {
		d.probeFns[chID] = fn
	}
	return fn
}

func (d *daemon) handleRejoinRequest(c wireControl) {
	chID := rtchan.ChannelID(c.Channel)
	ch := d.channel(chID)
	if ch == nil || d.states[chID] != stateU {
		return // expired (N) or never here: the request dies
	}
	if d.id == ch.Path.Destination() {
		// Channel path is whole again: confirm with a rejoin message.
		d.net.stats.Rejoins++
		if d.net.em.Enabled() {
			d.net.emitChan(trace.KindRejoin, d.id, chID, 0)
		}
		d.setState(chID, stateB)
		d.stopRejoinTimer(chID)
		d.forwardAlong(ch, wireControl{
			Type: wire.MsgRejoin, Channel: int64(chID), Origin: int32(d.id), Toward: -1,
		})
		return
	}
	d.forwardAlong(ch, c)
}

func (d *daemon) handleRejoin(c wireControl) {
	chID := rtchan.ChannelID(c.Channel)
	ch := d.channel(chID)
	if ch == nil {
		return
	}
	switch d.states[chID] {
	case stateU:
		d.setState(chID, stateB)
		d.stopRejoinTimer(chID)
		if d.id == ch.Path.Source() {
			d.completeRejoin(ch)
			return
		}
		d.forwardAlong(ch, c)
	case stateN:
		// Timer already expired here: undo the repair on both sides
		// (Figure 6) — the confirm has already converted the nodes behind
		// it to B, and the nodes ahead may still be waiting in U.
		d.net.stats.Closures++
		if d.net.em.Enabled() {
			d.net.emitChan(trace.KindClosure, d.id, chID, 0)
		}
		for _, toward := range [2]int8{1, -1} {
			d.forwardAlong(ch, wireControl{
				Type: wire.MsgChannelClosure, Channel: int64(chID), Origin: int32(d.id), Toward: toward,
			})
		}
	default:
	}
}

// completeRejoin re-registers the repaired channel as a backup in the
// resource plane. If spare bandwidth can no longer accommodate it, the
// repair is abandoned with a closure.
func (d *daemon) completeRejoin(ch *rtchan.Channel) {
	conn := d.net.mgr.Connection(ch.Conn)
	if conn == nil {
		d.abandonRejoin(ch)
		return
	}
	alpha := 1
	if len(conn.Degrees) > 0 {
		alpha = conn.Degrees[len(conn.Degrees)-1]
	}
	if err := d.net.mgr.RestoreAsBackup(ch.Conn, ch.ID, alpha); err != nil {
		d.abandonRejoin(ch)
		return
	}
	d.knownFailedBackups[ch.ID] = false
	// The channel is a backup again: a future activation of it is a new
	// episode, so the promote-once guard must rearm. (Without this, a
	// channel that has been promoted once can never be promoted again —
	// visible under repeated fail/repair cycles.)
	if s := d.net.cfg.Sabotage; s == nil || !s.SkipPromoteRearm {
		delete(d.net.activated, ch.ID)
	}
}

func (d *daemon) abandonRejoin(ch *rtchan.Channel) {
	d.net.stats.Closures++
	if d.net.em.Enabled() {
		d.net.emitChan(trace.KindClosure, d.id, ch.ID, 0)
	}
	d.setState(ch.ID, stateN)
	d.forwardAlong(ch, wireControl{
		Type: wire.MsgChannelClosure, Channel: int64(ch.ID), Origin: int32(d.id), Toward: 1,
	})
	_ = d.net.mgr.TeardownChannel(ch.Conn, ch.ID)
}

func (d *daemon) handleClosure(c wireControl) {
	chID := rtchan.ChannelID(c.Channel)
	path, known := d.pathOf(chID)
	d.stopRejoinTimer(chID)
	if d.states[chID] == stateN {
		return
	}
	d.setState(chID, stateN)
	if known {
		d.forwardAlongPath(path, c)
	}
}

func (d *daemon) stopRejoinTimer(chID rtchan.ChannelID) {
	if i, ok := d.rejoinStaged[chID]; ok {
		d.net.round.arms[i].cancelled = true
		delete(d.rejoinStaged, chID)
	}
	if r, ok := d.rejoinTimers[chID]; ok {
		r.stop()
		delete(d.rejoinTimers, chID)
	}
}
