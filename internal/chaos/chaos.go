package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"

	"github.com/rtcl/bcp/internal/bcpd"
)

// Options configure a model-check run.
type Options struct {
	// Seed drives everything: schedule generation, packet chaos, and the
	// engine's event interleaving. Same seed, same binary ⇒ byte-identical
	// episode digests.
	Seed int64
	// Episodes is the number of seeded episodes to run (default 100).
	Episodes int
	// Classes restricts the fault-schedule classes exercised (default: all).
	Classes []string
	// Sabotage re-introduces a known-fixed bug in every episode — the
	// harness self-test: the run must catch and shrink it.
	Sabotage *bcpd.Sabotage
	// ShrinkBudget caps probe episodes per shrink (default 400).
	ShrinkBudget int
	// ArtifactDir, when non-empty, receives one JSON reproducer per
	// failing episode.
	ArtifactDir string
	// MaxFailures stops the run early after this many failing episodes
	// (default 1 — the first minimal reproducer is usually what you want).
	// Negative means never stop early.
	MaxFailures int
	// FrameTap observes wire frames from every episode (fuzz harvesting).
	// The buffer is pooled; the tap must copy.
	FrameTap func([]byte)
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Failure is one failing episode, minimized.
type Failure struct {
	// Episode is the failing episode's index in the run.
	Episode int
	// Original is the generated spec that failed; Shrunk is its minimal
	// reproducer (equal to Original if shrinking could not reduce it).
	Original, Shrunk Spec
	// Violations observed when Shrunk ran.
	Violations []string
	// ShrinkRuns counts probe episodes the shrinker spent.
	ShrinkRuns int
	// ArtifactPath is where the reproducer was written ("" if no dir).
	ArtifactPath string
}

// Report summarizes a model-check run.
type Report struct {
	Episodes int
	// Skipped counts seeds whose generated schedule could not establish
	// any connection (counted, never silently folded into Episodes).
	Skipped int
	// Digest is the SHA-256 over all episode digests in order — one hash
	// that witnesses determinism for the whole run.
	Digest string
	// Reestablished / Conns aggregate the liveness outcome.
	Conns, Reestablished int
	// Events totals trace events checked across the run.
	Events   int
	Failures []Failure
}

// Failed reports whether any episode failed.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// Run executes the model check: generate a spec per episode, run it under
// the hostile transport, check conformance + quiescence + liveness, and
// shrink every failure to a minimal replayable reproducer.
func Run(opts Options) (*Report, error) {
	if opts.Episodes <= 0 {
		opts.Episodes = 100
	}
	if opts.MaxFailures == 0 {
		opts.MaxFailures = 1
	}
	classes := opts.Classes
	if len(classes) == 0 {
		classes = Classes
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	runOpts := RunOptions{Sabotage: opts.Sabotage, FrameTap: opts.FrameTap}

	rep := &Report{}
	runHash := sha256.New()
	for i := 0; i < opts.Episodes; i++ {
		class := classes[i%len(classes)]
		epSeed := mix(opts.Seed, uint64(i)*0x9e3779b97f4a7c15+1)
		spec, err := Generate(epSeed, class)
		if err != nil {
			return rep, fmt.Errorf("chaos: episode %d (%s): %w", i, class, err)
		}
		if len(spec.Conns) == 0 {
			rep.Skipped++
			continue
		}
		res, err := RunEpisode(spec, runOpts)
		if err != nil {
			return rep, fmt.Errorf("chaos: episode %d (%s): %w", i, class, err)
		}
		rep.Episodes++
		rep.Conns += res.Conns
		rep.Reestablished += res.Reestablished
		rep.Events += res.Events
		fmt.Fprintf(runHash, "%d %s\n", i, res.Digest)

		if len(res.Violations) == 0 {
			continue
		}
		logf("episode %d (%s, seed %d): %d violation(s); shrinking (%d events)...",
			i, class, epSeed, len(res.Violations), len(spec.Events))
		sh := &Shrinker{Opts: runOpts, Budget: opts.ShrinkBudget}
		shrunk := sh.Shrink(spec)
		sres, err := RunEpisode(shrunk, runOpts)
		if err != nil {
			return rep, fmt.Errorf("chaos: episode %d shrink replay: %w", i, err)
		}
		f := Failure{
			Episode:    i,
			Original:   spec,
			Shrunk:     shrunk,
			Violations: sres.Violations,
			ShrinkRuns: sh.Runs(),
		}
		logf("episode %d: shrunk %d -> %d events in %d probe runs",
			i, len(spec.Events), len(shrunk.Events), sh.Runs())
		if opts.ArtifactDir != "" {
			path := filepath.Join(opts.ArtifactDir,
				fmt.Sprintf("chaos-seed%d-ep%d.json", opts.Seed, i))
			a := Artifact{
				Spec:       shrunk,
				Violations: sres.Violations,
				Digest:     sres.Digest,
				Note: fmt.Sprintf("shrunk from %s schedule, run seed %d episode %d, %d probe runs",
					class, opts.Seed, i, sh.Runs()),
			}
			if err := WriteArtifact(path, a); err != nil {
				return rep, err
			}
			f.ArtifactPath = path
			logf("episode %d: reproducer written to %s", i, path)
		}
		rep.Failures = append(rep.Failures, f)
		if opts.MaxFailures > 0 && len(rep.Failures) >= opts.MaxFailures {
			break
		}
	}
	rep.Digest = hex.EncodeToString(runHash.Sum(nil))
	return rep, nil
}
