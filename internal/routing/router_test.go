package routing

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"

	"github.com/rtcl/bcp/internal/topology"
)

// This file checks the Router's arena-based searches against straightforward
// from-scratch reference implementations (the package's pre-Router code,
// kept here verbatim modulo naming). The property corpus runs many queries
// through ONE Router per graph, so arena reuse, generation stamping, and the
// SPT cache are all exercised between comparisons. Every comparison demands
// byte-identical link sequences, not just equal lengths: the Router must
// preserve tie-breaking exactly.

// --- reference implementations (pre-Router code) ---

func refDistSlice(g *topology.Graph) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	return dist
}

func refDistance(g *topology.Graph, src, dst topology.NodeID, c Constraint) int {
	dist := refDistSlice(g)
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			return dist[n]
		}
		if c.MaxHops > 0 && dist[n] >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(n) {
			if !c.linkOK(l) {
				continue
			}
			to := g.Link(l).To
			if dist[to] >= 0 {
				continue
			}
			if to != dst && !c.nodeOK(to) {
				continue
			}
			dist[to] = dist[n] + 1
			queue = append(queue, to)
		}
	}
	return -1
}

func refShortestPath(g *topology.Graph, src, dst topology.NodeID, c Constraint) (topology.Path, bool) {
	if src == dst {
		return topology.Path{}, false
	}
	dist := refDistSlice(g)
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			break
		}
		if c.MaxHops > 0 && dist[n] >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(n) {
			if !c.linkOK(l) {
				continue
			}
			to := g.Link(l).To
			if dist[to] >= 0 {
				continue
			}
			if to != dst && !c.nodeOK(to) {
				continue
			}
			dist[to] = dist[n] + 1
			queue = append(queue, to)
		}
	}
	if dist[dst] < 0 {
		return topology.Path{}, false
	}
	links := make([]topology.LinkID, dist[dst])
	cur := dst
	for d := dist[dst]; d > 0; d-- {
		var candidates []topology.LinkID
		for _, l := range g.In(cur) {
			if !c.linkOK(l) {
				continue
			}
			from := g.Link(l).From
			if dist[from] != d-1 {
				continue
			}
			if from != src && !c.nodeOK(from) {
				continue
			}
			if c.TieBreak == nil {
				if candidates == nil || l < candidates[0] {
					candidates = []topology.LinkID{l}
				}
				continue
			}
			candidates = append(candidates, l)
		}
		choice := candidates[0]
		if c.TieBreak != nil && len(candidates) > 1 {
			choice = candidates[c.TieBreak.Intn(len(candidates))]
		}
		links[d-1] = choice
		cur = g.Link(choice).From
	}
	p, err := topology.NewPath(g, links)
	if err != nil {
		panic("routing: reference backtrack built invalid path: " + err.Error())
	}
	return p, true
}

type refPQItem struct {
	node topology.NodeID
	dist float64
}

type refPQ []refPQItem

func (q refPQ) Len() int            { return len(q) }
func (q refPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q refPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refPQ) Push(x interface{}) { *q = append(*q, x.(refPQItem)) }
func (q *refPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func refMinCostPath(g *topology.Graph, src, dst topology.NodeID, c Constraint, w WeightFunc) (topology.Path, bool) {
	if src == dst || w == nil {
		return topology.Path{}, false
	}
	type label struct {
		dist float64
		hops int
		via  topology.LinkID
	}
	labels := make([]label, g.NumNodes())
	for i := range labels {
		labels[i] = label{dist: -1, via: topology.NoLink}
	}
	labels[src] = label{dist: 0, via: topology.NoLink}
	q := &refPQ{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(refPQItem)
		lb := labels[it.node]
		if it.dist > lb.dist {
			continue
		}
		if it.node == dst {
			break
		}
		if c.MaxHops > 0 && lb.hops >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(it.node) {
			if !c.linkOK(l) {
				continue
			}
			lk := g.Link(l)
			if lk.To != dst && !c.nodeOK(lk.To) {
				continue
			}
			cost := w(l)
			if cost <= 0 {
				cost = 1e-9
			}
			nd := lb.dist + cost
			tl := labels[lk.To]
			if tl.dist < 0 || nd < tl.dist {
				labels[lk.To] = label{dist: nd, hops: lb.hops + 1, via: l}
				heap.Push(q, refPQItem{node: lk.To, dist: nd})
			}
		}
	}
	if labels[dst].dist < 0 {
		return topology.Path{}, false
	}
	var rev []topology.LinkID
	for cur := dst; cur != src; {
		l := labels[cur].via
		rev = append(rev, l)
		cur = g.Link(l).From
	}
	links := make([]topology.LinkID, len(rev))
	for i, l := range rev {
		links[len(rev)-1-i] = l
	}
	p, err := topology.NewPath(g, links)
	if err != nil {
		return topology.Path{}, false
	}
	if c.MaxHops > 0 && p.Hops() > c.MaxHops {
		return topology.Path{}, false
	}
	return p, true
}

type refFlowEdge struct {
	to      int
	cap     int
	rev     int
	link    topology.LinkID
	forward bool
}

type refFlowNet struct {
	edges [][]refFlowEdge
}

func (f *refFlowNet) add(from, to, capacity int, link topology.LinkID) {
	f.edges[from] = append(f.edges[from], refFlowEdge{
		to: to, cap: capacity, rev: len(f.edges[to]), link: link, forward: true,
	})
	f.edges[to] = append(f.edges[to], refFlowEdge{
		to: from, cap: 0, rev: len(f.edges[from]) - 1, link: topology.NoLink, forward: false,
	})
}

func refAugment(net *refFlowNet, source, sink int) bool {
	type pred struct {
		node, idx int
	}
	preds := make([]pred, len(net.edges))
	for i := range preds {
		preds[i].node = -1
	}
	preds[source].node = source
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == sink {
			break
		}
		for i, e := range net.edges[u] {
			if e.cap <= 0 || preds[e.to].node != -1 {
				continue
			}
			preds[e.to] = pred{node: u, idx: i}
			queue = append(queue, e.to)
		}
	}
	if preds[sink].node == -1 {
		return false
	}
	for v := sink; v != source; {
		p := preds[v]
		e := &net.edges[p.node][p.idx]
		e.cap--
		net.edges[v][e.rev].cap++
		v = p.node
	}
	return true
}

func refMaxDisjointPaths(g *topology.Graph, src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	if src == dst || count <= 0 {
		return nil
	}
	n := g.NumNodes()
	inID := func(v topology.NodeID) int { return int(2 * v) }
	outID := func(v topology.NodeID) int { return int(2*v + 1) }
	net := &refFlowNet{edges: make([][]refFlowEdge, 2*n)}
	for v := topology.NodeID(0); int(v) < n; v++ {
		capV := 1
		switch {
		case v == src || v == dst:
			capV = count
		case !c.nodeOK(v):
			capV = 0
		}
		net.add(inID(v), outID(v), capV, topology.NoLink)
	}
	for _, l := range g.Links() {
		if !c.linkOK(l.ID) {
			continue
		}
		net.add(outID(l.From), inID(l.To), 1, l.ID)
	}

	source, sink := outID(src), inID(dst)
	flows := 0
	for flows < count && refAugment(net, source, sink) {
		flows++
	}
	if flows == 0 {
		return nil
	}

	usedOut := make([][]int, len(net.edges))
	for u := range net.edges {
		for i, e := range net.edges[u] {
			if e.forward && net.edges[e.to][e.rev].cap > 0 {
				for k := 0; k < net.edges[e.to][e.rev].cap; k++ {
					usedOut[u] = append(usedOut[u], i)
				}
			}
		}
	}
	paths := make([]topology.Path, 0, flows)
	for f := 0; f < flows; f++ {
		var links []topology.LinkID
		u := source
		for u != sink {
			if len(usedOut[u]) == 0 {
				break
			}
			i := usedOut[u][0]
			usedOut[u] = usedOut[u][1:]
			e := net.edges[u][i]
			if e.link != topology.NoLink {
				links = append(links, e.link)
			}
			u = e.to
		}
		if u != sink || len(links) == 0 {
			continue
		}
		if p, err := topology.NewPath(g, links); err == nil {
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].Hops() < paths[j].Hops() })
	return paths
}

func refSequentialDisjointPaths(g *topology.Graph, src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	var paths []topology.Path
	bannedLinks := map[topology.LinkID]bool{}
	bannedNodes := map[topology.NodeID]bool{}
	for i := 0; i < count; i++ {
		cc := c
		prevLink, prevNode := c.LinkAllowed, c.NodeAllowed
		cc.LinkAllowed = func(l topology.LinkID) bool {
			return !bannedLinks[l] && (prevLink == nil || prevLink(l))
		}
		cc.NodeAllowed = func(n topology.NodeID) bool {
			return !bannedNodes[n] && (prevNode == nil || prevNode(n))
		}
		p, ok := refShortestPath(g, src, dst, cc)
		if !ok {
			break
		}
		paths = append(paths, p)
		for _, l := range p.Links() {
			bannedLinks[l] = true
		}
		for _, n := range p.InteriorNodes() {
			bannedNodes[n] = true
		}
	}
	return paths
}

// --- property corpus ---

func samePath(a, b topology.Path) bool {
	al, bl := a.Links(), b.Links()
	if len(al) != len(bl) {
		return false
	}
	for i := range al {
		if al[i] != bl[i] {
			return false
		}
	}
	return true
}

func samePaths(a, b []topology.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !samePath(a[i], b[i]) {
			return false
		}
	}
	return true
}

// corpusGraphs builds the graph set the equivalence properties run on:
// the two evaluation networks plus random graphs of assorted sizes.
func corpusGraphs() []*topology.Graph {
	gs := []*topology.Graph{
		topology.NewTorus(6, 6, 100),
		topology.NewMesh(5, 7, 100),
		topology.NewRing(12, 50),
	}
	for seed := int64(1); seed <= 6; seed++ {
		n := 8 + int(seed)*5
		deg := 2.5 + float64(seed)*0.3
		gs = append(gs, topology.NewRandom(n, deg, 100, seed))
	}
	return gs
}

// corpusConstraint derives a deterministic pseudo-random constraint from
// (graph, variant): possibly a hop bound, possibly link/node predicates,
// possibly a bitset exclusion. It returns the Router-side constraint and an
// equivalent closure-only constraint for the references.
func corpusConstraint(g *topology.Graph, variant int, rng *rand.Rand) (router, ref Constraint) {
	var c Constraint
	if variant&1 != 0 {
		c.MaxHops = 3 + rng.Intn(6)
	}
	if variant&2 != 0 {
		h := rng.Int63()
		c.LinkAllowed = func(l topology.LinkID) bool {
			return (int64(l)*2654435761+h)%7 != 0
		}
	}
	if variant&4 != 0 {
		h := rng.Int63()
		c.NodeAllowed = func(n topology.NodeID) bool {
			return (int64(n)*40503+h)%11 != 0
		}
	}
	router, ref = c, c
	if variant&8 != 0 {
		excl := NewExclusion()
		bannedLinks := map[topology.LinkID]bool{}
		bannedNodes := map[topology.NodeID]bool{}
		for i := 0; i < 3; i++ {
			l := topology.LinkID(rng.Intn(g.NumLinks()))
			excl.AddLink(l)
			bannedLinks[l] = true
		}
		n := topology.NodeID(rng.Intn(g.NumNodes()))
		excl.AddNode(n)
		bannedNodes[n] = true

		router = excl.Constrain(c)
		prevLink, prevNode := c.LinkAllowed, c.NodeAllowed
		ref.LinkAllowed = func(l topology.LinkID) bool {
			return !bannedLinks[l] && (prevLink == nil || prevLink(l))
		}
		ref.NodeAllowed = func(n topology.NodeID) bool {
			return !bannedNodes[n] && (prevNode == nil || prevNode(n))
		}
	}
	return router, ref
}

// TestRouterMatchesReference is the equivalence property: one Router per
// graph, reused across every query and compared against the from-scratch
// implementations on the same inputs. Link sequences must match exactly.
func TestRouterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for gi, g := range corpusGraphs() {
		r := NewRouter(g)
		for trial := 0; trial < 120; trial++ {
			src := topology.NodeID(rng.Intn(g.NumNodes()))
			dst := topology.NodeID(rng.Intn(g.NumNodes()))
			if src == dst {
				continue
			}
			variant := rng.Intn(16)
			cRouter, cRef := corpusConstraint(g, variant, rng)

			// Unconstrained distance (SPT cache path).
			if got, want := r.Distance(src, dst), refDistance(g, src, dst, Constraint{}); got != want {
				t.Fatalf("graph %d trial %d: Distance(%d,%d) = %d, want %d", gi, trial, src, dst, got, want)
			}
			// Constrained distance (arena BFS path).
			if got, want := r.ShortestDistance(src, dst, cRouter), refDistance(g, src, dst, cRef); got != want {
				t.Fatalf("graph %d trial %d: ShortestDistance(%d,%d) = %d, want %d", gi, trial, src, dst, got, want)
			}

			// Shortest path, deterministic tie-break.
			gp, gok := r.ShortestPath(src, dst, cRouter)
			wp, wok := refShortestPath(g, src, dst, cRef)
			if gok != wok || (gok && !samePath(gp, wp)) {
				t.Fatalf("graph %d trial %d: ShortestPath(%d,%d) = %v,%v want %v,%v", gi, trial, src, dst, gp, gok, wp, wok)
			}

			// Shortest path, randomized tie-break: identical seeds must
			// consume the rng identically and return identical paths.
			seed := rng.Int63()
			cr, cf := cRouter, cRef
			cr.TieBreak = rand.New(rand.NewSource(seed))
			cf.TieBreak = rand.New(rand.NewSource(seed))
			gp, gok = r.ShortestPath(src, dst, cr)
			wp, wok = refShortestPath(g, src, dst, cf)
			if gok != wok || (gok && !samePath(gp, wp)) {
				t.Fatalf("graph %d trial %d: tie-broken ShortestPath(%d,%d) = %v,%v want %v,%v", gi, trial, src, dst, gp, gok, wp, wok)
			}

			// Weighted search. The weight is a deterministic hash of the
			// link id, heavy on ties to stress heap-order compatibility.
			wh := rng.Int63n(1 << 20)
			w := func(l topology.LinkID) float64 {
				return 1 + float64((int64(l)*2654435761>>16+wh)%4)
			}
			gp, gok = r.MinCostPath(src, dst, cRouter, w)
			wp, wok = refMinCostPath(g, src, dst, cRef, w)
			if gok != wok || (gok && !samePath(gp, wp)) {
				t.Fatalf("graph %d trial %d: MinCostPath(%d,%d) = %v,%v want %v,%v", gi, trial, src, dst, gp, gok, wp, wok)
			}

			// Disjoint sets, both disciplines.
			count := 1 + rng.Intn(4)
			if got, want := r.MaxDisjointPaths(src, dst, count, cRouter), refMaxDisjointPaths(g, src, dst, count, cRef); !samePaths(got, want) {
				t.Fatalf("graph %d trial %d: MaxDisjointPaths(%d,%d,%d) = %v want %v", gi, trial, src, dst, count, got, want)
			}
			if got, want := r.SequentialDisjointPaths(src, dst, count, cRouter), refSequentialDisjointPaths(g, src, dst, count, cRef); !samePaths(got, want) {
				t.Fatalf("graph %d trial %d: SequentialDisjointPaths(%d,%d,%d) = %v want %v", gi, trial, src, dst, count, got, want)
			}
		}
	}
}

// TestRouterPackageWrappersMatch pins the throwaway-Router package functions
// to the Router methods on a sample of queries.
func TestRouterPackageWrappersMatch(t *testing.T) {
	g := topology.NewTorus(5, 5, 100)
	r := NewRouter(g)
	for s := 0; s < g.NumNodes(); s += 3 {
		for d := 0; d < g.NumNodes(); d += 4 {
			if s == d {
				continue
			}
			src, dst := topology.NodeID(s), topology.NodeID(d)
			if Distance(g, src, dst) != r.Distance(src, dst) {
				t.Fatalf("Distance wrapper diverges at (%d,%d)", src, dst)
			}
			wp, wok := ShortestPath(g, src, dst, Constraint{})
			gp, gok := r.ShortestPath(src, dst, Constraint{})
			if wok != gok || !samePath(wp, gp) {
				t.Fatalf("ShortestPath wrapper diverges at (%d,%d)", src, dst)
			}
		}
	}
}

// TestRouterSeesTopologyGrowth checks the epoch invalidation rule: a Router
// created before AddLink must observe the new link on its next query (the
// SPT cache and arenas resize and recompute).
func TestRouterSeesTopologyGrowth(t *testing.T) {
	g := topology.NewLine(6, 100)
	r := NewRouter(g)
	if d := r.Distance(0, 5); d != 5 {
		t.Fatalf("line distance = %d, want 5", d)
	}
	if _, err := g.AddLink(0, 5, 100); err != nil {
		t.Fatal(err)
	}
	if d := r.Distance(0, 5); d != 1 {
		t.Fatalf("after shortcut, distance = %d, want 1 (stale SPT cache?)", d)
	}
	if p, ok := r.ShortestPath(0, 5, Constraint{}); !ok || p.Hops() != 1 {
		t.Fatalf("after shortcut, path = %v,%v, want the 1-hop path", p, ok)
	}
}

// --- steady-state allocation guarantees ---

// TestRouterZeroAllocSteadyState pins the acceptance criterion: after one
// warm-up call, the scratch-backed searches allocate nothing per call.
func TestRouterZeroAllocSteadyState(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	r := NewRouter(g)
	src, dst := topology.NodeID(0), topology.NodeID(36)
	w := func(l topology.LinkID) float64 { return 1 + float64(int(l)%3) }
	excl := NewExclusion()
	c := excl.Constrain(Constraint{})

	cases := []struct {
		name string
		fn   func()
	}{
		{"Distance", func() { r.Distance(src, dst) }},
		{"ShortestDistance", func() { r.ShortestDistance(src, dst, c) }},
		{"ShortestLinks", func() {
			if _, ok := r.ShortestLinks(src, dst, c); !ok {
				t.Fatal("no path")
			}
		}},
		{"MinCostLinks", func() {
			if _, ok := r.MinCostLinks(src, dst, c, w); !ok {
				t.Fatal("no path")
			}
		}},
		{"DisjointLinks", func() {
			if got := r.DisjointLinks(src, dst, 2, c); len(got) != 2 {
				t.Fatalf("got %d disjoint link sets, want 2", len(got))
			}
		}},
	}
	for _, tc := range cases {
		tc.fn() // warm up the arenas
		if avg := testing.AllocsPerRun(20, tc.fn); avg != 0 {
			t.Errorf("%s allocates %.1f/op in steady state, want 0", tc.name, avg)
		}
	}
}
