package bcpd

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

func heartbeatConfig() Config {
	cfg := DefaultConfig()
	cfg.HeartbeatInterval = sim.Duration(5 * time.Millisecond)
	cfg.HeartbeatMiss = 3
	return cfg
}

func TestHeartbeatNoFalsePositives(t *testing.T) {
	tb := newTestbed(t, heartbeatConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 2000); err != nil {
		t.Fatal(err)
	}
	tb.eng.RunFor(2 * time.Second)
	if got := tb.net.Stats().Detections; got != 0 {
		t.Fatalf("%d false detections on a healthy network under load", got)
	}
	if tb.net.Stats().ReportsGenerated != 0 {
		t.Fatal("failure reports without failures")
	}
}

func TestHeartbeatDetectsLinkFailure(t *testing.T) {
	tb := newTestbed(t, heartbeatConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	failAt := sim.Time(100 * time.Millisecond)
	tb.eng.At(failAt, func() { tb.net.FailLink(tb.g.LinkBetween(1, 2)) })
	tb.eng.RunFor(2 * time.Second)

	if tb.net.Stats().Detections == 0 {
		t.Fatal("heartbeat detection never fired")
	}
	// Recovery happened end to end through organic detection.
	switches := tb.net.SourceSwitches(tb.conn.ID)
	if len(switches) != 1 {
		t.Fatalf("switches = %v", switches)
	}
	// Detection latency ≈ (miss+1)·interval = 20 ms; recovery shortly after.
	delay := switches[0].Sub(failAt)
	if delay < 15*time.Millisecond || delay > 60*time.Millisecond {
		t.Fatalf("recovery delay %v outside the heartbeat-detection window", delay)
	}
	if tb.conn.Primary == nil || tb.conn.Primary.Path.Hops() != 4 {
		t.Fatal("backup not promoted")
	}
}

func TestHeartbeatDetectsNodeFailure(t *testing.T) {
	tb := newTestbed(t, heartbeatConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.At(sim.Time(100*time.Millisecond), func() { tb.net.FailNode(1) })
	tb.eng.RunFor(2 * time.Second)
	// Node 1 has several incident links; every one with live monitors fires.
	if tb.net.Stats().Detections < 2 {
		t.Fatalf("detections = %d, want at least the incident links with channels", tb.net.Stats().Detections)
	}
	if got := len(tb.net.SourceSwitches(tb.conn.ID)); got != 1 {
		t.Fatalf("switches = %d", got)
	}
	if tb.conn.Primary == nil || tb.conn.Primary.Path.ContainsNode(1) {
		t.Fatal("recovered primary still crosses the dead node")
	}
}

func TestHeartbeatUpstreamNotification(t *testing.T) {
	// Scheme 2 relies purely on the upstream side: the MsgLinkFailure
	// notification from the downstream detector must reach the upstream
	// node for recovery to happen at all.
	cfg := heartbeatConfig()
	cfg.Scheme = Scheme2
	tb := newTestbed(t, cfg)
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.At(sim.Time(100*time.Millisecond), func() { tb.net.FailLink(tb.g.LinkBetween(1, 2)) })
	tb.eng.RunFor(2 * time.Second)
	if len(tb.net.SourceSwitches(tb.conn.ID)) != 1 {
		t.Fatal("scheme 2 with heartbeat detection did not recover")
	}
}

func TestHeartbeatNotificationLossRecoveredByRCC(t *testing.T) {
	// The upstream notification path is not fire-and-forget: when the
	// reverse link is down too, the downstream detector's MsgLinkFailure
	// sits in the RCC send window and is retransmitted until the link
	// heals. Scheme 2 recovery depends entirely on that notification, so
	// this failure mode exercises the RCC's reliability end to end: crash
	// BOTH directions of the primary's middle link, repair only the
	// reverse direction later, and recovery must still happen — after the
	// repair, driven by a retransmitted frame.
	cfg := heartbeatConfig()
	cfg.Scheme = Scheme2
	rec := &trace.Recorder{}
	cfg.Sink = rec
	tb := newTestbed(t, cfg)
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	fwd := tb.g.LinkBetween(1, 2)
	rev := tb.g.LinkBetween(2, 1)
	failAt := sim.Time(100 * time.Millisecond)
	repairAt := sim.Time(500 * time.Millisecond)
	tb.eng.At(failAt, func() {
		tb.net.FailLink(fwd)
		tb.net.FailLink(rev)
	})
	tb.eng.At(repairAt, func() { tb.net.RepairLink(rev) })
	tb.eng.RunFor(2 * time.Second)

	switches := tb.net.SourceSwitches(tb.conn.ID)
	if len(switches) != 1 {
		t.Fatalf("switches = %v, want exactly 1", switches)
	}
	if switches[0] < repairAt {
		t.Fatalf("source switched at %v, before the reverse link healed at %v",
			time.Duration(switches[0]), time.Duration(repairAt))
	}
	// The notification got through because the RCC kept retransmitting it
	// across the outage, not because anyone resent it at the protocol layer.
	retx := 0
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindRCCRetransmit && ev.Link == rev {
			retx++
		}
	}
	if retx == 0 {
		t.Fatal("no RCC retransmissions on the downed reverse link")
	}
}

func TestHeartbeatRepairSilencesMonitor(t *testing.T) {
	tb := newTestbed(t, heartbeatConfig())
	l := tb.g.LinkBetween(3, 4) // backup link: failure is bookkept, no switch
	tb.eng.At(sim.Time(100*time.Millisecond), func() { tb.net.FailLink(l) })
	tb.eng.At(sim.Time(200*time.Millisecond), func() { tb.net.RepairLink(l) })
	tb.eng.RunFor(2 * time.Second)
	st := tb.net.Stats()
	if st.Detections != 1 {
		t.Fatalf("detections = %d, want exactly 1 (no re-detection after repair)", st.Detections)
	}
	// The repaired channel rejoined as a backup.
	if st.Rejoins == 0 {
		t.Fatal("repaired backup did not rejoin")
	}
}

func TestHeartbeatDisabledKeepsOracle(t *testing.T) {
	tb := newTestbed(t, DefaultConfig()) // no heartbeats
	var l topology.LinkID
	tb.eng.At(sim.Time(50*time.Millisecond), func() {
		l = tb.g.LinkBetween(1, 2)
		tb.net.FailLink(l)
	})
	tb.eng.RunFor(time.Second)
	if tb.net.Stats().Detections != 0 {
		t.Fatal("heartbeat detections while disabled")
	}
	if tb.net.Stats().ReportsGenerated == 0 {
		t.Fatal("oracle detection did not report")
	}
}
