package bcpd

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// priorityScenario builds two connections whose primaries share link 1->2
// and whose single backups share spare bandwidth on links 1->5 and 5->6
// (capacity for only one activation):
//
//	connLow  (degree 8): primary 1->2->3, backup 1->5->6->7->3
//	connHigh (degree 7): primary 1->2->6, backup 1->5->6
//
// Mesh 4x4:
//
//	 0  1  2  3
//	 4  5  6  7
//	 8  9 10 11
//	12 13 14 15
func priorityScenario(t *testing.T, cfg Config) (*Network, *sim.Engine, *topology.Graph, *core.DConnection, *core.DConnection) {
	t.Helper()
	g := topology.NewMesh(4, 4, 10)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	connLow, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2, 3),
		[]topology.Path{path(t, g, 1, 5, 6, 7, 3)}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	connHigh, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2, 6),
		[]topology.Path{path(t, g, 1, 5, 6)}, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if got := mgr.Network().Spare(g.LinkBetween(1, 5)); got != 1 {
		t.Fatalf("spare on 1->5 = %g, want 1 (multiplexed)", got)
	}
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	return net, eng, g, connLow, connHigh
}

func TestWithoutPriorityContentionCanDeadlock(t *testing.T) {
	// Baseline motivating §4.3: with neither delay nor preemption, the two
	// simultaneous Scheme-3 activations race from all four end nodes.
	// connLow's source-side activation claims link 1->5 while connHigh's
	// destination-side activation claims 5->6; each then fails its next
	// claim against the other's hold — BOTH connections suffer
	// multiplexing failures and neither recovers fast. (The backups
	// themselves are intact, so the rejoin machinery later restores them
	// as standbys.)
	net, eng, g, connLow, connHigh := priorityScenario(t, DefaultConfig())
	eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
	eng.RunFor(time.Second)
	if got := net.Stats().MuxFailures; got < 2 {
		t.Fatalf("mux failures = %d, want the mutual kill", got)
	}
	for name, conn := range map[string]*core.DConnection{"low": connLow, "high": connHigh} {
		if conn.Primary == nil || conn.Primary.Role != rtchan.RolePrimary || conn.Primary.Path.ContainsLink(g.LinkBetween(1, 2)) == false {
			t.Fatalf("%s: expected the dead original primary to remain, got %v", name, conn.Primary)
		}
	}
	// The intact backups rejoin as cold standbys after the probes.
	if net.Stats().Rejoins != 2 {
		t.Fatalf("rejoins = %d, want 2 (both unused backups restored)", net.Stats().Rejoins)
	}
	if len(connLow.Backups) != 1 || len(connHigh.Backups) != 1 {
		t.Fatalf("backups not restored: low=%d high=%d", len(connLow.Backups), len(connHigh.Backups))
	}
}

func TestDelayedActivationFavorsHighPriority(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PriorityDelayUnit = sim.Duration(5 * time.Millisecond)
	net, eng, g, connLow, connHigh := priorityScenario(t, cfg)
	eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
	eng.RunFor(time.Second)
	// degree 7 waits 35 ms, degree 8 waits 40 ms: the critical connection
	// claims the shared spare first.
	if connHigh.Primary == nil || connHigh.Primary.Path.Hops() != 2 {
		t.Fatal("high-priority connection did not recover")
	}
	if sw := net.SourceSwitches(connHigh.ID); len(sw) != 0 {
		// No traffic started, so no switches are recorded; the promotion
		// check above is the real assertion. (Guard against API misuse.)
		t.Fatalf("unexpected switches %v", sw)
	}
	if len(connLow.Backups) != 0 && net.Stats().MuxFailures == 0 {
		t.Fatal("low-priority connection should have suffered the mux failure")
	}
	_ = connLow
}

func TestPreemptionRevokesLowPriorityClaim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowPreemption = true
	net, eng, g, connLow, connHigh := priorityScenario(t, cfg)
	eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
	eng.RunFor(time.Second)
	if net.Stats().Preemptions == 0 {
		t.Fatal("no preemption occurred")
	}
	// The high-priority connection recovers; the preempted one is handled
	// as if its backup failed.
	if connHigh.Primary == nil || connHigh.Primary.Path.Hops() != 2 {
		t.Fatal("high-priority connection did not recover")
	}
	if connLow.Primary != nil && connLow.Primary.Path.Hops() == 4 {
		t.Fatal("preempted backup still ended up promoted")
	}
	if err := net.Manager().CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptionNeverHitsHigherPriority(t *testing.T) {
	// Reverse the establishment order so the HIGH priority connection
	// claims first: the low-priority activation must NOT preempt it.
	g := topology.NewMesh(4, 4, 10)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	connHigh, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2, 6),
		[]topology.Path{path(t, g, 1, 5, 6)}, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	connLow, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2, 3),
		[]topology.Path{path(t, g, 1, 5, 6, 7, 3)}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.AllowPreemption = true
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
	eng.RunFor(time.Second)
	if net.Stats().Preemptions != 0 {
		t.Fatal("lower priority preempted a higher-priority claim")
	}
	if connHigh.Primary == nil || connHigh.Primary.Path.Hops() != 2 {
		t.Fatal("high-priority connection lost its claim")
	}
	_ = connLow
}
