package routing

import (
	"sync"

	"github.com/rtcl/bcp/internal/topology"
)

// RouterPool leases Routers for one graph to concurrent workers. A Router is
// not safe for concurrent use — its arenas are single-threaded scratch — so
// parallel drivers (the speculative establishment planners, sweep pools) each
// lease one for the duration of a burst and return it, keeping the warmed
// arenas and per-source SPT caches alive across bursts instead of rebuilding
// them per goroutine spawn.
type RouterPool struct {
	g    *topology.Graph
	mu   sync.Mutex
	free []*Router
}

// NewRouterPool creates an empty pool for g; Routers are built on demand.
func NewRouterPool(g *topology.Graph) *RouterPool {
	return &RouterPool{g: g}
}

// Graph returns the graph the pooled routers search.
func (p *RouterPool) Graph() *topology.Graph { return p.g }

// Get leases a Router. The caller owns it exclusively until Put.
func (p *RouterPool) Get() *Router {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return r
	}
	p.mu.Unlock()
	return NewRouter(p.g)
}

// Put returns a leased Router to the pool. The caller must not use r after.
func (p *RouterPool) Put(r *Router) {
	if r == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, r)
	p.mu.Unlock()
}
