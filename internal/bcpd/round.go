package bcpd

import (
	"fmt"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Dispatch rounds batch the protocol's fan-out. A mass failure makes one
// event — a received control frame, a detection timer — touch many channels,
// and the per-message engine paid per message: one rcc.Submit (timer-heap
// push + tx-timer check) per control, one Schedule per rejoin arm, one
// manager lock acquisition per released link. A round brackets such an event
// and coalesces everything it emits:
//
//   - controls staged per outgoing link, flushed as one SubmitBatch per
//     neighbor in first-touch order (the RCC packs them into S^RCC_max-sized
//     frames exactly as sequential Submits would, since no frame fires
//     mid-callback);
//   - rejoin arms staged and armed as ONE pooled batch timer carrying a flat
//     entry list (batchtimer.go) — no per-channel closures; they all share
//     RejoinTimeout, so they tie only with each other and staging order
//     preserves the per-message firing order;
//   - replenishments requested during the round staged and scheduled as one
//     batch timer the same way (they all share ReplenishDelay);
//   - claim releases batched through core.ReleaseClaimBatch (one lock, one
//     traversal) at the call sites themselves.
//
// Rounds never nest: control delivery is event-driven, so no frame arrives
// and no timer fires while a callback runs. beginRound reports whether it
// opened the round, and only the opener closes it, which makes wrapping
// re-entrant call paths (a notify handler already inside a delivery round)
// safe. Config.PerMessageDispatch disables rounds entirely, keeping the
// sequential engine as the A/B baseline.

// rejoinArm is one staged rejoin-timer arming: the channel identity the
// expiry needs, no closure. cancelled marks an arm whose channel was stopped
// again before the round closed (rejoin confirm racing a report in the same
// frame); it is skipped at flush, exactly as the per-message path's
// Schedule-then-Stop leaves no live timer.
type rejoinArm struct {
	d         *daemon
	chID      rtchan.ChannelID
	connID    rtchan.ConnID
	path      topology.Path
	cancelled bool
}

// dispatchRound is the Network's staging area, reused across rounds.
type dispatchRound struct {
	active bool
	// links lists the LinkIDs touched this round in first-touch order —
	// the order the per-message path would have armed their tx timers in.
	links []topology.LinkID
	// pending[l] holds the controls staged for link l, in submit order.
	pending [][]wireControl
	arms    []rejoinArm
	// probes holds the rejoin probes staged this round, in request order.
	probes []probeEntry
	// repl holds the connections whose replenishment was requested this
	// round, in request order.
	repl []rtchan.ConnID
}

// beginRound opens a dispatch round and reports whether this caller opened
// it (and therefore must close it). Returns false when rounds are disabled
// or one is already active.
func (n *Network) beginRound() bool {
	if n.perMsg || n.round.active {
		return false
	}
	n.round.active = true
	return true
}

// endRound closes the round: staged controls flush as one SubmitBatch per
// touched link, then staged rejoin arms and replenish requests each become
// one live batch timer. Flushing happens inside the event that staged the
// work — same virtual timestamp, no intervening events — so the resulting
// frame and timer schedules are identical to the per-message path's.
func (n *Network) endRound() {
	r := &n.round
	r.active = false
	for _, l := range r.links {
		n.links[l].rccE.SubmitBatch(r.pending[l])
		r.pending[l] = r.pending[l][:0]
	}
	r.links = r.links[:0]
	n.flushRejoinArms()
	n.flushProbes()
	n.flushReplenish()
}

// stageControl queues c for link l until the round closes.
func (n *Network) stageControl(l topology.LinkID, c wireControl) {
	r := &n.round
	if len(r.pending[l]) == 0 {
		r.links = append(r.links, l)
	}
	r.pending[l] = append(r.pending[l], c)
}

// flushRejoinArms turns the round's staged arms into ONE live batch timer
// (batchtimer.go): a single heap insert and zero per-channel closures.
// Cancelled arms are dropped; survivors keep their staging order, which is
// the order the per-message path would have Scheduled them in.
func (n *Network) flushRejoinArms() {
	r := &n.round
	if len(r.arms) == 0 {
		return
	}
	b := n.getRejoinBatch()
	for i := range r.arms {
		a := &r.arms[i]
		delete(a.d.rejoinStaged, a.chID)
		if a.cancelled {
			continue
		}
		idx := int32(len(b.entries))
		b.entries = append(b.entries, rejoinEntry{d: a.d, chID: a.chID, connID: a.connID, path: a.path})
		a.d.rejoinTimers[a.chID] = rejoinRef{batch: b, idx: idx, gen: b.gen}
	}
	for i := range r.arms {
		r.arms[i] = rejoinArm{}
	}
	r.arms = r.arms[:0]
	if len(b.entries) == 0 {
		n.rejoinBatchFree = append(n.rejoinBatchFree, b)
		return
	}
	n.rt.Schedule(n.cfg.RejoinTimeout, b.fire)
}

// flushProbes schedules the round's staged rejoin probes as one batch
// timer, in request order.
func (n *Network) flushProbes() {
	r := &n.round
	if len(r.probes) == 0 {
		return
	}
	b := n.getProbeBatch()
	b.entries = append(b.entries, r.probes...)
	for i := range r.probes {
		r.probes[i] = probeEntry{}
	}
	r.probes = r.probes[:0]
	n.rt.Schedule(n.cfg.RejoinProbeDelay, b.fire)
}

// flushReplenish schedules the round's staged replenish requests as one
// batch timer, in request order.
func (n *Network) flushReplenish() {
	r := &n.round
	if len(r.repl) == 0 {
		return
	}
	b := n.getReplBatch()
	b.conns = append(b.conns, r.repl...)
	r.repl = r.repl[:0]
	n.rt.Schedule(n.cfg.ReplenishDelay, b.fire)
}

// checkRoundQuiescence audits the staging area between events; any residue
// means a round opener failed to close (appended to CheckQuiescence).
func (n *Network) checkRoundQuiescence(v []string) []string {
	if n.round.active {
		v = append(v, "dispatch round left open")
	}
	if len(n.round.links) > 0 || len(n.round.arms) > 0 || len(n.round.probes) > 0 || len(n.round.repl) > 0 {
		v = append(v, fmt.Sprintf("dispatch round residue: %d staged links, %d staged arms, %d staged probes, %d staged replenishes",
			len(n.round.links), len(n.round.arms), len(n.round.probes), len(n.round.repl)))
	}
	return v
}
