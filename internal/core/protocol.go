package core

import (
	"fmt"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// The methods in this file expose the resource plane to the message-level
// protocol engine (internal/bcpd): spare-bandwidth claims made as activation
// messages cross links, promotion of a fully-claimed backup, and single
// channel teardown driven by rejoin-timer expiry.
//
// Claims are keyed by channel so that the bidirectional activation of
// Scheme 3 — where the source-side and destination-side activation messages
// can both try to claim the same link — stays idempotent.

// SetProtocolTrace attaches a protocol-event sink to the resource plane's
// claim paths (claim, release, convert, preempt, rejoin re-registration).
// clock supplies timestamps — the protocol engine passes its *sim.Engine.
// A nil sink disables emission; the residual cost is one branch per call.
func (m *Manager) SetProtocolTrace(s trace.Sink, clock trace.Clock) {
	defer m.beginWrite()()
	m.traceEm = trace.NewEmitter(s)
	m.traceClock = clock
}

// emitClaim records a claim-path event. Callers must hold the write lock
// and have checked m.traceEm.Enabled(). The channel is resolved to its
// connection so stream consumers can attribute claims without a side table.
func (m *Manager) emitClaim(kind trace.Kind, l topology.LinkID, ch rtchan.ChannelID, aux int64) {
	var conn rtchan.ConnID
	if c := m.plan.net.Channel(ch); c != nil {
		conn = c.Conn
	}
	m.traceEm.Emit(trace.Event{
		At:      m.traceClock.Now(),
		Kind:    kind,
		Node:    topology.NoNode,
		Link:    l,
		Conn:    conn,
		Channel: ch,
		Aux:     aux,
	})
}

// ClaimSpareFor claims bw of spare bandwidth on link l for backup channel
// ch. It reports success; a repeated claim by the same channel is a no-op
// success. Failure means a multiplexing failure on this link (§3.3).
func (m *Manager) ClaimSpareFor(l topology.LinkID, ch rtchan.ChannelID, bw float64) bool {
	defer m.beginWrite()()
	return m.claimSpareFor(l, ch, bw)
}

func (m *Manager) claimSpareFor(l topology.LinkID, ch rtchan.ChannelID, bw float64) bool {
	lm := &m.plan.mux[l]
	if _, dup := lm.claims[ch]; dup {
		return true
	}
	if lm.available() < bw-1e-9 {
		return false
	}
	if lm.claims == nil {
		lm.claims = make(map[rtchan.ChannelID]float64)
	}
	lm.claims[ch] = bw
	lm.claimed += bw
	if m.traceEm.Enabled() {
		m.emitClaim(trace.KindClaim, l, ch, 0)
	}
	return true
}

// DegreeOf returns the multiplexing degree of a backup channel, or a very
// large value when unknown (primaries and foreign channels are never
// preempted).
func (m *Manager) DegreeOf(ch rtchan.ChannelID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.degreeOf(ch)
}

func (m *Manager) degreeOf(ch rtchan.ChannelID) int {
	c := m.plan.net.Channel(ch)
	if c == nil {
		return 1 << 30
	}
	conn := m.plan.conns[c.Conn]
	if conn == nil {
		return 1 << 30
	}
	for i, b := range conn.Backups {
		if b.ID == ch {
			return degreeAt(conn, i)
		}
	}
	return 1 << 30
}

// PreemptClaim implements the preemption flavor of priority-based
// activation (§4.3): when link l has no spare left for backup ch (degree
// alpha), a claim held by a strictly lower-priority backup (larger degree)
// is revoked to make room. It returns the victim channel (to be handled as
// if disabled by a component failure) and whether preemption succeeded.
func (m *Manager) PreemptClaim(l topology.LinkID, ch rtchan.ChannelID, alpha int, bw float64) (rtchan.ChannelID, bool) {
	defer m.beginWrite()()
	lm := &m.plan.mux[l]
	var victim rtchan.ChannelID
	victimDegree := alpha
	for held, heldBW := range lm.claims {
		if heldBW+lm.available() < bw-1e-9 {
			continue // evicting this claim would not free enough
		}
		if d := m.degreeOf(held); d > victimDegree {
			victim = held
			victimDegree = d
		}
	}
	if victim == 0 {
		return 0, false
	}
	m.releaseClaimFor(l, victim)
	if !m.claimSpareFor(l, ch, bw) {
		return 0, false // arithmetic raced; give up
	}
	if m.traceEm.Enabled() {
		m.emitClaim(trace.KindPreempt, l, ch, int64(victim))
	}
	return victim, true
}

// ClaimBatch claims bw of spare bandwidth on every link of links for backup
// channel ch under a single write transaction. Decisions are bit-identical
// to a sequential ClaimSpareFor loop: links are claimed in slice order and
// the first multiplexing failure stops the batch, leaving the earlier claims
// in place (exactly the state the abandoned loop would leave for the caller
// to release). It returns the index of the failing link and false, or
// len(links) and true when every claim was admitted.
func (m *Manager) ClaimBatch(links []topology.LinkID, ch rtchan.ChannelID, bw float64) (int, bool) {
	defer m.beginWrite()()
	return m.claimBatch(links, ch, bw)
}

func (m *Manager) claimBatch(links []topology.LinkID, ch rtchan.ChannelID, bw float64) (int, bool) {
	for i, l := range links {
		if !m.claimSpareFor(l, ch, bw) {
			return i, false
		}
	}
	return len(links), true
}

// ReleaseClaimFor undoes a claim (e.g. when an activation is abandoned after
// a downstream multiplexing failure).
func (m *Manager) ReleaseClaimFor(l topology.LinkID, ch rtchan.ChannelID) {
	defer m.beginWrite()()
	m.releaseClaimFor(l, ch)
}

// ReleaseClaimBatch undoes ch's claims on every link of links under a single
// write transaction — the batched sibling of a ReleaseClaimFor loop. Links
// holding no claim for ch are skipped, as in the sequential loop.
func (m *Manager) ReleaseClaimBatch(links []topology.LinkID, ch rtchan.ChannelID) {
	defer m.beginWrite()()
	for _, l := range links {
		m.releaseClaimFor(l, ch)
	}
}

func (m *Manager) releaseClaimFor(l topology.LinkID, ch rtchan.ChannelID) {
	lm := &m.plan.mux[l]
	if bw, ok := lm.claims[ch]; ok {
		delete(lm.claims, ch)
		lm.claimed -= bw
		if m.traceEm.Enabled() {
			m.emitClaim(trace.KindClaimRelease, l, ch, 0)
		}
	}
}

// OutstandingClaims counts the spare-bandwidth claims currently held across
// every link. Claims are transient — made as activation messages cross links,
// then converted (promotion) or released (abandonment, teardown) — so at any
// protocol-quiescent point the count must be zero; a positive count there
// means some recovery path leaked its claim.
func (m *Manager) OutstandingClaims() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for i := range m.plan.mux {
		n += len(m.plan.mux[i].claims)
	}
	return n
}

// ClaimedOn reports whether channel ch holds a claim on link l.
func (m *Manager) ClaimedOn(l topology.LinkID, ch rtchan.ChannelID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.plan.mux[l].claims[ch]
	return ok
}

// ActivateClaimed promotes backup b of conn to primary after the protocol
// has claimed spare bandwidth on every link of its path, and re-sizes the
// spare pools of the touched links (§4.4 reconfiguration). Links missing a
// claim are claimed here (covering the race where both end-node activations
// stop exactly at the meeting node).
func (m *Manager) ActivateClaimed(connID rtchan.ConnID, b *rtchan.Channel) error {
	defer m.beginWrite()()
	conn := m.plan.conns[connID]
	if conn == nil {
		return fmt.Errorf("core: unknown connection %d", connID)
	}
	bw := b.Bandwidth()
	if i, ok := m.claimBatch(b.Path.Links(), b.ID, bw); !ok {
		return fmt.Errorf("core: link %d has no claim and no spare for channel %d", b.Path.Links()[i], b.ID)
	}
	touched := m.takeTouched()
	for _, l := range b.Path.Links() {
		lm := &m.plan.mux[l]
		delete(lm.claims, b.ID)
		lm.claimed -= bw
		if m.traceEm.Enabled() {
			m.emitClaim(trace.KindClaimConvert, l, b.ID, 0)
		}
	}
	if err := m.promoteBackup(conn, b, touched); err != nil {
		return err
	}
	return m.reconfigureLinks(touched)
}

// TeardownChannel removes a single channel of a connection (rejoin-timer
// expiry or channel-closure, §4.4) and re-sizes affected spare pools. If the
// connection ends with no channels at all it is deleted.
func (m *Manager) TeardownChannel(connID rtchan.ConnID, ch rtchan.ChannelID) error {
	defer m.beginWrite()()
	conn := m.plan.conns[connID]
	if conn == nil {
		return fmt.Errorf("core: unknown connection %d", connID)
	}
	c := m.plan.net.Channel(ch)
	if c == nil {
		return nil // already gone
	}
	// Abandon any outstanding claims.
	for _, l := range c.Path.Links() {
		m.releaseClaimFor(l, ch)
	}
	touched := m.takeTouched()
	if err := m.dropChannel(conn, c, touched); err != nil {
		return err
	}
	if conn.Primary == nil && len(conn.Backups) == 0 {
		delete(m.plan.conns, connID)
		m.plan.scache.forget(connID)
	}
	return m.reconfigureLinks(touched)
}

// RestoreAsBackup re-registers a repaired channel (rejoin, state U -> B,
// Figure 6): the channel keeps its identity but re-enters the multiplexing
// engine as a backup with the given degree. Fails if the spare pools can no
// longer accommodate it.
func (m *Manager) RestoreAsBackup(connID rtchan.ConnID, ch rtchan.ChannelID, alpha int) error {
	defer m.beginWrite()()
	conn := m.plan.conns[connID]
	if conn == nil {
		return fmt.Errorf("core: unknown connection %d", connID)
	}
	c := m.plan.net.Channel(ch)
	if c == nil {
		return fmt.Errorf("core: unknown channel %d", ch)
	}
	for _, b := range conn.Backups {
		if b.ID == ch {
			return nil // still registered
		}
	}
	if c.Role == rtchan.RolePrimary {
		// A repaired primary rejoins as a backup: release its dedicated
		// bandwidth first. If it was still listed as the connection's
		// primary (no backup was ever activated), the connection is left
		// primary-less until an activation promotes the rejoined channel.
		if err := m.plan.net.Demote(ch, len(conn.Backups)+1); err != nil {
			return err
		}
		if conn.Primary != nil && conn.Primary.ID == ch {
			conn.Primary = nil
			m.primaryChanged(conn)
		}
	}
	if err := m.addBackup(conn, c, alpha); err != nil {
		return err
	}
	conn.Backups = append(conn.Backups, c)
	conn.Degrees = append(conn.Degrees, alpha)
	if m.traceEm.Enabled() {
		m.traceEm.Emit(trace.Event{
			At:      m.traceClock.Now(),
			Kind:    trace.KindInstall,
			Node:    topology.NoNode,
			Link:    topology.NoLink,
			Conn:    connID,
			Channel: ch,
			To:      trace.StateB,
			Aux:     int64(c.Path.Hops()),
		})
	}
	return nil
}
