// Package sched implements the run-time side of the real-time channel
// service — the paper's Real-time Message Transmission Protocol (RMTP)
// analogue: a token-bucket traffic regulator that smooths bursty sources,
// and a non-preemptive static-priority link scheduler with three service
// classes (RCC control traffic above real-time data above best-effort).
//
// The scheduler drives packet timing in protocol-mode simulations: each link
// serializes packets at its capacity, delivering them after a propagation
// delay. Failed links drop everything silently, matching the paper's crash
// model.
package sched

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/runtime"
	"github.com/rtcl/bcp/internal/sim"
)

// Class is a packet service class; lower values are served first.
type Class uint8

// Service classes. The RCC network rides above real-time data so that
// control messages keep their delay bound even through congested links
// (the capacity reserved for RCCs makes this sound; see §5.2).
const (
	ClassControl Class = iota
	ClassRealTime
	ClassBestEffort
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassRealTime:
		return "realtime"
	case ClassBestEffort:
		return "besteffort"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Packet is one scheduled transmission unit.
type Packet struct {
	Class   Class
	Size    int // bytes
	Payload interface{}
}

// LinkStats counts a link's scheduler activity.
type LinkStats struct {
	Enqueued     uint64
	Delivered    uint64
	DroppedDown  uint64 // dropped because the link was down
	DroppedQueue uint64 // dropped because the class queue overflowed
	BusyTime     sim.Duration
}

// classQueue is a FIFO with a head index: popping advances head instead of
// reslicing away the backing array, and a drained queue resets to reuse its
// capacity, so steady-state traffic enqueues without allocating.
type classQueue struct {
	q    []Packet
	head int
}

func (cq *classQueue) len() int { return len(cq.q) - cq.head }

func (cq *classQueue) push(p Packet) { cq.q = append(cq.q, p) }

func (cq *classQueue) pop() Packet {
	p := cq.q[cq.head]
	cq.q[cq.head] = Packet{}
	cq.head++
	if cq.head == len(cq.q) {
		cq.q = cq.q[:0]
		cq.head = 0
	}
	return p
}

func (cq *classQueue) clear() {
	for i := cq.head; i < len(cq.q); i++ {
		cq.q[i] = Packet{}
	}
	cq.q = cq.q[:0]
	cq.head = 0
}

// Link is one simplex link's transmitter: a serializing resource at a fixed
// capacity with per-class FIFO queues and a propagation delay.
//
// The transmit loop runs on two closures built once at construction
// (txDoneFn, deliverFn); the packet being serialized and those in
// propagation live in cur and the flight queue rather than in per-event
// closures, so a busy link schedules events without allocating.
type Link struct {
	eng     runtime.Runtime
	bps     float64 // capacity in bits/second
	prop    sim.Duration
	deliver func(Packet)
	onDrop  func(Packet) // observes every dropped packet; nil = silent drop

	queues   [numClasses]classQueue
	maxQueue int
	busy     bool
	down     bool
	stats    LinkStats

	cur       Packet     // packet currently being serialized
	flight    classQueue // packets in propagation, in delivery order
	txDoneFn  func()
	deliverFn func()
}

// NewLink creates a transmitter. capacityMbps is the link bandwidth in
// Mbps (1e6 bits/s); prop is the propagation delay; deliver is invoked in
// simulated time when a packet reaches the far end. maxQueue bounds each
// class queue (0 = unbounded).
func NewLink(eng runtime.Runtime, capacityMbps float64, prop sim.Duration, maxQueue int, deliver func(Packet)) *Link {
	if capacityMbps <= 0 {
		panic("sched: non-positive capacity")
	}
	if deliver == nil {
		panic("sched: nil deliver")
	}
	l := &Link{eng: eng, bps: capacityMbps * 1e6, prop: prop, maxQueue: maxQueue, deliver: deliver}
	l.txDoneFn = func() {
		if !l.down {
			// The packet enters propagation. The propagation delay is fixed
			// per link and transmissions serialize, so deliveries fire in
			// flight-queue order.
			l.flight.push(l.cur)
			l.eng.Schedule(l.prop, l.deliverFn)
		} else {
			l.stats.DroppedDown++
			l.drop(l.cur)
			l.cur = Packet{}
		}
		l.startNext()
	}
	l.deliverFn = func() {
		p := l.flight.pop()
		l.stats.Delivered++
		l.deliver(p)
	}
	return l
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetDropHandler registers h to observe every packet the link drops (link
// down, class-queue overflow, queue clear on failure). The caller uses it to
// reclaim pooled payloads that would otherwise leak when their packet is
// lost. h runs synchronously at the drop site; it must not re-enter the link.
func (l *Link) SetDropHandler(h func(Packet)) { l.onDrop = h }

func (l *Link) drop(p Packet) {
	if l.onDrop != nil {
		l.onDrop(p)
	}
}

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// SetDown marks the link failed or repaired. Packets queued or in flight
// when the link goes down are lost (a crashed link "loses all messages
// transmitted over it").
func (l *Link) SetDown(down bool) {
	l.down = down
	if down {
		// Queued packets are lost; packets already in propagation (the
		// flight queue) still arrive — they left the transmitter before the
		// crash.
		for c := range l.queues {
			cq := &l.queues[c]
			l.stats.DroppedDown += uint64(cq.len())
			if l.onDrop != nil {
				for i := cq.head; i < len(cq.q); i++ {
					l.onDrop(cq.q[i])
				}
			}
			cq.clear()
		}
	}
}

// Each visits every packet currently inside the transmitter: queued, being
// serialized, and in propagation. A packet being serialized when the link
// went down is included — it is still owned by the link until its
// transmission completes and the drop handler reclaims it.
func (l *Link) Each(fn func(Packet)) {
	for c := range l.queues {
		cq := &l.queues[c]
		for i := cq.head; i < len(cq.q); i++ {
			fn(cq.q[i])
		}
	}
	if l.busy {
		fn(l.cur)
	}
	for i := l.flight.head; i < len(l.flight.q); i++ {
		fn(l.flight.q[i])
	}
}

// QueueLen returns the number of queued packets across classes.
func (l *Link) QueueLen() int {
	n := 0
	for c := range l.queues {
		n += l.queues[c].len()
	}
	return n
}

// Enqueue submits a packet for transmission.
func (l *Link) Enqueue(p Packet) {
	if p.Class >= numClasses {
		panic(fmt.Sprintf("sched: invalid class %d", p.Class))
	}
	if p.Size <= 0 {
		panic(fmt.Sprintf("sched: invalid size %d", p.Size))
	}
	if l.down {
		l.stats.DroppedDown++
		l.drop(p)
		return
	}
	if l.maxQueue > 0 && l.queues[p.Class].len() >= l.maxQueue {
		l.stats.DroppedQueue++
		l.drop(p)
		return
	}
	l.stats.Enqueued++
	l.queues[p.Class].push(p)
	if !l.busy {
		l.startNext()
	}
}

// startNext dequeues the highest-priority packet and transmits it.
func (l *Link) startNext() {
	found := false
	for c := Class(0); c < numClasses; c++ {
		if l.queues[c].len() > 0 {
			l.cur = l.queues[c].pop()
			found = true
			break
		}
	}
	if !found {
		l.busy = false
		return
	}
	l.busy = true
	txTime := sim.Duration(float64(l.cur.Size*8) / l.bps * float64(time.Second))
	l.stats.BusyTime += txTime
	l.eng.Schedule(txTime, l.txDoneFn)
}

// TokenBucket is the RMTP traffic regulator: tokens accrue at Rate per
// second up to Burst; sending a message of cost c requires c tokens.
type TokenBucket struct {
	Rate  float64 // tokens per second
	Burst float64 // bucket depth

	tokens float64
	last   sim.Time
}

// NewTokenBucket creates a full bucket.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic("sched: non-positive token bucket parameters")
	}
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst}
}

func (tb *TokenBucket) refill(now sim.Time) {
	if now > tb.last {
		tb.tokens += tb.Rate * now.Sub(tb.last).Seconds()
		if tb.tokens > tb.Burst {
			tb.tokens = tb.Burst
		}
		tb.last = now
	}
}

// Admit consumes cost tokens if available at time now, reporting success.
func (tb *TokenBucket) Admit(now sim.Time, cost float64) bool {
	tb.refill(now)
	if tb.tokens+1e-12 < cost {
		return false
	}
	tb.tokens -= cost
	return true
}

// NextEligible returns the earliest time at or after now when a message of
// the given cost could be admitted (without consuming tokens).
func (tb *TokenBucket) NextEligible(now sim.Time, cost float64) sim.Time {
	tb.refill(now)
	if tb.tokens >= cost {
		return now
	}
	need := cost - tb.tokens
	wait := sim.Duration(need / tb.Rate * float64(time.Second))
	return now.Add(wait)
}

// Tokens returns the current token count as of the given time.
func (tb *TokenBucket) Tokens(now sim.Time) float64 {
	tb.refill(now)
	return tb.tokens
}
