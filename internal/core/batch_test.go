package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// The batch pipeline's contract is bit-identical equivalence: EstablishBatch
// must leave the manager in exactly the state a sequential Establish loop
// would — same connection and channel ids, same paths, same Π sets in the
// same order, same spare pools, same rejections. These tests check that
// exhaustively over randomized topologies, workloads, worker counts, and
// configuration variants (including the strict-plan paths: delay contracts
// and load-aware routing). The -race CI job runs them with the race
// detector across the planner/committer concurrency.

type batchVariant struct {
	name string
	cfg  func(seed int64) Config
	spec func(rng *rand.Rand) rtchan.TrafficSpec
}

func defaultBatchSpec(rng *rand.Rand) rtchan.TrafficSpec {
	spec := rtchan.DefaultSpec()
	if rng.Intn(4) == 0 {
		spec.Bandwidth = 1 + float64(rng.Intn(3))
	}
	return spec
}

func batchVariants() []batchVariant {
	return []batchVariant{
		{
			name: "default",
			cfg:  func(int64) Config { return DefaultConfig() },
			spec: defaultBatchSpec,
		},
		{
			name: "delay-bound", // strict plans: explicit delay contracts
			cfg:  func(int64) Config { return DefaultConfig() },
			spec: func(rng *rand.Rand) rtchan.TrafficSpec {
				spec := defaultBatchSpec(rng)
				if rng.Intn(2) == 0 {
					spec.DelayBound = time.Duration(5+rng.Intn(50)) * time.Millisecond
				}
				return spec
			},
		},
		{
			name: "load-aware", // strict plans: spare-aware backup weights
			cfg: func(int64) Config {
				cfg := DefaultConfig()
				cfg.BackupRouting = RouteLoadAware
				return cfg
			},
			spec: defaultBatchSpec,
		},
		{
			name: "max-flow",
			cfg: func(int64) Config {
				cfg := DefaultConfig()
				cfg.BackupRouting = RouteMaxFlow
				return cfg
			},
			spec: defaultBatchSpec,
		},
		{
			name: "tiebreak", // randomized routing: must fall back to sequential
			cfg: func(seed int64) Config {
				cfg := DefaultConfig()
				cfg.TieBreak = rand.New(rand.NewSource(seed + 7))
				return cfg
			},
			spec: defaultBatchSpec,
		},
	}
}

// batchTopology builds a deliberately tight network so a good fraction of
// requests are rejected: rejections must be bit-identical too.
func batchTopology(rng *rand.Rand, seed int64) *topology.Graph {
	switch rng.Intn(3) {
	case 0:
		return topology.NewTorus(4+rng.Intn(3), 4+rng.Intn(3), 4+float64(rng.Intn(4)))
	case 1:
		return topology.NewMesh(4+rng.Intn(3), 4+rng.Intn(3), 5+float64(rng.Intn(4)))
	default:
		return topology.NewRandom(24+rng.Intn(12), 3.5, 5, seed)
	}
}

func batchRequests(rng *rand.Rand, g *topology.Graph, n int, spec func(*rand.Rand) rtchan.TrafficSpec) []EstablishRequest {
	reqs := make([]EstablishRequest, 0, n)
	nodes := g.NumNodes()
	for len(reqs) < n {
		s := topology.NodeID(rng.Intn(nodes))
		d := topology.NodeID(rng.Intn(nodes))
		if s == d && rng.Intn(8) != 0 {
			continue // keep a few src==dst requests: rejections must match too
		}
		degrees := make([]int, rng.Intn(3))
		for j := range degrees {
			degrees[j] = 1 + rng.Intn(6)
		}
		reqs = append(reqs, EstablishRequest{Src: s, Dst: d, Spec: spec(rng), Degrees: degrees})
	}
	return reqs
}

// requireSameManagers fails unless the two managers are bit-identical in
// every externally observable and every multiplexing-internal respect.
func requireSameManagers(t *testing.T, ctx string, ms, mb *Manager) {
	t.Helper()
	if ms.nextConn != mb.nextConn {
		t.Fatalf("%s: nextConn %d vs %d", ctx, ms.nextConn, mb.nextConn)
	}
	if len(ms.plan.order) != len(mb.plan.order) {
		t.Fatalf("%s: order length %d vs %d", ctx, len(ms.plan.order), len(mb.plan.order))
	}
	for i, id := range ms.plan.order {
		if mb.plan.order[i] != id {
			t.Fatalf("%s: order[%d] = %d vs %d", ctx, i, id, mb.plan.order[i])
		}
	}
	for id, cs := range ms.plan.conns {
		cb := mb.plan.conns[id]
		if cb == nil {
			t.Fatalf("%s: conn %d missing from batch manager", ctx, id)
		}
		if cs.Src != cb.Src || cs.Dst != cb.Dst {
			t.Fatalf("%s: conn %d endpoints differ", ctx, id)
		}
		requireSameChannel(t, ctx, cs.Primary, cb.Primary)
		if len(cs.Backups) != len(cb.Backups) {
			t.Fatalf("%s: conn %d backups %d vs %d", ctx, id, len(cs.Backups), len(cb.Backups))
		}
		for i := range cs.Backups {
			requireSameChannel(t, ctx, cs.Backups[i], cb.Backups[i])
			if cs.Degrees[i] != cb.Degrees[i] {
				t.Fatalf("%s: conn %d degree[%d] %d vs %d", ctx, id, i, cs.Degrees[i], cb.Degrees[i])
			}
		}
	}
	if len(mb.plan.conns) != len(ms.plan.conns) {
		t.Fatalf("%s: conn count %d vs %d", ctx, len(ms.plan.conns), len(mb.plan.conns))
	}
	g := ms.Graph()
	for l := 0; l < g.NumLinks(); l++ {
		ll := topology.LinkID(l)
		if ds, db := ms.plan.net.Dedicated(ll), mb.plan.net.Dedicated(ll); math.Abs(ds-db) > 1e-9 {
			t.Fatalf("%s: link %d dedicated %g vs %g", ctx, l, ds, db)
		}
		if ss, sb := ms.plan.net.Spare(ll), mb.plan.net.Spare(ll); math.Abs(ss-sb) > 1e-9 {
			t.Fatalf("%s: link %d spare %g vs %g", ctx, l, ss, sb)
		}
		lms, lmb := &ms.plan.mux[l], &mb.plan.mux[l]
		if len(lms.entries) != len(lmb.entries) {
			t.Fatalf("%s: link %d entry count %d vs %d", ctx, l, len(lms.entries), len(lmb.entries))
		}
		for i := range lms.entries {
			es, eb := &lms.entries[i], &lmb.entries[i]
			if es.ch.ID != eb.ch.ID || es.alpha != eb.alpha {
				t.Fatalf("%s: link %d entry %d: chan %d/α%d vs chan %d/α%d",
					ctx, l, i, es.ch.ID, es.alpha, eb.ch.ID, eb.alpha)
			}
			if math.Abs(es.req-eb.req) > 1e-9 {
				t.Fatalf("%s: link %d entry %d req %g vs %g", ctx, l, i, es.req, eb.req)
			}
			if len(es.pi) != len(eb.pi) {
				t.Fatalf("%s: link %d entry %d Π size %d vs %d", ctx, l, i, len(es.pi), len(eb.pi))
			}
			for j := range es.pi {
				if es.pi[j] != eb.pi[j] {
					t.Fatalf("%s: link %d entry %d Π[%d] = %d vs %d", ctx, l, i, j, es.pi[j], eb.pi[j])
				}
			}
		}
		if rs, rb := lms.requiredSpareRO(), lmb.requiredSpareRO(); math.Abs(rs-rb) > 1e-9 {
			t.Fatalf("%s: link %d required spare %g vs %g", ctx, l, rs, rb)
		}
	}
}

func requireSameChannel(t *testing.T, ctx string, a, b *rtchan.Channel) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: channel presence differs", ctx)
	}
	if a == nil {
		return
	}
	if a.ID != b.ID {
		t.Fatalf("%s: channel id %d vs %d", ctx, a.ID, b.ID)
	}
	la, lb := a.Path.Links(), b.Path.Links()
	if len(la) != len(lb) {
		t.Fatalf("%s: channel %d path length %d vs %d", ctx, a.ID, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s: channel %d link[%d] %d vs %d", ctx, a.ID, i, la[i], lb[i])
		}
	}
}

func TestEstablishBatchMatchesSequential(t *testing.T) {
	workersList := []int{2, 3, 8}
	for _, v := range batchVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := batchTopology(rng, seed)
				reqs := batchRequests(rng, g, 90, v.spec)

				ms := NewManager(g, v.cfg(seed))
				seqConns := make([]*DConnection, len(reqs))
				seqErrs := make([]error, len(reqs))
				for i := range reqs {
					r := &reqs[i]
					seqConns[i], seqErrs[i] = ms.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
				}

				for _, workers := range workersList {
					mb := NewManager(g, v.cfg(seed))
					res := mb.EstablishBatch(reqs, BatchOptions{Workers: workers})
					ctx := v.name + "/" + string(rune('0'+workers)) + "w"
					if got := res.Established + res.Rejected; got != len(reqs) {
						t.Fatalf("%s seed %d: %d outcomes for %d requests", ctx, seed, got, len(reqs))
					}
					for i := range reqs {
						if (seqErrs[i] == nil) != (res.Errs[i] == nil) {
							t.Fatalf("%s seed %d req %d: sequential err %v, batch err %v",
								ctx, seed, i, seqErrs[i], res.Errs[i])
						}
						if seqErrs[i] != nil && seqErrs[i].Error() != res.Errs[i].Error() {
							t.Fatalf("%s seed %d req %d: error %q vs %q",
								ctx, seed, i, seqErrs[i], res.Errs[i])
						}
						if seqConns[i] != nil && seqConns[i].ID != res.Conns[i].ID {
							t.Fatalf("%s seed %d req %d: conn id %d vs %d",
								ctx, seed, i, seqConns[i].ID, res.Conns[i].ID)
						}
					}
					requireSameManagers(t, ctx, ms, mb)
					if err := mb.CheckMuxInvariants(); err != nil {
						t.Fatalf("%s seed %d: %v", ctx, seed, err)
					}
					if err := mb.plan.net.CheckInvariants(); err != nil {
						t.Fatalf("%s seed %d: %v", ctx, seed, err)
					}
				}
			}
		})
	}
}

// TestEstablishBatchReplans pins that the pipeline actually exercises both
// the speculative fast path and the replan path on a contended workload (if
// every plan were replanned the pipeline would silently degrade to
// sequential; if none were, the validation logic would be untested).
func TestEstablishBatchReplans(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := topology.NewTorus(5, 5, 4)
	reqs := batchRequests(rng, g, 150, defaultBatchSpec)
	m := NewManager(g, DefaultConfig())
	res := m.EstablishBatch(reqs, BatchOptions{Workers: 4})
	if res.Planned+res.Replanned != len(reqs) {
		t.Fatalf("planned %d + replanned %d != %d requests", res.Planned, res.Replanned, len(reqs))
	}
	if res.Planned == 0 {
		t.Fatal("no plan survived speculation on a 25-node torus; validation is too pessimistic")
	}
	if res.Established == 0 || res.Rejected == 0 {
		t.Fatalf("workload not contended enough: %d established, %d rejected", res.Established, res.Rejected)
	}
}

// TestEstablishBatchInterleavesWithForeignWrites checks correctness (not
// identity) when a batch races other mutating entry points: the epoch check
// must force replans instead of committing stale plans.
func TestEstablishBatchSequentialFallback(t *testing.T) {
	g := topology.NewTorus(4, 4, 10)
	m := NewManager(g, DefaultConfig())
	reqs := []EstablishRequest{
		{Src: 0, Dst: 5, Spec: rtchan.DefaultSpec(), Degrees: []int{1}},
		{Src: 1, Dst: 6, Spec: rtchan.DefaultSpec(), Degrees: []int{2}},
	}
	res := m.EstablishBatch(reqs, BatchOptions{Workers: 0})
	if res.Established != 2 {
		t.Fatalf("sequential fallback established %d of 2", res.Established)
	}
	if res.Planned != 0 || res.Replanned != 0 {
		t.Fatalf("fallback path should not report pipeline stats, got %d/%d", res.Planned, res.Replanned)
	}
}
