// Package bcpd is the message-level BCP protocol engine: one BCP daemon per
// node, exchanging failure reports, activation messages, and rejoin traffic
// over per-link real-time control channels (internal/rcc), with data packets
// flowing through priority link schedulers (internal/sched) — all inside a
// deterministic discrete-event simulation (internal/sim).
//
// Where internal/core gives the transactional view the paper's tables are
// computed from, this package executes the protocol of §4 and §5 in
// simulated time: detection latency, per-hop control delays, channel-state
// machines (N/P/B/U, Figure 4), the three channel-switching schemes
// (Figure 5), spare-bandwidth claims with multiplexing failures, soft-state
// rejoin timers and channel repair (Figure 6), and the data-message loss of
// Figure 8.
//
// The daemons mutate the shared resource plane only through core.Manager's
// public entry points (claims, activation, teardown, rejoin), which
// serialize behind the manager's single-writer lock — so the simulation can
// coexist with concurrent read-side users of the same manager (e.g. failure
// sweeps through TrialViews), though the event loop itself is
// single-threaded.
package bcpd

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rcc"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/runtime"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
	"github.com/rtcl/bcp/internal/wire"
)

// Scheme selects the failure-reporting / channel-switching scheme of §4.2.
type Scheme uint8

const (
	// Scheme1: the downstream neighbor of the failed component reports to
	// the channel destination, which activates the backup toward the
	// source; data resumes when the source receives the activation.
	Scheme1 Scheme = 1
	// Scheme2: the upstream neighbor reports to the source, which activates
	// toward the destination and resumes data immediately.
	Scheme2 Scheme = 2
	// Scheme3: both of the above; activations meeting in the middle are
	// discarded. The paper's choice.
	Scheme3 Scheme = 3
)

// Config parameterizes the protocol engine.
type Config struct {
	// Scheme is the channel-switching scheme (default Scheme3).
	Scheme Scheme
	// RCC are the control-channel parameters.
	RCC rcc.Params
	// PropDelay is the per-link propagation delay.
	PropDelay sim.Duration
	// DetectionLatency is the time from a component crash to its neighbors
	// noticing ([HAN97a] is out of scope; this models its output).
	DetectionLatency sim.Duration
	// RejoinTimeout is the soft-state timer for unhealthy channels (§4.4).
	RejoinTimeout sim.Duration
	// RejoinProbeDelay is how long the source waits after a failure report
	// before sending a rejoin-request along the broken path.
	RejoinProbeDelay sim.Duration
	// DataMsgSize is the size of one data message in bytes.
	DataMsgSize int
	// MaxQueue bounds each link scheduler class queue (0 = unbounded).
	MaxQueue int

	// PriorityDelayUnit enables the delayed-activation flavor of
	// priority-based activation (§4.3): a backup with multiplexing degree α
	// waits α·PriorityDelayUnit before its activation message is sent, so
	// more critical connections claim spare bandwidth first. Zero disables.
	PriorityDelayUnit sim.Duration
	// AllowPreemption enables the preemption flavor of §4.3: when a link's
	// spare is exhausted, an activation may revoke the claim of a strictly
	// lower-priority (larger-degree) backup, which is then handled as if it
	// had failed.
	AllowPreemption bool

	// ReplenishDelay, when positive, restores a connection's backup count
	// this long after a successful recovery (§4.4: resource reconfiguration
	// is not time-critical, so replenishment runs well after switching).
	// The new backups reuse the connection's last configured degree.
	ReplenishDelay sim.Duration
	// ReplenishTarget is the backup count to restore (default 1).
	ReplenishTarget int

	// PerMessageDispatch disables dispatch rounds (round.go): every control
	// is submitted, every rejoin timer armed, and every claim released one
	// at a time, as the engine did before batching. The protocol outcome is
	// identical — this exists as the A/B baseline for the batched fan-out
	// benchmarks and the equivalence property tests.
	PerMessageDispatch bool

	// HeartbeatInterval enables heartbeat-based failure detection: every
	// daemon emits a heartbeat per outgoing link at this interval, and the
	// downstream neighbor declares the link failed after HeartbeatMiss
	// silent intervals. Zero (the default) keeps oracle detection:
	// FailLink/FailNode notify the neighbors after DetectionLatency.
	HeartbeatInterval sim.Duration
	// HeartbeatMiss is the consecutive-miss threshold (default 3).
	HeartbeatMiss int

	// Sink, when non-nil, receives a typed trace.Event for every protocol
	// occurrence (detection, report and activation hops, Figure-4 state
	// transitions, claims, multiplexing failures, rejoins, teardowns, RCC
	// retransmissions/ACKs), timestamped in simulated time. Consumed by the
	// conformance checker, the metrics aggregator, and the bcptrace tool.
	// A nil sink is free on the hot path: emissions are guarded by a single
	// branch and no event is constructed.
	Sink trace.Sink
	// FrameTap, when non-nil, observes every marshaled RCC frame as it
	// enters link's scheduler (before any loss). Used to harvest real
	// frame encodings, e.g. as a fuzzing corpus. The frame buffer is
	// recycled after delivery — the tap must copy anything it retains.
	FrameTap func(link topology.LinkID, frame []byte)

	// Sabotage, when non-nil, re-introduces a known-fixed bug for harness
	// self-tests (the chaos model checker proves it still catches it).
	Sabotage *Sabotage
}

// DefaultConfig returns timing typical of the paper's setting: millisecond
// propagation, fast detection, rejoin timers far above the recovery delay.
func DefaultConfig() Config {
	return Config{
		Scheme:           Scheme3,
		RCC:              rcc.DefaultParams(),
		PropDelay:        sim.Duration(500 * time.Microsecond),
		DetectionLatency: sim.Duration(time.Millisecond),
		RejoinTimeout:    sim.Duration(5 * time.Second),
		RejoinProbeDelay: sim.Duration(50 * time.Millisecond),
		DataMsgSize:      1000,
		MaxQueue:         0,
	}
}

// Transport carries protocol traffic between daemons. The Network calls the
// Send side from runtime-serialized protocol code; the transport delivers to
// the far daemon by calling back into Network.deliverFrame / deliverData /
// deliverHeartbeat, also runtime-serialized (directly in sim; via the
// receiving node's actor mailbox in live runs).
//
// Ownership: SendFrame transfers the marshaled frame buffer (checked out of
// the network's rcc.BufferPool) to the transport, which must either carry it
// to deliverFrame (the network Puts it back after HandleFrame) or reclaim it
// through the network's drop path. SendData likewise transfers the pooled
// *dataPayload box. A transport that serializes to a real wire (UDP) copies
// and reclaims immediately.
type Transport interface {
	// Attach binds the transport to its network. Called exactly once, from
	// NewOn, after the daemons and RCC endpoints exist and before any
	// traffic flows.
	Attach(n *Network)
	// SendFrame transmits one marshaled RCC control frame over link l.
	SendFrame(l topology.LinkID, frame []byte)
	// SendData transmits one data message over link l.
	SendData(l topology.LinkID, p *dataPayload)
	// SendHeartbeat transmits one heartbeat over link l.
	SendHeartbeat(l topology.LinkID)
	// SetLinkDown fails or repairs link l: a down link loses everything
	// submitted to it (and, per the crash model, everything queued).
	SetLinkDown(l topology.LinkID, down bool)
	// Close releases transport resources (goroutines, sockets). The sim
	// transport is a no-op; live transports must be closed before their
	// runtime is stopped.
	Close()
}

// linkRuntime is the protocol-side state of one simplex link: the RCC
// endpoint that sends control frames over it, and the daemons' view of its
// health. The transmitter itself lives behind the Transport.
type linkRuntime struct {
	id   topology.LinkID
	rccE *rcc.Endpoint // owned by the From-side daemon; sends over this link
	down bool
}

// Network is the protocol engine for one topology.
type Network struct {
	rt    runtime.Runtime
	tr    Transport
	mgr   *core.Manager
	cfg   Config
	links []*linkRuntime
	nodes []*daemon

	sources map[rtchan.ConnID]*source
	sinks   map[rtchan.ConnID]*sink
	// activated dedups resource-plane promotion per backup channel (the
	// bidirectional activations of Scheme 3 can both reach completion).
	activated map[rtchan.ChannelID]bool
	// retired keeps path information for channels the resource plane has
	// already released, so in-flight control messages (closures, stale
	// reports) still route hop-by-hop — the analogue of each real daemon's
	// local per-channel routing state outliving the global registry.
	retired map[rtchan.ChannelID]*rtchan.Channel
	// Heartbeat detection state (nil maps when disabled).
	heartbeatLastSeen map[topology.LinkID]sim.Time
	declaredDown      map[topology.LinkID]bool

	// em wraps cfg.Sink; the zero Emitter (nil sink) disables all protocol
	// event emission at the cost of one branch per site.
	em trace.Emitter

	// Recycled per-recovery scratch. framePool recycles marshaled RCC
	// frame buffers across every endpoint (Get at marshal, Put after
	// HandleFrame in deliverFrame or by the transport's drop path — a
	// dropped frame is reclaimed, not leaked). dataFree recycles the
	// pointer boxes that carry data payloads without re-boxing an
	// interface per packet; dataOut counts boxes checked out so pool-
	// balance tests can prove drops reclaim them. chanListFree recycles
	// the affected-channel fan-out lists built when a component fails.
	framePool    *rcc.BufferPool
	dataFree     []*dataPayload
	dataOut      int
	chanListFree [][]rtchan.ChannelID

	// perMsg mirrors cfg.PerMessageDispatch; round is the dispatch-round
	// staging area (round.go), inert while perMsg is set.
	perMsg bool
	round  dispatchRound
	// Pools for the round's batch timers (batchtimer.go): a fired batch
	// recycles its entry storage and its single prebuilt fire closure.
	rejoinBatchFree []*rejoinBatch
	probeBatchFree  []*probeBatch
	replBatchFree   []*replBatch

	stats Stats
}

// getDataBox returns a recycled data-payload box.
func (n *Network) getDataBox() *dataPayload {
	n.dataOut++
	if k := len(n.dataFree); k > 0 {
		b := n.dataFree[k-1]
		n.dataFree[k-1] = nil
		n.dataFree = n.dataFree[:k-1]
		return b
	}
	return &dataPayload{}
}

func (n *Network) putDataBox(p *dataPayload) {
	n.dataOut--
	*p = dataPayload{}
	n.dataFree = append(n.dataFree, p)
}

// PoolOutstanding reports pooled objects currently checked out: RCC frame
// buffers in flight between SendFrame and their Put, and data-payload boxes
// between getDataBox and putDataBox. With the sim transport quiescent-idle
// (nothing queued or propagating), both must equal the transport's in-transit
// counts — the pool-balance invariant the storm test asserts.
func (n *Network) PoolOutstanding() (frames, data int) {
	return n.framePool.Outstanding(), n.dataOut
}

// getChanList returns an empty recycled channel-ID list for failure
// fan-out; callers return it with putChanList once the reports are out.
func (n *Network) getChanList() []rtchan.ChannelID {
	if k := len(n.chanListFree); k > 0 {
		b := n.chanListFree[k-1]
		n.chanListFree[k-1] = nil
		n.chanListFree = n.chanListFree[:k-1]
		return b
	}
	return nil
}

func (n *Network) putChanList(b []rtchan.ChannelID) {
	if cap(b) > 0 {
		n.chanListFree = append(n.chanListFree, b[:0])
	}
}

// Stats aggregates network-wide protocol counters.
type Stats struct {
	Detections         uint64 // heartbeat-based failure declarations
	ReportsGenerated   uint64
	ActivationsStarted uint64
	ActivationsMet     uint64 // discarded at an already-activated node
	MuxFailures        uint64
	Preemptions        uint64
	RejoinRequests     uint64
	Rejoins            uint64
	BackupsReplenished uint64
	Closures           uint64
	RejoinExpiries     uint64
	DataSent           uint64
	DataDelivered      uint64
	DataDropped        uint64
}

// New builds the protocol engine over an established control plane, running
// in simulated time with the zero-copy in-sim transport — the deterministic
// configuration every simulation entry point uses.
func New(eng *sim.Engine, mgr *core.Manager, cfg Config) *Network {
	return NewOn(eng, NewSimTransport(), mgr, cfg)
}

// NewOn builds the protocol engine against an explicit (Runtime, Transport)
// pair: sim.Engine + SimTransport for deterministic runs, realtime.Runtime +
// PipeTransport/UDPTransport for live ones. The manager's connections get
// per-node channel state installed (P for primaries, B for backups); data
// sources start on demand. Live callers must only touch the returned Network
// from runtime-serialized context (actor callbacks, timers, Exec).
func NewOn(rt runtime.Runtime, tr Transport, mgr *core.Manager, cfg Config) *Network {
	if cfg.Scheme == 0 {
		cfg.Scheme = Scheme3
	}
	g := mgr.Graph()
	n := &Network{
		rt:        rt,
		tr:        tr,
		mgr:       mgr,
		cfg:       cfg,
		links:     make([]*linkRuntime, g.NumLinks()),
		nodes:     make([]*daemon, g.NumNodes()),
		sources:   make(map[rtchan.ConnID]*source),
		sinks:     make(map[rtchan.ConnID]*sink),
		activated: make(map[rtchan.ChannelID]bool),
		retired:   make(map[rtchan.ChannelID]*rtchan.Channel),

		heartbeatLastSeen: make(map[topology.LinkID]sim.Time),
		declaredDown:      make(map[topology.LinkID]bool),

		em:        trace.NewEmitter(cfg.Sink),
		framePool: &rcc.BufferPool{},
		perMsg:    cfg.PerMessageDispatch,
	}
	n.round.pending = make([][]wireControl, g.NumLinks())
	// The resource plane shares the sink so claim-path events (claim,
	// release, convert, preempt, rejoin re-registration) interleave with the
	// protocol's, timestamped by the same clock.
	mgr.SetProtocolTrace(cfg.Sink, rt)
	// Coalesced reconfiguration rides with dispatch rounds: the batched
	// engine re-derives each touched link's Π structure only when a primary
	// change actually invalidated it, while the per-message baseline keeps
	// the pre-batching eager rebuild (see core/reconfig.go; the protocol
	// outcome is identical either way).
	mgr.SetCoalescedReconfig(!cfg.PerMessageDispatch)
	for i := range n.nodes {
		n.nodes[i] = newDaemon(n, topology.NodeID(i))
	}
	for _, l := range g.Links() {
		l := l
		lr := &linkRuntime{id: l.ID}
		// The endpoint for link l sends over l and receives frames that
		// traversed the reverse link, delivering their controls to l.From.
		rev := g.Reverse(l.ID)
		send := func(frame []byte) {
			n.tr.SendFrame(l.ID, frame)
		}
		if tap := cfg.FrameTap; tap != nil {
			inner := send
			send = func(frame []byte) {
				tap(l.ID, frame)
				inner(frame)
			}
		}
		recvOne := func(c wireControl) {
			d := n.nodes[l.From]
			if n.em.Enabled() && !d.dead {
				switch c.Type {
				case wire.MsgFailureReport:
					n.emitHop(trace.KindReportHop, rev, l.From, rtchan.ChannelID(c.Channel))
				case wire.MsgActivation:
					n.emitHop(trace.KindActivationHop, rev, l.From, rtchan.ChannelID(c.Channel))
				}
			}
			d.handleControl(c)
		}
		lr.rccE = rcc.NewEndpoint(rt, cfg.RCC, send, recvOne)
		if !cfg.PerMessageDispatch {
			// Batched delivery: the daemon processes the whole in-frame
			// control batch inside one dispatch round, so the fan-out those
			// controls trigger is staged and flushed per link rather than
			// submitted per message.
			lr.rccE.SetBatchReceiver(func(cs []wireControl) {
				opened := n.beginRound()
				for i := range cs {
					recvOne(cs[i])
				}
				if opened {
					n.endRound()
				}
			})
		}
		lr.rccE.SetTrace(cfg.Sink, l.From, l.ID)
		lr.rccE.SetBufferPool(n.framePool)
		n.links[l.ID] = lr
	}
	tr.Attach(n)
	// Install channel state for everything already established.
	for _, conn := range mgr.Connections() {
		n.installConnection(conn)
	}
	n.startHeartbeats()
	return n
}

// Engine returns the simulation engine driving this network, or nil when it
// runs on a different runtime (use Runtime then).
func (n *Network) Engine() *sim.Engine {
	e, _ := n.rt.(*sim.Engine)
	return e
}

// Runtime returns the runtime driving this network.
func (n *Network) Runtime() runtime.Runtime { return n.rt }

// Transport returns the transport carrying this network's traffic.
func (n *Network) Transport() Transport { return n.tr }

// Manager returns the resource plane.
func (n *Network) Manager() *core.Manager { return n.mgr }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats { return n.stats }

// Daemon returns the BCP daemon at node v (for white-box tests).
func (n *Network) Daemon(v topology.NodeID) *daemon { return n.nodes[v] }

// installConnection seeds the per-node state machines for a connection's
// channels.
func (n *Network) installConnection(conn *core.DConnection) {
	if conn.Primary != nil {
		n.emitInstall(conn.ID, conn.Primary, trace.StateP)
		for _, v := range conn.Primary.Path.Nodes() {
			n.nodes[v].install(conn.Primary, stateP)
		}
	}
	for _, b := range conn.Backups {
		n.emitInstall(conn.ID, b, trace.StateB)
		for _, v := range b.Path.Nodes() {
			n.nodes[v].install(b, stateB)
		}
	}
}

// emitInstall records a channel entering the protocol plane with the given
// role; Aux carries the hop count for Γ-bound consumers.
func (n *Network) emitInstall(connID rtchan.ConnID, ch *rtchan.Channel, role trace.State) {
	if !n.em.Enabled() {
		return
	}
	n.em.Emit(trace.Event{
		At:      n.rt.Now(),
		Kind:    trace.KindInstall,
		Node:    topology.NoNode,
		Link:    topology.NoLink,
		Conn:    connID,
		Channel: ch.ID,
		To:      role,
		Aux:     int64(ch.Path.Hops()),
	})
}

// emitHop records a report/activation delivery across a link; callers check
// n.em.Enabled().
func (n *Network) emitHop(kind trace.Kind, l topology.LinkID, at topology.NodeID, ch rtchan.ChannelID) {
	n.em.Emit(trace.Event{
		At:      n.rt.Now(),
		Kind:    kind,
		Node:    at,
		Link:    l,
		Conn:    n.connOf(ch),
		Channel: ch,
	})
}

// emitChan records a per-channel protocol event at a node; callers check
// n.em.Enabled().
func (n *Network) emitChan(kind trace.Kind, node topology.NodeID, ch rtchan.ChannelID, aux int64) {
	n.em.Emit(trace.Event{
		At:      n.rt.Now(),
		Kind:    kind,
		Node:    node,
		Link:    topology.NoLink,
		Conn:    n.connOf(ch),
		Channel: ch,
		Aux:     aux,
	})
}

// emitState records a Figure-4 transition at a node; callers check
// n.em.Enabled(). The chanState and trace.State enumerations share their
// N/P/B/U ordering, so the conversion is a cast.
func (n *Network) emitState(node topology.NodeID, ch rtchan.ChannelID, from, to chanState) {
	n.em.Emit(trace.Event{
		At:      n.rt.Now(),
		Kind:    trace.KindState,
		Node:    node,
		Link:    topology.NoLink,
		Conn:    n.connOf(ch),
		Channel: ch,
		From:    trace.State(from),
		To:      trace.State(to),
	})
}

// emitComponent records a component crash/repair; callers check Enabled().
func (n *Network) emitComponent(kind trace.Kind, node topology.NodeID, link topology.LinkID) {
	n.em.Emit(trace.Event{
		At:   n.rt.Now(),
		Kind: kind,
		Node: node,
		Link: link,
	})
}

// connOf resolves a channel to its connection, falling back to the retired
// table for channels the resource plane has already released.
func (n *Network) connOf(ch rtchan.ChannelID) rtchan.ConnID {
	if c := n.mgr.Network().Channel(ch); c != nil {
		return c.Conn
	}
	if c := n.retired[ch]; c != nil {
		return c.Conn
	}
	return 0
}

// Establish routes and installs a new D-connection through the resource
// plane, then seeds protocol state (used by dynamic-workload runs).
func (n *Network) Establish(src, dst topology.NodeID, spec rtchan.TrafficSpec, degrees []int) (*core.DConnection, error) {
	conn, err := n.mgr.Establish(src, dst, spec, degrees)
	if err != nil {
		return nil, err
	}
	n.installConnection(conn)
	return conn, nil
}

// TeardownConnection releases a D-connection through the protocol (§4.4):
// the source daemon sends a channel-closure message down every channel's
// path (intermediate daemons drop their state as it passes) and the
// resource plane releases the reservations. The data source, if any, stops.
func (n *Network) TeardownConnection(connID rtchan.ConnID) error {
	conn := n.mgr.Connection(connID)
	if conn == nil {
		return fmt.Errorf("bcpd: unknown connection %d", connID)
	}
	n.StopTraffic(connID)
	if n.em.Enabled() {
		n.em.Emit(trace.Event{
			At:   n.rt.Now(),
			Kind: trace.KindTeardown,
			Node: conn.Src,
			Link: topology.NoLink,
			Conn: connID,
		})
	}
	opened := n.beginRound()
	for _, ch := range conn.Channels() {
		n.retired[ch.ID] = ch
		src := n.nodes[ch.Path.Source()]
		src.stopRejoinTimer(ch.ID)
		src.setState(ch.ID, stateN)
		n.stats.Closures++
		if n.em.Enabled() {
			n.emitChan(trace.KindClosure, src.id, ch.ID, 0)
		}
		src.forwardAlong(ch, wireControl{
			Type:    wire.MsgChannelClosure,
			Channel: int64(ch.ID),
			Origin:  int32(src.id),
			Toward:  1,
		})
	}
	if opened {
		n.endRound()
	}
	return n.mgr.Teardown(connID)
}

// scheduleReplenish restores the connection's backup population after a
// recovery, once the configured delay passes (§4.4). Inside a dispatch round
// the request is staged — endRound funds every request of the round with one
// shared batch timer (batchtimer.go); otherwise (and always in the
// per-message baseline) a private timer with a fresh closure is scheduled.
func (n *Network) scheduleReplenish(connID rtchan.ConnID) {
	if n.cfg.ReplenishDelay <= 0 {
		return
	}
	if r := &n.round; r.active {
		r.repl = append(r.repl, connID)
		return
	}
	n.rt.Schedule(n.cfg.ReplenishDelay, func() { n.replenishNow(connID) })
}

// replenishNow re-checks the connection's backup count and establishes
// replacements if it is short — the §4.4 replenishment action, shared by
// both timer flavors. Duplicate requests are harmless: the first fire
// restores the target and the rest see a full population.
func (n *Network) replenishNow(connID rtchan.ConnID) {
	target := n.cfg.ReplenishTarget
	if target <= 0 {
		target = 1
	}
	conn := n.mgr.Connection(connID)
	if conn == nil || conn.Primary == nil || len(conn.Backups) >= target {
		return
	}
	alpha := 1
	if len(conn.Degrees) > 0 {
		alpha = conn.Degrees[len(conn.Degrees)-1]
	}
	before := len(conn.Backups)
	added, err := n.mgr.ReplenishBackups(connID, target, alpha, func(l topology.LinkID) bool {
		return n.links[l].down
	})
	if err != nil || added == 0 {
		return
	}
	n.stats.BackupsReplenished += uint64(added)
	for _, b := range conn.Backups[before:] {
		if n.em.Enabled() {
			n.emitChan(trace.KindReplenish, conn.Src, b.ID, int64(b.Path.Hops()))
		}
		for _, v := range b.Path.Nodes() {
			n.nodes[v].install(b, stateB)
		}
	}
}

// deliverFrame dispatches a control frame that arrived at the far end of
// link l: the receiving daemon's endpoint for the reverse direction handles
// it (the endpoint pairs A->B sending with B->A reception), then the buffer
// returns to the pool — HandleFrame decodes into its own scratch and retains
// nothing. The transport relinquishes the buffer by calling this.
func (n *Network) deliverFrame(l topology.LinkID, data []byte) {
	rev := n.mgr.Graph().Reverse(l)
	if rev != topology.NoLink {
		n.links[rev].rccE.HandleFrame(data)
	}
	n.framePool.Put(data)
}

// deliverData dispatches a data message that arrived at the far end of link
// l; ownership of the box passes to handleData, which recycles it on every
// terminal path.
func (n *Network) deliverData(l topology.LinkID, p *dataPayload) {
	n.nodes[n.mgr.Graph().Link(l).To].handleData(p)
}

// deliverHeartbeat records a heartbeat arrival at the far end of link l.
func (n *Network) deliverHeartbeat(l topology.LinkID) {
	n.heartbeatLastSeen[l] = n.rt.Now()
}

// deliverForeignFrame handles a control frame that arrived in a buffer the
// network's pool never issued (a UDP receive buffer): same dispatch as
// deliverFrame, but the buffer is left to the GC rather than Put into the
// pool, keeping the pool's Get/Put pairing exact.
func (n *Network) deliverForeignFrame(l topology.LinkID, data []byte) {
	rev := n.mgr.Graph().Reverse(l)
	if rev != topology.NoLink {
		n.links[rev].rccE.HandleFrame(data)
	}
}

// reclaimFrame returns a frame buffer whose packet was dropped in transit
// (down link, queue overflow) to the pool — the leak fix for the boxes that
// used to ride dropped scheduler packets into the GC.
func (n *Network) reclaimFrame(data []byte) { n.framePool.Put(data) }

// reclaimData returns a data box whose packet was dropped in transit. Loss
// accounting stays where it always was (sched.LinkStats); only the box comes
// back.
func (n *Network) reclaimData(p *dataPayload) { n.putDataBox(p) }

// submitControl sends a control message from node v over link l's RCC.
// The message is submitted even when the link is down: the RCC's hop-by-hop
// retransmission holds it until the link is repaired, implementing the
// paper's rejoin semantics ("if the failed component becomes healthy again
// before the rejoin timer expires, it will also forward the rejoin-request
// message"). Control messages that outlive their purpose are ignored at the
// receiver by the channel state machine (duplicates in state U, unknown
// channels after teardown).
func (n *Network) submitControl(l topology.LinkID, c wireControl) {
	if n.round.active {
		n.stageControl(l, c)
		return
	}
	n.links[l].rccE.Submit(c)
}

// rccFrame and dataPayload type-tag scheduler payloads. Both travel as
// pointers so enqueueing does not box a fresh interface value per packet;
// the Network recycles the boxes after delivery. A box dropped with its
// packet (down link, queue overflow) simply leaves the pool.
type rccFrame struct {
	data []byte
}

type dataPayload struct {
	conn rtchan.ConnID
	ch   rtchan.ChannelID
	seq  uint64
	sent sim.Time
}
