package bcpd

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// TestControlDelayUnderSaturatedData validates §5.2 at the packet level:
// because the RCC rides the control class of the priority scheduler, the
// per-hop control delay stays bounded even when real-time data saturates
// the link — a failure report crossing a busy corridor still arrives within
// the analytic per-hop bound, so recovery stays fast under load.
func TestControlDelayUnderSaturatedData(t *testing.T) {
	// A 4-node line with a slow middle link carrying heavy data traffic.
	g := topology.NewLine(4, 10) // 10 Mbps links
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 8, SlackHops: 2}

	// The observed connection: primary along the line. No disjoint backup
	// exists on a line, so failure recovery is not the point here — we
	// measure failure-REPORT latency from the far end to the source.
	conn, err := mgr.EstablishOnPaths(spec,
		mustLinePath(t, g, 0, 1, 2, 3), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DataMsgSize = 1250 // 1 ms of transmission per hop at 10 Mbps
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	// Saturate the line: 8 Mbps of the 10 Mbps capacity.
	if err := net.StartTraffic(conn.ID, 800); err != nil {
		t.Fatal(err)
	}

	// Crash the last link; the upstream detector (node 2) reports toward
	// the source over two RCC hops that compete with the data flood.
	failAt := sim.Time(200 * time.Millisecond)
	eng.At(failAt, func() { net.FailLink(g.LinkBetween(2, 3)) })

	var reportedAt sim.Time
	srcDaemon := net.Daemon(0)
	poll := func() {
		if reportedAt == 0 && srcDaemon.State(conn.Primary.ID) == stateU {
			reportedAt = eng.Now()
		}
	}
	for i := 1; i < 200; i++ {
		eng.Schedule(sim.Duration(i)*sim.Duration(200*time.Microsecond)+sim.Duration(200*time.Millisecond), poll)
	}
	eng.RunFor(time.Second)

	if reportedAt == 0 {
		t.Fatal("failure report never reached the source")
	}
	delay := reportedAt.Sub(failAt)
	// Analytic per-hop bound: detection latency + 2 hops of
	// (eligibility 1/RMax + residual data packet + control frame + prop).
	perHop := time.Duration(float64(time.Second)/cfg.RCC.RMax) +
		time.Duration(float64(cfg.DataMsgSize*8)/10e6*float64(time.Second)) +
		time.Duration(float64(cfg.RCC.SMax*8)/10e6*float64(time.Second)) +
		time.Duration(cfg.PropDelay)
	bound := time.Duration(cfg.DetectionLatency) + 2*perHop + 200*time.Microsecond // + polling granularity
	if time.Duration(delay) > bound {
		t.Fatalf("control delay %v exceeds bound %v under saturated data", time.Duration(delay), bound)
	}
	// Sanity: the link really was busy.
	if net.Stats().DataDelivered == 0 {
		t.Fatal("no data flowed")
	}
}

func mustLinePath(t *testing.T, g *topology.Graph, nodes ...topology.NodeID) topology.Path {
	t.Helper()
	p, err := topology.PathBetween(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
