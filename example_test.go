package bcp_test

// Executable documentation for the public API. Each example is verified by
// `go test` against its expected output.

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp"
)

// Establishing a dependable connection and inspecting its channels.
func ExampleManager_Establish() {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())

	conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{1})
	if err != nil {
		fmt.Println("rejected:", err)
		return
	}
	fmt.Printf("primary hops: %d\n", conn.Primary.Path.Hops())
	fmt.Printf("backups: %d (degree %d)\n", len(conn.Backups), conn.Degrees[0])
	fmt.Printf("disjoint: %v\n", conn.Primary.Path.ComponentDisjoint(conn.Backups[0].Path))
	// Output:
	// primary hops: 8
	// backups: 1 (degree 1)
	// disjoint: true
}

// A transactional failure trial: what fraction of failed primaries would
// recover instantly via their backups?
func ExampleManager_Trial() {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s != d {
				if _, err := mgr.Establish(bcp.NodeID(s), bcp.NodeID(d), bcp.DefaultSpec(), []int{1}); err != nil {
					fmt.Println("unexpected rejection")
					return
				}
			}
		}
	}
	stats := mgr.Trial(bcp.SingleNode(27), bcp.OrderByConn, nil)
	fmt.Printf("R_fast = %.2f\n", stats.RFast())
	// Output:
	// R_fast = 1.00
}

// The multiplexing mathematics of §3.2: two backups share spare bandwidth
// when their primaries share fewer components than the multiplexing degree.
func ExampleSimultaneousActivation() {
	lambda := 1e-4
	s := bcp.SimultaneousActivation(lambda, 9, 9, 3) // primaries share 3 components
	nuStrict := bcp.NuForDegree(lambda, 3)           // "mux=3"
	nuLoose := bcp.NuForDegree(lambda, 6)            // "mux=6"
	fmt.Printf("multiplexed at mux=3: %v\n", s < nuStrict)
	fmt.Printf("multiplexed at mux=6: %v\n", s < nuLoose)
	// Output:
	// multiplexed at mux=3: false
	// multiplexed at mux=6: true
}

// Running the message-level protocol: crash a link and observe recovery.
func ExampleNewProtocol() {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	conn, _ := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{1})

	eng := bcp.NewEngine(1)
	proto := bcp.NewProtocol(eng, mgr, bcp.DefaultProtocolConfig())
	if err := proto.StartTraffic(conn.ID, 1000); err != nil {
		fmt.Println(err)
		return
	}
	eng.At(bcp.Time(100*time.Millisecond), func() {
		proto.FailLink(conn.Primary.Path.Links()[3])
	})
	eng.RunFor(time.Second)

	switches := proto.SourceSwitches(conn.ID)
	fmt.Printf("recovered: %v\n", len(switches) == 1)
	fmt.Printf("on backup: %v\n", conn.Primary.Path.Hops() == 8)
	// Output:
	// recovered: true
	// on backup: true
}

// Routing: the paper's sequential disjoint method versus max-flow.
func ExampleSequentialDisjointPaths() {
	g := bcp.NewTorus(8, 8, 200)
	paths := bcp.SequentialDisjointPaths(g, 0, 36, 3, bcp.RoutingConstraint{})
	for i, p := range paths {
		fmt.Printf("channel %d: %d hops\n", i, p.Hops())
	}
	// Output:
	// channel 0: 8 hops
	// channel 1: 8 hops
	// channel 2: 8 hops
}

// The combinatorial reliability model of §3.3.
func ExamplePr() {
	lambda := 1e-4
	noBackup := bcp.Pr(lambda, 17, nil)
	oneBackup := bcp.Pr(lambda, 17, []bcp.BackupInfo{{Components: 17, PMuxFail: 0}})
	fmt.Printf("without backup: %.6f\n", noBackup)
	fmt.Printf("with backup:    %.6f\n", oneBackup)
	// Output:
	// without backup: 0.998301
	// with backup:    0.999997
}
