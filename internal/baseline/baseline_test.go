package baseline

import (
	"testing"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

func mustPath(t *testing.T, g *topology.Graph, nodes ...topology.NodeID) topology.Path {
	t.Helper()
	p, err := topology.PathBetween(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mesh3 layout:
//
//	0 1 2
//	3 4 5
//	6 7 8
func buildContention(t *testing.T) (*topology.Graph, *core.Manager) {
	t.Helper()
	g := topology.NewMesh(3, 3, 10)
	m := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	if _, err := m.EstablishOnPaths(spec, mustPath(t, g, 0, 1, 2),
		[]topology.Path{mustPath(t, g, 0, 3, 4, 5, 2)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(spec, mustPath(t, g, 1, 2, 5),
		[]topology.Path{mustPath(t, g, 1, 4, 5)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestUniformSpareFromManager(t *testing.T) {
	g, m := buildContention(t)
	got := UniformSpareFromManager(m)
	var total float64
	for _, l := range g.Links() {
		total += m.Network().Spare(l.ID)
	}
	if want := total / float64(g.NumLinks()); got != want {
		t.Fatalf("uniform = %g, want %g", got, want)
	}
}

func TestBruteForceTrialBasics(t *testing.T) {
	g, m := buildContention(t)
	// Generous uniform pool: both activations succeed.
	bf := NewBruteForce(m, 5, false)
	stats := bf.Trial(core.SingleLink(g.LinkBetween(1, 2)), core.OrderByConn, nil)
	if stats.FailedPrimaries != 2 || stats.FastRecovered != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Starved pool: both backups cross a shared link; with 1 unit only one
	// can claim it.
	bf = NewBruteForce(m, 1, false)
	stats = bf.Trial(core.SingleLink(g.LinkBetween(1, 2)), core.OrderByConn, nil)
	if stats.FastRecovered != 1 || stats.MuxFailed != 1 {
		t.Fatalf("starved stats = %+v", stats)
	}
	// Zero pool: no recovery at all.
	bf = NewBruteForce(m, 0, false)
	stats = bf.Trial(core.SingleLink(g.LinkBetween(1, 2)), core.OrderByConn, nil)
	if stats.FastRecovered != 0 || stats.MuxFailed != 2 {
		t.Fatalf("zero-pool stats = %+v", stats)
	}
}

func TestBruteForceCapLimit(t *testing.T) {
	// The brute-force uniform pool is fictitious: it can exceed a link's
	// real headroom. Build a link with dedicated 9/10 and two multiplexed
	// backups crossing it (spare 1): a uniform pool of 2 admits both
	// activations unless capped by the headroom.
	g := topology.NewMesh(3, 3, 10)
	m := core.NewManager(g, core.DefaultConfig())
	thick := rtchan.TrafficSpec{Bandwidth: 9, SlackHops: 2}
	if _, err := m.EstablishOnPaths(thick, mustPath(t, g, 3, 4), nil, nil); err != nil {
		t.Fatal(err)
	}
	thin := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	if _, err := m.EstablishOnPaths(thin, mustPath(t, g, 0, 1, 2),
		[]topology.Path{mustPath(t, g, 0, 3, 4, 5, 2)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(thin, mustPath(t, g, 0, 1),
		[]topology.Path{mustPath(t, g, 0, 3, 4, 1)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	if got := m.Network().Spare(g.LinkBetween(3, 4)); got != 1 {
		t.Fatalf("spare on 3->4 = %g, want 1 (multiplexed)", got)
	}
	fail := core.SingleLink(g.LinkBetween(0, 1))
	// Uncapped fictitious pool of 2: both backups claim 3->4.
	stats := NewBruteForce(m, 2, false).Trial(fail, core.OrderByConn, nil)
	if stats.FastRecovered != 2 {
		t.Fatalf("uncapped stats = %+v", stats)
	}
	// Capped at headroom (10-9=1): only one activation fits.
	stats = NewBruteForce(m, 2, true).Trial(fail, core.OrderByConn, nil)
	if stats.FastRecovered != 1 || stats.MuxFailed != 1 {
		t.Fatalf("capped stats = %+v", stats)
	}
}

func TestBruteForceExcludesEndNodeFailures(t *testing.T) {
	_, m := buildContention(t)
	bf := NewBruteForce(m, 5, false)
	stats := bf.Trial(core.SingleNode(0), core.OrderByConn, nil)
	if stats.ExcludedConns != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReestablishBaseline(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := core.NewManager(g, core.DefaultConfig())
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				if _, err := m.Establish(topology.NodeID(s), topology.NodeID(d), rtchan.DefaultSpec(), nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	re := NewReestablish(m)
	stats := re.Trial(core.SingleLink(0))
	if stats.FailedPrimaries == 0 {
		t.Fatal("no failures on link 0")
	}
	// With a lightly loaded torus, most re-establishments succeed...
	if stats.FastRecovered == 0 {
		t.Fatal("no re-establishment succeeded")
	}
	// ...but the method gives no guarantee; on saturated links it fails.
	gTight := topology.NewTorus(4, 4, 1)
	mTight := core.NewManager(gTight, core.DefaultConfig())
	spec := rtchan.DefaultSpec()
	spec.SlackHops = 0
	if _, err := mTight.EstablishOnPaths(spec,
		mustPath(t, gTight, 0, 1), nil, nil); err != nil {
		t.Fatal(err)
	}
	// Saturate every alternative 0->1 route of length <= slack.
	reTight := NewReestablish(mTight)
	stats = reTight.Trial(core.SingleLink(gTight.LinkBetween(0, 1)))
	if stats.FailedPrimaries != 1 || stats.FastRecovered != 0 {
		t.Fatalf("tight stats = %+v (expected unrecoverable)", stats)
	}
}
