package bcpd

import (
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
	"github.com/rtcl/bcp/internal/wire"
)

// Heartbeat-based failure detection. The paper assumes "failed components
// are detected by their neighbor nodes" and defers mechanisms to [HAN97a];
// this file supplies one: every daemon emits a small heartbeat packet on
// each outgoing link at a fixed interval, and the downstream neighbor
// declares the link failed after HeartbeatMiss consecutive silent intervals.
// The downstream detector then notifies the upstream node over the
// reverse-direction link (still healthy under a simplex-link crash), so both
// neighbors originate the failure reports their side of the channel-
// switching scheme requires. A crashed node stops emitting on every
// incident link, so its neighbors detect it the same way.
//
// Enable by setting Config.HeartbeatInterval > 0; FailLink/FailNode then
// only crash the component, and detection happens organically.

// heartbeatPayload marks a heartbeat packet on the wire.
type heartbeatPayload struct {
	link topology.LinkID
}

// heartbeatSize is the on-wire size of a heartbeat packet.
const heartbeatSize = 32

// startHeartbeats launches emission and monitoring loops for every link.
func (n *Network) startHeartbeats() {
	if n.cfg.HeartbeatInterval <= 0 {
		return
	}
	for _, l := range n.mgr.Graph().Links() {
		n.heartbeatLastSeen[l.ID] = n.rt.Now()
		n.emitHeartbeat(l.ID)
		n.monitorHeartbeats(l.ID)
	}
}

// emitHeartbeat starts link l's heartbeat loop; the rescheduling closure is
// built once, so each beat costs only the send. A dead daemon stops
// emitting — that is the detection signal.
func (n *Network) emitHeartbeat(l topology.LinkID) {
	lk := n.mgr.Graph().Link(l)
	var tick func()
	tick = func() {
		if !n.nodes[lk.From].dead {
			n.tr.SendHeartbeat(l)
		}
		n.rt.Schedule(n.cfg.HeartbeatInterval, tick)
	}
	tick()
}

// monitorHeartbeats starts the liveness check loop for link l at its
// receiving node; like the emitter, the check closure is built once.
func (n *Network) monitorHeartbeats(l topology.LinkID) {
	lk := n.mgr.Graph().Link(l)
	miss := n.cfg.HeartbeatMiss
	if miss <= 0 {
		miss = 3
	}
	deadline := sim.Duration(miss+1) * n.cfg.HeartbeatInterval
	var check func()
	check = func() {
		to := n.nodes[lk.To]
		if !to.dead && !n.declaredDown[l] && n.rt.Now().Sub(n.heartbeatLastSeen[l]) > deadline {
			n.declareLinkFailure(l)
		}
		n.rt.Schedule(n.cfg.HeartbeatInterval, check)
	}
	n.rt.Schedule(n.cfg.HeartbeatInterval, check)
}

// declareLinkFailure runs at link l's downstream node when heartbeats stop:
// it originates the downstream failure reports and notifies the upstream
// neighbor over the reverse link.
func (n *Network) declareLinkFailure(l topology.LinkID) {
	n.declaredDown[l] = true
	n.stats.Detections++
	lk := n.mgr.Graph().Link(l)
	if n.em.Enabled() {
		n.emitComponent(trace.KindDetect, lk.To, l)
	}
	scheme := n.cfg.Scheme
	opened := n.beginRound()
	for _, chID := range n.mgr.Network().ChannelsOnLink(l) {
		if scheme == Scheme1 || scheme == Scheme3 {
			n.nodes[lk.To].originateFailureReport(chID, +1)
		}
	}
	// Tell the upstream side; under a single simplex-link crash the reverse
	// direction still works. (If it is down too — node failure — the
	// reverse link's own monitor handles the other side.)
	if rev := n.mgr.Graph().Reverse(l); rev != topology.NoLink {
		n.submitControl(rev, wireControl{
			Type:    wire.MsgLinkFailure,
			Channel: int64(l),
			Origin:  int32(lk.To),
			Toward:  1,
		})
	}
	if opened {
		n.endRound()
	}
}

// handleLinkFailureNotify runs at the upstream node of a failed link when
// the downstream detector's notification arrives.
func (d *daemon) handleLinkFailureNotify(c wireControl) {
	l := topology.LinkID(c.Channel)
	n := d.net
	if l < 0 || int(l) >= len(n.links) {
		return
	}
	lk := n.mgr.Graph().Link(l)
	if lk.From != d.id {
		return // misrouted
	}
	scheme := n.cfg.Scheme
	// Copy the fan-out set through recycled scratch: originating reports
	// mutates the channels-on-link index under us.
	affected := append(n.getChanList(), n.mgr.Network().ChannelsOnLink(l)...)
	for _, chID := range affected {
		if scheme == Scheme2 || scheme == Scheme3 {
			d.originateFailureReport(chID, -1)
		}
	}
	n.putChanList(affected)
}
