package bcpd

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/wire"
)

// newChaosTestbed is newTestbed with a ChaosTransport wrapped around the
// simulated links.
func newChaosTestbed(t *testing.T, cfg Config, p ChaosParams) (*testbed, *ChaosTransport) {
	t.Helper()
	g := topology.NewMesh(3, 3, 10)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	conn, err := mgr.EstablishOnPaths(spec,
		path(t, g, 0, 1, 2),
		[]topology.Path{path(t, g, 0, 3, 4, 5, 2)},
		[]int{1})
	if err != nil {
		t.Fatal(err)
	}
	attachConformance(t, &cfg, conformanceParams(cfg))
	ct := NewChaosTransport(NewSimTransport(), p)
	net := NewOn(eng, ct, mgr, cfg)
	return &testbed{g: g, eng: eng, mgr: mgr, net: net, conn: conn}, ct
}

// auditPool drains the engine and verifies the pooled-buffer census: every
// frame and data box checked out of the network's pools is back, and the
// transport holds nothing.
func auditPool(t *testing.T, tb *testbed, ct *ChaosTransport) {
	t.Helper()
	deadline := tb.eng.Now().Add(sim.Duration(10 * time.Second))
	for tb.eng.Pending() > 0 && tb.eng.Now() < deadline {
		tb.eng.Step()
	}
	frames, data := tb.net.PoolOutstanding()
	inFrames, inData := ct.InTransit()
	if frames != inFrames || data != inData {
		t.Fatalf("pool census mismatch: pool has %d frames/%d data outstanding, transport holds %d/%d",
			frames, data, inFrames, inData)
	}
	if frames != 0 || data != 0 {
		t.Fatalf("pooled buffers leaked at quiescence: %d frames, %d data", frames, data)
	}
}

// TestChaosDuplicateDoesNotAliasPool is the regression demanded by the
// chaos work: a duplicated frame must be a fresh pooled copy, never a second
// reference to the same buffer. An aliasing duplicate would be Put twice —
// driving the pool census negative — or corrupt a recycled buffer in
// flight. Dup=1 doubles every frame through a full recovery cycle.
func TestChaosDuplicateDoesNotAliasPool(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(time.Second)
	tb, ct := newChaosTestbed(t, cfg, ChaosParams{
		Seed:    7,
		Default: LinkChaos{Dup: 1.0},
	})
	tb.net.FailLink(tb.conn.Primary.Path.Links()[0])
	tb.eng.RunFor(sim.Duration(200 * time.Millisecond))
	tb.net.RepairLink(tb.conn.Primary.Path.Links()[0])
	auditPool(t, tb, ct)
	if ct.Stats().FramesDuplicated == 0 {
		t.Fatal("duplication plan never fired")
	}
}

// TestChaosDropReclaimsFrames: with Drop=1 nothing is ever delivered, so
// every pooled buffer must come back through the transport's drop path.
// Chaos is then lifted so the stalled recovery can finish — an eternal
// blackout would legitimately leave activation claims outstanding.
func TestChaosDropReclaimsFrames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(time.Second)
	tb, ct := newChaosTestbed(t, cfg, ChaosParams{
		Seed:    7,
		Default: LinkChaos{Drop: 1.0},
	})
	l := tb.conn.Primary.Path.Links()[0]
	tb.net.FailLink(l)
	tb.eng.RunFor(sim.Duration(100 * time.Millisecond))
	frames, data := tb.net.PoolOutstanding()
	inF, inD := ct.InTransit()
	if frames != inF || data != inD {
		t.Fatalf("census mismatch under total loss: pool %d/%d vs transport %d/%d", frames, data, inF, inD)
	}
	if ct.Stats().FramesDropped == 0 {
		t.Fatal("drop plan never fired")
	}
	for i := 0; i < tb.g.NumLinks(); i++ {
		ct.SetLinkChaos(topology.LinkID(i), LinkChaos{})
	}
	tb.net.RepairLink(l)
	auditPool(t, tb, ct)
}

// TestChaosPartitionIsAsymmetric: cutting one direction of a link must drop
// that direction only, keep the pool balanced, and stay invisible to the
// protocol's component-failure oracle.
func TestChaosPartitionIsAsymmetric(t *testing.T) {
	cfg := DefaultConfig()
	tb, ct := newChaosTestbed(t, cfg, ChaosParams{Seed: 7})
	// Cut the direction node 1 -> node 0: the failure report about the
	// primary's second link must cross it to reach the source. The forward
	// direction stays open, the protocol sees a healthy link (failures are
	// detected, cuts are not), and RCC retransmission rides out the cut.
	fwd := tb.conn.Primary.Path.Links()[0]
	cut := tb.g.Reverse(fwd)
	ct.SetPartition(cut, true)
	if !ct.Partitioned(cut) {
		t.Fatal("partition not recorded")
	}
	if ct.Partitioned(fwd) {
		t.Fatal("cutting one direction cut the reverse too")
	}
	broken := tb.conn.Primary.Path.Links()[1]
	tb.net.FailLink(broken)
	tb.eng.RunFor(sim.Duration(300 * time.Millisecond))
	if got := ct.Stats().PartitionDropped; got == 0 {
		t.Fatal("nothing crossed the cut")
	}
	tb.net.RepairLink(broken)
	ct.HealAllPartitions()
	if ct.Partitioned(cut) {
		t.Fatal("HealAllPartitions left a cut in place")
	}
	auditPool(t, tb, ct)
}

// TestChaosCorruptionNeverDecodable: the wire format has no checksum, so
// the chaos layer models a link-layer FCS — a mangled frame is delivered
// only if it no longer decodes (the receive path discards it); a mutant
// that still decodes is dropped instead of delivered, since a forged
// control message would break the protocol in ways no real link does. The
// tap sees both kinds (fuzz seeding wants the decodable ones too), so the
// split must match the delivered/dropped counters exactly.
func TestChaosCorruptionNeverDecodable(t *testing.T) {
	decodable := 0
	tapped := 0
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(time.Second)
	tb, ct := newChaosTestbed(t, cfg, ChaosParams{
		Seed:    7,
		Default: LinkChaos{Corrupt: 1.0},
		CorruptTap: func(_ topology.LinkID, frame []byte) {
			tapped++
			if _, err := wire.Unmarshal(frame); err == nil {
				decodable++
			}
		},
	})
	l := tb.conn.Primary.Path.Links()[0]
	tb.net.FailLink(l)
	tb.eng.RunFor(sim.Duration(100 * time.Millisecond))
	if tapped == 0 {
		t.Fatal("corruption plan never fired")
	}
	st := ct.Stats()
	if uint64(decodable) != st.FramesCorruptDrop {
		t.Fatalf("%d mutants decodable but %d dropped as decodable", decodable, st.FramesCorruptDrop)
	}
	if uint64(tapped) != st.FramesCorrupted+st.FramesCorruptDrop {
		t.Fatalf("tap saw %d frames, counters account for %d", tapped, st.FramesCorrupted+st.FramesCorruptDrop)
	}
	for i := 0; i < tb.g.NumLinks(); i++ {
		ct.SetLinkChaos(topology.LinkID(i), LinkChaos{})
	}
	tb.net.RepairLink(l)
	auditPool(t, tb, ct)
}

// TestChaosDelayPreservesDelivery: pure jitter (no loss) must not lose or
// leak any pooled buffer, and recovery must still complete.
func TestChaosDelayPreservesDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(time.Second)
	tb, ct := newChaosTestbed(t, cfg, ChaosParams{
		Seed:    7,
		Default: LinkChaos{Delay: 1.0, DelayMax: sim.Duration(3 * time.Millisecond)},
	})
	l := tb.conn.Primary.Path.Links()[0]
	tb.net.FailLink(l)
	tb.eng.RunFor(sim.Duration(200 * time.Millisecond))
	tb.net.RepairLink(l)
	auditPool(t, tb, ct)
	if ct.Stats().Delayed == 0 {
		t.Fatal("delay plan never fired")
	}
	if tb.conn.Primary == nil {
		t.Fatal("connection lost its primary under pure jitter")
	}
	if viol := tb.net.CheckQuiescence(); len(viol) != 0 {
		t.Fatalf("quiescence audit: %v", viol)
	}
}
