package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 1 {
		t.Fatal("empty ratio should be vacuous success")
	}
	r.Add(3, 4)
	r.Add(1, 4)
	if r.Value() != 0.5 {
		t.Fatalf("value = %g", r.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Count() != 0 {
		t.Fatal("empty mean wrong")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.Count() != 2 {
		t.Fatalf("mean = %g count = %d", m.Value(), m.Count())
	}
}

func TestSeriesAppend(t *testing.T) {
	s := Series{Name: "x"}
	s.Append(1, 2)
	s.Append(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Fatal("append broken")
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.3025); got != "30.25%" {
		t.Fatalf("got %q", got)
	}
	if got := FormatPercent(math.NaN()); got != "N/A" {
		t.Fatalf("NaN rendered %q", got)
	}
	if got := FormatPercent(1); got != "100.00%" {
		t.Fatalf("got %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Columns: []string{"Metric", "a", "b"}}
	tb.AddPercentRow("coverage", 1, math.NaN())
	tb.AddRow("raw", "x", "y")
	out := tb.String()
	for _, want := range []string{"Demo", "Metric", "coverage", "100.00%", "N/A", "raw"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestRenderSeries(t *testing.T) {
	a := Series{Name: "s1", XLabel: "load"}
	a.Append(0.1, 0.2)
	a.Append(0.3, 0.4)
	b := Series{Name: "s2"}
	b.Append(0.1, 0.9)
	out := RenderSeries("title", a, b)
	for _, want := range []string{"title", "load", "s1", "s2", "0.2000", "0.9000", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if got := RenderSeries("empty"); !strings.Contains(got, "empty") {
		t.Fatal("empty render broken")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{5: "a", 1: "b", 3: "c"}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("keys = %v", got)
	}
}
