// Package baseline implements the comparison schemes of the paper's §7.4 and
// §8: brute-force multiplexing (a uniform spare reservation on every link,
// ignoring network state) and recovery by re-establishment from scratch with
// no reserved spare resources ([BAN93]-style).
package baseline

import (
	"math/rand"
	"sort"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// BruteForce evaluates backup activation when every link reserves the same
// fixed amount of spare bandwidth regardless of which backups traverse it.
// The paper sizes this uniform reservation to the *average* spare required
// by the proposed scheme, making the comparison resource-neutral.
type BruteForce struct {
	m        *core.Manager
	perLink  float64
	capLimit bool
}

// NewBruteForce wraps an established manager. perLink is the uniform spare
// reservation applied to every link. If capLimit is true the usable spare on
// a link is additionally capped by the link's actual headroom
// (capacity − dedicated), which matters on heavily loaded links.
func NewBruteForce(m *core.Manager, perLink float64, capLimit bool) *BruteForce {
	return &BruteForce{m: m, perLink: perLink, capLimit: capLimit}
}

// PerLink returns the uniform per-link spare reservation.
func (b *BruteForce) PerLink() float64 { return b.perLink }

// UniformSpareFromManager returns the proposed scheme's average spare per
// link, the paper's sizing rule for the brute-force comparison.
func UniformSpareFromManager(m *core.Manager) float64 {
	g := m.Graph()
	var total float64
	for _, l := range g.Links() {
		total += m.Network().Spare(l.ID)
	}
	return total / float64(g.NumLinks())
}

// Trial mirrors core.Manager.Trial but draws activations from the uniform
// pools instead of the multiplexing engine's sized pools.
func (b *BruteForce) Trial(f core.Failure, order core.ActivationOrder, rng *rand.Rand) core.RecoveryStats {
	var stats core.RecoveryStats
	var needs []*core.DConnection
	for _, conn := range b.m.Connections() {
		if f.NodeFailed(conn.Src) || f.NodeFailed(conn.Dst) {
			if connAffected(conn, f) {
				stats.ExcludedConns++
			}
			continue
		}
		primaryHit := conn.Primary != nil && f.HitsPath(conn.Primary.Path)
		for _, bk := range conn.Backups {
			if f.HitsPath(bk.Path) {
				stats.FailedBackups++
			}
		}
		if primaryHit {
			stats.FailedPrimaries++
			bumpDegree(&stats, conn, 1, 0)
			needs = append(needs, conn)
		}
	}
	sortConns(needs, order, rng)

	claimed := make(map[topology.LinkID]float64)
	for _, conn := range needs {
		switch b.tryActivate(conn, f, claimed) {
		case outcomeActivated:
			stats.FastRecovered++
			bumpDegree(&stats, conn, 0, 1)
		case outcomeBackupsDead:
			stats.BackupDead++
		case outcomeExhausted:
			stats.MuxFailed++
		}
	}
	return stats
}

type outcome uint8

const (
	outcomeActivated outcome = iota
	outcomeBackupsDead
	outcomeExhausted
)

func (b *BruteForce) tryActivate(conn *core.DConnection, f core.Failure, claimed map[topology.LinkID]float64) outcome {
	bw := conn.Spec.Bandwidth
	sawHealthy := false
	for _, bk := range conn.Backups {
		if f.HitsPath(bk.Path) {
			continue
		}
		sawHealthy = true
		links := bk.Path.Links()
		ok := true
		for _, l := range links {
			if claimed[l]+bw > b.pool(l)+1e-9 {
				ok = false
				break
			}
		}
		if ok {
			for _, l := range links {
				claimed[l] += bw
			}
			return outcomeActivated
		}
	}
	if sawHealthy {
		return outcomeExhausted
	}
	return outcomeBackupsDead
}

// pool returns the usable uniform spare on link l.
func (b *BruteForce) pool(l topology.LinkID) float64 {
	if !b.capLimit {
		return b.perLink
	}
	head := b.m.Network().Capacity(l) - b.m.Network().Dedicated(l)
	if head < b.perLink {
		return head
	}
	return b.perLink
}

func connAffected(conn *core.DConnection, f core.Failure) bool {
	if conn.Primary != nil && f.HitsPath(conn.Primary.Path) {
		return true
	}
	for _, bk := range conn.Backups {
		if f.HitsPath(bk.Path) {
			return true
		}
	}
	return f.NodeFailed(conn.Src) || f.NodeFailed(conn.Dst)
}

func bumpDegree(stats *core.RecoveryStats, conn *core.DConnection, failed, recovered int) {
	alpha := 1 << 30
	if len(conn.Degrees) > 0 {
		alpha = conn.Degrees[0]
	}
	if stats.ByDegree == nil {
		stats.ByDegree = make(map[int]core.DegreeStats)
	}
	d := stats.ByDegree[alpha]
	d.FailedPrimaries += failed
	d.FastRecovered += recovered
	stats.ByDegree[alpha] = d
}

func sortConns(conns []*core.DConnection, order core.ActivationOrder, rng *rand.Rand) {
	sort.Slice(conns, func(i, j int) bool { return conns[i].ID < conns[j].ID })
	switch order {
	case core.OrderByPriority:
		sort.SliceStable(conns, func(i, j int) bool {
			di, dj := 1<<30, 1<<30
			if len(conns[i].Degrees) > 0 {
				di = conns[i].Degrees[0]
			}
			if len(conns[j].Degrees) > 0 {
				dj = conns[j].Degrees[0]
			}
			return di < dj
		})
	case core.OrderRandom:
		if rng != nil {
			rng.Shuffle(len(conns), func(i, j int) { conns[i], conns[j] = conns[j], conns[i] })
		}
	}
}

// Reestablish evaluates the [BAN93]-style baseline: no backups and no spare
// reservation; after a failure each disabled connection attempts to
// establish a brand-new channel on the residual network. It reports the
// fraction of failed primaries that could be re-established at all (the
// scheme gives no guarantee and is slow — every success still pays a full
// round of signaling, which the protocol-level experiments quantify).
type Reestablish struct {
	m      *core.Manager
	router *routing.Router
}

// NewReestablish wraps a manager whose connections were established without
// backups.
func NewReestablish(m *core.Manager) *Reestablish {
	return &Reestablish{m: m, router: routing.NewRouter(m.Graph())}
}

// Trial simulates post-failure re-establishment: failed primaries retry on
// the residual topology (failed components removed) against the residual
// bandwidth plus their own released reservations, honoring the QoS hop rule.
// Recovered connections' new reservations compete with later retries,
// matching the contention the paper describes.
func (r *Reestablish) Trial(f core.Failure) core.RecoveryStats {
	var stats core.RecoveryStats
	g := r.m.Graph()
	net := r.m.Network()

	// Residual free bandwidth per link: free + what failed channels release.
	freed := make(map[topology.LinkID]float64)
	var needs []*core.DConnection
	for _, conn := range r.m.Connections() {
		if conn.Primary == nil {
			continue
		}
		if f.NodeFailed(conn.Src) || f.NodeFailed(conn.Dst) {
			if f.HitsPath(conn.Primary.Path) {
				stats.ExcludedConns++
			}
			continue
		}
		if f.HitsPath(conn.Primary.Path) {
			stats.FailedPrimaries++
			needs = append(needs, conn)
			for _, l := range conn.Primary.Path.Links() {
				freed[l] += conn.Spec.Bandwidth
			}
		}
	}
	sort.Slice(needs, func(i, j int) bool { return needs[i].ID < needs[j].ID })

	taken := make(map[topology.LinkID]float64)
	for _, conn := range needs {
		bw := conn.Spec.Bandwidth
		base := r.router.Distance(conn.Src, conn.Dst)
		c := routing.Constraint{
			MaxHops: base + conn.Spec.SlackHops,
			LinkAllowed: func(l topology.LinkID) bool {
				if f.LinkFailed(l) {
					return false
				}
				lk := g.Link(l)
				if f.NodeFailed(lk.From) || f.NodeFailed(lk.To) {
					return false
				}
				return net.Free(l)+freed[l]-taken[l] >= bw-1e-9
			},
			NodeAllowed: func(n topology.NodeID) bool { return !f.NodeFailed(n) },
		}
		if p, ok := r.router.ShortestPath(conn.Src, conn.Dst, c); ok {
			for _, l := range p.Links() {
				taken[l] += bw
			}
			stats.FastRecovered++ // "recovered" here, though not fast: see docs
		}
	}
	return stats
}

// Spec re-exports the substrate's traffic spec type for baseline callers.
type Spec = rtchan.TrafficSpec
