// Command bcpchaos runs the adversarial model check: seeded episodes of
// fault schedules under a hostile transport, each checked against the
// conformance oracle plus quiescence and liveness invariants, with failing
// schedules shrunk to minimal replayable reproducers.
//
// Usage:
//
//	bcpchaos -episodes 1000                 # model-check run
//	bcpchaos -seed 7 -class pingpong        # one class only
//	bcpchaos -replay repro.json             # re-run a reproducer artifact
//	bcpchaos -replay repro.json -sabotage   # ...with the historical bug back in
//	bcpchaos -artifacts out/                # write reproducers for failures
//	bcpchaos -corpus corpus/                # harvest wire frames for fuzzing
//
// Exit status: 0 when every episode (or the replay) passes, 1 on violations,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/chaos"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "run seed (drives schedules, packet chaos, interleavings)")
		episodes  = flag.Int("episodes", 100, "number of seeded episodes")
		class     = flag.String("class", "", "comma-separated schedule classes (default: all of "+strings.Join(chaos.Classes, ",")+")")
		replay    = flag.String("replay", "", "replay a reproducer artifact instead of generating episodes")
		artifacts = flag.String("artifacts", "", "directory for failure reproducer artifacts")
		corpus    = flag.String("corpus", "", "directory to harvest observed wire frames into (fuzz seeds)")
		sabotage  = flag.Bool("sabotage", false, "re-introduce the fixed promote-rearm bug (harness self-test)")
		maxFail   = flag.Int("maxfail", 1, "stop after this many failures (<0 = never)")
		verbose   = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()

	var sab *bcpd.Sabotage
	if *sabotage {
		sab = &bcpd.Sabotage{SkipPromoteRearm: true}
	}
	var harvest *corpusWriter
	var tap func([]byte)
	if *corpus != "" {
		harvest = newCorpusWriter(*corpus)
		tap = harvest.Observe
	}

	if *replay != "" {
		os.Exit(runReplay(*replay, sab, tap, harvest))
	}

	opts := chaos.Options{
		Seed:         *seed,
		Episodes:     *episodes,
		Sabotage:     sab,
		ArtifactDir:  *artifacts,
		MaxFailures:  *maxFail,
		FrameTap:     tap,
		ShrinkBudget: 0, // default
	}
	if *class != "" {
		opts.Classes = strings.Split(*class, ",")
		for _, c := range opts.Classes {
			if !validClass(c) {
				fmt.Fprintf(os.Stderr, "bcpchaos: unknown class %q (have %s)\n", c, strings.Join(chaos.Classes, ","))
				os.Exit(2)
			}
		}
	}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := chaos.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpchaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("episodes %d  skipped %d  conns %d  reestablished %d  events %d\n",
		rep.Episodes, rep.Skipped, rep.Conns, rep.Reestablished, rep.Events)
	fmt.Printf("run digest %s\n", rep.Digest)
	if harvest != nil {
		n, err := harvest.Flush()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcpchaos: corpus: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("corpus: %d distinct frames -> %s\n", n, *corpus)
	}
	for _, f := range rep.Failures {
		fmt.Printf("FAIL episode %d: shrunk %d -> %d events (%d probe runs)\n",
			f.Episode, len(f.Original.Events), len(f.Shrunk.Events), f.ShrinkRuns)
		for _, v := range f.Violations {
			fmt.Printf("  %s\n", v)
		}
		if f.ArtifactPath != "" {
			fmt.Printf("  reproducer: %s\n", f.ArtifactPath)
		}
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

func validClass(c string) bool {
	for _, k := range chaos.Classes {
		if k == c {
			return true
		}
	}
	return false
}

func runReplay(path string, sab *bcpd.Sabotage, tap func([]byte), harvest *corpusWriter) int {
	a, err := chaos.ReadArtifact(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpchaos: %v\n", err)
		return 2
	}
	res, err := chaos.ReplayArtifact(a, chaos.RunOptions{Sabotage: sab, FrameTap: tap})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpchaos: replay: %v\n", err)
		return 1
	}
	fmt.Printf("replayed %s: %s schedule, %d events, digest %s\n",
		path, a.Spec.Class, len(a.Spec.Events), res.Digest)
	if harvest != nil {
		if n, err := harvest.Flush(); err == nil {
			fmt.Printf("corpus: %d distinct frames\n", n)
		}
	}
	if len(res.Violations) == 0 {
		fmt.Println("PASS")
		return 0
	}
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	return 1
}
