// Dynamic: BCP under churn. The VP-restoration schemes the paper compares
// against (§8) compute all paths and spare capacity at network design time
// and cannot handle connections that come and go; BCP's hop-by-hop backup
// multiplexing re-sizes spare pools incrementally on every setup, teardown,
// and recovery. This example drives Poisson arrivals/departures, crashes a
// random link every simulated second, and shows the network stays sound.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/rtcl/bcp"
)

func main() {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	eng := bcp.NewEngine(7)
	rng := bcp.NewRand(42)

	trace := bcp.Dynamic(g, bcp.DynamicConfig{
		ArrivalRate: 300,
		MeanHolding: 2 * time.Second,
		Duration:    10 * time.Second,
		Spec:        bcp.DefaultSpec(),
		Degrees:     []int{3},
	}, rng)
	fmt.Printf("workload: %d connection requests over 10s (Poisson, mean holding 2s)\n\n", len(trace))
	stats := bcp.RunChurn(eng, mgr, trace)

	// A failure every second; recovery runs transactionally right away.
	var recovered, failedPrimaries int
	for i := 1; i <= 9; i++ {
		i := i
		eng.Schedule(time.Duration(i)*time.Second, func() {
			l := bcp.LinkID(rng.Intn(g.NumLinks()))
			rs, err := mgr.Apply(bcp.SingleLink(l), bcp.OrderByPriority, nil)
			if err != nil {
				log.Fatal(err)
			}
			recovered += rs.FastRecovered
			failedPrimaries += rs.FailedPrimaries
			fmt.Printf("t=%ds: link %3d crashes — %3d primaries hit, %3d recovered fast (load %.1f%%, spare %.1f%%)\n",
				i, l, rs.FailedPrimaries, rs.FastRecovered,
				mgr.Network().NetworkLoad()*100, mgr.Network().SpareFraction()*100)
		})
	}
	eng.Run()

	fmt.Printf("\nchurn: %d established, %d rejected, %d departed, %d still live\n",
		stats.Established, stats.Rejected, stats.Departed, mgr.NumConnections())
	fmt.Printf("failures: %d primaries hit, %d fast recoveries (%.1f%%)\n",
		failedPrimaries, recovered, 100*float64(recovered)/float64(max(failedPrimaries, 1)))
	fmt.Printf("peak load %.1f%%, peak spare %.1f%%\n", stats.PeakLoad*100, stats.PeakSpare*100)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
