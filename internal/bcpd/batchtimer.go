package bcpd

import (
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// Batched timers take the round's timer coalescing to its conclusion. A mass
// failure arms one rejoin timer per stopped channel and one replenish timer
// per activated connection — hundreds of heap entries and hundreds of
// closures per storm, each closure capturing the channel identity it fires
// for. All arms staged in one dispatch round share the same deadline, so the
// batched engine funds the whole round with ONE timer whose payload is a
// plain entry list: no per-channel closures, one heap insert, and the batch
// (entry storage plus its single prebuilt fire closure) recycles through a
// pool once it fires. The per-message engine keeps one timer and one fresh
// closure per arm — it is the pre-batching baseline the benchmarks compare
// against.
//
// Cancellation cannot go through sim.Timer.Stop anymore (stopping the shared
// timer would kill every other arm), so a batch entry is cancelled by
// marking it in place; the fire loop skips marked entries, exactly as the
// per-message path's Schedule-then-Stop leaves no live timer. rejoinRef is
// the daemon-side handle that hides the two flavors.
//
// Firing order is unchanged: entries run in staging order, which is the
// order the per-message path would have Scheduled (and the engine fired)
// them in. The batch fire also opens a dispatch round of its own, so the
// closure announcements of an expiry burst coalesce into per-link frames
// just like the report storm that preceded them.

// rejoinRef is a daemon's handle to one armed rejoin timer: either a private
// sim.Timer (per-message engine, or an arm made outside any round) or a slot
// in a shared rejoinBatch. The zero rejoinRef is inactive.
type rejoinRef struct {
	t     sim.Timer
	batch *rejoinBatch
	idx   int32
	gen   uint32
}

// active reports whether the referenced arm is still pending. A recycled
// batch (generation mismatch) or a fired/cancelled entry is inactive,
// mirroring sim.Timer.Active across slot reuse.
func (r rejoinRef) active() bool {
	if r.batch != nil {
		if r.batch.gen != r.gen {
			return false
		}
		e := &r.batch.entries[r.idx]
		return !e.cancelled && !e.done
	}
	return r.t.Active()
}

// stop cancels the referenced arm; stopping a fired, cancelled, or recycled
// arm is a no-op, like sim.Timer.Stop.
func (r rejoinRef) stop() {
	if r.batch != nil {
		if r.batch.gen == r.gen {
			r.batch.entries[r.idx].cancelled = true
		}
		return
	}
	r.t.Stop()
}

// rejoinEntry is one channel's rejoin-expiry arm inside a batch — the
// identity the per-message closure would have captured, stored flat.
type rejoinEntry struct {
	d         *daemon
	chID      rtchan.ChannelID
	connID    rtchan.ConnID
	path      topology.Path
	cancelled bool
	done      bool
}

// rejoinBatch funds every rejoin arm staged in one dispatch round with a
// single timer. gen invalidates outstanding rejoinRefs when the batch
// recycles through the Network's pool.
type rejoinBatch struct {
	n       *Network
	gen     uint32
	entries []rejoinEntry
	fire    func() // prebuilt b.run, amortized with the batch
}

func (n *Network) getRejoinBatch() *rejoinBatch {
	if k := len(n.rejoinBatchFree); k > 0 {
		b := n.rejoinBatchFree[k-1]
		n.rejoinBatchFree[k-1] = nil
		n.rejoinBatchFree = n.rejoinBatchFree[:k-1]
		return b
	}
	b := &rejoinBatch{n: n}
	b.fire = b.run
	return b
}

// run fires every surviving entry in staging order. The whole burst runs
// inside one dispatch round: each expiry's closure announcements stage per
// link and flush as shared frames, and the replenishments the expiries
// request coalesce into one timer as well.
func (b *rejoinBatch) run() {
	opened := b.n.beginRound()
	for i := range b.entries {
		e := &b.entries[i]
		if e.cancelled {
			continue
		}
		// Retire the arm before running it, as the engine does for a firing
		// timer; earlier entries may cancel later ones through stopRejoinTimer,
		// which is why cancelled is re-checked every iteration.
		e.done = true
		delete(e.d.rejoinTimers, e.chID)
		e.d.rejoinExpire(e.chID, e.connID, e.path)
	}
	if opened {
		b.n.endRound()
	}
	b.gen++
	for i := range b.entries {
		b.entries[i] = rejoinEntry{}
	}
	b.entries = b.entries[:0]
	b.n.rejoinBatchFree = append(b.n.rejoinBatchFree, b)
}

// probeEntry is one channel's staged rejoin probe. Probes are fire-and-
// forget (the fire re-checks state U), so no cancellation or generation
// bookkeeping is needed.
type probeEntry struct {
	d    *daemon
	chID rtchan.ChannelID
}

// probeBatch funds every rejoin probe staged in one dispatch round with a
// single timer.
type probeBatch struct {
	n       *Network
	entries []probeEntry
	fire    func()
}

func (n *Network) getProbeBatch() *probeBatch {
	if k := len(n.probeBatchFree); k > 0 {
		b := n.probeBatchFree[k-1]
		n.probeBatchFree[k-1] = nil
		n.probeBatchFree = n.probeBatchFree[:k-1]
		return b
	}
	b := &probeBatch{n: n}
	b.fire = b.run
	return b
}

// run fires the probes in staging order inside one dispatch round, so the
// burst's rejoin-requests coalesce into per-link frames.
func (b *probeBatch) run() {
	opened := b.n.beginRound()
	for _, e := range b.entries {
		e.d.probeFire(e.chID)
	}
	if opened {
		b.n.endRound()
	}
	b.entries = b.entries[:0]
	b.n.probeBatchFree = append(b.n.probeBatchFree, b)
}

// replBatch funds every replenishment requested in one dispatch round with a
// single timer: the connection IDs are payload, not captures. Replenish has
// no cancellation path (the fire re-checks the backup count), so no
// generation bookkeeping is needed.
type replBatch struct {
	n     *Network
	conns []rtchan.ConnID
	fire  func()
}

func (n *Network) getReplBatch() *replBatch {
	if k := len(n.replBatchFree); k > 0 {
		b := n.replBatchFree[k-1]
		n.replBatchFree[k-1] = nil
		n.replBatchFree = n.replBatchFree[:k-1]
		return b
	}
	b := &replBatch{n: n}
	b.fire = b.run
	return b
}

func (b *replBatch) run() {
	for _, c := range b.conns {
		b.n.replenishNow(c)
	}
	b.conns = b.conns[:0]
	b.n.replBatchFree = append(b.n.replBatchFree, b)
}
