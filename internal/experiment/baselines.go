package experiment

import (
	"fmt"

	"github.com/rtcl/bcp/internal/baseline"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// BaselineComparisonResult contrasts BCP against the [BAN93]-style
// recover-by-reestablishment approach of §8 under a saturating offered load
// (three all-pairs rounds, ~96% of capacity if fully admitted): BCP trades
// admitted connections for reserved spare and bounded, guaranteed recovery;
// re-establishment admits more but recovery collapses exactly when the
// network is busy — the paper's argument for reserving a priori.
type BaselineComparisonResult struct {
	Kind   Kind
	Rounds int

	// BCP world: one backup at mux=3 per connection.
	BCPAdmitted int
	BCPLoad     float64
	BCPSpare    float64
	BCPOneLink  float64
	BCPOneNode  float64

	// Reestablishment world: no backups, no spare.
	ReAdmitted int
	ReLoad     float64
	ReOneLink  float64
	ReOneNode  float64
}

// RunBaselineComparison evaluates both worlds under the same offered load.
func RunBaselineComparison(opts Options) BaselineComparisonResult {
	const rounds = 3
	res := BaselineComparisonResult{Kind: Torus8x8, Rounds: rounds}

	// BCP world.
	{
		g := NewGraph(Torus8x8)
		m := core.NewManager(g, opts.config())
		res.BCPAdmitted = establishRounds(m, g, []int{3}, rounds)
		res.BCPLoad = m.Network().NetworkLoad()
		res.BCPSpare = m.Network().SpareFraction()
		res.BCPOneLink = Sweep(m, AllSingleLinkFailures(g), opts).RFast
		res.BCPOneNode = Sweep(m, AllSingleNodeFailures(g), opts).RFast
	}
	// Re-establishment world.
	{
		g := NewGraph(Torus8x8)
		m := core.NewManager(g, opts.config())
		res.ReAdmitted = establishRounds(m, g, nil, rounds)
		res.ReLoad = m.Network().NetworkLoad()
		re := baseline.NewReestablish(m)
		var link, node metrics.Ratio
		for _, f := range AllSingleLinkFailures(g) {
			st := re.Trial(f)
			link.Add(float64(st.FastRecovered), float64(st.FailedPrimaries))
		}
		for _, f := range AllSingleNodeFailures(g) {
			st := re.Trial(f)
			node.Add(float64(st.FastRecovered), float64(st.FailedPrimaries))
		}
		res.ReOneLink = link.Value()
		res.ReOneNode = node.Value()
	}
	return res
}

// establishRounds offers the all-pairs workload `rounds` times, returning
// the number of connections admitted.
func establishRounds(m *core.Manager, g *topology.Graph, degrees []int, rounds int) int {
	admitted := 0
	n := g.NumNodes()
	for round := 0; round < rounds; round++ {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				if _, err := m.Establish(topology.NodeID(s), topology.NodeID(d), rtchan.DefaultSpec(), degrees); err == nil {
					admitted++
				}
			}
		}
	}
	return admitted
}

// Render prints the §8 comparison.
func (r BaselineComparisonResult) Render() string {
	t := &metrics.Table{
		Title: fmt.Sprintf("BCP vs recover-by-reestablishment ([BAN93], §8) — %s, %d all-pairs rounds offered",
			r.Kind, r.Rounds),
		Columns: []string{"Metric", "BCP (1 backup, mux=3)", "Re-establishment"},
	}
	t.AddRow("Connections admitted", fmt.Sprintf("%d", r.BCPAdmitted), fmt.Sprintf("%d", r.ReAdmitted))
	t.AddRow("Network load", metrics.FormatPercent(r.BCPLoad), metrics.FormatPercent(r.ReLoad))
	t.AddRow("Spare reservation", metrics.FormatPercent(r.BCPSpare), "0.00%")
	t.AddRow("Recovery, 1 link failure", metrics.FormatPercent(r.BCPOneLink), metrics.FormatPercent(r.ReOneLink))
	t.AddRow("Recovery, 1 node failure", metrics.FormatPercent(r.BCPOneNode), metrics.FormatPercent(r.ReOneNode))
	t.AddRow("Recovery latency", "bounded (ms; §5.3)", "unbounded (signaling + retries)")
	t.AddRow("Single-failure guarantee", "all links at mux<=3", "none")
	return t.String()
}
