// Package bcp implements the Backup Channel Protocol of Han and Shin,
// "Fast Restoration of Real-Time Communication Service from Component
// Failures in Multi-hop Networks" (SIGCOMM 1997): dependable real-time
// connections built from a primary channel plus cold-standby backup
// channels whose spare bandwidth is shared by backup multiplexing.
//
// The package is a facade over the implementation packages:
//
//   - topology generation and routing (torus, mesh, and friends; shortest
//     and component-disjoint paths)
//   - the resource plane: per-link bandwidth accounts, admission control,
//     and the backup-multiplexing engine with per-connection multiplexing
//     degrees (the paper's fault-tolerance QoS knob)
//   - failure trials measuring the fast-recovery ratio R_fast, and the
//     mutating recovery path with spare-pool reconfiguration
//   - the message-level protocol engine: failure reports, the three
//     channel-switching schemes, spare-bandwidth claims, priority-based
//     activation (delayed and preemptive), soft-state rejoin, all over
//     per-link real-time control channels inside a deterministic
//     discrete-event simulation
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation (see EXPERIMENTS.md)
//
// # Quick start
//
//	g := bcp.NewTorus(8, 8, 200)
//	mgr := bcp.NewManager(g, bcp.DefaultConfig())
//
//	// A dependable connection: 1 Mbps, one disjoint backup that shares
//	// spare bandwidth with backups whose primaries share no components
//	// (mux degree 1 = survives any single component failure).
//	conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{1})
//	if err != nil { ... }
//
//	// What happens if a link on the primary fails?
//	stats := mgr.Trial(bcp.SingleLink(conn.Primary.Path.Links()[0]), bcp.OrderByConn, nil)
//	fmt.Println(stats.RFast()) // 1: the backup activates
//
// For message-level runs (recovery delays, rejoin, priorities) see
// NewEngine/NewProtocol, and the runnable programs under examples/.
package bcp
