package bcpd

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// source emits a connection's data messages at a fixed rate along the
// channel the source node currently considers the primary.
type source struct {
	net     *Network
	conn    rtchan.ConnID
	rate    float64 // messages per second
	active  rtchan.ChannelID
	seq     uint64
	stopped bool
	emitFn  func() // emitLoop, bound once so rescheduling does not allocate

	// switchedAt records every primary switch at the source — the moment
	// data transfer resumes after a failure (the paper's recovery instant
	// for schemes 2 and 3; for scheme 1, when the activation arrives).
	switchedAt []sim.Time
}

// sink records data-message arrivals at the destination.
type sink struct {
	arrivals  []sim.Time
	received  uint64
	lastSeq   uint64
	reordered uint64
}

// StartTraffic attaches a data source (rate messages/second) and sink to an
// established connection and begins emission immediately.
func (n *Network) StartTraffic(connID rtchan.ConnID, rate float64) error {
	conn := n.mgr.Connection(connID)
	if conn == nil {
		return fmt.Errorf("bcpd: unknown connection %d", connID)
	}
	if conn.Primary == nil {
		return fmt.Errorf("bcpd: connection %d has no primary", connID)
	}
	if rate <= 0 {
		return fmt.Errorf("bcpd: non-positive rate %g", rate)
	}
	if _, dup := n.sources[connID]; dup {
		return fmt.Errorf("bcpd: traffic already started on %d", connID)
	}
	s := &source{net: n, conn: connID, rate: rate, active: conn.Primary.ID}
	s.emitFn = s.emitLoop
	n.sources[connID] = s
	n.sinks[connID] = &sink{}
	s.emitLoop()
	return nil
}

// StopTraffic halts a connection's source.
func (n *Network) StopTraffic(connID rtchan.ConnID) {
	if s, ok := n.sources[connID]; ok {
		s.stopped = true
	}
}

func (s *source) emitLoop() {
	if s.stopped {
		return
	}
	s.emit()
	interval := sim.Duration(float64(time.Second) / s.rate)
	s.net.rt.Schedule(interval, s.emitFn)
}

func (s *source) emit() {
	n := s.net
	ch := n.mgr.Network().Channel(s.active)
	if ch == nil {
		return // channel torn down and nothing activated yet
	}
	src := n.nodes[ch.Path.Source()]
	if src.dead {
		s.stopped = true
		return
	}
	s.seq++
	n.stats.DataSent++
	pkt := n.getDataBox()
	*pkt = dataPayload{conn: s.conn, ch: s.active, seq: s.seq, sent: n.rt.Now()}
	// The source forwards onto the first link of the active channel.
	l := ch.Path.Links()[0]
	n.tr.SendData(l, pkt)
}

// handleData forwards (or sinks) a data message arriving at this node. The
// payload box is recycled on every terminal path; forwarding passes it on.
func (d *daemon) handleData(p *dataPayload) {
	n := d.net
	if d.dead {
		n.stats.DataDropped++
		n.putDataBox(p)
		return
	}
	ch := d.channel(p.ch)
	if ch == nil || d.states[p.ch] != stateP {
		// Data on a channel this node has not activated (or that failed)
		// is discarded with no harm (§4.2 footnote).
		n.stats.DataDropped++
		n.putDataBox(p)
		return
	}
	if d.id == ch.Path.Destination() {
		sk := n.sinks[p.conn]
		if sk == nil {
			n.stats.DataDropped++
			n.putDataBox(p)
			return
		}
		n.stats.DataDelivered++
		sk.received++
		sk.arrivals = append(sk.arrivals, n.rt.Now())
		if p.seq < sk.lastSeq {
			sk.reordered++
		}
		sk.lastSeq = p.seq
		n.putDataBox(p)
		return
	}
	idx := ch.Path.IndexOfNode(d.id)
	if idx < 0 {
		n.stats.DataDropped++
		n.putDataBox(p)
		return
	}
	l := ch.Path.Links()[idx]
	n.tr.SendData(l, p)
}

// noteSourceSwitch redirects the connection's source to a newly activated
// channel; data transfer resumes on the next emission.
func (n *Network) noteSourceSwitch(connID rtchan.ConnID, ch rtchan.ChannelID) {
	s := n.sources[connID]
	if s == nil || s.active == ch {
		return
	}
	s.active = ch
	s.switchedAt = append(s.switchedAt, n.rt.Now())
	if n.em.Enabled() {
		node := topology.NoNode
		if c := n.mgr.Network().Channel(ch); c != nil {
			node = c.Path.Source()
		}
		n.em.Emit(trace.Event{
			At:      n.rt.Now(),
			Kind:    trace.KindSourceSwitch,
			Node:    node,
			Link:    topology.NoLink,
			Conn:    connID,
			Channel: ch,
		})
	}
}

// SourceSwitches returns the times the connection's source switched
// channels (empty if traffic was never started or no failure occurred).
func (n *Network) SourceSwitches(connID rtchan.ConnID) []sim.Time {
	if s := n.sources[connID]; s != nil {
		return s.switchedAt
	}
	return nil
}

// SinkArrivals returns the data arrival times recorded at the destination.
func (n *Network) SinkArrivals(connID rtchan.ConnID) []sim.Time {
	if sk := n.sinks[connID]; sk != nil {
		return sk.arrivals
	}
	return nil
}

// MaxArrivalGap returns the largest gap between consecutive data arrivals
// after warmup — the destination-observed service disruption when a single
// failure hits the connection mid-run.
func (n *Network) MaxArrivalGap(connID rtchan.ConnID) sim.Duration {
	arr := n.SinkArrivals(connID)
	var max sim.Duration
	for i := 1; i < len(arr); i++ {
		if g := arr[i].Sub(arr[i-1]); g > max {
			max = g
		}
	}
	return max
}

// FirstArrivalAfter returns the first data arrival at or after t, and
// whether one exists.
func (n *Network) FirstArrivalAfter(connID rtchan.ConnID, t sim.Time) (sim.Time, bool) {
	for _, a := range n.SinkArrivals(connID) {
		if a >= t {
			return a, true
		}
	}
	return 0, false
}
