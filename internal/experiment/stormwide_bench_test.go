package experiment

import (
	"testing"
)

// The mass-failure storm kernels, A/B across dispatch engines. The same
// seeded cycle sequence runs on the batched engine (dispatch rounds, bulk
// timer arming, batched claim release, coalesced reconfiguration) and on
// the per-message baseline; protocol behaviour is bit-identical
// (TestStormWidePerMessageParity), so the ns/op and allocs/op gap is pure
// dispatch mechanics. The timed region is the restoration storm
// (CrashPhase); the repair/replenish half runs with the timer stopped —
// re-establishing the expired channels is identical establishment work in
// both engines and would otherwise drown the dispatch signal. cmd/bcpbench
// records the same pair as RecoveryStormWide / RecoveryStormWide-permsg.
func benchmarkStormWide(b *testing.B, cfg StormWideConfig) {
	s, err := NewStormWide(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(len(s.Victims)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := s.CrashPhase()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.RepairPhase(v); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkStormWide(b *testing.B) {
	benchmarkStormWide(b, StormWideConfig{Seed: 1})
}

func BenchmarkStormWidePerMessage(b *testing.B) {
	benchmarkStormWide(b, StormWideConfig{Seed: 1, PerMessageDispatch: true})
}

func BenchmarkStormWideMesh256(b *testing.B) {
	benchmarkStormWide(b, StormWideConfig{Seed: 1, Mesh: true})
}
