// Package experiment reproduces the paper's evaluation (§7): every table and
// figure has a driver here that builds the network, establishes the paper's
// workload, runs the failure sweeps, and returns the same rows/series the
// paper reports. See DESIGN.md §4 for the experiment index.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Kind names an evaluation network.
type Kind string

// The paper's two evaluation networks. Link capacities are chosen so both
// networks have similar total capacity (paper §7).
const (
	Torus8x8 Kind = "torus-8x8" // 200 Mbps links
	Mesh8x8  Kind = "mesh-8x8"  // 300 Mbps links
)

// NewGraph builds the evaluation network.
func NewGraph(kind Kind) *topology.Graph {
	switch kind {
	case Torus8x8:
		return topology.NewTorus(8, 8, 200)
	case Mesh8x8:
		return topology.NewMesh(8, 8, 300)
	default:
		panic(fmt.Sprintf("experiment: unknown network kind %q", kind))
	}
}

// Options controls an experiment run.
type Options struct {
	// Lambda is the component failure probability per time unit.
	Lambda float64
	// Order is the activation contention order (default OrderByConn).
	Order core.ActivationOrder
	// Seed drives randomized activation ordering (OrderRandom). Each trial
	// derives its own rng from (Seed, trial index) — see trialRNG — so the
	// shuffle a trial sees does not depend on which trials ran before it or
	// on which worker executes it.
	Seed int64
	// DoubleNodeSample limits the double-node sweep to this many sampled
	// pairs (0 = exhaustive: all N·(N-1)/2 pairs).
	DoubleNodeSample int
	// Workers sets the worker-pool size for failure sweeps: the pool shares
	// one established NetworkPlan, each worker trialing through its own
	// per-goroutine core.TrialView, so adding workers adds no establishment
	// or memory cost. 0 or 1 runs serially; negative uses GOMAXPROCS.
	// Results are identical to a serial run for every activation order,
	// including OrderRandom (per-trial rng derivation).
	Workers int
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Lambda: 1e-4}
}

func (o Options) config() core.Config {
	cfg := core.DefaultConfig()
	if o.Lambda > 0 {
		cfg.Lambda = o.Lambda
	}
	return cfg
}

// EstablishAllPairs establishes the paper's workload: one D-connection per
// ordered node pair (64·63 = 4032 on the evaluation networks), in ascending
// (src, dst) order, each requiring 1 Mbps and tolerating 2 extra hops.
// degreesFor returns the backup degrees for the i-th connection (i counts
// attempted establishments). It returns the number of connections
// established and rejected.
func EstablishAllPairs(m *core.Manager, degreesFor func(i int) []int) (established, rejected int) {
	g := m.Graph()
	n := g.NumNodes()
	idx := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			_, err := m.Establish(topology.NodeID(s), topology.NodeID(d), rtchan.DefaultSpec(), degreesFor(idx))
			if err != nil {
				rejected++
			} else {
				established++
			}
			idx++
		}
	}
	return established, rejected
}

// EstablishAllPairsParallel establishes the same workload as
// EstablishAllPairs through core.EstablishBatch: the requests are generated
// in the identical ascending (src, dst) order and committed in that order,
// so the resulting network state — channel ids, paths, spare pools,
// rejections — is bit-identical to the sequential walk, while workers
// planner goroutines overlap the routing and admission work. workers
// follows Options.Workers semantics (<=1 serial, negative = GOMAXPROCS).
func EstablishAllPairsParallel(m *core.Manager, degreesFor func(i int) []int, workers int) (established, rejected int) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := m.Graph()
	n := g.NumNodes()
	reqs := make([]core.EstablishRequest, 0, n*(n-1))
	idx := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			reqs = append(reqs, core.EstablishRequest{
				Src: topology.NodeID(s), Dst: topology.NodeID(d),
				Spec: rtchan.DefaultSpec(), Degrees: degreesFor(idx),
			})
			idx++
		}
	}
	res := m.EstablishBatch(reqs, core.BatchOptions{Workers: workers})
	return res.Established, res.Rejected
}

// UniformDegrees returns a degreesFor function assigning the same backup
// configuration to every connection.
func UniformDegrees(backups, alpha int) func(int) []int {
	degrees := make([]int, backups)
	for i := range degrees {
		degrees[i] = alpha
	}
	return func(int) []int { return degrees }
}

// CyclicDegrees reproduces Table 2's mixed workload: connection i gets
// backups at degree alphas[i % len(alphas)], so each class holds an equal
// quarter of the connections.
func CyclicDegrees(backups int, alphas []int) func(int) []int {
	return func(i int) []int {
		alpha := alphas[i%len(alphas)]
		degrees := make([]int, backups)
		for j := range degrees {
			degrees[j] = alpha
		}
		return degrees
	}
}

// Trialer runs one failure trial; implemented by *core.Manager and the
// brute-force baseline.
type Trialer interface {
	Trial(f core.Failure, order core.ActivationOrder, rng *rand.Rand) core.RecoveryStats
}

// SweepResult aggregates R_fast over a set of failure trials.
type SweepResult struct {
	Trials               int
	RFast                float64
	ByDegree             map[int]float64
	MeanFailedPrimaries  float64
	MeanFailedBackups    float64
	MeanMuxFailed        float64
	MeanBackupDead       float64
	TotalFailedPrimaries int
}

// Sweep evaluates a trialer over every failure in the list, aggregating
// R_fast as total-fast / total-failed across trials (the paper's ratio of
// fast recoveries to failed primary channels).
func Sweep(t Trialer, failures []core.Failure, opts Options) SweepResult {
	stats := make([]core.RecoveryStats, len(failures))
	for i, f := range failures {
		stats[i] = t.Trial(f, opts.Order, opts.trialRNG(i))
	}
	return foldStats(stats)
}

// trialRNG returns the activation-shuffle rng for the trial-th failure of a
// sweep, or nil for deterministic orders. The seed is derived from
// (Options.Seed, trial) so every trial owns an independent stream: a worker
// pool can run trials in any order, on any worker, and still shuffle each
// trial exactly as a serial sweep would.
func (o Options) trialRNG(trial int) *rand.Rand {
	if o.Order != core.OrderRandom {
		return nil
	}
	return rand.New(rand.NewSource(trialSeed(o.Seed, trial)))
}

// trialSeed mixes a sweep seed and a trial index into a well-spread 64-bit
// stream seed (splitmix64 finalizer). Sequential trial indices under
// rand.NewSource would otherwise yield correlated low bits.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// foldStats aggregates per-trial stats in slice order, so a parallel sweep
// that stores results by trial index folds to exactly the serial result.
func foldStats(stats []core.RecoveryStats) SweepResult {
	var r metrics.Ratio
	byDeg := make(map[int]*metrics.Ratio)
	var failedP, failedB, muxF, dead metrics.Mean
	for _, s := range stats {
		r.Add(float64(s.FastRecovered), float64(s.FailedPrimaries))
		failedP.Add(float64(s.FailedPrimaries))
		failedB.Add(float64(s.FailedBackups))
		muxF.Add(float64(s.MuxFailed))
		dead.Add(float64(s.BackupDead))
		for alpha, d := range s.ByDegree {
			rr := byDeg[alpha]
			if rr == nil {
				rr = &metrics.Ratio{}
				byDeg[alpha] = rr
			}
			rr.Add(float64(d.FastRecovered), float64(d.FailedPrimaries))
		}
	}
	out := SweepResult{
		Trials:               len(stats),
		RFast:                r.Value(),
		ByDegree:             make(map[int]float64, len(byDeg)),
		MeanFailedPrimaries:  failedP.Value(),
		MeanFailedBackups:    failedB.Value(),
		MeanMuxFailed:        muxF.Value(),
		MeanBackupDead:       dead.Value(),
		TotalFailedPrimaries: int(r.Den),
	}
	for alpha, rr := range byDeg {
		out.ByDegree[alpha] = rr.Value()
	}
	return out
}

// AllSingleLinkFailures enumerates the paper's single-link failure model:
// one trial per simplex link.
func AllSingleLinkFailures(g *topology.Graph) []core.Failure {
	out := make([]core.Failure, 0, g.NumLinks())
	for _, l := range g.Links() {
		out = append(out, core.SingleLink(l.ID))
	}
	return out
}

// AllSingleNodeFailures enumerates one trial per node.
func AllSingleNodeFailures(g *topology.Graph) []core.Failure {
	out := make([]core.Failure, 0, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		out = append(out, core.SingleNode(topology.NodeID(n)))
	}
	return out
}

// AllDoubleNodeFailures enumerates every unordered node pair, or a uniform
// sample of them when sample > 0.
func AllDoubleNodeFailures(g *topology.Graph, sample int, seed int64) []core.Failure {
	n := g.NumNodes()
	var out []core.Failure
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out = append(out, core.DoubleNode(topology.NodeID(a), topology.NodeID(b)))
		}
	}
	if sample > 0 && sample < len(out) {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		out = out[:sample]
	}
	return out
}
