package core

import (
	"math"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// S(Bi,Bj) is a pure function of the two *primary* paths (§3.2), yet the
// same connection pair meets on every link their backups share, so the
// multiplexing engine would otherwise recompute the same value once per
// link. sCache memoizes S per unordered connection pair. Invalidation is by
// *primary epoch*: each connection carries a counter bumped whenever its
// primary channel changes (promoted after recovery, demoted by a rejoin,
// torn down, or the ID's establishment was rolled back); a cache entry is
// valid only while both stored epochs match the connections' current ones.
type sCache struct {
	// entries is keyed by the packed unordered pair (lo<<32 | hi) of
	// connection IDs. IDs are never reused, so a key uniquely names a pair
	// for the manager's lifetime.
	entries map[uint64]sPairVal
	// epochs is indexed by ConnID (dense and monotonic). epochDead marks a
	// torn-down connection, making its entries permanently stale.
	epochs []uint64
	// retired counts connections forgotten since the last sweep; stale
	// pairs are garbage-collected periodically so churny workloads don't
	// grow the cache without bound.
	retired int
	// admit gates writes. Only recomputeLinkMux turns it on: reconfiguration
	// revisits the same connection pairs on every touched link, so those
	// lookups repay memoization. The establishment path reads the cache but
	// does not populate it — its only repeated lookups are collapsed by the
	// per-add decision memo already, and admitting there would grow the map
	// quadratically in connections for no reuse.
	admit bool
}

const epochDead = ^uint64(0)

type sPairVal struct {
	epLo, epHi uint64
	s          float64
}

func newSCache() *sCache {
	return &sCache{entries: make(map[uint64]sPairVal)}
}

func pairKey(a, b rtchan.ConnID) uint64 {
	lo, hi := uint64(uint32(a)), uint64(uint32(b))
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo<<32 | hi
}

// epoch returns the current primary epoch of a connection.
func (c *sCache) epoch(id rtchan.ConnID) uint64 {
	if int(id) >= len(c.epochs) {
		return 0
	}
	return c.epochs[id]
}

// bump invalidates every cached S involving the connection by advancing its
// primary epoch.
func (c *sCache) bump(id rtchan.ConnID) {
	c.grow(id)
	c.epochs[id]++
}

func (c *sCache) grow(id rtchan.ConnID) {
	if int(id) >= len(c.epochs) {
		grown := make([]uint64, int(id)+1+len(c.epochs)/2)
		copy(grown, c.epochs)
		c.epochs = grown
	}
}

// forget marks a torn-down connection's epoch dead. Its pair entries become
// unreachable (IDs are never reused) and are swept once enough connections
// have retired.
func (c *sCache) forget(id rtchan.ConnID) {
	c.grow(id)
	c.epochs[id] = epochDead
	c.retired++
	if c.retired > 1024 {
		c.sweep()
	}
}

// sweep removes entries involving dead connections.
func (c *sCache) sweep() {
	for k := range c.entries {
		if c.epoch(rtchan.ConnID(k>>32)) == epochDead || c.epoch(rtchan.ConnID(uint32(k))) == epochDead {
			delete(c.entries, k)
		}
	}
	c.retired = 0
}

// qpow returns the per-manager table of (1-λ)^k survival probabilities for
// component counts up to at least n. Entries are computed with math.Pow so
// cached S values are bit-identical to the reference
// reliability.SimultaneousActivation formula.
func (m *Manager) qpow(n int) []float64 {
	if len(m.plan.qpowTab) > n {
		return m.plan.qpowTab
	}
	grown := make([]float64, n+16)
	q := 1 - m.plan.cfg.Lambda
	for k := range grown {
		grown[k] = math.Pow(q, float64(k))
	}
	m.plan.qpowTab = grown
	return m.plan.qpowTab
}

// simS is the manager's fast path for S(Bi,Bj) given the primary component
// counts and their overlap: three table loads instead of three math.Pow
// calls, numerically identical to reliability.SimultaneousActivation.
func (m *Manager) simS(ci, cj, sc int) float64 {
	t := m.qpow(ci + cj)
	s := 1 - (t[ci] + t[cj] - t[ci+cj-sc])
	if s < 0 { // clamp tiny negative round-off, as the reference does
		return 0
	}
	return s
}

// simSRO is simS for readers that must not mutate the manager (the batch
// planners run under the reader lock, where growing the shared table would
// race). NewManager pre-warms qpowTab past any component sum the graph can
// produce, so the fallback recomputation — numerically identical, per-entry
// math.Pow like the table itself — is for safety, not a real path.
func (m *Manager) simSRO(ci, cj, sc int) float64 {
	var s float64
	if t := m.plan.qpowTab; len(t) > ci+cj {
		s = 1 - (t[ci] + t[cj] - t[ci+cj-sc])
	} else {
		q := 1 - m.plan.cfg.Lambda
		s = 1 - (math.Pow(q, float64(ci)) + math.Pow(q, float64(cj)) - math.Pow(q, float64(ci+cj-sc)))
	}
	if s < 0 {
		return 0
	}
	return s
}

// pairS returns the memoized S(Bi,Bj) for backups of connections a and b.
// Both connections must currently have a primary; the caller
// (mutualExclusion) handles the primary-less conservative case before
// consulting the cache.
//
// Storage is selective on two axes (see sCache.admit): only reconfiguration
// lookups admit entries, and only for pairs with overlapping primaries —
// for disjoint primaries S collapses to a function of the two component
// counts alone and costs three table loads to recompute, so storing those
// would bloat the map for no gain. Keeping the cache small also keeps the
// miss probe cheap.
func (m *Manager) pairS(a, b *DConnection) float64 {
	k := pairKey(a.ID, b.ID)
	epLo, epHi := m.plan.scache.epoch(a.ID), m.plan.scache.epoch(b.ID)
	if a.ID > b.ID {
		epLo, epHi = epHi, epLo
	}
	if v, ok := m.plan.scache.entries[k]; ok && v.epLo == epLo && v.epHi == epHi {
		return v.s
	}
	pa, pb := a.Primary.Path, b.Primary.Path
	sc := pa.SharedComponents(pb)
	s := m.simS(pa.NumComponents(), pb.NumComponents(), sc)
	if m.plan.scache.admit && sc > 0 {
		m.plan.scache.entries[k] = sPairVal{epLo: epLo, epHi: epHi, s: s}
	}
	return s
}

// primaryChanged records that conn's primary channel changed (promotion,
// demotion, loss, or replacement): every cached S involving it is stale,
// and so is the Π structure of every link hosting one of its surviving
// backups (see reconfig.go).
func (m *Manager) primaryChanged(conn *DConnection) {
	m.plan.scache.bump(conn.ID)
	m.markPiStale(conn)
}

// prospectiveS memoizes S between one candidate primary path and each
// established connection's primary for the duration of a single
// backup-routing search. RouteLoadAware evaluates the prospective spare
// growth on every candidate link, and the same established connections
// appear on many of them; the candidate has no connection ID yet, so the
// long-lived pair cache cannot serve these lookups. The candidate primary is
// carried as a PathMarks stamp (set by the caller), so the overlap count per
// established primary is array loads. Valid only while the manager is not
// mutated and the stamp is not re-set (no primary changes mid-search).
type prospectiveS struct {
	m         *Manager
	marks     *topology.PathMarks // stamped with the candidate primary
	primComps int
	s         map[rtchan.ConnID]float64
}

// newProspectiveS stamps the candidate primary into m.piMarks and memoizes
// against it. Writer-side only (the stamp is shared scratch); planners build
// theirs via planContext.newProspectiveS over per-worker marks.
func (m *Manager) newProspectiveS(primary topology.Path) *prospectiveS {
	m.piMarks.Set(primary)
	return &prospectiveS{
		m:         m,
		marks:     &m.piMarks,
		primComps: primary.NumComponents(),
		s:         make(map[rtchan.ConnID]float64),
	}
}

// forConn returns S(candidate, conn's primary), memoized per connection.
// conn must have a primary.
func (p *prospectiveS) forConn(conn *DConnection) float64 {
	if s, ok := p.s[conn.ID]; ok {
		return s
	}
	pp := conn.Primary.Path
	s := p.m.simSRO(p.primComps, pp.NumComponents(), p.marks.Shared(pp))
	p.s[conn.ID] = s
	return s
}

// referenceS recomputes S for a pair from first principles; CheckMuxInvariants
// uses it to validate the cache against the reference formula.
func (m *Manager) referenceS(a, b *DConnection) float64 {
	return reliability.SimultaneousActivation(
		m.plan.cfg.Lambda,
		a.Primary.Path.NumComponents(),
		b.Primary.Path.NumComponents(),
		a.Primary.Path.SharedComponents(b.Primary.Path),
	)
}
