package metrics

import (
	"strings"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // <=1, <=10, <=100, overflow
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d: got %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if got := h.Mean(); got != (0.5+1+5+50+500)/5 {
		t.Fatalf("mean = %g", got)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median bucket bound = %g, want 10", q)
	}
}

func TestProtocolAggregatorCountsAndHistograms(t *testing.T) {
	a := NewProtocolAggregator()
	ms := func(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }
	stream := []trace.Event{
		{At: 0, Kind: trace.KindClaim, Node: topology.NoNode, Link: 1, Channel: 1},
		{At: 0, Kind: trace.KindClaim, Node: topology.NoNode, Link: 2, Channel: 1},
		{At: 0, Kind: trace.KindRCCFrame, Node: 0, Link: 1, Aux: 3},
		{At: 0, Kind: trace.KindRCCRetransmit, Node: 0, Link: 1, Aux: 1},
		{At: 0, Kind: trace.KindMuxFailure, Node: 4, Link: topology.NoLink, Channel: 2},
		{At: ms(100), Kind: trace.KindLinkDown, Node: topology.NoNode, Link: 9},
		{At: ms(103), Kind: trace.KindSourceSwitch, Node: 0, Link: topology.NoLink, Conn: 1, Channel: 2},
	}
	for _, ev := range stream {
		a.Emit(ev)
	}
	if got := a.Claims(); got != 2 {
		t.Fatalf("claims = %d", got)
	}
	if got := a.Retransmissions(); got != 1 {
		t.Fatalf("retransmissions = %d", got)
	}
	if got := a.MuxFailures(); got != 1 {
		t.Fatalf("mux failures = %d", got)
	}
	if a.Batch.N != 1 || a.Batch.Sum != 3 {
		t.Fatalf("batch histogram: N=%d sum=%g", a.Batch.N, a.Batch.Sum)
	}
	if a.Recovery.N != 1 {
		t.Fatalf("recovery histogram: N=%d", a.Recovery.N)
	}
	// 3ms recovery falls in the (1ms, 3ms] bucket.
	if got := a.Recovery.Quantile(1); got != 3e-3 {
		t.Fatalf("recovery p100 bucket = %g", got)
	}
	out := a.Render()
	for _, frag := range []string{"claim", "rcc-retransmit", "recovery delay", "rcc batching"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}
