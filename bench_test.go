package bcp_test

// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus micro-benchmarks of the kernels they exercise. Scale notes: each
// table benchmark runs one full establishment + failure sweep per iteration
// (seconds each); run with -benchtime=1x for a single regeneration, or use
// cmd/bcpsim to print the actual rows. Paper-vs-measured values are recorded
// in EXPERIMENTS.md.

import (
	"testing"
	"time"

	"github.com/rtcl/bcp"
)

func benchOpts() bcp.ExperimentOptions {
	opts := bcp.DefaultExperimentOptions()
	opts.DoubleNodeSample = 200 // keep the 2016-pair sweep bounded per iteration
	return opts
}

// --- Table 1: R_fast with uniform multiplexing degrees ------------------

func BenchmarkTable1TorusSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable1(bcp.Torus8x8, 1, []int{1, 3, 5, 6}, benchOpts())
		if len(res.Columns) != 4 {
			b.Fatal("wrong shape")
		}
	}
}

func BenchmarkTable1TorusDouble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable1(bcp.Torus8x8, 2, []int{3, 5, 6}, benchOpts())
		if len(res.Columns) != 3 {
			b.Fatal("wrong shape")
		}
	}
}

func BenchmarkTable1Mesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable1(bcp.Mesh8x8, 1, []int{1, 3, 5, 6}, benchOpts())
		if len(res.Columns) != 4 {
			b.Fatal("wrong shape")
		}
	}
}

// --- Table 2: mixed degrees with priority activation ---------------------

func BenchmarkTable2TorusSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable2(bcp.Torus8x8, 1, []int{1, 3, 5, 6}, benchOpts())
		if res.Established == 0 {
			b.Fatal("nothing established")
		}
	}
}

func BenchmarkTable2TorusDouble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable2(bcp.Torus8x8, 2, []int{1, 3, 5, 6}, benchOpts())
		if res.Established == 0 {
			b.Fatal("nothing established")
		}
	}
}

func BenchmarkTable2Mesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable2(bcp.Mesh8x8, 1, []int{1, 3, 5, 6}, benchOpts())
		if res.Established == 0 {
			b.Fatal("nothing established")
		}
	}
}

// --- Table 3: brute-force multiplexing baseline ---------------------------

func BenchmarkTable3Torus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable3(bcp.Torus8x8, []int{1, 3, 5, 6}, benchOpts())
		if len(res.Columns) != 4 {
			b.Fatal("wrong shape")
		}
	}
}

func BenchmarkTable3Mesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunTable3(bcp.Mesh8x8, []int{1, 3, 5, 6}, benchOpts())
		if len(res.Columns) != 4 {
			b.Fatal("wrong shape")
		}
	}
}

// --- Figure 9: spare bandwidth vs network load ----------------------------

func BenchmarkFigure9Torus1B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunFigure9(bcp.Torus8x8, 1, []int{0, 1, 3, 5, 6}, 256, benchOpts())
		if len(res.Series) != 5 {
			b.Fatal("wrong shape")
		}
	}
}

func BenchmarkFigure9Torus2B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunFigure9(bcp.Torus8x8, 2, []int{3, 5, 6}, 256, benchOpts())
		if len(res.Series) != 3 {
			b.Fatal("wrong shape")
		}
	}
}

func BenchmarkFigure9Mesh1B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunFigure9(bcp.Mesh8x8, 1, []int{0, 1, 3, 5, 6}, 256, benchOpts())
		if len(res.Series) != 5 {
			b.Fatal("wrong shape")
		}
	}
}

// --- Figure 3: reliability models ------------------------------------------

func BenchmarkFigure3Reliability(b *testing.B) {
	horizons := []float64{1, 10, 100, 1000, 10000}
	for i := 0; i < b.N; i++ {
		res := bcp.RunFigure3(4, 6, 1e-5, 100, horizons)
		if len(res.Markov.Y) != len(horizons) {
			b.Fatal("wrong shape")
		}
	}
}

// --- Section 5: protocol-level recovery delay ------------------------------

func BenchmarkSection5RecoveryDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunSection5(benchOpts())
		if !res.AllBound {
			b.Fatal("recovery delay exceeded the paper's bound")
		}
	}
}

func BenchmarkSchemeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunSchemeComparison(benchOpts())
		if len(res.Rows) != 9 {
			b.Fatal("wrong shape")
		}
	}
}

// --- Extensions -------------------------------------------------------------

func BenchmarkHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bcp.RunHotspot(benchOpts())
		if res.Established == 0 {
			b.Fatal("nothing established")
		}
	}
}

// --- Micro-benchmarks of the kernels the experiments exercise ---------------

// BenchmarkEstablishAllPairs measures the full 4032-connection establishment
// with backup multiplexing at mux=3 — the setup cost of every table.
func BenchmarkEstablishAllPairs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := bcp.NewTorus(8, 8, 200)
		mgr := bcp.NewManager(g, bcp.DefaultConfig())
		reqs := bcp.AllPairs(g, bcp.DefaultSpec(), []int{3})
		est, _ := bcp.EstablishWorkload(mgr, reqs)
		if est != 4032 {
			b.Fatalf("established %d", est)
		}
	}
}

// benchmarkEstablishBatch measures the same 4032-connection workload as
// BenchmarkEstablishAllPairs through the speculative plan/commit pipeline.
// Results are bit-identical to the sequential loop; the win is wall time.
func benchmarkEstablishBatch(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := bcp.NewTorus(8, 8, 200)
		mgr := bcp.NewManager(g, bcp.DefaultConfig())
		reqs := bcp.AllPairs(g, bcp.DefaultSpec(), []int{3})
		est, _ := bcp.EstablishWorkloadBatch(mgr, reqs, workers)
		if est != 4032 {
			b.Fatalf("established %d", est)
		}
	}
}

func BenchmarkEstablishBatchW1(b *testing.B) { benchmarkEstablishBatch(b, 1) }
func BenchmarkEstablishBatchW4(b *testing.B) { benchmarkEstablishBatch(b, 4) }

// BenchmarkSingleEstablish measures one D-connection setup on a loaded
// network (routing + admission + multiplexing).
func BenchmarkSingleEstablish(b *testing.B) {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	reqs := bcp.AllPairs(g, bcp.DefaultSpec(), []int{3})
	bcp.EstablishWorkload(mgr, reqs[:2000])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{3})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := mgr.Teardown(conn.ID); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkFailureTrial measures one single-node failure trial on the fully
// loaded torus — the inner loop of the R_fast sweeps.
func BenchmarkFailureTrial(b *testing.B) {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	bcp.EstablishWorkload(mgr, bcp.AllPairs(g, bcp.DefaultSpec(), []int{3}))
	f := bcp.SingleNode(27)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := mgr.Trial(f, bcp.OrderByConn, nil)
		if stats.FailedPrimaries == 0 {
			b.Fatal("no failures")
		}
	}
}

// BenchmarkProtocolRecovery measures one message-level failure recovery
// (detection -> reports -> activation -> promotion) end to end.
func BenchmarkProtocolRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := bcp.NewTorus(8, 8, 200)
		mgr := bcp.NewManager(g, bcp.DefaultConfig())
		conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{1})
		if err != nil {
			b.Fatal(err)
		}
		eng := bcp.NewEngine(1)
		proto := bcp.NewProtocol(eng, mgr, bcp.DefaultProtocolConfig())
		if err := proto.StartTraffic(conn.ID, 1000); err != nil {
			b.Fatal(err)
		}
		eng.At(bcp.Time(50*time.Millisecond), func() {
			proto.FailLink(conn.Primary.Path.Links()[3])
		})
		eng.RunFor(500 * time.Millisecond)
		if len(proto.SourceSwitches(conn.ID)) != 1 {
			b.Fatal("no recovery")
		}
	}
}
