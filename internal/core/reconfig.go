package core

import (
	"math"

	"github.com/rtcl/bcp/internal/topology"
)

// Coalesced reconfiguration: one Π-set derivation per link per cause,
// instead of one per channel operation.
//
// reconfigureLinks re-derives every touched link's Π structure from scratch
// — O(entries²) pairwise S evaluations per link. In a mass failure the same
// links are touched once per expired channel and once per promotion, so the
// storm pays that quadratic rebuild hundreds of times over the same
// neighborhood. Yet the rebuild only produces *different* values when some
// pair's inputs changed, and the incremental bookkeeping already maintains
// everything else exactly:
//
//   - entry membership: addBackupToLink decides new pairs with the same
//     formula (decideMux ≡ mutualExclusion) against current primaries, and
//     removeBackupFromLink/promoteBackup unwire departing channels from
//     every Π set and requirement they appear in;
//   - requirements: req is adjusted by exactly the bandwidth of each added
//     or removed Π member, and the maxReq cache rescans when a removal may
//     have dethroned the cached maximum (noteReqShrink).
//
// The one input the incremental path cannot see locally is a *primary
// change*: S(Bi,Bj) is a function of the two connections' primary paths
// (§3.2), so when a connection's primary changes — promotion, loss, or
// demotion — every link hosting one of its surviving backups holds pair
// decisions computed from a stale path. primaryChanged is the single choke
// point for all three causes, and it marks exactly those links (piStale).
//
// With that flag, reconfiguration splits per touched link:
//
//	stale  -> full recomputeLinkMux rebuild (clears the flag);
//	fresh  -> resizeLink: re-settle the spare pool from the incrementally
//	          maintained requirements, O(entries) instead of O(entries²).
//
// The split is exact, not approximate: recomputeLinkMux is a pure function
// of (entries, their connections' primaries, claimed, headroom), and a
// fresh link's inputs are unchanged since its pair decisions were last
// derived, so the rebuild would reproduce the stored Π sets and
// requirements verbatim. TestCoalescedReconfigEquivalence drives both
// engines through randomized protocol histories and asserts bit-identical
// state; the dispatch-level equivalence tests (bcpd, chaos) cover the same
// property end-to-end, since the batched engine runs coalesced and the
// per-message baseline eager.
//
// SetCoalescedReconfig gates the split. Default off: the eager rebuild
// stays the reference semantics, and internal/bcpd enables coalescing
// together with dispatch rounds (and leaves it off for the per-message
// baseline, which reproduces the pre-batching engine).

// SetCoalescedReconfig switches reconfiguration between the eager
// always-rebuild reference path (off, the default) and the coalesced
// stale-tracking path (on). Safe to toggle at any time: staleness is
// tracked in both modes, so turning coalescing on mid-life never reuses a
// pair decision that a primary change invalidated.
func (m *Manager) SetCoalescedReconfig(on bool) {
	defer m.beginWrite()()
	m.coalesceReconfig = on
}

// markPiStale records that conn's primary path changed: every link hosting
// one of its surviving backups now stores pair decisions derived from the
// old path, and must take the full rebuild on its next reconfiguration.
// Called from primaryChanged, after the caller has settled conn.Backups.
func (m *Manager) markPiStale(conn *DConnection) {
	for _, b := range conn.Backups {
		for _, l := range b.Path.Links() {
			m.piStale[l] = true
		}
	}
}

// resizeLink re-settles link l's spare reservation from the incrementally
// maintained requirements — the fresh-link half of reconfigureLinks. The
// sizing rule is recomputeLinkMux's: the pool covers the maximum
// requirement, never dropping below what activations have already claimed.
func (m *Manager) resizeLink(l topology.LinkID) error {
	lm := &m.plan.mux[l]
	need := math.Max(lm.requiredSpare(), lm.claimed)
	if need == lm.spare {
		return nil
	}
	if err := m.plan.net.SetSpare(l, need); err != nil {
		return err
	}
	lm.spare = need
	return nil
}
