package experiment

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// TraceScenario parameterizes the deterministic single-connection
// failure-recovery run shared by cmd/bcptrace, the golden-trace regression
// test, and the wire fuzz-corpus seeding: an 8-hop connection across the
// paper's torus, one primary link crash mid-run, optional backup hit and
// repair.
type TraceScenario struct {
	Scheme   bcpd.Scheme
	FailPos  int // primary link index to crash
	Backups  int
	HitFirst bool         // also crash the first backup's last link
	Repair   sim.Duration // repair the failed primary link after this delay (0 = never)
	Rate     float64      // data message rate (msgs/s)
	RunFor   sim.Duration

	// Sink, when non-nil, receives the event stream in addition to the
	// run's own recorder (e.g. a live renderer).
	Sink trace.Sink
	// FrameTap, when non-nil, observes every marshaled RCC frame.
	FrameTap func(link topology.LinkID, frame []byte)
}

// DefaultTraceScenario mirrors bcptrace's defaults: Scheme 3, third primary
// link crashed, one backup, 500 msgs/s, 3 simulated seconds.
func DefaultTraceScenario() TraceScenario {
	return TraceScenario{
		Scheme:  bcpd.Scheme3,
		FailPos: 2,
		Backups: 1,
		Rate:    500,
		RunFor:  sim.Duration(3 * time.Second),
	}
}

// TraceRun is the outcome of one scenario: the recorded event stream plus
// the handles a renderer or checker needs.
type TraceRun struct {
	Conn        *core.DConnection
	Net         *bcpd.Network
	Events      []trace.Event
	FailAt      sim.Time
	FailedLinks []topology.LinkID
	// DMax is the per-hop control-delay bound of this run's configuration,
	// for Γ-bound checking over the recorded stream.
	DMax sim.Duration
}

// RunTraceScenario executes the scenario to completion. The run is fully
// deterministic: same scenario, same stream.
func RunTraceScenario(s TraceScenario) (TraceRun, error) {
	g := topology.NewTorus(8, 8, 200)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())

	src, dst := topology.NodeID(0), topology.NodeID(36)
	paths := mgr.Router().SequentialDisjointPaths(src, dst, s.Backups+1, routing.Constraint{})
	if len(paths) < s.Backups+1 {
		return TraceRun{}, fmt.Errorf("experiment: only %d disjoint paths for %d channels", len(paths), s.Backups+1)
	}
	degrees := make([]int, s.Backups)
	for i := range degrees {
		degrees[i] = 1
	}
	conn, err := mgr.EstablishOnPaths(rtchan.DefaultSpec(), paths[0], paths[1:s.Backups+1], degrees)
	if err != nil {
		return TraceRun{}, err
	}

	rec := &trace.Recorder{}
	var sink trace.Sink = rec
	if s.Sink != nil {
		sink = trace.Tee{rec, s.Sink}
	}
	cfg := bcpd.DefaultConfig()
	cfg.Scheme = s.Scheme
	cfg.RejoinTimeout = sim.Duration(2 * time.Second)
	cfg.RejoinProbeDelay = sim.Duration(100 * time.Millisecond)
	cfg.Sink = sink
	cfg.FrameTap = s.FrameTap
	net := bcpd.New(eng, mgr, cfg)
	if err := net.StartTraffic(conn.ID, s.Rate); err != nil {
		return TraceRun{}, err
	}

	if s.FailPos < 0 || s.FailPos >= len(conn.Primary.Path.Links()) {
		return TraceRun{}, fmt.Errorf("experiment: fail index %d out of range", s.FailPos)
	}
	run := TraceRun{
		Conn:   conn,
		Net:    net,
		FailAt: sim.Time(50 * time.Millisecond),
		DMax:   perHopBound(cfg, 200, cfg.DataMsgSize),
	}
	failLink := conn.Primary.Path.Links()[s.FailPos]
	run.FailedLinks = append(run.FailedLinks, failLink)
	if s.HitFirst && len(conn.Backups) > 0 {
		bl := conn.Backups[0].Path.Links()
		run.FailedLinks = append(run.FailedLinks, bl[len(bl)-1])
	}
	eng.At(run.FailAt, func() {
		for _, l := range run.FailedLinks {
			net.FailLink(l)
		}
	})
	if s.Repair > 0 {
		eng.At(run.FailAt.Add(s.Repair), func() {
			net.RepairLink(failLink)
		})
	}
	eng.RunFor(s.RunFor)
	run.Events = rec.Events
	return run, nil
}
