// Command bcplive boots a BCP network live — every daemon an actor goroutine
// on the wall-clock runtime, traffic crossing a real transport (in-memory
// pipes or loopback UDP datagrams) — injects a primary-link failure, and
// reports the measured recovery delay against the paper's §5 Γ bound.
//
// Usage:
//
//	bcplive                        # 3x3 mesh, pipe transport, 5 trials
//	bcplive -rows 4 -cols 4        # bigger mesh
//	bcplive -transport udp         # real datagrams on the loopback
//	bcplive -rate 1000 -trials 10  # heavier traffic, more trials
//
// Each trial establishes one D-connection corner to corner (primary plus one
// disjoint backup), streams data, crashes the middle link of the primary, and
// measures two wall-clock delays from the failure instant: Γ, when the source
// switches to the backup, and the first data arrival at the destination after
// the switch. Γ is compared to the §5.3 bound (K-1)·D_max with D_max computed
// from the RCC parameters exactly as internal/experiment's Section 5 harness
// does. On a quiet machine live Γ lands inside the bound; scheduler jitter
// (unlike the simulator, the OS is part of the system) can push it over —
// the tool reports, it does not assert.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/rtcl/bcp"
)

// perHopBound mirrors the Section 5 harness: worst-case one-hop control
// delay = eligibility wait (1/R_max) + residual transmission of one
// in-flight data packet + the frame's own transmission + propagation.
func perHopBound(cfg bcp.ProtocolConfig, linkCapacityMbps float64) time.Duration {
	bps := linkCapacityMbps * 1e6
	eligibility := time.Duration(float64(time.Second) / cfg.RCC.RMax)
	residual := time.Duration(float64(cfg.DataMsgSize*8) / bps * float64(time.Second))
	frame := time.Duration(float64(cfg.RCC.SMax*8) / bps * float64(time.Second))
	return eligibility + residual + frame + time.Duration(cfg.PropDelay)
}

type trialResult struct {
	gamma  time.Duration // failure -> source switch
	resume time.Duration // failure -> first data arrival after the switch
}

func main() {
	rows := flag.Int("rows", 3, "mesh rows")
	cols := flag.Int("cols", 3, "mesh columns")
	capacity := flag.Float64("capacity", 10, "link capacity in Mbps")
	transport := flag.String("transport", "pipe", "live transport: pipe or udp")
	rate := flag.Float64("rate", 500, "data messages per second")
	trials := flag.Int("trials", 5, "failure trials (fresh network each)")
	seed := flag.Int64("seed", 1, "runtime RNG seed")
	flag.Parse()

	cfg := bcp.DefaultProtocolConfig()
	// The Γ bound assumes immediate detection; keep the comparison honest.
	cfg.DetectionLatency = 0

	var results []trialResult
	for i := 0; i < *trials; i++ {
		r, err := runTrial(*rows, *cols, *capacity, *transport, *rate, *seed+int64(i), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcplive: trial %d: %v\n", i, err)
			os.Exit(1)
		}
		results = append(results, r)
	}

	// The bound depends only on the topology and config; recompute the
	// path length once for the report.
	g := bcp.NewMesh(*rows, *cols, *capacity)
	paths := bcp.SequentialDisjointPaths(g, 0, bcp.NodeID(g.NumNodes()-1), 2, bcp.RoutingConstraint{})
	if len(paths) < 2 {
		fmt.Fprintf(os.Stderr, "bcplive: no disjoint corner-to-corner paths on %dx%d mesh\n", *rows, *cols)
		os.Exit(1)
	}
	hops := paths[0].Hops()
	bound := time.Duration(hops-1) * perHopBound(cfg, *capacity)

	fmt.Printf("bcplive: %dx%d mesh, %s transport, %d-hop primary, %.0f msg/s\n",
		*rows, *cols, *transport, hops, *rate)
	fmt.Printf("Γ bound (K-1)·D_max = %v\n\n", bound)
	fmt.Printf("%-8s %-14s %-14s %s\n", "trial", "Γ (measured)", "data resumed", "within bound")
	gammas := make([]time.Duration, 0, len(results))
	for i, r := range results {
		in := "yes"
		if r.gamma > bound {
			in = "NO (wall-clock jitter)"
		}
		fmt.Printf("%-8d %-14v %-14v %s\n", i, r.gamma, r.resume, in)
		gammas = append(gammas, r.gamma)
	}
	sort.Slice(gammas, func(i, j int) bool { return gammas[i] < gammas[j] })
	fmt.Printf("\nΓ p50 %v, max %v over %d trials\n",
		gammas[len(gammas)/2], gammas[len(gammas)-1], len(gammas))
}

// runTrial boots one fresh live network, crashes the primary's middle link,
// and measures the recovery.
func runTrial(rows, cols int, capacity float64, transport string, rate float64, seed int64, cfg bcp.ProtocolConfig) (trialResult, error) {
	g := bcp.NewMesh(rows, cols, capacity)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	paths := bcp.SequentialDisjointPaths(g, 0, bcp.NodeID(g.NumNodes()-1), 2, bcp.RoutingConstraint{})
	if len(paths) < 2 {
		return trialResult{}, fmt.Errorf("no disjoint corner-to-corner paths")
	}
	conn, err := mgr.EstablishOnPaths(bcp.DefaultSpec(), paths[0], paths[1:2], []int{1})
	if err != nil {
		return trialResult{}, err
	}

	rt := bcp.NewRealtimeRuntime(seed)
	rt.StartActors(g.NumNodes(), 1024)
	var tr bcp.Transport
	switch transport {
	case "pipe":
		tr = bcp.NewPipeTransport(rt.Post, 1024)
	case "udp":
		tr = bcp.NewUDPTransport(rt.Post)
	default:
		rt.Stop()
		return trialResult{}, fmt.Errorf("unknown transport %q", transport)
	}
	defer rt.Stop()
	defer tr.Close()

	var net *bcp.Protocol
	rt.Exec(func() { net = bcp.NewProtocolOn(rt, tr, mgr, cfg) })
	var startErr error
	rt.Exec(func() { startErr = net.StartTraffic(conn.ID, rate) })
	if startErr != nil {
		return trialResult{}, startErr
	}

	wait := func(what string, cond func() bool) error {
		limit := time.Now().Add(10 * time.Second)
		for {
			var ok bool
			rt.Exec(func() { ok = cond() })
			if ok {
				return nil
			}
			if time.Now().After(limit) {
				return fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	if err := wait("pre-failure data", func() bool { return net.Stats().DataDelivered >= 20 }); err != nil {
		return trialResult{}, err
	}

	links := conn.Primary.Path.Links()
	fail := links[len(links)/2]
	var failAt bcp.Time
	rt.Exec(func() {
		failAt = rt.Now()
		net.FailLink(fail)
	})

	if err := wait("source switch", func() bool { return len(net.SourceSwitches(conn.ID)) == 1 }); err != nil {
		return trialResult{}, err
	}
	var switchAt bcp.Time
	rt.Exec(func() { switchAt = net.SourceSwitches(conn.ID)[0] })

	var resumeAt bcp.Time
	if err := wait("data resumption", func() bool {
		at, ok := net.FirstArrivalAfter(conn.ID, switchAt)
		resumeAt = at
		return ok
	}); err != nil {
		return trialResult{}, err
	}

	return trialResult{
		gamma:  switchAt.Sub(failAt),
		resume: resumeAt.Sub(failAt),
	}, nil
}
