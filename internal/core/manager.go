package core

import (
	"fmt"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Establish sets up a D-connection from src to dst with one backup per entry
// of degrees (the paper's "mux=α" knob, one value per backup). It follows
// the paper's establishment procedure (§3.4): the primary is routed on a
// shortest feasible path meeting the +SlackHops QoS rule, then each backup
// on a shortest feasible path avoiding all components of the connection's
// earlier channels, with spare bandwidth reserved under backup multiplexing.
//
// Establishment is all-or-nothing: if any channel cannot be routed or
// admitted, no state is left behind and the request is rejected, matching
// the paper's client-negotiation model.
func (m *Manager) Establish(src, dst topology.NodeID, spec rtchan.TrafficSpec, degrees []int) (*DConnection, error) {
	defer m.beginWrite()()
	return m.establish(src, dst, spec, degrees)
}

// establish is plan + commit over the manager's own planning context (see
// establish.go): the read-only plan phase routes and probes everything, and
// the commit phase replays the recorded wiring. Running both under the write
// lock makes the pair exactly equivalent to the former incremental loop,
// while keeping the commit path free of routing and admission scans.
func (m *Manager) establish(src, dst topology.NodeID, spec rtchan.TrafficSpec, degrees []int) (*DConnection, error) {
	p := m.seqPlan
	m.estCtx.plan(p, src, dst, spec, degrees, false)
	return m.commitPlan(p)
}

// routeBackup finds a feasible path for a backup channel avoiding excl.
// The admission prefilter requires bw free on every link (the paper's
// forward-pass reservation without multiplexing); the exact spare-pool check
// happens at addBackup time. alpha and primary feed the load-aware weight
// when RouteLoadAware is configured.
func (m *Manager) routeBackup(src, dst topology.NodeID, bw float64, alpha int, primary topology.Path, excl *routing.Exclusion) (topology.Path, bool) {
	feasible := routing.Constraint{
		TieBreak: m.plan.cfg.TieBreak,
		LinkAllowed: func(l topology.LinkID) bool {
			return m.plan.net.Free(l) >= bw-1e-9
		},
	}
	c := excl.Constrain(feasible)
	if m.plan.cfg.BackupRouting == RouteMaxFlow {
		paths := m.router.MaxDisjointPaths(src, dst, 1, c)
		if len(paths) == 0 {
			return topology.Path{}, false
		}
		return paths[0], true
	}
	if m.plan.cfg.BackupSlackHops >= 0 {
		// QoS bound for the backup: after activation it carries the primary
		// traffic, so its length is bounded relative to the shortest
		// disjoint path regardless of current bandwidth availability. Only
		// the length is needed, so skip the backtrack and materialization.
		unconstrained := excl.Constrain(routing.Constraint{})
		if hops := m.router.ShortestDistance(src, dst, unconstrained); hops >= 0 {
			c.MaxHops = hops + m.plan.cfg.BackupSlackHops
		}
	}
	if m.plan.cfg.BackupRouting == RouteLoadAware && !primary.IsZero() {
		// [HAN97b]: weight each link by the spare-pool growth the backup
		// would cause there, plus a small per-hop cost so ties (zero-growth
		// corridors) still prefer short paths.
		nu := reliability.NuForDegree(m.plan.cfg.Lambda, alpha)
		ps := m.newProspectiveS(primary)
		w := func(l topology.LinkID) float64 {
			return 0.05*bw + m.prospectiveSpareIncrease(l, ps, bw, nu)
		}
		if p, ok := m.router.MinCostPath(src, dst, c, w); ok {
			return p, true
		}
		// Fall through to shortest-path if the weighted search fails.
	}
	return m.router.ShortestPath(src, dst, c)
}

// EstablishOnPaths sets up a D-connection over explicitly chosen paths,
// bypassing route selection but not admission: the primary must pass the
// bandwidth test and every backup must fit the spare pools. Used by tests
// and by callers with out-of-band routing (e.g. traffic-engineering layers).
//
// Channel disjointness is not enforced — the paper only *prefers* avoiding
// the primary's components when routing backups (§3.2); overlap merely
// degrades the connection's Pr. Callers wanting the guarantee should check
// Path.ComponentDisjoint themselves.
func (m *Manager) EstablishOnPaths(spec rtchan.TrafficSpec, primary topology.Path, backups []topology.Path, degrees []int) (*DConnection, error) {
	defer m.beginWrite()()
	if len(backups) != len(degrees) {
		return nil, fmt.Errorf("core: %d backup paths but %d degrees", len(backups), len(degrees))
	}
	if primary.IsZero() {
		return nil, fmt.Errorf("core: empty primary path")
	}
	conn := &DConnection{
		ID:   m.nextConn,
		Src:  primary.Source(),
		Dst:  primary.Destination(),
		Spec: spec,
	}
	undo := func() {
		for _, b := range conn.Backups {
			m.removeBackup(b)
			_ = m.plan.net.Teardown(b.ID)
		}
		if conn.Primary != nil {
			_ = m.plan.net.Teardown(conn.Primary.ID)
		}
		// See Establish: the rejected ID will be reused by the next attempt.
		m.plan.scache.bump(conn.ID)
	}
	prim, err := m.plan.net.Establish(conn.ID, rtchan.RolePrimary, 0, primary, spec)
	if err != nil {
		return nil, err
	}
	conn.Primary = prim
	for i, bPath := range backups {
		if bPath.Source() != conn.Src || bPath.Destination() != conn.Dst {
			undo()
			return nil, fmt.Errorf("core: backup %d endpoints mismatch", i+1)
		}
		bch, err := m.plan.net.Establish(conn.ID, rtchan.RoleBackup, i+1, bPath, spec)
		if err != nil {
			undo()
			return nil, err
		}
		conn.Backups = append(conn.Backups, bch)
		conn.Degrees = append(conn.Degrees, degrees[i])
		if err := m.addBackup(conn, bch, degrees[i]); err != nil {
			undo()
			return nil, err
		}
	}
	m.plan.conns[conn.ID] = conn
	m.plan.order = append(m.plan.order, conn.ID)
	m.nextConn++
	return conn, nil
}

// ReplenishBackups restores a connection's fault-tolerance level after
// recovery consumed or destroyed backups (§4.4: "if necessary, new backup
// channels will be established"): new backups are routed disjointly from
// the connection's current channels and admitted at degree alpha until the
// connection has target backups (or routing/admission fails). avoid, when
// non-nil, excludes additional links — the protocol layer passes the
// components it currently knows to be failed, which the resource plane does
// not track itself. avoid is invoked inside the write transaction and must
// not call back into the Manager. It returns the number of backups added.
func (m *Manager) ReplenishBackups(id rtchan.ConnID, target, alpha int, avoid func(topology.LinkID) bool) (int, error) {
	defer m.beginWrite()()
	conn, ok := m.plan.conns[id]
	if !ok {
		return 0, fmt.Errorf("core: unknown connection %d", id)
	}
	if conn.Primary == nil {
		return 0, fmt.Errorf("core: connection %d has no primary", id)
	}
	added := 0
	for len(conn.Backups) < target {
		excl := m.estExcl.Reset()
		excl.AddPath(conn.Primary.Path)
		for _, b := range conn.Backups {
			excl.AddPath(b.Path)
		}
		if avoid != nil {
			for _, l := range m.Graph().Links() {
				if avoid(l.ID) {
					excl.AddLink(l.ID)
				}
			}
		}
		bPath, ok := m.routeBackup(conn.Src, conn.Dst, conn.Spec.Bandwidth, alpha, conn.Primary.Path, excl)
		if !ok {
			break
		}
		bch, err := m.plan.net.Establish(id, rtchan.RoleBackup, len(conn.Backups)+1, bPath, conn.Spec)
		if err != nil {
			break
		}
		if err := m.addBackup(conn, bch, alpha); err != nil {
			_ = m.plan.net.Teardown(bch.ID)
			break
		}
		conn.Backups = append(conn.Backups, bch)
		conn.Degrees = append(conn.Degrees, alpha)
		added++
	}
	return added, nil
}

// Teardown releases every channel of a D-connection (§4.4 channel-closure).
func (m *Manager) Teardown(id rtchan.ConnID) error {
	defer m.beginWrite()()
	return m.teardown(id)
}

func (m *Manager) teardown(id rtchan.ConnID) error {
	conn, ok := m.plan.conns[id]
	if !ok {
		return fmt.Errorf("core: unknown connection %d", id)
	}
	for _, b := range conn.Backups {
		m.removeBackup(b)
		if err := m.plan.net.Teardown(b.ID); err != nil {
			return err
		}
	}
	if conn.Primary != nil {
		if err := m.plan.net.Teardown(conn.Primary.ID); err != nil {
			return err
		}
	}
	delete(m.plan.conns, id)
	m.plan.scache.forget(id)
	return nil
}
