package bcpd

import (
	"math/rand"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/wire"
)

// LinkChaos is the per-simplex-link fault plan of a ChaosTransport: every
// probability is evaluated independently per packet, from the transport's own
// seeded random source, so a given (seed, traffic) pair always makes the same
// decisions.
//
// Corruption models a link-layer frame check: corrupted control frames are
// only delivered when the flipped bytes still fail to decode (the receive
// path drops them there, and hop-by-hop retransmission recovers); a flip that
// accidentally produces a *decodable* frame is dropped instead, exactly as a
// CRC would discard it. Either way the mangled bytes are handed to the
// CorruptTap, which is how chaos episodes double as a fuzz-corpus generator.
type LinkChaos struct {
	// Drop is the probability a packet is silently lost.
	Drop float64
	// Dup is the probability a packet is delivered twice. The duplicate is
	// a deep copy in its own pooled buffer/box — duplicating must never
	// alias pooled memory, or the receiver's Put would double-free it.
	Dup float64
	// Corrupt is the probability a control frame's bytes are flipped (see
	// above; data and heartbeat packets are never corrupted).
	Corrupt float64
	// Delay is the probability a packet is held for a uniform extra delay
	// in (0, DelayMax] before entering the real transmitter. Because holds
	// are independent per packet, delayed packets reorder against
	// undelayed ones.
	Delay float64
	// DelayMax bounds the extra hold; zero disables delay entirely.
	DelayMax sim.Duration
}

// enabled reports whether the plan can affect any packet.
func (c LinkChaos) enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Corrupt > 0 || (c.Delay > 0 && c.DelayMax > 0)
}

// ChaosParams configures a ChaosTransport.
type ChaosParams struct {
	// Seed drives every adversarial decision; same seed, same chaos.
	Seed int64
	// Default is the plan applied to every link without an override.
	Default LinkChaos
	// PerLink overrides the default plan for specific links.
	PerLink map[topology.LinkID]LinkChaos
	// CorruptTap, when non-nil, observes every corrupted frame image (after
	// the byte flips, before the deliver-or-drop decision). The buffer is
	// pooled — the tap must copy anything it retains.
	CorruptTap func(l topology.LinkID, frame []byte)
}

// ChaosStats counts the adversarial actions a ChaosTransport took.
type ChaosStats struct {
	FramesDropped     uint64
	FramesDuplicated  uint64
	FramesCorrupted   uint64 // corrupted and still delivered (undecodable)
	FramesCorruptDrop uint64 // corruption accidentally decodable: dropped
	DataDropped       uint64
	DataDuplicated    uint64
	HeartbeatsDropped uint64
	Delayed           uint64
	PartitionDropped  uint64
}

// ChaosTransport decorates another Transport with seed-driven packet-level
// hostility: loss, duplication, reordering (via bounded extra delay),
// control-frame corruption, and asymmetric partitions. It honors the pooled
// buffer ownership contract exactly: every packet it swallows is reclaimed
// through the network's drop paths, and every duplicate it fabricates checks
// a fresh buffer/box out of the pool, so the pool-balance census
// (PoolOutstanding == InTransit) keeps holding under any plan.
//
// It is deterministic on a sim runtime: decisions come from its own seeded
// RNG and holds are ordinary runtime timers.
type ChaosTransport struct {
	inner Transport
	n     *Network
	p     ChaosParams
	rng   *rand.Rand
	plans []LinkChaos

	// cut[l] drops everything traversing link l at the chaos layer while
	// the link officially stays up — an asymmetric partition (the reverse
	// direction is cut independently).
	cut []bool

	// Packets held in a delay timer are owned by the chaos layer: the
	// census counts them as in transit.
	heldFrames int
	heldData   int

	stats ChaosStats
}

// NewChaosTransport wraps inner (usually a SimTransport; any Transport whose
// sends are runtime-serialized works) with the given fault plans.
func NewChaosTransport(inner Transport, p ChaosParams) *ChaosTransport {
	return &ChaosTransport{inner: inner, p: p}
}

// Inner returns the decorated transport.
func (t *ChaosTransport) Inner() Transport { return t.inner }

// Stats returns a snapshot of the chaos counters.
func (t *ChaosTransport) Stats() ChaosStats { return t.stats }

// Attach implements Transport.
func (t *ChaosTransport) Attach(n *Network) {
	t.n = n
	t.rng = rand.New(rand.NewSource(t.p.Seed))
	nl := n.mgr.Graph().NumLinks()
	t.plans = make([]LinkChaos, nl)
	t.cut = make([]bool, nl)
	for i := range t.plans {
		t.plans[i] = t.p.Default
	}
	for l, plan := range t.p.PerLink {
		if int(l) >= 0 && int(l) < nl {
			t.plans[l] = plan
		}
	}
	t.inner.Attach(n)
}

// SetPartition cuts or heals the chaos-layer partition on simplex link l.
// While cut, everything submitted to l is swallowed (and reclaimed); the
// protocol plane keeps believing the link is up, so RCC retransmission — not
// failure recovery — is what must carry the traffic across the heal.
func (t *ChaosTransport) SetPartition(l topology.LinkID, cut bool) { t.cut[l] = cut }

// Partitioned reports whether link l is currently cut at the chaos layer.
func (t *ChaosTransport) Partitioned(l topology.LinkID) bool { return t.cut[l] }

// HealAllPartitions clears every chaos-layer cut.
func (t *ChaosTransport) HealAllPartitions() {
	for i := range t.cut {
		t.cut[i] = false
	}
}

// SetLinkChaos replaces link l's plan.
func (t *ChaosTransport) SetLinkChaos(l topology.LinkID, plan LinkChaos) { t.plans[l] = plan }

// roll evaluates one probability.
func (t *ChaosTransport) roll(p float64) bool {
	return p > 0 && t.rng.Float64() < p
}

// hold returns the extra delay for a packet on plan, or 0.
func (t *ChaosTransport) hold(plan *LinkChaos) sim.Duration {
	if plan.DelayMax <= 0 || !t.roll(plan.Delay) {
		return 0
	}
	return sim.Duration(1 + t.rng.Int63n(int64(plan.DelayMax)))
}

// SendFrame implements Transport: the frame buffer is pooled; every path
// below either forwards it to the inner transport or reclaims it.
func (t *ChaosTransport) SendFrame(l topology.LinkID, frame []byte) {
	if t.cut[l] {
		t.stats.PartitionDropped++
		t.n.reclaimFrame(frame)
		return
	}
	plan := &t.plans[l]
	if t.roll(plan.Drop) {
		t.stats.FramesDropped++
		t.n.reclaimFrame(frame)
		return
	}
	if t.roll(plan.Dup) {
		// The duplicate gets its own pooled buffer: the original and the
		// copy are independently delivered, and independently Put back.
		dup := append(t.n.framePool.Get(len(frame)), frame...)
		t.stats.FramesDuplicated++
		t.forwardFrame(l, dup, plan)
	}
	if t.roll(plan.Corrupt) {
		if !t.corruptFrame(l, frame) {
			// The flips produced a decodable frame: the link-layer check
			// model discards it rather than deliver a forged control.
			t.stats.FramesCorruptDrop++
			t.n.reclaimFrame(frame)
			return
		}
		t.stats.FramesCorrupted++
	}
	t.forwardFrame(l, frame, plan)
}

// forwardFrame hands a frame to the inner transport, possibly after a
// chaos-layer hold. A held frame whose link fails before the hold expires is
// still submitted — the inner transport's down-link drop path reclaims it.
func (t *ChaosTransport) forwardFrame(l topology.LinkID, frame []byte, plan *LinkChaos) {
	if d := t.hold(plan); d > 0 {
		t.stats.Delayed++
		t.heldFrames++
		t.n.rt.Schedule(d, func() {
			t.heldFrames--
			t.inner.SendFrame(l, frame)
		})
		return
	}
	t.inner.SendFrame(l, frame)
}

// corruptFrame flips 1-3 bytes in place and reports whether the result is
// safe to deliver (i.e. fails to decode, so the receive path drops it and
// retransmission recovers). It retries the flips a few times before giving
// up on making the frame undecodable. The mangled image is handed to the
// CorruptTap either way.
func (t *ChaosTransport) corruptFrame(l topology.LinkID, frame []byte) (deliverable bool) {
	if len(frame) == 0 {
		return false
	}
	undecodable := false
	for attempt := 0; attempt < 4 && !undecodable; attempt++ {
		for i, k := 0, 1+t.rng.Intn(3); i < k; i++ {
			pos := t.rng.Intn(len(frame))
			frame[pos] ^= byte(1 + t.rng.Intn(255))
		}
		if _, err := wire.Unmarshal(frame); err != nil {
			undecodable = true
		}
	}
	if tap := t.p.CorruptTap; tap != nil {
		tap(l, frame)
	}
	return undecodable
}

// SendData implements Transport; the payload box is pooled, with the same
// forward-or-reclaim obligation as frames. Data is never corrupted (the
// payload is structural, not bytes), but is dropped, duplicated, and delayed.
func (t *ChaosTransport) SendData(l topology.LinkID, p *dataPayload) {
	if t.cut[l] {
		t.stats.PartitionDropped++
		t.n.reclaimData(p)
		return
	}
	plan := &t.plans[l]
	if t.roll(plan.Drop) {
		t.stats.DataDropped++
		t.n.reclaimData(p)
		return
	}
	if t.roll(plan.Dup) {
		dup := t.n.getDataBox()
		*dup = *p
		t.stats.DataDuplicated++
		t.forwardData(l, dup, plan)
	}
	t.forwardData(l, p, plan)
}

func (t *ChaosTransport) forwardData(l topology.LinkID, p *dataPayload, plan *LinkChaos) {
	if d := t.hold(plan); d > 0 {
		t.stats.Delayed++
		t.heldData++
		t.n.rt.Schedule(d, func() {
			t.heldData--
			t.inner.SendData(l, p)
		})
		return
	}
	t.inner.SendData(l, p)
}

// SendHeartbeat implements Transport. Heartbeats carry nothing pooled, so a
// swallowed one needs no reclamation; dropping enough of them in a row is
// how chaos provokes false-positive failure detection.
func (t *ChaosTransport) SendHeartbeat(l topology.LinkID) {
	if t.cut[l] {
		t.stats.PartitionDropped++
		return
	}
	plan := &t.plans[l]
	if t.roll(plan.Drop) {
		t.stats.HeartbeatsDropped++
		return
	}
	if d := t.hold(plan); d > 0 {
		t.stats.Delayed++
		t.n.rt.Schedule(d, func() { t.inner.SendHeartbeat(l) })
		return
	}
	t.inner.SendHeartbeat(l)
}

// SetLinkDown implements Transport: component failures pass straight
// through; chaos-layer partitions are independent of link health.
func (t *ChaosTransport) SetLinkDown(l topology.LinkID, down bool) { t.inner.SetLinkDown(l, down) }

// Close implements Transport.
func (t *ChaosTransport) Close() { t.inner.Close() }

// InTransit extends the inner transport's pooled-payload census with the
// packets the chaos layer is holding in delay timers, so the pool-balance
// invariant (Network.PoolOutstanding == InTransit) is checkable under chaos
// exactly as it is under the plain sim transport.
func (t *ChaosTransport) InTransit() (frames, data int) {
	if st, ok := t.inner.(*SimTransport); ok {
		frames, data = st.InTransit()
	}
	return frames + t.heldFrames, data + t.heldData
}
