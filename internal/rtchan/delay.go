package rtchan

import (
	"time"

	"github.com/rtcl/bcp/internal/topology"
)

// Worst-case end-to-end delay analysis for real-time channels under the
// RMTP service discipline (internal/sched): non-preemptive static priority
// with control traffic above real-time data, FIFO within the class, and
// token-bucket regulated sources admitting one maximum-size message per
// eligibility interval.
//
// At each hop a tagged message waits for at most:
//
//   - one control frame already in service or queued ahead (the RCC's
//     S^RCC_max — control has priority),
//   - one maximum-size message of every *other* real-time channel sharing
//     the link (each source is regulated, so at most one message per
//     channel can be in the busy period the tagged message joins),
//   - its own transmission time,
//
// plus the link's propagation delay. This is the classic regulated-FIFO
// bound; it is loose but safe, in the spirit of the hard guarantees the
// real-time channel model promises.

// DelayModel carries the fixed parameters of the delay analysis.
type DelayModel struct {
	// ControlFrameSize is S^RCC_max in bytes (one frame may block a data
	// message non-preemptively).
	ControlFrameSize int
	// PropDelay is the per-link propagation delay.
	PropDelay time.Duration
}

// DefaultDelayModel matches the protocol engine's defaults.
func DefaultDelayModel() DelayModel {
	return DelayModel{ControlFrameSize: 256, PropDelay: 500 * time.Microsecond}
}

// PerHopDelayBound returns the worst-case delay a message of the candidate
// spec experiences at link l, given the channels currently established
// there (and counting the candidate itself).
func (n *Network) PerHopDelayBound(l topology.LinkID, candidate TrafficSpec, model DelayModel) time.Duration {
	capacity := n.Capacity(l) * 1e6 // bits/second
	bits := float64(8 * model.ControlFrameSize)
	for _, id := range n.ChannelsOnLink(l) {
		ch := n.channels[id]
		if ch == nil || ch.Role != RolePrimary {
			continue
		}
		bits += float64(8 * ch.Spec.MaxMsgSize)
	}
	bits += float64(8 * candidate.MaxMsgSize)
	tx := time.Duration(bits / capacity * float64(time.Second))
	return tx + model.PropDelay
}

// PathDelayBound sums the per-hop bounds along a candidate path.
func (n *Network) PathDelayBound(path topology.Path, candidate TrafficSpec, model DelayModel) time.Duration {
	var sum time.Duration
	for _, l := range path.Links() {
		sum += n.PerHopDelayBound(l, candidate, model)
	}
	return sum
}

// DelayAdmission checks whether admitting a candidate primary channel on
// path keeps every delay contract intact: the candidate's own end-to-end
// bound (candidate.DelayBound, when non-zero) and those of all already
// established primaries that share a link with the path (their bounds grow
// by the candidate's per-hop contribution). It returns the candidate's
// predicted end-to-end bound and whether admission is safe.
func (n *Network) DelayAdmission(path topology.Path, candidate TrafficSpec, model DelayModel) (time.Duration, bool) {
	ownBound := n.PathDelayBound(path, candidate, model)
	if candidate.DelayBound > 0 && ownBound > candidate.DelayBound {
		return ownBound, false
	}
	if candidate.MaxMsgSize <= 0 {
		return ownBound, true
	}
	// The candidate adds one max-size message of blocking on every shared
	// link to each established channel crossing it.
	affected := make(map[ChannelID]struct{})
	for _, l := range path.Links() {
		for _, id := range n.ChannelsOnLink(l) {
			affected[id] = struct{}{}
		}
	}
	for id := range affected {
		ch := n.channels[id]
		if ch == nil || ch.Role != RolePrimary || ch.Spec.DelayBound <= 0 {
			continue
		}
		current := n.PathDelayBound(ch.Path, TrafficSpec{}, model)
		var extra time.Duration
		for _, l := range ch.Path.Links() {
			if onPath(path, l) {
				extra += time.Duration(float64(8*candidate.MaxMsgSize) / (n.Capacity(l) * 1e6) * float64(time.Second))
			}
		}
		if current+extra > ch.Spec.DelayBound {
			return ownBound, false
		}
	}
	return ownBound, true
}

func onPath(p topology.Path, l topology.LinkID) bool {
	for _, x := range p.Links() {
		if x == l {
			return true
		}
	}
	return false
}
