// Priority: why §4.3's priority-based activation matters. Two connections'
// primaries share a link; their backups share spare bandwidth (backup
// multiplexing at a high degree). When the shared link crashes, both
// activations race for the same spare from all four end nodes — and with
// Scheme 3's bidirectional activation they can even deadlock, each claiming
// one of the shared links. Delayed activation and preemption both resolve
// the contention in favor of the more critical connection.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/rtcl/bcp"
)

// scenario builds the contention geometry on a 4x4 mesh:
//
//	 0  1  2  3      critical (mux=7): primary 1->2->6, backup 1->5->6
//	 4  5  6  7      bulk     (mux=8): primary 1->2->3, backup 1->5->6->7->3
//	 8  9 10 11      shared spare on links 1->5 and 5->6 fits ONE activation
//	12 13 14 15
func scenario() (*bcp.Graph, *bcp.Manager, *bcp.DConnection, *bcp.DConnection) {
	g := bcp.NewMesh(4, 4, 10)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	spec := bcp.DefaultSpec()
	mustPath := func(nodes ...bcp.NodeID) bcp.Path {
		p, err := bcp.PathBetween(g, nodes)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	bulk, err := mgr.EstablishOnPaths(spec,
		mustPath(1, 2, 3),
		[]bcp.Path{mustPath(1, 5, 6, 7, 3)}, []int{8})
	if err != nil {
		log.Fatal(err)
	}
	critical, err := mgr.EstablishOnPaths(spec,
		mustPath(1, 2, 6),
		[]bcp.Path{mustPath(1, 5, 6)}, []int{7})
	if err != nil {
		log.Fatal(err)
	}
	return g, mgr, bulk, critical
}

func run(name string, tune func(*bcp.ProtocolConfig)) {
	g, mgr, bulk, critical := scenario()
	eng := bcp.NewEngine(1)
	cfg := bcp.DefaultProtocolConfig()
	tune(&cfg)
	proto := bcp.NewProtocol(eng, mgr, cfg)
	failed := g.LinkBetween(1, 2)
	eng.At(bcp.Time(50*time.Millisecond), func() {
		proto.FailLink(failed)
	})
	eng.RunFor(time.Second)

	verdict := func(c *bcp.DConnection) string {
		if c.Primary != nil && !c.Primary.Path.ContainsLink(failed) {
			return "recovered fast"
		}
		return "multiplexing failure (needs re-establishment)"
	}
	st := proto.Stats()
	fmt.Printf("%s:\n", name)
	fmt.Printf("  critical (mux=7): %s\n", verdict(critical))
	fmt.Printf("  bulk     (mux=8): %s\n", verdict(bulk))
	fmt.Printf("  mux failures=%d preemptions=%d rejoined backups=%d\n\n",
		st.MuxFailures, st.Preemptions, st.Rejoins)
}

func main() {
	fmt.Println("Two connections, one unit of shared spare bandwidth, one link crash.")
	fmt.Println()
	run("no priority mechanism", func(cfg *bcp.ProtocolConfig) {})
	run("delayed activation (wait ∝ multiplexing degree)", func(cfg *bcp.ProtocolConfig) {
		cfg.PriorityDelayUnit = 5 * time.Millisecond
	})
	run("preemption (revoke lower-priority claims)", func(cfg *bcp.ProtocolConfig) {
		cfg.AllowPreemption = true
	})
}
