// Package rtchan implements the real-time channel substrate that BCP runs on
// top of — the paper's Real-time Network Manager Protocol (RNMP) analogue.
//
// It provides per-link bandwidth accounting with a three-way split of each
// link's capacity (dedicated reservations for primary/activated channels, a
// shared spare pool sized by the multiplexing engine, and free capacity), an
// admission test, and a registry of established channels.
//
// The package is deliberately ignorant of *why* spare bandwidth is sized the
// way it is: backup multiplexing lives in internal/core. rtchan only
// enforces the invariant dedicated + spare <= capacity on every link.
package rtchan

import (
	"fmt"
	"sort"
	"time"

	"github.com/rtcl/bcp/internal/topology"
)

// ConnID identifies a D-connection.
type ConnID int32

// ChannelID identifies a channel (primary or backup) network-wide.
type ChannelID int64

// NoChannel is the zero/invalid channel id.
const NoChannel ChannelID = 0

// Role distinguishes primary from backup channels.
type Role uint8

// Channel roles.
const (
	RolePrimary Role = iota
	RoleBackup
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// TrafficSpec is the client's traffic contract for one channel. Following
// the paper's evaluation we account only link bandwidth; the message-level
// fields feed the RMTP scheduler (internal/sched) in protocol-mode runs.
type TrafficSpec struct {
	// Bandwidth reserved on every link of the channel's path (Mbps).
	Bandwidth float64
	// MaxMsgSize in bytes (RMTP regulator parameter).
	MaxMsgSize int
	// MaxMsgRate in messages/second (RMTP regulator parameter).
	MaxMsgRate float64
	// SlackHops is the QoS rule of the paper's evaluation: the end-to-end
	// delay bound is met iff the path is at most SlackHops longer than the
	// shortest possible path.
	SlackHops int
	// DelayBound, when non-zero, is an explicit end-to-end delay contract
	// checked by the analytic admission test (DelayAdmission) in addition
	// to the hop rule. Zero leaves the hop rule as the only QoS criterion,
	// matching the paper's evaluation.
	DelayBound time.Duration
}

// DefaultSpec reproduces the paper's homogeneous traffic model: 1 Mbps
// channels whose delay bound tolerates paths up to 2 hops over shortest.
func DefaultSpec() TrafficSpec {
	return TrafficSpec{Bandwidth: 1, MaxMsgSize: 1024, MaxMsgRate: 128, SlackHops: 2}
}

// Channel is an established real-time channel: a fixed path with bandwidth
// reserved on each of its links.
type Channel struct {
	ID     ChannelID
	Conn   ConnID
	Role   Role
	Serial int // backup serial number within its connection (0 = primary)
	Path   topology.Path
	Spec   TrafficSpec
}

// Bandwidth is a convenience accessor.
func (c *Channel) Bandwidth() float64 { return c.Spec.Bandwidth }

// linkAccount tracks one link's bandwidth split.
type linkAccount struct {
	capacity  float64
	dedicated float64 // primary channels and activated backups
	spare     float64 // shared spare pool for backups (sized by internal/core)
}

func (a *linkAccount) free() float64 { return a.capacity - a.dedicated - a.spare }

// Network is the reservation state of a whole network: one account per link
// plus the channel registry. It is not safe for concurrent use; the
// simulation is single-threaded (see internal/sim).
type Network struct {
	g        *topology.Graph
	accounts []linkAccount
	channels map[ChannelID]*Channel
	byLink   [][]ChannelID // channels whose path uses each link
	byNode   [][]ChannelID // channels whose path visits each node (incl. ends)
	nextID   ChannelID
}

// NewNetwork creates reservation state for graph g with all links empty.
func NewNetwork(g *topology.Graph) *Network {
	n := &Network{
		g:        g,
		accounts: make([]linkAccount, g.NumLinks()),
		channels: make(map[ChannelID]*Channel),
		byLink:   make([][]ChannelID, g.NumLinks()),
		byNode:   make([][]ChannelID, g.NumNodes()),
		nextID:   1,
	}
	for i, l := range g.Links() {
		n.accounts[i].capacity = l.Capacity
	}
	return n
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Channel returns the channel with the given id, or nil.
func (n *Network) Channel(id ChannelID) *Channel { return n.channels[id] }

// NumChannels returns the number of established channels.
func (n *Network) NumChannels() int { return len(n.channels) }

// ChannelsOnLink returns the ids of channels routed over link l, in
// ascending id order. The returned slice must not be modified.
func (n *Network) ChannelsOnLink(l topology.LinkID) []ChannelID { return n.byLink[l] }

// ChannelsAtNode returns the ids of channels whose path visits node v
// (including as an end node). Must not be modified.
func (n *Network) ChannelsAtNode(v topology.NodeID) []ChannelID { return n.byNode[v] }

// Free returns the unreserved bandwidth on link l.
func (n *Network) Free(l topology.LinkID) float64 { return n.accounts[l].free() }

// Dedicated returns the bandwidth dedicated to primaries/activated channels
// on link l.
func (n *Network) Dedicated(l topology.LinkID) float64 { return n.accounts[l].dedicated }

// Spare returns the spare-pool reservation on link l.
func (n *Network) Spare(l topology.LinkID) float64 { return n.accounts[l].spare }

// Capacity returns the capacity of link l.
func (n *Network) Capacity(l topology.LinkID) float64 { return n.accounts[l].capacity }

// SetSpare resizes the spare pool on link l. It fails if the new level would
// overcommit the link. Called by the multiplexing engine only.
func (n *Network) SetSpare(l topology.LinkID, spare float64) error {
	if err := n.SpareCheck(l, spare); err != nil {
		return err
	}
	n.accounts[l].spare = spare
	return nil
}

// SpareCheck reports whether SetSpare(l, spare) would succeed, returning nil
// or the exact error SetSpare would return, without mutating anything. The
// establishment planner uses it to predict admission outcomes read-only.
func (n *Network) SpareCheck(l topology.LinkID, spare float64) error {
	if spare < 0 {
		return fmt.Errorf("rtchan: negative spare %g on link %d", spare, l)
	}
	a := &n.accounts[l]
	if a.dedicated+spare > a.capacity+capacityTolerance {
		return fmt.Errorf("rtchan: spare %g + dedicated %g exceeds capacity %g on link %d",
			spare, a.dedicated, a.capacity, l)
	}
	return nil
}

// capacityTolerance absorbs floating-point accumulation error in repeated
// reserve/release cycles.
const capacityTolerance = 1e-6

// CanReserve reports whether every link of path has at least bw free.
func (n *Network) CanReserve(path topology.Path, bw float64) bool {
	for _, l := range path.Links() {
		if n.accounts[l].free()+capacityTolerance < bw {
			return false
		}
	}
	return true
}

// Establish admits and registers a channel on the given path, dedicating
// spec.Bandwidth on every link for primaries. Backup channels are
// registered without dedicated bandwidth — their reservation lives in the
// spare pools managed by the multiplexing engine.
func (n *Network) Establish(conn ConnID, role Role, serial int, path topology.Path, spec TrafficSpec) (*Channel, error) {
	if path.IsZero() {
		return nil, fmt.Errorf("rtchan: empty path")
	}
	if spec.Bandwidth <= 0 {
		return nil, fmt.Errorf("rtchan: non-positive bandwidth %g", spec.Bandwidth)
	}
	if role == RolePrimary {
		if !n.CanReserve(path, spec.Bandwidth) {
			return nil, fmt.Errorf("rtchan: admission failed for %g Mbps on %s", spec.Bandwidth, path)
		}
		for _, l := range path.Links() {
			n.accounts[l].dedicated += spec.Bandwidth
		}
	}
	ch := &Channel{
		ID:     n.nextID,
		Conn:   conn,
		Role:   role,
		Serial: serial,
		Path:   path,
		Spec:   spec,
	}
	n.nextID++
	n.channels[ch.ID] = ch
	n.index(ch)
	return ch, nil
}

// Teardown removes a channel, releasing its dedicated bandwidth if it is a
// primary. Spare-pool adjustments for backups are the multiplexing engine's
// job and must happen separately.
func (n *Network) Teardown(id ChannelID) error {
	ch, ok := n.channels[id]
	if !ok {
		return fmt.Errorf("rtchan: unknown channel %d", id)
	}
	if ch.Role == RolePrimary {
		for _, l := range ch.Path.Links() {
			n.accounts[l].dedicated -= ch.Spec.Bandwidth
			if n.accounts[l].dedicated < 0 {
				n.accounts[l].dedicated = 0 // clamp float drift
			}
		}
	}
	delete(n.channels, id)
	n.unindex(ch)
	return nil
}

// Promote converts a backup channel into a primary (backup activation):
// its bandwidth becomes dedicated on every link of its path. The caller
// (the multiplexing engine) must have released the corresponding spare
// first, or verified headroom; Promote itself only enforces the capacity
// invariant.
func (n *Network) Promote(id ChannelID) error {
	ch, ok := n.channels[id]
	if !ok {
		return fmt.Errorf("rtchan: unknown channel %d", id)
	}
	if ch.Role != RoleBackup {
		return fmt.Errorf("rtchan: channel %d is not a backup", id)
	}
	for _, l := range ch.Path.Links() {
		a := &n.accounts[l]
		if a.dedicated+a.spare+ch.Spec.Bandwidth > a.capacity+capacityTolerance {
			// Roll back the links already promoted.
			for _, u := range ch.Path.Links() {
				if u == l {
					break
				}
				n.accounts[u].dedicated -= ch.Spec.Bandwidth
			}
			return fmt.Errorf("rtchan: link %d cannot dedicate %g for activation", l, ch.Spec.Bandwidth)
		}
		a.dedicated += ch.Spec.Bandwidth
	}
	ch.Role = RolePrimary
	return nil
}

// Demote converts a primary channel into a backup (a repaired channel
// rejoining as a cold standby, §4.4): its dedicated bandwidth is released.
// The caller is responsible for registering it with the multiplexing engine.
func (n *Network) Demote(id ChannelID, serial int) error {
	ch, ok := n.channels[id]
	if !ok {
		return fmt.Errorf("rtchan: unknown channel %d", id)
	}
	if ch.Role != RolePrimary {
		return fmt.Errorf("rtchan: channel %d is not a primary", id)
	}
	for _, l := range ch.Path.Links() {
		n.accounts[l].dedicated -= ch.Spec.Bandwidth
		if n.accounts[l].dedicated < 0 {
			n.accounts[l].dedicated = 0
		}
	}
	ch.Role = RoleBackup
	ch.Serial = serial
	return nil
}

// NetworkLoad returns the paper's network-load metric: total bandwidth
// dedicated to primary channels divided by total network capacity.
func (n *Network) NetworkLoad() float64 {
	var dedicated, capacity float64
	for i := range n.accounts {
		dedicated += n.accounts[i].dedicated
		capacity += n.accounts[i].capacity
	}
	if capacity == 0 {
		return 0
	}
	return dedicated / capacity
}

// SpareFraction returns total spare reservation divided by total capacity —
// the paper's "average spare bandwidth" metric (Figure 9, Tables 1-3).
func (n *Network) SpareFraction() float64 {
	var spare, capacity float64
	for i := range n.accounts {
		spare += n.accounts[i].spare
		capacity += n.accounts[i].capacity
	}
	if capacity == 0 {
		return 0
	}
	return spare / capacity
}

// index registers ch in the per-link and per-node lookup tables.
func (n *Network) index(ch *Channel) {
	for _, l := range ch.Path.Links() {
		n.byLink[l] = insertSorted(n.byLink[l], ch.ID)
	}
	for _, v := range ch.Path.Nodes() {
		n.byNode[v] = insertSorted(n.byNode[v], ch.ID)
	}
}

func (n *Network) unindex(ch *Channel) {
	for _, l := range ch.Path.Links() {
		n.byLink[l] = removeSorted(n.byLink[l], ch.ID)
	}
	for _, v := range ch.Path.Nodes() {
		n.byNode[v] = removeSorted(n.byNode[v], ch.ID)
	}
}

func insertSorted(s []ChannelID, id ChannelID) []ChannelID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

func removeSorted(s []ChannelID, id ChannelID) []ChannelID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// CheckInvariants verifies the capacity invariant on every link and index
// consistency; tests call it after mutation sequences.
func (n *Network) CheckInvariants() error {
	for i := range n.accounts {
		a := &n.accounts[i]
		if a.dedicated < -capacityTolerance || a.spare < -capacityTolerance {
			return fmt.Errorf("rtchan: negative account on link %d: dedicated=%g spare=%g", i, a.dedicated, a.spare)
		}
		if a.dedicated+a.spare > a.capacity+capacityTolerance {
			return fmt.Errorf("rtchan: link %d overcommitted: dedicated=%g spare=%g capacity=%g",
				i, a.dedicated, a.spare, a.capacity)
		}
	}
	for id, ch := range n.channels {
		if ch.ID != id {
			return fmt.Errorf("rtchan: registry id mismatch %d vs %d", id, ch.ID)
		}
		for _, l := range ch.Path.Links() {
			if !containsID(n.byLink[l], id) {
				return fmt.Errorf("rtchan: channel %d missing from link %d index", id, l)
			}
		}
	}
	return nil
}

func containsID(s []ChannelID, id ChannelID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}
