package reliability

import (
	"fmt"
	"math"
)

// CTMC is a continuous-time Markov chain given by its generator matrix Q
// (Q[i][j] is the transition rate i→j for i≠j; diagonal entries are set
// automatically to make row sums zero). It is solved by uniformization,
// the standard technique in Trivedi's text that the paper cites for deriving
// R(t) from the Figure 3 models.
type CTMC struct {
	n int
	q [][]float64
}

// NewCTMC creates a chain with n states and no transitions.
func NewCTMC(n int) *CTMC {
	if n < 1 {
		panic("reliability: CTMC needs at least one state")
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	return &CTMC{n: n, q: q}
}

// NumStates returns the number of states.
func (c *CTMC) NumStates() int { return c.n }

// SetRate sets the transition rate from state i to state j.
func (c *CTMC) SetRate(i, j int, rate float64) {
	if i == j {
		panic("reliability: diagonal rates are implicit")
	}
	if rate < 0 {
		panic(fmt.Sprintf("reliability: negative rate %g", rate))
	}
	c.q[i][j] = rate
}

// TransientSolve returns the state-probability vector at time t given the
// initial distribution p0, using uniformization with truncation error below
// eps (default 1e-12 when eps <= 0).
func (c *CTMC) TransientSolve(p0 []float64, t float64, eps float64) []float64 {
	if len(p0) != c.n {
		panic("reliability: initial vector size mismatch")
	}
	if t < 0 {
		panic("reliability: negative time")
	}
	if eps <= 0 {
		eps = 1e-12
	}
	// Uniformization rate: q > max exit rate.
	var qmax float64
	exit := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		var sum float64
		for j := 0; j < c.n; j++ {
			if i != j {
				sum += c.q[i][j]
			}
		}
		exit[i] = sum
		if sum > qmax {
			qmax = sum
		}
	}
	if qmax == 0 || t == 0 {
		out := make([]float64, c.n)
		copy(out, p0)
		return out
	}
	qu := qmax * 1.02
	// Uniformization needs ~qu·t + O(sqrt(qu·t)) Poisson terms; for large
	// horizons split t into chunks and compose the transient solutions.
	const maxLam = 5000.0
	if qu*t > maxLam {
		chunks := int(math.Ceil(qu * t / maxLam))
		dt := t / float64(chunks)
		vec := make([]float64, c.n)
		copy(vec, p0)
		for k := 0; k < chunks; k++ {
			vec = c.TransientSolve(vec, dt, eps)
		}
		return vec
	}
	// DTMC: P = I + Q/qu.
	p := make([][]float64, c.n)
	for i := range p {
		p[i] = make([]float64, c.n)
		for j := 0; j < c.n; j++ {
			if i == j {
				p[i][j] = 1 - exit[i]/qu
			} else {
				p[i][j] = c.q[i][j] / qu
			}
		}
	}
	// result = Σ_k Poisson(qu·t, k) · p0·P^k
	lam := qu * t
	vec := make([]float64, c.n)
	copy(vec, p0)
	out := make([]float64, c.n)
	// Poisson terms computed iteratively; start at k=0.
	logTerm := -lam // ln of Poisson pmf at k=0
	var accumulated float64
	next := make([]float64, c.n)
	for k := 0; ; k++ {
		w := math.Exp(logTerm)
		for i := range out {
			out[i] += w * vec[i]
		}
		accumulated += w
		if 1-accumulated < eps && k > int(lam) {
			break
		}
		if k > 100000 {
			break // safety net for enormous qu·t
		}
		// vec = vec · P
		for j := 0; j < c.n; j++ {
			var s float64
			for i := 0; i < c.n; i++ {
				s += vec[i] * p[i][j]
			}
			next[j] = s
		}
		copy(vec, next)
		logTerm += math.Log(lam) - math.Log(float64(k+1))
	}
	// Normalize the truncation remainder away.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// DConnModel is the Figure 3(a) Markov model of a D-connection with a single
// backup. States:
//
//	0: both channels healthy (initial)
//	1: primary failed, under repair
//	2: backup failed, under repair
//	3: service lost (absorbing)
//
// Lambda1 and Lambda2 are the failure rates of the primary and backup's
// non-shared parts, Lambda3 the failure rate of the part shared by both
// channels (shared components take the connection straight to state 3), and
// Mu the channel repair (re-establishment) rate.
type DConnModel struct {
	Lambda1, Lambda2, Lambda3, Mu float64
}

// Chain builds the CTMC for the model.
func (m DConnModel) Chain() *CTMC {
	c := NewCTMC(4)
	c.SetRate(0, 1, m.Lambda1)
	c.SetRate(0, 2, m.Lambda2)
	c.SetRate(0, 3, m.Lambda3)
	c.SetRate(1, 0, m.Mu)
	c.SetRate(1, 3, m.Lambda2+m.Lambda3) // backup is the only channel left
	c.SetRate(2, 0, m.Mu)
	c.SetRate(2, 3, m.Lambda1+m.Lambda3)
	return c
}

// Reliability returns R(t) = 1 − P(absorbing state 3 at time t), starting
// from state 0.
func (m DConnModel) Reliability(t float64) float64 {
	c := m.Chain()
	p := c.TransientSolve([]float64{1, 0, 0, 0}, t, 0)
	return 1 - p[3]
}

// SymmetricDConnModel is the simplified Figure 3(b) model for equal-length
// disjoint primary and backup channels with per-channel failure rate Lambda
// and repair rate Mu. States: 0 both healthy, 1 one failed, 2 absorbing.
type SymmetricDConnModel struct {
	Lambda, Mu float64
}

// Chain builds the CTMC for the symmetric model.
func (m SymmetricDConnModel) Chain() *CTMC {
	c := NewCTMC(3)
	c.SetRate(0, 1, 2*m.Lambda)
	c.SetRate(1, 0, m.Mu)
	c.SetRate(1, 2, m.Lambda)
	return c
}

// Reliability returns R(t) starting from state 0.
func (m SymmetricDConnModel) Reliability(t float64) float64 {
	c := m.Chain()
	p := c.TransientSolve([]float64{1, 0, 0}, t, 0)
	return 1 - p[2]
}
