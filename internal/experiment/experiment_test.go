package experiment

import (
	"math"
	"strings"
	"testing"

	"github.com/rtcl/bcp/internal/baseline"
	"github.com/rtcl/bcp/internal/core"
)

func TestNewGraphKinds(t *testing.T) {
	if g := NewGraph(Torus8x8); g.NumNodes() != 64 || g.NumLinks() != 256 {
		t.Fatal("torus wrong")
	}
	if g := NewGraph(Mesh8x8); g.NumNodes() != 64 || g.NumLinks() != 224 {
		t.Fatal("mesh wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind accepted")
		}
	}()
	NewGraph(Kind("bogus"))
}

func TestEstablishAllPairsCount(t *testing.T) {
	g := NewGraph(Torus8x8)
	m := core.NewManager(g, DefaultOptions().config())
	est, rej := EstablishAllPairs(m, UniformDegrees(0, 0))
	if est != 4032 || rej != 0 {
		t.Fatalf("est=%d rej=%d", est, rej)
	}
	load := m.Network().NetworkLoad()
	if load < 0.30 || load > 0.36 {
		t.Fatalf("load = %g, paper reports 0.33-0.34", load)
	}
}

func TestCyclicDegreesPartition(t *testing.T) {
	f := CyclicDegrees(2, []int{1, 3, 5, 6})
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		d := f(i)
		if len(d) != 2 || d[0] != d[1] {
			t.Fatalf("degrees %v", d)
		}
		counts[d[0]]++
	}
	for _, alpha := range []int{1, 3, 5, 6} {
		if counts[alpha] != 100 {
			t.Fatalf("class %d got %d connections", alpha, counts[alpha])
		}
	}
}

func TestFailureEnumerations(t *testing.T) {
	g := NewGraph(Torus8x8)
	if got := len(AllSingleLinkFailures(g)); got != 256 {
		t.Fatalf("link failures = %d", got)
	}
	if got := len(AllSingleNodeFailures(g)); got != 64 {
		t.Fatalf("node failures = %d", got)
	}
	if got := len(AllDoubleNodeFailures(g, 0, 1)); got != 64*63/2 {
		t.Fatalf("double failures = %d", got)
	}
	if got := len(AllDoubleNodeFailures(g, 100, 1)); got != 100 {
		t.Fatalf("sampled double failures = %d", got)
	}
}

// TestTable1TorusMatchesPaperShape is the headline reproduction check: the
// qualitative relationships of Table 1(a) must hold.
func TestTable1TorusMatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep")
	}
	opts := DefaultOptions()
	opts.DoubleNodeSample = 200
	res := RunTable1(Torus8x8, 1, []int{1, 3, 5, 6}, opts)
	cols := map[int]AlphaColumn{}
	for _, c := range res.Columns {
		cols[c.Alpha] = c
	}
	// Spare bandwidth decreases with multiplexing degree.
	if !(cols[1].SpareBW > cols[3].SpareBW && cols[3].SpareBW > cols[5].SpareBW && cols[5].SpareBW > cols[6].SpareBW) {
		t.Fatalf("spare ordering broken: %+v", res.Columns)
	}
	// Paper magnitudes (±5 points): 30.25 / 22.5 / 16 / 9.5.
	for alpha, want := range map[int]float64{1: 0.3025, 3: 0.225, 5: 0.16, 6: 0.095} {
		if got := cols[alpha].SpareBW; math.Abs(got-want) > 0.05 {
			t.Errorf("mux=%d spare = %.4f, paper %.4f", alpha, got, want)
		}
	}
	// The guarantees: mux=1 covers all single failures, mux=3 all single
	// link failures.
	if cols[1].OneLink != 1 || cols[1].OneNode != 1 {
		t.Errorf("mux=1 guarantee broken: link=%v node=%v", cols[1].OneLink, cols[1].OneNode)
	}
	if cols[3].OneLink != 1 {
		t.Errorf("mux=3 link guarantee broken: %v", cols[3].OneLink)
	}
	// Coverage degrades with degree and failure severity.
	if !(cols[6].OneLink < cols[5].OneLink && cols[5].OneLink < 1) {
		t.Errorf("link coverage ordering broken")
	}
	if !(cols[5].TwoNodes < cols[5].OneNode) {
		t.Errorf("double failures should be harsher than single")
	}
	// Render must produce a paper-style table.
	out := res.Render()
	if !strings.Contains(out, "mux=6") || !strings.Contains(out, "Spare bandwidth") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

func TestTable2ClassGuaranteesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep")
	}
	opts := DefaultOptions()
	opts.DoubleNodeSample = 100
	res := RunTable2(Torus8x8, 1, []int{1, 3, 5, 6}, opts)
	// Per-connection control: the mux=1 class keeps its single-failure
	// guarantee even in the mixed workload (with priority activation).
	if res.OneLink[1] != 1 || res.OneNode[1] != 1 {
		t.Fatalf("mux=1 class: link=%v node=%v", res.OneLink[1], res.OneNode[1])
	}
	if res.OneLink[3] != 1 {
		t.Fatalf("mux=3 class link coverage = %v", res.OneLink[3])
	}
	// Lower-priority classes absorb the damage.
	if !(res.OneNode[6] < res.OneNode[1]) {
		t.Fatal("class separation missing")
	}
	if out := res.Render(); !strings.Contains(out, "mixed multiplexing") {
		t.Fatal("render broken")
	}
}

func TestBruteForceUniformSizing(t *testing.T) {
	g := NewGraph(Torus8x8)
	m := core.NewManager(g, DefaultOptions().config())
	EstablishAllPairs(m, UniformDegrees(1, 3))
	uniform := baseline.UniformSpareFromManager(m)
	// Average of per-link spare must equal total spare / links.
	var total float64
	for _, l := range g.Links() {
		total += m.Network().Spare(l.ID)
	}
	if math.Abs(uniform-total/256) > 1e-9 {
		t.Fatalf("uniform sizing wrong: %g", uniform)
	}
	bf := baseline.NewBruteForce(m, uniform, true)
	res := Sweep(bf, AllSingleLinkFailures(g)[:32], DefaultOptions())
	if res.RFast <= 0.5 || res.RFast > 1 {
		t.Fatalf("brute-force RFast = %v", res.RFast)
	}
}

func TestFigure9SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res := RunFigure9(Torus8x8, 1, []int{0, 6}, 1008, DefaultOptions())
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	noMux, mux6 := res.Series[0], res.Series[1]
	// Spare grows with load for both; multiplexing keeps it lower.
	last := len(noMux.Y) - 1
	if noMux.Y[last] <= noMux.Y[0] {
		t.Fatal("no-mux spare did not grow with load")
	}
	if mux6.Y[last] >= noMux.Y[last] {
		t.Fatal("multiplexing did not reduce spare")
	}
	// The paper: each unmultiplexed backup costs more than the primary
	// network load (backup paths are at least as long).
	finalLoad := noMux.X[last]
	if noMux.Y[last] < finalLoad {
		t.Fatalf("no-mux spare %.3f below load %.3f", noMux.Y[last], finalLoad)
	}
	if out := res.Render(); !strings.Contains(out, "mux=0") {
		t.Fatal("render broken")
	}
}

func TestFigure3ModelsAgree(t *testing.T) {
	res := RunFigure3(4, 6, 1e-6, 100, []float64{1, 10, 100})
	if len(res.Markov.Y) != 3 || len(res.Combinatorial.Y) != 3 {
		t.Fatal("series sizes wrong")
	}
	for i := range res.Markov.Y {
		if math.Abs(res.Markov.Y[i]-res.Combinatorial.Y[i]) > 1e-3 {
			t.Fatalf("models diverge at t=%g: %g vs %g",
				res.Markov.X[i], res.Markov.Y[i], res.Combinatorial.Y[i])
		}
		if res.Markov.Y[i] <= 0 || res.Markov.Y[i] > 1 {
			t.Fatalf("reliability out of range: %g", res.Markov.Y[i])
		}
	}
}

func TestSection5AllWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol sweep")
	}
	res := RunSection5(DefaultOptions())
	if !res.AllBound {
		t.Fatalf("recovery delay exceeded the bound:\n%s", res.Render())
	}
	// Γ grows with the failure's distance from the source (single backup).
	var prev Section5Row
	for i, row := range res.Rows {
		if len(row.Violations) != 0 {
			t.Errorf("fail-pos %d (backups=%d): conformance violations %v",
				row.FailPos, row.Backups, row.Violations)
		}
		if row.Backups != 1 {
			continue
		}
		if i > 0 && prev.Backups == 1 && row.Gamma < prev.Gamma {
			t.Fatalf("gamma not monotone at pos %d", row.FailPos)
		}
		prev = row
	}
}

func TestSchemeComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol sweep")
	}
	res := RunSchemeComparison(DefaultOptions())
	byScheme := map[int]map[int]SchemeRow{}
	for _, r := range res.Rows {
		if len(r.Violations) != 0 {
			t.Errorf("scheme %d fail-pos %d: conformance violations %v",
				r.Scheme, r.FailPos, r.Violations)
		}
		if byScheme[int(r.Scheme)] == nil {
			byScheme[int(r.Scheme)] = map[int]SchemeRow{}
		}
		byScheme[int(r.Scheme)][r.FailPos] = r
	}
	// Scheme 1 is never faster than scheme 3 at the source.
	for _, pos := range []int{0, 4, 7} {
		if byScheme[1][pos].Gamma < byScheme[3][pos].Gamma {
			t.Fatalf("scheme 1 beat scheme 3 at pos %d", pos)
		}
	}
	// The advantage of 2/3 over 1 shrinks near the destination (§4.2).
	adv0 := byScheme[1][0].Gamma - byScheme[3][0].Gamma
	adv7 := byScheme[1][7].Gamma - byScheme[3][7].Gamma
	if adv7 >= adv0 {
		t.Fatalf("advantage did not shrink: near-src %v vs near-dst %v", adv0, adv7)
	}
}

func TestHotspotProposedBeatsBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("hotspot sweep")
	}
	res := RunHotspot(DefaultOptions())
	if res.Established < 2000 {
		t.Fatalf("established only %d", res.Established)
	}
	if res.ProposedOneLink <= res.BruteOneLink {
		t.Fatalf("proposed (%v) did not beat brute-force (%v) under hot-spots",
			res.ProposedOneLink, res.BruteOneLink)
	}
	if out := res.Render(); !strings.Contains(out, "brute-force") {
		t.Fatal("render broken")
	}
}
