package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

func TestEstablishRoutesDisjointChannels(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	m := newTestManager(g)
	conn, err := m.Establish(0, 36, rtchan.DefaultSpec(), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Primary.Path.Hops() != 8 {
		t.Fatalf("primary hops = %d, want 8", conn.Primary.Path.Hops())
	}
	all := conn.Channels()
	if len(all) != 3 {
		t.Fatalf("channels = %d", len(all))
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if !all[i].Path.ComponentDisjoint(all[j].Path) {
				t.Fatalf("channels %d,%d are not component-disjoint", i, j)
			}
		}
		if all[i].Path.Source() != 0 || all[i].Path.Destination() != 36 {
			t.Fatal("wrong endpoints")
		}
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.plan.net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEstablishRejectsBadArgs(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	if _, err := m.Establish(0, 0, rtchan.DefaultSpec(), nil); err == nil {
		t.Fatal("src==dst accepted")
	}
	spec := rtchan.DefaultSpec()
	spec.Bandwidth = 0
	if _, err := m.Establish(0, 1, spec, nil); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestEstablishRejectsWhenNoDisjointBackup(t *testing.T) {
	g := topology.NewLine(4, 10)
	m := newTestManager(g)
	if _, err := m.Establish(0, 3, rtchan.DefaultSpec(), []int{1}); err == nil {
		t.Fatal("line topology cannot host a disjoint backup")
	}
	// No residue.
	if m.NumConnections() != 0 {
		t.Fatal("failed establish left a connection")
	}
	for _, l := range g.Links() {
		if m.plan.net.Dedicated(l.ID) != 0 || m.plan.net.Spare(l.ID) != 0 {
			t.Fatal("failed establish left reservations")
		}
	}
}

func TestEstablishHonorsQoSSlack(t *testing.T) {
	// Saturate the direct path so the only feasible route exceeds base+slack.
	g := topology.NewRing(8, 1) // capacity 1: a single channel fills a link
	m := newTestManager(g)
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	if _, err := m.Establish(0, 1, spec, nil); err != nil {
		t.Fatal(err)
	}
	// 0->1 direct is full; the alternative runs 7 hops counterclockwise,
	// exceeding 1+2. Must reject.
	if _, err := m.Establish(0, 1, spec, nil); err == nil {
		t.Fatal("QoS-violating path accepted")
	}
	// With enough slack it is accepted.
	spec.SlackHops = 6
	if _, err := m.Establish(0, 1, spec, nil); err != nil {
		t.Fatalf("slack 6 rejected: %v", err)
	}
}

func TestEstablishZeroBackups(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	conn, err := m.Establish(0, 5, rtchan.DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 0 {
		t.Fatal("unexpected backups")
	}
	if m.plan.net.SpareFraction() != 0 {
		t.Fatal("spare reserved without backups")
	}
}

func TestEstablishMaxFlowRouting(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	cfg := DefaultConfig()
	cfg.BackupRouting = RouteMaxFlow
	m := NewManager(g, cfg)
	conn, err := m.Establish(3, 40, rtchan.DefaultSpec(), []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	chans := conn.Channels()
	for i := range chans {
		for j := i + 1; j < len(chans); j++ {
			if !chans[i].Path.ComponentDisjoint(chans[j].Path) {
				t.Fatal("max-flow backups not disjoint")
			}
		}
	}
}

func TestTieBreakSpreadsLoad(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	det := NewManager(g, DefaultConfig())
	cfgR := DefaultConfig()
	cfgR.TieBreak = rand.New(rand.NewSource(7))
	rnd := NewManager(g, cfgR)
	for _, m := range []*Manager{det, rnd} {
		for i := 0; i < 32; i++ {
			if _, err := m.Establish(0, 36, rtchan.DefaultSpec(), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	maxLoad := func(m *Manager) float64 {
		var mx float64
		for _, l := range g.Links() {
			if d := m.plan.net.Dedicated(l.ID); d > mx {
				mx = d
			}
		}
		return mx
	}
	if maxLoad(rnd) >= maxLoad(det) {
		t.Fatalf("random tie-break did not spread load: det=%g rnd=%g", maxLoad(det), maxLoad(rnd))
	}
}

func TestEstablishOnPathsValidation(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), topology.Path{}, nil, nil); err == nil {
		t.Fatal("empty primary accepted")
	}
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, nil); err == nil {
		t.Fatal("degree/backup count mismatch accepted")
	}
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(3, 4, 5)}, []int{1}); err == nil {
		t.Fatal("endpoint-mismatched backup accepted")
	}
}

func TestTeardownUnknown(t *testing.T) {
	g, _ := mesh3(t)
	m := newTestManager(g)
	if err := m.Teardown(42); err == nil {
		t.Fatal("unknown teardown accepted")
	}
}

func TestConnectionsOrder(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	var ids []rtchan.ConnID
	for i := 0; i < 5; i++ {
		c, err := m.Establish(topology.NodeID(i), topology.NodeID(i+8), rtchan.DefaultSpec(), []int{1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID)
	}
	m.Teardown(ids[2])
	conns := m.Connections()
	if len(conns) != 4 {
		t.Fatalf("connections = %d", len(conns))
	}
	for i := 1; i < len(conns); i++ {
		if conns[i].ID <= conns[i-1].ID {
			t.Fatal("not in establishment order")
		}
	}
}

func TestFullTorusEstablishment(t *testing.T) {
	// Establishing a connection between every node pair with one backup at
	// mux=3 must succeed on the paper's torus (it does in the paper).
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topology.NewTorus(8, 8, 200)
	cfg := DefaultConfig()
	cfg.TieBreak = rand.New(rand.NewSource(1))
	m := NewManager(g, cfg)
	n := g.NumNodes()
	count := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if _, err := m.Establish(topology.NodeID(s), topology.NodeID(d), rtchan.DefaultSpec(), []int{3}); err != nil {
				t.Fatalf("pair %d->%d: %v", s, d, err)
			}
			count++
		}
	}
	if count != 4032 {
		t.Fatalf("connections = %d", count)
	}
	load := m.plan.net.NetworkLoad()
	if load < 0.30 || load > 0.40 {
		t.Fatalf("network load = %.3f, paper reports 0.33-0.34", load)
	}
	spare := m.plan.net.SpareFraction()
	if spare < 0.10 || spare > 0.40 {
		t.Fatalf("spare fraction = %.3f, out of plausible range", spare)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.plan.net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("torus mux=3: load=%.4f spare=%.4f", load, spare)
}

func TestRandomChurnKeepsInvariants(t *testing.T) {
	g := topology.NewTorus(6, 6, 50)
	cfg := DefaultConfig()
	cfg.TieBreak = rand.New(rand.NewSource(3))
	m := NewManager(g, cfg)
	rng := rand.New(rand.NewSource(99))
	var live []rtchan.ConnID
	for step := 0; step < 300; step++ {
		if rng.Intn(3) < 2 || len(live) == 0 {
			s := topology.NodeID(rng.Intn(36))
			d := topology.NodeID(rng.Intn(36))
			if s == d {
				continue
			}
			nb := rng.Intn(3)
			degrees := make([]int, nb)
			for i := range degrees {
				degrees[i] = 1 + rng.Intn(6)
			}
			if c, err := m.Establish(s, d, rtchan.DefaultSpec(), degrees); err == nil {
				live = append(live, c.ID)
			}
		} else {
			i := rng.Intn(len(live))
			if err := m.Teardown(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if step%25 == 0 {
			if err := m.CheckMuxInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := m.plan.net.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Drain and verify clean state.
	for _, id := range live {
		if err := m.Teardown(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range g.Links() {
		if m.plan.net.Dedicated(l.ID) != 0 || m.plan.net.Spare(l.ID) != 0 {
			t.Fatalf("link %d dirty after drain: dedicated=%g spare=%g",
				l.ID, m.plan.net.Dedicated(l.ID), m.plan.net.Spare(l.ID))
		}
	}
}

func TestEstablishHonorsDelayContract(t *testing.T) {
	g := topology.NewTorus(4, 4, 10) // slow links make bounds bite
	m := newTestManager(g)
	spec := rtchan.TrafficSpec{Bandwidth: 1, MaxMsgSize: 1250, MaxMsgRate: 100, SlackHops: 2}
	// Per hop: (256+1250)*8/10e6 ≈ 1.2ms + 0.5ms prop ≈ 1.7ms; 2 hops ≈ 3.4ms.
	spec.DelayBound = 4 * time.Millisecond
	if _, err := m.Establish(0, 5, spec, nil); err != nil {
		t.Fatalf("feasible contract rejected: %v", err)
	}
	spec.DelayBound = 2 * time.Millisecond
	if _, err := m.Establish(1, 6, spec, nil); err == nil {
		t.Fatal("infeasible contract accepted")
	}
	// Filling a corridor with contract-bearing channels eventually rejects
	// newcomers whose blocking would break the incumbents.
	spec.DelayBound = 5 * time.Millisecond
	rejected := false
	for i := 0; i < 8; i++ {
		if _, err := m.Establish(0, 1, spec, nil); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("admission never protected the incumbents' contracts")
	}
}

func TestRouteBackupRespectsExclusion(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	excl := routing.NewExclusion()
	p, ok := routing.ShortestPath(g, 0, 5, routing.Constraint{})
	if !ok {
		t.Fatal("no path")
	}
	excl.AddPath(p)
	b, ok := m.routeBackup(0, 5, 1, 1, p, excl)
	if !ok {
		t.Fatal("no backup path")
	}
	if !b.ComponentDisjoint(p) {
		t.Fatal("backup not component-disjoint from excluded path")
	}
}
