package routing

import (
	"math/rand"
	"testing"

	"github.com/rtcl/bcp/internal/topology"
)

func TestDistanceTorus(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	// Same node row: wrap-around makes distance min(d, 8-d).
	cases := []struct {
		a, b topology.NodeID
		want int
	}{
		{0, 1, 1},
		{0, 7, 1},  // wrap in the row
		{0, 4, 4},  // half the dimension
		{0, 56, 1}, // wrap in the column
		{0, 36, 8}, // (4,4): 4+4
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := Distance(g, c.a, c.b); got != c.want && !(c.a == c.b && got == 0) {
			if c.a == c.b {
				continue
			}
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceUnreachable(t *testing.T) {
	g := topology.NewGraph("disconnected", 4)
	if _, err := g.AddLink(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if d := Distance(g, 0, 3); d != -1 {
		t.Fatalf("Distance to unreachable = %d, want -1", d)
	}
}

func TestShortestPathBasic(t *testing.T) {
	g := topology.NewMesh(8, 8, 300)
	p, ok := ShortestPath(g, 0, 63, Constraint{})
	if !ok {
		t.Fatal("no path found")
	}
	if p.Hops() != 14 {
		t.Fatalf("corner-to-corner mesh path = %d hops, want 14", p.Hops())
	}
	if p.Source() != 0 || p.Destination() != 63 {
		t.Fatal("wrong endpoints")
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := topology.NewMesh(2, 2, 10)
	if _, ok := ShortestPath(g, 1, 1, Constraint{}); ok {
		t.Fatal("path to self should not exist")
	}
}

func TestShortestPathRespectsLinkConstraint(t *testing.T) {
	g := topology.NewRing(6, 10)
	// Block the clockwise 0->1 link; path 0->1 must go the long way around.
	blocked := g.LinkBetween(0, 1)
	c := Constraint{LinkAllowed: func(l topology.LinkID) bool { return l != blocked }}
	p, ok := ShortestPath(g, 0, 1, c)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 5 {
		t.Fatalf("hops = %d, want 5 (long way around)", p.Hops())
	}
	if p.ContainsLink(blocked) {
		t.Fatal("path uses blocked link")
	}
}

func TestShortestPathRespectsNodeConstraint(t *testing.T) {
	g := topology.NewMesh(3, 3, 10)
	// 0 1 2 / 3 4 5 / 6 7 8. Forbid center node 4: 1->7 must detour.
	c := Constraint{NodeAllowed: func(n topology.NodeID) bool { return n != 4 }}
	p, ok := ShortestPath(g, 1, 7, c)
	if !ok {
		t.Fatal("no path")
	}
	if p.ContainsNode(4) {
		t.Fatal("path uses forbidden node")
	}
	if p.Hops() != 4 {
		t.Fatalf("hops = %d, want 4", p.Hops())
	}
	// Endpoint nodes are always allowed even if NodeAllowed rejects them.
	c2 := Constraint{NodeAllowed: func(n topology.NodeID) bool { return n != 1 && n != 7 }}
	if _, ok := ShortestPath(g, 1, 7, c2); !ok {
		t.Fatal("constraint on endpoints must not block the search")
	}
}

func TestShortestPathMaxHops(t *testing.T) {
	g := topology.NewLine(6, 10)
	if _, ok := ShortestPath(g, 0, 5, Constraint{MaxHops: 4}); ok {
		t.Fatal("path found despite hop bound")
	}
	if p, ok := ShortestPath(g, 0, 5, Constraint{MaxHops: 5}); !ok || p.Hops() != 5 {
		t.Fatal("path within hop bound not found")
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	p1, _ := ShortestPath(g, 0, 36, Constraint{})
	p2, _ := ShortestPath(g, 0, 36, Constraint{})
	if p1.String() != p2.String() {
		t.Fatal("deterministic search returned different paths")
	}
}

func TestShortestPathRandomTieBreakStillShortest(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		p, ok := ShortestPath(g, 0, 36, Constraint{TieBreak: rng})
		if !ok || p.Hops() != 8 {
			t.Fatalf("tie-broken path wrong: ok=%v hops=%d", ok, p.Hops())
		}
		seen[p.String()] = true
	}
	if len(seen) < 2 {
		t.Fatal("randomized tie-breaking never varied the path")
	}
}

func TestSequentialDisjointPathsTorus(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	paths := SequentialDisjointPaths(g, 0, 36, 3, Constraint{})
	if len(paths) != 3 {
		t.Fatalf("got %d disjoint paths, want 3", len(paths))
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if !paths[i].ComponentDisjoint(paths[j]) {
				t.Fatalf("paths %d and %d are not component-disjoint", i, j)
			}
		}
	}
	if paths[0].Hops() != 8 {
		t.Fatalf("first path %d hops, want 8", paths[0].Hops())
	}
}

func TestSequentialDisjointPathsMeshCorner(t *testing.T) {
	g := topology.NewMesh(8, 8, 300)
	// A corner has degree 2: at most 2 disjoint paths exist.
	paths := SequentialDisjointPaths(g, 0, 63, 3, Constraint{})
	if len(paths) != 2 {
		t.Fatalf("got %d disjoint paths from mesh corner, want 2", len(paths))
	}
}

func TestSequentialDisjointPathsLine(t *testing.T) {
	g := topology.NewLine(4, 10)
	paths := SequentialDisjointPaths(g, 0, 3, 2, Constraint{})
	if len(paths) != 1 {
		t.Fatalf("line should admit exactly 1 path, got %d", len(paths))
	}
}

func TestMaxDisjointPathsBeatsGreedyOnTrap(t *testing.T) {
	// Classic trap: greedy takes the short middle path, blocking both
	// remaining routes; flow finds two disjoint paths.
	//
	//     1   2
	//   /  \ /  \
	//  0    X    5      built explicitly below
	//   \  / \  /
	//     3   4
	g := topology.NewGraph("trap", 6)
	duplex := func(a, b topology.NodeID) {
		if _, err := g.AddLink(a, b, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddLink(b, a, 10); err != nil {
			t.Fatal(err)
		}
	}
	duplex(0, 1)
	duplex(1, 4) // the trap diagonal: 0-1-4-5 is the unique shortest path
	duplex(4, 5)
	duplex(0, 3)
	duplex(3, 4)
	duplex(1, 2)
	duplex(2, 5)
	// Shortest is 0-1-4-5 (3 hops). Greedy takes it, then 0-3-?-5 dead-ends
	// (3-4 blocked at node 4) => only 1 path.
	greedy := SequentialDisjointPaths(g, 0, 5, 2, Constraint{})
	if len(greedy) != 1 {
		t.Fatalf("greedy found %d paths, expected trap to limit it to 1", len(greedy))
	}
	flow := MaxDisjointPaths(g, 0, 5, 2, Constraint{})
	if len(flow) != 2 {
		t.Fatalf("max-flow found %d paths, want 2", len(flow))
	}
	if !flow[0].ComponentDisjoint(flow[1]) {
		t.Fatal("flow paths are not component-disjoint")
	}
}

func TestMaxDisjointPathsTorus(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	paths := MaxDisjointPaths(g, 0, 36, 4, Constraint{})
	if len(paths) != 4 { // torus is 4-connected
		t.Fatalf("got %d disjoint paths, want 4", len(paths))
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if !paths[i].ComponentDisjoint(paths[j]) {
				t.Fatalf("paths %d,%d are not component-disjoint", i, j)
			}
		}
		if paths[i].Source() != 0 || paths[i].Destination() != 36 {
			t.Fatal("wrong endpoints")
		}
	}
}

func TestMaxDisjointPathsRespectsConstraints(t *testing.T) {
	g := topology.NewTorus(4, 4, 10)
	ban := g.LinkBetween(0, 1)
	c := Constraint{LinkAllowed: func(l topology.LinkID) bool { return l != ban }}
	for _, p := range MaxDisjointPaths(g, 0, 5, 4, c) {
		if p.ContainsLink(ban) {
			t.Fatal("path uses banned link")
		}
	}
}

func TestMinCostPath(t *testing.T) {
	g := topology.NewRing(5, 10)
	// Penalize the clockwise 0->1 link heavily: 0->1 should go around.
	heavy := g.LinkBetween(0, 1)
	w := func(l topology.LinkID) float64 {
		if l == heavy {
			return 100
		}
		return 1
	}
	p, ok := MinCostPath(g, 0, 1, Constraint{}, w)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 4 {
		t.Fatalf("hops = %d, want 4 (around the ring)", p.Hops())
	}
	// With a hop bound the heavy link is the only choice.
	p, ok = MinCostPath(g, 0, 1, Constraint{MaxHops: 2}, w)
	if !ok || p.Hops() != 1 {
		t.Fatalf("bounded min-cost path wrong: ok=%v", ok)
	}
}

func TestMinCostPathNilWeight(t *testing.T) {
	g := topology.NewRing(5, 10)
	if _, ok := MinCostPath(g, 0, 1, Constraint{}, nil); ok {
		t.Fatal("nil weight should fail")
	}
}

func TestExclusion(t *testing.T) {
	g := topology.NewMesh(3, 3, 10)
	p, _ := topology.PathBetween(g, []topology.NodeID{0, 1, 2})
	e := NewExclusion()
	e.AddPath(p)
	if !e.LinkExcluded(g.LinkBetween(0, 1)) || !e.LinkExcluded(g.LinkBetween(1, 2)) {
		t.Fatal("path links not excluded")
	}
	if e.LinkExcluded(g.LinkBetween(1, 0)) {
		t.Fatal("reverse link wrongly excluded: simplex links are distinct components")
	}
	if !e.NodeExcluded(1) {
		t.Fatal("interior node not excluded")
	}
	if e.NodeExcluded(0) || e.NodeExcluded(2) {
		t.Fatal("end nodes wrongly excluded")
	}
}

func BenchmarkShortestPathTorus(b *testing.B) {
	g := topology.NewTorus(8, 8, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ShortestPath(g, 0, 36, Constraint{}); !ok {
			b.Fatal("no path")
		}
	}
}

func BenchmarkMaxDisjointPathsTorus(b *testing.B) {
	g := topology.NewTorus(8, 8, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := MaxDisjointPaths(g, 0, 36, 4, Constraint{}); len(got) != 4 {
			b.Fatal("wrong path count")
		}
	}
}
