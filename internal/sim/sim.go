// Package sim is a deterministic discrete-event simulation engine. It drives
// the protocol-level BCP experiments: control-message transmission over the
// RCC network, failure detection, rejoin timers, and data transfer.
//
// Events scheduled at equal times fire in scheduling order (FIFO), so runs
// are reproducible for a given seed.
//
// The event queue is an index-based 4-ary min-heap over a pooled,
// generation-stamped timer arena: Schedule/At hand out value handles rather
// than boxed pointers, cancellation removes the slot from the heap in
// O(log n) via its stored heap position (no lazy-deletion garbage
// accumulating in long rejoin-heavy runs), and freed slots are recycled
// through a free list, so steady-state scheduling performs zero allocations.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for callers' convenience; simulated
// durations use the same unit (nanoseconds).
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return Duration(t).String() }

// TimerHost is the issuing runtime's side of a Timer handle: the three
// queries a handle needs against the arena slot it names. *Engine implements
// it for simulated time; internal/realtime implements it over a wall-clock
// heap with the same generation-stamp semantics, so protocol code holds one
// Timer type regardless of which runtime issued it.
type TimerHost interface {
	// StopTimer cancels the (idx, gen) slot if that generation is still
	// pending, reporting whether the cancellation prevented the fire.
	StopTimer(idx int32, gen uint32) bool
	// TimerActive reports whether the (idx, gen) slot is still pending.
	TimerActive(idx int32, gen uint32) bool
	// TimerFired reports how the (idx, gen) slot's generation ended; exact
	// until the host reuses the slot a second time.
	TimerFired(idx int32, gen uint32) bool
}

// Timer is a handle to a scheduled event: an arena slot index plus the
// generation stamp the slot carried when the event was scheduled. The zero
// Timer is inactive; handles are values and may be copied freely. A Timer
// may be stopped before it fires; stopping a fired or already-stopped timer
// is a no-op.
type Timer struct {
	host TimerHost
	idx  int32
	gen  uint32
	at   Time
}

// MakeTimer builds a handle for a sibling TimerHost implementation (the
// wall-clock runtime). Simulation code never needs it: Engine issues its own
// handles.
func MakeTimer(h TimerHost, idx int32, gen uint32, at Time) Timer {
	return Timer{host: h, idx: idx, gen: gen, at: at}
}

// timerSlot is one arena entry. gen is bumped every time the slot is
// released (fire or stop), invalidating all outstanding handles to the
// retired generation; prevFired records how that generation ended so a
// just-retired handle can still answer Fired exactly.
type timerSlot struct {
	at        Time
	seq       uint64
	fn        func()
	gen       uint32
	pos       int32 // index in Engine.heap; -1 when not queued
	prevFired bool
}

// Stop cancels the timer, unlinking it from the event heap in O(log n). It
// reports whether the cancellation prevented the event from firing.
func (t Timer) Stop() bool {
	if t.host == nil {
		return false
	}
	return t.host.StopTimer(t.idx, t.gen)
}

// Fired reports whether the timer's event has run. The answer is exact
// while the timer is pending and until the engine reuses its arena slot a
// second time; after that it reports the slot's most recently recorded
// outcome (no protocol code holds handles that long — rejoin timers are
// either stopped or queried before re-arming).
func (t Timer) Fired() bool {
	if t.host == nil {
		return false
	}
	return t.host.TimerFired(t.idx, t.gen)
}

// Active reports whether the timer is still pending: scheduled, not fired,
// and not stopped. The zero Timer is inactive.
func (t Timer) Active() bool {
	return t.host != nil && t.host.TimerActive(t.idx, t.gen)
}

// When returns the scheduled firing time.
func (t Timer) When() Time { return t.at }

// Engine is the simulation executive. It is not safe for concurrent use:
// the simulated world is single-threaded by design, which keeps protocol
// traces reproducible.
type Engine struct {
	now       Time
	slots     []timerSlot
	free      []int32 // recycled arena slots
	heap      []int32 // 4-ary min-heap of slot indices, ordered by (at, seq)
	seq       uint64
	rng       *rand.Rand
	processed uint64
}

// New creates an engine whose random source is seeded deterministically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled. Stopped timers
// leave the queue immediately, so the count is exact.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn after delay d. A negative delay panics: the simulated
// world cannot rewrite its past.
func (e *Engine) Schedule(d Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, timerSlot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	e.seq++
	s.pos = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	e.siftUp(int(s.pos))
	return Timer{host: e, idx: idx, gen: s.gen, at: t}
}

// ScheduleBatch schedules every function in fns to run after delay d,
// appending one handle per function to out (whose capacity is reused) and
// returning it. The batch behaves exactly like len(fns) sequential Schedule
// calls — same deadlines, same FIFO order among the batch and against
// everything else in the queue — but the heap is restored once per batch:
// small batches sift each new slot up individually, while a batch that
// rivals the standing population re-heapifies bottom-up in O(n). Recovery
// storms arm their per-channel rejoin timers through this path.
func (e *Engine) ScheduleBatch(d Duration, fns []func(), out []Timer) []Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t := e.now.Add(d)
	start := len(e.heap)
	for _, fn := range fns {
		if fn == nil {
			panic("sim: nil event function")
		}
		var idx int32
		if n := len(e.free); n > 0 {
			idx = e.free[n-1]
			e.free = e.free[:n-1]
		} else {
			e.slots = append(e.slots, timerSlot{})
			idx = int32(len(e.slots) - 1)
		}
		s := &e.slots[idx]
		s.at = t
		s.seq = e.seq
		s.fn = fn
		e.seq++
		s.pos = int32(len(e.heap))
		e.heap = append(e.heap, idx)
		out = append(out, Timer{host: e, idx: idx, gen: s.gen, at: t})
	}
	e.restoreSuffix(start)
	return out
}

// restoreSuffix restores the heap property after new entries were appended
// at positions [start, len). Per-item sift-up costs O(k log n); when the
// batch rivals the standing population a bottom-up heapify is O(n) total
// and wins. Either strategy yields the same (at, seq) firing order.
func (e *Engine) restoreSuffix(start int) {
	n := len(e.heap)
	k := n - start
	if k == 0 {
		return
	}
	if k*4 < n || n < 8 {
		for i := start; i < n; i++ {
			e.siftUp(i)
		}
		return
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}

// StopTimer implements TimerHost: it cancels the (idx, gen) slot if that
// generation is still pending, unlinking it from the heap in O(log n).
func (e *Engine) StopTimer(idx int32, gen uint32) bool {
	s := &e.slots[idx]
	if s.gen != gen {
		return false // already fired or stopped
	}
	e.removeAt(int(s.pos))
	e.release(idx, false)
	return true
}

// TimerActive implements TimerHost.
func (e *Engine) TimerActive(idx int32, gen uint32) bool {
	return e.slots[idx].gen == gen
}

// TimerFired implements TimerHost.
func (e *Engine) TimerFired(idx int32, gen uint32) bool {
	s := &e.slots[idx]
	if s.gen == gen {
		return false // still pending
	}
	return s.prevFired
}

// release retires slot idx's current generation (recording how it ended)
// and returns the slot to the free list.
func (e *Engine) release(idx int32, fired bool) {
	s := &e.slots[idx]
	s.fn = nil
	s.pos = -1
	s.prevFired = fired
	s.gen++
	e.free = append(e.free, idx)
}

// less orders heap entries by firing time, then scheduling order (FIFO for
// equal deadlines).
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// siftUp restores the heap property from position i toward the root,
// keeping each slot's stored heap position current.
func (e *Engine) siftUp(i int) {
	item := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := e.heap[parent]
		if !e.less(item, p) {
			break
		}
		e.heap[i] = p
		e.slots[p].pos = int32(i)
		i = parent
	}
	e.heap[i] = item
	e.slots[item].pos = int32(i)
}

// siftDown restores the heap property from position i toward the leaves.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	item := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], item) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slots[e.heap[i]].pos = int32(i)
		i = best
	}
	e.heap[i] = item
	e.slots[item].pos = int32(i)
}

// removeAt unlinks the heap entry at position i in O(log n).
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	e.heap[i] = last
	e.slots[last].pos = int32(i)
	// The moved entry may need to travel either direction.
	e.siftDown(i)
	e.siftUp(int(e.slots[last].pos))
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed (false when the queue is empty).
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	s := &e.slots[idx]
	e.now = s.at
	fn := s.fn
	e.removeAt(0)
	// Release before running fn: the event may reschedule into this slot,
	// and any handle to the fired generation must already read as dead.
	e.release(idx, true)
	e.processed++
	fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with firing times <= t, then advances the clock
// to exactly t.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for the next d of simulated time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
