package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimultaneousActivationDisjoint(t *testing.T) {
	// sc=0: S = P(Mi fails)·P(Mj fails) ≈ ci·cj·λ² — second order.
	lambda := 1e-4
	s := SimultaneousActivation(lambda, 7, 9, 0)
	want := (1 - math.Pow(1-lambda, 7)) * (1 - math.Pow(1-lambda, 9))
	if !almost(s, want, 1e-15) {
		t.Fatalf("S = %g, want %g", s, want)
	}
	if s > 1e-6 {
		t.Fatalf("disjoint S should be second-order small, got %g", s)
	}
}

func TestSimultaneousActivationLinearInShared(t *testing.T) {
	// For small λ, S ≈ sc·λ.
	lambda := 1e-4
	for sc := 1; sc <= 5; sc++ {
		s := SimultaneousActivation(lambda, 9, 9, sc)
		if !almost(s, float64(sc)*lambda, float64(sc)*lambda*0.01) {
			t.Fatalf("sc=%d: S=%g, want ≈ %g", sc, s, float64(sc)*lambda)
		}
	}
}

func TestSimultaneousActivationFullOverlap(t *testing.T) {
	// sc = ci = cj: S = P(Mi fails) = 1-(1-λ)^ci.
	lambda := 0.01
	s := SimultaneousActivation(lambda, 5, 5, 5)
	want := 1 - math.Pow(1-lambda, 5)
	if !almost(s, want, 1e-12) {
		t.Fatalf("S = %g, want %g", s, want)
	}
}

func TestSimultaneousActivationProperties(t *testing.T) {
	// Property: S ∈ [0,1], symmetric in (ci,cj), monotone in sc.
	f := func(l uint16, a, b, c uint8) bool {
		lambda := float64(l) / (1 << 17) // [0, 0.5)
		ci := int(a%20) + 1
		cj := int(b%20) + 1
		sc := int(c) % (min(ci, cj) + 1)
		s := SimultaneousActivation(lambda, ci, cj, sc)
		if s < 0 || s > 1 {
			return false
		}
		if !almost(s, SimultaneousActivation(lambda, cj, ci, sc), 1e-12) {
			return false
		}
		if sc > 0 && s+1e-12 < SimultaneousActivation(lambda, ci, cj, sc-1) {
			return false // more sharing must not reduce S
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousActivationPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { SimultaneousActivation(-0.1, 1, 1, 0) },
		func() { SimultaneousActivation(0.1, 1, 1, 2) },
		func() { SimultaneousActivation(0.1, -1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNuForDegree(t *testing.T) {
	lambda := 1e-4
	// mux=α must separate sc<α (multiplexed, S<ν) from sc>=α (not).
	for alpha := 1; alpha <= 8; alpha++ {
		nu := NuForDegree(lambda, alpha)
		for sc := 0; sc <= 10; sc++ {
			s := SimultaneousActivation(lambda, 11, 11, sc)
			multiplexed := s < nu
			if (sc < alpha) != multiplexed {
				t.Fatalf("alpha=%d sc=%d: S=%g nu=%g muxed=%v", alpha, sc, s, nu, multiplexed)
			}
		}
	}
	if NuForDegree(lambda, 0) != 0 {
		t.Fatal("mux=0 must disable multiplexing")
	}
}

func TestMuxFailureBound(t *testing.T) {
	if got := MuxFailureBound(0.5, nil); got != 0 {
		t.Fatalf("empty bound = %g", got)
	}
	// One link, one multiplexed peer: bound = ν.
	if got := MuxFailureBound(0.001, []int{1}); !almost(got, 0.001, 1e-12) {
		t.Fatalf("bound = %g, want 0.001", got)
	}
	// Clamped at 1.
	if got := MuxFailureBound(0.9, []int{10, 10, 10}); got != 1 {
		t.Fatalf("bound = %g, want 1", got)
	}
	// Additivity across links at first order.
	got := MuxFailureBound(1e-4, []int{2, 3})
	want := (1 - math.Pow(1-1e-4, 2)) + (1 - math.Pow(1-1e-4, 3))
	if !almost(got, want, 1e-12) {
		t.Fatalf("bound = %g, want %g", got, want)
	}
}

func TestPrNoBackups(t *testing.T) {
	lambda := 0.01
	if got := Pr(lambda, 7, nil); !almost(got, ChannelSurvival(lambda, 7), 1e-12) {
		t.Fatalf("Pr no backups = %g", got)
	}
}

func TestPrSingleBackupFormula(t *testing.T) {
	lambda := 0.001
	pM := ChannelSurvival(lambda, 7)
	pB := ChannelSurvival(lambda, 9)
	pmux := 0.002
	want := pM + (1-pM)*pB*(1-pmux)
	if got := PrSingleBackup(lambda, 7, 9, pmux); !almost(got, want, 1e-12) {
		t.Fatalf("Pr = %g, want %g", got, want)
	}
}

func TestPrMoreBackupsHigher(t *testing.T) {
	lambda := 0.01
	b := BackupInfo{Components: 9, PMuxFail: 0.01}
	p1 := Pr(lambda, 7, []BackupInfo{b})
	p2 := Pr(lambda, 7, []BackupInfo{b, b})
	p3 := Pr(lambda, 7, []BackupInfo{b, b, b})
	if !(p1 < p2 && p2 < p3 && p3 < 1) {
		t.Fatalf("Pr not increasing with backups: %g %g %g", p1, p2, p3)
	}
}

func TestPrProperties(t *testing.T) {
	// Pr ∈ [P(M ok), 1]; decreasing in PMuxFail.
	f := func(l uint16, cp, cb uint8, mf uint16) bool {
		lambda := float64(l) / (1 << 18)
		pmux := float64(mf) / (1 << 16)
		cPrim := int(cp%15) + 1
		cBack := int(cb%15) + 1
		pr := Pr(lambda, cPrim, []BackupInfo{{Components: cBack, PMuxFail: pmux}})
		low := ChannelSurvival(lambda, cPrim)
		if pr < low-1e-12 || pr > 1+1e-12 {
			return false
		}
		prWorse := Pr(lambda, cPrim, []BackupInfo{{Components: cBack, PMuxFail: math.Min(1, pmux+0.1)}})
		return prWorse <= pr+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
