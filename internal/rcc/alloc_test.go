package rcc

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/wire"
)

// TestPooledRoundTripAllocFree wires two pooled endpoints back-to-back the
// way bcpd does — the send callback hands the marshaled frame to the peer
// and returns it to the pool after delivery — and asserts a full
// submit→frame→deliver→ack round trip costs zero allocations once the
// pools are warm.
func TestPooledRoundTripAllocFree(t *testing.T) {
	eng := sim.New(1)
	pool := &BufferPool{}
	var a, b *Endpoint
	a = NewEndpoint(eng, DefaultParams(), func(data []byte) {
		b.HandleFrame(data)
		pool.Put(data)
	}, func(wire.Control) {})
	b = NewEndpoint(eng, DefaultParams(), func(data []byte) {
		a.HandleFrame(data)
		pool.Put(data)
	}, func(wire.Control) {})
	a.SetBufferPool(pool)
	b.SetBufferPool(pool)

	roundTrip := func() {
		a.Submit(ctrl(1))
		eng.RunFor(sim.Duration(time.Second))
	}
	// Warm every pool on the path: frame buffers, control-slice scratch,
	// decode scratch, timer slots, and the outbound queue.
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(200, roundTrip); avg != 0 {
		t.Errorf("pooled round trip allocates %v allocs/op, want 0", avg)
	}
}
