package core

import (
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// mesh3 returns a 3x3 mesh and a path helper.
//
//	0 1 2
//	3 4 5
//	6 7 8
func mesh3(t *testing.T) (*topology.Graph, func(nodes ...topology.NodeID) topology.Path) {
	t.Helper()
	g := topology.NewMesh(3, 3, 10)
	return g, func(nodes ...topology.NodeID) topology.Path {
		t.Helper()
		p, err := topology.PathBetween(g, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

func newTestManager(g *topology.Graph) *Manager {
	return NewManager(g, DefaultConfig())
}

func spec1() rtchan.TrafficSpec { return rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2} }

func TestSingleBackupSparesOwnBandwidth(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(),
		path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)},
		[]int{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range conn.Backups[0].Path.Links() {
		if got := m.plan.net.Spare(l); got != 1 {
			t.Fatalf("spare on backup link %d = %g, want 1", l, got)
		}
	}
	for _, l := range conn.Primary.Path.Links() {
		if got := m.plan.net.Dedicated(l); got != 1 {
			t.Fatalf("dedicated on primary link %d = %g, want 1", l, got)
		}
		if got := m.plan.net.Spare(l); got != 0 {
			t.Fatalf("spare on primary link %d = %g, want 0", l, got)
		}
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointPrimariesMultiplex(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	// Two connections with disjoint primaries whose backups share links
	// 3->4 and 4->5: at mux=1 they multiplex, so spare = 1, not 2.
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(spec1(), path(6, 7, 8),
		[]topology.Path{path(6, 3, 4, 5, 8)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	shared := g.LinkBetween(3, 4)
	if got := m.plan.net.Spare(shared); got != 1 {
		t.Fatalf("multiplexed spare = %g, want 1", got)
	}
	if got := m.BackupsOnLink(shared); got != 2 {
		t.Fatalf("backups on link = %d", got)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlappingPrimariesDoNotMultiplex(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	// Both primaries traverse link 1->2 (sc=1..3 >= 1), so at mux=1 their
	// backups must not share spare bandwidth.
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(spec1(), path(1, 2, 5),
		[]topology.Path{path(1, 4, 5)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	shared := g.LinkBetween(4, 5)
	if got := m.plan.net.Spare(shared); got != 2 {
		t.Fatalf("non-multiplexed spare = %g, want 2", got)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMuxDegreeSeparatesLinkSharing(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	// p1 = 0->1->2, p2 = 1->2->5 share link 1->2 and nodes 1, 2 => sc = 3.
	// At mux=4 (share < 4) the second backup multiplexes with the first;
	// at mux<=3 it would not.
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(spec1(), path(1, 2, 5),
		[]topology.Path{path(1, 4, 5)}, []int{4}); err != nil {
		t.Fatal(err)
	}
	shared := g.LinkBetween(4, 5)
	// Π is restricted to peers with no greater degree: the mux=1 backup
	// ignores the mux=4 peer (req=1), and the mux=4 backup sees S=3λ below
	// its ν=3.5λ so it multiplexes (req=1). Spare = max(1,1) = 1.
	if got := m.plan.net.Spare(shared); got != 1 {
		t.Fatalf("spare = %g, want 1", got)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same geometry at mux=3 on the second backup: sc=3 >= 3, so no
	// sharing; the second link's spare must hold both.
	m2 := newTestManager(g)
	if _, err := m2.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.EstablishOnPaths(spec1(), path(1, 2, 5),
		[]topology.Path{path(1, 4, 5)}, []int{3}); err != nil {
		t.Fatal(err)
	}
	if got := m2.plan.net.Spare(shared); got != 2 {
		t.Fatalf("mux=3 spare = %g, want 2", got)
	}
}

func TestMuxZeroDisablesSharing(t *testing.T) {
	g, _ := mesh3(t)
	m := newTestManager(g)
	for i := 0; i < 2; i++ {
		srcs := [][]topology.NodeID{{0, 1, 2}, {6, 7, 8}}
		backs := [][]topology.NodeID{{0, 3, 4, 5, 2}, {6, 3, 4, 5, 8}}
		if _, err := m.EstablishOnPaths(spec1(),
			mustPathT(t, g, srcs[i]), []topology.Path{mustPathT(t, g, backs[i])}, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	shared := g.LinkBetween(3, 4)
	if got := m.plan.net.Spare(shared); got != 2 {
		t.Fatalf("mux=0 spare = %g, want 2 (no sharing)", got)
	}
}

func mustPathT(t *testing.T, g *topology.Graph, nodes []topology.NodeID) topology.Path {
	t.Helper()
	p, err := topology.PathBetween(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSameConnectionBackupsNeverShare(t *testing.T) {
	// Two backups of the same connection meeting on a link must not share
	// spare bandwidth even at a huge multiplexing degree. Build a graph
	// where this can happen: diamond with a shared tail.
	g := topology.NewGraph("tail", 6)
	duplex := func(a, b topology.NodeID) {
		if _, err := g.AddLink(a, b, 10); err != nil {
			panic(err)
		}
		if _, err := g.AddLink(b, a, 10); err != nil {
			panic(err)
		}
	}
	duplex(0, 1) // primary
	duplex(0, 2)
	duplex(2, 1)
	duplex(0, 3)
	duplex(3, 1)
	m := newTestManager(g)
	p := topology.MustPath(g, []topology.LinkID{g.LinkBetween(0, 1)})
	b1 := mustPathT(t, g, []topology.NodeID{0, 2, 1})
	b2 := mustPathT(t, g, []topology.NodeID{0, 3, 1})
	conn, err := m.EstablishOnPaths(spec1(), p, []topology.Path{b1, b2}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	_ = conn
	// The two backups share no links here (disjoint), so instead check the
	// engine rule directly with entries colocated by hand: place a third
	// connection whose backup shares link 0->2 and whose primary is
	// disjoint; then spare on 0->2 must be 1 (multiplexed with b1) while
	// same-conn sharing is denied by construction in mutualExclusion.
	a := &muxEntry{conn: conn, nu: 1}
	b := &muxEntry{conn: conn, nu: 1}
	x, y := m.mutualExclusion(a, b)
	if !x || !y {
		t.Fatal("same-connection backups must be mutually non-multiplexable")
	}
}

func TestTeardownRestoresSpare(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	c1, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.EstablishOnPaths(spec1(), path(1, 2, 5),
		[]topology.Path{path(1, 4, 5)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	shared := g.LinkBetween(4, 5)
	if got := m.plan.net.Spare(shared); got != 2 {
		t.Fatalf("spare = %g, want 2", got)
	}
	if err := m.Teardown(c1.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.plan.net.Spare(shared); got != 1 {
		t.Fatalf("spare after teardown = %g, want 1", got)
	}
	if err := m.Teardown(c2.ID); err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Links() {
		if m.plan.net.Spare(l.ID) != 0 || m.plan.net.Dedicated(l.ID) != 0 {
			t.Fatalf("link %d not clean after teardown", l.ID)
		}
	}
	if m.NumConnections() != 0 {
		t.Fatal("connections remain")
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpareAdmissionRejectsOvercommit(t *testing.T) {
	// Capacity 2: one primary (1) + one unmultiplexed backup (1) fills the
	// link; a second conflicting backup must be rejected.
	g := topology.NewGraph("tight", 4)
	duplex := func(a, b topology.NodeID, cap float64) {
		if _, err := g.AddLink(a, b, cap); err != nil {
			panic(err)
		}
		if _, err := g.AddLink(b, a, cap); err != nil {
			panic(err)
		}
	}
	duplex(0, 1, 10)
	duplex(1, 2, 10)
	duplex(0, 3, 2) // tight link
	duplex(3, 2, 10)
	m := newTestManager(g)
	// conn A: primary 0->1->2, backup 0->3->2 (spare 1 on 0->3).
	pA := mustPathT(t, g, []topology.NodeID{0, 1, 2})
	bA := mustPathT(t, g, []topology.NodeID{0, 3, 2})
	if _, err := m.EstablishOnPaths(spec1(), pA, []topology.Path{bA}, []int{1}); err != nil {
		t.Fatal(err)
	}
	// conn B: primary also 0->1->2 (shares components with A's primary =>
	// no multiplexing at mux=1), backup 0->3->2: needs spare 2 > free 1 on
	// the tight link after B's... capacity 2, dedicated 0, spare needed 2:
	// fits exactly. Use bandwidth 1.5 to overflow: spare would need 2.5.
	spec := rtchan.TrafficSpec{Bandwidth: 1.5, SlackHops: 2}
	if _, err := m.EstablishOnPaths(spec, pA, []topology.Path{bA}, []int{1}); err == nil {
		t.Fatal("overcommitting backup accepted")
	}
	// State must be fully rolled back.
	if got := m.plan.net.Spare(g.LinkBetween(0, 3)); got != 1 {
		t.Fatalf("rollback left spare %g, want 1", got)
	}
	if m.NumConnections() != 1 {
		t.Fatalf("rollback left %d connections", m.NumConnections())
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPsiSizes(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	c1, _ := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	// Disjoint primary => multiplexed with c1's backup on shared links.
	c2, err := m.EstablishOnPaths(spec1(), path(6, 7, 8),
		[]topology.Path{path(6, 3, 4, 5, 8)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	psi := m.PsiSizes(c2.Backups[0])
	// Backup path 6->3->4->5->8: links (6,3),(3,4),(4,5),(5,8).
	// Shared with c1's backup: (3,4),(4,5) => Ψ = 1 there, 0 elsewhere.
	want := []int{0, 1, 1, 0}
	for i := range want {
		if psi[i] != want[i] {
			t.Fatalf("psi = %v, want %v", psi, want)
		}
	}
	psi1 := m.PsiSizes(c1.Backups[0])
	// c1 backup: (0,3),(3,4),(4,5),(5,2) => Ψ = 0,1,1,0.
	for i, w := range []int{0, 1, 1, 0} {
		if psi1[i] != w {
			t.Fatalf("psi1 = %v", psi1)
		}
	}
}
