// Videoconference: the motivating scenario from the paper's introduction.
// A multi-party conference mixes criticality levels: the keynote feed must
// survive any single component failure, regional feeds tolerate a little
// more risk, and preview streams are best-effort-ish. Per-connection
// fault-tolerance control (§3) expresses exactly this with multiplexing
// degrees, and the second negotiation scheme (§3.4) meets an explicit
// reliability target.
package main

import (
	"fmt"
	"log"

	"github.com/rtcl/bcp"
)

func main() {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())

	hub := bcp.NodeID(27) // the conference bridge

	// The keynote: 16 Mbps video, negotiated to five nines with at most
	// two backups and multiplexing degree capped at 2 (its spare bandwidth
	// is shared only with backups whose primaries overlap in at most one
	// node — effectively dedicated protection).
	spec := bcp.DefaultSpec()
	spec.Bandwidth = 16
	keynote, err := mgr.EstablishWithPr(3, hub, spec, 0.99999, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keynote %d->%d: %d backup(s) at degrees %v, Pr=%.7f\n",
		keynote.Src, keynote.Dst, len(keynote.Backups), keynote.Degrees, mgr.ConnectionPr(keynote))

	// Regional feeds: 4 Mbps, one backup, moderate multiplexing.
	spec.Bandwidth = 4
	var regional []*bcp.DConnection
	for _, src := range []bcp.NodeID{7, 56, 63, 0} {
		conn, err := mgr.Establish(src, hub, spec, []int{3})
		if err != nil {
			log.Fatal(err)
		}
		regional = append(regional, conn)
		fmt.Printf("regional %2d->%d: Pr=%.7f (mux=3)\n", src, hub, mgr.ConnectionPr(conn))
	}

	// Preview thumbnails: 1 Mbps, aggressive multiplexing (cheap spare).
	spec.Bandwidth = 1
	var previews []*bcp.DConnection
	for src := bcp.NodeID(8); src < 24; src++ {
		if src == hub {
			continue
		}
		conn, err := mgr.Establish(src, hub, spec, []int{6})
		if err != nil {
			log.Fatal(err)
		}
		previews = append(previews, conn)
	}
	fmt.Printf("previews: %d connections at mux=6, Pr≈%.7f\n",
		len(previews), mgr.ConnectionPr(previews[0]))

	fmt.Printf("\nnetwork load %.2f%%, spare bandwidth %.2f%%\n\n",
		mgr.Network().NetworkLoad()*100, mgr.Network().SpareFraction()*100)

	// Knock out every node one at a time (except end nodes of the keynote)
	// and check who survives with fast recovery. Priority activation gives
	// critical feeds first claim on spare bandwidth.
	keynoteOK, regionalFail, previewFail := true, 0, 0
	trials := 0
	for v := 0; v < g.NumNodes(); v++ {
		node := bcp.NodeID(v)
		if node == keynote.Src || node == hub {
			continue
		}
		stats := mgr.Trial(bcp.SingleNode(node), bcp.OrderByPriority, nil)
		trials++
		for alpha, d := range stats.ByDegree {
			failed := d.FailedPrimaries - d.FastRecovered
			switch {
			case alpha <= 2 && failed > 0:
				keynoteOK = false
			case alpha == 3:
				regionalFail += failed
			case alpha == 6:
				previewFail += failed
			}
		}
	}
	fmt.Printf("injected %d single-node failures:\n", trials)
	fmt.Printf("  keynote recovered fast every time: %v\n", keynoteOK)
	fmt.Printf("  regional slow recoveries: %d\n", regionalFail)
	fmt.Printf("  preview  slow recoveries: %d (acceptable: they are cheap)\n", previewFail)
}
