package experiment

import (
	"testing"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// TestParallelSweepMatchesSerial runs a full Table 1 column serially and
// with a worker pool; the rendered table must be byte-identical — the pool
// only changes who executes a trial, never the trial set, its inputs, or
// the fold order.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	opts := DefaultOptions()
	opts.Seed = 42
	opts.DoubleNodeSample = 64

	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 4

	want := RunTable1(Torus8x8, 1, []int{3}, serial).Render()
	got := RunTable1(Torus8x8, 1, []int{3}, parallel).Render()
	if want != got {
		t.Fatalf("parallel table differs from serial:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestParallelSweepSmall exercises the worker pool on a small network in
// short mode, so `go test -race` covers the fan-out/fold machinery cheaply.
// One manager is established once and shared: the pool workers trial over
// its plan through per-worker views.
func TestParallelSweepSmall(t *testing.T) {
	g := topology.NewMesh(4, 4, 50)
	m := core.NewManager(g, core.DefaultConfig())
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				_, _ = m.Establish(topology.NodeID(s), topology.NodeID(d),
					rtchan.DefaultSpec(), []int{3})
			}
		}
	}
	sets := [][]core.Failure{
		AllSingleLinkFailures(g),
		AllSingleNodeFailures(g),
	}

	serial := sweepMany(m, sets, Options{Workers: 1})
	pooled := sweepMany(m, sets, Options{Workers: 4})
	for i := range sets {
		if !sweepResultsEqual(serial[i], pooled[i]) {
			t.Fatalf("set %d: serial %+v != parallel %+v", i, serial[i], pooled[i])
		}
	}
	if pooled[0].Trials != len(sets[0]) || pooled[1].Trials != len(sets[1]) {
		t.Fatalf("trial counts wrong: %d/%d", pooled[0].Trials, pooled[1].Trials)
	}
}

// TestParallelRandomOrderMatchesSerial verifies that OrderRandom sweeps use
// the pool and still reproduce the serial result: each trial's shuffle rng
// is derived from (Seed, trial index), so the schedule cannot leak into the
// tables. Two different pool widths must agree with the serial sweep and
// with each other.
func TestParallelRandomOrderMatchesSerial(t *testing.T) {
	g := topology.NewMesh(3, 3, 20)
	m := core.NewManager(g, core.DefaultConfig())
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s != d {
				_, _ = m.Establish(topology.NodeID(s), topology.NodeID(d), rtchan.DefaultSpec(), []int{3})
			}
		}
	}
	sets := [][]core.Failure{AllSingleLinkFailures(g)}
	opts := Options{Order: core.OrderRandom, Seed: 7}
	want := Sweep(m, sets[0], opts)
	for _, workers := range []int{2, 8} {
		o := opts
		o.Workers = workers
		pooled := sweepMany(m, sets, o)
		if !sweepResultsEqual(pooled[0], want) {
			t.Fatalf("OrderRandom pool (workers=%d) result %+v != serial %+v", workers, pooled[0], want)
		}
	}
	// A different seed must change the shuffle streams (sanity check that
	// the per-trial derivation actually feeds Trial).
	reseeded := Sweep(m, sets[0], Options{Order: core.OrderRandom, Seed: 8})
	if reseeded.Trials != want.Trials {
		t.Fatalf("reseeded sweep ran %d trials, want %d", reseeded.Trials, want.Trials)
	}
}

// sweepResultsEqual compares results field-by-field (SweepResult holds a
// map, so == is not available).
func sweepResultsEqual(a, b SweepResult) bool {
	if a.Trials != b.Trials || a.RFast != b.RFast ||
		a.MeanFailedPrimaries != b.MeanFailedPrimaries ||
		a.MeanFailedBackups != b.MeanFailedBackups ||
		a.MeanMuxFailed != b.MeanMuxFailed ||
		a.MeanBackupDead != b.MeanBackupDead ||
		a.TotalFailedPrimaries != b.TotalFailedPrimaries ||
		len(a.ByDegree) != len(b.ByDegree) {
		return false
	}
	for k, v := range a.ByDegree {
		if bv, ok := b.ByDegree[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TestEstablishAllPairsParallelMatchesSequential establishes the paper's
// workload sequentially and through the batch pipeline on identical fresh
// networks: counts and the full reservation state must coincide (the deep
// bit-identity property is covered by core's batch tests; this pins the
// experiment-layer request generation to the sequential pair order).
func TestEstablishAllPairsParallelMatchesSequential(t *testing.T) {
	build := func() *core.Manager {
		// A tight 6x6 torus so the workload includes rejections.
		return core.NewManager(topology.NewTorus(6, 6, 40), core.DefaultConfig())
	}
	degrees := UniformDegrees(1, 3)
	seq := build()
	wantEst, wantRej := EstablishAllPairs(seq, degrees)
	if wantEst == 0 || wantRej == 0 {
		t.Fatalf("workload not discriminating: est=%d rej=%d", wantEst, wantRej)
	}
	for _, workers := range []int{2, 4} {
		par := build()
		gotEst, gotRej := EstablishAllPairsParallel(par, degrees, workers)
		if gotEst != wantEst || gotRej != wantRej {
			t.Fatalf("workers=%d: est/rej %d/%d, want %d/%d", workers, gotEst, gotRej, wantEst, wantRej)
		}
		g := seq.Graph()
		for _, l := range g.Links() {
			if seq.Network().Free(l.ID) != par.Network().Free(l.ID) {
				t.Fatalf("workers=%d: link %d free %g != %g",
					workers, l.ID, par.Network().Free(l.ID), seq.Network().Free(l.ID))
			}
		}
		if s, p := seq.Network().SpareFraction(), par.Network().SpareFraction(); s != p {
			t.Fatalf("workers=%d: spare fraction %g != %g", workers, p, s)
		}
	}
	// The zero-worker path must fall back to the plain sequential loop.
	fall := build()
	gotEst, gotRej := EstablishAllPairsParallel(fall, degrees, 0)
	if gotEst != wantEst || gotRej != wantRej {
		t.Fatalf("fallback: est/rej %d/%d, want %d/%d", gotEst, gotRej, wantEst, wantRej)
	}
}
