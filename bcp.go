package bcp

import (
	"math/rand"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/chaos"
	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/experiment"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/realtime"
	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/runtime"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
	"github.com/rtcl/bcp/internal/workload"
)

// --- Topology ----------------------------------------------------------

// Core identifier and graph types.
type (
	// NodeID identifies a node.
	NodeID = topology.NodeID
	// LinkID identifies a simplex link.
	LinkID = topology.LinkID
	// Graph is an immutable network topology.
	Graph = topology.Graph
	// Path is a directed path through a Graph.
	Path = topology.Path
)

// Topology generators.
var (
	// NewTorus builds a wrapped mesh — the paper's main evaluation network
	// is NewTorus(8, 8, 200).
	NewTorus = topology.NewTorus
	// NewMesh builds a grid without wraparound — the paper's second
	// network is NewMesh(8, 8, 300).
	NewMesh = topology.NewMesh
	// NewRing builds a bidirectional ring.
	NewRing = topology.NewRing
	// NewLine builds a path graph.
	NewLine = topology.NewLine
	// NewHypercube builds a binary hypercube.
	NewHypercube = topology.NewHypercube
	// NewRandom builds a connected random graph.
	NewRandom = topology.NewRandom
	// PathBetween builds a Path from a node sequence.
	PathBetween = topology.PathBetween
	// ParseTopology reads a graph from the text format (see cmd/bcptopo).
	ParseTopology = topology.Parse
	// FormatTopology writes a graph in the text format.
	FormatTopology = topology.Format
)

// --- Channels and connections ------------------------------------------

type (
	// ConnID identifies a D-connection.
	ConnID = rtchan.ConnID
	// ChannelID identifies a channel.
	ChannelID = rtchan.ChannelID
	// TrafficSpec is a channel's traffic contract.
	TrafficSpec = rtchan.TrafficSpec
	// Channel is an established real-time channel.
	Channel = rtchan.Channel
	// DConnection is a dependable connection: primary + backups.
	DConnection = core.DConnection
	// Config parameterizes a Manager.
	Config = core.Config
	// Manager is the BCP control plane: establishment, backup
	// multiplexing, failure trials, recovery. Its public API is safe for
	// concurrent use: mutators serialize behind a single-writer lock and
	// readers run concurrently (see TrialView for scalable sweeps).
	Manager = core.Manager
	// TrialView is a cheap per-goroutine read view over a Manager's shared
	// network plan: create one per sweep worker with Manager.NewTrialView
	// and call Trial concurrently.
	TrialView = core.TrialView
	// EstablishRequest is one establishment in a batch (the arguments of an
	// Establish call).
	EstablishRequest = core.EstablishRequest
	// BatchOptions configures Manager.EstablishBatch.
	BatchOptions = core.BatchOptions
	// BatchResult reports a batch's per-request outcomes and pipeline
	// statistics.
	BatchResult = core.BatchResult
)

// DefaultSpec returns the paper's homogeneous traffic contract: 1 Mbps,
// delay bound satisfied within 2 hops over shortest.
func DefaultSpec() TrafficSpec { return rtchan.DefaultSpec() }

// DefaultConfig returns the paper's control-plane parameters (λ = 1e-4,
// sequential shortest-path backup routing).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewManager creates a BCP control plane over an empty network.
func NewManager(g *Graph, cfg Config) *Manager { return core.NewManager(g, cfg) }

// Backup routing algorithm selectors.
const (
	// RouteSequential is the paper's sequential shortest-path method.
	RouteSequential = core.RouteSequential
	// RouteMaxFlow finds disjoint paths by unit-capacity max-flow.
	RouteMaxFlow = core.RouteMaxFlow
	// RouteLoadAware weights links by prospective spare growth ([HAN97b]).
	RouteLoadAware = core.RouteLoadAware
)

// --- Failures and recovery ---------------------------------------------

type (
	// Failure is a set of simultaneously failed components.
	Failure = core.Failure
	// RecoveryStats summarizes one failure event.
	RecoveryStats = core.RecoveryStats
	// ActivationOrder selects how simultaneous activations contend.
	ActivationOrder = core.ActivationOrder
)

// Failure constructors.
var (
	// SingleLink fails one simplex link.
	SingleLink = core.SingleLink
	// SingleNode fails one node (and every channel through it).
	SingleNode = core.SingleNode
	// DoubleNode fails two nodes simultaneously.
	DoubleNode = core.DoubleNode
	// NewFailure builds an arbitrary component failure.
	NewFailure = core.NewFailure
)

// Activation orders.
const (
	// OrderByConn processes activations in establishment order.
	OrderByConn = core.OrderByConn
	// OrderByPriority activates smaller multiplexing degrees first (§4.3).
	OrderByPriority = core.OrderByPriority
	// OrderRandom shuffles contention (models unsynchronized arrivals).
	OrderRandom = core.OrderRandom
)

// --- Protocol engine ----------------------------------------------------

type (
	// Engine is the deterministic discrete-event executive.
	Engine = sim.Engine
	// Time is a point in simulated time.
	Time = sim.Time
	// Timer is a handle to a scheduled event (cancelable, recyclable).
	Timer = sim.Timer
	// Protocol is the message-level BCP engine (daemons, RCCs, data).
	Protocol = bcpd.Network
	// ProtocolConfig parameterizes the protocol engine.
	ProtocolConfig = bcpd.Config
	// Scheme selects the channel-switching scheme of Figure 5.
	Scheme = bcpd.Scheme
)

// Channel-switching schemes.
const (
	Scheme1 = bcpd.Scheme1
	Scheme2 = bcpd.Scheme2
	Scheme3 = bcpd.Scheme3
)

// NewEngine creates a simulation engine with a deterministic seed.
func NewEngine(seed int64) *Engine { return sim.New(seed) }

// DefaultProtocolConfig returns protocol timing typical of the paper.
func DefaultProtocolConfig() ProtocolConfig { return bcpd.DefaultConfig() }

// NewProtocol builds the message-level engine over an established manager.
func NewProtocol(eng *Engine, mgr *Manager, cfg ProtocolConfig) *Protocol {
	return bcpd.New(eng, mgr, cfg)
}

// --- Live execution ------------------------------------------------------

type (
	// Runtime is the execution substrate the protocol runs on: a clock,
	// a timer service, and a seeded RNG. sim.Engine satisfies it for
	// deterministic runs; RealtimeRuntime drives the same daemons on the
	// wall clock.
	Runtime = runtime.Runtime
	// RealtimeRuntime executes the protocol in real time: per-node actor
	// goroutines with bounded mailboxes and a monotonic-clock timer heap,
	// every protocol callback serialized on one execution lock.
	RealtimeRuntime = realtime.Runtime
	// Transport carries protocol traffic between daemons: the in-sim
	// zero-copy scheduler, in-memory pipes, or loopback UDP datagrams.
	Transport = bcpd.Transport
	// SimTransport is the deterministic zero-copy in-process transport.
	SimTransport = bcpd.SimTransport
	// PipeTransport carries live traffic over in-memory pipes (loss-free
	// wire; losses only at down links, full pipes, full mailboxes).
	PipeTransport = bcpd.PipeTransport
	// UDPTransport carries live traffic as real loopback datagrams.
	UDPTransport = bcpd.UDPTransport
	// PostFunc enqueues work on a node's actor mailbox; a
	// RealtimeRuntime's Post method has this shape.
	PostFunc = bcpd.PostFunc
)

var (
	// NewRealtimeRuntime creates a wall-clock runtime; call StartActors
	// before building a protocol network on it, and Stop when done.
	NewRealtimeRuntime = realtime.New
	// NewSimTransport creates the deterministic in-process transport.
	NewSimTransport = bcpd.NewSimTransport
	// NewPipeTransport creates an in-memory live transport delivering
	// through a PostFunc.
	NewPipeTransport = bcpd.NewPipeTransport
	// NewUDPTransport creates a loopback-datagram live transport.
	NewUDPTransport = bcpd.NewUDPTransport
)

// NewProtocolOn builds the message-level engine on an explicit runtime and
// transport: sim.Engine + SimTransport is NewProtocol; RealtimeRuntime +
// Pipe/UDPTransport runs the same daemons live. With a live runtime, call
// it (and every later FailLink/StartTraffic/stat read) through
// RealtimeRuntime.Exec so it is serialized with the protocol.
func NewProtocolOn(rt Runtime, tr Transport, mgr *Manager, cfg ProtocolConfig) *Protocol {
	return bcpd.NewOn(rt, tr, mgr, cfg)
}

// --- Observability --------------------------------------------------------

type (
	// TraceEvent is one typed protocol event (failure, report hop, state
	// transition, claim, activation, rejoin, RCC frame...).
	TraceEvent = trace.Event
	// TraceKind discriminates TraceEvents.
	TraceKind = trace.Kind
	// TraceSink receives protocol events; set ProtocolConfig.Sink to tap a
	// run. A nil sink costs nothing.
	TraceSink = trace.Sink
	// TraceRecorder is a TraceSink that buffers events in memory.
	TraceRecorder = trace.Recorder
	// TraceTee fans one event stream out to several sinks.
	TraceTee = trace.Tee
	// ConformanceParams tunes the trace-driven protocol checker.
	ConformanceParams = conformance.Params
	// ConformanceViolation is one invariant breach found in a trace.
	ConformanceViolation = conformance.Violation
	// ConformanceChecker validates an event stream against the Figure-4
	// state machine, claim balance, the Γ recovery bound, and component
	// health; it is itself a streaming TraceSink.
	ConformanceChecker = conformance.Checker
	// ProtocolAggregator folds an event stream into counters and
	// histograms (recovery delay, RCC batching).
	ProtocolAggregator = metrics.ProtocolAggregator
	// TraceScenario parameterizes the canonical single-connection
	// failure-recovery run (cmd/bcptrace, golden tests).
	TraceScenario = experiment.TraceScenario
	// TraceRun is a TraceScenario's recorded outcome.
	TraceRun = experiment.TraceRun
	// ArenaSink is a fixed-capacity TraceSink that batches events through a
	// preallocated arena (flush mode) or keeps the most recent window of
	// them (flight-recorder mode).
	ArenaSink = trace.ArenaSink
	// Storm is the long-lived recovery-storm harness: repeated
	// crash→switch→repair→rejoin cycles against one protocol network.
	Storm = experiment.Storm
	// StormConfig parameterizes NewStorm.
	StormConfig = experiment.StormConfig
	// StormWide is the mass-failure storm harness: each cycle crashes an
	// entire transit node of a heavily loaded network and restores it —
	// the workload the batched dispatch path exists for.
	StormWide = experiment.StormWide
	// StormWideConfig parameterizes NewStormWide.
	StormWideConfig = experiment.StormWideConfig
)

var (
	// NewConformanceChecker builds a streaming checker.
	NewConformanceChecker = conformance.New
	// CheckConformance validates a recorded event stream.
	CheckConformance = conformance.Check
	// NewProtocolAggregator builds an empty counter/histogram aggregator.
	NewProtocolAggregator = metrics.NewProtocolAggregator
	// WriteTraceJSONL / ReadTraceJSONL are the JSONL trace codec used by
	// `bcptrace -json`.
	WriteTraceJSONL = trace.WriteJSONL
	ReadTraceJSONL  = trace.ReadJSONL
	// DefaultTraceScenario / RunTraceScenario run the canonical recovery
	// scenario and return its event stream.
	DefaultTraceScenario = experiment.DefaultTraceScenario
	RunTraceScenario     = experiment.RunTraceScenario
	// NewArenaSink builds a flush-mode arena sink; NewFlightRecorder builds
	// a keep-latest ring over the same arena.
	NewArenaSink      = trace.NewArenaSink
	NewFlightRecorder = trace.NewFlightRecorder
	// NewStorm builds the recovery-storm harness.
	NewStorm = experiment.NewStorm
	// NewStormWide builds the mass-failure storm harness.
	NewStormWide = experiment.NewStormWide
)

// --- Reliability mathematics --------------------------------------------

var (
	// SimultaneousActivation is S(Bi,Bj) of §3.2.
	SimultaneousActivation = reliability.SimultaneousActivation
	// NuForDegree converts the integer degree "mux=α" into the ν threshold.
	NuForDegree = reliability.NuForDegree
	// MuxFailureBound is the P_muxf upper bound of §3.3.
	MuxFailureBound = reliability.MuxFailureBound
	// Pr is the combinatorial D-connection reliability of §3.3.
	Pr = reliability.Pr
)

// DConnModel is the Figure 3(a) Markov reliability model.
type DConnModel = reliability.DConnModel

// BackupInfo describes one backup channel for the Pr computation.
type BackupInfo = reliability.BackupInfo

// --- Routing helpers -----------------------------------------------------

var (
	// Distance returns unconstrained hop distance.
	Distance = routing.Distance
	// ShortestPath finds a constrained shortest path.
	ShortestPath = routing.ShortestPath
	// SequentialDisjointPaths is the paper's disjoint routing method.
	SequentialDisjointPaths = routing.SequentialDisjointPaths
	// MaxDisjointPaths is the flow-based alternative ([WHA90, SID91]).
	MaxDisjointPaths = routing.MaxDisjointPaths
	// NewRouter builds a reusable routing engine for one graph: all
	// searches share its scratch arenas and SPT cache (single-threaded).
	NewRouter = routing.NewRouter
	// NewExclusion builds an empty component-exclusion set.
	NewExclusion = routing.NewExclusion
)

// RoutingConstraint restricts a path search.
type RoutingConstraint = routing.Constraint

// Router is a reusable routing engine; see NewRouter.
type Router = routing.Router

// Exclusion accumulates components to avoid during disjoint routing.
type Exclusion = routing.Exclusion

// --- Workloads ------------------------------------------------------------

type (
	// Request is one connection request of a workload.
	Request = workload.Request
	// HotSpotConfig parameterizes the inhomogeneous workload of §7.1.
	HotSpotConfig = workload.HotSpotConfig
	// DynamicConfig parameterizes Poisson churn.
	DynamicConfig = workload.DynamicConfig
)

var (
	// AllPairs is the paper's static 64·63-connection workload.
	AllPairs = workload.AllPairs
	// HotSpot generates the inhomogeneous workload.
	HotSpot = workload.HotSpot
	// Dynamic generates Poisson churn.
	Dynamic = workload.Dynamic
	// EstablishWorkload applies a static workload to a manager.
	EstablishWorkload = workload.Establish
	// EstablishWorkloadBatch applies a static workload through the
	// speculative batch pipeline — identical results, less wall time.
	EstablishWorkloadBatch = workload.EstablishBatch
	// RunChurn schedules a dynamic workload on an engine.
	RunChurn = workload.RunChurn
)

// --- Experiments ----------------------------------------------------------

// Evaluation network kinds.
const (
	Torus8x8 = experiment.Torus8x8
	Mesh8x8  = experiment.Mesh8x8
)

type (
	// ExperimentOptions controls the evaluation harness.
	ExperimentOptions = experiment.Options
	// Table1Result is a Table 1/3 reproduction.
	Table1Result = experiment.Table1Result
	// Table2Result is a Table 2 reproduction.
	Table2Result = experiment.Table2Result
	// SweepResult aggregates R_fast over a set of failure trials.
	SweepResult = experiment.SweepResult
)

var (
	// DefaultExperimentOptions mirrors the paper's setup.
	DefaultExperimentOptions = experiment.DefaultOptions
	// RunTable1 reproduces Table 1 (R_fast, uniform degrees).
	RunTable1 = experiment.RunTable1
	// RunTable2 reproduces Table 2 (mixed degrees, priority activation).
	RunTable2 = experiment.RunTable2
	// RunTable3 reproduces Table 3 (brute-force multiplexing).
	RunTable3 = experiment.RunTable3
	// RunFigure9 reproduces Figure 9 (spare bandwidth vs load).
	RunFigure9 = experiment.RunFigure9
	// RunFigure3 compares the Markov and combinatorial reliability models.
	RunFigure3 = experiment.RunFigure3
	// RunSection5 validates the recovery-delay bound.
	RunSection5 = experiment.RunSection5
	// RunSchemeComparison compares the three switching schemes.
	RunSchemeComparison = experiment.RunSchemeComparison
	// RunHotspot compares proposed vs brute-force under inhomogeneity.
	RunHotspot = experiment.RunHotspot
	// RunAblation evaluates the design ablations (routing, Π rule).
	RunAblation = experiment.RunAblation
	// RunSeverity sweeps R_fast against simultaneous failure counts.
	RunSeverity = experiment.RunSeverity
	// Sweep evaluates a failure list serially, aggregating R_fast.
	Sweep = experiment.Sweep
	// SweepParallel fans a failure list over a worker pool sharing one
	// network plan (per-worker TrialViews); results are identical to
	// Sweep for every worker count.
	SweepParallel = experiment.SweepParallel
	// EstablishAllPairsParallel establishes the paper's all-pairs workload
	// through the speculative batch pipeline; state is bit-identical to the
	// sequential walk (see RunScalability with Workers > 1).
	EstablishAllPairsParallel = experiment.EstablishAllPairsParallel
	// AllSingleLinkFailures enumerates one trial per simplex link.
	AllSingleLinkFailures = experiment.AllSingleLinkFailures
	// AllSingleNodeFailures enumerates one trial per node.
	AllSingleNodeFailures = experiment.AllSingleNodeFailures
	// AllDoubleNodeFailures enumerates (or samples) node pairs.
	AllDoubleNodeFailures = experiment.AllDoubleNodeFailures
)

// DelayModel parameterizes the analytic delay-bound admission test.
type DelayModel = rtchan.DelayModel

// DefaultDelayModel matches the protocol engine's default timing.
func DefaultDelayModel() DelayModel { return rtchan.DefaultDelayModel() }

// NewRand returns a deterministic random source for tie-breaking and
// workload generation.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// --- Chaos model checking ------------------------------------------------

type (
	// ChaosSpec is one complete, replayable chaos episode: seed, topology,
	// connections, hostile-transport intensities, and fault schedule.
	ChaosSpec = chaos.Spec
	// ChaosOptions parameterizes RunChaos (seed, episode count, schedule
	// classes, shrink budget, artifact directory).
	ChaosOptions = chaos.Options
	// ChaosReport summarizes a model-check run: digests, totals, and the
	// shrunk Failures.
	ChaosReport = chaos.Report
	// ChaosArtifact is the JSON reproducer written for a shrunk failure.
	ChaosArtifact = chaos.Artifact
	// ChaosParams seeds the hostile transport; LinkChaos is one link's
	// fault intensities (drop, dup, corrupt, delay).
	ChaosParams = bcpd.ChaosParams
	LinkChaos   = bcpd.LinkChaos
)

var (
	// RunChaos model-checks N seeded episodes, shrinking any failure to a
	// minimal replayable artifact.
	RunChaos = chaos.Run
	// GenerateChaosSpec derives one episode spec from a seed and a
	// schedule class (ChaosClasses lists them).
	GenerateChaosSpec = chaos.Generate
	// RunChaosEpisode executes a single spec and audits it.
	RunChaosEpisode = chaos.RunEpisode
	// ReplayChaosArtifact re-runs a reproducer exactly.
	ReplayChaosArtifact = chaos.ReplayArtifact
	// ReadChaosArtifact / WriteChaosArtifact are the JSON codec for
	// reproducers.
	ReadChaosArtifact  = chaos.ReadArtifact
	WriteChaosArtifact = chaos.WriteArtifact
	// ChaosClasses lists the fault-schedule classes.
	ChaosClasses = chaos.Classes
	// NewChaosTransport decorates any Transport with seeded loss,
	// duplication, corruption, jitter, and asymmetric partitions.
	NewChaosTransport = bcpd.NewChaosTransport
)
