package trace

// ArenaSink is a Sink backed by one pre-sized arena of fixed-width event
// records. Emit writes into the arena without allocating; what happens at
// the capacity boundary depends on whether a flush function is attached:
//
//   - With an OnFlush callback (NewArenaSink), the arena drains through the
//     callback whenever it fills, and again on an explicit Flush. The
//     callback's slice aliases the arena — consumers copy out anything they
//     keep.
//   - Without one (NewFlightRecorder), the arena wraps: the sink keeps the
//     most recent Cap events, flight-recorder style, and Events reassembles
//     them in emission order.
//
// Like every Sink, an ArenaSink is driven from the single-threaded
// simulation loop and needs no locking.
type ArenaSink struct {
	buf     []Event
	n       int  // valid records (write position when not wrapped)
	wrapped bool // ring mode only: buf is full and n is the oldest record

	onFlush func([]Event)

	total   uint64 // events emitted over the sink's lifetime
	dropped uint64 // ring mode: events overwritten before being read
	flushes uint64 // flush-mode: times onFlush ran
}

// NewArenaSink returns a flush-mode arena holding capacity events. onFlush
// receives the arena's contents each time it fills and on Flush; it must
// not retain the slice. capacity must be positive; onFlush must not be nil
// (use NewFlightRecorder for the wrap-around variant).
func NewArenaSink(capacity int, onFlush func([]Event)) *ArenaSink {
	if capacity <= 0 {
		panic("trace: non-positive arena capacity")
	}
	if onFlush == nil {
		panic("trace: nil flush function (use NewFlightRecorder)")
	}
	return &ArenaSink{buf: make([]Event, capacity), onFlush: onFlush}
}

// NewFlightRecorder returns a ring-mode arena that retains the most recent
// capacity events.
func NewFlightRecorder(capacity int) *ArenaSink {
	if capacity <= 0 {
		panic("trace: non-positive arena capacity")
	}
	return &ArenaSink{buf: make([]Event, capacity)}
}

// Cap returns the arena capacity in events.
func (a *ArenaSink) Cap() int { return len(a.buf) }

// Total returns the number of events emitted over the sink's lifetime.
func (a *ArenaSink) Total() uint64 { return a.total }

// Dropped returns how many events a ring-mode sink has overwritten. Always
// zero in flush mode.
func (a *ArenaSink) Dropped() uint64 { return a.dropped }

// Flushes returns how many times the flush callback has run.
func (a *ArenaSink) Flushes() uint64 { return a.flushes }

// Len returns the number of events currently buffered.
func (a *ArenaSink) Len() int {
	if a.wrapped {
		return len(a.buf)
	}
	return a.n
}

// Emit implements Sink.
func (a *ArenaSink) Emit(ev Event) {
	a.total++
	if a.onFlush != nil {
		a.buf[a.n] = ev
		a.n++
		if a.n == len(a.buf) {
			a.flush()
		}
		return
	}
	// Ring mode.
	if a.wrapped {
		a.dropped++
	}
	a.buf[a.n] = ev
	a.n++
	if a.n == len(a.buf) {
		a.n = 0
		a.wrapped = true
	}
}

func (a *ArenaSink) flush() {
	a.flushes++
	a.onFlush(a.buf[:a.n])
	a.n = 0
}

// Flush drains buffered events through the flush callback (flush mode
// only; a no-op when empty or in ring mode). Call it at the end of a run —
// the flush boundary — so the tail of the trace reaches the consumer.
func (a *ArenaSink) Flush() {
	if a.onFlush == nil || a.n == 0 {
		return
	}
	a.flush()
}

// Events appends the buffered events in emission order to dst and returns
// the result. In flush mode this is the unflushed tail; in ring mode, the
// retained window.
func (a *ArenaSink) Events(dst []Event) []Event {
	if a.wrapped {
		dst = append(dst, a.buf[a.n:]...)
	}
	return append(dst, a.buf[:a.n]...)
}

// Reset discards buffered events (and the wrap state), keeping the arena
// and lifetime counters.
func (a *ArenaSink) Reset() {
	a.n = 0
	a.wrapped = false
}
