package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rtcl/bcp/internal/topology"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for k := Kind(1); int(k) < NumKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, err, k)
		}
	}
	if _, err := ParseKind("no-such-kind"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}

func TestStateStringsRoundTrip(t *testing.T) {
	for _, s := range []State{StateN, StateP, StateB, StateU} {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseState(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if _, err := ParseState("X"); err == nil {
		t.Fatal("ParseState accepted garbage")
	}
}

func TestEmitterNilIsDisabled(t *testing.T) {
	var em Emitter
	if em.Enabled() {
		t.Fatal("zero Emitter is enabled")
	}
	em.Emit(Event{}) // must not panic
	rec := &Recorder{}
	em = NewEmitter(rec)
	if !em.Enabled() {
		t.Fatal("emitter with sink is disabled")
	}
	em.Emit(Event{Kind: KindClaim})
	if len(rec.Events) != 1 || rec.Events[0].Kind != KindClaim {
		t.Fatalf("recorded %v", rec.Events)
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	Tee{a, b}.Emit(Event{Kind: KindDetect})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("tee delivered %d/%d", len(a.Events), len(b.Events))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindInstall, Node: topology.NoNode, Link: topology.NoLink, Conn: 1, Channel: 1, To: StateP, Aux: 8},
		{At: 1000, Kind: KindLinkDown, Node: topology.NoNode, Link: 8},
		{At: 2000, Kind: KindState, Node: 3, Link: topology.NoLink, Conn: 1, Channel: 1, From: StateP, To: StateU},
		{At: 3000, Kind: KindClaim, Node: topology.NoNode, Link: 2, Conn: 1, Channel: 2},
		{At: 4000, Kind: KindRCCRetransmit, Node: 5, Link: 9, Aux: 7},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, wrote %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
	// The encoding must be byte-stable: re-encoding the decoded stream
	// reproduces the file (the golden-trace test depends on this).
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := WriteJSONL(&buf1, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("JSONL encoding is not byte-stable across a round trip")
	}
}

func TestReadJSONLRejectsUnknownKind(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"at":0,"kind":"bogus"}` + "\n")); err == nil {
		t.Fatal("accepted unknown kind")
	}
}
