// Package metrics provides the aggregation and presentation helpers used by
// the experiment harness: averaged recovery statistics across failure
// sweeps, series for figure regeneration, and paper-style table rendering.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Ratio accumulates a numerator/denominator pair across trials.
type Ratio struct {
	Num, Den float64
}

// Add accumulates one observation.
func (r *Ratio) Add(num, den float64) {
	r.Num += num
	r.Den += den
}

// Value returns num/den (1 when the denominator is zero, matching the
// convention that R_fast over zero failed channels is a vacuous success).
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 1
	}
	return r.Num / r.Den
}

// Mean accumulates a running mean.
type Mean struct {
	sum   float64
	count int
}

// Add accumulates one observation.
func (m *Mean) Add(v float64) {
	m.sum += v
	m.count++
}

// Value returns the mean (0 for no observations).
func (m Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Count returns the number of observations.
func (m Mean) Count() int { return m.count }

// Series is a set of (x, y) points for figure regeneration.
type Series struct {
	Name   string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders rows and columns the way the paper's tables print:
// a header row, then one row per metric.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	cells []string
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// AddPercentRow formats each value as a percentage with two decimals,
// printing "N/A" for NaN (the paper's marker for infeasible configurations).
func (t *Table) AddPercentRow(label string, values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = FormatPercent(v)
	}
	t.AddRow(label, cells...)
}

// FormatPercent renders a fraction as the paper prints percentages.
func FormatPercent(v float64) string {
	if v != v { // NaN
		return "N/A"
	}
	return fmt.Sprintf("%.2f%%", v*100)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns)+1)
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for i, c := range r.cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	for i, c := range t.Columns {
		if i == 0 {
			if len(c) > widths[0] {
				widths[0] = len(c)
			}
			continue
		}
		if i < len(widths) && len(c) > widths[i] {
			widths[i] = len(c)
		}
	}
	writeCells := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeCells(t.Columns)
		var rule []string
		for i, w := range widths {
			if i >= len(t.Columns) {
				break
			}
			if w < len(t.Columns[i]) {
				w = len(t.Columns[i])
			}
			rule = append(rule, strings.Repeat("-", w))
		}
		writeCells(rule)
	}
	for _, r := range t.rows {
		writeCells(append([]string{r.label}, r.cells...))
	}
	return b.String()
}

// RenderSeries prints one or more series as aligned columns sharing the X
// axis of the first series (points are matched by index).
func RenderSeries(title string, series ...Series) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(series) == 0 {
		return b.String()
	}
	xl := series[0].XLabel
	if xl == "" {
		xl = "x"
	}
	fmt.Fprintf(&b, "%-12s", xl)
	for _, s := range series {
		fmt.Fprintf(&b, "  %-12s", s.Name)
	}
	b.WriteByte('\n')
	n := len(series[0].X)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-12.4f", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "  %-12.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "  %-12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns the sorted keys of an int-keyed map, for deterministic
// table row order.
func SortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
