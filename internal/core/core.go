// Package core implements the paper's primary contribution: the Backup
// Channel Protocol (BCP) control plane.
//
// A dependable connection (D-connection) is a primary real-time channel plus
// zero or more cold-standby backup channels, routed component-disjointly.
// Spare bandwidth for backups is shared per link by *backup multiplexing*
// (§3.2): two backups may share spare bandwidth when the probability
// S(Bi,Bj) that they need simultaneous activation — bounded by the
// probability of simultaneous failure of their primaries — is below the
// per-connection multiplexing threshold ν.
//
// The Manager provides the transactional view used by the paper's
// evaluation: connection establishment (§3.4), failure trials measuring the
// fast-recovery ratio R_fast (§7.2-7.4), activation with spare-pool claims
// and multiplexing failures, and resource reconfiguration (§4.4). The
// message-level protocol machinery (failure reports, activation messages,
// rejoin, RCC transport) lives in internal/core's protocol files and
// internal/rcc.
package core

import (
	"fmt"
	"math/rand"

	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// BackupRouting selects the algorithm used to route backup channels.
type BackupRouting uint8

const (
	// RouteSequential is the paper's method: each backup takes a shortest
	// feasible path avoiding all components of the connection's earlier
	// channels.
	RouteSequential BackupRouting = iota
	// RouteMaxFlow uses unit-capacity max-flow to find component-disjoint
	// paths, avoiding greedy traps ([WHA90, SID91]).
	RouteMaxFlow
	// RouteLoadAware implements the spare-resource-aware backup routing the
	// authors develop in [HAN97b]: each link is weighted by the growth of
	// its spare pool if the backup crossed it, so backups gravitate toward
	// links where they multiplex well. Reduces total spare bandwidth at the
	// cost of (bounded) longer backup paths.
	RouteLoadAware
)

// Config parameterizes a Manager.
type Config struct {
	// Lambda is the per-component failure probability during one time unit
	// (the paper's λ). It scales every multiplexing threshold.
	Lambda float64

	// TieBreak randomizes shortest-path tie-breaking when non-nil. The
	// paper's tie-breaking is unspecified; randomized tie-breaking spreads
	// load across a symmetric topology the way the reported numbers imply.
	TieBreak *rand.Rand

	// BackupRouting selects the backup path algorithm (default sequential).
	BackupRouting BackupRouting

	// BackupSlackHops bounds each backup path to the shortest feasible
	// disjoint path length plus this slack. Negative means unbounded;
	// 0 means shortest-disjoint only. The paper does not state a bound for
	// backups; the default (DefaultBackupSlackHops) mirrors the primary's
	// +2 rule.
	BackupSlackHops int

	// DelayModel parameterizes the analytic end-to-end delay admission test
	// applied to primaries whose TrafficSpec carries a DelayBound. The zero
	// value falls back to rtchan.DefaultDelayModel.
	DelayModel rtchan.DelayModel

	// DisablePiDegreeRestriction turns off the paper's §3.2 refinement that
	// Π(Bi,ℓ) only counts backups with no greater multiplexing degree.
	// With the refinement off, one small-ν backup forces the link's spare
	// pool to cover every conflicting backup — the overestimation the paper
	// warns about. Exposed for the ablation experiment.
	DisablePiDegreeRestriction bool
}

// DefaultBackupSlackHops mirrors the primary channels' +2-hop QoS rule.
const DefaultBackupSlackHops = 2

// DefaultConfig returns the configuration used by the paper's evaluation:
// λ=1e-4 and sequential shortest-path routing.
func DefaultConfig() Config {
	return Config{Lambda: 1e-4, BackupSlackHops: DefaultBackupSlackHops}
}

// DConnection is a dependable connection: a primary channel and its backups.
type DConnection struct {
	ID       rtchan.ConnID
	Src, Dst topology.NodeID
	Spec     rtchan.TrafficSpec

	Primary *rtchan.Channel
	Backups []*rtchan.Channel // in serial (activation) order
	Degrees []int             // multiplexing degree α per backup (paper's "mux=α")
}

// Channels returns the primary followed by the backups.
func (d *DConnection) Channels() []*rtchan.Channel {
	out := make([]*rtchan.Channel, 0, 1+len(d.Backups))
	if d.Primary != nil {
		out = append(out, d.Primary)
	}
	return append(out, d.Backups...)
}

// Manager is the BCP control plane for one network.
//
// A Manager is not safe for concurrent use: mutation methods obviously so,
// and even read-mostly entry points (Trial, CheckMuxInvariants) reuse
// internal scratch buffers and lazily-maintained caches. Concurrent sweeps
// build one Manager per worker (see internal/experiment).
type Manager struct {
	cfg      Config
	net      *rtchan.Network
	conns    map[rtchan.ConnID]*DConnection
	order    []rtchan.ConnID // establishment order, for deterministic iteration
	mux      []linkMux       // one per link
	nextConn rtchan.ConnID
	scache   *sCache      // memoized S(Bi,Bj) per connection pair
	qpowTab  []float64          // (1-λ)^k by k, backing the fast S evaluation
	trial    trialScratch       // reusable failure-trial buffers
	muxDec   muxDecisionScratch // per-addBackup mutualExclusion memo
	// piMarks stamps the primary path of the backup being added, so the
	// admission scan's shared-component counts are array loads (decideMux).
	piMarks topology.PathMarks
	// router owns the routing scratch arenas and the per-source SPT cache;
	// one per manager, matching the one-manager-per-worker concurrency rule.
	router *routing.Router
	// estExcl is the establishment-path exclusion set, reset per use. It is
	// shared by Establish and ReplenishBackups (never live at once); entry
	// points that interleave with Establish keep their own (see pr.go).
	estExcl *routing.Exclusion
}

// NewManager creates a BCP manager over an empty reservation network for g.
func NewManager(g *topology.Graph, cfg Config) *Manager {
	if cfg.Lambda <= 0 || cfg.Lambda >= 1 {
		panic(fmt.Sprintf("core: lambda %g out of (0,1)", cfg.Lambda))
	}
	m := &Manager{
		cfg:      cfg,
		net:      rtchan.NewNetwork(g),
		conns:    make(map[rtchan.ConnID]*DConnection),
		mux:      make([]linkMux, g.NumLinks()),
		nextConn: 1,
		scache:   newSCache(),
		router:   routing.NewRouter(g),
		estExcl:  routing.NewExclusion(),
	}
	return m
}

// Network exposes the reservation substrate (read-mostly; experiments use
// it for metrics).
func (m *Manager) Network() *rtchan.Network { return m.net }

// Graph returns the topology.
func (m *Manager) Graph() *topology.Graph { return m.net.Graph() }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Router exposes the manager's routing engine. Like the manager itself it
// is single-threaded; concurrent sweeps build one manager (and hence one
// router) per worker.
func (m *Manager) Router() *routing.Router { return m.router }

// Connection returns the D-connection with the given id, or nil.
func (m *Manager) Connection(id rtchan.ConnID) *DConnection { return m.conns[id] }

// Connections returns all live D-connections in establishment order.
func (m *Manager) Connections() []*DConnection {
	out := make([]*DConnection, 0, len(m.conns))
	for _, id := range m.order {
		if c, ok := m.conns[id]; ok {
			out = append(out, c)
		}
	}
	return out
}

// NumConnections returns the number of live D-connections.
func (m *Manager) NumConnections() int { return len(m.conns) }

// constraintForPrimary builds the admission-aware routing constraint for a
// primary channel: every link must have bw free, and the path must respect
// the QoS slack over the unconstrained shortest distance.
func (m *Manager) constraintForPrimary(bw float64, maxHops int) routing.Constraint {
	return routing.Constraint{
		MaxHops:  maxHops,
		TieBreak: m.cfg.TieBreak,
		LinkAllowed: func(l topology.LinkID) bool {
			return m.net.Free(l) >= bw-1e-9
		},
	}
}
