// Package wire defines the binary encodings of BCP's control messages and
// of the RCC frames that batch them (the paper's Figure 7 message format).
//
// An RCC frame carries a sequence number, a cumulative acknowledgment of the
// reverse direction, and a batch of control messages. Control messages are
// fixed-format TLV-ish records; everything is big-endian.
package wire

import (
	"encoding/binary"
	"fmt"
)

// MsgType identifies a control message.
type MsgType uint8

// Control message types (paper §4, §5.1).
const (
	// MsgFailureReport reports the failure of a channel to its end nodes,
	// traveling along the healthy segments of the channel's path.
	MsgFailureReport MsgType = iota + 1
	// MsgActivation activates a backup channel, traveling along the
	// backup's path.
	MsgActivation
	// MsgRejoinRequest probes a failed channel's path for repair
	// (source -> destination).
	MsgRejoinRequest
	// MsgRejoin confirms repair (destination -> source); state U -> B.
	MsgRejoin
	// MsgChannelClosure tears a channel down along its path.
	MsgChannelClosure
	// MsgLinkFailure notifies a link's upstream node that its downstream
	// neighbor stopped seeing heartbeats (failure-detection support; the
	// Channel field carries the link id).
	MsgLinkFailure
)

func (t MsgType) String() string {
	switch t {
	case MsgFailureReport:
		return "failure-report"
	case MsgActivation:
		return "activation"
	case MsgRejoinRequest:
		return "rejoin-request"
	case MsgRejoin:
		return "rejoin"
	case MsgChannelClosure:
		return "channel-closure"
	case MsgLinkFailure:
		return "link-failure"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// valid reports whether t is a known control message type.
func (t MsgType) valid() bool { return t >= MsgFailureReport && t <= MsgLinkFailure }

// Control is one BCP control message. Channel identifies the subject
// channel. Origin is the node that generated the message (diagnostic).
// Toward distinguishes the propagation direction along the channel path:
// +1 toward the destination, -1 toward the source.
type Control struct {
	Type    MsgType
	Channel int64
	Origin  int32
	Toward  int8
}

// controlSize is the wire size of one control message.
const controlSize = 1 + 8 + 4 + 1

// Size returns the encoded size in bytes.
func (c Control) Size() int { return controlSize }

func (c Control) appendTo(b []byte) []byte {
	b = append(b, byte(c.Type))
	b = binary.BigEndian.AppendUint64(b, uint64(c.Channel))
	b = binary.BigEndian.AppendUint32(b, uint32(c.Origin))
	b = append(b, byte(c.Toward))
	return b
}

func parseControl(b []byte) (Control, []byte, error) {
	if len(b) < controlSize {
		return Control{}, nil, fmt.Errorf("wire: control truncated: %d bytes", len(b))
	}
	c := Control{
		Type:    MsgType(b[0]),
		Channel: int64(binary.BigEndian.Uint64(b[1:9])),
		Origin:  int32(binary.BigEndian.Uint32(b[9:13])),
		Toward:  int8(b[13]),
	}
	if !c.Type.valid() {
		return Control{}, nil, fmt.Errorf("wire: unknown control type %d", b[0])
	}
	if c.Toward != 1 && c.Toward != -1 {
		return Control{}, nil, fmt.Errorf("wire: invalid direction %d", c.Toward)
	}
	return c, b[controlSize:], nil
}

// Frame is one RCC message: a batch of control messages plus reliability
// metadata, exchanged hop-by-hop between neighboring BCP daemons.
type Frame struct {
	// Seq is the sender's frame sequence number (per RCC, monotonically
	// increasing from 1).
	Seq uint32
	// Ack is the highest frame sequence number received in-order from the
	// reverse-direction RCC (cumulative acknowledgment; 0 = none).
	Ack uint32
	// Controls is the batch (possibly empty for a pure-ACK frame).
	Controls []Control
}

// frameHeaderSize is seq + ack + count.
const frameHeaderSize = 4 + 4 + 2

// Size returns the encoded frame size in bytes.
func (f Frame) Size() int { return frameHeaderSize + len(f.Controls)*controlSize }

// MaxControlsForBudget returns how many control messages fit in an RCC
// message of at most budget bytes. (S^RCC_max in the paper's model.)
func MaxControlsForBudget(budget int) int {
	n := (budget - frameHeaderSize) / controlSize
	if n < 0 {
		return 0
	}
	return n
}

// Marshal encodes the frame into a fresh buffer.
func (f Frame) Marshal() ([]byte, error) {
	return f.MarshalAppend(make([]byte, 0, f.Size()))
}

// MarshalAppend encodes the frame, appending to b. Callers that recycle
// frame buffers pass a pooled b[:0] to keep the encode path allocation-free.
func (f Frame) MarshalAppend(b []byte) ([]byte, error) {
	if len(f.Controls) > 0xFFFF {
		return nil, fmt.Errorf("wire: too many controls: %d", len(f.Controls))
	}
	b = binary.BigEndian.AppendUint32(b, f.Seq)
	b = binary.BigEndian.AppendUint32(b, f.Ack)
	b = binary.BigEndian.AppendUint16(b, uint16(len(f.Controls)))
	for _, c := range f.Controls {
		b = c.appendTo(b)
	}
	return b, nil
}

// Unmarshal decodes a frame, rejecting trailing garbage. A pure-ACK frame
// decodes with nil Controls.
func Unmarshal(b []byte) (Frame, error) {
	return UnmarshalScratch(b, nil)
}

// UnmarshalScratch decodes a frame like Unmarshal but appends the control
// batch into scratch[:0], letting callers recycle one decode buffer across
// frames. The returned Frame's Controls alias scratch; they are valid until
// the next decode into the same scratch.
func UnmarshalScratch(b []byte, scratch []Control) (Frame, error) {
	if len(b) < frameHeaderSize {
		return Frame{}, fmt.Errorf("wire: frame truncated: %d bytes", len(b))
	}
	f := Frame{
		Seq: binary.BigEndian.Uint32(b[0:4]),
		Ack: binary.BigEndian.Uint32(b[4:8]),
	}
	count := int(binary.BigEndian.Uint16(b[8:10]))
	rest := b[frameHeaderSize:]
	ctls := scratch[:0]
	for i := 0; i < count; i++ {
		var c Control
		var err error
		c, rest, err = parseControl(rest)
		if err != nil {
			return Frame{}, fmt.Errorf("wire: control %d: %w", i, err)
		}
		ctls = append(ctls, c)
	}
	if len(rest) != 0 {
		return Frame{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	if count > 0 {
		f.Controls = ctls
	}
	return f, nil
}
