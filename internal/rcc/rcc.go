// Package rcc implements the real-time control channel of §5: a single-hop,
// rate-limited, reliable transport for BCP control messages between
// neighboring daemons.
//
// Each RCC is modeled by the paper's three parameters — maximum message size
// S^RCC_max, maximum message rate R^RCC_max, and maximum per-message delay
// D^RCC_max (the latter is a property of the underlying reserved channel;
// this package enforces the first two and leaves delivery latency to the
// link layer it sends through). Control messages are collected between
// eligible times and batched into RCC frames; every frame carrying payload
// is acknowledged hop-by-hop (cumulative ACK, piggybacked when possible) and
// retransmitted on timeout; sequence numbers make duplicate delivery
// detectable and suppressed.
package rcc

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/runtime"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
	"github.com/rtcl/bcp/internal/wire"
)

// Params are the RCC model parameters.
type Params struct {
	// SMax is the maximum RCC frame size in bytes.
	SMax int
	// RMax is the maximum frame rate (frames/second): two frames are
	// separated by at least 1/RMax.
	RMax float64
	// RetxTimeout is the retransmission timeout for unacknowledged frames.
	RetxTimeout sim.Duration
	// AckDelay is how long the receiver may wait for a piggyback
	// opportunity before sending a pure-ACK frame.
	AckDelay sim.Duration
}

// DefaultParams provisions an RCC that fits a handful of control messages
// per frame at a 1 kHz frame rate.
func DefaultParams() Params {
	return Params{
		SMax:        256,
		RMax:        1000,
		RetxTimeout: 20 * time.Millisecond,
		AckDelay:    2 * time.Millisecond,
	}
}

// BufferPool recycles marshaled frame buffers. It is a plain free list with
// no synchronization of its own: in the simulated world everything is
// single-threaded, and under the wall-clock runtime every Get/Put site runs
// inside the runtime's serialized execution context, which is the same
// guarantee. A nil *BufferPool is valid and degrades to plain allocation,
// which keeps standalone endpoints (tests, fuzzers) working unchanged.
//
// Ownership protocol: the endpoint Gets a buffer at marshal time and hands
// it to the send callback; whoever ultimately consumes the frame (the
// receiving daemon, after HandleFrame, or the transport's drop path) Puts it
// back — never twice. Outstanding tracks Get/Put pairing so pool-balance
// tests can prove dropped frames are reclaimed rather than leaked.
type BufferPool struct {
	free [][]byte
	out  int // buffers handed out and not yet returned
}

// Outstanding returns the number of buffers currently checked out (Gets
// minus Puts). Zero-capacity Puts are not counted, matching Put.
func (p *BufferPool) Outstanding() int {
	if p == nil {
		return 0
	}
	return p.out
}

// Get returns an empty buffer with at least sizeHint capacity when the pool
// has one; otherwise it allocates.
func (p *BufferPool) Get(sizeHint int) []byte {
	if p != nil {
		p.out++
		if n := len(p.free); n > 0 {
			b := p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
			if cap(b) >= sizeHint {
				return b[:0]
			}
			// Too small for this frame: drop it and allocate fresh.
		}
	}
	return make([]byte, 0, sizeHint)
}

// Put returns a buffer to the pool. Putting a zero-capacity buffer is a
// no-op.
func (p *BufferPool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	p.out--
	p.free = append(p.free, b[:0])
}

// Stats counts endpoint activity.
type Stats struct {
	FramesSent      uint64
	PureAcksSent    uint64
	Retransmissions uint64
	FramesReceived  uint64
	Duplicates      uint64
	OutOfOrder      uint64
	ControlsSent    uint64
	ControlsDeliv   uint64
}

// Endpoint is one direction of an RCC: the sender state at the upstream
// daemon plus the receiver state for the reverse direction's ACKs.
type Endpoint struct {
	eng  runtime.Runtime
	p    Params
	send func([]byte)       // hand a marshaled frame to the link layer
	recv func(wire.Control) // upcall for each delivered control message
	// recvBatch, when set, replaces recv for in-order payload frames: the
	// daemon gets the whole decoded control batch in one upcall, in frame
	// order. See SetBatchReceiver for the slice-ownership contract.
	recvBatch func([]wire.Control)

	// Sender state.
	outQ      []wire.Control
	unacked   []sentFrame
	nextSeq   uint32
	lastTx    sim.Time
	everTx    bool
	retxDue   bool
	txTimer   sim.Timer
	retxTimer sim.Timer

	// Receiver state.
	recvCum    uint32
	ackPending bool
	ackTimer   sim.Timer

	stopped bool
	stats   Stats

	// Recycled scratch. pool (optional, shared across the network's
	// endpoints) recycles marshaled frame buffers; ctlFree recycles the
	// per-frame control batches held in unacked; rxCtls is the decode
	// scratch reused across received frames. fireFn/retxFn/ackFn are the
	// timer callbacks, built once at construction so re-arming a timer does
	// not allocate a closure per event.
	pool    *BufferPool
	ctlFree [][]wire.Control
	rxCtls  []wire.Control
	fireFn  func()
	retxFn  func()
	ackFn   func()

	// em reports frame/retransmission/ACK events when a sink is attached
	// (SetTrace); emNode/emLink identify this endpoint in the stream.
	em     trace.Emitter
	emNode topology.NodeID
	emLink topology.LinkID
}

type sentFrame struct {
	seq      uint32
	controls []wire.Control
}

// NewEndpoint creates an RCC endpoint on the given runtime (sim.Engine for
// deterministic runs, realtime.Runtime for live ones). send transmits a
// marshaled frame over the underlying link; recv receives each control
// message exactly once, in order.
func NewEndpoint(eng runtime.Runtime, p Params, send func([]byte), recv func(wire.Control)) *Endpoint {
	if wire.MaxControlsForBudget(p.SMax) < 1 {
		panic(fmt.Sprintf("rcc: SMax %d cannot fit a control message", p.SMax))
	}
	if p.RMax <= 0 {
		panic("rcc: non-positive RMax")
	}
	if p.RetxTimeout <= 0 {
		panic("rcc: non-positive retransmission timeout")
	}
	if send == nil || recv == nil {
		panic("rcc: nil callbacks")
	}
	e := &Endpoint{eng: eng, p: p, send: send, recv: recv, nextSeq: 1}
	e.fireFn = e.fire
	e.retxFn = func() {
		if e.stopped || len(e.unacked) == 0 {
			return
		}
		e.retxDue = true
		e.pump()
		e.armRetx()
	}
	e.ackFn = func() {
		if e.ackPending {
			e.pump()
		}
	}
	return e
}

// SetBufferPool attaches a frame-buffer pool, typically shared by every
// endpoint in a network. See BufferPool for the ownership protocol. A nil
// pool (the default) means each frame gets a fresh buffer.
func (e *Endpoint) SetBufferPool(p *BufferPool) { e.pool = p }

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// SetTrace attaches a protocol-event sink; node and link identify the
// sending side of this endpoint in the event stream. A nil sink disables
// emission (the default).
func (e *Endpoint) SetTrace(s trace.Sink, node topology.NodeID, link topology.LinkID) {
	e.em = trace.NewEmitter(s)
	e.emNode = node
	e.emLink = link
}

// Backlog returns the number of controls waiting to be framed plus those in
// unacknowledged frames.
func (e *Endpoint) Backlog() int {
	n := len(e.outQ)
	for _, f := range e.unacked {
		n += len(f.controls)
	}
	return n
}

// Stop cancels all timers; the endpoint drops everything afterwards (used
// when the underlying link fails permanently or the daemon shuts down).
func (e *Endpoint) Stop() {
	e.stopped = true
	e.txTimer.Stop()
	e.retxTimer.Stop()
	e.ackTimer.Stop()
}

// SetBatchReceiver upgrades the endpoint to batched delivery: in-order
// payload frames hand the daemon the whole decoded control batch in one
// upcall instead of len(Controls) per-message calls, preserving in-frame
// order. The slice is the endpoint's decode scratch — valid only for the
// duration of the upcall; the receiver must not retain it. The per-message
// recv callback stays as given to NewEndpoint (unused while a batch
// receiver is set).
func (e *Endpoint) SetBatchReceiver(fn func([]wire.Control)) { e.recvBatch = fn }

// Submit queues a control message for transmission.
func (e *Endpoint) Submit(c wire.Control) {
	if e.stopped {
		return
	}
	e.outQ = append(e.outQ, c)
	e.pump()
}

// SubmitBatch queues every control in cs for transmission and schedules at
// most one frame, exactly as len(cs) sequential Submit calls would (each
// Submit after the first finds the tx timer armed and returns). cs is
// copied into the out-queue; the caller keeps ownership of the slice.
func (e *Endpoint) SubmitBatch(cs []wire.Control) {
	if e.stopped || len(cs) == 0 {
		return
	}
	e.outQ = append(e.outQ, cs...)
	e.pump()
}

// interval is the minimum spacing between frames.
func (e *Endpoint) interval() sim.Duration {
	return sim.Duration(float64(time.Second) / e.p.RMax)
}

// pump schedules a frame transmission at the next eligible time if there is
// anything to send (payload, retransmission, or pending ACK) and none is
// scheduled yet. All transmissions flow through fire, so the R^RCC_max
// eligibility rule is enforced in one place.
func (e *Endpoint) pump() {
	if e.stopped {
		return
	}
	if len(e.outQ) == 0 && !e.ackPending && !(e.retxDue && len(e.unacked) > 0) {
		return
	}
	if e.txTimer.Active() {
		return
	}
	at := e.eng.Now()
	if e.everTx {
		if next := e.lastTx.Add(e.interval()); next > at {
			at = next
		}
	}
	e.txTimer = e.eng.At(at, e.fireFn)
}

// getCtlBuf returns an empty control batch with room for n messages,
// recycled from previously acknowledged frames when possible.
func (e *Endpoint) getCtlBuf(n int) []wire.Control {
	if k := len(e.ctlFree); k > 0 {
		b := e.ctlFree[k-1]
		e.ctlFree[k-1] = nil
		e.ctlFree = e.ctlFree[:k-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]wire.Control, 0, n)
}

// fire sends exactly one frame: a retransmission of the oldest
// unacknowledged frame takes precedence over new payload, which takes
// precedence over a pure ACK.
func (e *Endpoint) fire() {
	if e.stopped {
		return
	}
	f := wire.Frame{Ack: e.recvCum}
	switch {
	case e.retxDue && len(e.unacked) > 0:
		sf := e.unacked[0]
		f.Seq, f.Controls = sf.seq, sf.controls
		e.retxDue = false
		e.stats.Retransmissions++
		if e.em.Enabled() {
			e.emit(trace.KindRCCRetransmit, int64(f.Seq))
		}
	case len(e.outQ) > 0:
		n := len(e.outQ)
		if max := wire.MaxControlsForBudget(e.p.SMax); n > max {
			n = max
		}
		f.Seq = e.nextSeq
		e.nextSeq++
		f.Controls = append(e.getCtlBuf(n), e.outQ[:n]...)
		e.outQ = append(e.outQ[:0], e.outQ[n:]...)
		e.unacked = append(e.unacked, sentFrame{seq: f.Seq, controls: f.Controls})
		e.stats.ControlsSent += uint64(len(f.Controls))
		if e.em.Enabled() {
			e.emit(trace.KindRCCFrame, int64(len(f.Controls)))
		}
	case e.ackPending:
		e.stats.PureAcksSent++
		if e.em.Enabled() {
			e.emit(trace.KindRCCAck, int64(f.Ack))
		}
	default:
		return
	}
	e.ackPending = false
	e.ackTimer.Stop()
	data, err := f.MarshalAppend(e.pool.Get(f.Size()))
	if err != nil {
		panic("rcc: marshal: " + err.Error())
	}
	e.lastTx = e.eng.Now()
	e.everTx = true
	e.stats.FramesSent++
	e.send(data)
	if len(e.unacked) > 0 {
		e.armRetx()
	}
	e.pump()
}

// emit records one endpoint event; callers check e.em.Enabled() first.
func (e *Endpoint) emit(kind trace.Kind, aux int64) {
	e.em.Emit(trace.Event{
		At:   e.eng.Now(),
		Kind: kind,
		Node: e.emNode,
		Link: e.emLink,
		Aux:  aux,
	})
}

// armRetx (re)starts the retransmission timeout for the oldest
// unacknowledged frame.
func (e *Endpoint) armRetx() {
	e.retxTimer.Stop()
	e.retxTimer = e.eng.Schedule(e.p.RetxTimeout, e.retxFn)
}

// HandleFrame processes a frame received from the underlying link: it
// applies the cumulative ACK to the sender state and delivers in-order
// payload to the daemon, scheduling an acknowledgment.
func (e *Endpoint) HandleFrame(data []byte) {
	if e.stopped {
		return
	}
	f, err := wire.UnmarshalScratch(data, e.rxCtls)
	if err != nil {
		// A corrupted frame is dropped; retransmission recovers it.
		return
	}
	if f.Controls != nil {
		// Reclaim the decode scratch for the next frame; Controls stay
		// valid through the delivery loop below because frame delivery is
		// event-driven — no nested HandleFrame runs within this call.
		e.rxCtls = f.Controls[:0]
	}
	e.stats.FramesReceived++
	// ACK processing for our sender side: recycle the control batches of
	// acknowledged frames and compact the window in place.
	acked := 0
	for acked < len(e.unacked) && e.unacked[acked].seq <= f.Ack {
		if b := e.unacked[acked].controls; cap(b) > 0 {
			e.ctlFree = append(e.ctlFree, b[:0])
		}
		e.unacked[acked].controls = nil
		acked++
	}
	if acked > 0 {
		n := copy(e.unacked, e.unacked[acked:])
		for i := n; i < len(e.unacked); i++ {
			e.unacked[i] = sentFrame{}
		}
		e.unacked = e.unacked[:n]
	}
	if len(e.unacked) == 0 {
		e.retxTimer.Stop()
	}
	if f.Seq == 0 {
		return // pure ACK
	}
	switch {
	case f.Seq == e.recvCum+1:
		e.recvCum++
		e.stats.ControlsDeliv += uint64(len(f.Controls))
		if e.recvBatch != nil {
			e.recvBatch(f.Controls)
		} else {
			for _, c := range f.Controls {
				e.recv(c)
			}
		}
	case f.Seq <= e.recvCum:
		e.stats.Duplicates++
	default:
		// Gap: a predecessor was lost; discard and let the peer retransmit.
		e.stats.OutOfOrder++
	}
	e.scheduleAck()
}

// scheduleAck arranges for the current recvCum to reach the peer: either a
// payload frame goes out soon and piggybacks it, or a pure-ACK fires after
// AckDelay.
func (e *Endpoint) scheduleAck() {
	e.ackPending = true
	if len(e.outQ) > 0 {
		e.pump() // piggyback opportunity
		return
	}
	if e.ackTimer.Active() {
		return
	}
	e.ackTimer = e.eng.Schedule(e.p.AckDelay, e.ackFn)
}
