package chaos

import (
	"path/filepath"
	"testing"

	"github.com/rtcl/bcp/internal/bcpd"
)

// The golden reproducers under testdata/ are shrunk chaos artifacts promoted
// to permanent regression scenarios. Each replays clean against current code;
// the promote-rearm one must additionally still fail when the historical bug
// is reintroduced via the sabotage hook, proving the scenario keeps biting.
func TestGoldenReproducersReplayClean(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected at least 2 golden artifacts, found %d", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			a, err := ReadArtifact(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ReplayArtifact(a, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("golden scenario regressed: %v", res.Violations)
			}
		})
	}
}

// TestGoldenPromoteRearmStillBites replays the promote-rearm golden with the
// seeded bug re-enabled: if the artifact ever stops failing under sabotage,
// it no longer guards the promote-once rearm and must be regenerated.
func TestGoldenPromoteRearmStillBites(t *testing.T) {
	a, err := ReadArtifact("testdata/promote-rearm-pingpong.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayArtifact(a, RunOptions{Sabotage: &bcpd.Sabotage{SkipPromoteRearm: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("promote-rearm golden no longer fails with the seeded bug enabled")
	}
	if res.Digest != a.Digest {
		t.Fatalf("sabotage replay digest drifted: got %s, artifact records %s", res.Digest, a.Digest)
	}
}

// TestGoldenRejoinConfirmRace pins the fix for the stale soft-state leak the
// chaos hunt found: a rejoin confirm raced a re-failure of its own link, the
// destination's rejoin timer expired after the confirm had converted upstream
// nodes to B, and teardown never told them. The artifact's Violations field
// preserves the pre-fix signature; the replay must stay clean.
func TestGoldenRejoinConfirmRace(t *testing.T) {
	a, err := ReadArtifact("testdata/rejoin-confirm-race.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) == 0 {
		t.Fatal("artifact should record the historical failure signature")
	}
	res, err := ReplayArtifact(a, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("rejoin-confirm race regressed: %v", res.Violations)
	}
	if res.Digest != a.Digest {
		t.Fatalf("replay digest drifted: got %s, artifact records %s", res.Digest, a.Digest)
	}
}
