package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// TestMidHeapCancelShrinksQueue is the regression test for the lazy-cancel
// leak: cancelling a timer that is not at the heap top must remove it from
// the queue immediately, not leave a tombstone to be reaped at pop time.
func TestMidHeapCancelShrinksQueue(t *testing.T) {
	e := New(1)
	var timers []Timer
	for i := 1; i <= 100; i++ {
		timers = append(timers, e.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	if e.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", e.Pending())
	}
	// Cancel every other timer from the middle of the schedule — none of
	// these are the heap minimum.
	cancelled := 0
	for i := 10; i < 90; i += 2 {
		if !timers[i].Stop() {
			t.Fatalf("Stop on pending timer %d returned false", i)
		}
		cancelled++
	}
	if got, want := e.Pending(), 100-cancelled; got != want {
		t.Fatalf("pending after mid-heap cancels = %d, want %d", got, want)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	_ = fired
	if got := int(e.Processed()); got != 100-cancelled {
		t.Fatalf("processed = %d, want %d", got, 100-cancelled)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d", e.Pending())
	}
}

// TestSlotRecycling verifies the arena reuses freed slots instead of
// growing, and that handles to retired generations read as dead.
func TestSlotRecycling(t *testing.T) {
	e := New(1)
	first := e.Schedule(time.Millisecond, func() {})
	e.Step()
	if len(e.slots) != 1 {
		t.Fatalf("slots = %d, want 1", len(e.slots))
	}
	second := e.Schedule(time.Millisecond, func() {})
	if len(e.slots) != 1 {
		t.Fatalf("slot not recycled: slots = %d", len(e.slots))
	}
	if first.Active() {
		t.Fatal("fired handle reads active after slot reuse")
	}
	if !first.Fired() {
		t.Fatal("fired handle lost its outcome after slot reuse")
	}
	if !second.Active() {
		t.Fatal("fresh handle on recycled slot not active")
	}
	if second.Fired() {
		t.Fatal("pending handle on recycled slot reads fired")
	}
	if first.Stop() {
		t.Fatal("Stop through a stale handle cancelled the new generation")
	}
	if !second.Stop() {
		t.Fatal("fresh handle failed to stop")
	}
	if second.Fired() {
		t.Fatal("stopped handle reads fired")
	}
}

// TestZeroTimerInert pins the zero-value handle's behavior: protocol code
// stores Timer fields by value and relies on the zero value being inert.
func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
	if tm.Active() {
		t.Fatal("zero Timer is active")
	}
	if tm.Fired() {
		t.Fatal("zero Timer reads fired")
	}
	if tm.When() != 0 {
		t.Fatal("zero Timer has a deadline")
	}
}

// TestWhenSurvivesRecycling: When is stored on the handle, so it stays
// exact even after the arena slot is reused for a different deadline.
func TestWhenSurvivesRecycling(t *testing.T) {
	e := New(1)
	first := e.Schedule(3*time.Millisecond, func() {})
	e.Run()
	e.Schedule(9*time.Millisecond, func() {})
	if first.When() != Time(3*time.Millisecond) {
		t.Fatalf("When = %v after recycling, want 3ms", first.When())
	}
}

// TestSteadyStateSchedulingAllocFree is the alloc guard for the tentpole:
// once the arena and heap are warm, schedule+fire and schedule+cancel
// cycles must not allocate.
func TestSteadyStateSchedulingAllocFree(t *testing.T) {
	e := New(1)
	fn := func() {}
	// Warm the arena to a realistic working-set size.
	var warm []Timer
	for i := 0; i < 64; i++ {
		warm = append(warm, e.Schedule(time.Duration(i+1)*time.Microsecond, fn))
	}
	for _, tm := range warm {
		tm.Stop()
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}); n != 0 {
		t.Fatalf("schedule+fire allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		a := e.Schedule(time.Microsecond, fn)
		b := e.Schedule(2*time.Microsecond, fn)
		c := e.Schedule(3*time.Microsecond, fn)
		b.Stop() // mid-heap cancel
		a.Stop()
		c.Stop()
	}); n != 0 {
		t.Fatalf("schedule+cancel allocates %v/op, want 0", n)
	}
	// Bulk insert with a reused handle slice: warm, then alloc-free. This is
	// the storm path — one component failure arming a round's worth of
	// rejoin timers in one call.
	fns := make([]func(), 16)
	for i := range fns {
		fns[i] = fn
	}
	handles := e.ScheduleBatch(time.Microsecond, fns, nil)
	for _, tm := range handles {
		tm.Stop()
	}
	if n := testing.AllocsPerRun(1000, func() {
		handles = e.ScheduleBatch(time.Microsecond, fns, handles[:0])
		for _, tm := range handles {
			tm.Stop()
		}
	}); n != 0 {
		t.Fatalf("ScheduleBatch allocates %v/op, want 0", n)
	}
}

// TestScheduleBatchEquivalence drives a batch big enough to take the
// bottom-up heapify branch against a standing population and checks the
// firing order is exactly the sequential-schedule order: batch entries fire
// FIFO among themselves and interleave with the standing timers by
// deadline.
func TestScheduleBatchEquivalence(t *testing.T) {
	e := New(1)
	var got []int
	record := func(id int) func() { return func() { got = append(got, id) } }
	// Standing timers at 1ms, 3ms, 5ms.
	e.Schedule(1*time.Millisecond, record(1))
	e.Schedule(3*time.Millisecond, record(3))
	e.Schedule(5*time.Millisecond, record(5))
	// A batch of 12 at 4ms — k*4 >= n forces the heapify path.
	fns := make([]func(), 12)
	for i := range fns {
		fns[i] = record(100 + i)
	}
	handles := e.ScheduleBatch(4*time.Millisecond, fns, nil)
	if len(handles) != 12 {
		t.Fatalf("got %d handles, want 12", len(handles))
	}
	for _, h := range handles {
		if !h.Active() || h.When() != Time(4*time.Millisecond) {
			t.Fatalf("batch handle not pending at 4ms: active=%v when=%v", h.Active(), h.When())
		}
	}
	// Stop one mid-batch handle; the rest must be unaffected.
	handles[5].Stop()
	e.Run()
	want := []int{1, 3}
	for i := 0; i < 12; i++ {
		if i == 5 {
			continue
		}
		want = append(want, 100+i)
	}
	want = append(want, 5)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order %v, want %v", got, want)
		}
	}
}

// --- differential oracle ---------------------------------------------------

// oracleTimer and oracleHeap reimplement the seed's container/heap queue
// with lazy deletion, serving as the reference semantics.
type oracleTimer struct {
	at      Time
	seq     uint64
	id      int
	stopped bool
	fired   bool
	index   int
}

type oracleHeap []*oracleTimer

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *oracleHeap) Push(x any) {
	t := x.(*oracleTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

type oracleEngine struct {
	now    Time
	events oracleHeap
	seq    uint64
}

func (o *oracleEngine) schedule(at Time, id int) *oracleTimer {
	t := &oracleTimer{at: at, seq: o.seq, id: id}
	o.seq++
	heap.Push(&o.events, t)
	return t
}

// step pops the next live event, skipping stopped tombstones, and returns
// its id, or -1 when drained.
func (o *oracleEngine) step() int {
	for len(o.events) > 0 {
		t := heap.Pop(&o.events).(*oracleTimer)
		if t.stopped {
			continue
		}
		o.now = t.at
		t.fired = true
		return t.id
	}
	return -1
}

func (o *oracleEngine) livePending() int {
	n := 0
	for _, t := range o.events {
		if !t.stopped {
			n++
		}
	}
	return n
}

// TestDifferentialVsContainerHeap drives the indexed arena heap and a
// container/heap oracle through identical random schedule / cancel / fire
// sequences — with deliberately colliding deadlines so equal-deadline FIFO
// stability is exercised — and requires identical firing order, clock
// positions, and live queue lengths throughout.
func TestDifferentialVsContainerHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New(1)
		o := &oracleEngine{}

		type pair struct {
			subject Timer
			oracle  *oracleTimer
		}
		var live []pair
		nextID := 0

		var batchTimers []Timer // reused ScheduleBatch output
		var batchFns []func()

		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(12); {
			case r < 5: // schedule; coarse deadlines force ties
				at := e.Now().Add(time.Duration(rng.Intn(8)) * time.Millisecond)
				id := nextID
				nextID++
				st := e.At(at, func() {})
				ot := o.schedule(at, id)
				live = append(live, pair{st, ot})
			case r < 7: // bulk insert: must equal k sequential schedules
				d := time.Duration(rng.Intn(8)) * time.Millisecond
				k := 1 + rng.Intn(6)
				batchFns = batchFns[:0]
				for j := 0; j < k; j++ {
					batchFns = append(batchFns, func() {})
				}
				batchTimers = e.ScheduleBatch(d, batchFns, batchTimers[:0])
				at := e.Now().Add(d)
				for j := 0; j < k; j++ {
					id := nextID
					nextID++
					live = append(live, pair{batchTimers[j], o.schedule(at, id)})
				}
			case r < 10: // fire next
				var subjectFired bool
				if len(e.heap) > 0 {
					subjectFired = true
					e.Step()
				}
				oid := o.step()
				if subjectFired != (oid >= 0) {
					t.Fatalf("seed %d op %d: subject fired=%v oracle id=%d", seed, op, subjectFired, oid)
				}
				if e.Now() != o.now && oid >= 0 {
					t.Fatalf("seed %d op %d: clocks diverged %v vs %v", seed, op, e.Now(), o.now)
				}
			default: // cancel a random live timer (often mid-heap)
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				p := live[i]
				gotStop := p.subject.Stop()
				wantStop := !p.oracle.stopped && !p.oracle.fired
				p.oracle.stopped = true
				if gotStop != wantStop {
					t.Fatalf("seed %d op %d: Stop = %v, oracle %v", seed, op, gotStop, wantStop)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if e.Pending() != o.livePending() {
				t.Fatalf("seed %d op %d: pending %d vs oracle %d", seed, op, e.Pending(), o.livePending())
			}
		}

		// Drain both and compare full firing order via clock at each step.
		for {
			var subjectFired bool
			if len(e.heap) > 0 {
				subjectFired = true
				e.Step()
			}
			oid := o.step()
			if subjectFired != (oid >= 0) {
				t.Fatalf("seed %d drain: lengths diverged", seed)
			}
			if !subjectFired {
				break
			}
			if e.Now() != o.now {
				t.Fatalf("seed %d drain: clocks diverged %v vs %v", seed, e.Now(), o.now)
			}
		}
	}
}

// TestDifferentialFIFOOrder checks firing *identity* order, not just
// times: interleaved schedules at identical deadlines must fire in exact
// scheduling order even after unrelated cancellations reshuffle the heap.
func TestDifferentialFIFOOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := New(1)
	var want, got []int
	var cancellable []Timer
	id := 0
	for round := 0; round < 50; round++ {
		at := e.Now().Add(time.Duration(rng.Intn(3)) * time.Millisecond)
		for j := 0; j < 4; j++ {
			myID := id
			id++
			e.At(at, func() { got = append(got, myID) })
			want = append(want, myID)
		}
		// Noise: schedule-and-cancel far-future timers to churn the heap.
		for j := 0; j < 3; j++ {
			cancellable = append(cancellable,
				e.Schedule(time.Duration(10+rng.Intn(50))*time.Millisecond, func() { t.Error("cancelled timer fired") }))
		}
		for _, tm := range cancellable {
			tm.Stop()
		}
		cancellable = cancellable[:0]
		e.Run()
	}
	// want is in scheduling order; within each equal-deadline batch the
	// engine must preserve it, and batches fire in time order. Since each
	// round runs to quiescence, global order equals scheduling order.
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverged at %d: got %v", i, got[i])
		}
	}
}

// BenchmarkTimerCancelMidHeap measures the O(log n) cancel path.
func BenchmarkTimerCancelMidHeap(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	fn := func() {}
	// Keep a standing population so cancels are genuinely mid-heap.
	var standing []Timer
	for i := 0; i < 1024; i++ {
		standing = append(standing, e.Schedule(time.Duration(i+1)*time.Second, fn))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.Schedule(time.Duration(500+i%100)*time.Millisecond, fn)
		tm.Stop()
	}
	b.StopTimer()
	for _, tm := range standing {
		tm.Stop()
	}
}
