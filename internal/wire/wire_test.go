package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripEmptyFrame(t *testing.T) {
	f := Frame{Seq: 7, Ack: 3}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != f.Size() {
		t.Fatalf("size = %d, want %d", len(b), f.Size())
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Ack != 3 || len(got.Controls) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestRoundTripControls(t *testing.T) {
	f := Frame{
		Seq: 42,
		Ack: 41,
		Controls: []Control{
			{Type: MsgFailureReport, Channel: 123456789, Origin: 17, Toward: 1},
			{Type: MsgActivation, Channel: -1, Origin: 0, Toward: -1},
			{Type: MsgRejoinRequest, Channel: 1, Origin: 63, Toward: 1},
			{Type: MsgRejoin, Channel: 99, Origin: 2, Toward: -1},
			{Type: MsgChannelClosure, Channel: 5, Origin: 9, Toward: 1},
		},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n have %+v\n want %+v", got, f)
	}
}

func TestRoundTripProperty(t *testing.T) {
	fn := func(seq, ack uint32, raw []struct {
		T uint8
		C int64
		O int32
		D bool
	}) bool {
		f := Frame{Seq: seq, Ack: ack}
		for _, r := range raw {
			c := Control{
				Type:    MsgType(r.T%5) + MsgFailureReport,
				Channel: r.C,
				Origin:  r.O,
				Toward:  1,
			}
			if r.D {
				c.Toward = -1
			}
			f.Controls = append(f.Controls, c)
		}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if len(got.Controls) == 0 && len(f.Controls) == 0 {
			got.Controls, f.Controls = nil, nil
		}
		return reflect.DeepEqual(f, got)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, _ := Frame{Seq: 1, Controls: []Control{{Type: MsgActivation, Channel: 1, Toward: 1}}}.Marshal()
	cases := map[string][]byte{
		"empty":             nil,
		"short header":      {1, 2, 3},
		"truncated control": good[:len(good)-1],
		"trailing garbage":  append(append([]byte{}, good...), 0xFF),
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Bad control type.
	bad := append([]byte{}, good...)
	bad[frameHeaderSize] = 0xEE
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad type: no error")
	}
	// Bad direction.
	bad2 := append([]byte{}, good...)
	bad2[len(bad2)-1] = 5
	if _, err := Unmarshal(bad2); err == nil {
		t.Error("bad direction: no error")
	}
}

func TestMaxControlsForBudget(t *testing.T) {
	if got := MaxControlsForBudget(frameHeaderSize); got != 0 {
		t.Fatalf("header-only budget fits %d", got)
	}
	if got := MaxControlsForBudget(0); got != 0 {
		t.Fatalf("zero budget fits %d", got)
	}
	budget := 256
	n := MaxControlsForBudget(budget)
	f := Frame{Controls: make([]Control, n)}
	for i := range f.Controls {
		f.Controls[i] = Control{Type: MsgActivation, Toward: 1}
	}
	if f.Size() > budget {
		t.Fatalf("%d controls exceed budget: %d > %d", n, f.Size(), budget)
	}
	f.Controls = append(f.Controls, Control{Type: MsgActivation, Toward: 1})
	if f.Size() <= budget {
		t.Fatalf("budget should not fit %d controls", n+1)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, tt := range []MsgType{MsgFailureReport, MsgActivation, MsgRejoinRequest, MsgRejoin, MsgChannelClosure} {
		if s := tt.String(); s == "" || s[0] == 'm' {
			t.Fatalf("bad string %q", s)
		}
	}
	if s := MsgType(99).String(); s != "msgtype(99)" {
		t.Fatalf("unknown type string %q", s)
	}
}

func BenchmarkMarshalFrame(b *testing.B) {
	f := Frame{Seq: 1, Ack: 1, Controls: make([]Control, 32)}
	for i := range f.Controls {
		f.Controls[i] = Control{Type: MsgFailureReport, Channel: int64(i), Toward: 1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalFrame(b *testing.B) {
	f := Frame{Seq: 1, Ack: 1, Controls: make([]Control, 32)}
	for i := range f.Controls {
		f.Controls[i] = Control{Type: MsgFailureReport, Channel: int64(i), Toward: 1}
	}
	data, _ := f.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
