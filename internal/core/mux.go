package core

import (
	"fmt"
	"math"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// muxEntry is the per-link bookkeeping for one backup channel (§3.2).
type muxEntry struct {
	ch    *rtchan.Channel
	conn  *DConnection
	alpha int     // paper's integer multiplexing degree
	nu    float64 // threshold ν = (α-0.5)·λ
	// pi is Π(Bi,ℓ): the backups on this link that Bi must NOT share spare
	// bandwidth with, restricted — per the paper's refinement — to backups
	// whose multiplexing degree is no greater than Bi's. Kept as a flat
	// duplicate-free slice: membership inserts dominate (once per conflicting
	// pair per shared link), while lookups and removals only happen on the
	// rare teardown/promotion paths, where a linear scan is fine.
	pi []rtchan.ChannelID
	// req is this backup's spare-bandwidth requirement on the link:
	// bw(Bi) + Σ_{Bj ∈ Π} bw(Bj).
	req float64
}

// piRemove removes id from Π(e) if present, reporting whether it was.
func (e *muxEntry) piRemove(id rtchan.ChannelID) bool {
	for i, x := range e.pi {
		if x == id {
			e.pi[i] = e.pi[len(e.pi)-1]
			e.pi = e.pi[:len(e.pi)-1]
			return true
		}
	}
	return false
}

// linkMux is one link's multiplexing state. The link's spare reservation is
// the maximum requirement over its entries; activation claims draw the pool
// down temporarily until reconfiguration.
//
// Entries live in a flat value slice, not a map: the admission scan in
// addBackupToLink walks every entry once per link of every new backup —
// the hottest loop of establishment — and a contiguous scan beats map
// iteration there. Lookups by channel ID (teardown, promotion, Ψ metrics)
// are rare and linear-scan over tens of entries.
type linkMux struct {
	entries []muxEntry
	spare   float64 // committed spare reservation (mirrors rtchan account)
	claimed float64 // drawn by activations since the last reconfiguration
	// claims tracks protocol-mode activation claims by channel, so the
	// bidirectional activations of Scheme 3 stay idempotent per link.
	claims map[rtchan.ChannelID]float64
	// maxReq caches the max requirement over entries. Requirement growth
	// updates it in place (noteReq); shrinkage that might dethrone the
	// current max sets reqDirty instead, and the next requiredSpare call
	// rescans. This keeps the add path — one noteReq per grown entry —
	// free of full-link scans.
	maxReq   float64
	reqDirty bool
}

// find returns the index of the entry for channel id, or -1.
func (lm *linkMux) find(id rtchan.ChannelID) int {
	for i := range lm.entries {
		if lm.entries[i].ch.ID == id {
			return i
		}
	}
	return -1
}

// removeAt swap-deletes the entry at index i, zeroing the vacated slot so
// its pi slice and pointers are released.
func (lm *linkMux) removeAt(i int) {
	last := len(lm.entries) - 1
	lm.entries[i] = lm.entries[last]
	lm.entries[last] = muxEntry{}
	lm.entries = lm.entries[:last]
}

// requiredSpare returns the max requirement over entries, rescanning only
// when a removal invalidated the cached value.
func (lm *linkMux) requiredSpare() float64 {
	if lm.reqDirty {
		var max float64
		for i := range lm.entries {
			if lm.entries[i].req > max {
				max = lm.entries[i].req
			}
		}
		lm.maxReq = max
		lm.reqDirty = false
	}
	return lm.maxReq
}

// requiredSpareRO returns the same value requiredSpare would, but never
// writes: a deferred rescan is serviced into a local instead of the cache.
// The establishment planner runs under the reader lock, where settling the
// dirty flag would be a data race.
func (lm *linkMux) requiredSpareRO() float64 {
	if !lm.reqDirty {
		return lm.maxReq
	}
	var max float64
	for i := range lm.entries {
		if lm.entries[i].req > max {
			max = lm.entries[i].req
		}
	}
	return max
}

// noteReq folds one entry's (possibly grown) requirement into the cached max.
func (lm *linkMux) noteReq(req float64) {
	if req > lm.maxReq {
		lm.maxReq = req
	}
}

// noteReqShrink records that req dropped from a value that may have been the
// cached max; a rescan is deferred until the next requiredSpare call.
func (lm *linkMux) noteReqShrink(oldReq float64) {
	if oldReq >= lm.maxReq {
		lm.reqDirty = true
	}
}

// available returns the spare bandwidth an activation can still claim.
func (lm *linkMux) available() float64 { return lm.spare - lm.claimed }

// mutualExclusion decides the Π relationship for a pair of backups a and b
// with primaries Ma and Mb (paper §3.2): they may share spare bandwidth iff
// S(Ba,Bb) < ν, evaluated per side against that side's own ν, and each side
// only *counts* peers with no greater degree. Backups of the same connection
// never share spare: they are activated by the same primary failure.
//
// It reports (a counts b in Π(a), b counts a in Π(b)).
func (m *Manager) mutualExclusion(a, b *muxEntry) (aCountsB, bCountsA bool) {
	if a.conn.ID == b.conn.ID {
		return true, true
	}
	pa, pb := a.conn.Primary, b.conn.Primary
	if pa == nil || pb == nil {
		// A connection that momentarily has no primary (its repaired
		// channel is rejoining while recovery is still unresolved) gets
		// conservative treatment: its backup shares spare with nothing.
		return true, true
	}
	s := m.pairS(a.conn, b.conn)
	if m.plan.cfg.DisablePiDegreeRestriction {
		return s >= a.nu, s >= b.nu
	}
	aCountsB = b.nu <= a.nu && s >= a.nu
	bCountsA = a.nu <= b.nu && s >= b.nu
	return aCountsB, bCountsA
}

// muxDecisionScratch memoizes mutualExclusion outcomes per peer channel for
// the duration of one addBackup call. The decision for a (new backup, peer
// channel) pair is link-independent, and the same peers recur on every link
// the two backups share, so the multi-link add pays for each peer once.
// Slots are generation-stamped slices indexed by ChannelID; forChan guards
// against reuse across different adds.
type muxDecisionScratch struct {
	gen     uint32
	forChan rtchan.ChannelID
	chanGen []uint32
	newInE  []bool
	eInNew  []bool
}

// begin starts memoizing decisions for a new backup channel.
func (d *muxDecisionScratch) begin(ch rtchan.ChannelID) {
	d.gen++
	if d.gen == 0 {
		for i := range d.chanGen {
			d.chanGen[i] = 0
		}
		d.gen = 1
	}
	d.forChan = ch
}

// lookup returns the memoized decision for peer channel id, if present.
func (d *muxDecisionScratch) lookup(id rtchan.ChannelID) (newInE, eInNew, ok bool) {
	if int(id) >= len(d.chanGen) || d.chanGen[id] != d.gen {
		return false, false, false
	}
	return d.newInE[id], d.eInNew[id], true
}

// store records the decision for peer channel id.
func (d *muxDecisionScratch) store(id rtchan.ChannelID, newInE, eInNew bool) {
	if int(id) >= len(d.chanGen) {
		n := int(id) + 1 + len(d.chanGen)/2
		grownGen := make([]uint32, n)
		copy(grownGen, d.chanGen)
		d.chanGen = grownGen
		grownA := make([]bool, n)
		copy(grownA, d.newInE)
		d.newInE = grownA
		grownB := make([]bool, n)
		copy(grownB, d.eInNew)
		d.eInNew = grownB
	}
	d.chanGen[id] = d.gen
	d.newInE[id] = newInE
	d.eInNew[id] = eInNew
}

// muxDecision is the pure decision formula shared by decideMux and the
// establishment planner: given S for the pair and the two thresholds, it
// reports (existing counts new in Π, new counts existing in Π). Identical to
// mutualExclusion's formula with a=e, b=new.
func muxDecision(s, eNu, newNu float64, disableRestriction bool) (eCountsNew, newCountsE bool) {
	if disableRestriction {
		return s >= eNu, s >= newNu
	}
	eCountsNew = newNu <= eNu && s >= eNu
	newCountsE = eNu <= newNu && s >= newNu
	return eCountsNew, newCountsE
}

// decideMux is the admission-scan fast path of mutualExclusion: the backup
// being added has its primary's components stamped in m.piMarks (see
// addBackup), so the shared-component count per peer is a handful of array
// loads instead of a sorted merge, and the pair cache is bypassed entirely
// (establishment-time pairs never repay storage; see sCache.admit). The
// decision formula is identical to mutualExclusion with a=e, b=entry.
func (m *Manager) decideMux(e, entry *muxEntry) (eCountsNew, newCountsE bool) {
	if e.conn.ID == entry.conn.ID {
		return true, true
	}
	pe := e.conn.Primary
	if pe == nil || entry.conn.Primary == nil {
		// Conservative treatment for a momentarily primary-less connection,
		// as in mutualExclusion.
		return true, true
	}
	sc := m.piMarks.Shared(pe.Path)
	s := m.simS(pe.Path.NumComponents(), entry.conn.Primary.Path.NumComponents(), sc)
	return muxDecision(s, e.nu, entry.nu, m.plan.cfg.DisablePiDegreeRestriction)
}

// addBackupToLink registers backup ch on link l and resizes the link's spare
// pool, enforcing the capacity invariant. On failure the link state is
// unchanged. Must run inside an addBackup call: the decision fast path
// reads the primary stamp addBackup set up.
func (m *Manager) addBackupToLink(l topology.LinkID, conn *DConnection, ch *rtchan.Channel, alpha int) error {
	lm := &m.plan.mux[l]
	bw := ch.Bandwidth()
	entry := muxEntry{
		ch:    ch,
		conn:  conn,
		alpha: alpha,
		nu:    reliability.NuForDegree(m.plan.cfg.Lambda, alpha),
		req:   bw,
	}
	// Decisions are reusable across links only within the addBackup call
	// that started the memo for this channel.
	memo := m.muxDec.forChan == ch.ID
	// Tentatively wire the new entry into the Π structure. No undo log is
	// kept: the rare rollback below reconstructs the growth by scanning for
	// Π memberships, exactly as removeBackupFromLink does.
	for i := range lm.entries {
		e := &lm.entries[i]
		var newInE, eInNew bool
		hit := false
		if memo {
			newInE, eInNew, hit = m.muxDec.lookup(e.ch.ID)
		}
		if !hit {
			newInE, eInNew = m.decideMux(e, &entry)
			if memo {
				m.muxDec.store(e.ch.ID, newInE, eInNew)
			}
		}
		if newInE {
			e.pi = append(e.pi, ch.ID)
			e.req += bw
			lm.noteReq(e.req)
		}
		if eInNew {
			entry.pi = append(entry.pi, e.ch.ID)
			entry.req += e.ch.Bandwidth()
		}
	}
	lm.entries = append(lm.entries, entry)
	lm.noteReq(entry.req)
	need := lm.requiredSpare()
	if need > lm.spare {
		if err := m.plan.net.SetSpare(l, need); err != nil {
			// Roll back. The undone growth may have held the cached max.
			lm.removeAt(len(lm.entries) - 1)
			for i := range lm.entries {
				e := &lm.entries[i]
				if e.piRemove(ch.ID) {
					e.req -= bw
				}
			}
			lm.reqDirty = true
			return fmt.Errorf("core: link %d cannot grow spare to %g: %w", l, need, err)
		}
		lm.spare = need
	}
	return nil
}

// removeBackupFromLink unregisters backup ch from link l, shrinking the
// spare pool if possible. Shrinking cannot fail.
func (m *Manager) removeBackupFromLink(l topology.LinkID, ch *rtchan.Channel) {
	lm := &m.plan.mux[l]
	idx := lm.find(ch.ID)
	if idx < 0 {
		return
	}
	lm.noteReqShrink(lm.entries[idx].req)
	lm.removeAt(idx)
	bw := ch.Bandwidth()
	for i := range lm.entries {
		e := &lm.entries[i]
		if e.piRemove(ch.ID) {
			lm.noteReqShrink(e.req)
			e.req -= bw
		}
	}
	need := lm.requiredSpare()
	if need < lm.spare {
		// Never shrink below what activations have already claimed.
		if need < lm.claimed {
			need = lm.claimed
		}
		if err := m.plan.net.SetSpare(l, need); err != nil {
			panic("core: shrinking spare failed: " + err.Error())
		}
		lm.spare = need
	}
}

// addBackup registers a backup on every link of its path, transactionally.
func (m *Manager) addBackup(conn *DConnection, ch *rtchan.Channel, alpha int) error {
	m.muxDec.begin(ch.ID)
	if conn.Primary != nil {
		// Stamp the primary's components once; decideMux then counts each
		// peer primary's overlap with array loads (a primary-less conn —
		// mid-recovery rejoin — never reaches the stamp; see decideMux).
		m.piMarks.Set(conn.Primary.Path)
	}
	links := ch.Path.Links()
	for i, l := range links {
		if err := m.addBackupToLink(l, conn, ch, alpha); err != nil {
			for _, u := range links[:i] {
				m.removeBackupFromLink(u, ch)
			}
			return err
		}
	}
	return nil
}

// removeBackup unregisters a backup from all links of its path.
func (m *Manager) removeBackup(ch *rtchan.Channel) {
	for _, l := range ch.Path.Links() {
		m.removeBackupFromLink(l, ch)
	}
}

// PsiSizes returns |Ψ(B,ℓ)| for each link ℓ of backup ch's path: the number
// of backups multiplexed with it (all backups on the link minus Π minus the
// backup itself). Feeds the P_muxf bound of §3.3.
func (m *Manager) PsiSizes(ch *rtchan.Channel) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.psiSizes(ch)
}

func (m *Manager) psiSizes(ch *rtchan.Channel) []int {
	links := ch.Path.Links()
	out := make([]int, len(links))
	for i, l := range links {
		lm := &m.plan.mux[l]
		idx := lm.find(ch.ID)
		if idx < 0 {
			continue
		}
		psi := len(lm.entries) - len(lm.entries[idx].pi) - 1
		if psi < 0 {
			psi = 0
		}
		out[i] = psi
	}
	return out
}

// BackupsOnLink returns the number of backup channels registered on link l.
func (m *Manager) BackupsOnLink(l topology.LinkID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.plan.mux[l].entries)
}

// SpareOnLink returns the committed spare reservation on link l.
func (m *Manager) SpareOnLink(l topology.LinkID) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.plan.mux[l].spare
}

// prospectiveSpareIncrease predicts how much link l's spare pool would grow
// if a backup with the given bandwidth, threshold ν, and primary path (held
// by ps) were admitted — the link weight of the [HAN97b]-style load-aware
// backup routing (RouteLoadAware). ps memoizes S per established connection
// across the candidate links of one routing search.
func (m *Manager) prospectiveSpareIncrease(l topology.LinkID, ps *prospectiveS, bw, nu float64) float64 {
	lm := &m.plan.mux[l]
	newReq := bw
	maxGrown := 0.0
	for i := range lm.entries {
		e := &lm.entries[i]
		if e.conn.Primary == nil {
			continue
		}
		s := ps.forConn(e.conn)
		var newInE, eInNew bool
		if m.plan.cfg.DisablePiDegreeRestriction {
			newInE, eInNew = s >= e.nu, s >= nu
		} else {
			newInE = nu <= e.nu && s >= e.nu
			eInNew = e.nu <= nu && s >= nu
		}
		if eInNew {
			newReq += e.ch.Bandwidth()
		}
		if newInE && e.req+bw > maxGrown {
			maxGrown = e.req + bw
		}
	}
	need := math.Max(newReq, maxGrown)
	if need <= lm.spare {
		return 0
	}
	return need - lm.spare
}

// recomputeLinkMux rebuilds the Π structure of one link from scratch —
// used by reconfiguration after primaries change (an activated backup's new
// primary path changes every S involving that connection).
func (m *Manager) recomputeLinkMux(l topology.LinkID) error {
	lm := &m.plan.mux[l]
	for i := range lm.entries {
		e := &lm.entries[i]
		e.pi = e.pi[:0] // reuse the allocated slice instead of reallocating
		e.req = e.ch.Bandwidth()
	}
	// Reconfiguration touches many links sharing the same connection pairs;
	// let their S values populate the pair cache.
	m.plan.scache.admit = true
	defer func() { m.plan.scache.admit = false }()
	// Each unordered entry pair once; the result is order-independent (a
	// pure function of the entry set).
	for i := range lm.entries {
		a := &lm.entries[i]
		for j := i + 1; j < len(lm.entries); j++ {
			b := &lm.entries[j]
			aCountsB, bCountsA := m.mutualExclusion(a, b)
			if aCountsB {
				a.pi = append(a.pi, b.ch.ID)
				a.req += b.ch.Bandwidth()
			}
			if bCountsA {
				b.pi = append(b.pi, a.ch.ID)
				b.req += a.ch.Bandwidth()
			}
		}
	}
	lm.reqDirty = true // rebuilt from scratch; rescan the fresh requirements
	need := math.Max(lm.requiredSpare(), lm.claimed)
	if err := m.plan.net.SetSpare(l, need); err != nil {
		return err
	}
	lm.spare = need
	return nil
}

// CheckMuxInvariants validates the engine's internal consistency; tests call
// it after mutation sequences. Besides the paper-level invariants it
// cross-checks the incremental caches (the per-link max requirement and the
// pairwise S memo) against from-scratch recomputation.
func (m *Manager) CheckMuxInvariants() error {
	// Exclusive, not shared: requiredSpare may service a deferred rescan
	// (writing lm.maxReq), so this "read-only" check is a writer to the
	// incremental caches it validates.
	m.mu.Lock()
	defer m.mu.Unlock()
	for l := range m.plan.mux {
		lm := &m.plan.mux[l]
		if !lm.reqDirty {
			var max float64
			for i := range lm.entries {
				if lm.entries[i].req > max {
					max = lm.entries[i].req
				}
			}
			if math.Abs(max-lm.maxReq) > 1e-9 {
				return fmt.Errorf("core: link %d cached max requirement %g, recomputed %g", l, lm.maxReq, max)
			}
		}
		if lm.spare+1e-9 < lm.requiredSpare() && lm.claimed == 0 {
			return fmt.Errorf("core: link %d spare %g below requirement %g", l, lm.spare, lm.requiredSpare())
		}
		if got := m.plan.net.Spare(topology.LinkID(l)); math.Abs(got-lm.spare) > 1e-6 {
			return fmt.Errorf("core: link %d spare mirror drift: mux=%g rtchan=%g", l, lm.spare, got)
		}
		for ei := range lm.entries {
			e := &lm.entries[ei]
			id := e.ch.ID
			// Entries must be unique per channel (find returns the first).
			if lm.find(id) != ei {
				return fmt.Errorf("core: link %d has duplicate entries for channel %d", l, id)
			}
			want := e.ch.Bandwidth()
			for i, peer := range e.pi {
				// Π is a set; a duplicate insert would inflate req and the
				// spare pool consistently, so check it explicitly.
				for _, later := range e.pi[i+1:] {
					if later == peer {
						return fmt.Errorf("core: link %d entry %d lists peer %d twice", l, id, peer)
					}
				}
				pi := lm.find(peer)
				if pi < 0 {
					return fmt.Errorf("core: link %d entry %d references absent peer %d", l, id, peer)
				}
				pe := &lm.entries[pi]
				want += pe.ch.Bandwidth()
				// The ν-ordering rule applies between connections that both
				// have primaries; a primary-less connection (mid-recovery
				// rejoin) is counted conservatively from both sides.
				if !m.plan.cfg.DisablePiDegreeRestriction && pe.nu > e.nu+1e-18 && pe.conn.ID != e.conn.ID &&
					pe.conn.Primary != nil && e.conn.Primary != nil {
					return fmt.Errorf("core: link %d entry %d counts peer %d with larger ν", l, id, peer)
				}
			}
			if math.Abs(want-e.req) > 1e-6 {
				return fmt.Errorf("core: link %d entry %d req drift: stored %g recomputed %g", l, id, e.req, want)
			}
		}
	}
	// Every current cache entry must match a fresh S computation; entries
	// with stale epochs or dead connections are unreachable and exempt.
	for k, v := range m.plan.scache.entries {
		lo, hi := rtchan.ConnID(k>>32), rtchan.ConnID(uint32(k))
		a, b := m.plan.conns[lo], m.plan.conns[hi]
		if a == nil || b == nil || a.Primary == nil || b.Primary == nil {
			continue
		}
		if v.epLo != m.plan.scache.epoch(lo) || v.epHi != m.plan.scache.epoch(hi) {
			continue
		}
		if want := m.referenceS(a, b); math.Abs(want-v.s) > 1e-15 {
			return fmt.Errorf("core: S-cache drift for pair (%d,%d): cached %g recomputed %g", lo, hi, v.s, want)
		}
	}
	return nil
}
