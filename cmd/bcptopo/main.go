// Command bcptopo inspects the topologies used by the BCP simulations:
// size, capacity, distance structure, and disjoint-path availability between
// node pairs (which bounds how many backups a D-connection can have).
//
// Usage:
//
//	bcptopo -topo torus:8x8 -capacity 200
//	bcptopo -topo mesh:8x8 -src 0 -dst 63
//	bcptopo -topo random:40:4 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/topology"
)

func main() {
	var (
		topo     = flag.String("topo", "torus:8x8", "topology: torus:RxC | mesh:RxC | ring:N | line:N | hypercube:D | random:N:avgdeg")
		capacity = flag.Float64("capacity", 200, "link capacity (Mbps)")
		seed     = flag.Int64("seed", 1, "seed for random topologies")
		src      = flag.Int("src", -1, "source node for pair analysis")
		dst      = flag.Int("dst", -1, "destination node for pair analysis")
		dot      = flag.String("dot", "", "write the topology as Graphviz DOT to this file ('-' for stdout)")
		file     = flag.String("file", "", "load the topology from a file in the text format instead of -topo")
	)
	flag.Parse()

	var g *topology.Graph
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "bcptopo: %v\n", ferr)
			os.Exit(2)
		}
		g, err = topology.Parse(f)
		f.Close()
	} else {
		g, err = build(*topo, *capacity, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcptopo: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("%s: %d nodes, %d simplex links, total capacity %.0f Mbps\n",
		g.Name(), g.NumNodes(), g.NumLinks(), g.TotalCapacity())

	minDeg, maxDeg := 1<<30, 0
	for v := 0; v < g.NumNodes(); v++ {
		d := g.OutDegree(topology.NodeID(v))
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("degree: min %d, max %d\n", minDeg, maxDeg)

	// One router serves every query below: the all-pairs loops hit the
	// SPT cache and the arena instead of allocating per call.
	r := routing.NewRouter(g)

	// Distance structure: mean and eccentricity from exhaustive BFS.
	var sum, count, diameter int
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s == d {
				continue
			}
			dist := r.Distance(topology.NodeID(s), topology.NodeID(d))
			if dist < 0 {
				fmt.Printf("disconnected: %d cannot reach %d\n", s, d)
				os.Exit(1)
			}
			sum += dist
			count++
			if dist > diameter {
				diameter = dist
			}
		}
	}
	fmt.Printf("distance: mean %.3f hops, diameter %d\n", float64(sum)/float64(count), diameter)

	// Disjoint-path availability (how many backups a connection can have).
	hist := map[int]int{}
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s == d {
				continue
			}
			k := len(r.MaxDisjointPaths(topology.NodeID(s), topology.NodeID(d), maxDeg, routing.Constraint{}))
			hist[k]++
		}
	}
	fmt.Printf("component-disjoint paths per pair:")
	for k := 0; k <= maxDeg; k++ {
		if hist[k] > 0 {
			fmt.Printf("  %d paths: %d pairs", k, hist[k])
		}
	}
	fmt.Println()

	if *src >= 0 && *dst >= 0 {
		analyzePair(r, topology.NodeID(*src), topology.NodeID(*dst))
	}

	if *dot != "" {
		var opts topology.DotOptions
		if *src >= 0 && *dst >= 0 {
			opts.HighlightPaths = r.SequentialDisjointPaths(topology.NodeID(*src), topology.NodeID(*dst), 4, routing.Constraint{})
		}
		out := os.Stdout
		if *dot != "-" {
			f, err := os.Create(*dot)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bcptopo: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := g.WriteDot(out, opts); err != nil {
			fmt.Fprintf(os.Stderr, "bcptopo: %v\n", err)
			os.Exit(1)
		}
	}
}

func analyzePair(r *routing.Router, src, dst topology.NodeID) {
	fmt.Printf("\npair %d -> %d:\n", src, dst)
	fmt.Printf("  shortest distance: %d hops\n", r.Distance(src, dst))
	fmt.Println("  sequential disjoint routing (the paper's method):")
	for i, p := range r.SequentialDisjointPaths(src, dst, 8, routing.Constraint{}) {
		fmt.Printf("    channel %d: %v (%d hops)\n", i, p, p.Hops())
	}
	fmt.Println("  max-flow disjoint routing:")
	for i, p := range r.MaxDisjointPaths(src, dst, 8, routing.Constraint{}) {
		fmt.Printf("    channel %d: %v (%d hops)\n", i, p, p.Hops())
	}
}

func build(spec string, capacity float64, seed int64) (*topology.Graph, error) {
	parts := strings.Split(spec, ":")
	bad := func() (*topology.Graph, error) {
		return nil, fmt.Errorf("bad topology spec %q", spec)
	}
	switch parts[0] {
	case "torus", "mesh":
		if len(parts) != 2 {
			return bad()
		}
		dims := strings.Split(parts[1], "x")
		if len(dims) != 2 {
			return bad()
		}
		r, err1 := strconv.Atoi(dims[0])
		c, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil {
			return bad()
		}
		if parts[0] == "torus" {
			return topology.NewTorus(r, c, capacity), nil
		}
		return topology.NewMesh(r, c, capacity), nil
	case "ring", "line", "hypercube":
		if len(parts) != 2 {
			return bad()
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return bad()
		}
		switch parts[0] {
		case "ring":
			return topology.NewRing(n, capacity), nil
		case "line":
			return topology.NewLine(n, capacity), nil
		default:
			return topology.NewHypercube(n, capacity), nil
		}
	case "random":
		if len(parts) != 3 {
			return bad()
		}
		n, err1 := strconv.Atoi(parts[1])
		deg, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return bad()
		}
		return topology.NewRandom(n, deg, capacity, seed), nil
	default:
		return bad()
	}
}
