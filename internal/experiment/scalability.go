package experiment

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/wire"
)

// ScalabilityRow measures one network size.
type ScalabilityRow struct {
	Nodes            int
	Links            int
	Connections      int
	EstablishTime    time.Duration // wall time for the full all-pairs workload
	PerConnection    time.Duration
	MeanBackupsLink  float64 // mean backup channels per link (the n of §6's O(n))
	MaxBackupsLink   int
	SpareBW          float64
	MaxControlsPair  int // worst-case control messages on a link pair (§5.2)
	RequiredRCCBytes int // S^RCC_max needed for the timely-delivery condition
}

// ScalabilityResult reproduces §6's scalability argument empirically:
// establishment cost per connection stays flat as the network scales
// (backup multiplexing is O(backups-per-link) incremental work, with no
// global knowledge), and §5.2's RCC provisioning bound is computed from the
// established channel population.
type ScalabilityResult struct {
	Alpha int
	Rows  []ScalabilityRow
}

// RunScalability sweeps square tori from 4x4 to 12x12 with the paper's
// per-pair workload at the given multiplexing degree. With opts.Workers > 1
// the establishment runs through the speculative batch pipeline
// (EstablishAllPairsParallel) — same state, less wall time — so the
// reported EstablishTime measures the pipelined path.
func RunScalability(alpha int, opts Options) ScalabilityResult {
	res := ScalabilityResult{Alpha: alpha}
	workers := opts.workerCount()
	for _, side := range []int{4, 6, 8, 10, 12} {
		g := topology.NewTorus(side, side, 200*float64(side*side)/64)
		m := core.NewManager(g, opts.config())
		start := time.Now()
		var est int
		if workers > 1 {
			est, _ = EstablishAllPairsParallel(m, UniformDegrees(1, alpha), workers)
		} else {
			est, _ = EstablishAllPairs(m, UniformDegrees(1, alpha))
		}
		elapsed := time.Since(start)

		row := ScalabilityRow{
			Nodes:         g.NumNodes(),
			Links:         g.NumLinks(),
			Connections:   est,
			EstablishTime: elapsed,
			SpareBW:       m.Network().SpareFraction(),
		}
		if est > 0 {
			row.PerConnection = elapsed / time.Duration(est)
		}
		var totalBackups int
		for _, l := range g.Links() {
			nb := m.BackupsOnLink(l.ID)
			totalBackups += nb
			if nb > row.MaxBackupsLink {
				row.MaxBackupsLink = nb
			}
		}
		row.MeanBackupsLink = float64(totalBackups) / float64(g.NumLinks())
		row.MaxControlsPair, row.RequiredRCCBytes = RCCProvisioning(m)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// RCCProvisioning evaluates §5.2's timely-delivery condition: the number of
// control messages that can transit a link is bounded by the number of
// channels on the link pair between its two incident nodes, so
//
//	S^RCC_max >= (control message size) · max over link pairs of
//	             (channels on l + channels on reverse(l))
//
// It returns the worst-case channel count over link pairs and the required
// S^RCC_max in bytes.
func RCCProvisioning(m *core.Manager) (maxChannels, requiredBytes int) {
	g := m.Graph()
	net := m.Network()
	seen := make(map[topology.LinkID]bool)
	ctrlSize := (wire.Control{}).Size()
	for _, l := range g.Links() {
		if seen[l.ID] {
			continue
		}
		count := len(net.ChannelsOnLink(l.ID))
		if rev := g.Reverse(l.ID); rev != topology.NoLink {
			seen[rev] = true
			count += len(net.ChannelsOnLink(rev))
		}
		seen[l.ID] = true
		if count > maxChannels {
			maxChannels = count
		}
	}
	return maxChannels, maxChannels * ctrlSize
}

// Render prints the scalability table.
func (r ScalabilityResult) Render() string {
	t := &metrics.Table{
		Title: fmt.Sprintf("Scalability (§6): all-pairs workload at mux=%d, link capacity scaled with size", r.Alpha),
		Columns: []string{"Torus", "Conns", "Establish", "Per-conn", "Backups/link (mean/max)",
			"Spare", "Max chans/pair", "S_RCC needed"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d nodes", row.Nodes),
			fmt.Sprintf("%d", row.Connections),
			row.EstablishTime.Round(time.Millisecond).String(),
			row.PerConnection.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f/%d", row.MeanBackupsLink, row.MaxBackupsLink),
			metrics.FormatPercent(row.SpareBW),
			fmt.Sprintf("%d", row.MaxControlsPair),
			fmt.Sprintf("%d B", row.RequiredRCCBytes),
		)
	}
	return t.String()
}

// DefaultSpecForScale keeps the workload definition in one place for tests.
func DefaultSpecForScale() rtchan.TrafficSpec { return rtchan.DefaultSpec() }
