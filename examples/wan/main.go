// WAN: BCP on an irregular wide-area topology. The paper's scalability and
// interoperability argument (§6) is that BCP needs no global knowledge —
// backup multiplexing is hop-by-hop and control messages follow channel
// paths — so it runs unchanged on arbitrary graphs. This example builds a
// random 40-node WAN, negotiates reliability targets per connection
// (§3.4 scheme 2), runs the full message-level protocol with heartbeat
// failure detection (no failure oracle), and crashes a busy router.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/rtcl/bcp"
)

func main() {
	g := bcp.NewRandom(40, 3.6, 155, 11) // 155 Mbps "OC-3" trunks
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	rng := bcp.NewRand(4)

	// Negotiate 60 connections with an explicit reliability target each.
	var conns []*bcp.DConnection
	established := 0
	for len(conns) < 60 {
		src := bcp.NodeID(rng.Intn(g.NumNodes()))
		dst := bcp.NodeID(rng.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		spec := bcp.DefaultSpec()
		spec.Bandwidth = 1 + float64(rng.Intn(4))
		conn, err := mgr.EstablishWithPr(src, dst, spec, 0.99995, 2, 6)
		if err != nil {
			continue // some pairs lack disjoint capacity on a sparse WAN
		}
		conns = append(conns, conn)
		established++
	}
	fmt.Printf("negotiated %d connections at Pr >= 0.99995 on %s\n", established, g.Name())
	fmt.Printf("network load %.2f%%, spare %.2f%%\n\n",
		mgr.Network().NetworkLoad()*100, mgr.Network().SpareFraction()*100)

	// Pick the busiest transit router (most channels through it).
	busiest, busiestCount := bcp.NodeID(0), 0
	for v := 0; v < g.NumNodes(); v++ {
		if c := len(mgr.Network().ChannelsAtNode(bcp.NodeID(v))); c > busiestCount {
			busiest, busiestCount = bcp.NodeID(v), c
		}
	}
	fmt.Printf("crashing the busiest router: node %d (%d channels through it)\n", busiest, busiestCount)

	// Full protocol run with heartbeat-based detection: the failure is not
	// announced; neighbors notice the silence.
	eng := bcp.NewEngine(1)
	cfg := bcp.DefaultProtocolConfig()
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.HeartbeatMiss = 3
	proto := bcp.NewProtocol(eng, mgr, cfg)
	for _, c := range conns {
		if err := proto.StartTraffic(c.ID, 200); err != nil {
			log.Fatal(err)
		}
	}
	failAt := bcp.Time(200 * time.Millisecond)
	eng.At(failAt, func() { proto.FailNode(busiest) })
	eng.RunFor(2 * time.Second)

	st := proto.Stats()
	fmt.Printf("\nheartbeat detections: %d   failure reports: %d   activations: %d\n",
		st.Detections, st.ReportsGenerated, st.ActivationsStarted)

	var delays []time.Duration
	recovered, unaffected, lost := 0, 0, 0
	for _, c := range conns {
		if c.Src == busiest || c.Dst == busiest {
			lost++ // end node died: unrecoverable by any scheme
			continue
		}
		sw := proto.SourceSwitches(c.ID)
		switch {
		case len(sw) > 0:
			recovered++
			delays = append(delays, time.Duration(sw[len(sw)-1].Sub(failAt)))
		case c.Primary != nil && !c.Primary.Path.ContainsNode(busiest):
			unaffected++
		default:
			lost++
		}
	}
	fmt.Printf("connections: %d unaffected, %d recovered fast, %d lost (incl. end-node casualties)\n",
		unaffected, recovered, lost)
	if len(delays) > 0 {
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		fmt.Printf("recovery delay (detection + reporting + switch): median %v, max %v\n",
			delays[len(delays)/2].Round(time.Millisecond),
			delays[len(delays)-1].Round(time.Millisecond))
	}
	fmt.Printf("data: sent=%d delivered=%d lost=%d\n", st.DataSent, st.DataDelivered, st.DataSent-st.DataDelivered)
}
