// Package realtime executes the protocol stack on the wall clock. It is the
// live sibling of sim.Engine behind the runtime.Runtime seam: the same daemon
// code, the same sim.Timer handles, the same release-before-fire and
// Stop-prevents-fire semantics — but deadlines come from the monotonic clock
// and delivery happens on real goroutines.
//
// # Execution model
//
// The runtime hosts per-node actors: one goroutine per node draining a
// bounded mailbox of closures (transport deliveries, injected operations).
// Actor goroutines and the timer goroutine all execute protocol callbacks
// under one execution lock (mu), so from the protocol's point of view the
// world is still single-threaded — Network/Manager state is shared across
// nodes in this reproduction, and the lock preserves the invariant the sim
// gives for free. The actor boundary still buys what the paper's deployment
// needs: bounded per-node queues with drop-on-overflow backpressure (RCC
// retransmission recovers dropped control traffic), and no transport
// goroutine ever touches protocol state directly.
//
// # Timers
//
// The timer arena is the PR-6 design verbatim: an index-based 4-ary min-heap
// over pooled, generation-stamped slots, value sim.Timer handles, O(log n)
// Stop, release-before-fire so a callback can re-arm into its own slot. A
// single timer goroutine sleeps until the earliest deadline, then fires due
// events under the execution lock; because popping happens with both locks
// held, Stop returning true still guarantees the callback never runs.
//
// # Shutdown
//
// Stop closes a shared stop channel and waits for the timer and actor
// goroutines. Mailbox channels are never closed — senders race shutdown, and
// a send on a closed channel would panic — instead Post observes the stop
// channel and reports the drop. Stop must not be called from a protocol
// callback (it would deadlock on its own execution lock).
package realtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rtcl/bcp/internal/runtime"
	"github.com/rtcl/bcp/internal/sim"
)

// The wall-clock runtime stands wherever sim.Engine does.
var _ runtime.Runtime = (*Runtime)(nil)

// timerSlot mirrors sim's arena entry: generation-stamped so stale handles
// read as dead, with the slot's heap position tracked for O(log n) removal.
type timerSlot struct {
	at        sim.Time
	seq       uint64
	fn        func()
	gen       uint32
	pos       int32 // index in Runtime.heap; -1 when not queued
	prevFired bool
}

// Runtime drives protocol daemons on the wall clock. Create with New, start
// actors with StartActors, and always Stop it (not from a protocol callback).
type Runtime struct {
	start time.Time // monotonic epoch; Now() is nanoseconds since here

	// mu is the execution lock: every protocol callback — timer fire, actor
	// mailbox item, Exec closure — runs under it. tmu guards the timer arena
	// only. Lock order is mu before tmu; Schedule/At/Stop take only tmu so
	// callbacks already holding mu can re-arm and cancel timers.
	mu  sync.Mutex
	tmu sync.Mutex

	slots []timerSlot
	free  []int32 // recycled arena slots
	heap  []int32 // 4-ary min-heap of slot indices, ordered by (at, seq)
	seq   uint64

	rng *rand.Rand // only touched under mu (runtime-serialized callbacks)

	wake    chan struct{} // kicks the timer goroutine when an earlier deadline arrives
	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	mailboxes []chan func()
	dropped   atomic.Uint64 // mailbox posts refused (full or stopping)
}

// New creates a runtime with a seeded random source and starts its timer
// goroutine. The caller owns the lifecycle and must call Stop.
func New(seed int64) *Runtime {
	r := &Runtime{
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	r.wg.Add(1)
	go r.timerLoop()
	return r
}

// Now returns monotonic nanoseconds since the runtime started.
func (r *Runtime) Now() sim.Time { return sim.Time(time.Since(r.start)) }

// RNG returns the runtime's random source; safe only from runtime-serialized
// callbacks (or under Exec).
func (r *Runtime) RNG() *rand.Rand { return r.rng }

// Schedule runs fn after delay d. Negative delays are clamped to zero: the
// wall clock cannot fire in the past, and live callers (unlike sim scripts)
// may compute small negative slacks from measured times.
func (r *Runtime) Schedule(d sim.Duration, fn func()) sim.Timer {
	if d < 0 {
		d = 0
	}
	return r.At(r.Now().Add(d), fn)
}

// At runs fn at absolute runtime-clock time t, clamped to now.
func (r *Runtime) At(t sim.Time, fn func()) sim.Timer {
	if fn == nil {
		panic("realtime: nil event function")
	}
	r.tmu.Lock()
	var idx int32
	if n := len(r.free); n > 0 {
		idx = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		r.slots = append(r.slots, timerSlot{})
		idx = int32(len(r.slots) - 1)
	}
	s := &r.slots[idx]
	s.at = t
	s.seq = r.seq
	s.fn = fn
	r.seq++
	s.pos = int32(len(r.heap))
	r.heap = append(r.heap, idx)
	r.siftUp(int(s.pos))
	gen := s.gen
	becameEarliest := r.heap[0] == idx
	r.tmu.Unlock()

	if becameEarliest {
		// The new deadline may precede what the timer goroutine is sleeping
		// toward; nudge it to recompute.
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return sim.MakeTimer(r, idx, gen, t)
}

// ScheduleBatch schedules every function in fns to run after delay d
// (clamped to zero), appending one handle per function to out and returning
// it. Semantically identical to len(fns) sequential Schedule calls, but the
// timer lock is taken once for the whole batch, the heap is restored once
// (per-item sift-up for small batches, bottom-up heapify when the batch
// rivals the standing population), and the timer goroutine is nudged at
// most once. Recovery storms arm their per-channel rejoin timers here.
func (r *Runtime) ScheduleBatch(d sim.Duration, fns []func(), out []sim.Timer) []sim.Timer {
	if d < 0 {
		d = 0
	}
	if len(fns) == 0 {
		return out
	}
	t := r.Now().Add(d)
	r.tmu.Lock()
	var oldEarliest int32 = -1
	if len(r.heap) > 0 {
		oldEarliest = r.heap[0]
	}
	start := len(r.heap)
	for _, fn := range fns {
		if fn == nil {
			r.tmu.Unlock()
			panic("realtime: nil event function")
		}
		var idx int32
		if n := len(r.free); n > 0 {
			idx = r.free[n-1]
			r.free = r.free[:n-1]
		} else {
			r.slots = append(r.slots, timerSlot{})
			idx = int32(len(r.slots) - 1)
		}
		s := &r.slots[idx]
		s.at = t
		s.seq = r.seq
		s.fn = fn
		r.seq++
		s.pos = int32(len(r.heap))
		r.heap = append(r.heap, idx)
		out = append(out, sim.MakeTimer(r, idx, s.gen, t))
	}
	n := len(r.heap)
	if k := n - start; k*4 < n || n < 8 {
		for i := start; i < n; i++ {
			r.siftUp(i)
		}
	} else {
		for i := (n - 2) / 4; i >= 0; i-- {
			r.siftDown(i)
		}
	}
	becameEarliest := r.heap[0] != oldEarliest
	r.tmu.Unlock()

	if becameEarliest {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return out
}

// StopTimer implements sim.TimerHost: cancel the (idx, gen) slot if that
// generation is still pending. Because due timers are popped with both mu
// and tmu held, a true return guarantees the callback will not run.
func (r *Runtime) StopTimer(idx int32, gen uint32) bool {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	s := &r.slots[idx]
	if s.gen != gen {
		return false // already fired or stopped
	}
	r.removeAt(int(s.pos))
	r.release(idx, false)
	return true
}

// TimerActive implements sim.TimerHost.
func (r *Runtime) TimerActive(idx int32, gen uint32) bool {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	return r.slots[idx].gen == gen
}

// TimerFired implements sim.TimerHost.
func (r *Runtime) TimerFired(idx int32, gen uint32) bool {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	s := &r.slots[idx]
	if s.gen == gen {
		return false // still pending
	}
	return s.prevFired
}

// release retires slot idx's current generation and recycles it. Caller
// holds tmu.
func (r *Runtime) release(idx int32, fired bool) {
	s := &r.slots[idx]
	s.fn = nil
	s.pos = -1
	s.prevFired = fired
	s.gen++
	r.free = append(r.free, idx)
}

func (r *Runtime) less(a, b int32) bool {
	sa, sb := &r.slots[a], &r.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (r *Runtime) siftUp(i int) {
	item := r.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := r.heap[parent]
		if !r.less(item, p) {
			break
		}
		r.heap[i] = p
		r.slots[p].pos = int32(i)
		i = parent
	}
	r.heap[i] = item
	r.slots[item].pos = int32(i)
}

func (r *Runtime) siftDown(i int) {
	n := len(r.heap)
	item := r.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if r.less(r.heap[c], r.heap[best]) {
				best = c
			}
		}
		if !r.less(r.heap[best], item) {
			break
		}
		r.heap[i] = r.heap[best]
		r.slots[r.heap[i]].pos = int32(i)
		i = best
	}
	r.heap[i] = item
	r.slots[item].pos = int32(i)
}

func (r *Runtime) removeAt(i int) {
	n := len(r.heap) - 1
	last := r.heap[n]
	r.heap = r.heap[:n]
	if i == n {
		return
	}
	r.heap[i] = last
	r.slots[last].pos = int32(i)
	r.siftDown(i)
	r.siftUp(int(r.slots[last].pos))
}

// timerLoop sleeps until the earliest deadline, then fires everything due.
// Firing takes mu first, then tmu (the global lock order), pops and releases
// each due slot, drops tmu, and runs the callbacks still under mu — so a
// protocol callback holding mu can never observe a popped-but-unrun timer,
// and release-before-fire lets callbacks re-arm into their own slot.
func (r *Runtime) timerLoop() {
	defer r.wg.Done()
	wait := time.NewTimer(time.Hour)
	defer wait.Stop()
	var due []func() // reused across rounds
	for {
		r.tmu.Lock()
		var sleep time.Duration
		if len(r.heap) == 0 {
			sleep = time.Hour
		} else {
			sleep = time.Duration(r.slots[r.heap[0]].at - r.Now())
			if sleep < 0 {
				sleep = 0
			}
		}
		r.tmu.Unlock()

		if !wait.Stop() {
			select {
			case <-wait.C:
			default:
			}
		}
		wait.Reset(sleep)
		select {
		case <-r.stop:
			return
		case <-r.wake:
			continue // earlier deadline arrived; recompute the sleep
		case <-wait.C:
		}

		r.mu.Lock()
		r.tmu.Lock()
		now := r.Now()
		for len(r.heap) > 0 && r.slots[r.heap[0]].at <= now {
			idx := r.heap[0]
			fn := r.slots[idx].fn
			r.removeAt(0)
			r.release(idx, true)
			due = append(due, fn)
		}
		r.tmu.Unlock()
		for i, fn := range due {
			fn()
			due[i] = nil
		}
		due = due[:0]
		r.mu.Unlock()
	}
}

// StartActors creates n per-node mailboxes of the given capacity and starts
// one goroutine per node to drain them. Call once, before traffic flows.
func (r *Runtime) StartActors(n, mailbox int) {
	if r.mailboxes != nil {
		panic("realtime: StartActors called twice")
	}
	if mailbox < 1 {
		mailbox = 1
	}
	r.mailboxes = make([]chan func(), n)
	for i := range r.mailboxes {
		mb := make(chan func(), mailbox)
		r.mailboxes[i] = mb
		r.wg.Add(1)
		go r.actorLoop(mb)
	}
}

func (r *Runtime) actorLoop(mb chan func()) {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case fn := <-mb:
			r.mu.Lock()
			fn()
			r.mu.Unlock()
		}
	}
}

// Post enqueues fn on node's mailbox, reporting success. It never blocks: a
// full mailbox or a stopping runtime drops the item (counted; RCC
// retransmission recovers dropped control traffic, and data loss is the
// condition the protocol is built to survive).
func (r *Runtime) Post(node int, fn func()) bool {
	if r.stopped.Load() {
		r.dropped.Add(1)
		return false
	}
	select {
	case r.mailboxes[node] <- fn:
		return true
	default:
		r.dropped.Add(1)
		return false
	}
}

// Exec runs fn under the execution lock, serialized with every timer and
// actor callback. External goroutines (tests, cmd/bcplive) use it to touch
// protocol state safely. Never call it from inside a protocol callback.
func (r *Runtime) Exec(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// Dropped returns how many mailbox posts were refused.
func (r *Runtime) Dropped() uint64 { return r.dropped.Load() }

// Stop shuts the runtime down: no further timers fire, actors drain nothing
// more, and all runtime goroutines have exited when it returns. Safe to call
// once, from outside any protocol callback. Pending mailbox items and timers
// are discarded.
func (r *Runtime) Stop() {
	if !r.stopped.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	r.wg.Wait()
}
