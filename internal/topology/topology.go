// Package topology models multi-hop network topologies as directed
// multigraphs of nodes connected by simplex links, as used throughout the
// BCP (Backup Channel Protocol) simulation.
//
// Following the paper, neighbor nodes are connected by two simplex links,
// one per direction, and a network "component" is either a node or a
// simplex link. Channels are uni-directional, so paths are directed.
package topology

import (
	"fmt"
)

// NodeID identifies a node. Nodes are numbered 0..N-1.
type NodeID int32

// LinkID identifies a simplex link. Links are numbered 0..L-1.
type LinkID int32

// Invalid sentinel values.
const (
	NoNode NodeID = -1
	NoLink LinkID = -1
)

// Link is a uni-directional (simplex) communication link with a fixed
// bandwidth capacity. Capacity is in abstract bandwidth units (the paper
// uses Mbps).
type Link struct {
	ID       LinkID
	From, To NodeID
	Capacity float64
}

// Graph is a directed network topology. It is immutable after construction;
// dynamic state (failures, reservations) is layered on top by other packages.
type Graph struct {
	name     string
	numNodes int
	links    []Link
	out      [][]LinkID // out[n] = links leaving node n
	in       [][]LinkID // in[n] = links entering node n
	byPair   map[[2]NodeID]LinkID
	version  uint64 // mutation epoch, bumped by AddLink
}

// NewGraph creates an empty graph with n nodes and no links.
func NewGraph(name string, n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{
		name:     name,
		numNodes: n,
		out:      make([][]LinkID, n),
		in:       make([][]LinkID, n),
		byPair:   make(map[[2]NodeID]LinkID),
	}
}

// Name returns the human-readable topology name (e.g. "torus-8x8").
func (g *Graph) Name() string { return g.name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumLinks returns the number of simplex links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link with the given id.
func (g *Graph) Link(id LinkID) Link {
	return g.links[id]
}

// Links returns all links. The returned slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// Version returns the graph's mutation epoch: it increments on every
// successful AddLink. Derived per-graph caches (routing.Router's arenas and
// shortest-path trees) record the version they were built at and rebuild
// when it changes, so a graph still under construction by a generator cannot
// serve stale cached state.
func (g *Graph) Version() uint64 { return g.version }

// Out returns the ids of links leaving node n. Must not be modified.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// In returns the ids of links entering node n. Must not be modified.
func (g *Graph) In(n NodeID) []LinkID { return g.in[n] }

// AddLink adds a simplex link from one node to another and returns its id.
// Adding a second link between the same ordered pair is rejected: the paper's
// networks have exactly one simplex link per direction per neighbor pair.
func (g *Graph) AddLink(from, to NodeID, capacity float64) (LinkID, error) {
	if from < 0 || int(from) >= g.numNodes || to < 0 || int(to) >= g.numNodes {
		return NoLink, fmt.Errorf("topology: link endpoints %d->%d out of range [0,%d)", from, to, g.numNodes)
	}
	if from == to {
		return NoLink, fmt.Errorf("topology: self-loop at node %d", from)
	}
	if capacity <= 0 {
		return NoLink, fmt.Errorf("topology: non-positive capacity %g", capacity)
	}
	key := [2]NodeID{from, to}
	if _, dup := g.byPair[key]; dup {
		return NoLink, fmt.Errorf("topology: duplicate link %d->%d", from, to)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.byPair[key] = id
	g.version++
	return id, nil
}

// mustAddLink is used by generators whose arguments are known valid.
func (g *Graph) mustAddLink(from, to NodeID, capacity float64) LinkID {
	id, err := g.AddLink(from, to, capacity)
	if err != nil {
		panic(err)
	}
	return id
}

// addDuplex adds a pair of simplex links (one in each direction).
func (g *Graph) addDuplex(a, b NodeID, capacity float64) {
	g.mustAddLink(a, b, capacity)
	g.mustAddLink(b, a, capacity)
}

// LinkBetween returns the simplex link from one node to another, or NoLink
// if the nodes are not adjacent in that direction.
func (g *Graph) LinkBetween(from, to NodeID) LinkID {
	if id, ok := g.byPair[[2]NodeID{from, to}]; ok {
		return id
	}
	return NoLink
}

// Reverse returns the simplex link in the opposite direction of l, or NoLink
// if the topology has no such link.
func (g *Graph) Reverse(l LinkID) LinkID {
	lk := g.links[l]
	return g.LinkBetween(lk.To, lk.From)
}

// Neighbors returns the distinct nodes reachable from n over one out-link.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	out := g.out[n]
	nbrs := make([]NodeID, 0, len(out))
	for _, l := range out {
		nbrs = append(nbrs, g.links[l].To)
	}
	return nbrs
}

// OutDegree returns the number of links leaving n.
func (g *Graph) OutDegree(n NodeID) int { return len(g.out[n]) }

// TotalCapacity returns the sum of all link capacities. This is the paper's
// "total network bandwidth capacity" used as the denominator of the
// network-load and spare-bandwidth metrics.
func (g *Graph) TotalCapacity() float64 {
	var sum float64
	for _, l := range g.links {
		sum += l.Capacity
	}
	return sum
}

// Validate checks internal consistency; generators call it before returning.
func (g *Graph) Validate() error {
	for i, l := range g.links {
		if LinkID(i) != l.ID {
			return fmt.Errorf("topology: link %d has id %d", i, l.ID)
		}
		if l.From < 0 || int(l.From) >= g.numNodes || l.To < 0 || int(l.To) >= g.numNodes {
			return fmt.Errorf("topology: link %d endpoints out of range", i)
		}
	}
	for n, ls := range g.out {
		for _, l := range ls {
			if g.links[l].From != NodeID(n) {
				return fmt.Errorf("topology: out list of node %d contains link %d from node %d", n, l, g.links[l].From)
			}
		}
	}
	for n, ls := range g.in {
		for _, l := range ls {
			if g.links[l].To != NodeID(n) {
				return fmt.Errorf("topology: in list of node %d contains link %d to node %d", n, l, g.links[l].To)
			}
		}
	}
	return nil
}
