package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// StormWide is the mass-failure counterpart of Storm: instead of crashing
// one link of one connection, each cycle crashes an entire transit node of a
// heavily loaded network — hundreds of channels fail at once, their failure
// reports and activations fan out along shared links, and after repair the
// whole population rejoins. This is the workload the batched dispatch path
// (bcpd/round.go) exists for: one node failure touches every link around the
// victim many times, so the cost of a cycle should scale with the links
// touched, not with the individual control messages crossing them.
//
// The victims are pure transit nodes — every connection runs between
// non-victim endpoints — so a cycle never destroys a connection outright:
// disjoint primary/backup routing guarantees at most one channel of each
// pair crosses the victim, recovery always has a live channel to switch to,
// and the network returns to a steady state that the next cycle can fail
// again.
type StormWide struct {
	Eng     *sim.Engine
	Mgr     *core.Manager
	Net     *bcpd.Network
	Victims []topology.NodeID

	conns   []*core.DConnection
	traffic []*core.DConnection // sampled sources measured for switch latency
	seen    map[rtchan.ConnID]int
	lat     []sim.Duration
	cycles  int
}

// StormWideConfig parameterizes NewStormWide. The zero value is the 8×8
// torus with all pairs between non-victim endpoints.
type StormWideConfig struct {
	// Mesh switches the topology from the paper's 8×8 torus (64 nodes) to a
	// 16×16 mesh (256 nodes) with a sampled workload.
	Mesh bool
	// MaxConns caps how many connections are established. 0 means all
	// non-victim pairs on the torus, or stormWideMeshConns on the mesh.
	MaxConns int
	// PerMessageDispatch runs the per-message dispatch engine instead of
	// dispatch rounds — the A/B baseline for the batching work.
	PerMessageDispatch bool
	// Seed drives the engine and the mesh workload sample.
	Seed int64
	// Sink optionally taps the protocol event stream.
	Sink trace.Sink
}

// Cycle phases: the crash phase covers detection, the report storm, and the
// activation wave; the repair phase covers the soft-state expiries tearing
// down the channels lost through the crashed node and the replenishments
// restoring every connection's backup count. Both are generous on the torus
// and the mesh — the cycle asserts progress through counters, not
// completion of every last replenishment.
const (
	stormWideCrashPhase = sim.Duration(300 * time.Millisecond)
	// The repair phase reboots the victim immediately, so every
	// replenishment — activation-triggered at ~crash+400ms, expiry-
	// triggered at ~crash+950ms — routes with the victim back up and
	// replacements may thread through it again. That repopulation is what
	// keeps victims loaded with crossing primaries across cycles; holding
	// the victim down through the replenish wave drains them instead.
	stormWideRepairPhase = sim.Duration(900 * time.Millisecond)
	// stormWideMeshConns is the default sampled workload on the 256-node
	// mesh, where all pairs would be 65 thousand connections.
	stormWideMeshConns = 600
	// stormWideSources is how many victim-crossing connections carry data,
	// so cycles yield a service-interruption latency distribution.
	stormWideSources = 16
	stormWideRate    = 100 // msgs/s per sampled source
)

// NewStormWide builds the loaded network: victims spread across the fabric,
// degree-1 disjoint backups on every connection, data traffic on a sample of
// victim-crossing connections.
func NewStormWide(cfg StormWideConfig) (*StormWide, error) {
	var g *topology.Graph
	var victims []topology.NodeID
	if cfg.Mesh {
		g = topology.NewMesh(16, 16, 200)
		// The four center nodes. Unlike the torus, a mesh concentrates
		// shortest paths through its center, so center victims keep a dense
		// population of crossing primaries: each cycle's promotions and
		// replenishments re-thread routes through the repaired victim fast
		// enough that re-failing it always finds primaries to activate
		// around. Quadrant-interior victims drain instead — after one
		// rotation the sampled workload routes around them for good and a
		// re-failure finds nothing to restore.
		victims = []topology.NodeID{7*16 + 7, 7*16 + 8, 8*16 + 7, 8*16 + 8}
	} else {
		g = topology.NewTorus(8, 8, 200)
		victims = []topology.NodeID{1*8 + 1, 3*8 + 3, 4*8 + 4, 6*8 + 6}
	}
	isVictim := make(map[topology.NodeID]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}

	eng := sim.New(cfg.Seed)
	mgr := core.NewManager(g, core.DefaultConfig())
	limit := cfg.MaxConns
	if limit == 0 && cfg.Mesh {
		limit = stormWideMeshConns
	}

	var conns []*core.DConnection
	if cfg.Mesh {
		// Sampled random pairs: the seeded generator makes the workload a
		// pure function of the seed, so A/B runs load identical networks.
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		for len(conns) < limit {
			s := topology.NodeID(rng.Intn(g.NumNodes()))
			d := topology.NodeID(rng.Intn(g.NumNodes()))
			if s == d || isVictim[s] || isVictim[d] {
				continue
			}
			c, err := mgr.Establish(s, d, rtchan.DefaultSpec(), []int{1})
			if err != nil {
				continue // capacity or disjointness — skip the pair
			}
			conns = append(conns, c)
		}
	} else {
		for s := 0; s < g.NumNodes(); s++ {
			for d := 0; d < g.NumNodes(); d++ {
				src, dst := topology.NodeID(s), topology.NodeID(d)
				if src == dst || isVictim[src] || isVictim[dst] {
					continue
				}
				c, err := mgr.Establish(src, dst, rtchan.DefaultSpec(), []int{1})
				if err != nil {
					continue
				}
				conns = append(conns, c)
				if limit > 0 && len(conns) >= limit {
					break
				}
			}
			if limit > 0 && len(conns) >= limit {
				break
			}
		}
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("experiment: storm-wide established no connections")
	}

	// A rebooted node holds no soft state, so channels through a crashed
	// node cannot rejoin — they expire and are replaced. The timing makes
	// each cycle self-contained: soft state expires mid-repair-phase
	// (crash + 500ms), the expiry teardown frees the dead channel's
	// bandwidth, and replenishment then restores every connection to its
	// full backup count before the next cycle. That keeps the population
	// stationary across arbitrarily many cycles — the property a steady-
	// state benchmark needs. The replenish delay lands every replenishment
	// in the repair phase (activation-triggered ones at ~crash+400ms,
	// expiry-triggered ones at ~crash+900ms), keeping the crash phase pure
	// restoration: establishment work belongs to the untimed half of the
	// benchmark cycle.
	bcfg := bcpd.DefaultConfig()
	bcfg.RejoinTimeout = sim.Duration(500 * time.Millisecond)
	bcfg.RejoinProbeDelay = sim.Duration(100 * time.Millisecond)
	bcfg.ReplenishDelay = sim.Duration(400 * time.Millisecond)
	bcfg.ReplenishTarget = 1
	bcfg.PerMessageDispatch = cfg.PerMessageDispatch
	bcfg.Sink = cfg.Sink
	net := bcpd.New(eng, mgr, bcfg)

	s := &StormWide{
		Eng:     eng,
		Mgr:     mgr,
		Net:     net,
		Victims: victims,
		conns:   conns,
		seen:    make(map[rtchan.ConnID]int, stormWideSources),
	}
	// Traffic rides on connections whose primary crosses a victim, spread
	// round-robin over the victims so every cycle interrupts some sources.
	perVictim := stormWideSources / len(victims)
	sampled := make(map[rtchan.ConnID]bool, stormWideSources)
	for _, v := range victims {
		picked := 0
		for _, c := range conns {
			if picked >= perVictim {
				break
			}
			if sampled[c.ID] || c.Primary == nil || !pathCrossesNode(c.Primary.Path, v) {
				continue
			}
			if err := net.StartTraffic(c.ID, stormWideRate); err != nil {
				return nil, err
			}
			sampled[c.ID] = true
			s.traffic = append(s.traffic, c)
			picked++
		}
	}
	return s, nil
}

func pathCrossesNode(p topology.Path, v topology.NodeID) bool {
	for _, n := range p.Nodes() {
		if n == v {
			return true
		}
	}
	return false
}

// Cycle crashes the next victim node, runs the failure storm, repairs it,
// and runs the expiry/replenish wave. Progress is asserted through the
// protocol counters: the crash phase must start activations; the repair
// phase must expire the dead channels' soft state and replenish backups.
// Source-switch latencies observed on the sampled traffic accumulate into
// Latencies.
func (s *StormWide) Cycle() error {
	v, err := s.CrashPhase()
	if err != nil {
		return err
	}
	return s.RepairPhase(v)
}

// pickVictim selects the victim carrying the most crossing primaries — the
// node whose failure disables the most service. A fixed rotation drains
// instead: recovery persistently re-routes primaries away from whichever
// node failed last, and on sparse workloads a rotation slot can come up
// empty, failing a node nothing crosses anymore. Selection is a pure
// function of the primary routes, which are bit-identical across dispatch
// engines, so A/B runs still fail the same sequence of victims.
func (s *StormWide) pickVictim() topology.NodeID {
	best, bestN := s.Victims[0], -1
	for _, v := range s.Victims {
		n := 0
		for _, c := range s.conns {
			if c.Primary != nil && pathCrossesNode(c.Primary.Path, v) {
				n++
			}
		}
		if n > bestN {
			best, bestN = v, n
		}
	}
	return best
}

// CrashPhase is the restoration half of a cycle — the part the benchmarks
// time: it crashes the most loaded victim, runs the detection/report/
// activation storm to completion, and collects the failure→source-switch
// latencies observed on the sampled traffic. Returns the victim for
// RepairPhase.
func (s *StormWide) CrashPhase() (topology.NodeID, error) {
	v := s.pickVictim()
	before := s.Net.Stats()
	failAt := s.Eng.Now()
	s.Net.FailNode(v)
	s.Eng.RunFor(stormWideCrashPhase)
	mid := s.Net.Stats()
	if mid.ActivationsStarted == before.ActivationsStarted {
		return v, fmt.Errorf("experiment: storm-wide cycle %d: node %d crash started no activations", s.cycles, v)
	}
	for _, c := range s.traffic {
		switches := s.Net.SourceSwitches(c.ID)
		for _, at := range switches[s.seen[c.ID]:] {
			s.lat = append(s.lat, at.Sub(failAt))
		}
		s.seen[c.ID] = len(switches)
	}
	return v, nil
}

// RepairPhase is the stationarity half: it repairs the victim and runs the
// soft-state expiries and replenishments that restore full redundancy, so
// the next CrashPhase fails an identically-loaded network. Benchmarks run
// it between iterations with the timer stopped — replacing the expired
// channels is establishment work, not restoration.
func (s *StormWide) RepairPhase(v topology.NodeID) error {
	mid := s.Net.Stats()
	s.Net.RepairNode(v)
	s.Eng.RunFor(stormWideRepairPhase)
	after := s.Net.Stats()
	if after.RejoinExpiries == mid.RejoinExpiries {
		return fmt.Errorf("experiment: storm-wide cycle %d: node %d crash expired no soft state", s.cycles, v)
	}
	if after.BackupsReplenished == mid.BackupsReplenished {
		return fmt.Errorf("experiment: storm-wide cycle %d: node %d repair replenished no backups", s.cycles, v)
	}
	s.cycles++
	return nil
}

// Run executes n cycles, stopping at the first failure.
func (s *StormWide) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Cycle(); err != nil {
			return err
		}
	}
	return nil
}

// Drain repairs everything and runs the engine long enough for every rejoin
// and retransmission to settle — the precondition for quiescence audits.
func (s *StormWide) Drain() {
	for _, v := range s.Victims {
		s.Net.RepairNode(v)
	}
	for _, c := range s.traffic {
		s.Net.StopTraffic(c.ID)
	}
	s.Eng.RunFor(5 * time.Second)
}

// Cycles returns the number of completed cycles.
func (s *StormWide) Cycles() int { return s.cycles }

// Conns returns how many connections load the network.
func (s *StormWide) Conns() int { return len(s.conns) }

// Stats returns the protocol counters accumulated so far.
func (s *StormWide) Stats() bcpd.Stats { return s.Net.Stats() }

// Latencies returns the failure→source-switch delays observed on the
// sampled traffic so far, sorted ascending.
func (s *StormWide) Latencies() []sim.Duration {
	out := append([]sim.Duration(nil), s.lat...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
