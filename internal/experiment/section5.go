package experiment

import (
	"fmt"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// Section5Row is one failure-position measurement of the recovery-delay
// experiment.
type Section5Row struct {
	FailPos      int          // index of the failed primary link (0 = at the source)
	Backups      int          // number of backups configured
	BackupHit    bool         // whether the first backup was failed too (retrial case)
	Gamma        sim.Duration // measured source recovery delay
	Bound        sim.Duration // the paper's Γ bound for this configuration
	DstDisrupt   sim.Duration // largest data-arrival gap at the destination
	MessagesLost uint64       // data messages lost during the outage (Figure 8)

	// Violations are protocol-conformance violations observed on the
	// trial's event stream (empty on a sound run). The checker enforces the
	// same Γ bound the Bound column reports, plus the Figure-4 state
	// machine, claim balance, and healthy-traversal rules.
	Violations []conformance.Violation
}

// Section5Result is the §5.3 recovery-delay bound validation.
type Section5Result struct {
	Hops     int
	DMax     sim.Duration
	Rows     []Section5Row
	AllBound bool
}

// protocolTimingConfig builds the bcpd configuration used for the timing
// experiments: zero detection latency (the paper's bound assumes immediate
// detection) and lossless links, so Γ isolates control-message delays.
func protocolTimingConfig() bcpd.Config {
	cfg := bcpd.DefaultConfig()
	cfg.DetectionLatency = 0
	return cfg
}

// perHopBound computes D^RCC_max for our RCC-over-priority-scheduler model:
// worst-case one-hop control delay = eligibility wait (1/R_max) + residual
// transmission of one in-flight lower-priority packet + the frame's own
// transmission + propagation.
func perHopBound(cfg bcpd.Config, linkCapacityMbps float64, dataMsgSize int) sim.Duration {
	bps := linkCapacityMbps * 1e6
	eligibility := sim.Duration(float64(time.Second) / cfg.RCC.RMax)
	residual := sim.Duration(float64(dataMsgSize*8) / bps * float64(time.Second))
	frame := sim.Duration(float64(cfg.RCC.SMax*8) / bps * float64(time.Second))
	return eligibility + residual + frame + cfg.PropDelay
}

// RunSection5 validates the §5.3 recovery-delay bound on the paper's torus:
// a K-hop D-connection with 1 or 2 backups carries traffic, one primary link
// at each position fails, and the measured source recovery delay Γ is
// compared to (K-1)·D_max + 2(b-1)(K-1)·D_max. For the double-backup rows
// the first backup's first link fails simultaneously, exercising the
// activation-retrial term.
func RunSection5(opts Options) Section5Result {
	const hops = 8
	cfg := protocolTimingConfig()
	res := Section5Result{
		Hops:     hops,
		DMax:     perHopBound(cfg, 200, cfg.DataMsgSize),
		AllBound: true,
	}
	// Single backup: sweep every failure position.
	for pos := 0; pos < hops; pos++ {
		row := runSection5Trial(opts, cfg, res.DMax, 1, pos, false)
		res.Rows = append(res.Rows, row)
		if row.Gamma > row.Bound {
			res.AllBound = false
		}
	}
	// Double backups with the first backup also failed: retrial delay.
	for _, pos := range []int{0, hops / 2, hops - 1} {
		row := runSection5Trial(opts, cfg, res.DMax, 2, pos, true)
		res.Rows = append(res.Rows, row)
		if row.Gamma > row.Bound {
			res.AllBound = false
		}
	}
	return res
}

// runSection5Trial builds a fresh torus with one instrumented connection and
// measures one failure scenario.
func runSection5Trial(opts Options, cfg bcpd.Config, dmax sim.Duration, backups, failPos int, hitBackup bool) Section5Row {
	g := NewGraph(Torus8x8)
	eng := sim.New(opts.Seed + int64(failPos))
	mgr := core.NewManager(g, opts.config())
	// An 8-hop connection across the torus: (0,0) -> (4,4).
	src, dst := topology.NodeID(0), topology.NodeID(36)
	paths := routing.SequentialDisjointPaths(g, src, dst, backups+1, routing.Constraint{})
	if len(paths) < backups+1 {
		panic("experiment: torus cannot route the requested channels")
	}
	degrees := make([]int, backups)
	for i := range degrees {
		degrees[i] = 1
	}
	conn, err := mgr.EstablishOnPaths(rtchan.DefaultSpec(), paths[0], paths[1:backups+1], degrees)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	// Every trial is conformance-checked live: with dmax > 0 the checker
	// re-derives the Γ bound the table reports and flags any recovery that
	// exceeds it, independently of the SourceSwitches accounting below.
	chk := conformance.New(conformance.Params{
		DMax:           dmax,
		DetectionSlack: cfg.DetectionLatency,
		PropSlack:      cfg.PropDelay + sim.Duration(time.Millisecond),
	})
	if cfg.Sink != nil {
		cfg.Sink = trace.Tee{cfg.Sink, chk}
	} else {
		cfg.Sink = chk
	}
	net := bcpd.New(eng, mgr, cfg)
	const msgRate = 1000.0
	if err := net.StartTraffic(conn.ID, msgRate); err != nil {
		panic("experiment: " + err.Error())
	}

	failAt := sim.Time(100 * time.Millisecond)
	primLink := conn.Primary.Path.Links()[failPos]
	var backupLink topology.LinkID = topology.NoLink
	if hitBackup {
		// Fail the first backup's last link: the source cannot know and
		// activates it first, paying the full retrial round trip — the
		// 2(b-1)(K-1)·D_max term of the bound.
		bLinks := conn.Backups[0].Path.Links()
		backupLink = bLinks[len(bLinks)-1]
	}
	eng.At(failAt, func() {
		net.FailLink(primLink)
		if backupLink != topology.NoLink {
			net.FailLink(backupLink)
		}
	})
	eng.RunFor(2 * time.Second)

	row := Section5Row{
		FailPos:   failPos,
		Backups:   backups,
		BackupHit: hitBackup,
		Bound:     boundGamma(dmax, paths[0].Hops(), backups),
	}
	switches := net.SourceSwitches(conn.ID)
	if n := len(switches); n > 0 {
		row.Gamma = switches[n-1].Sub(failAt)
	}
	row.DstDisrupt = net.MaxArrivalGap(conn.ID)
	row.MessagesLost = net.Stats().DataSent - net.Stats().DataDelivered
	row.Violations = chk.Finish()
	return row
}

// boundGamma is the paper's Γ bound: failure-reporting delay plus activation
// retrial delay, (K-1)·D_max + 2(b-1)(K-1)·D_max.
func boundGamma(dmax sim.Duration, hops, backups int) sim.Duration {
	k := sim.Duration(hops - 1)
	b := sim.Duration(backups - 1)
	return k*dmax + 2*b*k*dmax
}

// Render prints the Section 5 table.
func (r Section5Result) Render() string {
	t := &metrics.Table{
		Title: fmt.Sprintf("Section 5: recovery-delay bound validation (K=%d hops, D_max=%v per hop, all within bound: %v)",
			r.Hops, time.Duration(r.DMax), r.AllBound),
		Columns: []string{"fail-pos", "backups", "backup-hit", "gamma", "bound", "dst-disruption", "msgs-lost"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("link %d", row.FailPos),
			fmt.Sprintf("%d", row.Backups),
			fmt.Sprintf("%v", row.BackupHit),
			fmt.Sprintf("%v", time.Duration(row.Gamma)),
			fmt.Sprintf("%v", time.Duration(row.Bound)),
			fmt.Sprintf("%v", time.Duration(row.DstDisrupt)),
			fmt.Sprintf("%d", row.MessagesLost),
		)
	}
	return t.String()
}

// SchemeRow is one scheme/failure-position measurement.
type SchemeRow struct {
	Scheme     bcpd.Scheme
	FailPos    int
	Gamma      sim.Duration // source recovery delay (data resumption)
	DstDisrupt sim.Duration
	Lost       uint64

	// Violations from the conformance checker. The Γ rule is disabled here
	// (the paper's bound is derived for scheme-3 timing), but the state
	// machine, claim, and traversal rules apply to every scheme.
	Violations []conformance.Violation
}

// SchemeComparisonResult compares the three channel-switching schemes of
// Figure 5 on recovery delay and destination disruption.
type SchemeComparisonResult struct {
	Hops int
	Rows []SchemeRow
}

// RunSchemeComparison measures schemes 1-3 with failures near the source,
// in the middle, and near the destination of an 8-hop torus connection.
func RunSchemeComparison(opts Options) SchemeComparisonResult {
	const hops = 8
	res := SchemeComparisonResult{Hops: hops}
	for _, scheme := range []bcpd.Scheme{bcpd.Scheme1, bcpd.Scheme2, bcpd.Scheme3} {
		for _, pos := range []int{0, hops / 2, hops - 1} {
			cfg := protocolTimingConfig()
			cfg.Scheme = scheme
			row := runSection5Trial(opts, cfg, 0, 1, pos, false)
			res.Rows = append(res.Rows, SchemeRow{
				Scheme:     scheme,
				FailPos:    pos,
				Gamma:      row.Gamma,
				DstDisrupt: row.DstDisrupt,
				Lost:       row.MessagesLost,
				Violations: row.Violations,
			})
		}
	}
	return res
}

// Render prints the scheme comparison.
func (r SchemeComparisonResult) Render() string {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Figure 5 schemes: recovery delay by failure position (K=%d hops)", r.Hops),
		Columns: []string{"scheme", "fail-pos", "gamma", "dst-disruption", "msgs-lost"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("scheme %d", row.Scheme),
			fmt.Sprintf("link %d", row.FailPos),
			fmt.Sprintf("%v", time.Duration(row.Gamma)),
			fmt.Sprintf("%v", time.Duration(row.DstDisrupt)),
			fmt.Sprintf("%d", row.Lost),
		)
	}
	return t.String()
}
