package routing

import (
	"sort"

	"github.com/rtcl/bcp/internal/topology"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst
// under c, in non-decreasing hop order, using Yen's algorithm. Unlike the
// disjoint-path searches, successive paths may overlap — useful for
// enumerating alternate backup candidates when a strictly disjoint path is
// infeasible or too long, and for the QoS-negotiation search over
// candidate routes.
func KShortestPaths(g *topology.Graph, src, dst topology.NodeID, k int, c Constraint) []topology.Path {
	if k <= 0 || src == dst {
		return nil
	}
	// One router serves every spur search: Yen's runs O(k·hops) shortest-path
	// queries, so the arena reuse matters here more than anywhere else.
	r := NewRouter(g)
	first, ok := r.ShortestPath(src, dst, c)
	if !ok {
		return nil
	}
	paths := []topology.Path{first}
	// Candidate pool, deduplicated by the path's link signature.
	type candidate struct {
		path topology.Path
		key  string
	}
	var pool []candidate
	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes()
		prevLinks := prev.Links()
		// For each spur node of the previous path, ban the link each
		// already-found path takes out of the shared root, and ban the
		// root's interior nodes, then search for a spur path.
		for i := 0; i < len(prevLinks); i++ {
			spur := prevNodes[i]
			rootLinks := prevLinks[:i]

			banned := make(map[topology.LinkID]struct{})
			for _, p := range paths {
				if sharesRoot(p, rootLinks) && p.Hops() > i {
					banned[p.Links()[i]] = struct{}{}
				}
			}
			rootNodes := make(map[topology.NodeID]struct{})
			for _, n := range prevNodes[:i] {
				rootNodes[n] = struct{}{}
			}

			spurC := c
			prevLinkOK, prevNodeOK := c.LinkAllowed, c.NodeAllowed
			spurC.LinkAllowed = func(l topology.LinkID) bool {
				if _, bad := banned[l]; bad {
					return false
				}
				return prevLinkOK == nil || prevLinkOK(l)
			}
			spurC.NodeAllowed = func(n topology.NodeID) bool {
				if _, bad := rootNodes[n]; bad {
					return false
				}
				return prevNodeOK == nil || prevNodeOK(n)
			}
			if spurC.MaxHops > 0 {
				spurC.MaxHops -= i
				if spurC.MaxHops <= 0 {
					continue
				}
			}
			spurPath, ok := r.ShortestPath(spur, dst, spurC)
			if !ok {
				continue
			}
			total := append(append([]topology.LinkID{}, rootLinks...), spurPath.Links()...)
			full, err := topology.NewPath(g, total)
			if err != nil {
				continue // root+spur formed a loop; skip
			}
			if c.MaxHops > 0 && full.Hops() > c.MaxHops {
				continue
			}
			key := pathKey(full)
			if !seen[key] {
				seen[key] = true
				pool = append(pool, candidate{path: full, key: key})
			}
		}
		if len(pool) == 0 {
			break
		}
		sort.SliceStable(pool, func(a, b int) bool { return pool[a].path.Hops() < pool[b].path.Hops() })
		paths = append(paths, pool[0].path)
		pool = pool[1:]
	}
	return paths
}

// pathKey builds a dedup signature from the link sequence.
func pathKey(p topology.Path) string {
	links := p.Links()
	b := make([]byte, 0, len(links)*4)
	for _, l := range links {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// sharesRoot reports whether p begins with exactly the given link prefix.
func sharesRoot(p topology.Path, root []topology.LinkID) bool {
	links := p.Links()
	if len(links) < len(root) {
		return false
	}
	for i, l := range root {
		if links[i] != l {
			return false
		}
	}
	return true
}
