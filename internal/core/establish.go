package core

import (
	"fmt"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Establishment is split into a read-only *plan* phase and a mutating
// *commit* phase. The plan phase routes the primary and every backup, runs
// the delay and spare-pool admission tests, and records the exact wiring the
// multiplexing engine would perform — without touching the plan. The commit
// phase replays the record: no routing, no Π decisions, no admission scans.
//
// The split is sound because one establishment's own mutations never feed
// back into its later decisions: the links a committed channel changes
// (dedicated bandwidth on the primary's links, spare growth and Π membership
// on each backup's links) are all excluded from every later search of the
// same connection, and the per-link admission probes of distinct backups
// touch disjoint links. So a plan computed against the unmutated state equals
// what the sequential route-commit-route-commit loop would compute — which
// is what makes the speculative EstablishBatch pipeline (batch.go) possible:
// planners run under the reader lock against a frozen plan, and a plan
// whose inputs did not change commits without any recomputation.
// (EstablishOnPaths keeps the old incremental path: caller-supplied paths
// need not be disjoint, so the argument above does not apply to it.)

// planBits is a link-id bitset recording which links a plan's routing
// predicate approved. Free bandwidth only shrinks during a batch, so an
// approval is the only answer that can rot; the committer rechecks exactly
// these links (batch.go) to decide whether a speculative plan is still the
// one sequential establishment would produce.
type planBits struct{ w []uint64 }

func (b *planBits) reset(numLinks int) {
	words := (numLinks + 63) / 64
	if cap(b.w) < words {
		b.w = make([]uint64, words)
		return
	}
	b.w = b.w[:words]
	clear(b.w)
}

func (b *planBits) set(i int) { b.w[i>>6] |= 1 << (uint(i) & 63) }

// pathPlan is a path held as raw link/node sequences in reusable buffers; a
// topology.Path is materialized only at commit time, once per admitted
// channel.
type pathPlan struct {
	links []topology.LinkID
	nodes []topology.NodeID
}

func (pp *pathPlan) set(g *topology.Graph, links []topology.LinkID) {
	pp.links = append(pp.links[:0], links...)
	n := len(links) + 1
	if cap(pp.nodes) < n {
		pp.nodes = make([]topology.NodeID, n)
	} else {
		pp.nodes = pp.nodes[:n]
	}
	pp.nodes[0] = g.Link(links[0]).From
	for i, l := range links {
		pp.nodes[i+1] = g.Link(l).To
	}
}

// linkWire records the admission probe's outcome for one backup on one link:
// which existing entries' Π sets gain the new backup (grow), which existing
// channels the new backup's own Π set lists (pi), the new entry's spare
// requirement, and the spare level the link must reach. Ranges index the
// owning connPlan's flat arenas so reusing a plan never reallocates them.
type linkWire struct {
	link             topology.LinkID
	growOff, growLen int32 // entry indexes in connPlan.growBuf
	piOff, piLen     int32 // channel ids in connPlan.piBuf
	req              float64
	need             float64
}

// backupPlan is one planned backup channel: its path, degree, threshold, and
// the per-link wiring record.
type backupPlan struct {
	path  pathPlan
	alpha int
	nu    float64
	wires []linkWire
}

// connPlan is a complete establishment decision: either a rejection (err set,
// nothing to commit — rejections mutate no state in either phase) or the
// full wiring record for a new D-connection. Plans are reused: the Manager
// keeps one for sequential establishment and pools them for batches.
type connPlan struct {
	src, dst topology.NodeID
	spec     rtchan.TrafficSpec
	degrees  []int
	err      error

	// seq is the batch state version the plan was computed against, and
	// strict marks decisions outside the monotone staleness rules (explicit
	// delay contracts, load-aware weights): a strict plan is only valid if
	// nothing at all was committed since seq. stable marks rejections that
	// depend on nothing but the request and the topology (src == dst, bad
	// bandwidth, disconnected endpoints) and so never go stale. See batch.go.
	seq       uint64
	strict    bool
	stable    bool
	consulted planBits

	prim     pathPlan
	backups  []backupPlan
	nBackups int

	growBuf []int32
	piBuf   []rtchan.ChannelID
}

// backupAt returns the i-th backup slot, growing the slice without discarding
// the recycled buffers of previously used slots.
func (p *connPlan) backupAt(i int) *backupPlan {
	if i < len(p.backups) {
		return &p.backups[i]
	}
	p.backups = append(p.backups, backupPlan{})
	return &p.backups[i]
}

// planContext bundles the per-worker machinery a plan needs: a routing
// engine, an exclusion set, a primary-path stamp, and a Π-decision memo.
// The Manager's own context (estCtx) wraps its writer-side scratch; batch
// planners lease pooled contexts so they never share mutable state.
type planContext struct {
	m      *Manager
	router *routing.Router
	excl   *routing.Exclusion
	marks  *topology.PathMarks
	dec    *muxDecisionScratch

	// Per-plan state read by the persistent feasibility closure, so the hot
	// routing constraint costs no allocation per establishment.
	bw           float64
	cur          *connPlan
	track        bool
	linkFeasible func(topology.LinkID) bool
}

func newPlanContext(m *Manager, r *routing.Router, excl *routing.Exclusion, marks *topology.PathMarks, dec *muxDecisionScratch) *planContext {
	pc := &planContext{m: m, router: r, excl: excl, marks: marks, dec: dec}
	pc.linkFeasible = func(l topology.LinkID) bool {
		if pc.m.plan.net.Free(l) < pc.bw-1e-9 {
			return false
		}
		if pc.track {
			pc.cur.consulted.set(int(l))
		}
		return true
	}
	return pc
}

// plan computes the full establishment decision for one request into p,
// read-only against the shared plan. Callers hold the manager's lock: the
// write side for sequential establishment, the read side for batch planners
// (every structure plan touches on the Manager is read-only or owned by pc).
// track records approved links into p.consulted for later revalidation.
func (pc *planContext) plan(p *connPlan, src, dst topology.NodeID, spec rtchan.TrafficSpec, degrees []int, track bool) {
	m := pc.m
	p.src, p.dst, p.spec = src, dst, spec
	p.degrees = append(p.degrees[:0], degrees...)
	p.err = nil
	p.strict = false
	p.stable = false
	p.nBackups = 0
	p.growBuf = p.growBuf[:0]
	p.piBuf = p.piBuf[:0]
	pc.cur = p
	pc.bw = spec.Bandwidth
	pc.track = track
	g := m.plan.net.Graph()
	if track {
		p.consulted.reset(g.NumLinks())
	}

	if src == dst {
		p.err = fmt.Errorf("core: src == dst (%d)", src)
		p.stable = true
		return
	}
	if spec.Bandwidth <= 0 {
		p.err = fmt.Errorf("core: non-positive bandwidth")
		p.stable = true
		return
	}
	base := pc.router.Distance(src, dst)
	if base < 0 {
		p.err = fmt.Errorf("core: %d and %d are disconnected", src, dst)
		p.stable = true
		return
	}

	primaryMax := base + spec.SlackHops
	c := routing.Constraint{MaxHops: primaryMax, TieBreak: m.plan.cfg.TieBreak, LinkAllowed: pc.linkFeasible}
	links, ok := pc.router.ShortestLinks(src, dst, c)
	if !ok {
		p.err = fmt.Errorf("core: no feasible primary path %d->%d within %d hops", src, dst, primaryMax)
		return
	}
	p.prim.set(g, links)
	if spec.DelayBound > 0 {
		// The analytic admission test reads the load of every channel on the
		// path, which later commits can change in either direction: strict.
		p.strict = true
		model := m.plan.cfg.DelayModel
		if model.ControlFrameSize == 0 {
			model = rtchan.DefaultDelayModel()
		}
		pPath := topology.NewPathUnchecked(g, p.prim.links, p.prim.nodes)
		if bound, ok := m.plan.net.DelayAdmission(pPath, spec, model); !ok {
			p.err = fmt.Errorf("core: delay admission failed for %d->%d: bound %v vs contract %v",
				src, dst, bound, spec.DelayBound)
			return
		}
	}
	if len(p.degrees) == 0 {
		return
	}

	// Stamp this connection's primary once: backup probes count each peer
	// primary's overlap with array loads, as decideMux does on the write side.
	pc.marks.SetComponents(g, p.prim.links, p.prim.nodes)
	excl := pc.excl.Reset()
	addExcluded(excl, &p.prim)
	for i, alpha := range p.degrees {
		bp := p.backupAt(i)
		bp.alpha = alpha
		bp.nu = reliability.NuForDegree(m.plan.cfg.Lambda, alpha)
		if !pc.routeBackupLinks(p, bp) {
			p.err = fmt.Errorf("core: no feasible disjoint path for backup %d of %d->%d", i+1, src, dst)
			return
		}
		if err := pc.probeBackup(p, bp); err != nil {
			p.err = fmt.Errorf("core: backup %d multiplexing: %w", i+1, err)
			return
		}
		p.nBackups = i + 1
		addExcluded(excl, &bp.path)
	}
}

// addExcluded excludes a planned path's components the way Exclusion.AddPath
// does: every link plus every interior node.
func addExcluded(excl *routing.Exclusion, pp *pathPlan) {
	for _, l := range pp.links {
		excl.AddLink(l)
	}
	for i := 1; i+1 < len(pp.nodes); i++ {
		excl.AddNode(pp.nodes[i])
	}
}

// routeBackupLinks routes one backup into bp.path, mirroring
// Manager.routeBackup over the planner's own engines.
func (pc *planContext) routeBackupLinks(p *connPlan, bp *backupPlan) bool {
	m := pc.m
	g := m.plan.net.Graph()
	feasible := routing.Constraint{TieBreak: m.plan.cfg.TieBreak, LinkAllowed: pc.linkFeasible}
	c := pc.excl.Constrain(feasible)
	if m.plan.cfg.BackupRouting == RouteMaxFlow {
		paths := pc.router.MaxDisjointPaths(p.src, p.dst, 1, c)
		if len(paths) == 0 {
			return false
		}
		bp.path.set(g, paths[0].Links())
		return true
	}
	if m.plan.cfg.BackupSlackHops >= 0 {
		// QoS bound relative to the shortest disjoint path, regardless of
		// current bandwidth availability (see Manager.routeBackup).
		unconstrained := pc.excl.Constrain(routing.Constraint{})
		if hops := pc.router.ShortestDistance(p.src, p.dst, unconstrained); hops >= 0 {
			c.MaxHops = hops + m.plan.cfg.BackupSlackHops
		}
	}
	if m.plan.cfg.BackupRouting == RouteLoadAware && len(p.prim.links) > 0 {
		// The load-aware weight reads every candidate link's spare pool, far
		// beyond what consulted-link tracking can revalidate: strict.
		p.strict = true
		ps := &prospectiveS{
			m:         m,
			marks:     pc.marks,
			primComps: 2*len(p.prim.links) + 1,
			s:         make(map[rtchan.ConnID]float64),
		}
		bw, nu := p.spec.Bandwidth, bp.nu
		w := func(l topology.LinkID) float64 {
			return 0.05*bw + m.prospectiveSpareIncrease(l, ps, bw, nu)
		}
		if links, ok := pc.router.MinCostLinks(p.src, p.dst, c, w); ok {
			bp.path.set(g, links)
			return true
		}
		// Fall through to shortest-path if the weighted search fails.
	}
	links, ok := pc.router.ShortestLinks(p.src, p.dst, c)
	if !ok {
		return false
	}
	bp.path.set(g, links)
	return true
}

// probeBackup runs the spare-pool admission probe for one routed backup,
// recording the wiring that commit will replay. It performs exactly the scan
// addBackupToLink would, without mutating anything.
func (pc *planContext) probeBackup(p *connPlan, bp *backupPlan) error {
	if cap(bp.wires) < len(bp.path.links) {
		bp.wires = make([]linkWire, 0, 2*len(bp.path.links))
	}
	bp.wires = bp.wires[:0]
	// Π decisions are link-independent per peer channel; memoize them across
	// this backup's links (the probe analogue of muxDec in addBackup).
	pc.dec.begin(0)
	for _, l := range bp.path.links {
		w, err := pc.probeLink(p, bp, l)
		if err != nil {
			return err
		}
		bp.wires = append(bp.wires, w)
	}
	return nil
}

// probeLink evaluates one link's admission scan read-only: Π decisions
// against every existing entry, the new entry's requirement, and the spare
// level the link must reach. The returned error is exactly what the
// sequential add would fail with. pc.dec must be begun for this backup and
// pc.marks stamped with the plan's primary.
func (pc *planContext) probeLink(p *connPlan, bp *backupPlan, l topology.LinkID) (linkWire, error) {
	m := pc.m
	lm := &m.plan.mux[l]
	bw := p.spec.Bandwidth
	w := linkWire{link: l, growOff: int32(len(p.growBuf)), piOff: int32(len(p.piBuf))}
	req := bw
	maxGrown := 0.0
	for ei := range lm.entries {
		e := &lm.entries[ei]
		newInE, eInNew, hit := pc.dec.lookup(e.ch.ID)
		if !hit {
			newInE, eInNew = pc.decide(e, bp.nu)
			pc.dec.store(e.ch.ID, newInE, eInNew)
		}
		if newInE {
			p.growBuf = append(p.growBuf, int32(ei))
			if g := e.req + bw; g > maxGrown {
				maxGrown = g
			}
		}
		if eInNew {
			p.piBuf = append(p.piBuf, e.ch.ID)
			req += e.ch.Bandwidth()
		}
	}
	w.growLen = int32(len(p.growBuf)) - w.growOff
	w.piLen = int32(len(p.piBuf)) - w.piOff
	w.req = req
	// What requiredSpare() would return after the wiring: the unchanged
	// entries' max, the grown entries' new requirements, and the new entry.
	need := lm.requiredSpareRO()
	if req > need {
		need = req
	}
	if maxGrown > need {
		need = maxGrown
	}
	w.need = need
	if need > lm.spare {
		if err := m.plan.net.SpareCheck(l, need); err != nil {
			return w, fmt.Errorf("core: link %d cannot grow spare to %g: %w", l, need, err)
		}
	}
	return w, nil
}

// decide is the planner's Π decision for one existing entry against the
// backup being planned, identical in formula to decideMux. The planned
// connection does not exist yet, so the same-connection case cannot arise:
// backups of one plan never share links (disjointness is enforced while
// planning, unlike EstablishOnPaths).
func (pc *planContext) decide(e *muxEntry, newNu float64) (newInE, eInNew bool) {
	pe := e.conn.Primary
	if pe == nil {
		// Conservative treatment for a momentarily primary-less connection,
		// as in mutualExclusion.
		return true, true
	}
	sc := pc.marks.Shared(pe.Path)
	s := pc.m.simSRO(pe.Path.NumComponents(), 2*len(pc.cur.prim.links)+1, sc)
	return muxDecision(s, e.nu, newNu, pc.m.plan.cfg.DisablePiDegreeRestriction)
}

// planOnPaths re-plans p's backups over explicitly chosen, mutually disjoint
// paths at a uniform degree, keeping the already-planned primary. It is the
// probe-only core of EstablishWithPr's negotiation loop: candidates are
// routed once, and each (count, degree) attempt costs only admission probes.
// Reports whether every backup fits; p is left committable on success.
func (pc *planContext) planOnPaths(p *connPlan, paths []topology.Path, alpha int) bool {
	m := pc.m
	g := m.plan.net.Graph()
	p.err = nil
	p.nBackups = 0
	p.growBuf = p.growBuf[:0]
	p.piBuf = p.piBuf[:0]
	p.degrees = p.degrees[:0]
	pc.cur = p
	pc.bw = p.spec.Bandwidth
	pc.track = false
	pc.marks.SetComponents(g, p.prim.links, p.prim.nodes)
	nu := reliability.NuForDegree(m.plan.cfg.Lambda, alpha)
	for i, path := range paths {
		bp := p.backupAt(i)
		bp.alpha = alpha
		bp.nu = nu
		bp.path.set(g, path.Links())
		if err := pc.probeBackup(p, bp); err != nil {
			return false
		}
		p.nBackups = i + 1
		p.degrees = append(p.degrees, alpha)
	}
	return true
}

// commitPlan applies a plan under the write lock: it materializes the
// channels and replays the recorded wiring. No routing and no admission
// decisions happen here — for a plan computed (or revalidated) under the
// same lock, the replay is exact. Rejections commit by returning the
// planned error; they mutate nothing and consume no ids, exactly like the
// sequential loop's all-or-nothing rejection.
func (m *Manager) commitPlan(p *connPlan) (*DConnection, error) {
	if p.err != nil {
		return nil, p.err
	}
	g := m.plan.net.Graph()
	conn := &DConnection{ID: m.nextConn, Src: p.src, Dst: p.dst, Spec: p.spec}
	pPath := topology.NewPathUnchecked(g, p.prim.links, p.prim.nodes)
	prim, err := m.plan.net.Establish(conn.ID, rtchan.RolePrimary, 0, pPath, p.spec)
	if err != nil {
		// Unreachable after a successful plan: the routing predicate
		// (free >= bw-1e-9) is stricter than CanReserve's tolerance. Kept as
		// a defensive guard.
		return nil, fmt.Errorf("core: primary admission: %w", err)
	}
	conn.Primary = prim
	undo := func() {
		for _, b := range conn.Backups {
			m.removeBackup(b)
			_ = m.plan.net.Teardown(b.ID)
		}
		_ = m.plan.net.Teardown(prim.ID)
		// The ID is not consumed on rollback: the next attempt reuses it with
		// a different primary, so cached S values must not survive.
		m.plan.scache.bump(conn.ID)
	}
	nb := p.nBackups
	if nb > 0 {
		conn.Backups = make([]*rtchan.Channel, 0, nb)
		conn.Degrees = make([]int, 0, nb)
	}
	// All planned Π sets share one backing array. Each slice is capacity-
	// capped to its planned length, so a later establishment appending to an
	// entry's Π reallocates that slice instead of clobbering its neighbor.
	var piAll []rtchan.ChannelID
	if len(p.piBuf) > 0 {
		piAll = make([]rtchan.ChannelID, len(p.piBuf))
		copy(piAll, p.piBuf)
	}
	for i := 0; i < nb; i++ {
		bp := &p.backups[i]
		bPath := topology.NewPathUnchecked(g, bp.path.links, bp.path.nodes)
		bch, err := m.plan.net.Establish(conn.ID, rtchan.RoleBackup, i+1, bPath, p.spec)
		if err != nil {
			undo()
			return nil, fmt.Errorf("core: backup %d admission: %w", i+1, err)
		}
		if err := m.commitBackupWires(p, bp, conn, bch, piAll); err != nil {
			_ = m.plan.net.Teardown(bch.ID)
			undo()
			return nil, fmt.Errorf("core: backup %d multiplexing: %w", i+1, err)
		}
		conn.Backups = append(conn.Backups, bch)
		conn.Degrees = append(conn.Degrees, bp.alpha)
	}
	m.plan.conns[conn.ID] = conn
	m.plan.order = append(m.plan.order, conn.ID)
	m.nextConn++
	return conn, nil
}

// commitBackupWires replays one backup's recorded wiring onto its links. On
// the (defensively handled) SetSpare failure it rolls its own links back and
// leaves the rest to the caller, mirroring addBackupToLink + addBackup.
func (m *Manager) commitBackupWires(p *connPlan, bp *backupPlan, conn *DConnection, bch *rtchan.Channel, piAll []rtchan.ChannelID) error {
	bw := bch.Bandwidth()
	for wi := range bp.wires {
		w := &bp.wires[wi]
		lm := &m.plan.mux[w.link]
		for _, ei := range p.growBuf[w.growOff : w.growOff+w.growLen] {
			e := &lm.entries[ei]
			e.pi = append(e.pi, bch.ID)
			e.req += bw
			lm.noteReq(e.req)
		}
		entry := muxEntry{ch: bch, conn: conn, alpha: bp.alpha, nu: bp.nu, req: w.req}
		if w.piLen > 0 {
			entry.pi = piAll[w.piOff : w.piOff+w.piLen : w.piOff+w.piLen]
		}
		lm.entries = append(lm.entries, entry)
		lm.noteReq(entry.req)
		need := lm.requiredSpare()
		if need > lm.spare {
			if err := m.plan.net.SetSpare(w.link, need); err != nil {
				// Unreachable for a plan probed under this lock; undo this
				// link and the already-wired prefix.
				lm.removeAt(len(lm.entries) - 1)
				for _, ei := range p.growBuf[w.growOff : w.growOff+w.growLen] {
					e := &lm.entries[ei]
					e.piRemove(bch.ID)
					e.req -= bw
				}
				lm.reqDirty = true
				for _, u := range bp.wires[:wi] {
					m.removeBackupFromLink(u.link, bch)
				}
				return fmt.Errorf("core: link %d cannot grow spare to %g: %w", w.link, need, err)
			}
			lm.spare = need
		}
	}
	return nil
}
