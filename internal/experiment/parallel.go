package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rtcl/bcp/internal/core"
)

// workerCount resolves Options.Workers to an actual pool size.
func (o Options) workerCount() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// sweepJob addresses one trial in a flattened batch of failure lists.
type sweepJob struct {
	set, idx int
}

// viewable is satisfied by *core.Manager: a trialer that can hand out cheap
// per-goroutine read views over its shared plan.
type viewable interface {
	NewTrialView() *core.TrialView
}

// workerTrialer returns the Trialer one pool worker should call. A
// *core.Manager is wrapped in a per-worker TrialView (private scratch over
// the shared plan); any other trialer — e.g. the brute-force baseline, whose
// Trial keeps all mutable state on the stack — is shared as-is.
func workerTrialer(t Trialer) Trialer {
	if v, ok := t.(viewable); ok {
		return v.NewTrialView()
	}
	return t
}

// sweepMany evaluates several failure lists against one shared trialer,
// returning one SweepResult per list. With opts.Workers > 1 the trials are
// fanned out over a worker pool; every worker trials against the same
// NetworkPlan through its own TrialView (per-goroutine scratch, shared
// read-only state), so the pool pays no per-worker establishment cost.
// Results are stored by trial index and folded in list order, so the output
// is bit-identical to a serial run.
//
// OrderRandom sweeps parallelize too: each trial derives its shuffle rng
// from (Options.Seed, trial index) — see Options.trialRNG — so the shuffle
// is a function of the trial alone, not of the execution schedule.
func sweepMany(t Trialer, sets [][]core.Failure, opts Options) []SweepResult {
	workers := opts.workerCount()
	total := 0
	for _, fs := range sets {
		total += len(fs)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		out := make([]SweepResult, len(sets))
		for i, fs := range sets {
			out[i] = Sweep(t, fs, opts)
		}
		return out
	}

	jobs := make([]sweepJob, 0, total)
	stats := make([][]core.RecoveryStats, len(sets))
	for si, fs := range sets {
		stats[si] = make([]core.RecoveryStats, len(fs))
		for fi := range fs {
			jobs = append(jobs, sweepJob{set: si, idx: fi})
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wt := workerTrialer(t)
			for {
				j := next.Add(1) - 1
				if j >= int64(len(jobs)) {
					return
				}
				job := jobs[j]
				stats[job.set][job.idx] = wt.Trial(sets[job.set][job.idx], opts.Order, opts.trialRNG(job.idx))
			}
		}()
	}
	wg.Wait()

	out := make([]SweepResult, len(sets))
	for i := range sets {
		out[i] = foldStats(stats[i])
	}
	return out
}

// SweepParallel evaluates one failure list against a shared trialer with
// opts.Workers pool workers (see sweepMany). It is the parallel counterpart
// of Sweep and returns the identical result for every worker count.
func SweepParallel(t Trialer, failures []core.Failure, opts Options) SweepResult {
	return sweepMany(t, [][]core.Failure{failures}, opts)[0]
}
