// Package workload generates connection-request workloads for the
// evaluation: the paper's homogeneous all-pairs load, inhomogeneous
// variants (hot-spots, mixed bandwidths, §7.1), and dynamic churn with
// Poisson arrivals and exponential holding times — the setting the paper
// argues distinguishes BCP from design-time VP-restoration schemes (§8).
package workload

import (
	"math/rand"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// Request is one D-connection request.
type Request struct {
	Src, Dst topology.NodeID
	Spec     rtchan.TrafficSpec
	Degrees  []int

	// Arrival and Holding position the request in time for dynamic
	// workloads; static workloads leave them zero.
	Arrival sim.Duration
	Holding sim.Duration
}

// AllPairs reproduces the paper's static workload: one request per ordered
// node pair, in ascending order, identical spec and backup degrees.
func AllPairs(g *topology.Graph, spec rtchan.TrafficSpec, degrees []int) []Request {
	n := g.NumNodes()
	out := make([]Request, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			out = append(out, Request{
				Src: topology.NodeID(s), Dst: topology.NodeID(d),
				Spec: spec, Degrees: degrees,
			})
		}
	}
	return out
}

// HotSpotConfig parameterizes the inhomogeneous workload of §7.1.
type HotSpotConfig struct {
	// Requests is the number of connection requests to generate.
	Requests int
	// HotNodes receive a disproportionate share of destinations.
	HotNodes []topology.NodeID
	// HotFraction of requests terminate at a hot node.
	HotFraction float64
	// HeavyFraction of requests use HeavyBandwidth instead of the spec's.
	HeavyFraction  float64
	HeavyBandwidth float64
	// Spec is the base traffic contract.
	Spec rtchan.TrafficSpec
	// Degrees are the backup degrees of every request.
	Degrees []int
}

// HotSpot generates the inhomogeneous workload. Deterministic per rng seed.
func HotSpot(g *topology.Graph, cfg HotSpotConfig, rng *rand.Rand) []Request {
	if len(cfg.HotNodes) == 0 || cfg.Requests <= 0 {
		return nil
	}
	n := g.NumNodes()
	out := make([]Request, 0, cfg.Requests)
	for len(out) < cfg.Requests {
		src := topology.NodeID(rng.Intn(n))
		var dst topology.NodeID
		if rng.Float64() < cfg.HotFraction {
			dst = cfg.HotNodes[rng.Intn(len(cfg.HotNodes))]
		} else {
			dst = topology.NodeID(rng.Intn(n))
		}
		if src == dst {
			continue
		}
		spec := cfg.Spec
		if cfg.HeavyFraction > 0 && rng.Float64() < cfg.HeavyFraction {
			spec.Bandwidth = cfg.HeavyBandwidth
		}
		out = append(out, Request{Src: src, Dst: dst, Spec: spec, Degrees: cfg.Degrees})
	}
	return out
}

// Establish applies a static workload to a manager, returning established
// and rejected counts.
func Establish(m *core.Manager, reqs []Request) (established, rejected int) {
	for _, r := range reqs {
		if _, err := m.Establish(r.Src, r.Dst, r.Spec, r.Degrees); err != nil {
			rejected++
		} else {
			established++
		}
	}
	return established, rejected
}

// EstablishBatch applies a static workload through the speculative batch
// pipeline (core.EstablishBatch): requests are committed in slice order, so
// counts and resulting network state are identical to Establish, with the
// planning work overlapped across workers goroutines.
func EstablishBatch(m *core.Manager, reqs []Request, workers int) (established, rejected int) {
	batch := make([]core.EstablishRequest, len(reqs))
	for i, r := range reqs {
		batch[i] = core.EstablishRequest{Src: r.Src, Dst: r.Dst, Spec: r.Spec, Degrees: r.Degrees}
	}
	res := m.EstablishBatch(batch, core.BatchOptions{Workers: workers})
	return res.Established, res.Rejected
}

// DynamicConfig parameterizes Poisson churn.
type DynamicConfig struct {
	// ArrivalRate is the request arrival rate (per second).
	ArrivalRate float64
	// MeanHolding is the mean connection lifetime.
	MeanHolding sim.Duration
	// Duration bounds the arrival process.
	Duration sim.Duration
	// Spec and Degrees apply to every request.
	Spec    rtchan.TrafficSpec
	Degrees []int
}

// Dynamic generates a churn trace: exponential interarrivals and holding
// times, endpoints uniform over distinct node pairs.
func Dynamic(g *topology.Graph, cfg DynamicConfig, rng *rand.Rand) []Request {
	if cfg.ArrivalRate <= 0 || cfg.Duration <= 0 {
		return nil
	}
	n := g.NumNodes()
	var out []Request
	at := sim.Duration(0)
	for {
		gap := sim.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second))
		at += gap
		if at > cfg.Duration {
			return out
		}
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		hold := sim.Duration(rng.ExpFloat64() * float64(cfg.MeanHolding))
		out = append(out, Request{
			Src: src, Dst: dst, Spec: cfg.Spec, Degrees: cfg.Degrees,
			Arrival: at, Holding: hold,
		})
	}
}

// ChurnStats summarizes a dynamic run.
type ChurnStats struct {
	Established int
	Rejected    int
	Departed    int
	PeakLoad    float64
	PeakSpare   float64
}

// RunChurn schedules a dynamic workload on a simulation engine against a
// manager: each request establishes on arrival (counting rejections) and
// tears down after its holding time. Invariants are the caller's to check
// afterwards; peak load/spare are tracked at every event.
func RunChurn(eng *sim.Engine, m *core.Manager, reqs []Request) *ChurnStats {
	stats := &ChurnStats{}
	sample := func() {
		if l := m.Network().NetworkLoad(); l > stats.PeakLoad {
			stats.PeakLoad = l
		}
		if s := m.Network().SpareFraction(); s > stats.PeakSpare {
			stats.PeakSpare = s
		}
	}
	for _, r := range reqs {
		r := r
		eng.Schedule(r.Arrival, func() {
			conn, err := m.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
			if err != nil {
				stats.Rejected++
				return
			}
			stats.Established++
			sample()
			eng.Schedule(r.Holding, func() {
				if m.Connection(conn.ID) != nil {
					if err := m.Teardown(conn.ID); err == nil {
						stats.Departed++
					}
				}
				sample()
			})
		})
	}
	return stats
}
