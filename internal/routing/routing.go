// Package routing provides the path-selection algorithms used to establish
// primary and backup channels: constrained breadth-first shortest paths,
// weighted shortest paths, and disjoint path search.
//
// The paper routes channels with a "sequential shortest-path search": the
// primary is routed on a shortest feasible path, then each backup on a
// shortest feasible path that avoids all components of the connection's
// earlier channels. Feasibility (admission) is expressed here as caller
// supplied predicates over links and nodes, so the same search serves both
// the unconstrained distance computation and the bandwidth-constrained one.
package routing

import (
	"math/rand"

	"github.com/rtcl/bcp/internal/topology"
)

// Constraint restricts a path search.
//
// LinkAllowed and NodeAllowed may be nil, meaning unrestricted. NodeAllowed
// is consulted for interior nodes only: the search always allows the source
// and destination themselves (the channels of one D-connection necessarily
// share their end nodes).
//
// MaxHops of 0 means unbounded.
type Constraint struct {
	MaxHops     int
	LinkAllowed func(topology.LinkID) bool
	NodeAllowed func(topology.NodeID) bool

	// TieBreak, if non-nil, randomizes the choice among equally short
	// predecessors during path reconstruction. A nil TieBreak selects the
	// lowest link id, which is deterministic but concentrates traffic on a
	// torus; experiments pass a seeded RNG to spread load like the paper's
	// (unspecified) tie-breaking evidently does.
	TieBreak *rand.Rand
}

func (c Constraint) linkOK(l topology.LinkID) bool {
	return c.LinkAllowed == nil || c.LinkAllowed(l)
}

func (c Constraint) nodeOK(n topology.NodeID) bool {
	return c.NodeAllowed == nil || c.NodeAllowed(n)
}

// Distance returns the unconstrained hop distance from src to dst, or -1 if
// unreachable. Used to evaluate the paper's QoS rule: a channel meets its
// end-to-end delay requirement iff its path is at most 2 hops longer than
// the shortest possible path.
func Distance(g *topology.Graph, src, dst topology.NodeID) int {
	d := bfs(g, src, Constraint{}, dst)
	return d
}

// bfs runs a breadth-first search from src under c, returning the distance
// to target (-1 if unreachable). If target is topology.NoNode the search
// covers the whole reachable set and returns 0.
func bfs(g *topology.Graph, src topology.NodeID, c Constraint, target topology.NodeID) int {
	dist := distSlice(g)
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == target {
			return dist[n]
		}
		if c.MaxHops > 0 && dist[n] >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(n) {
			if !c.linkOK(l) {
				continue
			}
			to := g.Link(l).To
			if dist[to] >= 0 {
				continue
			}
			if to != target && !c.nodeOK(to) {
				continue
			}
			dist[to] = dist[n] + 1
			queue = append(queue, to)
		}
	}
	if target == topology.NoNode {
		return 0
	}
	return -1
}

func distSlice(g *topology.Graph) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	return dist
}

// ShortestPath returns a shortest path from src to dst satisfying c, and
// whether one exists.
func ShortestPath(g *topology.Graph, src, dst topology.NodeID, c Constraint) (topology.Path, bool) {
	if src == dst {
		return topology.Path{}, false
	}
	// Forward BFS computing distances from src.
	dist := distSlice(g)
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			break
		}
		if c.MaxHops > 0 && dist[n] >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(n) {
			if !c.linkOK(l) {
				continue
			}
			to := g.Link(l).To
			if dist[to] >= 0 {
				continue
			}
			if to != dst && !c.nodeOK(to) {
				continue
			}
			dist[to] = dist[n] + 1
			queue = append(queue, to)
		}
	}
	if dist[dst] < 0 {
		return topology.Path{}, false
	}
	// Backtrack from dst, at each step choosing an in-link whose tail is one
	// hop closer to src. Randomized tie-breaking when c.TieBreak is set.
	links := make([]topology.LinkID, dist[dst])
	cur := dst
	for d := dist[dst]; d > 0; d-- {
		var candidates []topology.LinkID
		for _, l := range g.In(cur) {
			if !c.linkOK(l) {
				continue
			}
			from := g.Link(l).From
			if dist[from] != d-1 {
				continue
			}
			if from != src && !c.nodeOK(from) {
				continue
			}
			if c.TieBreak == nil {
				// Deterministic: lowest link id wins; take the first and
				// keep scanning only to preserve lowest-id semantics.
				if candidates == nil || l < candidates[0] {
					candidates = []topology.LinkID{l}
				}
				continue
			}
			candidates = append(candidates, l)
		}
		choice := candidates[0]
		if c.TieBreak != nil && len(candidates) > 1 {
			choice = candidates[c.TieBreak.Intn(len(candidates))]
		}
		links[d-1] = choice
		cur = g.Link(choice).From
	}
	p, err := topology.NewPath(g, links)
	if err != nil {
		// BFS trees cannot produce discontiguous or cyclic paths.
		panic("routing: internal error: " + err.Error())
	}
	return p, true
}

// Exclusion accumulates components to avoid, for sequential disjoint routing.
type Exclusion struct {
	links map[topology.LinkID]struct{}
	nodes map[topology.NodeID]struct{}
}

// NewExclusion returns an empty exclusion set.
func NewExclusion() *Exclusion {
	return &Exclusion{
		links: make(map[topology.LinkID]struct{}),
		nodes: make(map[topology.NodeID]struct{}),
	}
}

// AddPath excludes every component of p: all its simplex links and all its
// interior nodes. Reverse-direction links are distinct components in the
// paper's failure model (a simplex link crashes independently), so they are
// not excluded — though a backup can rarely use them anyway, since their
// endpoints are excluded interior nodes.
func (e *Exclusion) AddPath(p topology.Path) {
	for _, l := range p.Links() {
		e.links[l] = struct{}{}
	}
	for _, n := range p.InteriorNodes() {
		e.nodes[n] = struct{}{}
	}
}

// AddLink excludes a single link (not its reverse).
func (e *Exclusion) AddLink(l topology.LinkID) { e.links[l] = struct{}{} }

// AddNode excludes a single node.
func (e *Exclusion) AddNode(n topology.NodeID) { e.nodes[n] = struct{}{} }

// LinkExcluded reports whether l is excluded.
func (e *Exclusion) LinkExcluded(l topology.LinkID) bool {
	_, bad := e.links[l]
	return bad
}

// NodeExcluded reports whether n is excluded.
func (e *Exclusion) NodeExcluded(n topology.NodeID) bool {
	_, bad := e.nodes[n]
	return bad
}

// Constrain merges the exclusion into an existing constraint, returning a
// new constraint that also avoids the excluded components.
func (e *Exclusion) Constrain(c Constraint) Constraint {
	prevLink, prevNode := c.LinkAllowed, c.NodeAllowed
	c.LinkAllowed = func(l topology.LinkID) bool {
		if e.LinkExcluded(l) {
			return false
		}
		return prevLink == nil || prevLink(l)
	}
	c.NodeAllowed = func(n topology.NodeID) bool {
		if e.NodeExcluded(n) {
			return false
		}
		return prevNode == nil || prevNode(n)
	}
	return c
}

// SequentialDisjointPaths implements the paper's routing discipline: it
// returns up to count paths from src to dst, each a shortest path under c
// avoiding all components (links, their reverses, and interior nodes) of the
// previously found ones. Fewer than count paths are returned when the
// residual graph disconnects. This greedy method can miss disjoint path sets
// that a flow-based method would find; see MaxDisjointPaths for the
// flow-based alternative.
func SequentialDisjointPaths(g *topology.Graph, src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	var paths []topology.Path
	excl := NewExclusion()
	for i := 0; i < count; i++ {
		cc := excl.Constrain(c)
		p, ok := ShortestPath(g, src, dst, cc)
		if !ok {
			break
		}
		paths = append(paths, p)
		excl.AddPath(p)
	}
	return paths
}
