package wire

import (
	"encoding/binary"
	"fmt"
)

// Datagram envelope for live transports (UDP): when BCP traffic leaves the
// in-process world, every message — RCC control frame, data message,
// heartbeat — travels as one datagram of
//
//	[kind u8][link u32][payload...]
//
// where link is the simplex topology.LinkID the message logically traverses
// (live daemons share the topology, so the id is meaningful on both ends)
// and the payload encoding depends on kind. Control frames reuse the Frame
// encoding unchanged; heartbeats have no payload.

// Datagram kinds.
const (
	DgramFrame     uint8 = 1 // payload: one marshaled Frame
	DgramData      uint8 = 2 // payload: one DataMsg
	DgramHeartbeat uint8 = 3 // no payload
)

// dgramHeaderSize is kind + link.
const dgramHeaderSize = 1 + 4

// AppendDatagramHeader appends the envelope header for a message on the
// given link.
func AppendDatagramHeader(b []byte, kind uint8, link uint32) []byte {
	b = append(b, kind)
	return binary.BigEndian.AppendUint32(b, link)
}

// ParseDatagramHeader splits a received datagram into its kind, link, and
// payload.
func ParseDatagramHeader(b []byte) (kind uint8, link uint32, payload []byte, err error) {
	if len(b) < dgramHeaderSize {
		return 0, 0, nil, fmt.Errorf("wire: datagram truncated: %d bytes", len(b))
	}
	kind = b[0]
	if kind < DgramFrame || kind > DgramHeartbeat {
		return 0, 0, nil, fmt.Errorf("wire: unknown datagram kind %d", kind)
	}
	return kind, binary.BigEndian.Uint32(b[1:5]), b[dgramHeaderSize:], nil
}

// DataMsg is the on-wire form of one real-time data message. SentNanos
// carries the sender's runtime clock so the receiver can measure transit
// latency (meaningful when both daemons share a clock — the in-process live
// harness does).
type DataMsg struct {
	Conn      int64
	Channel   int64
	Seq       uint64
	SentNanos int64
}

// dataMsgSize is the encoded size of a DataMsg.
const dataMsgSize = 8 * 4

// Size returns the encoded size in bytes.
func (m DataMsg) Size() int { return dataMsgSize }

// AppendTo appends the encoded message.
func (m DataMsg) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(m.Conn))
	b = binary.BigEndian.AppendUint64(b, uint64(m.Channel))
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	return binary.BigEndian.AppendUint64(b, uint64(m.SentNanos))
}

// ParseDataMsg decodes one DataMsg, rejecting trailing garbage.
func ParseDataMsg(b []byte) (DataMsg, error) {
	if len(b) != dataMsgSize {
		return DataMsg{}, fmt.Errorf("wire: data message of %d bytes, want %d", len(b), dataMsgSize)
	}
	return DataMsg{
		Conn:      int64(binary.BigEndian.Uint64(b[0:8])),
		Channel:   int64(binary.BigEndian.Uint64(b[8:16])),
		Seq:       binary.BigEndian.Uint64(b[16:24]),
		SentNanos: int64(binary.BigEndian.Uint64(b[24:32])),
	}, nil
}
