package routing

import (
	"testing"

	"github.com/rtcl/bcp/internal/topology"
)

func TestKShortestBasic(t *testing.T) {
	g := topology.NewMesh(3, 3, 10)
	// 0-1-2 / 3-4-5 / 6-7-8: from 0 to 8 there are six 4-hop paths.
	paths := KShortestPaths(g, 0, 8, 6, Constraint{})
	if len(paths) != 6 {
		t.Fatalf("got %d paths, want 6", len(paths))
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if p.Hops() != 4 {
			t.Fatalf("path %v has %d hops, want 4", p, p.Hops())
		}
		if p.Source() != 0 || p.Destination() != 8 {
			t.Fatal("wrong endpoints")
		}
		if seen[p.String()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.String()] = true
	}
	// The 7th path must be longer.
	paths = KShortestPaths(g, 0, 8, 7, Constraint{})
	if len(paths) != 7 || paths[6].Hops() <= 4 {
		t.Fatalf("7th path: %v", paths)
	}
}

func TestKShortestOrdering(t *testing.T) {
	g := topology.NewTorus(4, 4, 10)
	paths := KShortestPaths(g, 0, 5, 12, Constraint{})
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Hops() < paths[i-1].Hops() {
			t.Fatalf("paths out of order: %d then %d hops", paths[i-1].Hops(), paths[i].Hops())
		}
	}
}

func TestKShortestRespectsConstraints(t *testing.T) {
	g := topology.NewMesh(3, 3, 10)
	ban := g.LinkBetween(0, 1)
	c := Constraint{
		MaxHops:     4,
		LinkAllowed: func(l topology.LinkID) bool { return l != ban },
	}
	paths := KShortestPaths(g, 0, 8, 10, c)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range paths {
		if p.ContainsLink(ban) {
			t.Fatalf("path %v uses banned link", p)
		}
		if p.Hops() > 4 {
			t.Fatalf("path %v exceeds hop bound", p)
		}
	}
	// Banning 0->1 halves the 4-hop paths: only those via 0->3 remain (3).
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
}

func TestKShortestSinglePathGraph(t *testing.T) {
	g := topology.NewLine(5, 10)
	paths := KShortestPaths(g, 0, 4, 5, Constraint{})
	if len(paths) != 1 {
		t.Fatalf("line graph should yield exactly 1 path, got %d", len(paths))
	}
}

func TestKShortestLoopless(t *testing.T) {
	g := topology.NewTorus(4, 4, 10)
	for _, p := range KShortestPaths(g, 0, 10, 20, Constraint{}) {
		nodes := map[topology.NodeID]bool{}
		for _, n := range p.Nodes() {
			if nodes[n] {
				t.Fatalf("path %v revisits node %d", p, n)
			}
			nodes[n] = true
		}
	}
}

func TestKShortestDegenerate(t *testing.T) {
	g := topology.NewLine(3, 10)
	if got := KShortestPaths(g, 0, 0, 3, Constraint{}); got != nil {
		t.Fatal("src==dst should yield nothing")
	}
	if got := KShortestPaths(g, 0, 2, 0, Constraint{}); got != nil {
		t.Fatal("k=0 should yield nothing")
	}
}

func BenchmarkKShortestTorus(b *testing.B) {
	g := topology.NewTorus(8, 8, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := KShortestPaths(g, 0, 36, 10, Constraint{}); len(got) != 10 {
			b.Fatalf("got %d", len(got))
		}
	}
}
