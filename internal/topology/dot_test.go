package topology

import (
	"strings"
	"testing"
)

func TestWriteDotBasic(t *testing.T) {
	g := NewRing(4, 10)
	var b strings.Builder
	if err := g.WriteDot(&b, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`graph "ring-4"`, "0 -- 1", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Duplex pairs collapse: exactly 4 edges for the 4-cycle.
	if got := strings.Count(out, " -- "); got != 4 {
		t.Fatalf("edges = %d, want 4:\n%s", got, out)
	}
}

func TestWriteDotHighlightsAndFailures(t *testing.T) {
	g := NewMesh(3, 3, 10)
	p, _ := PathBetween(g, []NodeID{0, 1, 2})
	var b strings.Builder
	err := g.WriteDot(&b, DotOptions{
		HighlightPaths: []Path{p},
		FailedLinks:    []LinkID{g.LinkBetween(3, 4)},
		FailedNodes:    []NodeID{8},
		LinkLabels: func(l LinkID) string {
			if l == g.LinkBetween(0, 1) {
				return "1/0/10"
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"color=blue", "penwidth=2", "color=red", "style=dashed", `label="1/0/10"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDotDirectedFallback(t *testing.T) {
	g := NewGraph("oneway", 2)
	if _, err := g.AddLink(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := g.WriteDot(&b, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0 -> 1") {
		t.Fatalf("one-way link not directed:\n%s", b.String())
	}
}
