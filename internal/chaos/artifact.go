package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Artifact is a replayable failure record: the (usually shrunk) spec plus
// what went wrong when it ran. Written as indented JSON so reproducers can
// be read, diffed, and checked in as golden regression scenarios.
type Artifact struct {
	// Spec replays the failure: `bcpchaos -replay <file>` or
	// ReplayArtifact in tests.
	Spec Spec `json:"spec"`
	// Violations observed when Spec last ran.
	Violations []string `json:"violations"`
	// Digest of the failing episode's event stream.
	Digest string `json:"digest"`
	// Note records provenance (e.g. "shrunk from seed 42 episode 17 in 83
	// probe runs").
	Note string `json:"note,omitempty"`
}

// WriteArtifact serializes a to path, creating parent directories.
func WriteArtifact(path string, a Artifact) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("chaos: artifact dir: %w", err)
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: artifact marshal: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("chaos: artifact write: %w", err)
	}
	return nil
}

// ReadArtifact loads an artifact written by WriteArtifact.
func ReadArtifact(path string) (Artifact, error) {
	var a Artifact
	b, err := os.ReadFile(path)
	if err != nil {
		return a, fmt.Errorf("chaos: artifact read: %w", err)
	}
	if err := json.Unmarshal(b, &a); err != nil {
		return a, fmt.Errorf("chaos: artifact parse %s: %w", path, err)
	}
	return a, nil
}

// ReplayArtifact re-runs an artifact's spec and returns the fresh result.
// Replay of a checked-in reproducer for a fixed bug should come back clean;
// replay with the bug re-introduced (Sabotage) should fail again.
func ReplayArtifact(a Artifact, opts RunOptions) (Result, error) {
	return RunEpisode(a.Spec, opts)
}
