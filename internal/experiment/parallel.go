package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rtcl/bcp/internal/core"
)

// workerCount resolves Options.Workers to an actual pool size.
func (o Options) workerCount() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// sweepJob addresses one trial in a flattened batch of failure lists.
type sweepJob struct {
	set, idx int
}

// sweepMany evaluates several failure lists against one logical trialer,
// returning one SweepResult per list. With opts.Workers > 1 the trials are
// fanned out over a worker pool; every worker calls build() for a private
// Trialer, because a Manager's Trial reuses per-manager scratch buffers and
// must not run concurrently with itself. Establishment is deterministic (no
// randomized tie-breaking in the evaluation setups), so each worker's build
// reaches identical state, and results are stored by trial index and folded
// in list order — the output is bit-identical to a serial run.
//
// OrderRandom sweeps parallelize too: each trial derives its shuffle rng
// from (Options.Seed, trial index) — see Options.trialRNG — so the shuffle
// is a function of the trial alone, not of the execution schedule.
func sweepMany(build func() Trialer, sets [][]core.Failure, opts Options) []SweepResult {
	workers := opts.workerCount()
	total := 0
	for _, fs := range sets {
		total += len(fs)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		t := build()
		out := make([]SweepResult, len(sets))
		for i, fs := range sets {
			out[i] = Sweep(t, fs, opts)
		}
		return out
	}

	jobs := make([]sweepJob, 0, total)
	stats := make([][]core.RecoveryStats, len(sets))
	for si, fs := range sets {
		stats[si] = make([]core.RecoveryStats, len(fs))
		for fi := range fs {
			jobs = append(jobs, sweepJob{set: si, idx: fi})
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := build()
			for {
				j := next.Add(1) - 1
				if j >= int64(len(jobs)) {
					return
				}
				job := jobs[j]
				stats[job.set][job.idx] = t.Trial(sets[job.set][job.idx], opts.Order, opts.trialRNG(job.idx))
			}
		}()
	}
	wg.Wait()

	out := make([]SweepResult, len(sets))
	for i := range sets {
		out[i] = foldStats(stats[i])
	}
	return out
}

// reusableBuild wraps a trialer the caller has already built (for the
// establishment-side metrics) so the first build() call returns it instead
// of constructing another; later calls — concurrent, from other workers —
// fall through to fresh builds.
func reusableBuild(first Trialer, build func() Trialer) func() Trialer {
	var taken atomic.Bool
	return func() Trialer {
		if taken.CompareAndSwap(false, true) {
			return first
		}
		return build()
	}
}
