package bcpd

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/wire"
)

// TestHarvestRCCFuzzCorpus regenerates internal/rcc's storm-harvested fuzz
// corpus: it taps every RCC frame a seeded recovery storm puts on the wire
// (Config.FrameTap) and writes the most batch-heavy distinct frames as seed
// files for FuzzHandleFrame. Real storms produce the multi-control frames —
// coalesced failure reports, activation fan-out, piggybacked ACK fields —
// that hand-written seeds miss. Skipped by default so `go test` stays
// read-only; set HARVEST_RCC_CORPUS=1 to rewrite the committed corpus.
func TestHarvestRCCFuzzCorpus(t *testing.T) {
	if os.Getenv("HARVEST_RCC_CORPUS") == "" {
		t.Skip("set HARVEST_RCC_CORPUS=1 to regenerate testdata/fuzz/FuzzHandleFrame")
	}
	// One representative frame per control-count bucket: the interesting
	// axis for the receive path is how much batching a frame carries.
	byCount := map[int][]byte{}
	tap := func(_ topology.LinkID, frame []byte) {
		f, err := wire.Unmarshal(frame)
		if err != nil || len(f.Controls) < 2 {
			return
		}
		if _, ok := byCount[len(f.Controls)]; !ok {
			byCount[len(f.Controls)] = append([]byte(nil), frame...)
		}
	}
	for seed := int64(1); seed <= 3; seed++ {
		runHarvestStorm(t, seed, tap)
	}
	if len(byCount) == 0 {
		t.Fatal("storms produced no multi-control frames to harvest")
	}
	dir := filepath.Join("..", "rcc", "testdata", "fuzz", "FuzzHandleFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for count, frame := range byCount {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("storm-%02d-controls", count))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("harvested %d frames into %s", len(byCount), dir)
}

// runHarvestStorm drives one seeded storm with the tap attached, reusing the
// dispatch-equivalence storm driver.
func runHarvestStorm(t *testing.T, seed int64, tap func(topology.LinkID, []byte)) {
	t.Helper()
	runTappedDispatchWorld(t, seed, false, true, tap)
}
