package rcc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/wire"
)

// TestHandleFrameNeverPanicsOnGarbage feeds arbitrary byte blobs to the
// receive path: a corrupted or hostile frame must be dropped, never crash
// the daemon.
func TestHandleFrameNeverPanicsOnGarbage(t *testing.T) {
	eng := sim.New(1)
	e := NewEndpoint(eng, DefaultParams(), func([]byte) {}, func(wire.Control) {})
	fn := func(data []byte) bool {
		e.HandleFrame(data)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(time.Second)
}

// TestRandomizedDuplex exercises two endpoints under randomized loss,
// delay jitter, and bidirectional traffic, checking exactly-once in-order
// delivery in both directions.
func TestRandomizedDuplex(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		eng := sim.New(seed)
		rng := rand.New(rand.NewSource(seed))
		var a, b *Endpoint
		var recvA, recvB []int64
		send := func(peer **Endpoint) func([]byte) {
			return func(data []byte) {
				if rng.Intn(5) == 0 {
					return // 20% loss
				}
				d := append([]byte(nil), data...)
				delay := sim.Duration(1+rng.Intn(3)) * sim.Duration(time.Millisecond)
				eng.Schedule(delay, func() { (*peer).HandleFrame(d) })
			}
		}
		a = NewEndpoint(eng, DefaultParams(), send(&b), func(c wire.Control) {
			recvA = append(recvA, c.Channel)
		})
		b = NewEndpoint(eng, DefaultParams(), send(&a), func(c wire.Control) {
			recvB = append(recvB, c.Channel)
		})
		const n = 30
		for i := int64(1); i <= n; i++ {
			i := i
			eng.Schedule(sim.Duration(rng.Intn(50))*sim.Duration(time.Millisecond), func() {
				a.Submit(wire.Control{Type: wire.MsgActivation, Channel: i, Toward: 1})
			})
			eng.Schedule(sim.Duration(rng.Intn(50))*sim.Duration(time.Millisecond), func() {
				b.Submit(wire.Control{Type: wire.MsgActivation, Channel: 1000 + i, Toward: 1})
			})
		}
		eng.RunFor(time.Minute)
		if len(recvB) != n || len(recvA) != n {
			t.Fatalf("seed %d: delivered A=%d B=%d, want %d each", seed, len(recvA), len(recvB), n)
		}
		// In-order within each direction (submission order may interleave
		// across timers, but per-endpoint the RCC preserves submit order;
		// verify no duplicates at least).
		seen := map[int64]bool{}
		for _, v := range append(append([]int64{}, recvA...), recvB...) {
			if seen[v] {
				t.Fatalf("seed %d: duplicate delivery %d", seed, v)
			}
			seen[v] = true
		}
	}
}

// FuzzHandleFrame is the native-fuzzing upgrade of the quick.Check garbage
// test above: arbitrary bytes into the receive path must never panic, a
// well-formed frame must never be delivered twice, and batched delivery
// (SetBatchReceiver) must deliver exactly what per-message delivery does, in
// the same order with the same counters. Inline seeds cover a valid
// single-control frame, multi-control and budget-full frames, a pure ack,
// and truncations; testdata/fuzz/FuzzHandleFrame carries frames harvested
// from protocol storm runs (regenerate with bcpd's TestHarvestRCCFuzzCorpus).
func FuzzHandleFrame(f *testing.F) {
	mustMarshal := func(fr wire.Frame) []byte {
		data, err := fr.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	valid := mustMarshal(wire.Frame{Seq: 1, Ack: 0, Controls: []wire.Control{
		{Type: wire.MsgFailureReport, Channel: 7, Origin: 3, Toward: -1},
	}})
	multi := mustMarshal(wire.Frame{Seq: 1, Ack: 2, Controls: []wire.Control{
		{Type: wire.MsgFailureReport, Channel: 7, Origin: 3, Toward: -1},
		{Type: wire.MsgActivation, Channel: 9, Origin: 3, Toward: 1},
		{Type: wire.MsgChannelClosure, Channel: 7, Origin: 3, Toward: 1},
	}})
	fullBatch := make([]wire.Control, wire.MaxControlsForBudget(DefaultParams().SMax))
	for i := range fullBatch {
		fullBatch[i] = wire.Control{Type: wire.MsgActivation, Channel: int64(i + 1), Origin: 5, Toward: 1}
	}
	full := mustMarshal(wire.Frame{Seq: 1, Controls: fullBatch})
	pureAck := mustMarshal(wire.Frame{Seq: 0, Ack: 5})
	f.Add(valid)
	f.Add(multi)
	f.Add(full)
	f.Add(pureAck)
	f.Add(valid[:len(valid)-3])
	f.Add(multi[:len(multi)-2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.New(1)
		var seqDeliv, batDeliv []wire.Control
		e1 := NewEndpoint(eng, DefaultParams(), func([]byte) {}, func(c wire.Control) {
			seqDeliv = append(seqDeliv, c)
		})
		e2 := NewEndpoint(eng, DefaultParams(), func([]byte) {}, func(wire.Control) {
			t.Error("per-message recv called on an endpoint with a batch receiver")
		})
		e2.SetBatchReceiver(func(cs []wire.Control) {
			batDeliv = append(batDeliv, cs...)
		})
		for _, e := range [2]*Endpoint{e1, e2} {
			e.HandleFrame(data)
			e.HandleFrame(data) // exact duplicate: must be dropped by seq check
		}
		eng.RunFor(time.Second)
		if frame, err := wire.Unmarshal(data); err == nil && frame.Seq == 1 {
			if want := len(frame.Controls); len(seqDeliv) != want {
				t.Fatalf("frame with %d controls delivered %d (duplicate not suppressed?)",
					want, len(seqDeliv))
			}
		}
		if len(seqDeliv) != len(batDeliv) {
			t.Fatalf("per-message delivered %d controls, batched %d", len(seqDeliv), len(batDeliv))
		}
		for i := range seqDeliv {
			if seqDeliv[i] != batDeliv[i] {
				t.Fatalf("delivery %d diverged: %+v vs %+v", i, seqDeliv[i], batDeliv[i])
			}
		}
		if e1.Stats() != e2.Stats() {
			t.Fatalf("endpoint counters diverged:\n  per-message: %+v\n  batched:     %+v",
				e1.Stats(), e2.Stats())
		}
	})
}
