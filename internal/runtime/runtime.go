// Package runtime defines the execution seam between the protocol stack and
// whatever drives it. The protocol daemons (bcpd, rcc, sched) are written
// against Runtime alone: a clock, one-shot timers, and a random source. Two
// implementations exist:
//
//   - sim.Engine: deterministic virtual time. Events fire in (time, FIFO)
//     order on a single goroutine; runs are bit-identical for a given seed.
//   - realtime.Runtime: wall clock. Timers fire from a monotonic-clock heap,
//     and all protocol callbacks are serialized on one execution lock so the
//     daemons keep their single-threaded world view.
//
// Timer handles are sim.Timer values regardless of which runtime issued them
// (the handle delegates to its issuing sim.TimerHost), so protocol code that
// arms, stops, and queries timers works verbatim under either clock.
package runtime

import (
	"math/rand"

	"github.com/rtcl/bcp/internal/sim"
)

// Runtime is the execution environment a protocol daemon runs in. Callers
// must treat it as single-threaded: every callback passed to Schedule/At is
// invoked with the runtime's execution serialized (trivially true in sim;
// enforced by a lock in realtime), so protocol state needs no further
// synchronization.
type Runtime interface {
	sim.TimerHost

	// Now returns the current time: virtual in sim, monotonic nanoseconds
	// since runtime start on the wall clock.
	Now() sim.Time
	// Schedule runs fn after delay d and returns a stoppable handle.
	Schedule(d sim.Duration, fn func()) sim.Timer
	// At runs fn at absolute time t (>= Now in sim; clamped to now by the
	// wall-clock runtime).
	At(t sim.Time, fn func()) sim.Timer
	// ScheduleBatch schedules every function in fns to run after delay d,
	// appending one handle per function to out (reusing its capacity) and
	// returning it. Equivalent to len(fns) sequential Schedule calls — same
	// deadlines, same FIFO order — but the host restores its timer heap
	// (and, on the wall clock, takes its timer lock and nudges the timer
	// goroutine) once per batch instead of once per timer.
	ScheduleBatch(d sim.Duration, fns []func(), out []sim.Timer) []sim.Timer
	// RNG returns the runtime's random source. It is only safe to use from
	// runtime-serialized callbacks.
	RNG() *rand.Rand
}

// Engine's methods line up with Runtime exactly; the seam costs sim nothing.
var _ Runtime = (*sim.Engine)(nil)
