package bcpd

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// attachConformance tees a streaming conformance checker into cfg's sink and
// fails the test at cleanup on any protocol-invariant violation, so every
// test through the shared testbed is invariant-checked, not just
// end-state-checked.
func attachConformance(t *testing.T, cfg *Config, p conformance.Params) *conformance.Checker {
	t.Helper()
	c := conformance.New(p)
	if cfg.Sink == nil {
		cfg.Sink = c
	} else {
		cfg.Sink = trace.Tee{cfg.Sink, c}
	}
	t.Cleanup(func() {
		for _, v := range c.Finish() {
			t.Errorf("conformance: %v", v)
		}
	})
	return c
}

// conformanceParams derives checker tolerances from a run's protocol
// configuration: no Γ bound (testbed scenarios include congestion and
// preemption), in-flight delivery tolerated for one propagation delay plus
// a generous residual-transmission allowance.
func conformanceParams(cfg Config) conformance.Params {
	return conformance.Params{
		PropSlack: cfg.PropDelay + sim.Duration(2*time.Millisecond),
	}
}

// testbed is a 3x3 mesh with one D-connection 0->2 (primary 0-1-2, backup
// 0-3-4-5-2) plus helpers.
//
//	0 1 2
//	3 4 5
//	6 7 8
type testbed struct {
	g    *topology.Graph
	eng  *sim.Engine
	mgr  *core.Manager
	net  *Network
	conn *core.DConnection
}

func path(t *testing.T, g *topology.Graph, nodes ...topology.NodeID) topology.Path {
	t.Helper()
	p, err := topology.PathBetween(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestbed(t *testing.T, cfg Config) *testbed {
	t.Helper()
	g := topology.NewMesh(3, 3, 10)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 2}
	conn, err := mgr.EstablishOnPaths(spec,
		path(t, g, 0, 1, 2),
		[]topology.Path{path(t, g, 0, 3, 4, 5, 2)},
		[]int{1})
	if err != nil {
		t.Fatal(err)
	}
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	return &testbed{g: g, eng: eng, mgr: mgr, net: net, conn: conn}
}

func TestInstallSeedsChannelStates(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	prim := tb.conn.Primary
	back := tb.conn.Backups[0]
	for _, v := range prim.Path.Nodes() {
		if st := tb.net.Daemon(v).State(prim.ID); st != stateP {
			t.Fatalf("node %d primary state = %v", v, st)
		}
	}
	for _, v := range back.Path.Nodes() {
		if st := tb.net.Daemon(v).State(back.ID); st != stateB {
			t.Fatalf("node %d backup state = %v", v, st)
		}
	}
}

func TestDataFlowsBeforeFailure(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.RunFor(100 * time.Millisecond)
	st := tb.net.Stats()
	if st.DataDelivered < 90 {
		t.Fatalf("delivered %d, want ~100", st.DataDelivered)
	}
	if st.DataDropped != 0 {
		t.Fatalf("dropped %d before any failure", st.DataDropped)
	}
}

func TestLinkFailureFastRecovery(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	failAt := sim.Time(50 * time.Millisecond)
	var failed topology.LinkID
	tb.eng.At(failAt, func() {
		failed = tb.g.LinkBetween(1, 2)
		tb.net.FailLink(failed)
	})
	tb.eng.RunFor(500 * time.Millisecond)

	// The source must have switched to the backup.
	switches := tb.net.SourceSwitches(tb.conn.ID)
	if len(switches) != 1 {
		t.Fatalf("switches = %v", switches)
	}
	if switches[0] < failAt {
		t.Fatal("switched before the failure")
	}
	// Recovery is fast: detection + reporting over 2 hops of RCC.
	if delay := switches[0].Sub(failAt); delay > 50*time.Millisecond {
		t.Fatalf("recovery delay %v too large", delay)
	}
	// The backup is promoted in the resource plane.
	if tb.conn.Primary == nil || tb.conn.Primary.Path.Hops() != 4 {
		t.Fatal("backup not promoted")
	}
	if len(tb.conn.Backups) != 0 {
		t.Fatal("backup list not consumed")
	}
	// Data resumed at the destination; loss is bounded by the outage.
	if _, ok := tb.net.FirstArrivalAfter(tb.conn.ID, switches[0]); !ok {
		t.Fatal("no data after recovery")
	}
	st := tb.net.Stats()
	if st.DataDropped == 0 {
		t.Fatal("expected some loss during the outage (Figure 8)")
	}
	if st.DataDelivered < 300 {
		t.Fatalf("delivered %d, service did not resume properly", st.DataDelivered)
	}
	// Spare pools on the promoted path converted to dedicated bandwidth.
	for _, l := range tb.conn.Primary.Path.Links() {
		if tb.mgr.Network().Dedicated(l) != 1 {
			t.Fatalf("link %d dedicated = %g", l, tb.mgr.Network().Dedicated(l))
		}
	}
	if err := tb.mgr.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFailureFastRecovery(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.At(sim.Time(50*time.Millisecond), func() { tb.net.FailNode(1) })
	tb.eng.RunFor(500 * time.Millisecond)
	if got := len(tb.net.SourceSwitches(tb.conn.ID)); got != 1 {
		t.Fatalf("switches = %d", got)
	}
	if tb.conn.Primary == nil || tb.conn.Primary.Path.ContainsNode(1) {
		t.Fatal("recovered primary still uses the failed node")
	}
}

func TestFailureOfBackupOnlyIsBookkept(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	tb.net.FailLink(tb.g.LinkBetween(3, 4)) // backup link
	tb.eng.RunFor(200 * time.Millisecond)
	// No switch: the primary is healthy.
	if tb.conn.Primary.Path.Hops() != 2 {
		t.Fatal("primary changed")
	}
	// End nodes know the backup failed.
	back := tb.conn.Backups[0]
	if !tb.net.Daemon(0).knownFailedBackups[back.ID] {
		t.Fatal("source does not know the backup failed")
	}
	if st := tb.net.Daemon(2).State(back.ID); st != stateU {
		t.Fatalf("destination backup state = %v", st)
	}
}

func TestDoubleFailureUnrecoverable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(200 * time.Millisecond)
	tb := newTestbed(t, cfg)
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.At(sim.Time(50*time.Millisecond), func() {
		tb.net.FailLink(tb.g.LinkBetween(1, 2))
		tb.net.FailLink(tb.g.LinkBetween(4, 5))
	})
	tb.eng.RunFor(2 * time.Second)
	// The source may transiently switch to the backup before its failure
	// report arrives (the paper's "albeit unlikely" race, §4.2), but no
	// data flows afterwards and nothing recovers.
	if n := len(tb.net.SourceSwitches(tb.conn.ID)); n > 1 {
		t.Fatalf("switched %d times despite both channels dead", n)
	}
	// Rejoin timers expired: all resources reclaimed.
	if tb.mgr.Connection(tb.conn.ID) != nil {
		t.Fatal("dead connection still registered")
	}
	for _, l := range tb.g.Links() {
		if tb.mgr.Network().Dedicated(l.ID) != 0 || tb.mgr.Network().Spare(l.ID) != 0 {
			t.Fatalf("link %d not reclaimed", l.ID)
		}
	}
}

func TestSequentialFailuresWithTwoBackups(t *testing.T) {
	g := topology.NewMesh(3, 4, 10)
	//  0 1  2  3
	//  4 5  6  7
	//  8 9 10 11
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 4}
	conn, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2),
		[]topology.Path{
			path(t, g, 1, 5, 6, 2),
			path(t, g, 1, 0, 4, 8, 9, 10, 6, 2),
		},
		[]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	if err := net.StartTraffic(conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
	eng.At(sim.Time(300*time.Millisecond), func() { net.FailLink(g.LinkBetween(5, 6)) })
	eng.RunFor(2 * time.Second)
	switches := net.SourceSwitches(conn.ID)
	if len(switches) != 2 {
		t.Fatalf("switches = %v, want 2 (backup1 then backup2)", switches)
	}
	if conn.Primary == nil || conn.Primary.Path.Hops() != 7 {
		t.Fatalf("final primary = %v", conn.Primary)
	}
	if _, ok := net.FirstArrivalAfter(conn.ID, switches[1]); !ok {
		t.Fatal("no data after the second recovery")
	}
}

func TestReplenishRestoresFaultTolerance(t *testing.T) {
	// §4.4: after recovery the connection re-establishes a fresh backup, so
	// a SECOND failure later is also survived fast.
	g := topology.NewTorus(4, 4, 200)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	conn, err := mgr.Establish(0, 5, rtchan.DefaultSpec(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ReplenishDelay = sim.Duration(100 * time.Millisecond)
	cfg.ReplenishTarget = 1
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	if err := net.StartTraffic(conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	eng.At(sim.Time(50*time.Millisecond), func() {
		net.FailLink(conn.Primary.Path.Links()[0])
	})
	// After recovery + replenishment, fail the new primary too.
	eng.At(sim.Time(500*time.Millisecond), func() {
		if conn.Primary != nil {
			net.FailLink(conn.Primary.Path.Links()[0])
		}
	})
	eng.RunFor(2 * time.Second)

	if net.Stats().BackupsReplenished == 0 {
		t.Fatal("no backup was replenished")
	}
	switches := net.SourceSwitches(conn.ID)
	if len(switches) != 2 {
		t.Fatalf("switches = %v, want 2 (second failure survived via replenished backup)", switches)
	}
	if conn.Primary == nil {
		t.Fatal("connection lost")
	}
	if _, ok := net.FirstArrivalAfter(conn.ID, switches[1]); !ok {
		t.Fatal("no data after the second recovery")
	}
	if err := mgr.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplenishDisabledByDefault(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	tb.eng.At(sim.Time(50*time.Millisecond), func() {
		tb.net.FailLink(tb.g.LinkBetween(1, 2))
	})
	tb.eng.RunFor(time.Second)
	if tb.net.Stats().BackupsReplenished != 0 {
		t.Fatal("replenishment ran despite being disabled")
	}
	if len(tb.conn.Backups) != 0 {
		t.Fatal("backup list should stay consumed")
	}
}

func TestDivergentBackupSelectionConverges(t *testing.T) {
	// Paper footnote 7: the two end nodes can transiently pick different
	// backups when their knowledge differs. Here the primary and the first
	// backup's destination-adjacent link fail together: the destination
	// learns of backup 1's death immediately (it is adjacent) and activates
	// backup 2, while the source — not yet knowing — activates backup 1.
	// Backup 1's activation dies at the failed link; backup 2's backward
	// activation reaches the source, which switches to it. The system
	// converges on backup 2 with no double promotion.
	g := topology.NewMesh(3, 4, 10)
	//  0 1  2  3
	//  4 5  6  7
	//  8 9 10 11
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 4}
	conn, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2),
		[]topology.Path{
			path(t, g, 1, 5, 6, 2),
			path(t, g, 1, 0, 4, 8, 9, 10, 11, 7, 3, 2),
		},
		[]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	if err := net.StartTraffic(conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	eng.At(sim.Time(50*time.Millisecond), func() {
		net.FailLink(g.LinkBetween(1, 2)) // primary
		net.FailLink(g.LinkBetween(6, 2)) // backup 1's last link
	})
	eng.RunFor(2 * time.Second)

	if conn.Primary == nil || conn.Primary.Path.Hops() != 9 {
		t.Fatalf("converged primary = %v, want backup 2", conn.Primary)
	}
	// The source may have switched twice (transiently to backup 1).
	switches := net.SourceSwitches(conn.ID)
	if len(switches) == 0 || len(switches) > 2 {
		t.Fatalf("switches = %v", switches)
	}
	// Data flows after convergence.
	if _, ok := net.FirstArrivalAfter(conn.ID, switches[len(switches)-1]); !ok {
		t.Fatal("no data after convergence")
	}
	if err := mgr.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Network().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScheme1RecoversViaDestination(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = Scheme1
	tb := newTestbed(t, cfg)
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	tb.eng.At(sim.Time(50*time.Millisecond), func() { tb.net.FailLink(tb.g.LinkBetween(0, 1)) })
	tb.eng.RunFor(time.Second)
	if len(tb.net.SourceSwitches(tb.conn.ID)) != 1 {
		t.Fatal("scheme 1 did not recover")
	}
	if tb.conn.Primary == nil || tb.conn.Primary.Path.Hops() != 4 {
		t.Fatal("backup not promoted under scheme 1")
	}
}

func TestScheme3FasterThanScheme1NearDestination(t *testing.T) {
	// A failure near the destination: scheme 1's report has a short trip to
	// the destination, but the activation must then travel the whole backup
	// back to the source before data resumes. Scheme 3's upstream report
	// reaches the source directly and data resumes immediately.
	recoveryDelay := func(scheme Scheme) sim.Duration {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		tb := newTestbed(t, cfg)
		if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
			t.Fatal(err)
		}
		failAt := sim.Time(50 * time.Millisecond)
		tb.eng.At(failAt, func() { tb.net.FailLink(tb.g.LinkBetween(1, 2)) })
		tb.eng.RunFor(time.Second)
		sw := tb.net.SourceSwitches(tb.conn.ID)
		if len(sw) != 1 {
			t.Fatalf("scheme %d: switches = %v", scheme, sw)
		}
		return sw[0].Sub(failAt)
	}
	d1 := recoveryDelay(Scheme1)
	d3 := recoveryDelay(Scheme3)
	if d3 >= d1 {
		t.Fatalf("scheme 3 (%v) not faster than scheme 1 (%v)", d3, d1)
	}
}

func TestMuxFailureTriggersNextBackup(t *testing.T) {
	// Two connections whose primaries share link 1->2 with backups
	// multiplexed on 5->6 (shared spare = 1). On failure, the loser's
	// activation hits a multiplexing failure and falls back to its second
	// backup.
	g := topology.NewMesh(4, 4, 10)
	//  0  1  2  3
	//  4  5  6  7
	//  8  9 10 11
	// 12 13 14 15
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	spec := rtchan.TrafficSpec{Bandwidth: 1, SlackHops: 4}
	connA, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2, 3),
		[]topology.Path{path(t, g, 1, 5, 6, 7, 3)}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	connB, err := mgr.EstablishOnPaths(spec,
		path(t, g, 1, 2, 6),
		[]topology.Path{
			path(t, g, 1, 5, 6),
			path(t, g, 1, 0, 4, 8, 9, 10, 6),
		}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := mgr.Network().Spare(g.LinkBetween(5, 6)); got != 1 {
		t.Fatalf("spare on 5->6 = %g, want 1 (multiplexed)", got)
	}
	cfg := DefaultConfig()
	attachConformance(t, &cfg, conformanceParams(cfg))
	net := New(eng, mgr, cfg)
	if err := net.StartTraffic(connA.ID, 500); err != nil {
		t.Fatal(err)
	}
	if err := net.StartTraffic(connB.ID, 500); err != nil {
		t.Fatal(err)
	}
	eng.At(sim.Time(50*time.Millisecond), func() { net.FailLink(g.LinkBetween(1, 2)) })
	eng.RunFor(2 * time.Second)

	if net.Stats().MuxFailures == 0 {
		t.Fatal("no multiplexing failure despite contention")
	}
	// Both connections end up recovered: A on its only backup, B on one of
	// its two (whichever won the race decides the loser's fallback).
	if connA.Primary == nil {
		t.Fatal("connection A lost")
	}
	if connB.Primary == nil {
		t.Fatal("connection B lost")
	}
	if len(net.SourceSwitches(connA.ID)) == 0 || len(net.SourceSwitches(connB.ID)) == 0 {
		t.Fatal("sources did not switch")
	}
	if err := mgr.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejoinRepairsChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(2 * time.Second)
	cfg.RejoinProbeDelay = sim.Duration(300 * time.Millisecond)
	tb := newTestbed(t, cfg)
	l := tb.g.LinkBetween(1, 2)
	tb.eng.At(sim.Time(50*time.Millisecond), func() { tb.net.FailLink(l) })
	// Repair before the probe goes out.
	tb.eng.At(sim.Time(200*time.Millisecond), func() { tb.net.RepairLink(l) })
	tb.eng.RunFor(3 * time.Second)

	if tb.net.Stats().Rejoins == 0 {
		t.Fatal("no rejoin happened")
	}
	// The old primary was repaired and rejoined as a backup; the original
	// backup was promoted to primary.
	conn := tb.mgr.Connection(tb.conn.ID)
	if conn == nil {
		t.Fatal("connection gone")
	}
	if conn.Primary == nil || conn.Primary.Path.Hops() != 4 {
		t.Fatal("promoted backup is not the primary")
	}
	if len(conn.Backups) != 1 || conn.Backups[0].Path.Hops() != 2 {
		t.Fatalf("repaired channel not registered as backup: %+v", conn.Backups)
	}
	// All nodes of the repaired channel hold state B.
	for _, v := range conn.Backups[0].Path.Nodes() {
		if st := tb.net.Daemon(v).State(conn.Backups[0].ID); st != stateB {
			t.Fatalf("node %d state = %v, want B", v, st)
		}
	}
	if err := tb.mgr.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejoinTimerExpiryTearsDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(300 * time.Millisecond)
	tb := newTestbed(t, cfg)
	old := tb.conn.Primary.ID
	tb.eng.At(sim.Time(50*time.Millisecond), func() { tb.net.FailLink(tb.g.LinkBetween(1, 2)) })
	tb.eng.RunFor(2 * time.Second)
	if tb.mgr.Network().Channel(old) != nil {
		t.Fatal("failed primary not torn down after rejoin expiry")
	}
	if tb.net.Stats().RejoinExpiries == 0 {
		t.Fatal("no expiry recorded")
	}
	// Connection survives on the promoted backup.
	conn := tb.mgr.Connection(tb.conn.ID)
	if conn == nil || conn.Primary == nil {
		t.Fatal("connection should survive on its promoted backup")
	}
}

func TestClosureUndoesPartialRejoin(t *testing.T) {
	// Figure 6: a rejoin message arriving at a node whose timer already
	// expired triggers a channel-closure toward the destination.
	tb := newTestbed(t, DefaultConfig())
	prim := tb.conn.Primary
	d1 := tb.net.Daemon(1)
	// Simulate: node 1 in state N (expired), delivering a rejoin.
	d1.setState(prim.ID, stateN)
	d1.handleControl(wireControl{
		Type: 4 /* MsgRejoin */, Channel: int64(prim.ID), Origin: 2, Toward: -1,
	})
	tb.eng.RunFor(time.Second)
	if tb.net.Stats().Closures == 0 {
		t.Fatal("no closure generated")
	}
	// The closure propagated toward the destination: node 2's state is N.
	if st := tb.net.Daemon(2).State(prim.ID); st != stateN {
		t.Fatalf("destination state = %v, want N", st)
	}
}

func TestTeardownConnectionPropagatesClosure(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	if err := tb.net.StartTraffic(tb.conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	prim := tb.conn.Primary
	back := tb.conn.Backups[0]
	tb.eng.RunFor(50 * time.Millisecond)
	if err := tb.net.TeardownConnection(tb.conn.ID); err != nil {
		t.Fatal(err)
	}
	tb.eng.RunFor(200 * time.Millisecond)
	// Resource plane is clean.
	if tb.mgr.Connection(tb.conn.ID) != nil {
		t.Fatal("connection still registered")
	}
	for _, l := range tb.g.Links() {
		if tb.mgr.Network().Dedicated(l.ID) != 0 || tb.mgr.Network().Spare(l.ID) != 0 {
			t.Fatalf("link %d not released", l.ID)
		}
	}
	// Closure reached every node of both channels: all state N.
	for _, ch := range []*rtchan.Channel{prim, back} {
		for _, v := range ch.Path.Nodes() {
			if st := tb.net.Daemon(v).State(ch.ID); st != stateN {
				t.Fatalf("node %d channel %d state %v after closure", v, ch.ID, st)
			}
		}
	}
	// The data source stopped.
	sent := tb.net.Stats().DataSent
	tb.eng.RunFor(100 * time.Millisecond)
	if tb.net.Stats().DataSent != sent {
		t.Fatal("source kept emitting after teardown")
	}
	if err := tb.net.TeardownConnection(tb.conn.ID); err == nil {
		t.Fatal("double teardown accepted")
	}
}

func TestReportsAreDedupedInStateU(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	prim := tb.conn.Primary
	d1 := tb.net.Daemon(1)
	before := tb.net.Stats().ReportsGenerated
	d1.originateFailureReport(prim.ID, -1)
	d1.originateFailureReport(prim.ID, -1)
	d1.originateFailureReport(prim.ID, -1)
	tb.eng.RunFor(100 * time.Millisecond)
	if got := tb.net.Stats().ReportsGenerated - before; got != 3 {
		t.Fatalf("reports generated = %d", got)
	}
	if st := d1.State(prim.ID); st != stateU {
		t.Fatalf("state = %v", st)
	}
	// Only one switch at the source despite three reports.
	if tb.conn.Primary == nil || tb.conn.Primary.Path.Hops() != 4 {
		t.Fatal("no single recovery")
	}
}

func TestRejoinRequestHeldAcrossRepair(t *testing.T) {
	// The probe goes out while the link is still down; the RCC holds it
	// (hop-by-hop retransmission) and delivers it when the link heals —
	// the paper's "the failed component... will also forward the
	// rejoin-request message" semantics.
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(2 * time.Second)
	cfg.RejoinProbeDelay = sim.Duration(100 * time.Millisecond) // before repair
	tb := newTestbed(t, cfg)
	l := tb.g.LinkBetween(1, 2)
	tb.eng.At(sim.Time(50*time.Millisecond), func() { tb.net.FailLink(l) })
	tb.eng.At(sim.Time(500*time.Millisecond), func() { tb.net.RepairLink(l) })
	tb.eng.RunFor(3 * time.Second)
	if tb.net.Stats().Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1 (request held until repair)", tb.net.Stats().Rejoins)
	}
	if tb.net.Stats().RejoinExpiries != 0 {
		t.Fatalf("expiries = %d, the repaired channel should not expire", tb.net.Stats().RejoinExpiries)
	}
	conn := tb.mgr.Connection(tb.conn.ID)
	if conn == nil || len(conn.Backups) != 1 || conn.Backups[0].Path.Hops() != 2 {
		t.Fatal("repaired primary did not rejoin as a backup")
	}
}

func TestRepairAfterExpiryIsClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RejoinTimeout = sim.Duration(100 * time.Millisecond)
	cfg.RejoinProbeDelay = sim.Duration(400 * time.Millisecond) // probe after expiry
	tb := newTestbed(t, cfg)
	l := tb.g.LinkBetween(1, 2)
	tb.eng.At(sim.Time(50*time.Millisecond), func() { tb.net.FailLink(l) })
	tb.eng.At(sim.Time(300*time.Millisecond), func() { tb.net.RepairLink(l) })
	tb.eng.RunFor(2 * time.Second)
	// The probe found the channel already expired locally: no rejoin.
	if tb.net.Stats().Rejoins != 0 {
		t.Fatal("rejoin happened after expiry")
	}
	if tb.mgr.Network().Channel(tb.conn.Primary.ID) == nil {
		t.Fatal("promoted backup should exist")
	}
}
