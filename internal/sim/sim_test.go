package sim

import (
	"testing"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v", e.Now())
	}
	if e.Processed() != 3 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var fired []Time
	e.Schedule(time.Millisecond, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d events", len(fired))
	}
	if fired[0] != Time(time.Millisecond) || fired[1] != Time(2*time.Millisecond) {
		t.Fatalf("fired at %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.Schedule(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
	if tm.Fired() {
		t.Fatal("stopped timer reports fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var count int
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	e.RunUntil(Time(3 * time.Millisecond))
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v", e.Now())
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunFor(10 * time.Millisecond)
	if e.Now() != Time(10*time.Millisecond) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New(1).Schedule(-time.Millisecond, func() {})
}

func TestPastSchedulePanics(t *testing.T) {
	e := New(1)
	e.Schedule(time.Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(0, func() {})
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil event fn")
		}
	}()
	New(1).Schedule(0, nil)
}

func TestDeterministicRNG(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.RNG().Int63() != b.RNG().Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1500 * time.Millisecond)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %g", tt.Seconds())
	}
	if tt.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add wrong")
	}
	if tt.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub wrong")
	}
}

func TestPendingCount(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	tm.Stop()
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d", e.Pending())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}
