package rtchan

import (
	"testing"

	"github.com/rtcl/bcp/internal/topology"
)

func line4() (*topology.Graph, topology.Path) {
	g := topology.NewLine(4, 10)
	p, err := topology.PathBetween(g, []topology.NodeID{0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	return g, p
}

func TestEstablishPrimaryReserves(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	spec := TrafficSpec{Bandwidth: 4}
	ch, err := n.Establish(1, RolePrimary, 0, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ID == NoChannel {
		t.Fatal("zero channel id")
	}
	for _, l := range p.Links() {
		if n.Dedicated(l) != 4 {
			t.Fatalf("link %d dedicated = %g", l, n.Dedicated(l))
		}
		if n.Free(l) != 6 {
			t.Fatalf("link %d free = %g", l, n.Free(l))
		}
	}
	// Reverse-direction links untouched.
	rev := g.LinkBetween(1, 0)
	if n.Dedicated(rev) != 0 {
		t.Fatal("reverse link reserved")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionRejects(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	if _, err := n.Establish(1, RolePrimary, 0, p, TrafficSpec{Bandwidth: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Establish(2, RolePrimary, 0, p, TrafficSpec{Bandwidth: 7}); err == nil {
		t.Fatal("overcommit accepted")
	}
	if _, err := n.Establish(2, RolePrimary, 0, p, TrafficSpec{Bandwidth: 3}); err != nil {
		t.Fatalf("fitting channel rejected: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEstablishRejectsBadArgs(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	if _, err := n.Establish(1, RolePrimary, 0, topology.Path{}, TrafficSpec{Bandwidth: 1}); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := n.Establish(1, RolePrimary, 0, p, TrafficSpec{Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestBackupDoesNotDedicate(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	ch, err := n.Establish(1, RoleBackup, 1, p, TrafficSpec{Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Links() {
		if n.Dedicated(l) != 0 {
			t.Fatal("backup dedicated bandwidth")
		}
	}
	if ch.Role != RoleBackup || ch.Serial != 1 {
		t.Fatal("role/serial wrong")
	}
}

func TestTeardownReleases(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	ch, _ := n.Establish(1, RolePrimary, 0, p, TrafficSpec{Bandwidth: 4})
	if err := n.Teardown(ch.ID); err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Links() {
		if n.Dedicated(l) != 0 {
			t.Fatal("teardown did not release")
		}
	}
	if n.Channel(ch.ID) != nil {
		t.Fatal("channel still registered")
	}
	if err := n.Teardown(ch.ID); err == nil {
		t.Fatal("double teardown accepted")
	}
	if len(n.ChannelsOnLink(p.Links()[0])) != 0 {
		t.Fatal("link index not cleaned")
	}
}

func TestSetSpare(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	l := p.Links()[0]
	if err := n.SetSpare(l, 6); err != nil {
		t.Fatal(err)
	}
	if n.Spare(l) != 6 || n.Free(l) != 4 {
		t.Fatalf("spare=%g free=%g", n.Spare(l), n.Free(l))
	}
	if err := n.SetSpare(l, 11); err == nil {
		t.Fatal("overcommitted spare accepted")
	}
	if err := n.SetSpare(l, -1); err == nil {
		t.Fatal("negative spare accepted")
	}
	// Spare constrains primary admission.
	if _, err := n.Establish(1, RolePrimary, 0, p, TrafficSpec{Bandwidth: 5}); err == nil {
		t.Fatal("admission ignored spare pool")
	}
}

func TestPromote(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	ch, _ := n.Establish(1, RoleBackup, 1, p, TrafficSpec{Bandwidth: 4})
	if err := n.Promote(ch.ID); err != nil {
		t.Fatal(err)
	}
	if ch.Role != RolePrimary {
		t.Fatal("role not updated")
	}
	for _, l := range p.Links() {
		if n.Dedicated(l) != 4 {
			t.Fatal("promotion did not dedicate bandwidth")
		}
	}
	if err := n.Promote(ch.ID); err == nil {
		t.Fatal("promoting a primary accepted")
	}
}

func TestPromoteRollsBackOnFailure(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	ch, _ := n.Establish(1, RoleBackup, 1, p, TrafficSpec{Bandwidth: 4})
	// Saturate the last link so promotion fails mid-path.
	last := p.Links()[len(p.Links())-1]
	if err := n.SetSpare(last, 8); err != nil {
		t.Fatal(err)
	}
	if err := n.Promote(ch.ID); err == nil {
		t.Fatal("promotion should fail")
	}
	for _, l := range p.Links() {
		if n.Dedicated(l) != 0 {
			t.Fatalf("rollback left dedicated=%g on link %d", n.Dedicated(l), l)
		}
	}
	if ch.Role != RoleBackup {
		t.Fatal("failed promotion changed role")
	}
}

func TestIndexes(t *testing.T) {
	g, p := line4()
	n := NewNetwork(g)
	c1, _ := n.Establish(1, RolePrimary, 0, p, TrafficSpec{Bandwidth: 1})
	c2, _ := n.Establish(2, RolePrimary, 0, p, TrafficSpec{Bandwidth: 1})
	l := p.Links()[1]
	ids := n.ChannelsOnLink(l)
	if len(ids) != 2 || ids[0] != c1.ID || ids[1] != c2.ID {
		t.Fatalf("link index = %v", ids)
	}
	atNode := n.ChannelsAtNode(0)
	if len(atNode) != 2 {
		t.Fatalf("node index = %v", atNode)
	}
	n.Teardown(c1.ID)
	if ids := n.ChannelsOnLink(l); len(ids) != 1 || ids[0] != c2.ID {
		t.Fatalf("link index after teardown = %v", ids)
	}
}

func TestMetrics(t *testing.T) {
	g := topology.NewLine(3, 10) // 4 simplex links, capacity 40 total
	n := NewNetwork(g)
	p, _ := topology.PathBetween(g, []topology.NodeID{0, 1, 2})
	n.Establish(1, RolePrimary, 0, p, TrafficSpec{Bandwidth: 5})
	if got := n.NetworkLoad(); got != 10.0/40.0 {
		t.Fatalf("load = %g", got)
	}
	n.SetSpare(p.Links()[0], 2)
	if got := n.SpareFraction(); got != 2.0/40.0 {
		t.Fatalf("spare fraction = %g", got)
	}
}

func TestManyChannelsInvariantHolds(t *testing.T) {
	g := topology.NewTorus(4, 4, 100)
	n := NewNetwork(g)
	var chans []ChannelID
	// Saturating mix of establishes and teardowns.
	paths := [][]topology.NodeID{
		{0, 1, 2}, {2, 3, 0}, {5, 6, 7}, {0, 4, 8}, {8, 9, 10, 11},
	}
	for round := 0; round < 50; round++ {
		for _, nodes := range paths {
			p, err := topology.PathBetween(g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := n.Establish(ConnID(round), RolePrimary, 0, p, TrafficSpec{Bandwidth: 1.5})
			if err == nil {
				chans = append(chans, ch.ID)
			}
		}
		if round%3 == 0 && len(chans) > 0 {
			n.Teardown(chans[0])
			chans = chans[1:]
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
