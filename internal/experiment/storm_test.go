package experiment

import (
	"sync"
	"testing"
)

// TestStormCyclesComplete drives several full crash→rejoin rounds and
// checks each one restores redundancy (Cycle verifies internally).
func TestStormCyclesComplete(t *testing.T) {
	s, err := NewStorm(StormConfig{Rate: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(6); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ActivationsStarted < 6 {
		t.Errorf("ActivationsStarted = %d, want >= 6", st.ActivationsStarted)
	}
	if st.Rejoins < 6 {
		t.Errorf("Rejoins = %d, want >= 6", st.Rejoins)
	}
	if st.RejoinExpiries != 0 {
		t.Errorf("RejoinExpiries = %d, want 0", st.RejoinExpiries)
	}
	if st.DataDelivered == 0 {
		t.Error("no data delivered across the storm")
	}
}

// TestStormDeterminism runs the same seeded storm twice; every protocol
// counter must come out identical — the pooled timers, frames, and scratch
// buffers must not perturb event order.
func TestStormDeterminism(t *testing.T) {
	run := func() (cycles int, stats [2]interface{}) {
		s, err := NewStorm(StormConfig{Rate: 250, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(4); err != nil {
			t.Fatal(err)
		}
		return s.Cycles(), [2]interface{}{s.Stats(), s.Eng.Now()}
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("storm runs diverged:\n  run1: cycles=%d %+v\n  run2: cycles=%d %+v", c1, s1, c2, s2)
	}
}

// TestStormsInParallel runs independent storms concurrently. Each network
// owns its pools, so this must be race-free (run under -race) and each
// storm must behave exactly as it does alone.
func TestStormsInParallel(t *testing.T) {
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := NewStorm(StormConfig{Rate: 100, Seed: int64(w)})
			if err == nil {
				err = s.Run(3)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("storm %d: %v", w, err)
		}
	}
}
