package core

import (
	"math/rand"
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

func TestFailureHitsPath(t *testing.T) {
	g, path := mesh3(t)
	p := path(0, 1, 2)
	if !SingleLink(g.LinkBetween(0, 1)).HitsPath(p) {
		t.Fatal("link failure missed")
	}
	if SingleLink(g.LinkBetween(1, 0)).HitsPath(p) {
		t.Fatal("reverse link failure should not hit")
	}
	if !SingleNode(1).HitsPath(p) {
		t.Fatal("interior node failure missed")
	}
	if !SingleNode(0).HitsPath(p) {
		t.Fatal("end node failure missed")
	}
	if SingleNode(4).HitsPath(p) {
		t.Fatal("unrelated node hit")
	}
	f := DoubleNode(3, 4)
	if !f.NodeFailed(3) || !f.NodeFailed(4) || f.NodeFailed(5) {
		t.Fatal("DoubleNode membership wrong")
	}
	if got := len(f.Nodes()); got != 2 {
		t.Fatalf("Nodes() = %d", got)
	}
}

func TestTrialSingleLinkFastRecovery(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	stats := m.Trial(SingleLink(g.LinkBetween(0, 1)), OrderByConn, nil)
	if stats.FailedPrimaries != 1 || stats.FastRecovered != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.RFast() != 1 {
		t.Fatalf("RFast = %g", stats.RFast())
	}
	// Trial must not mutate: a second identical trial gives the same
	// result, and the connection still has its original primary.
	stats2 := m.Trial(SingleLink(g.LinkBetween(0, 1)), OrderByConn, nil)
	if stats2.FailedPrimaries != 1 || stats2.FastRecovered != 1 {
		t.Fatalf("second trial = %+v", stats2)
	}
	if conn.Primary.Path.String() != "0->1->2" {
		t.Fatal("trial mutated the connection")
	}
}

func TestTrialEndNodeFailureExcluded(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	stats := m.Trial(SingleNode(0), OrderByConn, nil)
	if stats.ExcludedConns != 1 || stats.FailedPrimaries != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTrialBackupDead(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	// Node 1 kills the primary; node 4 kills the backup.
	stats := m.Trial(DoubleNode(1, 4), OrderByConn, nil)
	if stats.FailedPrimaries != 1 || stats.FastRecovered != 0 || stats.BackupDead != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTrialMuxContention(t *testing.T) {
	// Two connections whose primaries BOTH traverse link 1->2, with backups
	// multiplexed anyway (large α): a failure of that link activates both,
	// but the shared spare only fits one => one multiplexing failure.
	g, path := mesh3(t)
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(spec1(), path(1, 2, 5),
		[]topology.Path{path(1, 4, 5)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	shared := g.LinkBetween(4, 5)
	if got := m.plan.net.Spare(shared); got != 1 {
		t.Fatalf("expected multiplexed spare 1, got %g", got)
	}
	stats := m.Trial(SingleLink(g.LinkBetween(1, 2)), OrderByConn, nil)
	if stats.FailedPrimaries != 2 {
		t.Fatalf("failed primaries = %d", stats.FailedPrimaries)
	}
	if stats.FastRecovered != 1 || stats.MuxFailed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTrialSecondBackupSavesMuxFailure(t *testing.T) {
	// Like TestTrialMuxContention but the losing connection has a second
	// backup on a fully separate route, which rescues it.
	g := topology.NewMesh(4, 4, 10)
	//  0  1  2  3
	//  4  5  6  7
	//  8  9 10 11
	// 12 13 14 15
	path := func(nodes ...topology.NodeID) topology.Path {
		p, err := topology.PathBetween(g, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), path(1, 2, 3),
		[]topology.Path{path(1, 5, 6, 7, 3)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishOnPaths(spec1(), path(1, 2, 6),
		[]topology.Path{path(1, 5, 6), path(1, 0, 4, 8, 9, 10, 6)}, []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	if got := m.plan.net.Spare(g.LinkBetween(5, 6)); got != 1 {
		t.Fatalf("spare on 5->6 = %g, want 1 (multiplexed)", got)
	}
	stats := m.Trial(SingleLink(g.LinkBetween(1, 2)), OrderByConn, nil)
	if stats.FailedPrimaries != 2 || stats.FastRecovered != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTrialPriorityOrdering(t *testing.T) {
	// Under contention, OrderByPriority must favor the smaller degree even
	// when it has the larger connection id.
	g, path := mesh3(t)
	build := func() *Manager {
		m := newTestManager(g)
		// conn 1: degree 8 (low priority), established first.
		if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
			[]topology.Path{path(0, 3, 4, 5, 2)}, []int{8}); err != nil {
			t.Fatal(err)
		}
		// conn 2: degree 7 (higher priority), established second.
		if _, err := m.EstablishOnPaths(spec1(), path(1, 2, 5),
			[]topology.Path{path(1, 4, 5)}, []int{7}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	f := SingleLink(g.LinkBetween(1, 2))

	m := build()
	byConn := m.Trial(f, OrderByConn, nil)
	if byConn.ByDegree[8].FastRecovered != 1 || byConn.ByDegree[7].FastRecovered != 0 {
		t.Fatalf("conn order: %+v %+v", byConn.ByDegree[8], byConn.ByDegree[7])
	}
	byPrio := m.Trial(f, OrderByPriority, nil)
	if byPrio.ByDegree[7].FastRecovered != 1 || byPrio.ByDegree[8].FastRecovered != 0 {
		t.Fatalf("priority order: %+v %+v", byPrio.ByDegree[7], byPrio.ByDegree[8])
	}
}

func TestApplyPromotesBackup(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	backupPath := conn.Backups[0].Path
	stats, err := m.Apply(SingleLink(g.LinkBetween(0, 1)), OrderByConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastRecovered != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if conn.Primary == nil || conn.Primary.Path.String() != backupPath.String() {
		t.Fatal("backup not promoted to primary")
	}
	if len(conn.Backups) != 0 {
		t.Fatal("backup list not updated")
	}
	// The new primary's bandwidth is dedicated; old primary's released.
	for _, l := range backupPath.Links() {
		if m.plan.net.Dedicated(l) != 1 {
			t.Fatalf("link %d dedicated = %g", l, m.plan.net.Dedicated(l))
		}
		if m.plan.net.Spare(l) != 0 {
			t.Fatalf("link %d spare = %g after promotion", l, m.plan.net.Spare(l))
		}
	}
	if m.plan.net.Dedicated(g.LinkBetween(1, 2)) != 0 {
		t.Fatal("old primary reservation not released")
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.plan.net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyTearsDownDeadConnection(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(DoubleNode(1, 4), OrderByConn, nil); err != nil {
		t.Fatal(err)
	}
	if m.Connection(conn.ID) != nil {
		t.Fatal("dead connection not removed")
	}
	for _, l := range g.Links() {
		if m.plan.net.Dedicated(l.ID) != 0 || m.plan.net.Spare(l.ID) != 0 {
			t.Fatalf("link %d not released", l.ID)
		}
	}
}

func TestApplyExcludedConnTornDown(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Apply(SingleNode(2), OrderByConn, nil) // destination fails
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExcludedConns != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if m.Connection(conn.ID) != nil {
		t.Fatal("connection with failed end node should be torn down")
	}
	for _, l := range g.Links() {
		if m.plan.net.Dedicated(l.ID) != 0 || m.plan.net.Spare(l.ID) != 0 {
			t.Fatalf("link %d not released", l.ID)
		}
	}
}

func TestApplyReconfiguresSurvivorSpare(t *testing.T) {
	// After conn A's backup is promoted, conn B's backup remains; the spare
	// pools must be re-sized for B alone.
	g, path := mesh3(t)
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{8}); err != nil {
		t.Fatal(err)
	}
	connB, err := m.EstablishOnPaths(spec1(), path(6, 7, 8),
		[]topology.Path{path(6, 3, 4, 5, 8)}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	shared := g.LinkBetween(3, 4)
	if m.plan.net.Spare(shared) != 1 {
		t.Fatalf("multiplexed spare = %g", m.plan.net.Spare(shared))
	}
	if _, err := m.Apply(SingleLink(g.LinkBetween(0, 1)), OrderByConn, nil); err != nil {
		t.Fatal(err)
	}
	// A's backup is now a primary on 3->4: dedicated 1. B's backup alone
	// needs spare 1. Total on the link: 2.
	if m.plan.net.Dedicated(shared) != 1 {
		t.Fatalf("dedicated = %g", m.plan.net.Dedicated(shared))
	}
	if m.plan.net.Spare(shared) != 1 {
		t.Fatalf("reconfigured spare = %g, want 1 for survivor", m.plan.net.Spare(shared))
	}
	if got := m.BackupsOnLink(shared); got != 1 {
		t.Fatalf("backups on link = %d", got)
	}
	_ = connB
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplySequentialFailures(t *testing.T) {
	// Survive a failure, then a second failure hitting the new primary:
	// with two backups the connection recovers twice.
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	conn, err := m.Establish(0, 5, rtchan.DefaultSpec(), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	first := conn.Primary.Path.Links()[0]
	if _, err := m.Apply(SingleLink(first), OrderByConn, nil); err != nil {
		t.Fatal(err)
	}
	if conn.Primary == nil || len(conn.Backups) != 1 {
		t.Fatalf("after first failure: primary=%v backups=%d", conn.Primary, len(conn.Backups))
	}
	second := conn.Primary.Path.Links()[0]
	stats, err := m.Apply(SingleLink(second), OrderByConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastRecovered != 1 {
		t.Fatalf("second failure stats = %+v", stats)
	}
	if conn.Primary == nil || len(conn.Backups) != 0 {
		t.Fatal("second recovery did not consume the last backup")
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.plan.net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRandomizedStorm(t *testing.T) {
	// Fuzz: establish many connections on a torus, apply a series of
	// random failures, verifying invariants after each step.
	g := topology.NewTorus(6, 6, 100)
	m := newTestManager(g)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		s := topology.NodeID(rng.Intn(36))
		d := topology.NodeID(rng.Intn(36))
		if s == d {
			continue
		}
		_, _ = m.Establish(s, d, rtchan.DefaultSpec(), []int{1 + rng.Intn(6)})
	}
	for step := 0; step < 10; step++ {
		var f Failure
		if rng.Intn(2) == 0 {
			f = SingleLink(topology.LinkID(rng.Intn(g.NumLinks())))
		} else {
			f = SingleNode(topology.NodeID(rng.Intn(36)))
		}
		if _, err := m.Apply(f, OrderRandom, rng); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := m.CheckMuxInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := m.plan.net.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
