package bcpd

import (
	"slices"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// FailLink crashes one simplex link: everything in flight is lost, and
// after the detection latency the two incident nodes originate failure
// reports for every channel routed over the link, per the configured scheme
// (Figure 5).
func (n *Network) FailLink(l topology.LinkID) {
	lr := n.links[l]
	if lr.down {
		return
	}
	lr.down = true
	n.tr.SetLinkDown(l, true)
	if n.em.Enabled() {
		n.emitComponent(trace.KindLinkDown, topology.NoNode, l)
	}
	if n.cfg.HeartbeatInterval > 0 {
		return // detection happens via missing heartbeats
	}
	lk := n.mgr.Graph().Link(l)
	affected := append(n.getChanList(), n.mgr.Network().ChannelsOnLink(l)...)
	n.rt.Schedule(n.cfg.DetectionLatency, func() {
		// One dispatch round for the whole fan-out: every report this
		// detection originates is staged and flushed per neighbor link.
		opened := n.beginRound()
		for _, chID := range affected {
			n.reportComponentFailure(chID, lk.From, lk.To)
		}
		if opened {
			n.endRound()
		}
		n.putChanList(affected)
	})
}

// RepairLink brings a simplex link back into service. Channels through it
// stay unusable until a rejoin repairs them.
func (n *Network) RepairLink(l topology.LinkID) {
	lr := n.links[l]
	if !lr.down {
		return
	}
	lr.down = false
	n.tr.SetLinkDown(l, false)
	if n.em.Enabled() {
		n.emitComponent(trace.KindLinkUp, topology.NoNode, l)
	}
	if n.cfg.HeartbeatInterval > 0 {
		n.heartbeatLastSeen[l] = n.rt.Now()
		n.declaredDown[l] = false
	}
}

// LinkDown reports whether link l is failed.
func (n *Network) LinkDown(l topology.LinkID) bool { return n.links[l].down }

// FailNode crashes a node: its daemon stops, all incident links go down,
// and after the detection latency every neighbor on an affected channel's
// path originates the appropriate failure reports.
func (n *Network) FailNode(v topology.NodeID) {
	d := n.nodes[v]
	if d.dead {
		return
	}
	d.dead = true
	if n.em.Enabled() {
		n.emitComponent(trace.KindNodeDown, v, topology.NoLink)
	}
	g := n.mgr.Graph()
	downIncident := func(l topology.LinkID) {
		if !n.links[l].down && n.em.Enabled() {
			n.emitComponent(trace.KindLinkDown, topology.NoNode, l)
		}
		n.links[l].down = true
		n.tr.SetLinkDown(l, true)
	}
	for _, l := range g.Out(v) {
		downIncident(l)
	}
	for _, l := range g.In(v) {
		downIncident(l)
	}
	if n.cfg.HeartbeatInterval > 0 {
		return // neighbors notice the silence on every incident link
	}
	affected := append(n.getChanList(), n.mgr.Network().ChannelsAtNode(v)...)
	n.rt.Schedule(n.cfg.DetectionLatency, func() {
		defer n.putChanList(affected)
		// A node failure is the widest fan-out in the protocol: every
		// channel through the node reports from both surviving neighbors.
		// One round batches all of it.
		opened := n.beginRound()
		defer func() {
			if opened {
				n.endRound()
			}
		}()
		for _, chID := range affected {
			ch := n.mgr.Network().Channel(chID)
			if ch == nil {
				continue
			}
			idx := ch.Path.IndexOfNode(v)
			if idx < 0 {
				continue
			}
			nodes := ch.Path.Nodes()
			var up, down topology.NodeID = topology.NoNode, topology.NoNode
			if idx > 0 {
				up = nodes[idx-1]
			}
			if idx < len(nodes)-1 {
				down = nodes[idx+1]
			}
			n.originateReports(chID, up, down)
		}
	})
}

// RepairNode restores a crashed node and its incident links. The daemon
// returns with empty channel state (a rebooted node holds no soft state).
func (n *Network) RepairNode(v topology.NodeID) {
	d := n.nodes[v]
	if !d.dead {
		return
	}
	if n.em.Enabled() {
		// A rebooted daemon holds no soft state: record the wipe as explicit
		// transitions to N (sorted for deterministic traces), then the
		// repair itself.
		wiped := make([]rtchan.ChannelID, 0, len(d.states))
		for ch := range d.states {
			wiped = append(wiped, ch)
		}
		slices.Sort(wiped)
		for _, ch := range wiped {
			n.emitState(v, ch, d.states[ch], stateN)
		}
		n.emitComponent(trace.KindNodeUp, v, topology.NoLink)
	}
	n.nodes[v] = newDaemon(n, v)
	g := n.mgr.Graph()
	for _, l := range g.Out(v) {
		n.RepairLink(l)
	}
	for _, l := range g.In(v) {
		n.RepairLink(l)
	}
}

// reportComponentFailure originates reports for a channel crossing a failed
// link whose endpoints are from -> to.
func (n *Network) reportComponentFailure(chID rtchan.ChannelID, from, to topology.NodeID) {
	n.originateReports(chID, from, to)
}

// originateReports makes the upstream neighbor report toward the source and
// the downstream neighbor toward the destination, according to the scheme:
// Scheme 1 reports downstream only, Scheme 2 upstream only, Scheme 3 both.
func (n *Network) originateReports(chID rtchan.ChannelID, up, down topology.NodeID) {
	scheme := n.cfg.Scheme
	if up != topology.NoNode && (scheme == Scheme2 || scheme == Scheme3) {
		n.nodes[up].originateFailureReport(chID, -1)
	}
	if down != topology.NoNode && (scheme == Scheme1 || scheme == Scheme3) {
		n.nodes[down].originateFailureReport(chID, +1)
	}
}
