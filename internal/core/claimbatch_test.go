package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// ClaimBatch/ReleaseClaimBatch carry the same contract as EstablishBatch
// (batch_test.go): bit-identical equivalence with the sequential per-link
// loop the protocol engine used before batching — same admission decisions,
// same stop-at-first-failure residue, same rejection strings out of
// ActivateClaimed. This test drives two managers through one randomized op
// stream — claims, partial releases, activations, teardowns — applying the
// per-link loop to one and the batch entry points to the other, and requires
// deep state equality after every divergence-prone step.

func requireSameClaims(t *testing.T, ctx string, ms, mb *Manager) {
	t.Helper()
	g := ms.Graph()
	for l := 0; l < g.NumLinks(); l++ {
		cs, cb := ms.plan.mux[l].claims, mb.plan.mux[l].claims
		if len(cs) != len(cb) {
			t.Fatalf("%s: link %d claim count %d vs %d", ctx, l, len(cs), len(cb))
		}
		for ch, bwS := range cs {
			bwB, ok := cb[ch]
			if !ok {
				t.Fatalf("%s: link %d claim for channel %d missing from batch manager", ctx, l, ch)
			}
			if math.Abs(bwS-bwB) > 1e-9 {
				t.Fatalf("%s: link %d claim for channel %d: %g vs %g", ctx, l, ch, bwS, bwB)
			}
		}
		if math.Abs(ms.plan.mux[l].claimed-mb.plan.mux[l].claimed) > 1e-9 {
			t.Fatalf("%s: link %d claimed total %g vs %g", ctx, l, ms.plan.mux[l].claimed, mb.plan.mux[l].claimed)
		}
	}
}

func TestClaimBatchMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := batchTopology(rng, seed)
			reqs := batchRequests(rng, g, 50, defaultBatchSpec)

			ms := NewManager(g, DefaultConfig())
			mb := NewManager(g, DefaultConfig())
			for i := range reqs {
				r := &reqs[i]
				_, errS := ms.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
				_, errB := mb.Establish(r.Src, r.Dst, r.Spec, r.Degrees)
				if (errS == nil) != (errB == nil) {
					t.Fatalf("seed %d req %d: establish diverged before ops: %v vs %v", seed, i, errS, errB)
				}
			}

			// Targets are (connection, backup channel) pairs; ids and paths
			// are identical across the managers by construction.
			type target struct {
				conn rtchan.ConnID
				ch   rtchan.ChannelID
			}
			var targets []target
			for _, c := range ms.Connections() {
				for _, b := range c.Backups {
					targets = append(targets, target{c.ID, b.ID})
				}
			}
			if len(targets) == 0 {
				t.Skip("workload produced no backups")
			}

			for op := 0; op < 400; op++ {
				tg := targets[rng.Intn(len(targets))]
				cs := ms.plan.net.Channel(tg.ch)
				cb := mb.plan.net.Channel(tg.ch)
				if (cs == nil) != (cb == nil) {
					t.Fatalf("seed %d op %d: channel %d presence diverged", seed, op, tg.ch)
				}
				if cs == nil {
					continue // torn down earlier in the stream, on both
				}
				links := cs.Path.Links()
				bw := cs.Bandwidth()
				ctx := fmt.Sprintf("seed %d op %d chan %d", seed, op, tg.ch)
				switch r := rng.Intn(10); {
				case r < 4: // claim a (possibly partial) prefix of the path
					k := 1 + rng.Intn(len(links))
					si, sok := k, true
					for i, l := range links[:k] {
						if !ms.ClaimSpareFor(l, tg.ch, bw) {
							si, sok = i, false
							break
						}
					}
					bi, bok := mb.ClaimBatch(links[:k], tg.ch, bw)
					if si != bi || sok != bok {
						t.Fatalf("%s: claim (%d,%v) vs batch (%d,%v)", ctx, si, sok, bi, bok)
					}
				case r < 7: // release a (possibly partial) prefix
					k := 1 + rng.Intn(len(links))
					for _, l := range links[:k] {
						ms.ReleaseClaimFor(l, tg.ch)
					}
					mb.ReleaseClaimBatch(links[:k], tg.ch)
				case r < 9: // promote: exercises claimBatch + pooled touched scratch
					errS := ms.ActivateClaimed(tg.conn, cs)
					errB := mb.ActivateClaimed(tg.conn, cb)
					if (errS == nil) != (errB == nil) {
						t.Fatalf("%s: activate %v vs %v", ctx, errS, errB)
					}
					if errS != nil && errS.Error() != errB.Error() {
						t.Fatalf("%s: rejection %q vs %q", ctx, errS, errB)
					}
				default: // teardown: exercises the pooled scratch's other user
					errS := ms.TeardownChannel(tg.conn, tg.ch)
					errB := mb.TeardownChannel(tg.conn, tg.ch)
					if (errS == nil) != (errB == nil) {
						t.Fatalf("%s: teardown %v vs %v", ctx, errS, errB)
					}
				}
				requireSameClaims(t, ctx, ms, mb)
			}

			if os, ob := ms.OutstandingClaims(), mb.OutstandingClaims(); os != ob {
				t.Fatalf("seed %d: outstanding claims %d vs %d", seed, os, ob)
			}
			requireSameManagers(t, fmt.Sprintf("seed%d", seed), ms, mb)
		})
	}
}

// TestClaimBatchResidue pins the documented stop-at-first-failure semantics:
// a failed batch leaves exactly the claims made before the failing link, and
// a follow-up ReleaseClaimBatch over the same slice clears them all.
func TestClaimBatchResidue(t *testing.T) {
	g := topology.NewTorus(4, 4, 2) // tight links: claims exhaust spare fast
	m := NewManager(g, DefaultConfig())
	conn, err := m.Establish(0, 5, rtchan.DefaultSpec(), []int{1})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	b := conn.Backups[0]
	links := b.Path.Links()
	// Saturate the last link of the path with a foreign claim so the batch
	// fails exactly there.
	last := links[len(links)-1]
	foreign := rtchan.ChannelID(1 << 20)
	spare := m.Network().Spare(last)
	if !m.ClaimSpareFor(last, foreign, spare) {
		t.Fatalf("foreign claim of full spare %g on link %d failed", spare, last)
	}
	i, ok := m.ClaimBatch(links, b.ID, b.Bandwidth())
	if ok || i != len(links)-1 {
		t.Fatalf("batch over poisoned path: got (%d,%v), want (%d,false)", i, ok, len(links)-1)
	}
	for _, l := range links[:i] {
		if !m.ClaimedOn(l, b.ID) {
			t.Fatalf("link %d lost its pre-failure claim", l)
		}
	}
	if m.ClaimedOn(last, b.ID) {
		t.Fatal("failing link should hold no claim")
	}
	m.ReleaseClaimBatch(links, b.ID)
	m.ReleaseClaimFor(last, foreign)
	if n := m.OutstandingClaims(); n != 0 {
		t.Fatalf("outstanding claims after release: %d", n)
	}
}
