package experiment

import (
	"strings"
	"testing"

	"github.com/rtcl/bcp/internal/core"
)

func TestSeveritySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opts := DefaultOptions()
	res := RunSeverity(3, 40, opts)
	if len(res.RFast) != 3 || len(res.RFast[0]) != 3 {
		t.Fatalf("shape: %dx%d", len(res.RFast), len(res.RFast[0]))
	}
	// Coverage degrades (weakly) with severity for every configuration.
	for i, name := range res.Configs {
		for k := 1; k < res.MaxFail; k++ {
			if res.RFast[i][k] > res.RFast[i][k-1]+0.02 {
				t.Errorf("%s: R_fast rose from k=%d to k=%d (%.3f -> %.3f)",
					name, k, k+1, res.RFast[i][k-1], res.RFast[i][k])
			}
		}
	}
	// Two backups dominate one backup at every severity.
	for k := 0; k < res.MaxFail; k++ {
		if res.RFast[2][k]+1e-9 < res.RFast[0][k] {
			t.Errorf("k=%d: double backups (%.3f) below single (%.3f)",
				k+1, res.RFast[2][k], res.RFast[0][k])
		}
	}
	// R_fast never exceeds backup survival.
	for i := range res.Configs {
		for k := 0; k < res.MaxFail; k++ {
			if res.RFast[i][k] > res.BackupOK[i][k]+1e-9 {
				t.Errorf("config %d k=%d: R_fast %.3f above survival %.3f",
					i, k+1, res.RFast[i][k], res.BackupOK[i][k])
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "k=3") {
		t.Fatal("render broken")
	}
}

func TestScalabilityMonotoneAndSound(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	// A reduced sweep keeps the test fast: reuse the driver's internals by
	// checking the full driver on its two smallest sizes via RunScalability
	// would still establish 10k+ connections; instead validate the RCC
	// provisioning helper and one small establishment directly.
	g := NewGraph(Torus8x8)
	m := core.NewManager(g, DefaultOptions().config())
	EstablishAllPairs(m, UniformDegrees(1, 3))
	maxChans, bytes := RCCProvisioning(m)
	if maxChans <= 0 || bytes != maxChans*14 {
		t.Fatalf("provisioning: %d channels, %d bytes", maxChans, bytes)
	}
	// Every link pair's channel count is at most the reported max.
	for _, l := range g.Links() {
		count := len(m.Network().ChannelsOnLink(l.ID))
		if rev := g.Reverse(l.ID); rev >= 0 {
			count += len(m.Network().ChannelsOnLink(rev))
		}
		if count > maxChans {
			t.Fatalf("link %d pair has %d channels > reported max %d", l.ID, count, maxChans)
		}
	}
}

// TestMixedDegreesNeedPriorityActivation is the negative control for
// Table 2: with the §3.2 degree-restricted spare sizing, the mux=1 class
// keeps its single-failure guarantee only when activation is
// priority-ordered. Processing activations in plain establishment order
// lets cheap classes drain pools sized for the critical class.
func TestMixedDegreesNeedPriorityActivation(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	opts := DefaultOptions()
	g := NewGraph(Torus8x8)
	m := core.NewManager(g, opts.config())
	EstablishAllPairs(m, CyclicDegrees(1, []int{1, 3, 5, 6}))

	withPriority := opts
	withPriority.Order = core.OrderByPriority
	pr := Sweep(m, AllSingleLinkFailures(g), withPriority).ByDegree
	if pr[1] != 1 {
		t.Fatalf("priority order: mux=1 class = %v, want 1", pr[1])
	}
	plain := Sweep(m, AllSingleLinkFailures(g), opts).ByDegree
	if plain[1] >= 1 {
		t.Fatalf("plain order unexpectedly preserved the mux=1 guarantee (%v); the negative control is vacuous", plain[1])
	}
}

func TestAblationDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opts := DefaultOptions()
	opts.DoubleNodeSample = 50
	res := RunAblation(opts)
	byName := map[string]AblationRow{}
	for _, r := range append(append([]AblationRow{}, res.Routing...), res.PiRule...) {
		byName[r.Name] = r
	}
	seq := byName["sequential shortest-path (paper)"]
	aware := byName["load-aware [HAN97b]"]
	if aware.SpareBW >= seq.SpareBW {
		t.Fatalf("load-aware spare %.4f not below sequential %.4f", aware.SpareBW, seq.SpareBW)
	}
	if aware.OneLink < 0.99 {
		t.Fatalf("load-aware lost the mux=3 link guarantee: %.4f", aware.OneLink)
	}
	on := byName["Π degree restriction on (paper)"]
	off := byName["Π degree restriction off"]
	if off.SpareBW <= on.SpareBW {
		t.Fatalf("disabling the Π rule should inflate spare: on=%.4f off=%.4f", on.SpareBW, off.SpareBW)
	}
	if out := res.Render(); !strings.Contains(out, "Π degree restriction") {
		t.Fatal("render broken")
	}
}
