package core

import (
	"testing"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

func TestConnectionPrNoBackup(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	conn, err := m.Establish(0, 5, rtchan.DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := reliability.ChannelSurvival(m.plan.cfg.Lambda, conn.Primary.Path.NumComponents())
	if got := m.ConnectionPr(conn); got != want {
		t.Fatalf("Pr = %g, want %g", got, want)
	}
}

func TestConnectionPrImprovesWithBackups(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	m := newTestManager(g)
	c0, err := m.Establish(0, 36, rtchan.DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := m.Establish(1, 37, rtchan.DefaultSpec(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Establish(2, 38, rtchan.DefaultSpec(), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1, p2 := m.ConnectionPr(c0), m.ConnectionPr(c1), m.ConnectionPr(c2)
	if !(p0 < p1 && p1 < p2 && p2 <= 1) {
		t.Fatalf("Pr not increasing: %g %g %g", p0, p1, p2)
	}
}

func TestConnectionPrDegradesWithMultiplexing(t *testing.T) {
	// A backup multiplexed with many peers has a larger P_muxf bound.
	g, path := mesh3(t)
	lone := newTestManager(g)
	cLone, err := lone.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	crowded := newTestManager(g)
	cCrowd, err := crowded.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crowded.EstablishOnPaths(spec1(), path(6, 7, 8),
		[]topology.Path{path(6, 3, 4, 5, 8)}, []int{6}); err != nil {
		t.Fatal(err)
	}
	if got, want := crowded.ConnectionPr(cCrowd), lone.ConnectionPr(cLone); got >= want {
		t.Fatalf("multiplexed Pr %g should be below lone Pr %g", got, want)
	}
}

func TestEstablishWithPrZeroBackupsSuffices(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	// A 1-hop connection survives with probability (1-λ)^3 ≈ 0.9997;
	// requiring 0.99 needs no backups.
	conn, err := m.EstablishWithPr(0, 1, rtchan.DefaultSpec(), 0.99, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 0 {
		t.Fatalf("backups = %d, want 0", len(conn.Backups))
	}
}

func TestEstablishWithPrAddsBackups(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	m := newTestManager(g)
	// An 8-hop primary survives with (1-1e-4)^17 ≈ 0.9983: requiring
	// 0.9999 forces at least one backup.
	conn, err := m.EstablishWithPr(0, 36, rtchan.DefaultSpec(), 0.9999, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) == 0 {
		t.Fatal("expected at least one backup")
	}
	if got := m.ConnectionPr(conn); got < 0.9999 {
		t.Fatalf("delivered Pr %g below requirement", got)
	}
}

func TestEstablishWithPrPicksLargestDegree(t *testing.T) {
	// With no competing backups, any degree yields the same Pr, so the
	// negotiation must settle on the largest (cheapest) degree offered.
	g := topology.NewTorus(8, 8, 200)
	m := newTestManager(g)
	conn, err := m.EstablishWithPr(0, 36, rtchan.DefaultSpec(), 0.9999, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range conn.Degrees {
		if d != 6 {
			t.Fatalf("degrees = %v, want all 6", conn.Degrees)
		}
	}
}

func TestEstablishWithPrTightensDegreeUnderContention(t *testing.T) {
	// Fill a corridor with backups multiplexed at high degree whose
	// primaries overlap the new connection's primary, so a high-ν backup
	// suffers a large P_muxf bound and the negotiation must pick a smaller ν
	// (or more backups).
	g := topology.NewTorus(8, 8, 200)
	m := newTestManager(g)
	for i := 0; i < 6; i++ {
		if _, err := m.Establish(0, 36, rtchan.DefaultSpec(), []int{8}); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := m.EstablishWithPr(0, 36, rtchan.DefaultSpec(), 0.99985, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ConnectionPr(conn); got < 0.99985 {
		t.Fatalf("delivered Pr %g below requirement", got)
	}
	// The cheapest configuration (one backup at degree 8) must not satisfy
	// the requirement here, otherwise the test is vacuous.
	probe := newTestManager(g)
	for i := 0; i < 6; i++ {
		if _, err := probe.Establish(0, 36, rtchan.DefaultSpec(), []int{8}); err != nil {
			t.Fatal(err)
		}
	}
	cheap, err := probe.Establish(0, 36, rtchan.DefaultSpec(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if probe.ConnectionPr(cheap) >= 0.99985 {
		t.Skip("contention too weak to exercise tightening on this topology")
	}
	if len(conn.Degrees) == 1 && conn.Degrees[0] == 8 {
		t.Fatal("negotiation returned the cheapest config despite it missing the requirement")
	}
}

func TestEstablishWithPrRejectsImpossible(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := newTestManager(g)
	if _, err := m.EstablishWithPr(0, 5, rtchan.DefaultSpec(), 0.9999999999, 1, 6); err == nil {
		t.Fatal("unattainable Pr accepted")
	}
	if m.NumConnections() != 0 {
		t.Fatal("failed negotiation left connections behind")
	}
	if _, err := m.EstablishWithPr(0, 5, rtchan.DefaultSpec(), 1.5, 1, 6); err == nil {
		t.Fatal("invalid Pr accepted")
	}
}

func TestProspectivePsiMatchesCommitted(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	if _, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{6}); err != nil {
		t.Fatal(err)
	}
	primary := path(6, 7, 8)
	backup := path(6, 3, 4, 5, 8)
	predicted := m.prospectivePsiSizes(primary, backup, 6)
	conn, err := m.EstablishOnPaths(spec1(), primary, []topology.Path{backup}, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	actual := m.PsiSizes(conn.Backups[0])
	for i := range predicted {
		if predicted[i] != actual[i] {
			t.Fatalf("psi mismatch at link %d: predicted %v actual %v", i, predicted, actual)
		}
	}
}
