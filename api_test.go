package bcp_test

// Black-box tests of the public facade: everything an adopter of the
// library touches, exercised end to end through the package bcp API only.

import (
	"testing"
	"time"

	"github.com/rtcl/bcp"
)

func TestPublicQuickstartFlow(t *testing.T) {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())

	conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Primary == nil || len(conn.Backups) != 1 {
		t.Fatal("connection incomplete")
	}
	if !conn.Primary.Path.ComponentDisjoint(conn.Backups[0].Path) {
		t.Fatal("channels not disjoint")
	}
	if pr := mgr.ConnectionPr(conn); pr < 0.999 || pr > 1 {
		t.Fatalf("Pr = %g", pr)
	}

	// Transactional failure trial.
	stats := mgr.Trial(bcp.SingleLink(conn.Primary.Path.Links()[0]), bcp.OrderByConn, nil)
	if stats.RFast() != 1 {
		t.Fatalf("RFast = %g", stats.RFast())
	}

	// Message-level recovery.
	eng := bcp.NewEngine(1)
	proto := bcp.NewProtocol(eng, mgr, bcp.DefaultProtocolConfig())
	if err := proto.StartTraffic(conn.ID, 1000); err != nil {
		t.Fatal(err)
	}
	eng.At(bcp.Time(50*time.Millisecond), func() {
		proto.FailLink(conn.Primary.Path.Links()[2])
	})
	eng.RunFor(500 * time.Millisecond)
	if len(proto.SourceSwitches(conn.ID)) != 1 {
		t.Fatal("no recovery")
	}
	if proto.Stats().DataDelivered == 0 {
		t.Fatal("no data delivered")
	}
}

func TestPublicTopologyAndRouting(t *testing.T) {
	for _, g := range []*bcp.Graph{
		bcp.NewTorus(4, 4, 100), bcp.NewMesh(3, 5, 100), bcp.NewRing(6, 10),
		bcp.NewLine(4, 10), bcp.NewHypercube(3, 10), bcp.NewRandom(20, 3, 10, 1),
	} {
		if g.NumNodes() == 0 || g.NumLinks() == 0 {
			t.Fatalf("%s empty", g.Name())
		}
	}
	g := bcp.NewTorus(4, 4, 100)
	if d := bcp.Distance(g, 0, 5); d != 2 {
		t.Fatalf("distance = %d", d)
	}
	p, ok := bcp.ShortestPath(g, 0, 5, bcp.RoutingConstraint{})
	if !ok || p.Hops() != 2 {
		t.Fatal("shortest path wrong")
	}
	seq := bcp.SequentialDisjointPaths(g, 0, 5, 4, bcp.RoutingConstraint{})
	flow := bcp.MaxDisjointPaths(g, 0, 5, 4, bcp.RoutingConstraint{})
	if len(flow) < len(seq) {
		t.Fatal("flow found fewer paths than greedy")
	}
}

func TestPublicReliabilityMath(t *testing.T) {
	s := bcp.SimultaneousActivation(1e-4, 9, 9, 3)
	if s < 2.9e-4 || s > 3.1e-4 {
		t.Fatalf("S = %g", s)
	}
	if nu := bcp.NuForDegree(1e-4, 3); s >= nu {
		// share 3 components at mux=3: not multiplexed
	} else {
		t.Fatal("threshold semantics wrong")
	}
	pr := bcp.Pr(1e-4, 9, nil)
	if pr <= 0.999 || pr >= 1 {
		t.Fatalf("Pr = %g", pr)
	}
	m := bcp.DConnModel{Lambda1: 1e-3, Lambda2: 1e-3, Mu: 10}
	if r := m.Reliability(10); r < 0.999 || r > 1 {
		t.Fatalf("R(10) = %g", r)
	}
	if b := bcp.MuxFailureBound(0.001, []int{1, 2}); b <= 0 || b >= 1 {
		t.Fatalf("bound = %g", b)
	}
}

func TestPublicWorkloads(t *testing.T) {
	g := bcp.NewTorus(4, 4, 200)
	if got := len(bcp.AllPairs(g, bcp.DefaultSpec(), nil)); got != 240 {
		t.Fatalf("all pairs = %d", got)
	}
	rng := bcp.NewRand(1)
	hs := bcp.HotSpot(g, bcp.HotSpotConfig{
		Requests: 50, HotNodes: []bcp.NodeID{5}, HotFraction: 0.5,
		Spec: bcp.DefaultSpec(),
	}, rng)
	if len(hs) != 50 {
		t.Fatalf("hotspot = %d", len(hs))
	}
	dyn := bcp.Dynamic(g, bcp.DynamicConfig{
		ArrivalRate: 100, MeanHolding: time.Second, Duration: time.Second,
		Spec: bcp.DefaultSpec(),
	}, rng)
	if len(dyn) == 0 {
		t.Fatal("no dynamic requests")
	}
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	eng := bcp.NewEngine(2)
	stats := bcp.RunChurn(eng, mgr, dyn)
	eng.Run()
	if stats.Established == 0 {
		t.Fatal("churn established nothing")
	}
}

func TestPublicNegotiatedEstablishment(t *testing.T) {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	conn, err := mgr.EstablishWithPr(0, 36, bcp.DefaultSpec(), 0.9999, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.ConnectionPr(conn) < 0.9999 {
		t.Fatal("negotiated Pr not met")
	}
}

func TestPublicApplyRecovery(t *testing.T) {
	g := bcp.NewTorus(6, 6, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	reqs := bcp.AllPairs(g, bcp.DefaultSpec(), []int{3})
	bcp.EstablishWorkload(mgr, reqs[:300])
	rs, err := mgr.Apply(bcp.SingleNode(7), bcp.OrderByPriority, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FailedPrimaries == 0 {
		t.Fatal("node 7 hit nothing")
	}
	if err := mgr.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBackupRoutingModes(t *testing.T) {
	for _, mode := range []bcp.Config{
		func() bcp.Config { c := bcp.DefaultConfig(); c.BackupRouting = bcp.RouteSequential; return c }(),
		func() bcp.Config { c := bcp.DefaultConfig(); c.BackupRouting = bcp.RouteMaxFlow; return c }(),
		func() bcp.Config { c := bcp.DefaultConfig(); c.BackupRouting = bcp.RouteLoadAware; return c }(),
	} {
		mgr := bcp.NewManager(bcp.NewTorus(6, 6, 200), mode)
		conn, err := mgr.Establish(0, 14, bcp.DefaultSpec(), []int{3})
		if err != nil {
			t.Fatal(err)
		}
		if !conn.Primary.Path.ComponentDisjoint(conn.Backups[0].Path) {
			t.Fatal("backup not disjoint")
		}
	}
}

func TestPublicSchemeConstants(t *testing.T) {
	if bcp.Scheme1 == bcp.Scheme2 || bcp.Scheme2 == bcp.Scheme3 {
		t.Fatal("scheme constants collide")
	}
	cfg := bcp.DefaultProtocolConfig()
	cfg.Scheme = bcp.Scheme2
	mgr := bcp.NewManager(bcp.NewTorus(4, 4, 200), bcp.DefaultConfig())
	if _, err := mgr.Establish(0, 5, bcp.DefaultSpec(), []int{1}); err != nil {
		t.Fatal(err)
	}
	proto := bcp.NewProtocol(bcp.NewEngine(1), mgr, cfg)
	if proto == nil {
		t.Fatal("protocol nil")
	}
}

func TestPublicConcurrentSweep(t *testing.T) {
	g := bcp.NewTorus(4, 4, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s != d {
				if _, err := mgr.Establish(bcp.NodeID(s), bcp.NodeID(d), bcp.DefaultSpec(), []int{3}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	failures := bcp.AllSingleLinkFailures(g)
	opts := bcp.DefaultExperimentOptions()
	serial := bcp.Sweep(mgr, failures, opts)
	opts.Workers = 4
	pooled := bcp.SweepParallel(mgr, failures, opts)
	if serial.RFast != pooled.RFast || serial.Trials != pooled.Trials {
		t.Fatalf("parallel sweep %+v != serial %+v", pooled, serial)
	}

	// A per-goroutine view trials read-only over the manager's shared plan.
	view := mgr.NewTrialView()
	f := bcp.SingleLink(failures[0].Links()[0])
	if got, want := view.Trial(f, bcp.OrderByConn, nil), mgr.Trial(f, bcp.OrderByConn, nil); got.FastRecovered != want.FastRecovered {
		t.Fatalf("view trial %+v != manager trial %+v", got, want)
	}
	if view.PlanEpoch() != mgr.PlanEpoch() {
		t.Fatal("view and manager disagree on plan epoch")
	}
}
