package core

import (
	"fmt"
	"math"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// muxEntry is the per-link bookkeeping for one backup channel (§3.2).
type muxEntry struct {
	ch    *rtchan.Channel
	conn  *DConnection
	alpha int     // paper's integer multiplexing degree
	nu    float64 // threshold ν = (α-0.5)·λ
	// pi is Π(Bi,ℓ): the backups on this link that Bi must NOT share spare
	// bandwidth with, restricted — per the paper's refinement — to backups
	// whose multiplexing degree is no greater than Bi's.
	pi map[rtchan.ChannelID]struct{}
	// req is this backup's spare-bandwidth requirement on the link:
	// bw(Bi) + Σ_{Bj ∈ Π} bw(Bj).
	req float64
}

// linkMux is one link's multiplexing state. The link's spare reservation is
// the maximum requirement over its entries; activation claims draw the pool
// down temporarily until reconfiguration.
type linkMux struct {
	entries map[rtchan.ChannelID]*muxEntry
	spare   float64 // committed spare reservation (mirrors rtchan account)
	claimed float64 // drawn by activations since the last reconfiguration
	// claims tracks protocol-mode activation claims by channel, so the
	// bidirectional activations of Scheme 3 stay idempotent per link.
	claims map[rtchan.ChannelID]float64
}

// requiredSpare recomputes the max requirement over entries.
func (lm *linkMux) requiredSpare() float64 {
	var max float64
	for _, e := range lm.entries {
		if e.req > max {
			max = e.req
		}
	}
	return max
}

// available returns the spare bandwidth an activation can still claim.
func (lm *linkMux) available() float64 { return lm.spare - lm.claimed }

// mutualExclusion decides the Π relationship for a pair of backups a and b
// with primaries Ma and Mb (paper §3.2): they may share spare bandwidth iff
// S(Ba,Bb) < ν, evaluated per side against that side's own ν, and each side
// only *counts* peers with no greater degree. Backups of the same connection
// never share spare: they are activated by the same primary failure.
//
// It reports (a counts b in Π(a), b counts a in Π(b)).
func (m *Manager) mutualExclusion(a, b *muxEntry) (aCountsB, bCountsA bool) {
	if a.conn.ID == b.conn.ID {
		return true, true
	}
	pa, pb := a.conn.Primary, b.conn.Primary
	if pa == nil || pb == nil {
		// A connection that momentarily has no primary (its repaired
		// channel is rejoining while recovery is still unresolved) gets
		// conservative treatment: its backup shares spare with nothing.
		return true, true
	}
	s := reliability.SimultaneousActivation(
		m.cfg.Lambda,
		pa.Path.NumComponents(),
		pb.Path.NumComponents(),
		pa.Path.SharedComponents(pb.Path),
	)
	if m.cfg.DisablePiDegreeRestriction {
		return s >= a.nu, s >= b.nu
	}
	aCountsB = b.nu <= a.nu && s >= a.nu
	bCountsA = a.nu <= b.nu && s >= b.nu
	return aCountsB, bCountsA
}

// addBackupToLink registers backup ch on link l and resizes the link's spare
// pool, enforcing the capacity invariant. On failure the link state is
// unchanged.
func (m *Manager) addBackupToLink(l topology.LinkID, conn *DConnection, ch *rtchan.Channel, alpha int) error {
	lm := &m.mux[l]
	bw := ch.Bandwidth()
	entry := &muxEntry{
		ch:    ch,
		conn:  conn,
		alpha: alpha,
		nu:    reliability.NuForDegree(m.cfg.Lambda, alpha),
		pi:    make(map[rtchan.ChannelID]struct{}),
		req:   bw,
	}
	// Tentatively wire the new entry into the Π structure.
	type delta struct {
		e *muxEntry
	}
	var grown []delta
	for _, e := range lm.entries {
		newInE, eInNew := m.mutualExclusion(e, entry)
		if newInE {
			e.pi[ch.ID] = struct{}{}
			e.req += bw
			grown = append(grown, delta{e})
		}
		if eInNew {
			entry.pi[e.ch.ID] = struct{}{}
			entry.req += e.ch.Bandwidth()
		}
	}
	lm.entries[ch.ID] = entry
	need := lm.requiredSpare()
	if need > lm.spare {
		if err := m.net.SetSpare(l, need); err != nil {
			// Roll back.
			delete(lm.entries, ch.ID)
			for _, d := range grown {
				delete(d.e.pi, ch.ID)
				d.e.req -= bw
			}
			return fmt.Errorf("core: link %d cannot grow spare to %g: %w", l, need, err)
		}
		lm.spare = need
	}
	return nil
}

// removeBackupFromLink unregisters backup ch from link l, shrinking the
// spare pool if possible. Shrinking cannot fail.
func (m *Manager) removeBackupFromLink(l topology.LinkID, ch *rtchan.Channel) {
	lm := &m.mux[l]
	if _, ok := lm.entries[ch.ID]; !ok {
		return
	}
	delete(lm.entries, ch.ID)
	bw := ch.Bandwidth()
	for _, e := range lm.entries {
		if _, had := e.pi[ch.ID]; had {
			delete(e.pi, ch.ID)
			e.req -= bw
		}
	}
	need := lm.requiredSpare()
	if need < lm.spare {
		// Never shrink below what activations have already claimed.
		if need < lm.claimed {
			need = lm.claimed
		}
		if err := m.net.SetSpare(l, need); err != nil {
			panic("core: shrinking spare failed: " + err.Error())
		}
		lm.spare = need
	}
}

// addBackup registers a backup on every link of its path, transactionally.
func (m *Manager) addBackup(conn *DConnection, ch *rtchan.Channel, alpha int) error {
	links := ch.Path.Links()
	for i, l := range links {
		if err := m.addBackupToLink(l, conn, ch, alpha); err != nil {
			for _, u := range links[:i] {
				m.removeBackupFromLink(u, ch)
			}
			return err
		}
	}
	return nil
}

// removeBackup unregisters a backup from all links of its path.
func (m *Manager) removeBackup(ch *rtchan.Channel) {
	for _, l := range ch.Path.Links() {
		m.removeBackupFromLink(l, ch)
	}
}

// PsiSizes returns |Ψ(B,ℓ)| for each link ℓ of backup ch's path: the number
// of backups multiplexed with it (all backups on the link minus Π minus the
// backup itself). Feeds the P_muxf bound of §3.3.
func (m *Manager) PsiSizes(ch *rtchan.Channel) []int {
	links := ch.Path.Links()
	out := make([]int, len(links))
	for i, l := range links {
		lm := &m.mux[l]
		e, ok := lm.entries[ch.ID]
		if !ok {
			continue
		}
		psi := len(lm.entries) - len(e.pi) - 1
		if psi < 0 {
			psi = 0
		}
		out[i] = psi
	}
	return out
}

// BackupsOnLink returns the number of backup channels registered on link l.
func (m *Manager) BackupsOnLink(l topology.LinkID) int { return len(m.mux[l].entries) }

// SpareOnLink returns the committed spare reservation on link l.
func (m *Manager) SpareOnLink(l topology.LinkID) float64 { return m.mux[l].spare }

// prospectiveSpareIncrease predicts how much link l's spare pool would grow
// if a backup with the given bandwidth, threshold ν, and primary path were
// admitted — the link weight of the [HAN97b]-style load-aware backup
// routing (RouteLoadAware).
func (m *Manager) prospectiveSpareIncrease(l topology.LinkID, primary topology.Path, bw, nu float64) float64 {
	lm := &m.mux[l]
	newReq := bw
	maxGrown := 0.0
	for _, e := range lm.entries {
		ep := e.conn.Primary
		if ep == nil {
			continue
		}
		s := reliability.SimultaneousActivation(
			m.cfg.Lambda,
			primary.NumComponents(),
			ep.Path.NumComponents(),
			primary.SharedComponents(ep.Path),
		)
		var newInE, eInNew bool
		if m.cfg.DisablePiDegreeRestriction {
			newInE, eInNew = s >= e.nu, s >= nu
		} else {
			newInE = nu <= e.nu && s >= e.nu
			eInNew = e.nu <= nu && s >= nu
		}
		if eInNew {
			newReq += e.ch.Bandwidth()
		}
		if newInE && e.req+bw > maxGrown {
			maxGrown = e.req + bw
		}
	}
	need := math.Max(newReq, maxGrown)
	if need <= lm.spare {
		return 0
	}
	return need - lm.spare
}

// recomputeLinkMux rebuilds the Π structure of one link from scratch —
// used by reconfiguration after primaries change (an activated backup's new
// primary path changes every S involving that connection).
func (m *Manager) recomputeLinkMux(l topology.LinkID) error {
	lm := &m.mux[l]
	for _, e := range lm.entries {
		e.pi = make(map[rtchan.ChannelID]struct{}, len(lm.entries))
		e.req = e.ch.Bandwidth()
	}
	// Deterministic pair iteration order is unnecessary: the result is
	// order-independent (pure function of the entry set).
	done := make(map[rtchan.ChannelID]struct{}, len(lm.entries))
	for ida, a := range lm.entries {
		for idb, b := range lm.entries {
			if ida == idb {
				continue
			}
			if _, seen := done[idb]; seen {
				continue
			}
			aCountsB, bCountsA := m.mutualExclusion(a, b)
			if aCountsB {
				a.pi[idb] = struct{}{}
				a.req += b.ch.Bandwidth()
			}
			if bCountsA {
				b.pi[ida] = struct{}{}
				b.req += a.ch.Bandwidth()
			}
		}
		done[ida] = struct{}{}
	}
	need := math.Max(lm.requiredSpare(), lm.claimed)
	if err := m.net.SetSpare(l, need); err != nil {
		return err
	}
	lm.spare = need
	return nil
}

// CheckMuxInvariants validates the engine's internal consistency; tests call
// it after mutation sequences.
func (m *Manager) CheckMuxInvariants() error {
	for l := range m.mux {
		lm := &m.mux[l]
		if lm.spare+1e-9 < lm.requiredSpare() && lm.claimed == 0 {
			return fmt.Errorf("core: link %d spare %g below requirement %g", l, lm.spare, lm.requiredSpare())
		}
		if got := m.net.Spare(topology.LinkID(l)); math.Abs(got-lm.spare) > 1e-6 {
			return fmt.Errorf("core: link %d spare mirror drift: mux=%g rtchan=%g", l, lm.spare, got)
		}
		for id, e := range lm.entries {
			if e.ch.ID != id {
				return fmt.Errorf("core: link %d entry id mismatch", l)
			}
			want := e.ch.Bandwidth()
			for peer := range e.pi {
				pe, ok := lm.entries[peer]
				if !ok {
					return fmt.Errorf("core: link %d entry %d references absent peer %d", l, id, peer)
				}
				want += pe.ch.Bandwidth()
				// The ν-ordering rule applies between connections that both
				// have primaries; a primary-less connection (mid-recovery
				// rejoin) is counted conservatively from both sides.
				if !m.cfg.DisablePiDegreeRestriction && pe.nu > e.nu+1e-18 && pe.conn.ID != e.conn.ID &&
					pe.conn.Primary != nil && e.conn.Primary != nil {
					return fmt.Errorf("core: link %d entry %d counts peer %d with larger ν", l, id, peer)
				}
			}
			if math.Abs(want-e.req) > 1e-6 {
				return fmt.Errorf("core: link %d entry %d req drift: stored %g recomputed %g", l, id, e.req, want)
			}
		}
	}
	return nil
}
