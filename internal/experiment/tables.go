package experiment

import (
	"fmt"

	"github.com/rtcl/bcp/internal/baseline"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
)

// AlphaColumn is one column of Tables 1 and 3: the outcome of a whole
// establishment + failure-sweep run at a fixed multiplexing degree.
type AlphaColumn struct {
	Alpha       int
	Established int
	Rejected    int
	NetworkLoad float64
	SpareBW     float64 // fraction of total capacity (NaN when infeasible)
	OneLink     float64 // R_fast under single link failures
	OneNode     float64 // R_fast under single node failures
	TwoNodes    float64 // R_fast under double node failures
}

// Table1Result reproduces one sub-table of Table 1 ("R_fast with same
// multiplexing degrees").
type Table1Result struct {
	Kind    Kind
	Backups int
	Columns []AlphaColumn
}

// RunTable1 reproduces Table 1: establish the all-pairs workload with the
// given number of backups per connection at each multiplexing degree, then
// sweep the three failure models. A configuration whose establishment
// rejects more than 5% of connections is reported as infeasible (the
// paper's "N/A": total bandwidth requirement exceeded network capacity),
// with NaN metrics.
func RunTable1(kind Kind, backups int, alphas []int, opts Options) Table1Result {
	res := Table1Result{Kind: kind, Backups: backups}
	for _, alpha := range alphas {
		res.Columns = append(res.Columns, runAlphaColumn(kind, backups, alpha, opts, false))
	}
	return res
}

func runAlphaColumn(kind Kind, backups, alpha int, opts Options, brute bool) AlphaColumn {
	g := NewGraph(kind)
	m := core.NewManager(g, opts.config())
	est, rej := EstablishAllPairs(m, UniformDegrees(backups, alpha))
	col := AlphaColumn{Alpha: alpha, Established: est, Rejected: rej}
	nan := func() float64 { var z float64; return 0 / z }
	if rej*20 > est+rej {
		col.SpareBW, col.OneLink, col.OneNode, col.TwoNodes = nan(), nan(), nan(), nan()
		col.NetworkLoad = m.Network().NetworkLoad()
		return col
	}
	col.NetworkLoad = m.Network().NetworkLoad()
	col.SpareBW = m.Network().SpareFraction()

	var trialer Trialer = m
	if brute {
		trialer = baseline.NewBruteForce(m, baseline.UniformSpareFromManager(m), true)
	}
	res := sweepMany(trialer, [][]core.Failure{
		AllSingleLinkFailures(g),
		AllSingleNodeFailures(g),
		AllDoubleNodeFailures(g, opts.DoubleNodeSample, opts.Seed),
	}, opts)
	col.OneLink = res[0].RFast
	col.OneNode = res[1].RFast
	col.TwoNodes = res[2].RFast
	return col
}

// Render prints the result in the paper's Table 1 layout.
func (r Table1Result) Render() string {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Table 1: R_fast with same multiplexing degrees — %d backup(s) in %s", r.Backups, r.Kind),
		Columns: append([]string{"Muxing degree"}, degreeHeaders(r.Columns)...),
	}
	addAlphaRows(t, r.Columns)
	return t.String()
}

func degreeHeaders(cols []AlphaColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = fmt.Sprintf("mux=%d", c.Alpha)
	}
	return out
}

func addAlphaRows(t *metrics.Table, cols []AlphaColumn) {
	row := func(label string, get func(AlphaColumn) float64) {
		vals := make([]float64, len(cols))
		for i, c := range cols {
			vals[i] = get(c)
		}
		t.AddPercentRow(label, vals...)
	}
	row("Spare bandwidth", func(c AlphaColumn) float64 { return c.SpareBW })
	row("1 link failure", func(c AlphaColumn) float64 { return c.OneLink })
	row("1 node failure", func(c AlphaColumn) float64 { return c.OneNode })
	row("2 node failures", func(c AlphaColumn) float64 { return c.TwoNodes })
}

// Table2Result reproduces one sub-table of Table 2 ("R_fast with mixed
// multiplexing degrees"): a single workload mixing the four degree classes
// equally, with per-class fast-recovery ratios.
type Table2Result struct {
	Kind        Kind
	Backups     int
	Alphas      []int
	Established int
	Rejected    int
	SpareBW     float64
	OneLink     map[int]float64
	OneNode     map[int]float64
	TwoNodes    map[int]float64
}

// RunTable2 reproduces Table 2: 1/4 of connections at each degree in alphas.
//
// Activation uses the paper's priority-based order (§4.3): spare pools sized
// under the "no greater multiplexing degree" refinement of §3.2 only cover a
// backup against peers of its own or smaller degree, so the per-class
// guarantees hold exactly when smaller-ν backups claim spare bandwidth
// first. (Without priority activation the mux=1 class would lose its 100%
// single-failure coverage to claims from cheaper classes.)
func RunTable2(kind Kind, backups int, alphas []int, opts Options) Table2Result {
	opts.Order = core.OrderByPriority
	g := NewGraph(kind)
	m := core.NewManager(g, opts.config())
	est, rej := EstablishAllPairs(m, CyclicDegrees(backups, alphas))
	res := Table2Result{
		Kind: kind, Backups: backups, Alphas: alphas,
		Established: est, Rejected: rej,
		SpareBW: m.Network().SpareFraction(),
	}
	sw := sweepMany(m, [][]core.Failure{
		AllSingleLinkFailures(g),
		AllSingleNodeFailures(g),
		AllDoubleNodeFailures(g, opts.DoubleNodeSample, opts.Seed),
	}, opts)
	res.OneLink = sw[0].ByDegree
	res.OneNode = sw[1].ByDegree
	res.TwoNodes = sw[2].ByDegree
	return res
}

// Render prints the result in the paper's Table 2 layout.
func (r Table2Result) Render() string {
	t := &metrics.Table{
		Title: fmt.Sprintf("Table 2: R_fast with mixed multiplexing degrees — %d backup(s) in %s (spare bandwidth %s)",
			r.Backups, r.Kind, metrics.FormatPercent(r.SpareBW)),
		Columns: append([]string{"Muxing degree"}, alphaHeaders(r.Alphas)...),
	}
	row := func(label string, m map[int]float64) {
		vals := make([]float64, len(r.Alphas))
		for i, a := range r.Alphas {
			if v, ok := m[a]; ok {
				vals[i] = v
			} else {
				var z float64
				vals[i] = 0 / z
			}
		}
		t.AddPercentRow(label, vals...)
	}
	row("1 link failure", r.OneLink)
	row("1 node failure", r.OneNode)
	row("2 node failures", r.TwoNodes)
	return t.String()
}

func alphaHeaders(alphas []int) []string {
	out := make([]string, len(alphas))
	for i, a := range alphas {
		out[i] = fmt.Sprintf("mux=%d", a)
	}
	return out
}

// RunTable3 reproduces Table 3: brute-force multiplexing with the uniform
// per-link spare sized to the proposed scheme's average at each degree.
func RunTable3(kind Kind, alphas []int, opts Options) Table1Result {
	res := Table1Result{Kind: kind, Backups: 1}
	for _, alpha := range alphas {
		res.Columns = append(res.Columns, runAlphaColumn(kind, 1, alpha, opts, true))
	}
	return res
}

// RenderTable3 prints a Table-3 style table (same rows as Table 1, brute
// force activation).
func RenderTable3(r Table1Result) string {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Table 3: R_fast with brute-force multiplexing — %s", r.Kind),
		Columns: append([]string{"Spare bandwidth"}, degreeHeaders(r.Columns)...),
	}
	addAlphaRows(t, r.Columns)
	return t.String()
}
