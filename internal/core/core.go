// Package core implements the paper's primary contribution: the Backup
// Channel Protocol (BCP) control plane.
//
// A dependable connection (D-connection) is a primary real-time channel plus
// zero or more cold-standby backup channels, routed component-disjointly.
// Spare bandwidth for backups is shared per link by *backup multiplexing*
// (§3.2): two backups may share spare bandwidth when the probability
// S(Bi,Bj) that they need simultaneous activation — bounded by the
// probability of simultaneous failure of their primaries — is below the
// per-connection multiplexing threshold ν.
//
// The Manager provides the transactional view used by the paper's
// evaluation: connection establishment (§3.4), failure trials measuring the
// fast-recovery ratio R_fast (§7.2-7.4), activation with spare-pool claims
// and multiplexing failures, and resource reconfiguration (§4.4). The
// message-level protocol machinery (failure reports, activation messages,
// rejoin, RCC transport) lives in internal/core's protocol files and
// internal/rcc.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/rtcl/bcp/internal/routing"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// BackupRouting selects the algorithm used to route backup channels.
type BackupRouting uint8

const (
	// RouteSequential is the paper's method: each backup takes a shortest
	// feasible path avoiding all components of the connection's earlier
	// channels.
	RouteSequential BackupRouting = iota
	// RouteMaxFlow uses unit-capacity max-flow to find component-disjoint
	// paths, avoiding greedy traps ([WHA90, SID91]).
	RouteMaxFlow
	// RouteLoadAware implements the spare-resource-aware backup routing the
	// authors develop in [HAN97b]: each link is weighted by the growth of
	// its spare pool if the backup crossed it, so backups gravitate toward
	// links where they multiplex well. Reduces total spare bandwidth at the
	// cost of (bounded) longer backup paths.
	RouteLoadAware
)

// Config parameterizes a Manager.
type Config struct {
	// Lambda is the per-component failure probability during one time unit
	// (the paper's λ). It scales every multiplexing threshold.
	Lambda float64

	// TieBreak randomizes shortest-path tie-breaking when non-nil. The
	// paper's tie-breaking is unspecified; randomized tie-breaking spreads
	// load across a symmetric topology the way the reported numbers imply.
	TieBreak *rand.Rand

	// BackupRouting selects the backup path algorithm (default sequential).
	BackupRouting BackupRouting

	// BackupSlackHops bounds each backup path to the shortest feasible
	// disjoint path length plus this slack. Negative means unbounded;
	// 0 means shortest-disjoint only. The paper does not state a bound for
	// backups; the default (DefaultBackupSlackHops) mirrors the primary's
	// +2 rule.
	BackupSlackHops int

	// DelayModel parameterizes the analytic end-to-end delay admission test
	// applied to primaries whose TrafficSpec carries a DelayBound. The zero
	// value falls back to rtchan.DefaultDelayModel.
	DelayModel rtchan.DelayModel

	// DisablePiDegreeRestriction turns off the paper's §3.2 refinement that
	// Π(Bi,ℓ) only counts backups with no greater multiplexing degree.
	// With the refinement off, one small-ν backup forces the link's spare
	// pool to cover every conflicting backup — the overestimation the paper
	// warns about. Exposed for the ablation experiment.
	DisablePiDegreeRestriction bool
}

// DefaultBackupSlackHops mirrors the primary channels' +2-hop QoS rule.
const DefaultBackupSlackHops = 2

// DefaultConfig returns the configuration used by the paper's evaluation:
// λ=1e-4 and sequential shortest-path routing.
func DefaultConfig() Config {
	return Config{Lambda: 1e-4, BackupSlackHops: DefaultBackupSlackHops}
}

// DConnection is a dependable connection: a primary channel and its backups.
type DConnection struct {
	ID       rtchan.ConnID
	Src, Dst topology.NodeID
	Spec     rtchan.TrafficSpec

	Primary *rtchan.Channel
	Backups []*rtchan.Channel // in serial (activation) order
	Degrees []int             // multiplexing degree α per backup (paper's "mux=α")
}

// Channels returns the primary followed by the backups.
func (d *DConnection) Channels() []*rtchan.Channel {
	out := make([]*rtchan.Channel, 0, 1+len(d.Backups))
	if d.Primary != nil {
		out = append(out, d.Primary)
	}
	return append(out, d.Backups...)
}

// Manager is the BCP control plane for one network. It owns a shared
// NetworkPlan (the state the paper computes its tables from) plus the
// writer-side machinery that mutates it.
//
// Concurrency model (see DESIGN.md "Concurrency model"): the public API is
// safe for concurrent use. Mutating entry points (Establish, Teardown,
// Apply, the protocol-plane claim/activation calls, ...) serialize behind a
// single-writer lock; read entry points take the reader side, so any number
// of them may run during quiescence and none during a write. Failure-sweep
// workers should each hold their own TrialView (NewTrialView): Trial via a
// view is a pure read over the shared plan with per-goroutine scratch, so
// sweeps scale with cores without rebuilding per-worker managers.
//
// Two escape hatches bypass the lock and are writer-side or quiescent-only:
// Router (routing scratch arenas) and Network (the reservation substrate,
// read by experiments after establishment settles).
type Manager struct {
	// mu is the single-writer boundary: every mutating entry point holds it
	// exclusively, every reading entry point (and every TrialView trial)
	// holds it shared. Internal methods never lock — public wrappers lock
	// once and delegate, so the lock is never re-entered.
	mu   sync.RWMutex
	plan NetworkPlan

	nextConn rtchan.ConnID
	muxDec   muxDecisionScratch // per-addBackup mutualExclusion memo
	// piMarks stamps the primary path of the backup being added, so the
	// admission scan's shared-component counts are array loads (decideMux).
	piMarks topology.PathMarks
	// router owns the routing scratch arenas and the per-source SPT cache.
	// It is writer-side state: establishment and recovery route under the
	// exclusive lock, and external Router() callers must not overlap writes.
	router *routing.Router
	// estExcl is the establishment-path exclusion set, reset per use. It is
	// shared by Establish and ReplenishBackups (never live at once); entry
	// points that interleave with Establish keep their own (see pr.go).
	estExcl *routing.Exclusion

	// estCtx is the writer-side planning context (wrapping m.router, estExcl,
	// piMarks and muxDec) and seqPlan its reusable plan buffer: sequential
	// Establish is plan+commit over these under the write lock, the same code
	// path the EstablishBatch pipeline speculates over (see establish.go).
	estCtx  *planContext
	seqPlan *connPlan
	// routers leases per-worker routing engines to batch planners; built
	// lazily on the first EstablishBatch (routersOnce).
	routers     *routing.RouterPool
	routersOnce sync.Once
	// pcPool recycles batch planner contexts (marks, memo, exclusion) and
	// planPool the per-request plan buffers, across EstablishBatch calls.
	pcPool   sync.Pool
	planPool sync.Pool

	// trial backs the Manager's own serial Trial entry point; trialMu keeps
	// that entry point safe against itself (concurrent sweeps should prefer
	// per-goroutine TrialViews, which don't contend on it).
	trialMu sync.Mutex
	trial   trialScratch

	// touched is the writer-side touched-link scratch shared by every
	// reconfiguration entry point (ActivateClaimed, TeardownChannel, Apply):
	// all of them run under the write lock and none nest, so one cleared map
	// serves each call without a per-call allocation. Recovery storms hit
	// these paths once per promotion and once per teardown.
	touched map[topology.LinkID]struct{}

	// piStale[l] marks that link l's stored pair decisions were derived from
	// a primary path that has since changed, so the next reconfiguration of l
	// must take the full Π rebuild; coalesceReconfig gates whether fresh
	// links may take the O(entries) resize instead (see reconfig.go).
	piStale          []bool
	coalesceReconfig bool

	// traceEm/traceClock emit protocol events from the claim paths when the
	// message-level engine attaches a sink (SetProtocolTrace). The zero
	// Emitter is disabled: one branch per claim call, no event construction.
	traceEm    trace.Emitter
	traceClock trace.Clock
}

// NewManager creates a BCP manager over an empty reservation network for g.
func NewManager(g *topology.Graph, cfg Config) *Manager {
	if cfg.Lambda <= 0 || cfg.Lambda >= 1 {
		panic(fmt.Sprintf("core: lambda %g out of (0,1)", cfg.Lambda))
	}
	m := &Manager{
		plan: NetworkPlan{
			cfg:    cfg,
			net:    rtchan.NewNetwork(g),
			conns:  make(map[rtchan.ConnID]*DConnection),
			mux:    make([]linkMux, g.NumLinks()),
			scache: newSCache(),
		},
		nextConn: 1,
		router:   routing.NewRouter(g),
		estExcl:  routing.NewExclusion(),
		piStale:  make([]bool, g.NumLinks()),
	}
	// Pre-warm the (1-λ)^k table past any component sum two primaries can
	// produce (each path has at most 2(N-1)+1 components), so read-side
	// planners never need to grow it.
	m.qpow(4 * g.NumNodes())
	m.estCtx = newPlanContext(m, m.router, m.estExcl, &m.piMarks, &m.muxDec)
	m.seqPlan = &connPlan{}
	return m
}

// beginWrite enters the single-writer critical section and advances the
// plan's write-transaction epoch; the returned function leaves the section.
// Every mutating entry point opens with `defer m.beginWrite()()` and then
// only calls unexported (lockless) methods, so the lock is never re-entered.
func (m *Manager) beginWrite() func() {
	m.mu.Lock()
	m.plan.epoch++
	return m.mu.Unlock
}

// takeTouched returns the shared touched-link scratch, cleared. Callers must
// hold the write lock; no reconfiguration entry point nests inside another,
// so the map is never live twice.
func (m *Manager) takeTouched() map[topology.LinkID]struct{} {
	if m.touched == nil {
		m.touched = make(map[topology.LinkID]struct{}, 32)
	}
	clear(m.touched)
	return m.touched
}

// Network exposes the reservation substrate (read-mostly; experiments use
// it for metrics). The pointer is stable for the manager's lifetime; its
// contents change under writes, so callers must not read it concurrently
// with mutating Manager calls.
func (m *Manager) Network() *rtchan.Network { return m.plan.net }

// Graph returns the topology.
func (m *Manager) Graph() *topology.Graph { return m.plan.net.Graph() }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.plan.cfg }

// Router exposes the manager's routing engine. The router's scratch arenas
// are writer-side state: external callers must not use it concurrently with
// any Manager call that routes (Establish, ReplenishBackups, ...).
func (m *Manager) Router() *routing.Router { return m.router }

// PlanEpoch returns the plan's write-transaction counter: it advances on
// every mutating entry point, so two equal readings bracket a span with no
// intervening writes (the control-plane analogue of Graph.Version).
func (m *Manager) PlanEpoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.plan.epoch
}

// Connection returns the D-connection with the given id, or nil.
func (m *Manager) Connection(id rtchan.ConnID) *DConnection {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.plan.conns[id]
}

// Connections returns all live D-connections in establishment order.
func (m *Manager) Connections() []*DConnection {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*DConnection, 0, len(m.plan.conns))
	for _, id := range m.plan.order {
		if c, ok := m.plan.conns[id]; ok {
			out = append(out, c)
		}
	}
	return out
}

// NumConnections returns the number of live D-connections.
func (m *Manager) NumConnections() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.plan.conns)
}

// constraintForPrimary builds the admission-aware routing constraint for a
// primary channel: every link must have bw free, and the path must respect
// the QoS slack over the unconstrained shortest distance.
func (m *Manager) constraintForPrimary(bw float64, maxHops int) routing.Constraint {
	return routing.Constraint{
		MaxHops:  maxHops,
		TieBreak: m.plan.cfg.TieBreak,
		LinkAllowed: func(l topology.LinkID) bool {
			return m.plan.net.Free(l) >= bw-1e-9
		},
	}
}
