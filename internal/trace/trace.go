// Package trace defines the typed protocol-event stream emitted by the
// message-level BCP stack: the simulation-facing replacement for free-form
// printf tracing. Every protocol-relevant occurrence — component crashes,
// failure detection, report and activation hops, per-node channel state
// transitions (Figure 4), spare-bandwidth claims, multiplexing failures,
// rejoins, teardowns, and RCC reliability actions — is one fixed-shape
// Event handed to a pluggable Sink.
//
// Consumers include the conformance checker (internal/conformance), the
// counter/histogram aggregator (internal/metrics), and the bcptrace CLI,
// which renders events for humans or exports them as JSONL.
//
// A nil sink costs nothing: producers hold an Emitter and guard every
// emission with Enabled(), so disabled tracing neither constructs events
// nor branches into the sink.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

// Kind discriminates protocol events.
type Kind uint8

// Event kinds. The Aux field's meaning is kind-specific and documented per
// constant.
const (
	// KindLinkDown records a simplex link crash. Link is set.
	KindLinkDown Kind = iota + 1
	// KindLinkUp records a link repair.
	KindLinkUp
	// KindNodeDown records a node crash. Node is set.
	KindNodeDown
	// KindNodeUp records a node repair (reboot: soft state is gone).
	KindNodeUp
	// KindDetect records a heartbeat-based failure declaration at the
	// downstream node of the silent link.
	KindDetect
	// KindReportOriginate records a neighbor originating a failure report
	// for Channel. Aux is the propagation direction (+1 destination-ward,
	// -1 source-ward).
	KindReportOriginate
	// KindReportHop records a failure report delivered across Link to Node.
	KindReportHop
	// KindState records a per-node channel state transition (Figure 4):
	// From -> To at Node for Channel.
	KindState
	// KindInstall records a channel entering the protocol plane (initial
	// establishment, replenishment, or rejoin re-registration). To carries
	// the role (StateP or StateB), Aux the channel's hop count.
	KindInstall
	// KindActivationStart records an end node starting backup activation.
	// Aux is 1 when initiated at the source, 0 at the destination.
	KindActivationStart
	// KindActivationHop records an activation message delivered across Link
	// to Node.
	KindActivationHop
	// KindActivationMeet records a Scheme-3 activation discarded at an
	// already-activated node.
	KindActivationMeet
	// KindActivationDone records the backup's promotion in the resource
	// plane (exactly once per successful activation).
	KindActivationDone
	// KindSourceSwitch records the source resuming data transfer on
	// Channel — the recovery instant Γ is measured to.
	KindSourceSwitch
	// KindClaim records spare bandwidth on Link claimed for Channel.
	KindClaim
	// KindClaimRelease records a claim on Link abandoned by Channel.
	KindClaimRelease
	// KindClaimConvert records a claim on Link converted to dedicated
	// bandwidth when Channel was promoted.
	KindClaimConvert
	// KindPreempt records Channel revoking the claim of the lower-priority
	// channel Aux on Link (§4.3).
	KindPreempt
	// KindMuxFailure records spare-bandwidth exhaustion during activation
	// of Channel (§3.3).
	KindMuxFailure
	// KindRejoinRequest records the source probing Channel's failed path.
	KindRejoinRequest
	// KindRejoin records the destination confirming Channel's repair.
	KindRejoin
	// KindRejoinExpire records a rejoin timer expiring at Node: the channel
	// is torn down network-wide.
	KindRejoinExpire
	// KindClosure records a channel-closure message originated at Node.
	KindClosure
	// KindTeardown records an orderly connection teardown starting.
	KindTeardown
	// KindReplenish records a fresh backup established after recovery
	// (§4.4). Aux is the new channel's hop count.
	KindReplenish
	// KindRCCFrame records a payload frame sent by the RCC endpoint of
	// Link. Aux is the number of batched control messages.
	KindRCCFrame
	// KindRCCRetransmit records a retransmission of frame Aux on Link.
	KindRCCRetransmit
	// KindRCCAck records a pure-ACK frame on Link acknowledging Aux.
	KindRCCAck

	kindMax
)

// NumKinds is the number of distinct event kinds (for dense counters).
const NumKinds = int(kindMax)

var kindNames = [...]string{
	KindLinkDown:        "link-down",
	KindLinkUp:          "link-up",
	KindNodeDown:        "node-down",
	KindNodeUp:          "node-up",
	KindDetect:          "detect",
	KindReportOriginate: "report-originate",
	KindReportHop:       "report-hop",
	KindState:           "state",
	KindInstall:         "install",
	KindActivationStart: "activation-start",
	KindActivationHop:   "activation-hop",
	KindActivationMeet:  "activation-meet",
	KindActivationDone:  "activation-done",
	KindSourceSwitch:    "source-switch",
	KindClaim:           "claim",
	KindClaimRelease:    "claim-release",
	KindClaimConvert:    "claim-convert",
	KindPreempt:         "preempt",
	KindMuxFailure:      "mux-failure",
	KindRejoinRequest:   "rejoin-request",
	KindRejoin:          "rejoin",
	KindRejoinExpire:    "rejoin-expire",
	KindClosure:         "closure",
	KindTeardown:        "teardown",
	KindReplenish:       "replenish",
	KindRCCFrame:        "rcc-frame",
	KindRCCRetransmit:   "rcc-retransmit",
	KindRCCAck:          "rcc-ack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kind name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// State is the per-node channel state of the paper's Figure 4. The values
// mirror the protocol engine's internal state machine.
type State uint8

const (
	StateN State = iota // non-existent
	StateP              // healthy primary
	StateB              // healthy backup
	StateU              // unhealthy
)

func (s State) String() string {
	switch s {
	case StateN:
		return "N"
	case StateP:
		return "P"
	case StateB:
		return "B"
	case StateU:
		return "U"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ParseState resolves a state letter as printed by State.String.
func ParseState(s string) (State, error) {
	switch s {
	case "N":
		return StateN, nil
	case "P":
		return StateP, nil
	case "B":
		return StateB, nil
	case "U":
		return StateU, nil
	}
	return 0, fmt.Errorf("trace: unknown state %q", s)
}

// Event is one protocol occurrence. Fields beyond At and Kind are
// kind-specific; unused identifier fields hold their zero value (note that
// node 0 and link 0 are valid identifiers — producers set Node and Link to
// topology.NoNode / topology.NoLink when not applicable).
type Event struct {
	At      sim.Time
	Kind    Kind
	Node    topology.NodeID
	Link    topology.LinkID
	Conn    rtchan.ConnID
	Channel rtchan.ChannelID
	From    State // KindState only
	To      State // KindState and KindInstall (role)
	Aux     int64 // kind-specific, see the Kind constants
}

// String renders the event compactly for humans.
func (e Event) String() string {
	s := fmt.Sprintf("%v %s", e.At, e.Kind)
	if e.Node != topology.NoNode {
		s += fmt.Sprintf(" node=%d", e.Node)
	}
	if e.Link != topology.NoLink {
		s += fmt.Sprintf(" link=%d", e.Link)
	}
	if e.Conn != 0 {
		s += fmt.Sprintf(" conn=%d", e.Conn)
	}
	if e.Channel != 0 {
		s += fmt.Sprintf(" channel=%d", e.Channel)
	}
	if e.Kind == KindState {
		s += fmt.Sprintf(" %v->%v", e.From, e.To)
	}
	if e.Kind == KindInstall {
		s += fmt.Sprintf(" role=%v", e.To)
	}
	if e.Aux != 0 {
		s += fmt.Sprintf(" aux=%d", e.Aux)
	}
	return s
}

// Sink receives protocol events. Implementations must not retain the event
// past Emit (it is a value; retaining a copy is fine) and are called from
// the single-threaded simulation loop — no locking is required.
type Sink interface {
	Emit(Event)
}

// Clock supplies timestamps for event producers that are not themselves
// simulation-aware (e.g. the resource plane). *sim.Engine implements it.
type Clock interface {
	Now() sim.Time
}

var _ Clock = (*sim.Engine)(nil)

// Emitter wraps an optional Sink. The zero Emitter is disabled. Producers
// guard each emission with Enabled() so that a nil sink costs one branch
// and no event construction on the hot path.
type Emitter struct {
	sink Sink
}

// NewEmitter wraps s (nil disables emission).
func NewEmitter(s Sink) Emitter { return Emitter{sink: s} }

// Enabled reports whether events will be delivered.
func (e Emitter) Enabled() bool { return e.sink != nil }

// Emit delivers ev to the sink, if any.
func (e Emitter) Emit(ev Event) {
	if e.sink != nil {
		e.sink.Emit(ev)
	}
}

// Recorder is a Sink that appends every event to Events.
type Recorder struct {
	Events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Reset drops all recorded events, keeping capacity.
func (r *Recorder) Reset() { r.Events = r.Events[:0] }

// Tee fans one event stream out to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// eventJSON is the stable JSONL schema of one event (the bcptrace -json
// format). From/To appear only on state and install events.
type eventJSON struct {
	At      int64  `json:"at"`
	Kind    string `json:"kind"`
	Node    int32  `json:"node"`
	Link    int32  `json:"link"`
	Conn    int32  `json:"conn"`
	Channel int64  `json:"channel"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`
	Aux     int64  `json:"aux"`
}

// MarshalJSON encodes the event in the JSONL schema.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		At:      int64(e.At),
		Kind:    e.Kind.String(),
		Node:    int32(e.Node),
		Link:    int32(e.Link),
		Conn:    int32(e.Conn),
		Channel: int64(e.Channel),
		Aux:     e.Aux,
	}
	if e.Kind == KindState {
		j.From = e.From.String()
		j.To = e.To.String()
	}
	if e.Kind == KindInstall {
		j.To = e.To.String()
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes one JSONL event.
func (e *Event) UnmarshalJSON(b []byte) error {
	var j eventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	k, err := ParseKind(j.Kind)
	if err != nil {
		return err
	}
	*e = Event{
		At:      sim.Time(j.At),
		Kind:    k,
		Node:    topology.NodeID(j.Node),
		Link:    topology.LinkID(j.Link),
		Conn:    rtchan.ConnID(j.Conn),
		Channel: rtchan.ChannelID(j.Channel),
		Aux:     j.Aux,
	}
	if j.From != "" {
		if e.From, err = ParseState(j.From); err != nil {
			return err
		}
	}
	if j.To != "" {
		if e.To, err = ParseState(j.To); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one event per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL event stream until EOF.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
}
