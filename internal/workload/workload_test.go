package workload

import (
	"math/rand"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

func TestAllPairs(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	reqs := AllPairs(g, rtchan.DefaultSpec(), []int{1})
	if len(reqs) != 16*15 {
		t.Fatalf("requests = %d", len(reqs))
	}
	seen := map[[2]topology.NodeID]bool{}
	for _, r := range reqs {
		if r.Src == r.Dst {
			t.Fatal("self pair")
		}
		key := [2]topology.NodeID{r.Src, r.Dst}
		if seen[key] {
			t.Fatal("duplicate pair")
		}
		seen[key] = true
	}
}

func TestHotSpotDistribution(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	hot := []topology.NodeID{9, 14}
	reqs := HotSpot(g, HotSpotConfig{
		Requests:       2000,
		HotNodes:       hot,
		HotFraction:    0.5,
		HeavyFraction:  0.25,
		HeavyBandwidth: 3,
		Spec:           rtchan.DefaultSpec(),
		Degrees:        []int{3},
	}, rand.New(rand.NewSource(1)))
	if len(reqs) != 2000 {
		t.Fatalf("requests = %d", len(reqs))
	}
	hotCount, heavyCount := 0, 0
	for _, r := range reqs {
		for _, h := range hot {
			if r.Dst == h {
				hotCount++
				break
			}
		}
		if r.Spec.Bandwidth == 3 {
			heavyCount++
		}
	}
	// ~50% hot (plus the uniform picks that land on hot nodes by chance).
	if hotCount < 900 || hotCount > 1300 {
		t.Fatalf("hot destinations = %d", hotCount)
	}
	if heavyCount < 400 || heavyCount > 600 {
		t.Fatalf("heavy requests = %d", heavyCount)
	}
}

func TestHotSpotEmptyConfig(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	if got := HotSpot(g, HotSpotConfig{}, rand.New(rand.NewSource(1))); got != nil {
		t.Fatal("empty config should produce nothing")
	}
}

func TestEstablishAppliesWorkload(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	m := core.NewManager(g, core.DefaultConfig())
	reqs := AllPairs(g, rtchan.DefaultSpec(), nil)
	est, rej := Establish(m, reqs)
	if est != 240 || rej != 0 {
		t.Fatalf("est=%d rej=%d", est, rej)
	}
	if m.NumConnections() != 240 {
		t.Fatal("connections missing")
	}
}

func TestDynamicTrace(t *testing.T) {
	g := topology.NewTorus(4, 4, 200)
	cfg := DynamicConfig{
		ArrivalRate: 100,
		MeanHolding: sim.Duration(500 * time.Millisecond),
		Duration:    sim.Duration(10 * time.Second),
		Spec:        rtchan.DefaultSpec(),
		Degrees:     []int{3},
	}
	reqs := Dynamic(g, cfg, rand.New(rand.NewSource(2)))
	// ~1000 arrivals expected.
	if len(reqs) < 800 || len(reqs) > 1200 {
		t.Fatalf("requests = %d", len(reqs))
	}
	var prev sim.Duration
	var meanHold float64
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = r.Arrival
		meanHold += float64(r.Holding)
	}
	meanHold /= float64(len(reqs))
	if meanHold < 0.4*float64(time.Second) || meanHold > 0.6*float64(time.Second) {
		t.Fatalf("mean holding = %v", time.Duration(meanHold))
	}
}

func TestRunChurnKeepsInvariants(t *testing.T) {
	g := topology.NewTorus(6, 6, 100)
	m := core.NewManager(g, core.DefaultConfig())
	eng := sim.New(1)
	reqs := Dynamic(g, DynamicConfig{
		ArrivalRate: 200,
		MeanHolding: sim.Duration(200 * time.Millisecond),
		Duration:    sim.Duration(5 * time.Second),
		Spec:        rtchan.DefaultSpec(),
		Degrees:     []int{3},
	}, rand.New(rand.NewSource(3)))
	stats := RunChurn(eng, m, reqs)
	eng.Run()
	if stats.Established == 0 || stats.Departed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Established != stats.Departed+m.NumConnections() {
		t.Fatalf("conservation broken: %+v live=%d", stats, m.NumConnections())
	}
	if stats.PeakLoad <= 0 || stats.PeakLoad > 1 {
		t.Fatalf("peak load = %g", stats.PeakLoad)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Network().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything eventually departs: teardown the stragglers and verify a
	// clean network.
	for _, c := range m.Connections() {
		if err := m.Teardown(c.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range g.Links() {
		if m.Network().Dedicated(l.ID) != 0 || m.Network().Spare(l.ID) != 0 {
			t.Fatalf("link %d dirty after drain", l.ID)
		}
	}
}
