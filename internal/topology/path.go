package topology

import (
	"fmt"
	"slices"
	"strings"
)

// Path is a directed simple path through a graph, represented by the
// sequence of links traversed. A path with H links visits H+1 nodes.
//
// Following the paper, the *components* of a channel path are all of its
// links and all of its nodes, end nodes included: c(M) = 2H+1. Counting end
// nodes matters for backup multiplexing — the paper's guarantee that mux=3
// recovers from every single link failure requires a shared link to imply
// at least 3 shared components (the link plus both of its endpoints), even
// when the link sits at the start of a path.
type Path struct {
	g     *Graph
	links []LinkID
	nodes []NodeID // len(links)+1 node sequence, cached
	// sets holds the component membership sets, precomputed at construction
	// since paths are immutable: SharedComponents is the hot inner loop of
	// backup multiplexing (called once per existing backup per link).
	sets *pathSets
}

// pathSets holds only the sorted component slices: membership tests binary
// search them, and SharedComponents merges them. Paths are a handful of hops,
// so sorted slices beat hash maps on both lookup cost and construction —
// building the two maps used to dominate path-construction allocations.
type pathSets struct {
	// sortedLinks/sortedNodes support SharedComponents by linear merge
	// intersection and the Contains* lookups by binary search.
	sortedLinks []LinkID
	sortedNodes []NodeID
}

func buildPathSets(links []LinkID, nodes []NodeID) *pathSets {
	ps := &pathSets{
		sortedLinks: append([]LinkID(nil), links...),
		sortedNodes: append([]NodeID(nil), nodes...),
	}
	slices.Sort(ps.sortedLinks)
	slices.Sort(ps.sortedNodes)
	return ps
}

// mergeCount returns the size of the intersection of two sorted ID slices.
func mergeCount[T ~int32 | ~int](a, b []T) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// NewPath builds a Path from a link sequence, verifying contiguity.
func NewPath(g *Graph, links []LinkID) (Path, error) {
	if len(links) == 0 {
		return Path{}, fmt.Errorf("topology: empty path")
	}
	nodes := make([]NodeID, 0, len(links)+1)
	nodes = append(nodes, g.Link(links[0]).From)
	for i, l := range links {
		lk := g.Link(l)
		if lk.From != nodes[len(nodes)-1] {
			return Path{}, fmt.Errorf("topology: discontiguous path at hop %d: link %d starts at %d, expected %d",
				i, l, lk.From, nodes[len(nodes)-1])
		}
		nodes = append(nodes, lk.To)
	}
	seen := make(map[NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		if _, dup := seen[n]; dup {
			return Path{}, fmt.Errorf("topology: path revisits node %d", n)
		}
		seen[n] = struct{}{}
	}
	linksCopy := append([]LinkID(nil), links...)
	return Path{g: g, links: linksCopy, nodes: nodes, sets: buildPathSets(linksCopy, nodes)}, nil
}

// NewPathUnchecked builds a Path from a link sequence and its matching node
// sequence without validating contiguity or simplicity. It exists for callers
// that produce paths by construction — BFS/Dijkstra backtracks, plan replay —
// where re-validation is pure overhead. links and nodes are copied; the input
// slices may be scratch buffers. nodes must be the exact node sequence of
// links (len(links)+1 entries, source first).
//
// The copies and the component sets share one backing allocation per id type,
// so a path costs three allocations instead of NewPath's six-plus.
func NewPathUnchecked(g *Graph, links []LinkID, nodes []NodeID) Path {
	lbuf := make([]LinkID, 2*len(links))
	copy(lbuf, links)
	sortedLinks := lbuf[len(links):]
	copy(sortedLinks, links)
	slices.Sort(sortedLinks)
	nbuf := make([]NodeID, 2*len(nodes))
	copy(nbuf, nodes)
	sortedNodes := nbuf[len(nodes):]
	copy(sortedNodes, nodes)
	slices.Sort(sortedNodes)
	return Path{
		g:     g,
		links: lbuf[:len(links):len(links)],
		nodes: nbuf[:len(nodes):len(nodes)],
		sets:  &pathSets{sortedLinks: sortedLinks, sortedNodes: sortedNodes},
	}
}

// MustPath is NewPath that panics on error, for tests and literals.
func MustPath(g *Graph, links []LinkID) Path {
	p, err := NewPath(g, links)
	if err != nil {
		panic(err)
	}
	return p
}

// PathBetween builds a path from a node sequence, resolving each hop to the
// connecting link.
func PathBetween(g *Graph, nodes []NodeID) (Path, error) {
	if len(nodes) < 2 {
		return Path{}, fmt.Errorf("topology: node sequence too short")
	}
	links := make([]LinkID, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		l := g.LinkBetween(nodes[i], nodes[i+1])
		if l == NoLink {
			return Path{}, fmt.Errorf("topology: no link %d->%d", nodes[i], nodes[i+1])
		}
		links = append(links, l)
	}
	return NewPath(g, links)
}

// IsZero reports whether p is the zero Path (no hops).
func (p Path) IsZero() bool { return len(p.links) == 0 }

// Graph returns the graph this path belongs to.
func (p Path) Graph() *Graph { return p.g }

// Hops returns the number of links.
func (p Path) Hops() int { return len(p.links) }

// Links returns the link sequence. Must not be modified.
func (p Path) Links() []LinkID { return p.links }

// Nodes returns the node sequence (source first). Must not be modified.
func (p Path) Nodes() []NodeID { return p.nodes }

// Source returns the first node.
func (p Path) Source() NodeID { return p.nodes[0] }

// Destination returns the last node.
func (p Path) Destination() NodeID { return p.nodes[len(p.nodes)-1] }

// InteriorNodes returns the nodes strictly between source and destination.
func (p Path) InteriorNodes() []NodeID {
	if len(p.nodes) <= 2 {
		return nil
	}
	return p.nodes[1 : len(p.nodes)-1]
}

// NumComponents returns c(M): the number of path components, i.e. links plus
// all visited nodes. A path of H hops has 2H+1 components.
func (p Path) NumComponents() int {
	if p.IsZero() {
		return 0
	}
	return 2*len(p.links) + 1
}

// ContainsLink reports whether the path traverses link l.
func (p Path) ContainsLink(l LinkID) bool {
	if p.sets != nil {
		_, ok := slices.BinarySearch(p.sets.sortedLinks, l)
		return ok
	}
	// Zero paths carry no precomputed sets.
	for _, x := range p.links {
		if x == l {
			return true
		}
	}
	return false
}

// ContainsNode reports whether the path visits node n (including end nodes).
func (p Path) ContainsNode(n NodeID) bool {
	if p.sets != nil {
		_, ok := slices.BinarySearch(p.sets.sortedNodes, n)
		return ok
	}
	for _, x := range p.nodes {
		if x == n {
			return true
		}
	}
	return false
}

// ContainsInteriorNode reports whether n is an interior node of the path.
func (p Path) ContainsInteriorNode(n NodeID) bool {
	i := p.IndexOfNode(n)
	return i > 0 && i < len(p.nodes)-1
}

// IndexOfNode returns the position of n in the node sequence, or -1. Paths
// are a handful of hops, so a linear scan wins over any index structure.
func (p Path) IndexOfNode(n NodeID) int {
	for i, x := range p.nodes {
		if x == n {
			return i
		}
	}
	return -1
}

// SharedComponents returns sc(p, q): the number of components (links and
// nodes, end nodes included) common to both paths. This drives the paper's
// simultaneous-activation probability S(Bi, Bj). It merges the precomputed
// sorted component slices — the hot inner loop of backup multiplexing.
func (p Path) SharedComponents(q Path) int {
	if p.IsZero() || q.IsZero() {
		return 0
	}
	return mergeCount(p.sets.sortedLinks, q.sets.sortedLinks) +
		mergeCount(p.sets.sortedNodes, q.sets.sortedNodes)
}

// PathMarks is a reusable component-membership stamp for one path at a
// time: Set stamps the path's links and nodes into generation-stamped
// arrays, and Shared then counts another path's components against the
// stamp with plain array loads. It computes exactly SharedComponents(set
// path, q), but amortizes the set-path side, for hot loops that compare one
// fixed path against many others (the backup-multiplexing admission scan).
// The zero value is ready to use; not safe for concurrent use.
type PathMarks struct {
	gen     uint32
	linkGen []uint32
	nodeGen []uint32
}

// Set stamps p's components, replacing any previously set path. p must be
// non-zero.
func (pm *PathMarks) Set(p Path) {
	pm.SetComponents(p.Graph(), p.links, p.nodes)
}

// SetComponents stamps a path given by its raw link and node sequences,
// replacing any previously set path. It serves planners that carry paths as
// scratch link/node buffers and only materialize a Path at commit time.
func (pm *PathMarks) SetComponents(g *Graph, links []LinkID, nodes []NodeID) {
	if len(pm.linkGen) < g.NumLinks() {
		pm.linkGen = make([]uint32, g.NumLinks())
	}
	if len(pm.nodeGen) < g.NumNodes() {
		pm.nodeGen = make([]uint32, g.NumNodes())
	}
	pm.gen++
	if pm.gen == 0 { // generation wrap: clear the stale stamps
		clear(pm.linkGen)
		clear(pm.nodeGen)
		pm.gen = 1
	}
	for _, l := range links {
		pm.linkGen[l] = pm.gen
	}
	for _, n := range nodes {
		pm.nodeGen[n] = pm.gen
	}
}

// Shared returns SharedComponents(set path, q): the number of q's links and
// nodes stamped by the last Set. Paths are simple, so counting q's
// components against the membership stamp equals the sorted-merge
// intersection size.
func (pm *PathMarks) Shared(q Path) int {
	sc := 0
	for _, l := range q.links {
		if int(l) < len(pm.linkGen) && pm.linkGen[l] == pm.gen {
			sc++
		}
	}
	for _, n := range q.nodes {
		if int(n) < len(pm.nodeGen) && pm.nodeGen[n] == pm.gen {
			sc++
		}
	}
	return sc
}

// ComponentDisjoint reports whether the two paths can serve as channels of
// the same D-connection: they share no links, and every node they share is
// an end node of *both* paths (the channels of one connection necessarily
// share their source and destination).
func (p Path) ComponentDisjoint(q Path) bool {
	if p.IsZero() || q.IsZero() {
		return true
	}
	for _, l := range p.links {
		if q.ContainsLink(l) {
			return false
		}
	}
	for i, n := range p.nodes {
		if !q.ContainsNode(n) {
			continue
		}
		pEnd := i == 0 || i == len(p.nodes)-1
		qEnd := n == q.Source() || n == q.Destination()
		if !pEnd || !qEnd {
			return false
		}
	}
	return true
}

// String renders the path as "0->1->2".
func (p Path) String() string {
	if p.IsZero() {
		return "<empty>"
	}
	var b strings.Builder
	for i, n := range p.nodes {
		if i > 0 {
			b.WriteString("->")
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}
