// Command bcpbench runs the repository's kernel micro-benchmarks through
// testing.Benchmark and records the results as JSON, so performance work can
// be compared across commits without scraping `go test -bench` output.
//
// Usage:
//
//	bcpbench                          # writes BENCH_pr1.json
//	bcpbench -label mybranch          # writes BENCH_mybranch.json
//	bcpbench -compare BENCH_main.json # embed a baseline and per-metric deltas
//	bcpbench -workers 8               # also time a parallel Table 1 column
//	bcpbench -smoke                   # CI allocation guard: hot kernels once each
//	bcpbench -ab                      # batched-vs-per-message storm A/B guard
//	bcpbench -count 3                 # min-of-3 rounds per kernel (noisy boxes)
//
// The establishment/trial kernels mirror the benchmarks in bench_test.go:
// the 4032-pair establishment (the setup cost of every table), one
// establishment on a loaded network, and one failure trial (the inner loop
// of every R_fast sweep). The routing kernels (RoutingAllPairs,
// DisjointPair) time the Router's scratch-backed searches in isolation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/rtcl/bcp"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Vs the same benchmark in the -compare file: negative is faster /
	// leaner. Only set for kernels present in both runs.
	DeltaNsPct     *float64 `json:"delta_ns_pct,omitempty"`
	DeltaBytesPct  *float64 `json:"delta_bytes_pct,omitempty"`
	DeltaAllocsPct *float64 `json:"delta_allocs_pct,omitempty"`
}

// File is the schema of a BENCH_<label>.json file.
type File struct {
	Label    string   `json:"label"`
	Date     string   `json:"date"`
	Results  []Result `json:"results"`
	Baseline string   `json:"baseline,omitempty"`
}

// benchCount is the -count flag: each kernel runs this many rounds and the
// fastest round is recorded (the usual antidote to noisy-neighbour boxes —
// alloc counts are deterministic, so only ns/op needs the min-fold).
var benchCount = 1

// deltaEpsilonPct is the baseline-comparison noise floor: deltas smaller
// than this in magnitude are reported as exactly 0, so byte-identical runs
// (and sub-rounding jitter on deterministic alloc counts) do not show up as
// phantom ±0.0x% drifts in the JSON.
const deltaEpsilonPct = 0.05

func clampDelta(d float64) float64 {
	if math.Abs(d) < deltaEpsilonPct {
		return 0
	}
	return d
}

func measure(name string, fn func(b *testing.B)) Result {
	var best Result
	for i := 0; i < benchCount; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < best.NsPerOp {
			best = Result{
				Name:        name,
				N:           r.N,
				NsPerOp:     ns,
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
		}
	}
	return best
}

func loadedManager() *bcp.Manager {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	bcp.EstablishWorkload(mgr, bcp.AllPairs(g, bcp.DefaultSpec(), []int{3}))
	return mgr
}

// runProtocolScenario executes the ProtocolTrace kernel's scenario once: an
// 8-hop torus connection under 500 msg/s of data traffic, a mid-primary
// link crash at 50 ms, one simulated second end to end.
func runProtocolScenario(sink bcp.TraceSink) error {
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	paths := bcp.SequentialDisjointPaths(g, 0, 36, 2, bcp.RoutingConstraint{})
	if len(paths) < 2 {
		return fmt.Errorf("no disjoint paths on the torus")
	}
	conn, err := mgr.EstablishOnPaths(bcp.DefaultSpec(), paths[0], paths[1:2], []int{1})
	if err != nil {
		return err
	}
	eng := bcp.NewEngine(1)
	cfg := bcp.DefaultProtocolConfig()
	cfg.Sink = sink
	net := bcp.NewProtocol(eng, mgr, cfg)
	if err := net.StartTraffic(conn.ID, 500); err != nil {
		return err
	}
	fail := conn.Primary.Path.Links()[2]
	eng.At(bcp.Time(50*time.Millisecond), func() { net.FailLink(fail) })
	eng.RunFor(time.Second)
	if len(net.SourceSwitches(conn.ID)) != 1 {
		return fmt.Errorf("scenario did not recover")
	}
	return nil
}

// runLiveRecoveryTrial boots one fresh live network on the wall-clock
// runtime (3x3 mesh, nine daemon actors, pipe transport), crashes the
// primary's middle link, and returns the measured failure→data-resumption
// delay: from the instant FailLink runs to the first data message the
// destination sees after the source switched to the backup.
func runLiveRecoveryTrial(seed int64) (time.Duration, error) {
	g := bcp.NewMesh(3, 3, 10)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())
	paths := bcp.SequentialDisjointPaths(g, 0, bcp.NodeID(g.NumNodes()-1), 2, bcp.RoutingConstraint{})
	if len(paths) < 2 {
		return 0, fmt.Errorf("no disjoint paths on the mesh")
	}
	conn, err := mgr.EstablishOnPaths(bcp.DefaultSpec(), paths[0], paths[1:2], []int{1})
	if err != nil {
		return 0, err
	}
	rt := bcp.NewRealtimeRuntime(seed)
	rt.StartActors(g.NumNodes(), 1024)
	defer rt.Stop()
	tr := bcp.NewPipeTransport(rt.Post, 1024)
	defer tr.Close()
	var net *bcp.Protocol
	rt.Exec(func() { net = bcp.NewProtocolOn(rt, tr, mgr, cfgLive()) })
	var startErr error
	rt.Exec(func() { startErr = net.StartTraffic(conn.ID, 500) })
	if startErr != nil {
		return 0, startErr
	}
	wait := func(what string, cond func() bool) error {
		limit := time.Now().Add(10 * time.Second)
		for {
			var ok bool
			rt.Exec(func() { ok = cond() })
			if ok {
				return nil
			}
			if time.Now().After(limit) {
				return fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := wait("pre-failure data", func() bool { return net.Stats().DataDelivered >= 20 }); err != nil {
		return 0, err
	}
	links := conn.Primary.Path.Links()
	fail := links[len(links)/2]
	var failAt bcp.Time
	rt.Exec(func() {
		failAt = rt.Now()
		net.FailLink(fail)
	})
	if err := wait("source switch", func() bool { return len(net.SourceSwitches(conn.ID)) == 1 }); err != nil {
		return 0, err
	}
	var switchAt, resumeAt bcp.Time
	rt.Exec(func() { switchAt = net.SourceSwitches(conn.ID)[0] })
	if err := wait("data resumption", func() bool {
		at, ok := net.FirstArrivalAfter(conn.ID, switchAt)
		resumeAt = at
		return ok
	}); err != nil {
		return 0, err
	}
	return resumeAt.Sub(failAt), nil
}

// cfgLive is the live kernels' protocol config: default timing, immediate
// detection (the delay of interest is recovery, not the detector).
func cfgLive() bcp.ProtocolConfig {
	cfg := bcp.DefaultProtocolConfig()
	cfg.DetectionLatency = 0
	return cfg
}

// percentile returns the p-th percentile (nearest-rank) of sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runSmoke is the CI guard behind -smoke: each hot kernel runs a handful of
// times under testing.AllocsPerRun and must stay below its allocation
// ceiling. The ceilings are intentionally loose (≈2× current steady state)
// — they catch a pooled path regressing to per-op allocation, not noise.
func runSmoke(seed int64) int {
	type check struct {
		name    string
		ceiling float64 // allocs per op
		runs    int
		fn      func() error
	}
	var checks []check

	// TimerWheel: schedule/cancel/fire churn over a standing population.
	{
		eng := bcp.NewEngine(seed)
		noop := func() {}
		timers := make([]bcp.Timer, 256)
		for i := range timers {
			timers[i] = eng.Schedule(time.Hour+time.Duration(i)*time.Millisecond, noop)
		}
		i := 0
		checks = append(checks, check{name: "TimerWheel", ceiling: 0, runs: 1000, fn: func() error {
			j := i % len(timers)
			i++
			timers[j].Stop()
			timers[j] = eng.Schedule(time.Hour, noop)
			eng.Schedule(time.Microsecond, noop)
			eng.Step()
			return nil
		}})
	}

	// FailureTrial and SingleEstablish share one loaded 4032-connection plan
	// (trials are pure reads; the establish check tears down what it adds).
	{
		mgr := loadedManager()
		f := bcp.SingleNode(27)
		checks = append(checks, check{name: "FailureTrial", ceiling: 4, runs: 10, fn: func() error {
			if stats := mgr.Trial(f, bcp.OrderByConn, nil); stats.FailedPrimaries == 0 {
				return fmt.Errorf("no failures")
			}
			return nil
		}})

		// SingleEstablish: one plan+commit establishment plus its teardown on
		// the loaded plan. The plan phase runs on reusable arenas, so only the
		// objects that outlive the call may allocate (measured 12).
		checks = append(checks, check{name: "SingleEstablish", ceiling: 24, runs: 50, fn: func() error {
			conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{3})
			if err != nil {
				return err
			}
			return mgr.Teardown(conn.ID)
		}})
	}

	// EstablishBatch: the pipelined establishment path end to end — a full
	// 4x4-torus all-pairs batch at 4 planners, then its teardown. Guards the
	// pooled plan buffers, planner contexts, and router leases: a leak shows
	// up as per-request allocation growth across batches.
	{
		g := bcp.NewTorus(4, 4, 200)
		mgr := bcp.NewManager(g, bcp.DefaultConfig())
		wl := bcp.AllPairs(g, bcp.DefaultSpec(), []int{3})
		reqs := make([]bcp.EstablishRequest, len(wl))
		for i, r := range wl {
			reqs[i] = bcp.EstablishRequest{Src: r.Src, Dst: r.Dst, Spec: r.Spec, Degrees: r.Degrees}
		}
		checks = append(checks, check{name: "EstablishBatch", ceiling: 7000, runs: 5, fn: func() error {
			res := mgr.EstablishBatch(reqs, bcp.BatchOptions{Workers: 4})
			if res.Established != len(reqs) {
				return fmt.Errorf("established %d of %d", res.Established, len(reqs))
			}
			for _, c := range res.Conns {
				if err := mgr.Teardown(c.ID); err != nil {
					return err
				}
			}
			return nil
		}})
	}

	// RecoveryStorm: one crash→switch→repair→rejoin cycle, warmed.
	{
		storm, err := bcp.NewStorm(bcp.StormConfig{Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcpbench: storm setup: %v\n", err)
			return 1
		}
		if err := storm.Run(2); err != nil {
			fmt.Fprintf(os.Stderr, "bcpbench: storm warmup: %v\n", err)
			return 1
		}
		checks = append(checks, check{name: "RecoveryStorm", ceiling: 50, runs: 5, fn: storm.Cycle})
	}

	// RecoveryStormWide: one mass-failure cycle (a transit-node crash and
	// its restoration) on the loaded torus, warmed through a full victim
	// rotation. A cycle legitimately allocates: the expired channels are
	// re-established by replenishment (~120 establishments) and the data
	// plane appends latency samples. The ceiling guards the dispatch
	// machinery around that — a per-control staging leak or an unpooled
	// fan-out buffer multiplies by the hundreds of controls per cycle and
	// blows well past it.
	{
		sw, err := bcp.NewStormWide(bcp.StormWideConfig{Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcpbench: storm-wide setup: %v\n", err)
			return 1
		}
		if err := sw.Run(len(sw.Victims)); err != nil {
			fmt.Fprintf(os.Stderr, "bcpbench: storm-wide warmup: %v\n", err)
			return 1
		}
		checks = append(checks, check{name: "RecoveryStormWide", ceiling: 12000, runs: 4, fn: sw.Cycle})
	}

	// ProtocolTrace: the full message-level scenario with a nil sink.
	checks = append(checks, check{name: "ProtocolTrace", ceiling: 8000, runs: 1, fn: func() error {
		return runProtocolScenario(nil)
	}})

	failed := false
	for _, c := range checks {
		var err error
		allocs := testing.AllocsPerRun(c.runs, func() {
			if e := c.fn(); e != nil && err == nil {
				err = e
			}
		})
		switch {
		case err != nil:
			fmt.Printf("FAIL  %-16s %v\n", c.name, err)
			failed = true
		case allocs > c.ceiling:
			fmt.Printf("FAIL  %-16s %.1f allocs/op exceeds ceiling %.0f\n", c.name, allocs, c.ceiling)
			failed = true
		default:
			fmt.Printf("ok    %-16s %.1f allocs/op (ceiling %.0f)\n", c.name, allocs, c.ceiling)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runStormAB is the batched-vs-per-message restoration A/B (-ab): both
// engines run the RecoveryStormWide crash phase in the same process on the
// same box, so the ratio between them is meaningful even where absolute
// ns/op is not (shared CI runners, cross-box recordings). It prints a
// benchstat-style two-row table and enforces the batching floors — batched
// restoration must be at least 2x faster and 5x leaner per crash phase than
// the per-message baseline — failing the run (exit 1) on a regression that
// re-serializes the fan-out.
func runStormAB(seed int64) int {
	run := func(perMsg bool) (Result, error) {
		sw, err := bcp.NewStormWide(bcp.StormWideConfig{Seed: seed, PerMessageDispatch: perMsg})
		if err != nil {
			return Result{}, err
		}
		if err := sw.Run(len(sw.Victims)); err != nil {
			return Result{}, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := sw.CrashPhase()
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := sw.RepairPhase(v); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
		if r.N == 0 {
			return Result{}, fmt.Errorf("benchmark aborted")
		}
		return Result{
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}, nil
	}
	batched, err := run(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpbench: storm A/B batched: %v\n", err)
		return 1
	}
	perMsg, err := run(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpbench: storm A/B per-message: %v\n", err)
		return 1
	}
	nsRatio := perMsg.NsPerOp / batched.NsPerOp
	allocRatio := float64(perMsg.AllocsPerOp) / float64(batched.AllocsPerOp)
	fmt.Printf("RecoveryStormWide crash phase, same box (N=%d/%d):\n", batched.N, perMsg.N)
	fmt.Printf("  %-14s %14s %12s\n", "", "ns/op", "allocs/op")
	fmt.Printf("  %-14s %14.0f %12d\n", "batched", batched.NsPerOp, batched.AllocsPerOp)
	fmt.Printf("  %-14s %14.0f %12d\n", "per-message", perMsg.NsPerOp, perMsg.AllocsPerOp)
	fmt.Printf("  %-14s %13.1fx %11.1fx   (floors: 2.0x ns, 5.0x allocs)\n", "ratio", nsRatio, allocRatio)
	if nsRatio < 2 || allocRatio < 5 {
		fmt.Printf("FAIL  batched dispatch lost its edge over the per-message baseline\n")
		return 1
	}
	fmt.Printf("ok    storm A/B\n")
	return 0
}

func main() {
	label := flag.String("label", "pr1", "output label: results go to BENCH_<label>.json")
	compare := flag.String("compare", "", "baseline BENCH_*.json to diff against")
	workers := flag.Int("workers", 0, "if > 1, also benchmark a parallel Table 1 column at this pool size")
	seed := flag.Int64("seed", 1, "seed for the randomized kernel inputs (DisjointPair)")
	smoke := flag.Bool("smoke", false, "run each hot kernel once under its allocation ceiling and exit (CI guard; no JSON output)")
	ab := flag.Bool("ab", false, "run the batched-vs-per-message storm A/B and enforce the batching floors (CI guard; no JSON output)")
	count := flag.Int("count", 1, "benchmark rounds per kernel; the fastest round is recorded")
	flag.Parse()
	if *count > 0 {
		benchCount = *count
	}

	if *smoke {
		os.Exit(runSmoke(*seed))
	}
	if *ab {
		os.Exit(runStormAB(*seed))
	}

	// Resolve the baseline before measuring anything, so a bad -compare is
	// reported in milliseconds, not after minutes of benchmarking. A
	// missing or corrupt baseline is not fatal: the run degrades to
	// absolute numbers (no deltas), which is what a fresh checkout or a
	// renamed baseline file wants anyway.
	var baseline *File
	if *compare != "" {
		if base, err := os.ReadFile(*compare); err != nil {
			fmt.Fprintf(os.Stderr, "bcpbench: warning: %v; reporting absolute numbers only\n", err)
		} else {
			var bf File
			if err := json.Unmarshal(base, &bf); err != nil {
				fmt.Fprintf(os.Stderr, "bcpbench: warning: bad baseline %s: %v; reporting absolute numbers only\n", *compare, err)
			} else {
				baseline = &bf
			}
		}
	}

	var results []Result

	results = append(results, measure("EstablishAllPairs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := bcp.NewTorus(8, 8, 200)
			mgr := bcp.NewManager(g, bcp.DefaultConfig())
			est, _ := bcp.EstablishWorkload(mgr, bcp.AllPairs(g, bcp.DefaultSpec(), []int{3}))
			if est != 4032 {
				b.Fatalf("established %d", est)
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "EstablishAllPairs done\n")

	mgr := loadedManager()
	results = append(results, measure("SingleEstablish", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{3})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := mgr.Teardown(conn.ID); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}))
	fmt.Fprintf(os.Stderr, "SingleEstablish done\n")

	// EstablishBatch: the same 4032-pair workload as EstablishAllPairs through
	// the speculative plan/commit pipeline (results bit-identical to the
	// sequential loop) at increasing planner pool widths. On a multi-core box
	// ns/op should shrink with workers (the read-only plan phase is ~80% of
	// establishment); on a single core the pipeline can only add scheduling
	// overhead, so compare the widths against each other, not just w1.
	batchWidths := []int{1, 4, runtime.GOMAXPROCS(0)}
	if *workers > 1 {
		batchWidths = append(batchWidths, *workers)
	}
	seenBatch := map[int]bool{}
	for _, w := range batchWidths {
		if w < 1 || seenBatch[w] {
			continue
		}
		seenBatch[w] = true
		w := w
		results = append(results, measure(fmt.Sprintf("EstablishBatch-w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := bcp.NewTorus(8, 8, 200)
				batchMgr := bcp.NewManager(g, bcp.DefaultConfig())
				est, _ := bcp.EstablishWorkloadBatch(batchMgr, bcp.AllPairs(g, bcp.DefaultSpec(), []int{3}), w)
				if est != 4032 {
					b.Fatalf("established %d", est)
				}
			}
		}))
	}
	fmt.Fprintf(os.Stderr, "EstablishBatch done\n")

	// Routing kernels: the Router's scratch-backed searches on the bare
	// torus, without establishment state. RoutingAllPairs covers every
	// ordered pair with a cached-SPT distance lookup plus a constrained
	// shortest-path search (4032 + 4032 queries per op).
	g := bcp.NewTorus(8, 8, 200)
	router := bcp.NewRouter(g)
	results = append(results, measure("RoutingAllPairs", func(b *testing.B) {
		n := g.NumNodes()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					src, dst := bcp.NodeID(s), bcp.NodeID(d)
					if router.Distance(src, dst) < 0 {
						b.Fatalf("disconnected pair %d->%d", s, d)
					}
					if _, ok := router.ShortestLinks(src, dst, bcp.RoutingConstraint{}); !ok {
						b.Fatalf("no path %d->%d", s, d)
					}
				}
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "RoutingAllPairs done\n")

	// DisjointPair: one max-flow disjoint-pair search per op, over a seeded
	// random sample of node pairs (a torus has 4 disjoint paths everywhere,
	// so count=2 always succeeds).
	pairRng := rand.New(rand.NewSource(*seed))
	type pair struct{ s, d bcp.NodeID }
	pairs := make([]pair, 64)
	for i := range pairs {
		s := pairRng.Intn(g.NumNodes())
		d := pairRng.Intn(g.NumNodes())
		if s == d {
			d = (d + 1) % g.NumNodes()
		}
		pairs[i] = pair{bcp.NodeID(s), bcp.NodeID(d)}
	}
	results = append(results, measure("DisjointPair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if got := router.DisjointLinks(p.s, p.d, 2, bcp.RoutingConstraint{}); len(got) != 2 {
				b.Fatalf("pair %d->%d: %d disjoint paths, want 2", p.s, p.d, len(got))
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "DisjointPair done\n")

	trialMgr := loadedManager()
	f := bcp.SingleNode(27)
	results = append(results, measure("FailureTrial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats := trialMgr.Trial(f, bcp.OrderByConn, nil)
			if stats.FailedPrimaries == 0 {
				b.Fatal("no failures")
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "FailureTrial done\n")

	// SweepParallel: the full single-link failure sweep (224 trials) over the
	// shared plan of one loaded manager, at increasing pool widths. Workers
	// trial through per-goroutine TrialViews — no per-worker establishment —
	// so ns/op should shrink with the pool while B/op stays flat.
	sweepFailures := bcp.AllSingleLinkFailures(trialMgr.Graph())
	sweepWidths := []int{1, 4, runtime.GOMAXPROCS(0)}
	if *workers > 1 {
		sweepWidths = append(sweepWidths, *workers)
	}
	seen := map[int]bool{}
	for _, w := range sweepWidths {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		opts := bcp.DefaultExperimentOptions()
		opts.Workers = w
		results = append(results, measure(fmt.Sprintf("SweepParallel-w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := bcp.SweepParallel(trialMgr, sweepFailures, opts)
				if res.Trials != len(sweepFailures) {
					b.Fatalf("ran %d trials, want %d", res.Trials, len(sweepFailures))
				}
			}
		}))
	}
	fmt.Fprintf(os.Stderr, "SweepParallel done\n")

	// ProtocolTrace: one full message-level recovery scenario — an 8-hop
	// torus connection under 500 msg/s of data traffic, a mid-primary link
	// crash at 50 ms, one simulated second end to end. The nil-sink variant
	// is the zero-overhead guard for the observability layer (every trace
	// emission sits behind a disabled-emitter branch); the recorded variant
	// prices full event capture.
	runProtocol := func(b *testing.B, sink bcp.TraceSink) {
		if err := runProtocolScenario(sink); err != nil {
			b.Fatal(err)
		}
	}
	results = append(results, measure("ProtocolTrace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runProtocol(b, nil)
		}
	}))
	results = append(results, measure("ProtocolTraceRecorded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runProtocol(b, &bcp.TraceRecorder{})
		}
	}))
	fmt.Fprintf(os.Stderr, "ProtocolTrace done\n")

	// TimerWheel: the simulation executive's hot loop in isolation. Each op
	// replaces one timer deep in a 1024-strong standing population (an
	// O(log n) mid-heap cancel plus a push) and schedules-and-fires one
	// short timer — the schedule/cancel/fire churn every protocol daemon
	// puts through the engine. Steady state must be allocation-free.
	results = append(results, measure("TimerWheel", func(b *testing.B) {
		eng := bcp.NewEngine(*seed)
		noop := func() {}
		const standing = 1024
		horizon := time.Hour
		timers := make([]bcp.Timer, standing)
		for i := range timers {
			timers[i] = eng.Schedule(horizon+time.Duration(i)*time.Millisecond, noop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % standing
			timers[j].Stop()
			timers[j] = eng.Schedule(horizon, noop)
			eng.Schedule(time.Microsecond, noop)
			eng.Step() // fires the short timer; the standing set stays put
		}
	}))
	fmt.Fprintf(os.Stderr, "TimerWheel done\n")

	// RecoveryStorm: one full crash→switch→repair→rejoin cycle against a
	// long-lived protocol network (control plane only, so the measurement
	// is pure recovery work). The network is built and warmed outside the
	// timed region; after warmup a cycle should run entirely on recycled
	// timers, frames, and scratch.
	storm, err := bcp.NewStorm(bcp.StormConfig{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpbench: storm setup: %v\n", err)
		os.Exit(1)
	}
	if err := storm.Run(2); err != nil {
		fmt.Fprintf(os.Stderr, "bcpbench: storm warmup: %v\n", err)
		os.Exit(1)
	}
	results = append(results, measure("RecoveryStorm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := storm.Cycle(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "RecoveryStorm done\n")

	// RecoveryStormWide: the mass-failure storm — one cycle crashes an
	// entire transit node of a loaded network (thousands of connections,
	// hundreds of affected channels), runs the report/activation wave, then
	// repairs and replenishes back to full redundancy. The timed region is
	// the restoration storm (CrashPhase); the repair/replenish half runs
	// with the timer stopped — re-establishing the expired channels is
	// identical establishment work in every engine and would drown the
	// dispatch signal. Three kernels share the shape: the batched dispatch
	// engine on the paper's torus, the same torus on the per-message engine
	// (the A/B baseline for the batching work — compare these two on the
	// same box), and the batched engine on the 256-node mesh for scale. The
	// p50/p99 rows are the sampled failure→source-switch latencies from the
	// batched torus run — the service-interruption distribution under mass
	// failure (simulated time, so deterministic; alloc columns are
	// meaningless and left zero).
	newWideStorm := func(b *testing.B, cfg bcp.StormWideConfig) *bcp.StormWide {
		b.Helper()
		sw, err := bcp.NewStormWide(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.Run(len(sw.Victims)); err != nil { // one full rotation warms every victim
			b.Fatal(err)
		}
		return sw
	}
	crashPhases := func(b *testing.B, sw *bcp.StormWide) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := sw.CrashPhase()
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := sw.RepairPhase(v); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	var wideLatencies []time.Duration
	results = append(results, measure("RecoveryStormWide", func(b *testing.B) {
		sw := newWideStorm(b, bcp.StormWideConfig{Seed: *seed})
		crashPhases(b, sw)
		b.StopTimer()
		wideLatencies = wideLatencies[:0]
		for _, d := range sw.Latencies() {
			wideLatencies = append(wideLatencies, time.Duration(d))
		}
	}))
	fmt.Fprintf(os.Stderr, "RecoveryStormWide done\n")
	results = append(results, measure("RecoveryStormWide-permsg", func(b *testing.B) {
		sw := newWideStorm(b, bcp.StormWideConfig{Seed: *seed, PerMessageDispatch: true})
		crashPhases(b, sw)
	}))
	fmt.Fprintf(os.Stderr, "RecoveryStormWide-permsg done\n")
	results = append(results, measure("RecoveryStormWide-mesh256", func(b *testing.B) {
		sw := newWideStorm(b, bcp.StormWideConfig{Seed: *seed, Mesh: true})
		crashPhases(b, sw)
	}))
	fmt.Fprintf(os.Stderr, "RecoveryStormWide-mesh256 done\n")
	if len(wideLatencies) > 0 {
		results = append(results,
			Result{Name: "RecoveryStormWide-p50", N: len(wideLatencies), NsPerOp: float64(percentile(wideLatencies, 0.50))},
			Result{Name: "RecoveryStormWide-p99", N: len(wideLatencies), NsPerOp: float64(percentile(wideLatencies, 0.99))},
		)
	}

	// LiveRecovery: the recovery scenario off the simulator — nine daemons
	// as wall-clock actors, data over in-memory pipes, a real crash, and
	// the measured failure→data-resumption delay. Wall-clock measurements
	// do not average like CPU kernels, so this one is recorded as p50/p99
	// over fresh-network trials (ns_per_op holds the percentile; N the
	// trial count; alloc columns are meaningless and left zero).
	{
		const liveTrials = 20
		delays := make([]time.Duration, 0, liveTrials)
		for i := 0; i < liveTrials; i++ {
			d, err := runLiveRecoveryTrial(*seed + int64(i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bcpbench: live recovery trial %d: %v\n", i, err)
				os.Exit(1)
			}
			delays = append(delays, d)
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		results = append(results,
			Result{Name: "LiveRecovery-p50", N: liveTrials, NsPerOp: float64(percentile(delays, 0.50))},
			Result{Name: "LiveRecovery-p99", N: liveTrials, NsPerOp: float64(percentile(delays, 0.99))},
		)
		fmt.Fprintf(os.Stderr, "LiveRecovery done\n")
	}

	if *workers > 1 {
		opts := bcp.DefaultExperimentOptions()
		opts.DoubleNodeSample = 200
		opts.Workers = *workers
		results = append(results, measure(fmt.Sprintf("Table1Column-w%d", *workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bcp.RunTable1(bcp.Torus8x8, 1, []int{3}, opts)
				if len(res.Columns) != 1 {
					b.Fatal("wrong shape")
				}
			}
		}))
		fmt.Fprintf(os.Stderr, "Table1Column done\n")
	}

	out := File{
		Label:   *label,
		Date:    time.Now().UTC().Format(time.RFC3339),
		Results: results,
	}
	if baseline != nil {
		out.Baseline = baseline.Label
		byName := make(map[string]Result, len(baseline.Results))
		for _, r := range baseline.Results {
			byName[r.Name] = r
		}
		// Deltas are computed only for kernels present in both runs, matched
		// by name. Anything one-sided is called out so a renamed or retired
		// kernel cannot silently vanish from the comparison.
		current := make(map[string]bool, len(out.Results))
		for i := range out.Results {
			r := &out.Results[i]
			current[r.Name] = true
			b, ok := byName[r.Name]
			if !ok {
				fmt.Fprintf(os.Stderr, "bcpbench: warning: kernel %s has no entry in baseline %s (new kernel?); no delta\n", r.Name, *compare)
				continue
			}
			if b.NsPerOp > 0 {
				d := clampDelta(100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp)
				r.DeltaNsPct = &d
			}
			if b.BytesPerOp > 0 {
				d := clampDelta(100 * float64(r.BytesPerOp-b.BytesPerOp) / float64(b.BytesPerOp))
				r.DeltaBytesPct = &d
			}
			if b.AllocsPerOp > 0 {
				d := clampDelta(100 * float64(r.AllocsPerOp-b.AllocsPerOp) / float64(b.AllocsPerOp))
				r.DeltaAllocsPct = &d
			}
		}
		for _, r := range baseline.Results {
			if !current[r.Name] {
				fmt.Fprintf(os.Stderr, "bcpbench: warning: baseline kernel %s was not run (renamed or retired?); no delta\n", r.Name)
			}
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcpbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	path := fmt.Sprintf("BENCH_%s.json", *label)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bcpbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
	pct := func(p *float64) string {
		if p == nil {
			return ""
		}
		return fmt.Sprintf(" (%+.1f%%)", *p)
	}
	for _, r := range out.Results {
		suffix := ""
		if r.DeltaNsPct != nil || r.DeltaBytesPct != nil || r.DeltaAllocsPct != nil {
			suffix = fmt.Sprintf("  vs %s: ns%s B%s allocs%s",
				out.Baseline, pct(r.DeltaNsPct), pct(r.DeltaBytesPct), pct(r.DeltaAllocsPct))
		}
		fmt.Printf("%-24s %12.0f ns/op %12d B/op %9d allocs/op%s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, suffix)
	}
}
