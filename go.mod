module github.com/rtcl/bcp

go 1.22
