package experiment

// Cross-plane validation: the transactional failure trials the paper's
// tables are computed from (core.Manager.Trial) and the message-level
// protocol engine (internal/bcpd) are two implementations of the same
// recovery semantics. On the full paper workload they must agree on which
// connections recover from a given failure. Connection ids are assigned in
// establishment order, so identical workloads give identical ids in both
// worlds.

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
)

func TestProtocolMatchesTransactionalTrial(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	opts := DefaultOptions()
	for _, failLink := range []topology.LinkID{0, 37, 101, 200} {
		// Transactional world: establish and predict.
		gT := NewGraph(Torus8x8)
		mT := core.NewManager(gT, opts.config())
		EstablishAllPairs(mT, UniformDegrees(1, 3))
		trial := mT.Trial(core.SingleLink(failLink), core.OrderByConn, nil)
		var failedIDs []rtchan.ConnID
		for _, conn := range mT.Connections() {
			if conn.Primary != nil && conn.Primary.Path.ContainsLink(failLink) {
				failedIDs = append(failedIDs, conn.ID)
			}
		}
		if len(failedIDs) != trial.FailedPrimaries {
			t.Fatalf("link %d: inconsistent trial accounting", failLink)
		}

		// Protocol world: identical establishment, failure by messages.
		gP := NewGraph(Torus8x8)
		mP := core.NewManager(gP, opts.config())
		EstablishAllPairs(mP, UniformDegrees(1, 3))
		eng := sim.New(1)
		cfg := bcpd.DefaultConfig()
		cfg.DetectionLatency = 0
		cfg.RejoinTimeout = sim.Duration(time.Hour) // no teardown during the check
		// Conformance-check the full-workload run: no Γ bound (dozens of
		// recoveries compete for control bandwidth, the single-connection
		// bound does not apply), but the state machine, claim balance, and
		// healthy-traversal rules must hold for every one of them.
		chk := conformance.New(conformance.Params{
			PropSlack: cfg.PropDelay + sim.Duration(time.Millisecond),
		})
		cfg.Sink = chk
		net := bcpd.New(eng, mP, cfg)
		eng.At(sim.Time(10*time.Millisecond), func() { net.FailLink(failLink) })
		eng.RunFor(2 * time.Second)
		for _, v := range chk.Finish() {
			t.Errorf("link %d: conformance: %v", failLink, v)
		}

		recovered := 0
		for _, id := range failedIDs {
			conn := mP.Connection(id)
			if conn != nil && conn.Primary != nil && !conn.Primary.Path.ContainsLink(failLink) {
				recovered++
			}
		}
		if recovered != trial.FastRecovered {
			t.Fatalf("link %d: recovered %d (protocol) vs %d (trial), %d failed primaries",
				failLink, recovered, trial.FastRecovered, trial.FailedPrimaries)
		}
		if err := mP.CheckMuxInvariants(); err != nil {
			t.Fatalf("link %d: %v", failLink, err)
		}
	}
}
