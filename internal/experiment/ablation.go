package experiment

import (
	"fmt"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
)

// AblationRow is one design-choice variant evaluated on the standard
// workload.
type AblationRow struct {
	Name        string
	Established int
	Rejected    int
	SpareBW     float64
	OneLink     float64 // R_fast under single-link failures
	OneNode     float64
}

// AblationResult collects the design ablations DESIGN.md calls out:
//
//   - backup routing: the paper's sequential shortest-path vs max-flow
//     disjoint routing vs the [HAN97b]-style load-aware routing
//   - the §3.2 Π degree restriction on vs off (mixed-degree workload)
type AblationResult struct {
	Kind    Kind
	Routing []AblationRow // uniform mux=3, single backup
	PiRule  []AblationRow // mixed degrees {1,3,5,6}
}

// RunAblation evaluates the variants on the torus workload.
func RunAblation(opts Options) AblationResult {
	res := AblationResult{Kind: Torus8x8}

	routingVariants := []struct {
		name string
		mode core.BackupRouting
	}{
		{"sequential shortest-path (paper)", core.RouteSequential},
		{"max-flow disjoint", core.RouteMaxFlow},
		{"load-aware [HAN97b]", core.RouteLoadAware},
	}
	for _, v := range routingVariants {
		cfg := opts.config()
		cfg.BackupRouting = v.mode
		res.Routing = append(res.Routing, runAblationRow(v.name, cfg, UniformDegrees(1, 3), opts))
	}

	for _, restricted := range []bool{true, false} {
		name := "Π degree restriction on (paper)"
		if !restricted {
			name = "Π degree restriction off"
		}
		cfg := opts.config()
		cfg.DisablePiDegreeRestriction = !restricted
		res.PiRule = append(res.PiRule, runAblationRow(name, cfg, CyclicDegrees(1, []int{1, 3, 5, 6}), opts))
	}
	return res
}

func runAblationRow(name string, cfg core.Config, degreesFor func(int) []int, opts Options) AblationRow {
	g := NewGraph(Torus8x8)
	m := core.NewManager(g, cfg)
	est, rej := EstablishAllPairs(m, degreesFor)
	row := AblationRow{
		Name:        name,
		Established: est,
		Rejected:    rej,
		SpareBW:     m.Network().SpareFraction(),
	}
	sweepOpts := opts
	sweepOpts.Order = core.OrderByPriority
	row.OneLink = Sweep(m, AllSingleLinkFailures(g), sweepOpts).RFast
	row.OneNode = Sweep(m, AllSingleNodeFailures(g), sweepOpts).RFast
	return row
}

// Render prints both ablation tables.
func (r AblationResult) Render() string {
	out := ""
	t1 := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: backup routing algorithm — %s, single backup, mux=3", r.Kind),
		Columns: []string{"Variant", "Spare bw", "1 link", "1 node", "Rejected"},
	}
	for _, row := range r.Routing {
		t1.AddRow(row.Name,
			metrics.FormatPercent(row.SpareBW),
			metrics.FormatPercent(row.OneLink),
			metrics.FormatPercent(row.OneNode),
			fmt.Sprintf("%d", row.Rejected))
	}
	out += t1.String() + "\n"
	t2 := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: §3.2 Π degree restriction — %s, mixed degrees {1,3,5,6}", r.Kind),
		Columns: []string{"Variant", "Spare bw", "1 link", "1 node", "Rejected"},
	}
	for _, row := range r.PiRule {
		t2.AddRow(row.Name,
			metrics.FormatPercent(row.SpareBW),
			metrics.FormatPercent(row.OneLink),
			metrics.FormatPercent(row.OneNode),
			fmt.Sprintf("%d", row.Rejected))
	}
	return out + t2.String()
}
