// Quickstart: establish a dependable real-time connection on a small torus,
// crash a link on its primary channel, and watch the Backup Channel Protocol
// restore service in milliseconds.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/rtcl/bcp"
)

func main() {
	// An 8x8 torus with 200 Mbps links — the paper's evaluation network.
	g := bcp.NewTorus(8, 8, 200)
	mgr := bcp.NewManager(g, bcp.DefaultConfig())

	// A dependable connection from node 0 to node 36 (the far corner):
	// 1 Mbps primary plus one component-disjoint backup at multiplexing
	// degree 1, which guarantees fast recovery from any single failure.
	conn, err := mgr.Establish(0, 36, bcp.DefaultSpec(), []int{1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("established D-connection %d\n", conn.ID)
	fmt.Printf("  primary: %v (%d hops)\n", conn.Primary.Path, conn.Primary.Path.Hops())
	fmt.Printf("  backup:  %v (%d hops)\n", conn.Backups[0].Path, conn.Backups[0].Path.Hops())
	fmt.Printf("  reliability Pr = %.6f\n\n", mgr.ConnectionPr(conn))

	// Run the message-level protocol: a 1000 msg/s source, then a link
	// crash on the primary's third hop.
	eng := bcp.NewEngine(1)
	proto := bcp.NewProtocol(eng, mgr, bcp.DefaultProtocolConfig())
	if err := proto.StartTraffic(conn.ID, 1000); err != nil {
		log.Fatal(err)
	}

	failAt := bcp.Time(100 * time.Millisecond)
	failed := conn.Primary.Path.Links()[2]
	eng.At(failAt, func() {
		lk := g.Link(failed)
		fmt.Printf("t=%v  link %d->%d crashes\n", time.Duration(failAt), lk.From, lk.To)
		proto.FailLink(failed)
	})
	eng.RunFor(time.Second)

	switches := proto.SourceSwitches(conn.ID)
	if len(switches) == 0 {
		log.Fatal("connection did not recover")
	}
	fmt.Printf("t=%v  source switches to the backup (recovery delay %v)\n",
		time.Duration(switches[0]), time.Duration(switches[0].Sub(failAt)))
	fmt.Printf("\nnew primary: %v\n", conn.Primary.Path)

	st := proto.Stats()
	fmt.Printf("data: sent=%d delivered=%d lost=%d (disruption %v)\n",
		st.DataSent, st.DataDelivered, st.DataSent-st.DataDelivered,
		time.Duration(proto.MaxArrivalGap(conn.ID)))
	fmt.Printf("control: %d failure reports, %d activations\n",
		st.ReportsGenerated, st.ActivationsStarted)
}
