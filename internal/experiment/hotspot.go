package experiment

import (
	"fmt"
	"math/rand"

	"github.com/rtcl/bcp/internal/baseline"
	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// HotspotResult quantifies §7.1/§7.4's inhomogeneity claim: with hot-spot
// traffic (channel end-points concentrated on a few nodes) and mixed
// bandwidths, the proposed per-link spare sizing holds up while the
// brute-force uniform reservation degrades.
type HotspotResult struct {
	Kind            Kind
	Established     int
	Rejected        int
	SpareBW         float64
	ProposedOneLink float64
	ProposedOneNode float64
	BruteOneLink    float64
	BruteOneNode    float64
}

// RunHotspot builds a hot-spot workload on the torus: half of all
// connections terminate at one of four hot nodes, and bandwidths mix 1 and
// 3 Mbps. It compares R_fast of the proposed scheme against brute-force
// multiplexing with the same total spare budget.
func RunHotspot(opts Options) HotspotResult {
	g := NewGraph(Torus8x8)
	m := core.NewManager(g, opts.config())
	rng := rand.New(rand.NewSource(opts.Seed))
	hot := []topology.NodeID{9, 14, 49, 54}
	n := g.NumNodes()

	res := HotspotResult{Kind: Torus8x8}
	for i := 0; i < 3000; i++ {
		src := topology.NodeID(rng.Intn(n))
		var dst topology.NodeID
		if i%2 == 0 {
			dst = hot[rng.Intn(len(hot))]
		} else {
			dst = topology.NodeID(rng.Intn(n))
		}
		if src == dst {
			continue
		}
		spec := rtchan.DefaultSpec()
		if rng.Intn(4) == 0 {
			spec.Bandwidth = 3
		}
		if _, err := m.Establish(src, dst, spec, []int{3}); err != nil {
			res.Rejected++
		} else {
			res.Established++
		}
	}
	res.SpareBW = m.Network().SpareFraction()

	brute := baseline.NewBruteForce(m, baseline.UniformSpareFromManager(m), true)
	res.ProposedOneLink = Sweep(m, AllSingleLinkFailures(g), opts).RFast
	res.ProposedOneNode = Sweep(m, AllSingleNodeFailures(g), opts).RFast
	res.BruteOneLink = Sweep(brute, AllSingleLinkFailures(g), opts).RFast
	res.BruteOneNode = Sweep(brute, AllSingleNodeFailures(g), opts).RFast
	return res
}

// Render prints the comparison.
func (r HotspotResult) Render() string {
	t := &metrics.Table{
		Title: fmt.Sprintf("Hot-spot workload on %s (%d connections, spare %s): proposed vs brute-force",
			r.Kind, r.Established, metrics.FormatPercent(r.SpareBW)),
		Columns: []string{"Scheme", "1 link failure", "1 node failure"},
	}
	t.AddRow("proposed", metrics.FormatPercent(r.ProposedOneLink), metrics.FormatPercent(r.ProposedOneNode))
	t.AddRow("brute-force", metrics.FormatPercent(r.BruteOneLink), metrics.FormatPercent(r.BruteOneNode))
	return t.String()
}
