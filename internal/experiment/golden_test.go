package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestGoldenTrace pins the exact event stream of the canonical Scheme-3
// single-link-crash scenario. The simulator is deterministic, so any
// difference — an extra retransmission, a reordered state transition, a
// changed claim — is a behavior change that must be reviewed (and, if
// intended, blessed with `go test ./internal/experiment -run GoldenTrace
// -update`). The comparison uses the JSONL encoding, which is byte-stable,
// so the golden file is also a fixture for external JSONL consumers.
func TestGoldenTrace(t *testing.T) {
	s := DefaultTraceScenario()
	s.RunFor = sim.Duration(time.Second)
	run, err := RunTraceScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, run.Events); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_scheme3_linkcrash.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s\n(%d vs %d events; -update to bless)",
					i+1, gotLines[i], wantLines[i], len(run.Events), len(wantLines)-1)
			}
		}
		t.Fatalf("trace length changed: %d events, golden has %d (-update to bless)",
			len(run.Events), len(wantLines)-1)
	}

	// The golden stream must itself decode and re-encode losslessly, so the
	// file stays a valid fixture for -json consumers.
	events, err := trace.ReadJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden file does not parse: %v", err)
	}
	if len(events) != len(run.Events) {
		t.Fatalf("golden decodes to %d events, run produced %d", len(events), len(run.Events))
	}
}
