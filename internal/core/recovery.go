package core

import (
	"fmt"
	"math/rand"
	"slices"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Failure is a set of (near-)simultaneously failed components. A failed
// node implicitly disables every channel whose path visits it; a failed
// simplex link disables the channels routed over it (its reverse-direction
// twin is a separate component, matching the paper's failure model).
//
// The paper's three failure models — single link, single node, double node
// — dominate the sweep hot loop (one Failure per trial, hundreds of
// thousands of trials), so small failures are stored inline with no map
// allocation; only larger component sets (the severity sweeps) fall back to
// maps.
type Failure struct {
	// Inline storage for up to failureInline links and nodes each, sorted
	// ascending. Used iff the corresponding map is nil.
	slinks [failureInline]topology.LinkID
	snodes [failureInline]topology.NodeID
	nl, nn uint8
	links  map[topology.LinkID]struct{} // non-nil only beyond inline capacity
	nodes  map[topology.NodeID]struct{}
}

// failureInline is the per-kind inline component capacity: it covers every
// failure model the paper sweeps (§7.2-7.4) without heap allocation.
const failureInline = 2

// NewFailure builds a failure from explicit component lists. Duplicates are
// collapsed.
func NewFailure(links []topology.LinkID, nodes []topology.NodeID) Failure {
	var f Failure
	for _, l := range links {
		f.addLink(l)
	}
	for _, n := range nodes {
		f.addNode(n)
	}
	return f
}

func (f *Failure) addLink(l topology.LinkID) {
	if f.links == nil {
		for _, x := range f.slinks[:f.nl] {
			if x == l {
				return
			}
		}
		if int(f.nl) < failureInline {
			// Insertion keeps the inline set sorted, so Links() and
			// eachLink need no sort step.
			i := int(f.nl)
			for i > 0 && f.slinks[i-1] > l {
				f.slinks[i] = f.slinks[i-1]
				i--
			}
			f.slinks[i] = l
			f.nl++
			return
		}
		// Overflow: spill the inline set into a map and continue there.
		f.links = make(map[topology.LinkID]struct{}, failureInline+1)
		for _, x := range f.slinks[:f.nl] {
			f.links[x] = struct{}{}
		}
		f.nl = 0
	}
	f.links[l] = struct{}{}
}

func (f *Failure) addNode(n topology.NodeID) {
	if f.nodes == nil {
		for _, x := range f.snodes[:f.nn] {
			if x == n {
				return
			}
		}
		if int(f.nn) < failureInline {
			i := int(f.nn)
			for i > 0 && f.snodes[i-1] > n {
				f.snodes[i] = f.snodes[i-1]
				i--
			}
			f.snodes[i] = n
			f.nn++
			return
		}
		f.nodes = make(map[topology.NodeID]struct{}, failureInline+1)
		for _, x := range f.snodes[:f.nn] {
			f.nodes[x] = struct{}{}
		}
		f.nn = 0
	}
	f.nodes[n] = struct{}{}
}

// SingleLink is the paper's single-link failure model.
func SingleLink(l topology.LinkID) Failure {
	var f Failure
	f.slinks[0], f.nl = l, 1
	return f
}

// SingleNode is the paper's single-node failure model.
func SingleNode(n topology.NodeID) Failure {
	var f Failure
	f.snodes[0], f.nn = n, 1
	return f
}

// DoubleNode is the paper's double-node failure model.
func DoubleNode(a, b topology.NodeID) Failure {
	return NewFailure(nil, []topology.NodeID{a, b})
}

// The exported predicates take value receivers (the natural API for a
// value type), each copying the struct once; the unexported pointer-receiver
// twins below exist for the sweep hot loop, where per-component copies of
// the inline storage showed up in the trial profile.

// LinkFailed reports whether link l failed.
func (f Failure) LinkFailed(l topology.LinkID) bool { return f.linkFailed(l) }

func (f *Failure) linkFailed(l topology.LinkID) bool {
	if f.links != nil {
		_, bad := f.links[l]
		return bad
	}
	for _, x := range f.slinks[:f.nl] {
		if x == l {
			return true
		}
	}
	return false
}

// NodeFailed reports whether node n failed.
func (f Failure) NodeFailed(n topology.NodeID) bool { return f.nodeFailed(n) }

func (f *Failure) nodeFailed(n topology.NodeID) bool {
	if f.nodes != nil {
		_, bad := f.nodes[n]
		return bad
	}
	for _, x := range f.snodes[:f.nn] {
		if x == n {
			return true
		}
	}
	return false
}

// numLinks returns the number of failed links.
func (f *Failure) numLinks() int {
	if f.links != nil {
		return len(f.links)
	}
	return int(f.nl)
}

// numNodes returns the number of failed nodes.
func (f *Failure) numNodes() int {
	if f.nodes != nil {
		return len(f.nodes)
	}
	return int(f.nn)
}

// eachLink calls fn for every failed link (inline sets in ascending order).
func (f *Failure) eachLink(fn func(topology.LinkID)) {
	if f.links != nil {
		for l := range f.links {
			fn(l)
		}
		return
	}
	for _, l := range f.slinks[:f.nl] {
		fn(l)
	}
}

// eachNode calls fn for every failed node (inline sets in ascending order).
func (f *Failure) eachNode(fn func(topology.NodeID)) {
	if f.nodes != nil {
		for n := range f.nodes {
			fn(n)
		}
		return
	}
	for _, n := range f.snodes[:f.nn] {
		fn(n)
	}
}

// Links returns the failed links, ascending.
func (f Failure) Links() []topology.LinkID {
	if f.links == nil {
		out := make([]topology.LinkID, f.nl)
		copy(out, f.slinks[:f.nl])
		return out
	}
	out := make([]topology.LinkID, 0, len(f.links))
	for l := range f.links {
		out = append(out, l)
	}
	slices.Sort(out)
	return out
}

// Nodes returns the failed nodes, ascending.
func (f Failure) Nodes() []topology.NodeID {
	if f.nodes == nil {
		out := make([]topology.NodeID, f.nn)
		copy(out, f.snodes[:f.nn])
		return out
	}
	out := make([]topology.NodeID, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// HitsPath reports whether any component of path p failed (links or any
// visited node, including end nodes).
func (f Failure) HitsPath(p topology.Path) bool { return f.hitsPath(p) }

func (f *Failure) hitsPath(p topology.Path) bool {
	if f.numLinks() > 0 {
		for _, l := range p.Links() {
			if f.linkFailed(l) {
				return true
			}
		}
	}
	if f.numNodes() > 0 {
		for _, n := range p.Nodes() {
			if f.nodeFailed(n) {
				return true
			}
		}
	}
	return false
}

// ActivationOrder selects the order in which simultaneous backup activations
// contend for spare bandwidth.
type ActivationOrder uint8

const (
	// OrderByConn processes activations in connection-id (establishment)
	// order — the default, deterministic.
	OrderByConn ActivationOrder = iota
	// OrderByPriority processes smaller multiplexing degrees (more critical
	// connections) first: the paper's priority-based activation (§4.3).
	OrderByPriority
	// OrderRandom shuffles the activation order (models unsynchronized
	// control-message arrivals).
	OrderRandom
)

// DegreeStats is the per-multiplexing-degree breakdown used by Table 2.
type DegreeStats struct {
	FailedPrimaries int
	FastRecovered   int
}

// RFast returns the fast-recovery ratio for the class.
func (d DegreeStats) RFast() float64 {
	if d.FailedPrimaries == 0 {
		return 1
	}
	return float64(d.FastRecovered) / float64(d.FailedPrimaries)
}

// RecoveryStats summarizes one failure event.
type RecoveryStats struct {
	// ExcludedConns counts connections whose end nodes failed (outside the
	// paper's statistics).
	ExcludedConns int
	// FailedPrimaries counts disabled primary channels of non-excluded
	// connections — the denominator of R_fast.
	FailedPrimaries int
	// FastRecovered counts connections restored by backup activation — the
	// numerator of R_fast.
	FastRecovered int
	// BackupDead counts connections that could not recover because every
	// backup was itself disabled by the failure.
	BackupDead int
	// MuxFailed counts connections that had a healthy backup but lost the
	// race for spare bandwidth (multiplexing failure).
	MuxFailed int
	// FailedBackups counts backup channels (of non-excluded connections)
	// disabled by the failure, whether or not their primary failed.
	FailedBackups int
	// ByDegree breaks FailedPrimaries/FastRecovered down by the
	// connection's first-backup multiplexing degree (Table 2). Entries are
	// values, not pointers: a trial populates the map without per-class
	// heap allocations, and snapshots compare with ==.
	ByDegree map[int]DegreeStats
}

// RFast returns the paper's fast-recovery ratio.
func (s RecoveryStats) RFast() float64 {
	if s.FailedPrimaries == 0 {
		return 1
	}
	return float64(s.FastRecovered) / float64(s.FailedPrimaries)
}

// addDegree accumulates into the alpha class's breakdown.
func (s *RecoveryStats) addDegree(alpha, failed, recovered int) {
	if s.ByDegree == nil {
		s.ByDegree = make(map[int]DegreeStats)
	}
	d := s.ByDegree[alpha]
	d.FailedPrimaries += failed
	d.FastRecovered += recovered
	s.ByDegree[alpha] = d
}

// affectedConnections groups the channels hit by f by connection, using the
// per-link/per-node indexes.
func (m *Manager) affectedConnections(f Failure) map[rtchan.ConnID][]*rtchan.Channel {
	seen := make(map[rtchan.ChannelID]struct{})
	affected := make(map[rtchan.ConnID][]*rtchan.Channel)
	add := func(id rtchan.ChannelID) {
		if _, dup := seen[id]; dup {
			return
		}
		seen[id] = struct{}{}
		ch := m.plan.net.Channel(id)
		if ch != nil {
			affected[ch.Conn] = append(affected[ch.Conn], ch)
		}
	}
	f.eachLink(func(l topology.LinkID) {
		for _, id := range m.plan.net.ChannelsOnLink(l) {
			add(id)
		}
	})
	f.eachNode(func(n topology.NodeID) {
		for _, id := range m.plan.net.ChannelsAtNode(n) {
			add(id)
		}
	})
	return affected
}

// orderedConns sorts the connections needing activation according to order.
func orderedConns(conns []*DConnection, order ActivationOrder, rng *rand.Rand) []*DConnection {
	slices.SortFunc(conns, func(a, b *DConnection) int { return int(a.ID) - int(b.ID) })
	switch order {
	case OrderByPriority:
		slices.SortStableFunc(conns, func(a, b *DConnection) int {
			return firstDegree(a) - firstDegree(b)
		})
	case OrderRandom:
		if rng != nil {
			rng.Shuffle(len(conns), func(i, j int) { conns[i], conns[j] = conns[j], conns[i] })
		}
	}
	return conns
}

func firstDegree(c *DConnection) int {
	if len(c.Degrees) == 0 {
		return 1 << 30
	}
	return c.Degrees[0]
}

// Trial evaluates a failure event without changing any reservation or
// connection state, returning the R_fast statistics the paper's Tables 1-3
// report. Activations contend for each link's spare pool in the given
// order; a backup activates iff it is itself unaffected by the failure and
// every link of its path has enough unclaimed spare bandwidth.
//
// Trial is a pure read over the shared NetworkPlan (see plan.go) and is
// safe to call concurrently with itself and with writers. Concurrent sweep
// workers should prefer per-goroutine TrialViews (NewTrialView), which skip
// this entry point's serialization over the manager-owned scratch.
func (m *Manager) Trial(f Failure, order ActivationOrder, rng *rand.Rand) RecoveryStats {
	m.trialMu.Lock()
	defer m.trialMu.Unlock()
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.plan.trial(f, order, rng, &m.trial)
}

type activationOutcome uint8

const (
	activated activationOutcome = iota
	allBackupsDead
	spareExhausted
)

// Apply executes a failure event against live state: winning backups claim
// spare bandwidth and are promoted to primaries; failed channels are torn
// down; spare pools are re-sized (§4.4 resource reconfiguration). It returns
// the same statistics as Trial.
//
// Connections that lose every channel are torn down entirely (the paper
// informs the client of the unrecoverable failure; re-establishment from
// scratch is the client's retry).
func (m *Manager) Apply(f Failure, order ActivationOrder, rng *rand.Rand) (RecoveryStats, error) {
	defer m.beginWrite()()
	return m.apply(f, order, rng)
}

func (m *Manager) apply(f Failure, order ActivationOrder, rng *rand.Rand) (RecoveryStats, error) {
	var stats RecoveryStats
	affected := m.affectedConnections(f)

	type plan struct {
		conn        *DConnection
		failedChans []*rtchan.Channel
		primaryHit  bool
		excluded    bool
	}
	var plans []*plan
	var needsRecovery []*DConnection
	byConn := make(map[rtchan.ConnID]*plan)
	for connID, channels := range affected {
		conn := m.plan.conns[connID]
		if conn == nil {
			continue
		}
		p := &plan{conn: conn, failedChans: channels}
		byConn[connID] = p
		plans = append(plans, p)
		if f.NodeFailed(conn.Src) || f.NodeFailed(conn.Dst) {
			p.excluded = true
			stats.ExcludedConns++
			continue
		}
		for _, ch := range channels {
			if ch.Role == rtchan.RolePrimary {
				p.primaryHit = true
			} else {
				stats.FailedBackups++
			}
		}
		if p.primaryHit {
			stats.FailedPrimaries++
			stats.addDegree(firstDegree(conn), 1, 0)
			needsRecovery = append(needsRecovery, conn)
		}
	}

	// Phase 1: activation claims against the pre-failure spare sizing.
	needsRecovery = orderedConns(needsRecovery, order, rng)
	activatedBackups := make(map[rtchan.ConnID]*rtchan.Channel)
	for _, conn := range needsRecovery {
		b, outcome := m.claimActivation(conn, f)
		switch outcome {
		case activated:
			stats.FastRecovered++
			stats.addDegree(firstDegree(conn), 0, 1)
			activatedBackups[conn.ID] = b
		case allBackupsDead:
			stats.BackupDead++
		case spareExhausted:
			stats.MuxFailed++
		}
	}

	// Phase 2: reconfiguration — promote winners, tear down failed
	// channels, resize spare pools. Plans were collected in map order;
	// sort by connection so runs are reproducible.
	slices.SortFunc(plans, func(a, b *plan) int { return int(a.conn.ID) - int(b.conn.ID) })
	touched := make(map[topology.LinkID]struct{})
	for _, p := range plans {
		conn := p.conn
		winner := activatedBackups[conn.ID]
		if winner != nil {
			if err := m.promoteBackup(conn, winner, touched); err != nil {
				return stats, err
			}
		}
		// Tear down every failed channel of the connection.
		for _, ch := range p.failedChans {
			if err := m.dropChannel(conn, ch, touched); err != nil {
				return stats, err
			}
		}
		// A connection with no primary left (recovery failed or excluded)
		// loses all its channels: release the survivors too.
		if conn.Primary == nil {
			for len(conn.Backups) > 0 {
				if err := m.dropChannel(conn, conn.Backups[0], touched); err != nil {
					return stats, err
				}
			}
			delete(m.plan.conns, conn.ID)
			m.plan.scache.forget(conn.ID)
		}
	}

	// Phase 3: spare pools on every touched link are recomputed from the
	// surviving backup population.
	if err := m.reconfigureLinks(touched); err != nil {
		return stats, err
	}
	return stats, nil
}

// claimActivation is the mutating variant of tryActivate: claims are
// recorded in the per-link mux state.
func (m *Manager) claimActivation(conn *DConnection, f Failure) (*rtchan.Channel, activationOutcome) {
	bw := conn.Spec.Bandwidth
	sawHealthy := false
	for _, b := range conn.Backups {
		if f.HitsPath(b.Path) {
			continue
		}
		sawHealthy = true
		links := b.Path.Links()
		ok := true
		for _, l := range links {
			if m.plan.mux[l].available() < bw-1e-9 {
				ok = false
				break
			}
		}
		if ok {
			for _, l := range links {
				m.plan.mux[l].claimed += bw
			}
			return b, activated
		}
	}
	if sawHealthy {
		return nil, spareExhausted
	}
	return nil, allBackupsDead
}

// promoteBackup converts a claimed backup into the connection's primary:
// the claimed spare becomes dedicated bandwidth on each link of its path.
func (m *Manager) promoteBackup(conn *DConnection, b *rtchan.Channel, touched map[topology.LinkID]struct{}) error {
	bw := b.Bandwidth()
	for _, l := range b.Path.Links() {
		lm := &m.plan.mux[l]
		// Drop the mux entry without resizing: the pool shrink happens
		// explicitly, converting the claim into dedicated bandwidth.
		if idx := lm.find(b.ID); idx >= 0 {
			lm.noteReqShrink(lm.entries[idx].req)
			lm.removeAt(idx)
			for i := range lm.entries {
				other := &lm.entries[i]
				if other.piRemove(b.ID) {
					lm.noteReqShrink(other.req)
					other.req -= bw
				}
			}
		}
		lm.claimed -= bw
		lm.spare -= bw
		if lm.spare < 0 {
			lm.spare = 0
		}
		if err := m.plan.net.SetSpare(l, lm.spare); err != nil {
			return fmt.Errorf("core: promote shrink on link %d: %w", l, err)
		}
		touched[l] = struct{}{}
	}
	if err := m.plan.net.Promote(b.ID); err != nil {
		return err
	}
	// The connection's channel lists: the winner becomes the primary.
	for i, x := range conn.Backups {
		if x.ID == b.ID {
			conn.Backups = append(conn.Backups[:i], conn.Backups[i+1:]...)
			conn.Degrees = append(conn.Degrees[:i], conn.Degrees[i+1:]...)
			break
		}
	}
	conn.Primary = b
	m.primaryChanged(conn)
	// The new primary path changes every S(·,·) involving this connection:
	// all links hosting its remaining backups must re-derive their Π sets.
	for _, rb := range conn.Backups {
		for _, l := range rb.Path.Links() {
			touched[l] = struct{}{}
		}
	}
	return nil
}

// dropChannel tears down one channel of a connection (failed component or
// released survivor), updating mux state and the connection's lists.
func (m *Manager) dropChannel(conn *DConnection, ch *rtchan.Channel, touched map[topology.LinkID]struct{}) error {
	if m.plan.net.Channel(ch.ID) == nil {
		return nil // already dropped (e.g. promoted then listed again)
	}
	if ch.Role == rtchan.RoleBackup {
		for _, l := range ch.Path.Links() {
			m.removeBackupFromLink(l, ch)
			touched[l] = struct{}{}
		}
		for i, x := range conn.Backups {
			if x.ID == ch.ID {
				conn.Backups = append(conn.Backups[:i], conn.Backups[i+1:]...)
				conn.Degrees = append(conn.Degrees[:i], conn.Degrees[i+1:]...)
				break
			}
		}
	} else if conn.Primary != nil && conn.Primary.ID == ch.ID {
		conn.Primary = nil
		m.primaryChanged(conn)
	}
	return m.plan.net.Teardown(ch.ID)
}

// reconfigureLinks re-derives the Π structure and spare sizing of the given
// links from the surviving backups. Promotion changes primaries, which
// changes S values network-wide for the affected connections; the paper
// recomputes spare needs after recovery (§4.4). If a link can no longer
// afford its required spare, the requirement is capped at the available
// headroom — the corresponding backups are degraded (they may suffer
// multiplexing failures later), matching the paper's observation that
// backups may have to be closed or moved.
func (m *Manager) reconfigureLinks(touched map[topology.LinkID]struct{}) error {
	for l := range touched {
		var err error
		if m.coalesceReconfig && !m.piStale[l] {
			// The link's pair decisions are still derived from current
			// primaries; only the pool sizing can have shifted (see
			// reconfig.go for why this is exact, not approximate).
			err = m.resizeLink(l)
		} else {
			err = m.recomputeLinkMux(l)
			m.piStale[l] = false
		}
		if err != nil {
			// Cap at headroom rather than failing recovery.
			lm := &m.plan.mux[l]
			head := m.plan.net.Capacity(l) - m.plan.net.Dedicated(l)
			if head < 0 {
				head = 0
			}
			if err2 := m.plan.net.SetSpare(l, head); err2 != nil {
				return err2
			}
			lm.spare = head
		}
	}
	return nil
}
